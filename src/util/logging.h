#ifndef MARLIN_UTIL_LOGGING_H_
#define MARLIN_UTIL_LOGGING_H_

#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>

namespace marlin {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide logger. Thread-safe; writes line-buffered records to stderr.
/// The minimum level defaults to Info and can be raised/lowered at runtime
/// (e.g. tests silence Debug chatter, benches silence everything below
/// Warning).
class Logger {
 public:
  static Logger& Instance();

  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  bool Enabled(LogLevel level) const { return level >= min_level_; }

  /// Emits one record. `file` is trimmed to its basename.
  void Write(LogLevel level, const char* file, int line,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel min_level_ = LogLevel::kInfo;
  std::mutex mu_;
};

namespace internal_logging {

/// Accumulates one log record and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    Logger::Instance().Write(level_, file_, line_, stream_.str());
    if (level_ == LogLevel::kFatal) std::abort();
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when the level is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

/// Streaming log macros: `MARLIN_LOG(INFO) << "x=" << x;`
#define MARLIN_LOG(severity) MARLIN_LOG_##severity()
#define MARLIN_LOG_DEBUG()                                                 \
  ::marlin::internal_logging::LogMessage(::marlin::LogLevel::kDebug,      \
                                         __FILE__, __LINE__)              \
      .stream()
#define MARLIN_LOG_INFO()                                                  \
  ::marlin::internal_logging::LogMessage(::marlin::LogLevel::kInfo,       \
                                         __FILE__, __LINE__)              \
      .stream()
#define MARLIN_LOG_WARNING()                                               \
  ::marlin::internal_logging::LogMessage(::marlin::LogLevel::kWarning,    \
                                         __FILE__, __LINE__)              \
      .stream()
#define MARLIN_LOG_ERROR()                                                 \
  ::marlin::internal_logging::LogMessage(::marlin::LogLevel::kError,      \
                                         __FILE__, __LINE__)              \
      .stream()
#define MARLIN_LOG_FATAL()                                                 \
  ::marlin::internal_logging::LogMessage(::marlin::LogLevel::kFatal,      \
                                         __FILE__, __LINE__)              \
      .stream()

/// Checks an always-on invariant; aborts with a message when violated.
#define MARLIN_CHECK(cond)                                  \
  while (!(cond)) MARLIN_LOG(FATAL) << "Check failed: " #cond " "

}  // namespace marlin

#endif  // MARLIN_UTIL_LOGGING_H_

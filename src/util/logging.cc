#include "util/logging.h"

#include <chrono>
#include <cstdio>
#include <cstring>

namespace marlin {
namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

Logger& Logger::Instance() {
  static Logger* logger = new Logger();  // chk-lint: allow(naked-new) leaky singleton
  return *logger;
}

void Logger::Write(LogLevel level, const char* file, int line,
                   const std::string& message) {
  if (!Enabled(level) && level != LogLevel::kFatal) return;
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "%s %lld.%03lld %s:%d] %s\n", LevelTag(level),
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), Basename(file), line,
               message.c_str());
}

}  // namespace marlin

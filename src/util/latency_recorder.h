#ifndef MARLIN_UTIL_LATENCY_RECORDER_H_
#define MARLIN_UTIL_LATENCY_RECORDER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace marlin {

/// One point of the Figure-6 curve: after `actor_count` distinct actors have
/// been seen, the moving-window average processing time was `avg_nanos`.
struct LatencyPoint {
  int64_t actor_count = 0;
  double avg_nanos = 0.0;
};

/// Records per-message processing latency against the number of distinct
/// active actors, reproducing the measurement of Figure 6 in the paper: the
/// average processing time over a moving window of the last `window` actors
/// (vessels), sampled each time a previously unseen actor appears. The
/// window restarts at each actor-count boundary so a series point never
/// mixes in samples from a different actor count.
///
/// Thread-safe; `Record` is called from dispatcher threads.
class LatencyRecorder {
 public:
  /// `window` is the moving-window width (the paper uses 100 actors).
  explicit LatencyRecorder(int window = 100);

  /// Records one processed message. `actor_count` is the number of distinct
  /// actors live in the system at processing time; `nanos` the processing
  /// duration of this message.
  void Record(int64_t actor_count, int64_t nanos);

  /// Snapshot of the (actor count, windowed average) series so far.
  std::vector<LatencyPoint> Series() const;

  /// Total messages recorded.
  int64_t Count() const;

  /// Overall mean latency in nanoseconds across all records.
  double MeanNanos() const;

 private:
  const int window_;
  mutable std::mutex mu_;
  std::deque<int64_t> recent_;     // last `window_` latencies
  int64_t recent_sum_ = 0;
  int64_t last_actor_count_ = -1;
  int64_t count_ = 0;
  double total_ = 0.0;
  std::vector<LatencyPoint> series_;
};

}  // namespace marlin

#endif  // MARLIN_UTIL_LATENCY_RECORDER_H_

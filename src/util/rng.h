#ifndef MARLIN_UTIL_RNG_H_
#define MARLIN_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace marlin {

/// Deterministic, seedable PRNG (xoshiro256**, seeded via splitmix64).
///
/// Every stochastic component in the library (simulator, network weight
/// init, training shuffles, dataset generators) takes a `Rng` or a seed so
/// that experiments are exactly reproducible. Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&x);
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) { return NextUint64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller.
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Exponential with the given rate (lambda > 0); mean = 1 / rate.
  double Exponential(double rate) {
    double u = NextDouble();
    while (u <= 1e-300) u = NextDouble();
    return -std::log(u) / rate;
  }

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Derives an independent child generator (e.g. one per vessel).
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t s_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace marlin

#endif  // MARLIN_UTIL_RNG_H_

#ifndef MARLIN_UTIL_HASH_H_
#define MARLIN_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace marlin {

/// FNV-1a over bytes. The one stable hash the partitioning layers share:
/// the broker's key→partition map and the cluster's key→shard map both use
/// it, so with `num_shards == num_partitions` a record's partition equals
/// its entity's shard and a node can consume exactly the partitions whose
/// keys it owns (shard-aligned consumer assignment). std::hash gives no
/// such cross-component (or cross-process) stability guarantee.
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = 0xCBF29CE484222325ULL;  // offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;  // prime
  }
  return hash;
}

}  // namespace marlin

#endif  // MARLIN_UTIL_HASH_H_

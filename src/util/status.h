#ifndef MARLIN_UTIL_STATUS_H_
#define MARLIN_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace marlin {

/// Canonical error codes, modelled on the Google/Arrow canonical space.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kCancelled,
  kUnimplemented,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Exception-free error propagation type used across the library.
///
/// Functions that can fail return `Status` (or `StatusOr<T>` when they also
/// produce a value). An OK status carries no message and no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or a non-OK `Status` explaining its absence.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value — mirrors absl::StatusOr ergonomics.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define MARLIN_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::marlin::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Assigns the value of a StatusOr expression or propagates its error.
#define MARLIN_ASSIGN_OR_RETURN(lhs, expr)            \
  MARLIN_ASSIGN_OR_RETURN_IMPL_(                      \
      MARLIN_STATUS_CONCAT_(_statusor_, __LINE__), lhs, expr)
#define MARLIN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()
#define MARLIN_STATUS_CONCAT_(a, b) MARLIN_STATUS_CONCAT_IMPL_(a, b)
#define MARLIN_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace marlin

#endif  // MARLIN_UTIL_STATUS_H_

#ifndef MARLIN_UTIL_THREAD_POOL_H_
#define MARLIN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace marlin {

/// Fixed-size worker pool with a shared FIFO task queue.
///
/// The actor dispatcher schedules mailbox drains onto this pool; benches and
/// the trainer use it for data-parallel work. Tasks must not throw (the
/// library is exception-free).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  /// Stops accepting tasks, drains the queue, joins all workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of tasks waiting in the queue (diagnostic).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace marlin

#endif  // MARLIN_UTIL_THREAD_POOL_H_

#ifndef MARLIN_UTIL_THREAD_POOL_H_
#define MARLIN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace marlin {

/// Fixed-size worker pool with a shared FIFO task queue.
///
/// The actor dispatcher schedules mailbox drains onto this pool; benches and
/// the trainer use it for data-parallel work. Tasks must not throw (the
/// library is exception-free).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  /// Stops accepting tasks, drains the queue, joins all workers.
  /// Idempotent and safe to call from several threads concurrently: every
  /// caller blocks until the workers are joined.
  void Shutdown();

  int num_threads() const { return num_threads_; }

  /// Number of tasks waiting in the queue (diagnostic; lock-free, so the
  /// dispatcher can export it as a gauge on the hot path).
  size_t QueueDepth() const {
    return queued_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  int num_threads_ = 0;
  std::atomic<size_t> queued_{0};
  mutable std::mutex mu_;
  std::mutex shutdown_mu_;  // serialises concurrent Shutdown callers
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace marlin

#endif  // MARLIN_UTIL_THREAD_POOL_H_

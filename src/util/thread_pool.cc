#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace marlin {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  // Serialise concurrent callers: the first joins the workers, later ones
  // block here until the join completes, then find nothing left to do.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace marlin

#ifndef MARLIN_UTIL_FILE_H_
#define MARLIN_UTIL_FILE_H_

#include <string>

#include "util/status.h"

namespace marlin {

/// Reads an entire file into a string.
StatusOr<std::string> ReadFile(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file. The write goes
/// through a temporary file + rename so readers never observe a torn file.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

}  // namespace marlin

#endif  // MARLIN_UTIL_FILE_H_

#ifndef MARLIN_UTIL_CLOCK_H_
#define MARLIN_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace marlin {

/// Time is represented as microseconds since the Unix epoch. AIS timestamps,
/// the simulator, the pipeline, and the latency recorder all share this unit.
using TimeMicros = int64_t;

constexpr TimeMicros kMicrosPerSecond = 1'000'000;
constexpr TimeMicros kMicrosPerMinute = 60 * kMicrosPerSecond;

/// Abstract time source so the whole system can run either against the wall
/// clock or against simulated stream time (for replay/evaluation).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMicros Now() const = 0;
};

/// Reads the system clock.
class WallClock : public Clock {
 public:
  TimeMicros Now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock; thread-safe. Used by tests and by the simulator
/// to drive the pipeline in stream time.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros Now() const override {
    return now_.load(std::memory_order_acquire);
  }

  void Advance(TimeMicros delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void Set(TimeMicros t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<TimeMicros> now_;
};

/// Monotonic nanosecond source — the seam that lets latency instrumentation
/// (Stopwatch, and through it LatencyRecorder feeds) run on either host
/// steady time or virtual stream time. Null means "host steady clock".
class NanoClock {
 public:
  virtual ~NanoClock() = default;
  virtual int64_t NowNanos() const = 0;
};

/// Virtual-time clock owned by a discrete-event loop (sim/des). Reads are
/// lock-free; AdvanceTo never moves time backwards even when racing
/// advancers, so components observing it mid-dispatch always see a
/// monotonic timeline. Implements both the micros Clock seam (pipeline,
/// broker, kvstore TTLs) and the nanos seam (Stopwatch injection), so one
/// instance can be the sole time source of a virtual-time run.
class VirtualClock : public Clock, public NanoClock {
 public:
  explicit VirtualClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros Now() const override {
    return now_.load(std::memory_order_acquire);
  }
  int64_t NowNanos() const override { return Now() * 1000; }

  /// Advances to `t` if `t` is ahead of the current reading; a stale or
  /// concurrent advance to an earlier time is a no-op.
  void AdvanceTo(TimeMicros t) {
    TimeMicros current = now_.load(std::memory_order_relaxed);
    while (t > current &&
           !now_.compare_exchange_weak(current, t,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<TimeMicros> now_;
};

/// Monotonic nanosecond stopwatch for latency measurements. By default it
/// reads the host steady clock; constructed with a NanoClock it measures
/// that source instead (virtual-time runs inject the event loop's
/// VirtualClock so latency stats are stream-time, not host-time).
class Stopwatch {
 public:
  Stopwatch() : start_nanos_(SteadyNanos()) {}
  explicit Stopwatch(const NanoClock* source)
      : source_(source), start_nanos_(NowNanos()) {}
  void Restart() { start_nanos_ = NowNanos(); }
  /// Elapsed time since construction/restart, in nanoseconds.
  int64_t ElapsedNanos() const { return NowNanos() - start_nanos_; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }

 private:
  static int64_t SteadyNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  int64_t NowNanos() const {
    return source_ != nullptr ? source_->NowNanos() : SteadyNanos();
  }

  const NanoClock* source_ = nullptr;
  int64_t start_nanos_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_UTIL_CLOCK_H_

#ifndef MARLIN_UTIL_CLOCK_H_
#define MARLIN_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace marlin {

/// Time is represented as microseconds since the Unix epoch. AIS timestamps,
/// the simulator, the pipeline, and the latency recorder all share this unit.
using TimeMicros = int64_t;

constexpr TimeMicros kMicrosPerSecond = 1'000'000;
constexpr TimeMicros kMicrosPerMinute = 60 * kMicrosPerSecond;

/// Abstract time source so the whole system can run either against the wall
/// clock or against simulated stream time (for replay/evaluation).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMicros Now() const = 0;
};

/// Reads the system clock.
class WallClock : public Clock {
 public:
  TimeMicros Now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock; thread-safe. Used by tests and by the simulator
/// to drive the pipeline in stream time.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros Now() const override {
    return now_.load(std::memory_order_acquire);
  }

  void Advance(TimeMicros delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void Set(TimeMicros t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<TimeMicros> now_;
};

/// Monotonic nanosecond stopwatch for latency measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  /// Elapsed time since construction/restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace marlin

#endif  // MARLIN_UTIL_CLOCK_H_

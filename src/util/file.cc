#include "util/file.h"

#include <cstdio>

namespace marlin {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::string contents;
  char buffer[1 << 16];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, read);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::Internal("read error on '" + path + "'");
  }
  return contents;
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open '" + temp + "' for writing");
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  const bool flush_failed = std::fflush(file) != 0;
  std::fclose(file);
  if (written != contents.size() || flush_failed) {
    std::remove(temp.c_str());
    return Status::Internal("short write to '" + temp + "'");
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::Internal("cannot rename '" + temp + "' to '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace marlin

#include "util/latency_recorder.h"

#include <algorithm>

namespace marlin {

LatencyRecorder::LatencyRecorder(int window)
    : window_(std::max(1, window)) {}

void LatencyRecorder::Record(int64_t actor_count, int64_t nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool boundary = actor_count != last_actor_count_;
  if (boundary) {
    // New actor-count regime: restart the window so the emitted point
    // reflects only samples observed at this count, not a mean dominated
    // by whatever actor count came before (the Fig. 6 skew).
    recent_.clear();
    recent_sum_ = 0;
  }
  recent_.push_back(nanos);
  recent_sum_ += nanos;
  if (static_cast<int>(recent_.size()) > window_) {
    recent_sum_ -= recent_.front();
    recent_.pop_front();
  }
  ++count_;
  total_ += static_cast<double>(nanos);
  if (boundary) {
    last_actor_count_ = actor_count;
    series_.push_back(LatencyPoint{
        actor_count,
        static_cast<double>(recent_sum_) / static_cast<double>(recent_.size())});
  }
}

std::vector<LatencyPoint> LatencyRecorder::Series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

int64_t LatencyRecorder::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double LatencyRecorder::MeanNanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
}

}  // namespace marlin

#include "middleware/json.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace marlin {

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_value_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_value_ = value;
  return v;
}

JsonValue JsonValue::Int(int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_value_ = value;
  return v;
}

JsonValue JsonValue::Str(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_value_ = std::move(value);
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  MARLIN_CHECK(kind_ == Kind::kObject);
  for (auto& [existing_key, existing_value] : children_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return *this;
    }
  }
  children_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  MARLIN_CHECK(kind_ == Kind::kArray);
  children_.emplace_back(std::string(), std::move(value));
  return *this;
}

void JsonValue::EscapeTo(const std::string& raw, std::string* out) {
  out->push_back('"');
  for (char c : raw) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_value_ ? "true" : "false";
      return;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_value_));
      *out += buf;
      return;
    }
    case Kind::kNumber: {
      if (!std::isfinite(number_value_)) {
        *out += "null";
        return;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6f", number_value_);
      // Trim trailing zeros but keep at least one decimal digit.
      std::string text(buf);
      while (text.size() > 1 && text.back() == '0' &&
             text[text.size() - 2] != '.') {
        text.pop_back();
      }
      *out += text;
      return;
    }
    case Kind::kString:
      EscapeTo(string_value_, out);
      return;
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : children_) {
        if (!first) out->push_back(',');
        first = false;
        EscapeTo(key, out);
        out->push_back(':');
        value.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& [key, value] : children_) {
        (void)key;
        if (!first) out->push_back(',');
        first = false;
        value.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

}  // namespace marlin

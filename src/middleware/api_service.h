#ifndef MARLIN_MIDDLEWARE_API_SERVICE_H_
#define MARLIN_MIDDLEWARE_API_SERVICE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "middleware/json.h"

namespace marlin {

/// A REST-style response: an HTTP-like status code plus a body. The body is
/// JSON unless `content_type` says otherwise (GET /metrics serves the
/// Prometheus text format).
struct ApiResponse {
  int status = 200;
  std::string body;
  std::string content_type = "application/json";
};

/// The middleware API of §3: the "dedicated API responsible to interface
/// the frontend with the backend systems", serving the state the writer
/// actor publishes (vessel positions, forecasts, events, traffic rasters)
/// to the UI. Transport-agnostic: `Handle` maps a method + path + query to
/// a JSON response, so it can sit behind any HTTP server or be driven
/// directly in tests.
///
/// Routes:
///   GET /stats                         pipeline statistics
///   GET /vessels                       all vessel states (key list + count)
///   GET /vessels/{mmsi}                one vessel's state hash
///   GET /vessels/{mmsi}/forecast       latest forecast trajectory
///   GET /vessels/{mmsi}/events         events involving the vessel
///   GET /events?limit=N                recent events, newest first
///   GET /traffic/{step}                flow raster at horizon step 1..6
///   GET /ports                         port occupancy/congestion status
///   GET /patterns?top=N                busiest historical cells (PoL)
///   GET /viewport?min_lat=&min_lon=&max_lat=&max_lon=
///                                      vessels currently inside a bbox
///   GET /metrics                       Prometheus text exposition
///   GET /metrics/json                  same snapshot as JSON
///   GET /cluster                       cluster membership + shard status
///                                      (404 on single-node deployments)
class ApiService {
 public:
  /// `pipeline` must outlive the service.
  explicit ApiService(MaritimePipeline* pipeline) : pipeline_(pipeline) {}

  /// Dispatches one request. Unknown routes yield 404; bad parameters 400;
  /// non-GET methods 405.
  ApiResponse Handle(const std::string& method, const std::string& target);

  /// Installs the provider behind GET /cluster. The middleware stays free
  /// of a cluster-layer dependency: a deployment running a ClusterNode
  /// registers `[&node] { return node.StatusJson(); }` here; without one
  /// the route answers 404.
  void set_cluster_status_provider(std::function<std::string()> provider) {
    cluster_status_ = std::move(provider);
  }

 private:
  struct Request {
    std::vector<std::string> segments;
    std::map<std::string, std::string> query;
  };

  static Request Parse(const std::string& target);
  static ApiResponse Error(int status, const std::string& message);
  static ApiResponse Ok(const JsonValue& body);

  ApiResponse HandleStats();
  ApiResponse HandleVessels();
  ApiResponse HandleVessel(const Request& request);
  ApiResponse HandleEvents(const Request& request);
  ApiResponse HandleTraffic(const Request& request);
  ApiResponse HandlePorts();
  ApiResponse HandlePatterns(const Request& request);
  ApiResponse HandleViewport(const Request& request);
  ApiResponse HandleMetrics(const Request& request);

  static JsonValue EventToJson(const MaritimeEvent& event);

  MaritimePipeline* pipeline_;
  std::function<std::string()> cluster_status_;
};

}  // namespace marlin

#endif  // MARLIN_MIDDLEWARE_API_SERVICE_H_

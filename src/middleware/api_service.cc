#include "middleware/api_service.h"

#include <cstdlib>

namespace marlin {
namespace {

/// Best-effort numeric parse; returns fallback on garbage.
double QueryDouble(const std::map<std::string, std::string>& query,
                   const std::string& key, double fallback, bool* ok) {
  auto it = query.find(key);
  if (it == query.end()) {
    *ok = false;
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) {
    *ok = false;
    return fallback;
  }
  *ok = true;
  return value;
}

}  // namespace

ApiService::Request ApiService::Parse(const std::string& target) {
  Request request;
  std::string path = target;
  std::string query_text;
  if (const size_t mark = target.find('?'); mark != std::string::npos) {
    path = target.substr(0, mark);
    query_text = target.substr(mark + 1);
  }
  size_t start = 0;
  while (start < path.size()) {
    if (path[start] == '/') {
      ++start;
      continue;
    }
    size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    request.segments.push_back(path.substr(start, end - start));
    start = end + 1;
  }
  start = 0;
  while (start < query_text.size()) {
    size_t end = query_text.find('&', start);
    if (end == std::string::npos) end = query_text.size();
    const std::string pair = query_text.substr(start, end - start);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      request.query[pair.substr(0, eq)] = pair.substr(eq + 1);
    } else if (!pair.empty()) {
      request.query[pair] = "";
    }
    start = end + 1;
  }
  return request;
}

ApiResponse ApiService::Error(int status, const std::string& message) {
  JsonValue body = JsonValue::Object();
  body.Set("error", JsonValue::Str(message));
  return ApiResponse{status, body.Dump()};
}

ApiResponse ApiService::Ok(const JsonValue& body) {
  return ApiResponse{200, body.Dump()};
}

JsonValue ApiService::EventToJson(const MaritimeEvent& event) {
  JsonValue out = JsonValue::Object();
  out.Set("type", JsonValue::Str(std::string(EventTypeName(event.type))));
  out.Set("vessel_a", JsonValue::Int(event.vessel_a));
  out.Set("vessel_b", JsonValue::Int(event.vessel_b));
  out.Set("detected_at", JsonValue::Int(event.detected_at));
  out.Set("event_time", JsonValue::Int(event.event_time));
  out.Set("lat", JsonValue::Number(event.location.lat_deg));
  out.Set("lon", JsonValue::Number(event.location.lon_deg));
  out.Set("distance_m", JsonValue::Number(event.distance_m));
  return out;
}

ApiResponse ApiService::Handle(const std::string& method,
                               const std::string& target) {
  if (method != "GET") return Error(405, "method not allowed");
  const Request request = Parse(target);
  if (request.segments.empty()) return Error(404, "not found");
  const std::string& root = request.segments[0];
  if (root == "stats") return HandleStats();
  if (root == "vessels") {
    return request.segments.size() == 1 ? HandleVessels()
                                        : HandleVessel(request);
  }
  if (root == "events") return HandleEvents(request);
  if (root == "traffic") return HandleTraffic(request);
  if (root == "ports") return HandlePorts();
  if (root == "patterns") return HandlePatterns(request);
  if (root == "viewport") return HandleViewport(request);
  if (root == "metrics") return HandleMetrics(request);
  if (root == "cluster") {
    if (!cluster_status_) return Error(404, "no cluster on this deployment");
    return ApiResponse{200, cluster_status_()};
  }
  return Error(404, "not found");
}

ApiResponse ApiService::HandleMetrics(const Request& request) {
  obs::MetricsRegistry* registry = pipeline_->metrics();
  if (request.segments.size() >= 2) {
    if (request.segments[1] != "json") return Error(404, "not found");
    return ApiResponse{200, registry->RenderJson()};
  }
  // Prometheus text exposition format, version 0.0.4.
  return ApiResponse{200, registry->RenderPrometheus(),
                     "text/plain; version=0.0.4; charset=utf-8"};
}

ApiResponse ApiService::HandleStats() {
  const PipelineStats stats = pipeline_->Stats();
  JsonValue body = JsonValue::Object();
  body.Set("actors", JsonValue::Int(static_cast<int64_t>(stats.actor_count)));
  body.Set("positions_ingested", JsonValue::Int(stats.positions_ingested));
  body.Set("forecasts_generated", JsonValue::Int(stats.forecasts_generated));
  body.Set("events_detected", JsonValue::Int(stats.events_detected));
  body.Set("messages_processed", JsonValue::Int(stats.messages_processed));
  body.Set("mean_processing_us",
           JsonValue::Number(stats.mean_processing_nanos / 1000.0));
  return Ok(body);
}

ApiResponse ApiService::HandleVessels() {
  const std::vector<std::string> keys =
      pipeline_->store().ScanPrefix("vessel:");
  JsonValue list = JsonValue::Array();
  for (const std::string& key : keys) {
    list.Append(JsonValue::Str(key.substr(std::string("vessel:").size())));
  }
  JsonValue body = JsonValue::Object();
  body.Set("count", JsonValue::Int(static_cast<int64_t>(keys.size())));
  body.Set("vessels", std::move(list));
  return Ok(body);
}

ApiResponse ApiService::HandleVessel(const Request& request) {
  char* end = nullptr;
  const unsigned long mmsi_raw =
      std::strtoul(request.segments[1].c_str(), &end, 10);
  if (end == request.segments[1].c_str()) {
    return Error(400, "invalid MMSI");
  }
  const Mmsi mmsi = static_cast<Mmsi>(mmsi_raw);
  if (request.segments.size() >= 3 && request.segments[2] == "forecast") {
    StatusOr<ForecastTrajectory> forecast = pipeline_->LatestForecast(mmsi);
    if (!forecast.ok()) return Error(404, forecast.status().ToString());
    JsonValue points = JsonValue::Array();
    for (const ForecastPoint& point : forecast->points) {
      JsonValue p = JsonValue::Object();
      p.Set("lat", JsonValue::Number(point.position.lat_deg));
      p.Set("lon", JsonValue::Number(point.position.lon_deg));
      p.Set("time", JsonValue::Int(point.time));
      points.Append(std::move(p));
    }
    JsonValue body = JsonValue::Object();
    body.Set("mmsi", JsonValue::Int(mmsi));
    body.Set("points", std::move(points));
    return Ok(body);
  }
  if (request.segments.size() >= 3 && request.segments[2] == "events") {
    StatusOr<std::vector<MaritimeEvent>> events =
        pipeline_->VesselEvents(mmsi);
    if (!events.ok()) return Error(404, events.status().ToString());
    JsonValue list = JsonValue::Array();
    for (const MaritimeEvent& event : *events) {
      list.Append(EventToJson(event));
    }
    JsonValue body = JsonValue::Object();
    body.Set("mmsi", JsonValue::Int(mmsi));
    body.Set("events", std::move(list));
    return Ok(body);
  }
  const auto state =
      pipeline_->store().HGetAll("vessel:" + std::to_string(mmsi));
  if (state.empty()) return Error(404, "vessel not found");
  JsonValue body = JsonValue::Object();
  body.Set("mmsi", JsonValue::Int(mmsi));
  for (const auto& [field, value] : state) {
    body.Set(field, JsonValue::Str(value));
  }
  return Ok(body);
}

ApiResponse ApiService::HandleEvents(const Request& request) {
  int limit = 100;
  if (auto it = request.query.find("limit"); it != request.query.end()) {
    limit = std::atoi(it->second.c_str());
    if (limit <= 0) return Error(400, "invalid limit");
  }
  JsonValue list = JsonValue::Array();
  for (const MaritimeEvent& event : pipeline_->RecentEvents(limit)) {
    list.Append(EventToJson(event));
  }
  JsonValue body = JsonValue::Object();
  body.Set("count", JsonValue::Int(static_cast<int64_t>(list.size())));
  body.Set("events", std::move(list));
  return Ok(body);
}

ApiResponse ApiService::HandleTraffic(const Request& request) {
  if (request.segments.size() < 2) return Error(400, "missing step");
  const int step = std::atoi(request.segments[1].c_str());
  if (step < 1 || step > kSvrfOutputSteps) {
    return Error(400, "step must be 1..6");
  }
  JsonValue cells = JsonValue::Array();
  int total = 0;
  for (const FlowCell& cell : pipeline_->TrafficFlow(step)) {
    const LatLng center = HexGrid::CellToLatLng(cell.cell);
    JsonValue c = JsonValue::Object();
    c.Set("lat", JsonValue::Number(center.lat_deg));
    c.Set("lon", JsonValue::Number(center.lon_deg));
    c.Set("count", JsonValue::Int(cell.count));
    cells.Append(std::move(c));
    total += cell.count;
  }
  JsonValue body = JsonValue::Object();
  body.Set("step", JsonValue::Int(step));
  body.Set("horizon_min", JsonValue::Int(step * 5));
  body.Set("total_vessels", JsonValue::Int(total));
  body.Set("cells", std::move(cells));
  return Ok(body);
}

ApiResponse ApiService::HandlePorts() {
  JsonValue list = JsonValue::Array();
  for (const PortTrafficStatus& status : pipeline_->PortTraffic()) {
    JsonValue port = JsonValue::Object();
    port.Set("name", JsonValue::Str(status.name));
    port.Set("occupancy", JsonValue::Int(status.occupancy));
    port.Set("inbound_30min", JsonValue::Int(status.inbound_30min));
    port.Set("congested", JsonValue::Bool(status.congested));
    list.Append(std::move(port));
  }
  JsonValue body = JsonValue::Object();
  body.Set("count", JsonValue::Int(static_cast<int64_t>(list.size())));
  body.Set("ports", std::move(list));
  return Ok(body);
}

ApiResponse ApiService::HandlePatterns(const Request& request) {
  int top = 20;
  if (auto it = request.query.find("top"); it != request.query.end()) {
    top = std::atoi(it->second.c_str());
    if (top <= 0) return Error(400, "invalid top");
  }
  JsonValue list = JsonValue::Array();
  for (const CellMobilityStats& stats : pipeline_->Patterns(top)) {
    const LatLng center = HexGrid::CellToLatLng(stats.cell);
    JsonValue cell = JsonValue::Object();
    cell.Set("lat", JsonValue::Number(center.lat_deg));
    cell.Set("lon", JsonValue::Number(center.lon_deg));
    cell.Set("observations", JsonValue::Int(stats.observations));
    cell.Set("vessels", JsonValue::Int(stats.distinct_vessels));
    cell.Set("mean_sog", JsonValue::Number(stats.mean_sog_knots));
    cell.Set("mean_cog", JsonValue::Number(stats.mean_cog_deg));
    list.Append(std::move(cell));
  }
  JsonValue body = JsonValue::Object();
  body.Set("count", JsonValue::Int(static_cast<int64_t>(list.size())));
  body.Set("cells", std::move(list));
  return Ok(body);
}

ApiResponse ApiService::HandleViewport(const Request& request) {
  bool ok1, ok2, ok3, ok4;
  BoundingBox box;
  box.min_lat = QueryDouble(request.query, "min_lat", 0, &ok1);
  box.min_lon = QueryDouble(request.query, "min_lon", 0, &ok2);
  box.max_lat = QueryDouble(request.query, "max_lat", 0, &ok3);
  box.max_lon = QueryDouble(request.query, "max_lon", 0, &ok4);
  if (!ok1 || !ok2 || !ok3 || !ok4) {
    return Error(400, "viewport requires min_lat, min_lon, max_lat, max_lon");
  }
  JsonValue list = JsonValue::Array();
  for (const std::string& key : pipeline_->store().ScanPrefix("vessel:")) {
    const auto state = pipeline_->store().HGetAll(key);
    auto lat_it = state.find("lat");
    auto lon_it = state.find("lon");
    if (lat_it == state.end() || lon_it == state.end()) continue;
    const LatLng position{std::atof(lat_it->second.c_str()),
                          std::atof(lon_it->second.c_str())};
    if (!box.Contains(position)) continue;
    JsonValue vessel = JsonValue::Object();
    vessel.Set("mmsi",
               JsonValue::Str(key.substr(std::string("vessel:").size())));
    vessel.Set("lat", JsonValue::Number(position.lat_deg));
    vessel.Set("lon", JsonValue::Number(position.lon_deg));
    if (auto sog_it = state.find("sog"); sog_it != state.end()) {
      vessel.Set("sog", JsonValue::Str(sog_it->second));
    }
    if (auto cog_it = state.find("cog"); cog_it != state.end()) {
      vessel.Set("cog", JsonValue::Str(cog_it->second));
    }
    list.Append(std::move(vessel));
  }
  JsonValue body = JsonValue::Object();
  body.Set("count", JsonValue::Int(static_cast<int64_t>(list.size())));
  body.Set("vessels", std::move(list));
  return Ok(body);
}

}  // namespace marlin

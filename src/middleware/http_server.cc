#include "middleware/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/logging.h"

namespace marlin {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

HttpServer::HttpServer(ApiService* api, int port) : api_(api), port_(port) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<uint16_t>(port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind() failed on port " +
                               std::to_string(port_));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  // Discover the OS-assigned port when 0 was requested.
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) == 0) {
    port_ = ntohs(address.sin_port);
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Claim the fd before closing so the accept loop never touches a stale
  // (or reused) descriptor number.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // Shut the listening socket down to unblock accept().
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = listen_fd_.load();
    if (fd < 0) return;
    const int client_fd = ::accept(fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    HandleConnection(client_fd);
    ::close(client_fd);
  }
}

void HttpServer::HandleConnection(int client_fd) {
  // Read until the end of the request head (or the cap).
  std::string head;
  char buffer[2048];
  while (head.size() < 16384 &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    head.append(buffer, static_cast<size_t>(n));
    // A bare GET has no body; a complete request line is enough once a
    // newline arrived.
    if (head.find('\n') != std::string::npos &&
        head.rfind("GET ", 0) == 0) {
      break;
    }
  }
  // Parse "METHOD target HTTP/x.y".
  std::string method = "GET", target = "/";
  {
    const size_t line_end = head.find('\n');
    const std::string line =
        head.substr(0, line_end == std::string::npos ? head.size() : line_end);
    const size_t first_space = line.find(' ');
    const size_t second_space =
        first_space == std::string::npos ? std::string::npos
                                         : line.find(' ', first_space + 1);
    if (first_space != std::string::npos) {
      method = line.substr(0, first_space);
      target = second_space == std::string::npos
                   ? line.substr(first_space + 1)
                   : line.substr(first_space + 1,
                                 second_space - first_space - 1);
    }
  }
  const ApiResponse response = api_->Handle(method, target);
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\nContent-Type: " +
                    response.content_type + "\r\nContent-Length: " +
                    std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(client_fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace marlin

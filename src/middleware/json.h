#ifndef MARLIN_MIDDLEWARE_JSON_H_
#define MARLIN_MIDDLEWARE_JSON_H_

#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace marlin {

/// Minimal JSON document builder (write-only) for the middleware API
/// responses. Produces deterministic output: object keys keep insertion
/// order, numbers are rendered with up to 6 significant decimals, strings
/// are escaped per RFC 8259. No parsing — the API only serves.
class JsonValue {
 public:
  /// Constructs a null value.
  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue Int(int64_t value);
  static JsonValue Str(std::string value);
  static JsonValue Object();
  static JsonValue Array();

  /// Object field setter; replaces an existing field. Returns *this for
  /// chaining. Must be an object.
  JsonValue& Set(const std::string& key, JsonValue value);

  /// Array element appender. Must be an array.
  JsonValue& Append(JsonValue value);

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  size_t size() const { return children_.size(); }

  /// Renders the document compactly (no whitespace).
  std::string Dump() const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInt, kString, kObject, kArray };

  static void EscapeTo(const std::string& raw, std::string* out);
  void DumpTo(std::string* out) const;

  Kind kind_;
  bool bool_value_ = false;
  double number_value_ = 0.0;
  int64_t int_value_ = 0;
  std::string string_value_;
  // For objects: (key, value) in insertion order. For arrays: keys empty.
  std::vector<std::pair<std::string, JsonValue>> children_;
};

}  // namespace marlin

#endif  // MARLIN_MIDDLEWARE_JSON_H_

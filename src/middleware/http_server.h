#ifndef MARLIN_MIDDLEWARE_HTTP_SERVER_H_
#define MARLIN_MIDDLEWARE_HTTP_SERVER_H_

#include <atomic>
#include <thread>

#include "middleware/api_service.h"
#include "util/status.h"

namespace marlin {

/// Minimal HTTP/1.1 server exposing an ApiService on a TCP port — the
/// transport in front of §3's middleware API. One accept loop on a
/// background thread, one short-lived handler per connection
/// (Connection: close). GET only, matching the API. Not a general-purpose
/// web server: no TLS, no keep-alive, request line + headers capped at
/// 16 KiB.
class HttpServer {
 public:
  /// `api` must outlive the server. `port` 0 lets the OS pick a free port
  /// (readable via port() after Start()).
  HttpServer(ApiService* api, int port);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept loop.
  Status Start();

  /// Stops accepting and joins the loop. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  int port() const { return port_; }

  int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);

  ApiService* api_;
  int port_;
  // Atomic: Stop() invalidates the fd concurrently with AcceptLoop()'s reads.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_{0};
  std::thread accept_thread_;
};

}  // namespace marlin

#endif  // MARLIN_MIDDLEWARE_HTTP_SERVER_H_

#ifndef MARLIN_VRF_ROUTE_FORECASTER_H_
#define MARLIN_VRF_ROUTE_FORECASTER_H_

#include <vector>

#include "ais/preprocess.h"
#include "ais/types.h"
#include "util/status.h"

namespace marlin {

/// One point of a forecast trajectory.
struct ForecastPoint {
  LatLng position;
  TimeMicros time = 0;
};

/// A short-term forecast trajectory: the present position followed by
/// kSvrfOutputSteps predicted positions at 5-minute spacing — the "7
/// positions (1 present position and 6 position predictions)" of §5.2.
struct ForecastTrajectory {
  Mmsi mmsi = 0;
  std::vector<ForecastPoint> points;

  /// Predicted position at the given horizon step (1-based; 0 = present).
  const ForecastPoint& at_step(int step) const {
    return points[static_cast<size_t>(step)];
  }
};

/// Interface of short-term vessel route forecasting models. Implementations
/// must be safe to call concurrently from many vessel actors: the paper
/// mounts a single model instance in memory and serves every actor with it
/// (§3).
class RouteForecaster {
 public:
  virtual ~RouteForecaster() = default;

  /// Predicts the vessel's trajectory over the next 30 minutes from the
  /// fixed-size input window.
  virtual StatusOr<ForecastTrajectory> Forecast(const SvrfInput& input) const = 0;

  /// Forecasts many windows in one call. `results` is resized to
  /// `inputs.size()`; element i carries the forecast (or per-item error) for
  /// inputs[i]. The default implementation loops over Forecast; models with
  /// a genuinely batched network pass (S-VRF) override it so the whole batch
  /// shares one column-batched forward.
  virtual void ForecastBatch(const std::vector<SvrfInput>& inputs,
                             std::vector<StatusOr<ForecastTrajectory>>* results)
      const {
    results->clear();
    results->reserve(inputs.size());
    for (const SvrfInput& input : inputs) results->push_back(Forecast(input));
  }

  /// Human-readable model name (for reports and benches).
  virtual std::string_view name() const = 0;
};

}  // namespace marlin

#endif  // MARLIN_VRF_ROUTE_FORECASTER_H_

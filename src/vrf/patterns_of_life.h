#ifndef MARLIN_VRF_PATTERNS_OF_LIFE_H_
#define MARLIN_VRF_PATTERNS_OF_LIFE_H_

#include <unordered_map>
#include <vector>

#include "ais/types.h"
#include "hexgrid/hexgrid.h"

namespace marlin {

/// Aggregated historical mobility statistics of one grid cell.
struct CellMobilityStats {
  CellId cell = kInvalidCellId;
  int64_t observations = 0;
  int64_t distinct_vessels = 0;
  double mean_sog_knots = 0.0;
  double mean_cog_deg = 0.0;  // circular mean
};

/// "Patterns of Life" [32] (§4.1): aggregated vessel mobility metrics over
/// the hexagonal grid, extracted from historical AIS data and visualised
/// alongside long-term route forecasts. Tracks per-cell observation counts,
/// distinct vessel counts, and mean speed/course.
class PatternsOfLife {
 public:
  explicit PatternsOfLife(int resolution = 6) : resolution_(resolution) {}

  /// Ingests one historical position report.
  void AddObservation(const AisPosition& report);

  /// Stats for the cell containing `position` (zeroed stats when never
  /// observed).
  CellMobilityStats Query(const LatLng& position) const;

  /// The `n` most-trafficked cells, descending by observation count.
  std::vector<CellMobilityStats> TopCells(int n) const;

  int64_t TotalObservations() const { return total_; }
  size_t ActiveCells() const { return cells_.size(); }
  int resolution() const { return resolution_; }

 private:
  struct Accumulator {
    int64_t observations = 0;
    double sog_sum = 0.0;
    double cog_sin_sum = 0.0;
    double cog_cos_sum = 0.0;
    std::unordered_map<Mmsi, int> vessels;
  };

  CellMobilityStats Render(CellId cell, const Accumulator& acc) const;

  int resolution_;
  std::unordered_map<CellId, Accumulator> cells_;
  int64_t total_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_VRF_PATTERNS_OF_LIFE_H_

#ifndef MARLIN_VRF_ENVCLUS_H_
#define MARLIN_VRF_ENVCLUS_H_

#include <array>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "ais/types.h"
#include "hexgrid/hexgrid.h"
#include "geo/world.h"
#include "util/status.h"

namespace marlin {

/// One historical port-to-port trip extracted from a vessel track.
struct Trip {
  Mmsi mmsi = 0;
  int origin_port = -1;
  int destination_port = -1;
  VesselType vessel_type = VesselType::kUnknown;
  std::vector<AisPosition> points;
};

/// Extracts port-to-port trips from per-vessel tracks: a trip spans the
/// track between consecutive visits to two distinct ports (a visit is any
/// position within `port_radius_m` of the port).
std::vector<Trip> ExtractTrips(
    const std::map<Mmsi, std::vector<AisPosition>>& tracks,
    const std::vector<Port>& ports, double port_radius_m,
    const std::map<Mmsi, VesselType>& vessel_types = {});

/// Marlin's implementation of the EnvClus* long-term route forecasting
/// method (§4.1, [34, 35]): historical AIS positions are clustered onto the
/// hexagonal grid to extract common pathways; the pathways become a weighted
/// transition graph per origin-destination port pair; at significant graph
/// nodes (route junctions) transition choice is conditioned on vessel
/// features (here: vessel type). A forecast is the most probable graph path
/// from the origin to the destination, which by construction follows
/// historically travelled cells (realistic paths that avoid land).
class EnvClusModel {
 public:
  struct Config {
    /// Grid resolution for pathway clustering (res 6 ≈ 17 km cells).
    int resolution = 6;
    /// Port visit radius.
    double port_radius_m = 25000.0;
    /// Additive smoothing for transition probabilities.
    double smoothing = 0.5;
  };

  explicit EnvClusModel(const World* world);
  EnvClusModel(const World* world, const Config& config);

  /// Ingests one historical trip into the OD-pair transition graph.
  void AddTrip(const Trip& trip);

  /// Convenience: extract trips from tracks and ingest them all. Returns
  /// the number of trips ingested.
  int BuildFromTracks(const std::map<Mmsi, std::vector<AisPosition>>& tracks,
                      const std::map<Mmsi, VesselType>& vessel_types = {});

  /// Extra per-cell routing cost, in the same -log-probability units as the
  /// transition weights (e.g. a weather penalty; §7's weather-aware
  /// routing). Return 0 for no penalty.
  using CellCostFn = std::function<double(CellId)>;

  /// Forecasts the route (sequence of cell-center positions, origin first)
  /// from `origin_port` to `destination_port` for a vessel of `type`.
  /// NotFound when no historical pathway connects the pair.
  StatusOr<std::vector<LatLng>> ForecastRoute(int origin_port,
                                              int destination_port,
                                              VesselType type) const;

  /// Weather-aware (or otherwise cost-biased) variant: `extra_cost` is
  /// added to every edge entering a cell, steering the most-probable path
  /// around penalised cells while still following historical pathways only.
  StatusOr<std::vector<LatLng>> ForecastRoute(int origin_port,
                                              int destination_port,
                                              VesselType type,
                                              const CellCostFn& extra_cost) const;

  /// Number of distinct OD pairs with at least one trip.
  int KnownOdPairs() const { return static_cast<int>(graphs_.size()); }

  /// Total trips ingested.
  int TotalTrips() const { return total_trips_; }

  /// All cells ever visited on the given OD pair (for tests/inspection and
  /// for corridor construction by the route-deviation detector).
  std::vector<CellId> VisitedCells(int origin_port,
                                   int destination_port) const;

  const Config& config() const { return config_; }

  /// Serialises the per-OD-pair transition graphs (production models are
  /// trained offline on archived AIS and loaded at initialisation).
  std::string Serialize() const;
  /// Restores Serialize() output, replacing any ingested trips. The grid
  /// resolution in the blob must match this model's configuration.
  Status Deserialize(const std::string& blob);

 private:
  static constexpr int kNumTypes = 9;  // VesselType cardinality

  struct EdgeStats {
    int total = 0;
    std::array<int, kNumTypes> by_type{};
  };
  struct OdGraph {
    // cell -> successor cell -> stats
    std::unordered_map<CellId, std::unordered_map<CellId, EdgeStats>> edges;
    int trips = 0;
  };

  /// Maps a trip's points to its deduplicated cell sequence.
  std::vector<CellId> CellSequence(const std::vector<AisPosition>& points) const;

  const World* world_;
  Config config_;
  std::map<std::pair<int, int>, OdGraph> graphs_;
  int total_trips_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_VRF_ENVCLUS_H_

#ifndef MARLIN_VRF_INFERENCE_BATCHER_H_
#define MARLIN_VRF_INFERENCE_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "vrf/route_forecaster.h"

namespace marlin {

/// Coalesces forecast requests from many vessel actors into column-batched
/// RouteForecaster::ForecastBatch calls, amortising the per-inference
/// network overhead that dominates the per-message cost at saturation
/// (the Figure 6 plateau).
///
/// Flush policy: a batch runs as soon as `max_batch` requests are pending —
/// on the thread whose Submit completed the batch (leader/follower, no
/// hand-off latency) — and a background ticker flushes stragglers that have
/// waited about `flush_deadline_micros` (worst case one extra tick).
/// Callbacks are invoked on whichever thread runs the flush, so they must
/// be thread-safe; actor callers satisfy this by Tell-ing the result back
/// to themselves.
///
/// Determinism: with `background_flusher=false` nothing runs until Submit
/// fills a batch or the caller invokes Flush(), which makes the batcher
/// schedulable under the chk deterministic scheduler. Batching itself never
/// changes results — forecast columns are arithmetically independent, so a
/// batched forecast is bitwise identical to the single-input call.
class InferenceBatcher {
 public:
  struct Options {
    /// Requests per batch; a full batch flushes inline on the submitter.
    int max_batch = 32;
    /// Pending-queue cap; Submit returns ResourceExhausted beyond it and
    /// the caller falls back to a synchronous forecast (backpressure
    /// instead of unbounded buffering).
    int max_queue = 4096;
    /// Age at which the ticker flushes a partial batch.
    int64_t flush_deadline_micros = 2000;
    /// Start the deadline ticker thread. Turn off in deterministic tests
    /// and drive Flush() manually.
    bool background_flusher = true;
    /// Metrics sink; null = process-global registry.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Receives the result plus this request's share of the batched forward
  /// cost (batch wall nanos / batch size), for callers that account
  /// per-message processing time.
  using Callback =
      std::function<void(StatusOr<ForecastTrajectory>, int64_t per_item_nanos)>;

  /// `forecaster` must outlive the batcher.
  InferenceBatcher(const RouteForecaster* forecaster, const Options& options);
  ~InferenceBatcher();

  InferenceBatcher(const InferenceBatcher&) = delete;
  InferenceBatcher& operator=(const InferenceBatcher&) = delete;

  /// Enqueues one request; `callback` fires exactly once with the result
  /// (from a flushing thread). Fails with ResourceExhausted when the queue
  /// is full and with FailedPrecondition after Stop(); on failure the
  /// callback is NOT invoked and the caller owns the fallback.
  Status Submit(const SvrfInput& input, Callback callback);

  /// Drains every pending request on the calling thread (possibly several
  /// batches). Returns the number of requests flushed.
  int Flush();

  /// Stops the ticker and flushes the remainder. Idempotent; implied by the
  /// destructor. After Stop, Submit fails.
  void Stop();

  /// True when no requests are pending AND no taken batch is still running
  /// its callbacks. Once the producers have stopped submitting, Quiescent()
  /// means every callback has fired.
  bool Quiescent() const;

  struct Stats {
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    uint64_t batches = 0;
    uint64_t size_flushes = 0;      // batches flushed because they filled
    uint64_t deadline_flushes = 0;  // batches flushed by tick or Flush()
  };
  Stats stats() const;

  const Options& options() const { return options_; }

 private:
  struct Request {
    SvrfInput input;
    Callback callback;
  };

  /// Runs one batch through the forecaster and fires its callbacks. Called
  /// without `mu_` held.
  void RunBatch(std::vector<Request>* batch, bool size_flush);

  void TickerLoop();

  const RouteForecaster* forecaster_;
  const Options options_;

  mutable std::mutex mu_;
  std::vector<Request> pending_;  // guarded by mu_
  bool stopped_ = false;          // guarded by mu_
  /// Requests removed from pending_ whose callbacks have not fired yet.
  /// Incremented under mu_ when a batch is taken (so there is no window
  /// where a request is in neither count), decremented after its callback.
  std::atomic<int> in_flight_{0};
  std::condition_variable ticker_cv_;
  /// Deadline ticker. A raw thread rather than a Dispatcher task because it
  /// must fire while the actor system is busy (that is its whole job) and
  /// it is disabled under the deterministic scheduler
  /// (background_flusher=false).
  std::thread ticker_;  // chk-lint: allow(no-raw-thread)

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> size_flushes_{0};
  std::atomic<uint64_t> deadline_flushes_{0};

  // Cached metric handles (stable pointers; see MetricsRegistry docs).
  obs::Histogram* batch_size_hist_;
  obs::Histogram* per_item_nanos_hist_;

  // Scratch reused across RunBatch calls on the flushing thread would race;
  // kept per-call (vectors are cheap next to the network forward).
};

}  // namespace marlin

#endif  // MARLIN_VRF_INFERENCE_BATCHER_H_

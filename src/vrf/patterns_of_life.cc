#include "vrf/patterns_of_life.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesy.h"

namespace marlin {

void PatternsOfLife::AddObservation(const AisPosition& report) {
  const CellId cell = HexGrid::LatLngToCell(report.position, resolution_);
  if (cell == kInvalidCellId) return;
  Accumulator& acc = cells_[cell];
  ++acc.observations;
  acc.sog_sum += report.sog_knots;
  const double cog_rad = report.cog_deg * kDegToRad;
  acc.cog_sin_sum += std::sin(cog_rad);
  acc.cog_cos_sum += std::cos(cog_rad);
  ++acc.vessels[report.mmsi];
  ++total_;
}

CellMobilityStats PatternsOfLife::Render(CellId cell,
                                         const Accumulator& acc) const {
  CellMobilityStats stats;
  stats.cell = cell;
  stats.observations = acc.observations;
  stats.distinct_vessels = static_cast<int64_t>(acc.vessels.size());
  if (acc.observations > 0) {
    stats.mean_sog_knots = acc.sog_sum / static_cast<double>(acc.observations);
    stats.mean_cog_deg = std::fmod(
        std::atan2(acc.cog_sin_sum, acc.cog_cos_sum) * kRadToDeg + 360.0,
        360.0);
  }
  return stats;
}

CellMobilityStats PatternsOfLife::Query(const LatLng& position) const {
  const CellId cell = HexGrid::LatLngToCell(position, resolution_);
  auto it = cells_.find(cell);
  if (it == cells_.end()) {
    CellMobilityStats empty;
    empty.cell = cell;
    return empty;
  }
  return Render(cell, it->second);
}

std::vector<CellMobilityStats> PatternsOfLife::TopCells(int n) const {
  std::vector<CellMobilityStats> all;
  all.reserve(cells_.size());
  for (const auto& [cell, acc] : cells_) all.push_back(Render(cell, acc));
  std::sort(all.begin(), all.end(),
            [](const CellMobilityStats& a, const CellMobilityStats& b) {
              return a.observations > b.observations;
            });
  if (static_cast<int>(all.size()) > n) all.resize(static_cast<size_t>(n));
  return all;
}

}  // namespace marlin

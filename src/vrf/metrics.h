#ifndef MARLIN_VRF_METRICS_H_
#define MARLIN_VRF_METRICS_H_

#include <array>
#include <vector>

#include "vrf/route_forecaster.h"

namespace marlin {

/// Average Displacement Error per prediction horizon, meters — the metric
/// of Table 1: ADE at t = 5, 10, 15, 20, 25, 30 minutes plus their mean.
struct HorizonErrors {
  std::array<double, kSvrfOutputSteps> ade_m{};
  double mean_ade_m = 0.0;
  int64_t samples = 0;
};

/// Evaluates a forecaster against supervised samples: for each sample the
/// model forecasts from the input window and the displacement error against
/// the ground-truth position is averaged per horizon.
HorizonErrors EvaluateForecaster(const RouteForecaster& model,
                                 const std::vector<SvrfSample>& samples);

/// Reconstructs the ground-truth positions of a sample from its anchor and
/// target transitions (index 0 = t+5min ... 5 = t+30min).
std::array<LatLng, kSvrfOutputSteps> GroundTruthPositions(
    const SvrfSample& sample);

}  // namespace marlin

#endif  // MARLIN_VRF_METRICS_H_

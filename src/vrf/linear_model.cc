#include "vrf/linear_model.h"

#include <cmath>

#include "geo/geodesy.h"

namespace marlin {

StatusOr<ForecastTrajectory> LinearKinematicModel::Forecast(
    const SvrfInput& input) const {
  if (!std::isfinite(input.anchor.lat_deg) ||
      !std::isfinite(input.anchor.lon_deg)) {
    return Status::InvalidArgument("non-finite anchor position");
  }
  double sog = input.anchor_sog_knots;
  double cog = input.anchor_cog_deg;
  // Fall back to the velocity implied by the last displacement when the
  // reported kinematics are unavailable.
  if (sog >= 102.3 || sog < 0.0 || cog >= 360.0 || cog < 0.0) {
    const Displacement& last =
        input.displacements[kSvrfInputLength - 1];
    double north, east;
    DegreesToMeters(last.dlat_deg, last.dlon_deg, input.anchor.lat_deg,
                    &north, &east);
    const double dt = last.dt_sec > 0.0 ? last.dt_sec : 1.0;
    const double speed_mps = std::hypot(north, east) / dt;
    sog = speed_mps / kKnotsToMps;
    cog = std::fmod(std::atan2(east, north) * kRadToDeg + 360.0, 360.0);
  }
  ForecastTrajectory trajectory;
  trajectory.points.reserve(kSvrfOutputSteps + 1);
  trajectory.points.push_back(ForecastPoint{input.anchor, input.anchor_time});
  const double speed_mps = sog * kKnotsToMps;
  for (int step = 1; step <= kSvrfOutputSteps; ++step) {
    const double seconds =
        static_cast<double>(step) * kSvrfStepMicros / kMicrosPerSecond;
    ForecastPoint point;
    point.position = DestinationPoint(input.anchor, cog, speed_mps * seconds);
    point.time = input.anchor_time + step * kSvrfStepMicros;
    trajectory.points.push_back(point);
  }
  return trajectory;
}

}  // namespace marlin

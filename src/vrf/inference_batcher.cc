#include "vrf/inference_batcher.h"

#include <chrono>
#include <utility>

namespace marlin {

InferenceBatcher::InferenceBatcher(const RouteForecaster* forecaster,
                                   const Options& options)
    : forecaster_(forecaster), options_(options) {
  obs::MetricsRegistry* registry =
      obs::MetricsRegistry::OrGlobal(options_.metrics);
  // Batch sizes are small integers; give the histogram fine buckets so the
  // coalescing behaviour (1 vs 8 vs 32) is visible, not smeared.
  obs::Histogram::Options size_buckets;
  size_buckets.lowest = 1.0;
  size_buckets.growth = 2.0;
  size_buckets.buckets = 10;
  batch_size_hist_ = registry->GetHistogram(
      "marlin_nn_inference_batch_size",
      "Requests coalesced per batched NN forward", {}, size_buckets);
  per_item_nanos_hist_ = registry->GetHistogram(
      "marlin_nn_inference_nanos",
      "SequenceRegressor inference latency in nanoseconds per sample",
      {{"mode", "batched"}});
  if (options_.background_flusher) {
    // See the ticker_ member note.
    ticker_ = std::thread([this] {  // chk-lint: allow(no-raw-thread)
      TickerLoop();
    });
  }
}

InferenceBatcher::~InferenceBatcher() { Stop(); }

Status InferenceBatcher::Submit(const SvrfInput& input, Callback callback) {
  std::vector<Request> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::FailedPrecondition("inference batcher stopped");
    }
    if (static_cast<int>(pending_.size()) >= options_.max_queue) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("inference batch queue full");
    }
    pending_.push_back(Request{input, std::move(callback)});
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (static_cast<int>(pending_.size()) < options_.max_batch) {
      return Status::Ok();
    }
    // This submit completed a batch: take it and run it on this thread
    // (leader/follower — no wake-up latency, no idle flusher thread).
    batch.swap(pending_);
    in_flight_.fetch_add(static_cast<int>(batch.size()),
                         std::memory_order_relaxed);
  }
  RunBatch(&batch, /*size_flush=*/true);
  return Status::Ok();
}

int InferenceBatcher::Flush() {
  int flushed = 0;
  for (;;) {
    std::vector<Request> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty()) break;
      if (static_cast<int>(pending_.size()) <= options_.max_batch) {
        batch.swap(pending_);
      } else {
        batch.assign(std::make_move_iterator(pending_.begin()),
                     std::make_move_iterator(pending_.begin() +
                                             options_.max_batch));
        pending_.erase(pending_.begin(),
                       pending_.begin() + options_.max_batch);
      }
      in_flight_.fetch_add(static_cast<int>(batch.size()),
                           std::memory_order_relaxed);
    }
    flushed += static_cast<int>(batch.size());
    RunBatch(&batch, /*size_flush=*/false);
  }
  return flushed;
}

void InferenceBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      // Already stopped; the first Stop flushed and joined.
      return;
    }
    stopped_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  Flush();
}

bool InferenceBatcher::Quiescent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.empty() && in_flight_.load(std::memory_order_acquire) == 0;
}

InferenceBatcher::Stats InferenceBatcher::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.size_flushes = size_flushes_.load(std::memory_order_relaxed);
  s.deadline_flushes = deadline_flushes_.load(std::memory_order_relaxed);
  return s;
}

void InferenceBatcher::RunBatch(std::vector<Request>* batch, bool size_flush) {
  if (batch->empty()) return;
  const int n = static_cast<int>(batch->size());
  std::vector<SvrfInput> inputs;
  inputs.reserve(batch->size());
  for (const Request& r : *batch) inputs.push_back(r.input);

  std::vector<StatusOr<ForecastTrajectory>> results;
  const auto start = std::chrono::steady_clock::now();
  forecaster_->ForecastBatch(inputs, &results);
  const int64_t total_nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count();

  batches_.fetch_add(1, std::memory_order_relaxed);
  (size_flush ? size_flushes_ : deadline_flushes_)
      .fetch_add(1, std::memory_order_relaxed);
  batch_size_hist_->Observe(n);
  const int64_t per_item_nanos = total_nanos / n;
  per_item_nanos_hist_->Observe(per_item_nanos);

  for (int i = 0; i < n; ++i) {
    if (static_cast<size_t>(i) < results.size()) {
      (*batch)[static_cast<size_t>(i)].callback(
          std::move(results[static_cast<size_t>(i)]), per_item_nanos);
    } else {
      // A forecaster that under-fills `results` violates the contract;
      // surface it per-item rather than dropping the callback.
      (*batch)[static_cast<size_t>(i)].callback(
          Status::Internal("forecaster returned short batch"), per_item_nanos);
    }
    in_flight_.fetch_sub(1, std::memory_order_release);
  }
}

void InferenceBatcher::TickerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopped_) {
    ticker_cv_.wait_for(
        lock, std::chrono::microseconds(options_.flush_deadline_micros));
    if (stopped_) break;
    if (pending_.empty()) continue;
    lock.unlock();
    Flush();
    lock.lock();
  }
}

}  // namespace marlin

#include "vrf/envclus.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>

#include "geo/geodesy.h"

namespace marlin {
namespace {

/// Index of the nearest port within `radius_m`, or -1.
int NearestPort(const std::vector<Port>& ports, const LatLng& position,
                double radius_m) {
  int best = -1;
  double best_d = radius_m;
  for (size_t i = 0; i < ports.size(); ++i) {
    const double d = ApproxDistanceMeters(ports[i].position, position);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

std::vector<Trip> ExtractTrips(
    const std::map<Mmsi, std::vector<AisPosition>>& tracks,
    const std::vector<Port>& ports, double port_radius_m,
    const std::map<Mmsi, VesselType>& vessel_types) {
  std::vector<Trip> trips;
  for (const auto& [mmsi, track] : tracks) {
    VesselType type = VesselType::kUnknown;
    if (auto it = vessel_types.find(mmsi); it != vessel_types.end()) {
      type = it->second;
    }
    int current_port = -1;
    size_t trip_start = 0;
    for (size_t i = 0; i < track.size(); ++i) {
      const int port = NearestPort(ports, track[i].position, port_radius_m);
      if (port < 0) continue;
      if (current_port < 0) {
        current_port = port;
        trip_start = i;
        continue;
      }
      if (port != current_port) {
        Trip trip;
        trip.mmsi = mmsi;
        trip.origin_port = current_port;
        trip.destination_port = port;
        trip.vessel_type = type;
        trip.points.assign(track.begin() + static_cast<long>(trip_start),
                           track.begin() + static_cast<long>(i) + 1);
        if (trip.points.size() >= 3) trips.push_back(std::move(trip));
        current_port = port;
        trip_start = i;
      } else {
        // Still at (or back at) the same port: restart the trip window so
        // loitering does not accumulate into the next trip.
        trip_start = i;
      }
    }
  }
  return trips;
}

EnvClusModel::EnvClusModel(const World* world)
    : EnvClusModel(world, Config()) {}

EnvClusModel::EnvClusModel(const World* world, const Config& config)
    : world_(world), config_(config) {}

std::vector<CellId> EnvClusModel::CellSequence(
    const std::vector<AisPosition>& points) const {
  std::vector<CellId> cells;
  for (const AisPosition& p : points) {
    const CellId cell = HexGrid::LatLngToCell(p.position, config_.resolution);
    if (cell == kInvalidCellId) continue;
    if (cells.empty() || cells.back() != cell) cells.push_back(cell);
  }
  return cells;
}

void EnvClusModel::AddTrip(const Trip& trip) {
  if (trip.origin_port < 0 || trip.destination_port < 0 ||
      trip.origin_port == trip.destination_port) {
    return;
  }
  const std::vector<CellId> cells = CellSequence(trip.points);
  if (cells.size() < 2) return;
  OdGraph& graph = graphs_[{trip.origin_port, trip.destination_port}];
  const int type_index = static_cast<int>(trip.vessel_type);
  for (size_t i = 0; i + 1 < cells.size(); ++i) {
    EdgeStats& edge = graph.edges[cells[i]][cells[i + 1]];
    ++edge.total;
    if (type_index >= 0 && type_index < kNumTypes) {
      ++edge.by_type[static_cast<size_t>(type_index)];
    }
  }
  ++graph.trips;
  ++total_trips_;
}

int EnvClusModel::BuildFromTracks(
    const std::map<Mmsi, std::vector<AisPosition>>& tracks,
    const std::map<Mmsi, VesselType>& vessel_types) {
  const std::vector<Trip> trips = ExtractTrips(
      tracks, world_->ports(), config_.port_radius_m, vessel_types);
  for (const Trip& trip : trips) AddTrip(trip);
  return static_cast<int>(trips.size());
}

StatusOr<std::vector<LatLng>> EnvClusModel::ForecastRoute(
    int origin_port, int destination_port, VesselType type) const {
  return ForecastRoute(origin_port, destination_port, type, CellCostFn());
}

StatusOr<std::vector<LatLng>> EnvClusModel::ForecastRoute(
    int origin_port, int destination_port, VesselType type,
    const CellCostFn& extra_cost) const {
  auto graph_it = graphs_.find({origin_port, destination_port});
  if (graph_it == graphs_.end()) {
    return Status::NotFound("no historical pathway for this OD pair");
  }
  const OdGraph& graph = graph_it->second;
  const CellId origin_cell = HexGrid::LatLngToCell(
      world_->ports()[static_cast<size_t>(origin_port)].position,
      config_.resolution);
  const CellId dest_cell = HexGrid::LatLngToCell(
      world_->ports()[static_cast<size_t>(destination_port)].position,
      config_.resolution);
  const int type_index = static_cast<int>(type);

  // Dijkstra over -log(transition probability). At junctions the
  // probability is conditioned on the vessel type when that type has been
  // observed there (the junction-classifier role), otherwise on the total
  // traffic.
  std::unordered_map<CellId, double> distance;
  std::unordered_map<CellId, CellId> parent;
  using QueueEntry = std::pair<double, CellId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  distance[origin_cell] = 0.0;
  queue.emplace(0.0, origin_cell);
  while (!queue.empty()) {
    const auto [d, cell] = queue.top();
    queue.pop();
    if (d > distance[cell] + 1e-12) continue;
    if (cell == dest_cell) break;
    auto edges_it = graph.edges.find(cell);
    if (edges_it == graph.edges.end()) continue;
    // Node totals for normalisation.
    double node_total = 0.0, node_type_total = 0.0;
    for (const auto& [next, stats] : edges_it->second) {
      node_total += stats.total;
      node_type_total += stats.by_type[static_cast<size_t>(type_index)];
    }
    const bool use_type = node_type_total > 0.0;
    const double fanout = static_cast<double>(edges_it->second.size());
    for (const auto& [next, stats] : edges_it->second) {
      const double count =
          use_type
              ? static_cast<double>(stats.by_type[static_cast<size_t>(type_index)])
              : static_cast<double>(stats.total);
      const double total = use_type ? node_type_total : node_total;
      const double p = (count + config_.smoothing) /
                       (total + config_.smoothing * fanout);
      double w = -std::log(p);
      if (extra_cost) w += extra_cost(next);
      auto next_it = distance.find(next);
      const double candidate = d + w;
      if (next_it == distance.end() || candidate < next_it->second - 1e-12) {
        distance[next] = candidate;
        parent[next] = cell;
        queue.emplace(candidate, next);
      }
    }
  }
  if (distance.find(dest_cell) == distance.end()) {
    return Status::NotFound("destination not reachable through pathways");
  }
  std::vector<CellId> cells;
  for (CellId cell = dest_cell;;) {
    cells.push_back(cell);
    if (cell == origin_cell) break;
    cell = parent.at(cell);
  }
  std::reverse(cells.begin(), cells.end());
  std::vector<LatLng> route;
  route.reserve(cells.size());
  for (CellId cell : cells) route.push_back(HexGrid::CellToLatLng(cell));
  return route;
}

std::string EnvClusModel::Serialize() const {
  std::string out = "marlin-envclus-v1 " +
                    std::to_string(config_.resolution) + " " +
                    std::to_string(graphs_.size()) + " " +
                    std::to_string(total_trips_) + "\n";
  for (const auto& [od, graph] : graphs_) {
    size_t edges = 0;
    for (const auto& [cell, successors] : graph.edges) {
      edges += successors.size();
    }
    out += "G " + std::to_string(od.first) + " " + std::to_string(od.second) +
           " " + std::to_string(graph.trips) + " " + std::to_string(edges) +
           "\n";
    for (const auto& [cell, successors] : graph.edges) {
      for (const auto& [next, stats] : successors) {
        out += std::to_string(cell) + " " + std::to_string(next) + " " +
               std::to_string(stats.total);
        for (int count : stats.by_type) {
          out += " " + std::to_string(count);
        }
        out += "\n";
      }
    }
  }
  return out;
}

Status EnvClusModel::Deserialize(const std::string& blob) {
  std::istringstream in(blob);
  std::string magic;
  int resolution = -1;
  size_t num_graphs = 0;
  int total_trips = 0;
  if (!(in >> magic >> resolution >> num_graphs >> total_trips)) {
    return Status::InvalidArgument("malformed EnvClus header");
  }
  if (magic != "marlin-envclus-v1") {
    return Status::InvalidArgument("unknown EnvClus format: " + magic);
  }
  if (resolution != config_.resolution) {
    return Status::FailedPrecondition("grid resolution mismatch");
  }
  std::map<std::pair<int, int>, OdGraph> graphs;
  for (size_t g = 0; g < num_graphs; ++g) {
    std::string tag;
    int origin, destination, trips;
    size_t edges;
    if (!(in >> tag >> origin >> destination >> trips >> edges) ||
        tag != "G") {
      return Status::InvalidArgument("malformed OD-graph header");
    }
    OdGraph graph;
    graph.trips = trips;
    for (size_t e = 0; e < edges; ++e) {
      CellId from, to;
      EdgeStats stats;
      if (!(in >> from >> to >> stats.total)) {
        return Status::InvalidArgument("truncated edge list");
      }
      for (int& count : stats.by_type) {
        if (!(in >> count)) {
          return Status::InvalidArgument("truncated type counts");
        }
      }
      graph.edges[from][to] = stats;
    }
    graphs[{origin, destination}] = std::move(graph);
  }
  graphs_ = std::move(graphs);
  total_trips_ = total_trips;
  return Status::Ok();
}

std::vector<CellId> EnvClusModel::VisitedCells(int origin_port,
                                               int destination_port) const {
  std::vector<CellId> out;
  auto it = graphs_.find({origin_port, destination_port});
  if (it == graphs_.end()) return out;
  for (const auto& [cell, successors] : it->second.edges) {
    out.push_back(cell);
    for (const auto& [next, stats] : successors) out.push_back(next);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace marlin

#ifndef MARLIN_VRF_SVRF_MODEL_H_
#define MARLIN_VRF_SVRF_MODEL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/model.h"
#include "vrf/route_forecaster.h"

namespace marlin {

/// Normalisation constants mapping raw displacement features to model space
/// and predictions back. Fitted on the training set (robust scales) and
/// serialized with the model.
struct FeatureScaler {
  double dlat_scale = 0.01;   // degrees per unit
  double dlon_scale = 0.015;  // degrees per unit
  double dt_scale = 120.0;    // seconds per unit

  /// Fits scales as ~2x the RMS of each feature over the samples.
  static FeatureScaler Fit(const std::vector<SvrfSample>& samples);
};

/// The Short-term Vessel Route Forecasting model of §4.2: a fixed
/// 20-displacement input tensor through one BiLSTM layer, one fully
/// connected layer, and a linear output head producing 6 (Δlat, Δlon)
/// transitions at 5-minute intervals up to the 30-minute horizon, trained
/// with Adam and in-layer L1 regularisation.
///
/// A single SvrfModel instance is mounted once and shared by every vessel
/// actor (§3); `Forecast` is therefore internally synchronised.
class SvrfModel : public RouteForecaster {
 public:
  struct Config {
    int hidden_dim = 32;  // BiLSTM units per direction
    int dense_dim = 32;
    /// Augment the (Δlat, Δlon, Δt) displacement features with implied
    /// velocity channels (Δlat/Δt, Δlon/Δt), normalising away the sampling
    /// irregularity. Ablated by bench/ablation_preprocessing.
    bool use_velocity_features = true;
    uint64_t seed = 4242;
  };

  SvrfModel();
  explicit SvrfModel(const Config& config);
  ~SvrfModel() override;

  SvrfModel(const SvrfModel&) = delete;
  SvrfModel& operator=(const SvrfModel&) = delete;

  /// Converts one preprocessed input window into model feature space.
  std::vector<std::vector<double>> EncodeInput(const SvrfInput& input) const;

  /// Converts one supervised sample into a trainer sample.
  SeqSample EncodeSample(const SvrfSample& sample) const;

  StatusOr<ForecastTrajectory> Forecast(const SvrfInput& input) const override;

  /// Batched forecast: encodes all windows into one column-batched tensor
  /// and runs a single PredictBatch forward on this thread's replica.
  /// Columns are arithmetically independent, so each result is bitwise
  /// identical to the corresponding single-input Forecast; invalid inputs
  /// (non-finite anchor) get a per-item error without poisoning the batch.
  void ForecastBatch(const std::vector<SvrfInput>& inputs,
                     std::vector<StatusOr<ForecastTrajectory>>* results)
      const override;

  std::string_view name() const override { return "S-VRF"; }

  /// Fits the feature scaler and trains the network.
  /// Returns the final training loss.
  double Train(const std::vector<SvrfSample>& train,
               const std::vector<SvrfSample>& validation,
               const Trainer::Options& options);

  /// Serialises scaler + weights.
  std::string Serialize() const;
  Status Deserialize(const std::string& blob);

  /// File persistence: train once, deploy everywhere (the production flow —
  /// the pilot loads a pre-trained model at initialisation).
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  const FeatureScaler& scaler() const { return scaler_; }
  void set_scaler(const FeatureScaler& scaler) { scaler_ = scaler; }

  /// Number of replicas the calling thread currently caches across all live
  /// SvrfModel instances. Test-only observability for the replica-eviction
  /// regression (a thread that cycles through short-lived models must not
  /// accumulate replicas without bound).
  static size_t ThreadLocalReplicaCountForTesting();

 private:
  /// Returns this thread's replica of the network, refreshed from the
  /// master when the weights version changed. The master instance is
  /// mounted once (§3); replicas only copy weights, so concurrent vessel
  /// actors infer without serialising on a lock. Replicas are keyed by a
  /// process-unique model id (never by address, which reuse can alias) and
  /// entries of destroyed models are pruned on the next miss.
  SequenceRegressor* ThreadLocalNet() const;

  /// Writes the encoded features of one displacement into out[0..D).
  void EncodeStep(const Displacement& d, double* out) const;

  /// Unrolls the scaled network output for one sample back into a
  /// trajectory; value_at(i) is the i-th raw output for that sample.
  template <typename ValueAt>
  ForecastTrajectory UnrollTrajectory(const SvrfInput& input,
                                      ValueAt&& value_at) const;

  Config config_;
  FeatureScaler scaler_;
  mutable std::mutex mu_;  // guards master net_ during clone/train
  std::unique_ptr<SequenceRegressor> net_;
  std::atomic<uint64_t> version_{1};
  /// Process-unique identity of this model instance (registered in a global
  /// live-model set; the destructor unregisters it so thread replicas of
  /// dead models can be evicted).
  uint64_t model_id_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_VRF_SVRF_MODEL_H_

#ifndef MARLIN_VRF_LINEAR_MODEL_H_
#define MARLIN_VRF_LINEAR_MODEL_H_

#include "vrf/route_forecaster.h"

namespace marlin {

/// The paper's baseline (§6.1): a simple linear kinematic model that
/// dead-reckons future positions from the last reported AIS position using
/// the reported speed over ground (knots) and course over ground (degrees),
/// at the same six 5-minute horizons. Stateless and trivially thread-safe.
class LinearKinematicModel : public RouteForecaster {
 public:
  LinearKinematicModel() = default;

  StatusOr<ForecastTrajectory> Forecast(const SvrfInput& input) const override;

  std::string_view name() const override { return "LinearKinematic"; }
};

}  // namespace marlin

#endif  // MARLIN_VRF_LINEAR_MODEL_H_

#include "vrf/svrf_model.h"

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "geo/geodesy.h"
#include "util/file.h"

namespace marlin {

FeatureScaler FeatureScaler::Fit(const std::vector<SvrfSample>& samples) {
  FeatureScaler scaler;
  if (samples.empty()) return scaler;
  double sum_lat = 0.0, sum_lon = 0.0, sum_dt = 0.0;
  int64_t n = 0;
  for (const SvrfSample& sample : samples) {
    for (const Displacement& d : sample.input.displacements) {
      sum_lat += d.dlat_deg * d.dlat_deg;
      sum_lon += d.dlon_deg * d.dlon_deg;
      sum_dt += d.dt_sec * d.dt_sec;
      ++n;
    }
  }
  // Samples with empty displacement windows contribute nothing; if the whole
  // dataset is such, dividing by n==0 would seed every scale with NaN
  // (std::max(1e-6, NaN) keeps NaN) and silently poison all later encodes.
  if (n == 0) return scaler;
  const double denom = static_cast<double>(n);
  scaler.dlat_scale = std::max(1e-6, 2.0 * std::sqrt(sum_lat / denom));
  scaler.dlon_scale = std::max(1e-6, 2.0 * std::sqrt(sum_lon / denom));
  scaler.dt_scale = std::max(1.0, 2.0 * std::sqrt(sum_dt / denom));
  return scaler;
}

namespace {
/// Monotonic weight-version source shared by all SvrfModel instances.
std::atomic<uint64_t> g_svrf_version{1};

/// Process-unique model identity source. Thread replicas key on these ids —
/// never on the model's address, which the allocator can hand to a new
/// model the moment the old one dies.
std::atomic<uint64_t> g_svrf_next_id{1};

/// Registry of live model ids; the destructor removes its id so every
/// thread can evict replicas of dead models on its next cache miss.
std::mutex g_live_models_mu;
std::unordered_set<uint64_t>& LiveModelIds() {
  // Leaked on purpose: thread_local replica caches may outlive static
  // destruction order.
  static auto* ids =
      new std::unordered_set<uint64_t>();  // chk-lint: allow(naked-new)
  return *ids;
}

bool ModelIsLive(uint64_t id) {
  std::lock_guard<std::mutex> lock(g_live_models_mu);
  return LiveModelIds().count(id) > 0;
}

/// One thread's cached copy of a model's network.
struct ThreadReplica {
  uint64_t model_id = 0;
  uint64_t version = 0;
  std::unique_ptr<SequenceRegressor> net;
};

std::vector<ThreadReplica>& ReplicasForThisThread() {
  thread_local std::vector<ThreadReplica> replicas;
  return replicas;
}

bool SameNetConfig(const SequenceRegressor::Config& a,
                   const SequenceRegressor::Config& b) {
  return a.input_dim == b.input_dim && a.hidden_dim == b.hidden_dim &&
         a.dense_dim == b.dense_dim && a.output_dim == b.output_dim;
}
}  // namespace

SvrfModel::SvrfModel() : SvrfModel(Config()) {}

SvrfModel::SvrfModel(const Config& config) : config_(config) {
  version_.store(g_svrf_version.fetch_add(1), std::memory_order_release);
  model_id_ = g_svrf_next_id.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_live_models_mu);
    LiveModelIds().insert(model_id_);
  }
  SequenceRegressor::Config net_config;
  net_config.input_dim = config.use_velocity_features ? 5 : 3;
  net_config.hidden_dim = config.hidden_dim;
  net_config.dense_dim = config.dense_dim;
  net_config.output_dim = 2 * kSvrfOutputSteps;
  net_config.seed = config.seed;
  net_ = std::make_unique<SequenceRegressor>(net_config);
}

SvrfModel::~SvrfModel() {
  std::lock_guard<std::mutex> lock(g_live_models_mu);
  LiveModelIds().erase(model_id_);
}

size_t SvrfModel::ThreadLocalReplicaCountForTesting() {
  return ReplicasForThisThread().size();
}

void SvrfModel::EncodeStep(const Displacement& d, double* out) const {
  // Raw scaled displacements plus implied velocity channels: dividing by
  // the (irregular) interval normalises away the sampling irregularity
  // the raw stream carries, which is the feature the recurrent layers
  // would otherwise have to learn from scratch.
  out[0] = d.dlat_deg / scaler_.dlat_scale;
  out[1] = d.dlon_deg / scaler_.dlon_scale;
  out[2] = d.dt_sec / scaler_.dt_scale;
  if (config_.use_velocity_features) {
    const double dt = d.dt_sec > 1.0 ? d.dt_sec : 1.0;
    out[3] = (d.dlat_deg / dt) * scaler_.dt_scale / scaler_.dlat_scale;
    out[4] = (d.dlon_deg / dt) * scaler_.dt_scale / scaler_.dlon_scale;
  }
}

std::vector<std::vector<double>> SvrfModel::EncodeInput(
    const SvrfInput& input) const {
  const size_t dim = config_.use_velocity_features ? 5 : 3;
  std::vector<std::vector<double>> steps(kSvrfInputLength);
  for (int t = 0; t < kSvrfInputLength; ++t) {
    steps[t].resize(dim);
    EncodeStep(input.displacements[t], steps[t].data());
  }
  return steps;
}

SeqSample SvrfModel::EncodeSample(const SvrfSample& sample) const {
  SeqSample out;
  out.steps = EncodeInput(sample.input);
  out.target.reserve(2 * kSvrfOutputSteps);
  for (int step = 0; step < kSvrfOutputSteps; ++step) {
    out.target.push_back(sample.targets[step].dlat_deg / scaler_.dlat_scale);
    out.target.push_back(sample.targets[step].dlon_deg / scaler_.dlon_scale);
  }
  return out;
}

template <typename ValueAt>
ForecastTrajectory SvrfModel::UnrollTrajectory(const SvrfInput& input,
                                               ValueAt&& value_at) const {
  ForecastTrajectory trajectory;
  trajectory.points.reserve(kSvrfOutputSteps + 1);
  trajectory.points.push_back(ForecastPoint{input.anchor, input.anchor_time});
  LatLng current = input.anchor;
  for (int step = 0; step < kSvrfOutputSteps; ++step) {
    current.lat_deg = ClampLatitude(
        current.lat_deg + value_at(2 * step) * scaler_.dlat_scale);
    current.lon_deg = WrapLongitude(
        current.lon_deg + value_at(2 * step + 1) * scaler_.dlon_scale);
    trajectory.points.push_back(ForecastPoint{
        current, input.anchor_time + (step + 1) * kSvrfStepMicros});
  }
  return trajectory;
}

StatusOr<ForecastTrajectory> SvrfModel::Forecast(const SvrfInput& input) const {
  if (!std::isfinite(input.anchor.lat_deg) ||
      !std::isfinite(input.anchor.lon_deg)) {
    return Status::InvalidArgument("non-finite anchor position");
  }
  const std::vector<double> raw = ThreadLocalNet()->Predict(EncodeInput(input));
  return UnrollTrajectory(input, [&raw](int i) { return raw[i]; });
}

void SvrfModel::ForecastBatch(
    const std::vector<SvrfInput>& inputs,
    std::vector<StatusOr<ForecastTrajectory>>* results) const {
  results->clear();
  if (inputs.empty()) return;
  const int batch = static_cast<int>(inputs.size());
  SequenceRegressor* net = ThreadLocalNet();
  thread_local SequenceRegressor::InferenceWorkspace ws;
  const int dim = net->config().input_dim;
  ws.PackShape(kSvrfInputLength, dim, batch);
  double features[5];
  for (int b = 0; b < batch; ++b) {
    for (int t = 0; t < kSvrfInputLength; ++t) {
      EncodeStep(inputs[static_cast<size_t>(b)].displacements[t], features);
      for (int d = 0; d < dim; ++d) ws.inputs[t](d, b) = features[d];
    }
  }
  // One column-batched forward for the whole batch. Columns never mix
  // arithmetically, so an invalid input only ever poisons its own column.
  const Matrix& out = net->PredictBatch(ws.inputs, &ws);
  results->reserve(inputs.size());
  for (int b = 0; b < batch; ++b) {
    const SvrfInput& input = inputs[static_cast<size_t>(b)];
    if (!std::isfinite(input.anchor.lat_deg) ||
        !std::isfinite(input.anchor.lon_deg)) {
      results->push_back(
          Status::InvalidArgument("non-finite anchor position"));
      continue;
    }
    results->push_back(
        UnrollTrajectory(input, [&out, b](int i) { return out(i, b); }));
  }
}

SequenceRegressor* SvrfModel::ThreadLocalNet() const {
  std::vector<ThreadReplica>& replicas = ReplicasForThisThread();
  const uint64_t current = version_.load(std::memory_order_acquire);
  for (ThreadReplica& replica : replicas) {
    if (replica.model_id == model_id_) {
      if (replica.version != current) {
        std::lock_guard<std::mutex> lock(mu_);
        // Defensive: a weight refresh must never smuggle in a shape change.
        // Ids are unique per instance and a model's dimensions are fixed at
        // construction, so a mismatch means the replica is unusable — drop
        // and rebuild instead of copy-assigning across shapes.
        if (SameNetConfig(replica.net->config(), net_->config())) {
          *replica.net = *net_;
        } else {
          replica.net = std::make_unique<SequenceRegressor>(*net_);
        }
        replica.version = current;
      }
      return replica.net.get();
    }
  }
  // Miss: first evict replicas of models that no longer exist, so a thread
  // that outlives many short-lived models (training sweeps, tests) holds at
  // most one replica per *live* model instead of growing without bound.
  std::erase_if(replicas, [](const ThreadReplica& r) {
    return !ModelIsLive(r.model_id);
  });
  ThreadReplica replica;
  replica.model_id = model_id_;
  replica.version = current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    replica.net = std::make_unique<SequenceRegressor>(*net_);
  }
  replicas.push_back(std::move(replica));
  return replicas.back().net.get();
}

double SvrfModel::Train(const std::vector<SvrfSample>& train,
                        const std::vector<SvrfSample>& validation,
                        const Trainer::Options& options) {
  scaler_ = FeatureScaler::Fit(train);
  std::vector<SeqSample> train_encoded;
  train_encoded.reserve(train.size());
  for (const SvrfSample& s : train) train_encoded.push_back(EncodeSample(s));
  std::vector<SeqSample> val_encoded;
  val_encoded.reserve(validation.size());
  for (const SvrfSample& s : validation) {
    val_encoded.push_back(EncodeSample(s));
  }
  Trainer trainer(options);
  const double loss = trainer.Fit(net_.get(), train_encoded, val_encoded);
  version_.store(g_svrf_version.fetch_add(1), std::memory_order_release);
  return loss;
}

std::string SvrfModel::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "marlin-svrf-v1 " << scaler_.dlat_scale << " " << scaler_.dlon_scale
      << " " << scaler_.dt_scale << "\n";
  out << net_->Serialize();
  return out.str();
}

Status SvrfModel::Deserialize(const std::string& blob) {
  std::istringstream in(blob);
  std::string magic;
  FeatureScaler scaler;
  if (!(in >> magic >> scaler.dlat_scale >> scaler.dlon_scale >>
        scaler.dt_scale)) {
    return Status::InvalidArgument("malformed S-VRF header");
  }
  if (magic != "marlin-svrf-v1") {
    return Status::InvalidArgument("unknown S-VRF format: " + magic);
  }
  std::string rest;
  std::getline(in, rest);  // consume end of header line
  std::ostringstream body;
  body << in.rdbuf();
  MARLIN_RETURN_IF_ERROR(net_->Deserialize(body.str()));
  scaler_ = scaler;
  version_.store(g_svrf_version.fetch_add(1), std::memory_order_release);
  return Status::Ok();
}

Status SvrfModel::SaveToFile(const std::string& path) const {
  return WriteFileAtomic(path, Serialize());
}

Status SvrfModel::LoadFromFile(const std::string& path) {
  MARLIN_ASSIGN_OR_RETURN(std::string blob, ReadFile(path));
  return Deserialize(blob);
}

}  // namespace marlin

#include "vrf/svrf_model.h"

#include <cmath>
#include <sstream>

#include "geo/geodesy.h"
#include "util/file.h"

namespace marlin {

FeatureScaler FeatureScaler::Fit(const std::vector<SvrfSample>& samples) {
  FeatureScaler scaler;
  if (samples.empty()) return scaler;
  double sum_lat = 0.0, sum_lon = 0.0, sum_dt = 0.0;
  int64_t n = 0;
  for (const SvrfSample& sample : samples) {
    for (const Displacement& d : sample.input.displacements) {
      sum_lat += d.dlat_deg * d.dlat_deg;
      sum_lon += d.dlon_deg * d.dlon_deg;
      sum_dt += d.dt_sec * d.dt_sec;
      ++n;
    }
  }
  const double denom = static_cast<double>(n);
  scaler.dlat_scale = std::max(1e-6, 2.0 * std::sqrt(sum_lat / denom));
  scaler.dlon_scale = std::max(1e-6, 2.0 * std::sqrt(sum_lon / denom));
  scaler.dt_scale = std::max(1.0, 2.0 * std::sqrt(sum_dt / denom));
  return scaler;
}

namespace {
/// Monotonic weight-version source shared by all SvrfModel instances, so a
/// thread replica keyed by (owner pointer, version) can never alias a
/// different model that reused the same address.
std::atomic<uint64_t> g_svrf_version{1};
}  // namespace

SvrfModel::SvrfModel() : SvrfModel(Config()) {}

SvrfModel::SvrfModel(const Config& config) : config_(config) {
  version_.store(g_svrf_version.fetch_add(1), std::memory_order_release);
  SequenceRegressor::Config net_config;
  net_config.input_dim = config.use_velocity_features ? 5 : 3;
  net_config.hidden_dim = config.hidden_dim;
  net_config.dense_dim = config.dense_dim;
  net_config.output_dim = 2 * kSvrfOutputSteps;
  net_config.seed = config.seed;
  net_ = std::make_unique<SequenceRegressor>(net_config);
}

std::vector<std::vector<double>> SvrfModel::EncodeInput(
    const SvrfInput& input) const {
  std::vector<std::vector<double>> steps(kSvrfInputLength);
  for (int t = 0; t < kSvrfInputLength; ++t) {
    const Displacement& d = input.displacements[t];
    // Raw scaled displacements plus implied velocity channels: dividing by
    // the (irregular) interval normalises away the sampling irregularity
    // the raw stream carries, which is the feature the recurrent layers
    // would otherwise have to learn from scratch.
    const double dt = d.dt_sec > 1.0 ? d.dt_sec : 1.0;
    if (config_.use_velocity_features) {
      steps[t] = {d.dlat_deg / scaler_.dlat_scale,
                  d.dlon_deg / scaler_.dlon_scale,
                  d.dt_sec / scaler_.dt_scale,
                  (d.dlat_deg / dt) * scaler_.dt_scale / scaler_.dlat_scale,
                  (d.dlon_deg / dt) * scaler_.dt_scale / scaler_.dlon_scale};
    } else {
      steps[t] = {d.dlat_deg / scaler_.dlat_scale,
                  d.dlon_deg / scaler_.dlon_scale,
                  d.dt_sec / scaler_.dt_scale};
    }
  }
  return steps;
}

SeqSample SvrfModel::EncodeSample(const SvrfSample& sample) const {
  SeqSample out;
  out.steps = EncodeInput(sample.input);
  out.target.reserve(2 * kSvrfOutputSteps);
  for (int step = 0; step < kSvrfOutputSteps; ++step) {
    out.target.push_back(sample.targets[step].dlat_deg / scaler_.dlat_scale);
    out.target.push_back(sample.targets[step].dlon_deg / scaler_.dlon_scale);
  }
  return out;
}

StatusOr<ForecastTrajectory> SvrfModel::Forecast(const SvrfInput& input) const {
  if (!std::isfinite(input.anchor.lat_deg) ||
      !std::isfinite(input.anchor.lon_deg)) {
    return Status::InvalidArgument("non-finite anchor position");
  }
  const std::vector<double> raw = ThreadLocalNet()->Predict(EncodeInput(input));
  ForecastTrajectory trajectory;
  trajectory.points.reserve(kSvrfOutputSteps + 1);
  trajectory.points.push_back(ForecastPoint{input.anchor, input.anchor_time});
  LatLng current = input.anchor;
  for (int step = 0; step < kSvrfOutputSteps; ++step) {
    current.lat_deg = ClampLatitude(
        current.lat_deg + raw[2 * step] * scaler_.dlat_scale);
    current.lon_deg = WrapLongitude(
        current.lon_deg + raw[2 * step + 1] * scaler_.dlon_scale);
    trajectory.points.push_back(ForecastPoint{
        current, input.anchor_time + (step + 1) * kSvrfStepMicros});
  }
  return trajectory;
}

SequenceRegressor* SvrfModel::ThreadLocalNet() const {
  struct Replica {
    const SvrfModel* owner = nullptr;
    uint64_t version = 0;
    std::unique_ptr<SequenceRegressor> net;
  };
  thread_local std::vector<Replica> replicas;
  const uint64_t current = version_.load(std::memory_order_acquire);
  for (Replica& replica : replicas) {
    if (replica.owner == this) {
      if (replica.version != current) {
        std::lock_guard<std::mutex> lock(mu_);
        *replica.net = *net_;
        replica.version = current;
      }
      return replica.net.get();
    }
  }
  Replica replica;
  replica.owner = this;
  replica.version = current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    replica.net = std::make_unique<SequenceRegressor>(*net_);
  }
  replicas.push_back(std::move(replica));
  return replicas.back().net.get();
}

double SvrfModel::Train(const std::vector<SvrfSample>& train,
                        const std::vector<SvrfSample>& validation,
                        const Trainer::Options& options) {
  scaler_ = FeatureScaler::Fit(train);
  std::vector<SeqSample> train_encoded;
  train_encoded.reserve(train.size());
  for (const SvrfSample& s : train) train_encoded.push_back(EncodeSample(s));
  std::vector<SeqSample> val_encoded;
  val_encoded.reserve(validation.size());
  for (const SvrfSample& s : validation) {
    val_encoded.push_back(EncodeSample(s));
  }
  Trainer trainer(options);
  const double loss = trainer.Fit(net_.get(), train_encoded, val_encoded);
  version_.store(g_svrf_version.fetch_add(1), std::memory_order_release);
  return loss;
}

std::string SvrfModel::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "marlin-svrf-v1 " << scaler_.dlat_scale << " " << scaler_.dlon_scale
      << " " << scaler_.dt_scale << "\n";
  out << net_->Serialize();
  return out.str();
}

Status SvrfModel::Deserialize(const std::string& blob) {
  std::istringstream in(blob);
  std::string magic;
  FeatureScaler scaler;
  if (!(in >> magic >> scaler.dlat_scale >> scaler.dlon_scale >>
        scaler.dt_scale)) {
    return Status::InvalidArgument("malformed S-VRF header");
  }
  if (magic != "marlin-svrf-v1") {
    return Status::InvalidArgument("unknown S-VRF format: " + magic);
  }
  std::string rest;
  std::getline(in, rest);  // consume end of header line
  std::ostringstream body;
  body << in.rdbuf();
  MARLIN_RETURN_IF_ERROR(net_->Deserialize(body.str()));
  scaler_ = scaler;
  version_.store(g_svrf_version.fetch_add(1), std::memory_order_release);
  return Status::Ok();
}

Status SvrfModel::SaveToFile(const std::string& path) const {
  return WriteFileAtomic(path, Serialize());
}

Status SvrfModel::LoadFromFile(const std::string& path) {
  MARLIN_ASSIGN_OR_RETURN(std::string blob, ReadFile(path));
  return Deserialize(blob);
}

}  // namespace marlin

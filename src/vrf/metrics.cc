#include "vrf/metrics.h"

#include "geo/geodesy.h"

namespace marlin {

std::array<LatLng, kSvrfOutputSteps> GroundTruthPositions(
    const SvrfSample& sample) {
  std::array<LatLng, kSvrfOutputSteps> out;
  LatLng current = sample.input.anchor;
  for (int step = 0; step < kSvrfOutputSteps; ++step) {
    current.lat_deg += sample.targets[step].dlat_deg;
    current.lon_deg += sample.targets[step].dlon_deg;
    out[static_cast<size_t>(step)] = current;
  }
  return out;
}

HorizonErrors EvaluateForecaster(const RouteForecaster& model,
                                 const std::vector<SvrfSample>& samples) {
  HorizonErrors errors;
  for (const SvrfSample& sample : samples) {
    StatusOr<ForecastTrajectory> forecast = model.Forecast(sample.input);
    if (!forecast.ok()) continue;
    const auto truth = GroundTruthPositions(sample);
    for (int step = 0; step < kSvrfOutputSteps; ++step) {
      errors.ade_m[static_cast<size_t>(step)] += HaversineMeters(
          forecast->at_step(step + 1).position, truth[static_cast<size_t>(step)]);
    }
    ++errors.samples;
  }
  if (errors.samples > 0) {
    double total = 0.0;
    for (double& e : errors.ade_m) {
      e /= static_cast<double>(errors.samples);
      total += e;
    }
    errors.mean_ade_m = total / kSvrfOutputSteps;
  }
  return errors;
}

}  // namespace marlin

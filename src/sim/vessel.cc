#include "sim/vessel.h"

#include <algorithm>
#include <cmath>

namespace marlin {
namespace {

/// Smallest signed angular difference a-b in degrees, in [-180, 180).
double AngleDiffDeg(double a, double b) {
  double d = std::fmod(a - b + 540.0, 360.0) - 180.0;
  return d;
}

VesselType SampleVesselType(Rng* rng) {
  const double u = rng->NextDouble();
  if (u < 0.40) return VesselType::kCargo;
  if (u < 0.62) return VesselType::kTanker;
  if (u < 0.74) return VesselType::kFishing;
  if (u < 0.84) return VesselType::kPassenger;
  if (u < 0.90) return VesselType::kTug;
  if (u < 0.95) return VesselType::kPleasureCraft;
  return VesselType::kOther;
}

double CruiseSpeedFor(VesselType type, Rng* rng) {
  switch (type) {
    case VesselType::kCargo:
      return rng->Uniform(10.0, 18.0);
    case VesselType::kTanker:
      return rng->Uniform(9.0, 15.0);
    case VesselType::kPassenger:
      return rng->Uniform(15.0, 24.0);
    case VesselType::kFishing:
      return rng->Uniform(4.0, 10.0);
    case VesselType::kTug:
      return rng->Uniform(5.0, 10.0);
    case VesselType::kHighSpeedCraft:
      return rng->Uniform(22.0, 35.0);
    case VesselType::kPleasureCraft:
      return rng->Uniform(6.0, 16.0);
    default:
      return rng->Uniform(8.0, 16.0);
  }
}

}  // namespace

double EmissionModel::SampleIntervalSec(Rng* rng) const {
  const double u = rng->NextDouble();
  if (u < p_nominal) {
    return rng->Uniform(nominal_min_sec, nominal_max_sec);
  }
  if (u < p_nominal + p_degraded) {
    return rng->Exponential(1.0 / degraded_mean_sec);
  }
  return rng->Exponential(1.0 / gap_mean_sec);
}

VesselSim::VesselSim(Mmsi mmsi, const World* world, Rng rng)
    : mmsi_(mmsi), world_(world), rng_(rng) {
  static_info_.mmsi = mmsi;
  static_info_.name = "SIM " + std::to_string(mmsi);
  static_info_.type = SampleVesselType(&rng_);
  static_info_.length_m = rng_.Uniform(40.0, 320.0);
  static_info_.beam_m = static_info_.length_m * rng_.Uniform(0.12, 0.18);
  static_info_.draught_m = rng_.Uniform(3.0, 16.0);
  static_info_.dwt = static_info_.length_m * static_info_.beam_m *
                     static_info_.draught_m * rng_.Uniform(0.4, 0.8);
  cruise_knots_ = CruiseSpeedFor(static_info_.type, &rng_);
  sog_knots_ = cruise_knots_;
  EnterLane(world_->RandomLane(&rng_), rng_.NextDouble() * 0.8);
  next_emit_sec_ = emission_.SampleIntervalSec(&rng_);
}

void VesselSim::EnterLane(int lane_index, double progress_fraction) {
  lane_ = lane_index;
  const Lane& lane = world_->lanes()[static_cast<size_t>(lane_)];
  waypoint_ =
      std::min(lane.waypoints.size() - 1,
               static_cast<size_t>(progress_fraction *
                                   static_cast<double>(lane.waypoints.size())));
  if (waypoint_ == 0) waypoint_ = 1;
  position_ = lane.waypoints[waypoint_ - 1];
  static_info_.destination = world_->ports()[lane.to_port].name;
  cog_deg_ = InitialBearingDeg(position_, lane.waypoints[waypoint_]);
}

void VesselSim::SteerTowardsWaypoint(double dt_sec) {
  const Lane& lane = world_->lanes()[static_cast<size_t>(lane_)];
  const LatLng& target = lane.waypoints[waypoint_];
  const double desired = InitialBearingDeg(position_, target);
  // Bounded turn rate: larger ships turn slower.
  const double max_turn_rate =
      std::clamp(600.0 / static_info_.length_m, 0.5, 6.0);  // deg per second
  const double diff = AngleDiffDeg(desired, cog_deg_);
  const double turn =
      std::clamp(diff, -max_turn_rate * dt_sec, max_turn_rate * dt_sec);
  cog_deg_ = std::fmod(cog_deg_ + turn + 360.0, 360.0);
}

void VesselSim::Step(double dt_sec) {
  // Ornstein-Uhlenbeck pull of SOG towards cruise speed with noise.
  const double theta = 0.02;  // mean-reversion rate (1/s)
  sog_knots_ += theta * (cruise_knots_ - sog_knots_) * dt_sec +
                rng_.Normal(0.0, 0.15) * std::sqrt(dt_sec);
  sog_knots_ = std::clamp(sog_knots_, 0.5, 40.0);

  SteerTowardsWaypoint(dt_sec);
  const double distance = sog_knots_ * kKnotsToMps * dt_sec;
  position_ = DestinationPoint(position_, cog_deg_, distance);

  // Waypoint reached? Advance; at lane end, pick an onward lane.
  const Lane& lane = world_->lanes()[static_cast<size_t>(lane_)];
  const double to_waypoint =
      ApproxDistanceMeters(position_, lane.waypoints[waypoint_]);
  if (to_waypoint < std::max(500.0, distance * 2.0)) {
    ++waypoint_;
    if (waypoint_ >= lane.waypoints.size()) {
      const std::vector<int> onward = world_->LanesFrom(lane.to_port);
      int next;
      if (onward.empty()) {
        next = world_->RandomLane(&rng_);
      } else {
        next = onward[rng_.UniformInt(onward.size())];
      }
      EnterLane(next, 0.0);
    }
  }
  next_emit_sec_ -= dt_sec;
}

std::optional<AisPosition> VesselSim::MaybeEmit(TimeMicros now) {
  if (next_emit_sec_ > 0.0) return std::nullopt;
  next_emit_sec_ += emission_.SampleIntervalSec(&rng_);
  if (next_emit_sec_ <= 0.0) {
    // Interval shorter than the step: re-arm relative to now.
    next_emit_sec_ = emission_.SampleIntervalSec(&rng_);
  }
  if (now < silent_until_) return std::nullopt;  // transmitter off
  AisPosition report;
  report.mmsi = mmsi_;
  report.timestamp = now;
  report.position = DestinationPoint(
      position_, rng_.Uniform(0.0, 360.0),
      std::abs(rng_.Normal(0.0, emission_.position_noise_m)));
  report.sog_knots = std::max(
      0.0, sog_knots_ + rng_.Normal(0.0, emission_.sog_noise_knots));
  report.cog_deg = std::fmod(
      cog_deg_ + rng_.Normal(0.0, emission_.cog_noise_deg) + 360.0, 360.0);
  report.heading_deg = static_cast<int>(report.cog_deg);
  report.nav_status = NavStatus::kUnderWayUsingEngine;
  return report;
}

}  // namespace marlin

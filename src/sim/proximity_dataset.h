#ifndef MARLIN_SIM_PROXIMITY_DATASET_H_
#define MARLIN_SIM_PROXIMITY_DATASET_H_

#include <vector>

#include "ais/types.h"
#include "geo/geodesy.h"
#include "util/rng.h"

namespace marlin {

/// Ground truth of one (potential) vessel proximity event.
struct ProximityTruth {
  Mmsi vessel_a = 0;
  Mmsi vessel_b = 0;
  /// Time of closest approach.
  TimeMicros cpa_time = 0;
  /// Distance at closest approach, meters.
  double cpa_distance_m = 0.0;
  /// Seconds from the scenario's evaluation time to the CPA.
  double time_to_cpa_sec = 0.0;
  /// True when the pair actually comes into close proximity (CPA below the
  /// dataset's proximity threshold).
  bool is_event = false;
};

/// One two-vessel scenario: AIS histories for both vessels (time-ordered,
/// spanning history before `eval_time` and ground-truth continuation after
/// it) plus the analytic truth record.
struct ProximityScenario {
  std::vector<AisPosition> track_a;
  std::vector<AisPosition> track_b;
  TimeMicros eval_time = 0;
  ProximityTruth truth;
};

/// The generated dataset, mirroring the composition of the synthetic vessel
/// proximity dataset of [2] used in §6.2: 237 proximity events from ~213
/// vessels in the Aegean Sea, of which 61 occur within 2 minutes of the
/// evaluation time (Sub dataset A) and 152 within 5 minutes (Sub dataset B),
/// plus non-event encounters as negatives.
struct ProximityDataset {
  std::vector<ProximityScenario> scenarios;

  /// Counts of ground-truth events by time-to-CPA bucket.
  int EventsWithin(double seconds) const;
  int TotalEvents() const;
  int TotalMessages() const;
};

/// Generator configuration. Defaults reproduce the published composition.
struct ProximityDatasetConfig {
  int events_under_2min = 61;
  int events_2_to_5min = 91;   // => 152 under 5 minutes total
  int events_5_to_12min = 85;  // => 237 events total
  int negatives = 80;
  /// CPA distance below which an encounter is a proximity event.
  double proximity_threshold_m = 500.0;
  /// Negatives pass no closer than this.
  double safe_distance_m = 4000.0;
  /// AIS history span before the evaluation time.
  double history_span_sec = 25.0 * 60.0;
  /// Mean AIS interval within scenario tracks.
  double mean_interval_sec = 60.0;
  uint64_t seed = 2024;
  Mmsi mmsi_base = 240000000;
  /// Aegean Sea bounding box (as in [2]).
  BoundingBox region{35.0, 23.0, 40.0, 27.0};
};

/// Builds the synthetic proximity-event dataset.
ProximityDataset GenerateProximityDataset(const ProximityDatasetConfig& config);

/// Generates a standalone AIS track with the same kinematics and noise
/// profile as the encounter scenarios (constant-turn arcs and straight
/// legs): training material teaching a forecaster the manoeuvre
/// distribution the collision evaluation exercises, drawn independently of
/// any evaluation dataset.
std::vector<AisPosition> GenerateEncounterStyleTrack(
    Mmsi mmsi, const BoundingBox& region, double duration_sec,
    double mean_interval_sec, Rng* rng);

}  // namespace marlin

#endif  // MARLIN_SIM_PROXIMITY_DATASET_H_

#ifndef MARLIN_SIM_COLLISION_EVAL_H_
#define MARLIN_SIM_COLLISION_EVAL_H_

#include <string>

#include "events/collision.h"
#include "sim/proximity_dataset.h"
#include "vrf/route_forecaster.h"

namespace marlin {

/// Confusion counts and derived metrics of one Table-2 experiment.
struct CollisionEvalResult {
  std::string model_name;
  double temporal_threshold_min = 0.0;
  int total_events = 0;
  int tp = 0;
  int fp = 0;
  int fn = 0;
  int tn = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// The paper's accuracy definition (its Table 2 satisfies
  /// accuracy = TP / (TP + FP + FN); true negatives are not counted).
  double accuracy = 0.0;
};

/// Subset filter of the proximity dataset, mirroring Table 2's rows.
enum class ProximitySubset {
  kAll,     // every event
  kUnder2,  // Sub dataset A: events with time-to-CPA < 2 min
  kUnder5,  // Sub dataset B: events with time-to-CPA < 5 min
};

/// Runs one collision-forecasting experiment (§6.2): for every scenario in
/// the (filtered) dataset, both vessels' histories up to the evaluation
/// time are preprocessed into model inputs, `model` forecasts both
/// trajectories, and the collision forecaster decides whether the pair is
/// on a collision course with the given temporal difference threshold.
/// Predictions are scored against the scenarios' analytic ground truth.
/// Negative scenarios are always included (they supply FP/TN).
CollisionEvalResult EvaluateCollisionForecasting(
    const RouteForecaster& model, const ProximityDataset& dataset,
    ProximitySubset subset, TimeMicros temporal_threshold,
    double spatial_threshold_m = 500.0);

}  // namespace marlin

#endif  // MARLIN_SIM_COLLISION_EVAL_H_

#ifndef MARLIN_SIM_WEATHER_H_
#define MARLIN_SIM_WEATHER_H_

#include "geo/geodesy.h"
#include "hexgrid/hexgrid.h"
#include "util/clock.h"

namespace marlin {

/// Weather conditions at one point in space-time.
struct WeatherSample {
  double wind_speed_mps = 0.0;
  /// Direction the wind blows *towards*, degrees.
  double wind_dir_deg = 0.0;
  double wave_height_m = 0.0;
};

/// Deterministic synthetic weather field — the weather-data source of the
/// paper's future-work fusion (§7: "the enrichment and fusion of the H3
/// spatially indexed AIS mobility data with weather related features and
/// forecasts"). Smooth in space and time: superposed travelling sinusoidal
/// pressure systems yield wind, and wave height follows wind with a
/// latitude-dependent swell floor. Fully reproducible from the seed; no
/// state, safe to share across threads.
class WeatherField {
 public:
  explicit WeatherField(uint64_t seed = 2024);

  /// Conditions at a position and time.
  WeatherSample At(const LatLng& position, TimeMicros t) const;

  /// Mean conditions over a grid cell (sampled at the cell center) — the
  /// H3-indexed weather enrichment.
  WeatherSample AtCell(CellId cell, TimeMicros t) const {
    return At(HexGrid::CellToLatLng(cell), t);
  }

  /// A routing penalty in [0, 1]: 0 = calm, 1 = worst modelled sea state.
  /// Used as the extra edge cost of weather-aware route forecasting.
  double RoutePenalty(const LatLng& position, TimeMicros t) const;

 private:
  static constexpr int kSystems = 6;
  struct System {
    double lat_freq, lon_freq, phase, speed, amplitude;
  };
  System systems_[kSystems];
};

}  // namespace marlin

#endif  // MARLIN_SIM_WEATHER_H_

#ifndef MARLIN_SIM_DES_SCHEDULER_H_
#define MARLIN_SIM_DES_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "chk/fingerprint.h"
#include "sim/des/event_queue.h"
#include "util/clock.h"
#include "util/rng.h"

namespace marlin {
namespace des {

class EventScheduler;

/// A component that receives dispatched events. Handlers are registered
/// once (RegisterHandler) and re-post their own future events from inside
/// OnEvent via the scheduler they were registered with.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void OnEvent(EventScheduler* scheduler, const Event& event) = 0;
};

/// Adapts a callable to EventHandler, for components too small to warrant a
/// class of their own (bench drivers, test harness phases).
class FunctionHandler : public EventHandler {
 public:
  using Fn = std::function<void(EventScheduler*, const Event&)>;
  explicit FunctionHandler(Fn fn) : fn_(std::move(fn)) {}
  void OnEvent(EventScheduler* scheduler, const Event& event) override {
    fn_(scheduler, event);
  }

 private:
  Fn fn_;
};

struct EventSchedulerConfig {
  /// Drives the scheduler's Rng and is mixed into the trace hash, so one
  /// seed fully determines a virtual-time run. The same value is handed to
  /// chk::DeterministicScheduler when a run also serialises actor
  /// interleavings (see tests/des_test.cc).
  uint64_t seed = 1;
  /// Initial virtual time.
  TimeMicros start_time = 0;
};

/// Deterministic discrete-event scheduler: the virtual-time core of
/// DESIGN.md §13. A single global priority queue keyed by virtual
/// TimeMicros with stable (time, post-order) tie-breaking; components post
/// future events and the run loop dispatches them in order, advancing the
/// owned VirtualClock to each event's timestamp. Every dispatch is folded
/// into an FNV-1a trace fingerprint (chk/fingerprint.h), so
/// "same seed → same trace hash" is checkable across runs, thread counts,
/// and machines.
///
/// Single-threaded by contract: events dispatch on the caller's thread, one
/// at a time, exactly like chk::DeterministicScheduler's serialised drains.
/// Concurrency lives *behind* handlers (e.g. a handler ingests into the
/// actor pipeline and quiesces it), never inside the event loop itself.
class EventScheduler {
 public:
  explicit EventScheduler(const EventSchedulerConfig& config = {});

  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  /// Registers a component and returns its handler id. `name` identifies
  /// the handler in the trace hash (names are hashed, so the fingerprint is
  /// stable against registration-order refactors as long as names and
  /// event sequences are unchanged). Handlers are borrowed, not owned, and
  /// must outlive the scheduler.
  uint32_t RegisterHandler(const std::string& name, EventHandler* handler);

  /// Schedules `handler` to fire at virtual time `at` (clamped to Now() —
  /// posting into the past fires "immediately" at the current virtual
  /// time, after already-pending events at that time).
  void PostAt(TimeMicros at, uint32_t handler, uint64_t arg = 0);

  /// Schedules `handler` to fire `delay` micros from the current virtual
  /// time.
  void PostIn(TimeMicros delay, uint32_t handler, uint64_t arg = 0);

  /// Dispatches the single earliest event. Returns false when the queue is
  /// empty.
  bool Step();

  /// Copies the next event to fire into `out` without dispatching it;
  /// returns false when the queue is empty. Handlers use this to overlap
  /// the next dispatch's state fetch with the current one (see
  /// EventFleet's prefetch).
  bool PeekNext(Event* out) {
    if (queue_.Empty()) return false;
    *out = queue_.Top();
    return true;
  }

  /// Dispatches every event with timestamp <= `until` (including events
  /// they post, transitively), then advances the clock to `until`.
  /// Returns the number of events dispatched.
  int64_t RunUntil(TimeMicros until);

  /// Dispatches until the queue is empty or `max_events` is reached
  /// (-1 = unbounded). Returns the number of events dispatched.
  int64_t RunAll(int64_t max_events = -1);

  /// Current virtual time.
  TimeMicros Now() const { return clock_.Now(); }

  /// The clock this loop owns. Hand it to everything in the run — pipeline
  /// config, chaos clocks, Stopwatch injection — so the whole system shares
  /// one virtual timeline.
  VirtualClock* clock() { return &clock_; }

  /// Scheduler-owned deterministic randomness; components Fork() their own
  /// streams from it at registration time.
  Rng* rng() { return &rng_; }

  /// FNV-1a fingerprint of the dispatch history: (time, handler-name hash,
  /// arg) of every event dispatched so far, seeded with the run seed.
  uint64_t TraceHash() const { return trace_.Value(); }

  uint64_t seed() const { return seed_; }
  int64_t dispatched() const { return dispatched_; }
  size_t pending() const { return queue_.Size(); }

 private:
  void Dispatch(const Event& event);

  struct HandlerEntry {
    EventHandler* handler = nullptr;
    uint64_t name_hash = 0;
  };

  const uint64_t seed_;
  VirtualClock clock_;
  Rng rng_;
  EventQueue queue_;
  std::vector<HandlerEntry> handlers_;
  chk::Fingerprint trace_;
  uint64_t next_seq_ = 0;
  int64_t dispatched_ = 0;
};

}  // namespace des
}  // namespace marlin

#endif  // MARLIN_SIM_DES_SCHEDULER_H_

#include "sim/des/event_fleet.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesy.h"

namespace marlin {
namespace des {
namespace {

/// Degrees of latitude per meter on the authalic sphere.
constexpr double kDegLatPerMeter = kRadToDeg / kEarthRadiusMeters;

/// Cruise-speed draw matching VesselSim's per-type distributions, collapsed
/// to the type mixture's marginal: the event fleet does not carry static
/// info, so one draw spans the mixture's [4, 24]-knot bulk.
double SampleCruiseKnots(Rng* rng) {
  const double u = rng->NextDouble();
  if (u < 0.40) return rng->Uniform(10.0, 18.0);  // cargo
  if (u < 0.62) return rng->Uniform(9.0, 15.0);   // tanker
  if (u < 0.74) return rng->Uniform(4.0, 10.0);   // fishing
  if (u < 0.84) return rng->Uniform(15.0, 24.0);  // passenger
  if (u < 0.90) return rng->Uniform(5.0, 10.0);   // tug
  if (u < 0.95) return rng->Uniform(6.0, 16.0);   // pleasure craft
  return rng->Uniform(8.0, 16.0);                 // other
}

/// Zero-mean unit-stddev noise from two uniforms (triangular
/// distribution). At ~10⁹ events per 72 h regime run the log/sin/cos
/// behind Rng::Normal's Box-Muller are a measurable slice of the
/// per-event budget, and kinematic jitter / sensor noise only need the
/// first two moments, not Gaussian tails. Var(U1 + U2 - 1) = 1/6, so
/// scaling by sqrt(6) gives unit variance.
inline double FastNoise(Rng* rng) {
  constexpr double kSqrt6 = 2.4494897427831781;
  return (rng->NextDouble() + rng->NextDouble() - 1.0) * kSqrt6;
}

}  // namespace

EventFleet::EventFleet(const World* world, const EventFleetConfig& config,
                       EventScheduler* scheduler, Sink sink)
    : world_(world), config_(config), sink_(std::move(sink)) {
  BuildLegCache();
  handler_id_ = scheduler->RegisterHandler("event-fleet", this);

  Rng master(config_.seed);
  vessels_.resize(static_cast<size_t>(config_.num_vessels));
  for (int i = 0; i < config_.num_vessels; ++i) {
    VesselState& v = vessels_[static_cast<size_t>(i)];
    v.rng = master.Fork();
    v.cruise_mps = SampleCruiseKnots(&v.rng) * kKnotsToMps;
    v.speed_mps = v.cruise_mps;
    v.lane = static_cast<uint32_t>(world_->RandomLane(&v.rng));
    const LaneSpan& span = lanes_[v.lane];
    // Random progress point along the lane, like VesselSim's spawn.
    const double fraction = v.rng.NextDouble() * 0.8;
    v.leg = span.first_leg +
            std::min(span.num_legs - 1,
                     static_cast<uint32_t>(fraction * span.num_legs));
    v.leg_offset_m = 0.0;

    // Front-loaded exponential arrivals (FleetSimulator's formula), then
    // the first transmission one emission interval later.
    double arrival_sec = 0.0;
    if (config_.arrival_span_sec > 0.0) {
      arrival_sec = std::min(config_.arrival_span_sec,
                             master.Exponential(6.0 / config_.arrival_span_sec));
    }
    const double first_emit_sec =
        arrival_sec + config_.emission.SampleIntervalSec(&v.rng);
    const TimeMicros first_at =
        config_.start_time +
        static_cast<TimeMicros>(first_emit_sec * kMicrosPerSecond);
    v.last_update =
        config_.start_time +
        static_cast<TimeMicros>(arrival_sec * kMicrosPerSecond);
    scheduler->PostAt(first_at, handler_id_, static_cast<uint64_t>(i));
  }
}

void EventFleet::BuildLegCache() {
  const auto& lanes = world_->lanes();
  lanes_.resize(lanes.size());
  size_t total_legs = 0;
  for (const Lane& lane : lanes) total_legs += lane.waypoints.size() - 1;
  legs_.reserve(total_legs);
  for (size_t li = 0; li < lanes.size(); ++li) {
    const Lane& lane = lanes[li];
    LaneSpan& span = lanes_[li];
    span.first_leg = static_cast<uint32_t>(legs_.size());
    span.to_port = lane.to_port;
    for (size_t w = 0; w + 1 < lane.waypoints.size(); ++w) {
      const LatLng& a = lane.waypoints[w];
      const LatLng& b = lane.waypoints[w + 1];
      Leg leg;
      leg.lat0 = a.lat_deg;
      leg.lon0 = a.lon_deg;
      leg.length_m = std::max(1.0, ApproxDistanceMeters(a, b));
      leg.dlat_per_m = (b.lat_deg - a.lat_deg) / leg.length_m;
      leg.dlon_per_m = (b.lon_deg - a.lon_deg) / leg.length_m;
      leg.bearing_deg = InitialBearingDeg(a, b);
      leg.noise_dlat_per_m = kDegLatPerMeter;
      leg.noise_dlon_per_m =
          kDegLatPerMeter /
          std::max(0.05, std::cos(a.lat_deg * kDegToRad));
      legs_.push_back(leg);
    }
    span.num_legs = static_cast<uint32_t>(legs_.size()) - span.first_leg;
  }

  // Flat LanesFrom adjacency, so lane hops at port arrival are two array
  // reads instead of a vector-returning query.
  const size_t num_ports = world_->ports().size();
  port_offsets_.assign(num_ports + 1, 0);
  for (const Lane& lane : lanes) {
    ++port_offsets_[static_cast<size_t>(lane.from_port) + 1];
  }
  for (size_t p = 0; p < num_ports; ++p) {
    port_offsets_[p + 1] += port_offsets_[p];
  }
  lanes_from_.resize(lanes.size());
  std::vector<uint32_t> cursor(port_offsets_.begin(),
                               port_offsets_.end() - 1);
  for (size_t li = 0; li < lanes.size(); ++li) {
    lanes_from_[cursor[static_cast<size_t>(lanes[li].from_port)]++] =
        static_cast<uint32_t>(li);
  }
}

void EventFleet::Advance(VesselState* v, double distance_m) {
  const Leg* leg = &legs_[v->leg];
  double remaining = v->leg_offset_m + distance_m;
  while (remaining >= leg->length_m) {
    remaining -= leg->length_m;
    const LaneSpan& span = lanes_[v->lane];
    if (v->leg + 1 < span.first_leg + span.num_legs) {
      ++v->leg;
    } else {
      // Lane end: hop to an onward lane from the destination port (any
      // lane when the port is a sink), like VesselSim's lane transition.
      const size_t port = static_cast<size_t>(span.to_port);
      const uint32_t begin = port_offsets_[port];
      const uint32_t count = port_offsets_[port + 1] - begin;
      v->lane = count > 0
                    ? lanes_from_[begin + v->rng.UniformInt(count)]
                    : static_cast<uint32_t>(world_->RandomLane(&v->rng));
      v->leg = lanes_[v->lane].first_leg;
    }
    leg = &legs_[v->leg];
  }
  v->leg_offset_m = remaining;
}

void EventFleet::OnEvent(EventScheduler* scheduler, const Event& event) {
  VesselState& v = vessels_[static_cast<size_t>(event.arg)];
  const double dt_sec =
      static_cast<double>(event.at - v.last_update) / kMicrosPerSecond;
  v.last_update = event.at;

  // Ornstein-Uhlenbeck speed refresh at event granularity (VesselSim's
  // process, applied over the whole inter-transmission gap).
  const double theta = 0.02;
  const double dt_capped = std::min(dt_sec, 120.0);  // keep the pull stable
  v.speed_mps +=
      (theta * (v.cruise_mps - v.speed_mps) * dt_capped +
       0.15 * FastNoise(&v.rng) * std::sqrt(dt_capped)) *
      kKnotsToMps;
  v.speed_mps = std::clamp(v.speed_mps, 0.5 * kKnotsToMps, 40.0 * kKnotsToMps);

  Advance(&v, v.speed_mps * dt_sec);

  const Leg& leg = legs_[v.leg];
  AisPosition report;
  report.mmsi = config_.mmsi_base + static_cast<Mmsi>(event.arg);
  report.timestamp = event.at;
  const double pos_noise_m = config_.emission.position_noise_m;
  report.position.lat_deg = leg.lat0 + leg.dlat_per_m * v.leg_offset_m +
                            pos_noise_m * FastNoise(&v.rng) *
                                leg.noise_dlat_per_m;
  report.position.lon_deg = leg.lon0 + leg.dlon_per_m * v.leg_offset_m +
                            pos_noise_m * FastNoise(&v.rng) *
                                leg.noise_dlon_per_m;
  report.sog_knots =
      std::max(0.0, v.speed_mps / kKnotsToMps +
                        config_.emission.sog_noise_knots * FastNoise(&v.rng));
  report.cog_deg = leg.bearing_deg +
                   config_.emission.cog_noise_deg * FastNoise(&v.rng);
  if (report.cog_deg < 0.0) report.cog_deg += 360.0;
  if (report.cog_deg >= 360.0) report.cog_deg -= 360.0;
  report.heading_deg = static_cast<int>(report.cog_deg);
  report.nav_status = NavStatus::kUnderWayUsingEngine;
  ++emitted_;
  sink_(report);

  const double next_sec = config_.emission.SampleIntervalSec(&v.rng);
  scheduler->PostAt(
      event.at + static_cast<TimeMicros>(next_sec * kMicrosPerSecond),
      handler_id_, event.arg);

#if defined(__GNUC__) || defined(__clang__)
  // Overlap the next dispatch's state fetch with the tail of this one: at
  // 400K vessels the VesselState array is ~40 MB, so the next event's
  // vessel is almost never resident.
  Event next;
  if (scheduler->PeekNext(&next) && next.handler == handler_id_) {
    __builtin_prefetch(&vessels_[static_cast<size_t>(next.arg)]);
  }
#endif
}

}  // namespace des
}  // namespace marlin

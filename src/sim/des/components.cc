#include "sim/des/components.h"

namespace marlin {
namespace des {

FleetStepper::FleetStepper(FleetSimulator* fleet, double step_sec,
                           TimeMicros end_time, EventScheduler* scheduler,
                           BatchSink sink)
    : fleet_(fleet),
      step_micros_(static_cast<TimeMicros>(step_sec * kMicrosPerSecond)),
      end_time_(end_time),
      sink_(std::move(sink)) {
  handler_id_ = scheduler->RegisterHandler("fleet-stepper", this);
  scheduler->PostAt(fleet_->now() + step_micros_, handler_id_);
}

void FleetStepper::OnEvent(EventScheduler* scheduler, const Event& event) {
  batch_.clear();
  fleet_->Step(&batch_);
  ++steps_;
  sink_(&batch_, event.at);
  const TimeMicros next = event.at + step_micros_;
  if (end_time_ == 0 || next <= end_time_) {
    scheduler->PostAt(next, handler_id_);
  }
}

WeatherSampler::WeatherSampler(const WeatherField* field,
                               std::vector<CellId> cells, TimeMicros period,
                               TimeMicros end_time, EventScheduler* scheduler,
                               SampleSink sink)
    : field_(field),
      cells_(std::move(cells)),
      period_(period),
      end_time_(end_time),
      sink_(std::move(sink)) {
  handler_id_ = scheduler->RegisterHandler("weather-sampler", this);
  scheduler->PostIn(period_, handler_id_);
}

void WeatherSampler::OnEvent(EventScheduler* scheduler, const Event& event) {
  for (CellId cell : cells_) {
    sink_(cell, field_->AtCell(cell, event.at), event.at);
    ++samples_;
  }
  const TimeMicros next = event.at + period_;
  if (end_time_ == 0 || next <= end_time_) {
    scheduler->PostAt(next, handler_id_);
  }
}

ProximityReplay::ProximityReplay(const ProximityDataset& dataset,
                                 EventScheduler* scheduler, ReportSink sink)
    : sink_(std::move(sink)) {
  handler_id_ = scheduler->RegisterHandler("proximity-replay", this);
  for (const ProximityScenario& scenario : dataset.scenarios) {
    for (const AisPosition& report : scenario.track_a) reports_.push_back(report);
    for (const AisPosition& report : scenario.track_b) reports_.push_back(report);
  }
  for (size_t i = 0; i < reports_.size(); ++i) {
    scheduler->PostAt(reports_[i].timestamp, handler_id_,
                      static_cast<uint64_t>(i));
  }
}

void ProximityReplay::OnEvent(EventScheduler* /*scheduler*/,
                              const Event& event) {
  sink_(reports_[static_cast<size_t>(event.arg)]);
  ++delivered_;
}

}  // namespace des
}  // namespace marlin

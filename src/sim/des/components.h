#ifndef MARLIN_SIM_DES_COMPONENTS_H_
#define MARLIN_SIM_DES_COMPONENTS_H_

#include <functional>
#include <vector>

#include "ais/types.h"
#include "hexgrid/hexgrid.h"
#include "sim/des/scheduler.h"
#include "sim/fleet.h"
#include "sim/proximity_dataset.h"
#include "sim/weather.h"
#include "util/clock.h"

namespace marlin {
namespace des {

/// Drives an existing FleetSimulator from the event queue: each event calls
/// one `Step()` and re-posts the next one. The fleet's RNG consumption is
/// untouched, so a virtual-time run produces the byte-identical message
/// stream of the legacy `for (step) fleet.Step()` loop — the property the
/// `fig6 --virtual` acceptance check verifies. Inverted control is the
/// point: the fleet no longer owns the run loop, so brokers, chaos beats,
/// and weather sampling interleave with it on one global timeline.
class FleetStepper : public EventHandler {
 public:
  /// Called after each step with the step's messages (time-ordered within
  /// the step) and the new stream time.
  using BatchSink =
      std::function<void(std::vector<AisPosition>* batch, TimeMicros now)>;

  /// Posts the first step at the fleet's `now + step_sec`; steps re-post
  /// themselves until `end_time` (0 = keep stepping as long as the
  /// scheduler runs). `fleet` must outlive the stepper.
  FleetStepper(FleetSimulator* fleet, double step_sec, TimeMicros end_time,
               EventScheduler* scheduler, BatchSink sink);

  void OnEvent(EventScheduler* scheduler, const Event& event) override;

  int64_t steps() const { return steps_; }

 private:
  FleetSimulator* fleet_;
  const TimeMicros step_micros_;
  const TimeMicros end_time_;
  BatchSink sink_;
  uint32_t handler_id_ = 0;
  int64_t steps_ = 0;
  std::vector<AisPosition> batch_;
};

/// Periodic weather sampling as posted events: every `period` of virtual
/// time, samples the WeatherField at a fixed set of grid cells and delivers
/// the observations. The DES port of `sim/weather` — the field itself stays
/// a pure function of (position, time); what becomes an event is *when* the
/// enrichment layer observes it.
class WeatherSampler : public EventHandler {
 public:
  using SampleSink = std::function<void(CellId cell, const WeatherSample&,
                                        TimeMicros now)>;

  WeatherSampler(const WeatherField* field, std::vector<CellId> cells,
                 TimeMicros period, TimeMicros end_time,
                 EventScheduler* scheduler, SampleSink sink);

  void OnEvent(EventScheduler* scheduler, const Event& event) override;

  int64_t samples() const { return samples_; }

 private:
  const WeatherField* field_;
  const std::vector<CellId> cells_;
  const TimeMicros period_;
  const TimeMicros end_time_;
  SampleSink sink_;
  uint32_t handler_id_ = 0;
  int64_t samples_ = 0;
};

/// Replays a proximity dataset's AIS reports as posted events, one event
/// per report at its own timestamp. The queue performs the global
/// time-ordered merge across all scenario tracks that the batch generator
/// leaves to its consumers — the DES port of `sim/proximity_dataset`.
class ProximityReplay : public EventHandler {
 public:
  using ReportSink = std::function<void(const AisPosition&)>;

  ProximityReplay(const ProximityDataset& dataset, EventScheduler* scheduler,
                  ReportSink sink);

  void OnEvent(EventScheduler* scheduler, const Event& event) override;

  int64_t delivered() const { return delivered_; }
  int64_t total() const { return static_cast<int64_t>(reports_.size()); }

 private:
  std::vector<AisPosition> reports_;
  ReportSink sink_;
  uint32_t handler_id_ = 0;
  int64_t delivered_ = 0;
};

}  // namespace des
}  // namespace marlin

#endif  // MARLIN_SIM_DES_COMPONENTS_H_

#include "sim/des/scheduler.h"

#include <algorithm>

namespace marlin {
namespace des {

EventScheduler::EventScheduler(const EventSchedulerConfig& config)
    : seed_(config.seed), clock_(config.start_time), rng_(config.seed) {
  trace_.MixU64(seed_);
}

uint32_t EventScheduler::RegisterHandler(const std::string& name,
                                         EventHandler* handler) {
  HandlerEntry entry;
  entry.handler = handler;
  entry.name_hash = chk::Fnv1a(name);
  handlers_.push_back(entry);
  return static_cast<uint32_t>(handlers_.size() - 1);
}

void EventScheduler::PostAt(TimeMicros at, uint32_t handler, uint64_t arg) {
  Event event;
  event.at = std::max(at, Now());
  event.seq = next_seq_++;
  event.handler = handler;
  event.arg = arg;
  queue_.Push(event);
}

void EventScheduler::PostIn(TimeMicros delay, uint32_t handler, uint64_t arg) {
  PostAt(Now() + std::max<TimeMicros>(delay, 0), handler, arg);
}

bool EventScheduler::Step() {
  if (queue_.Empty()) return false;
  Dispatch(queue_.Pop());
  return true;
}

int64_t EventScheduler::RunUntil(TimeMicros until) {
  int64_t count = 0;
  while (!queue_.Empty() && queue_.Top().at <= until) {
    Dispatch(queue_.Pop());
    ++count;
  }
  clock_.AdvanceTo(until);
  return count;
}

int64_t EventScheduler::RunAll(int64_t max_events) {
  int64_t count = 0;
  while (!queue_.Empty() && (max_events < 0 || count < max_events)) {
    Dispatch(queue_.Pop());
    ++count;
  }
  return count;
}

void EventScheduler::Dispatch(const Event& event) {
  clock_.AdvanceTo(event.at);
  ++dispatched_;
  trace_.MixU64(static_cast<uint64_t>(event.at));
  trace_.MixU64(handlers_[event.handler].name_hash);
  trace_.MixU64(event.arg);
  handlers_[event.handler].handler->OnEvent(this, event);
}

}  // namespace des
}  // namespace marlin

#ifndef MARLIN_SIM_DES_EVENT_FLEET_H_
#define MARLIN_SIM_DES_EVENT_FLEET_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ais/types.h"
#include "geo/world.h"
#include "sim/des/scheduler.h"
#include "sim/vessel.h"
#include "util/clock.h"
#include "util/rng.h"

namespace marlin {
namespace des {

/// Configuration of an event-driven fleet. Mirrors FleetConfig where the
/// knobs coincide; there is no `step_sec` because there are no steps.
struct EventFleetConfig {
  int num_vessels = 100000;
  Mmsi mmsi_base = 237000000;
  uint64_t seed = 1;
  TimeMicros start_time = TimeMicros{1635811200} * kMicrosPerSecond;
  /// Per-vessel AIS emission mixture (defaults reproduce §6.1's received
  /// stream statistics, like VesselSim).
  EmissionModel emission;
  /// Front-loaded exponential arrival span, as in FleetConfig.
  double arrival_span_sec = 0.0;
};

/// The discrete-event port of the fleet simulator, built for the paper's
/// headline regime (72 h, 400K vessels, ~10^9 messages/day — PAPER.md §1).
///
/// Where FleetSimulator integrates every vessel every `step_sec` (work
/// proportional to vessels × steps, regardless of how often they transmit),
/// EventFleet holds exactly one pending event per vessel in the scheduler's
/// global queue: its next AIS transmission. Work is proportional to the
/// number of *messages*, which is what the regime counts.
///
/// To keep the per-event cost flat (~hundreds of ns), lane geometry is
/// precompiled into a leg cache: each lane leg stores its origin, unit
/// lat/lon slopes per meter, bearing, and length, so advancing a vessel is
/// pure arithmetic — trigonometry happens once per leg at construction, not
/// per event. Between its (irregular, mean ~78.6 s) transmissions a vessel
/// moves at a speed held constant since its last event and refreshed by the
/// same Ornstein-Uhlenbeck pull VesselSim uses, so tracks keep realistic
/// speed texture at a fraction of the cost.
class EventFleet : public EventHandler {
 public:
  /// Called for every emitted report, in global virtual-time order.
  using Sink = std::function<void(const AisPosition&)>;

  /// Registers the fleet with `scheduler` and posts every vessel's first
  /// transmission. The scheduler, world, and sink must outlive the fleet.
  EventFleet(const World* world, const EventFleetConfig& config,
             EventScheduler* scheduler, Sink sink);

  /// Dispatch of one vessel transmission (event.arg = vessel index):
  /// advance the vessel to event.at, emit the report, re-arm the next one.
  void OnEvent(EventScheduler* scheduler, const Event& event) override;

  int64_t emitted() const { return emitted_; }
  int num_vessels() const { return static_cast<int>(vessels_.size()); }

 private:
  /// One precompiled lane leg: position is origin + slope × meters.
  struct Leg {
    double lat0 = 0.0;
    double lon0 = 0.0;
    double dlat_per_m = 0.0;
    double dlon_per_m = 0.0;
    double length_m = 0.0;
    /// Constant course along the leg and the local meters→degrees noise
    /// scale, cached so emission needs no trig.
    double bearing_deg = 0.0;
    double noise_dlat_per_m = 0.0;
    double noise_dlon_per_m = 0.0;
  };
  struct LaneSpan {
    uint32_t first_leg = 0;
    uint32_t num_legs = 0;
    int to_port = 0;
  };
  struct VesselState {
    Rng rng;
    uint32_t lane = 0;
    uint32_t leg = 0;  // index into legs_, within the lane's span
    double leg_offset_m = 0.0;
    double speed_mps = 6.0;
    double cruise_mps = 6.0;
    TimeMicros last_update = 0;
  };

  void BuildLegCache();
  /// Moves `v` forward `distance_m` along its lane, hopping legs and lanes.
  void Advance(VesselState* v, double distance_m);

  const World* world_;
  const EventFleetConfig config_;
  Sink sink_;
  uint32_t handler_id_ = 0;

  std::vector<Leg> legs_;
  std::vector<LaneSpan> lanes_;
  /// Flat LanesFrom adjacency: lanes_from_[port_offsets_[p] ..
  /// port_offsets_[p+1]) are the lane indices leaving port p.
  std::vector<uint32_t> lanes_from_;
  std::vector<uint32_t> port_offsets_;

  std::vector<VesselState> vessels_;
  int64_t emitted_ = 0;
};

}  // namespace des
}  // namespace marlin

#endif  // MARLIN_SIM_DES_EVENT_FLEET_H_

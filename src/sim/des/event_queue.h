#ifndef MARLIN_SIM_DES_EVENT_QUEUE_H_
#define MARLIN_SIM_DES_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/clock.h"

namespace marlin {
namespace des {

/// One pending occurrence in virtual time. POD by design: the global queue
/// at the 400K-vessel scale holds one event per vessel, and dispatch must
/// not allocate — handlers are registered once and addressed by id, and the
/// 64-bit `arg` carries the component payload (vessel index, beat number,
/// node id, ...).
struct Event {
  /// Virtual firing time.
  TimeMicros at = 0;
  /// Global post-order sequence number — the stable tie-break. Two events
  /// at the same virtual time always dispatch in the order they were
  /// posted, independent of queue internals, which is what makes a run's
  /// event order (and therefore its trace hash) a pure function of the
  /// seed.
  uint64_t seq = 0;
  /// Id returned by EventScheduler::RegisterHandler.
  uint32_t handler = 0;
  /// Opaque payload interpreted by the handler.
  uint64_t arg = 0;
};

/// The scheduler's global priority queue, ordered by (at, seq).
///
/// Two-level structure, sized by the 400K-vessel regime. A flat min-heap
/// of 400K pending events is a ~13 MB array, and every pop walks a chain
/// of *dependent* cache misses down it — measured at roughly half the
/// per-event cost of the 72 h run. So the queue keeps only the near
/// future in the heap and stages everything else in a calendar:
///
///  - a "promoted" 8-ary min-heap holding every event with `at` below the
///    promotion horizon. In steady state that is a couple of calendar
///    buckets' worth of events, small enough to live in L2, and the 8-ary
///    layout keeps the sift-down short (depth ~5 at 20K events) with each
///    node's children in 4 contiguous cache lines;
///  - a calendar of `kBucketMicros`-wide staging buckets (a deque of
///    vectors, front = earliest unpromoted window). A push beyond the
///    horizon is one vector append; when the heap runs ahead of the
///    horizon, the front bucket is promoted wholesale — a sequential scan
///    feeding heap pushes — and the horizon advances one bucket.
///
/// Ordering is exact, not approximate: (at, seq) is a *strict* total
/// order (seq is unique), staged events are by construction at-or-after
/// the horizon, and a pop only happens once every earlier bucket has been
/// promoted — so the pop sequence (and every trace hash built from it) is
/// identical to a single flat heap's, regardless of when promotions run.
class EventQueue {
 public:
  void Reserve(size_t n) { heap_.reserve(std::min<size_t>(n, 65536)); }

  void Push(const Event& event) {
    if (event.at < horizon_) {
      HeapPush(event);
      return;
    }
    const uint64_t bucket =
        static_cast<uint64_t>(event.at) / kBucketMicros;
    if (!calendar_started_) {
      calendar_started_ = true;
      front_bucket_ = bucket;
    } else if (bucket < front_bucket_) {
      // Only possible before the first promotion fixes the horizon.
      staged_.insert(staged_.begin(), front_bucket_ - bucket, {});
      front_bucket_ = bucket;
    }
    const size_t idx = bucket - front_bucket_;
    if (idx >= staged_.size()) staged_.resize(idx + 1);
    staged_[idx].push_back(event);
    ++staged_count_;
  }

  /// Earliest event by (at, seq). Precondition: !Empty(). Non-const: may
  /// promote staged buckets into the heap (which never changes the order).
  const Event& Top() {
    Normalize();
    return heap_.front();
  }

  Event Pop() {
    Normalize();
    const Event top = heap_.front();
    const Event last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(last);
    return top;
  }

  bool Empty() const { return heap_.empty() && staged_count_ == 0; }
  size_t Size() const { return heap_.size() + staged_count_; }

 private:
  static constexpr size_t kArity = 8;
  /// Staging bucket width: 1 simulated second. At the regime's ~7K
  /// events per simulated second that keeps the promoted heap around
  /// 7-10K entries (~250 KB, L2-resident), while AIS re-arm intervals
  /// (mean ~78.6 s) almost always land in the calendar. The width only
  /// moves the staging/promotion balance — pop order is identical for
  /// any width (see class comment).
  static constexpr uint64_t kBucketMicros = 1ULL * kMicrosPerSecond;

  /// "a fires after b": the heap invariant is that no parent fires after
  /// any of its children.
  static bool After(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  /// Promotes staged buckets until the heap's top precedes every staged
  /// event (all of which sit at or after the horizon).
  void Normalize() {
    while (staged_count_ > 0 &&
           (heap_.empty() || heap_.front().at >= HorizonOfFront())) {
      std::vector<Event>& bucket = staged_.front();
      staged_count_ -= bucket.size();
      for (const Event& event : bucket) HeapPush(event);
      staged_.pop_front();
      ++front_bucket_;
      horizon_ = HorizonOfFront();
    }
  }

  /// Start of the earliest unpromoted bucket's window.
  TimeMicros HorizonOfFront() const {
    return static_cast<TimeMicros>(front_bucket_ * kBucketMicros);
  }

  void HeapPush(const Event& event) {
    heap_.push_back(event);
    SiftUp(heap_.size() - 1);
  }

  /// Bubbles the element at `hole` toward the root (hole-based: the moving
  /// event is written once at its final slot instead of swapped per level).
  void SiftUp(size_t hole) {
    const Event moving = heap_[hole];
    while (hole > 0) {
      const size_t parent = (hole - 1) / kArity;
      if (!After(heap_[parent], moving)) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = moving;
  }

  /// Re-inserts `moving` from the root downward after a pop.
  void SiftDown(const Event& moving) {
    const size_t size = heap_.size();
    size_t hole = 0;
    for (;;) {
      const size_t first_child = hole * kArity + 1;
      if (first_child >= size) break;
      const size_t end_child = std::min(first_child + kArity, size);
      size_t best = first_child;
      for (size_t c = first_child + 1; c < end_child; ++c) {
        if (After(heap_[best], heap_[c])) best = c;
      }
      if (!After(moving, heap_[best])) break;
      heap_[hole] = heap_[best];
      hole = best;
    }
    heap_[hole] = moving;
  }

  std::vector<Event> heap_;
  /// Calendar of unpromoted buckets; staged_[0] covers
  /// [front_bucket_, front_bucket_ + 1) × kBucketMicros.
  std::deque<std::vector<Event>> staged_;
  uint64_t front_bucket_ = 0;
  size_t staged_count_ = 0;
  bool calendar_started_ = false;
  /// Events strictly below this time go straight to the heap; it equals
  /// the front bucket's window start once promotion begins (0 before, so
  /// the calendar absorbs the initial posting wave).
  TimeMicros horizon_ = 0;
};

}  // namespace des
}  // namespace marlin

#endif  // MARLIN_SIM_DES_EVENT_QUEUE_H_

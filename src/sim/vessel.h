#ifndef MARLIN_SIM_VESSEL_H_
#define MARLIN_SIM_VESSEL_H_

#include <optional>

#include "ais/types.h"
#include "geo/world.h"
#include "util/rng.h"

namespace marlin {

/// Parameters of the AIS transmission model. The raw AIS reporting interval
/// depends on speed and equipment (ITU-R M.1371 schedules 2-10 s under way)
/// but the *received* stream the paper's system consumes is shaped by
/// terrestrial coverage holes and satellite revisit gaps: §6.1 reports a
/// post-downsampling mean interval of 78.6 s with a 418.3 s standard
/// deviation. The mixture below reproduces that regime: mostly short
/// nominal intervals, a coverage-degraded component, and rare long
/// satellite-gap outliers.
struct EmissionModel {
  /// P(nominal reception), interval ~ U[min, max).
  double p_nominal = 0.90;
  double nominal_min_sec = 4.0;
  double nominal_max_sec = 40.0;
  /// P(degraded coverage), interval ~ Exp(mean).
  double p_degraded = 0.08;
  double degraded_mean_sec = 150.0;
  /// Remainder: satellite revisit gap, interval ~ Exp(mean).
  double gap_mean_sec = 1500.0;

  /// Measurement noise on the *reported* kinematics (positions come from
  /// GNSS and are comparatively clean; SOG and especially COG readings are
  /// noisy, which is why single-report dead reckoning degrades and why
  /// history-integrating models can beat it).
  double position_noise_m = 10.0;
  double sog_noise_knots = 0.2;
  double cog_noise_deg = 1.0;

  /// Draws the next inter-transmission interval in seconds.
  double SampleIntervalSec(Rng* rng) const;
};

/// Kinematic simulation of one vessel following shipping lanes, with
/// speed/course stochastics and the irregular AIS emission model.
///
/// The vessel follows its lane's waypoints with an Ornstein-Uhlenbeck speed
/// process around a per-vessel cruise speed and bounded-rate course
/// steering, yielding smooth, realistic tracks (turns at waypoints,
/// speed oscillation, occasional slowdowns).
class VesselSim {
 public:
  /// Spawns a vessel on a random lane of `world` at a random progress point.
  VesselSim(Mmsi mmsi, const World* world, Rng rng);

  /// Advances the simulation by `dt` seconds of stream time.
  void Step(double dt_sec);

  /// If an AIS transmission is due at or before `now`, returns the position
  /// report stamped with the transmission time and resets the emission
  /// timer.
  std::optional<AisPosition> MaybeEmit(TimeMicros now);

  /// Forces AIS silence (transmitter switch-off) until `until`.
  /// Used by the switch-off event tests.
  void SilenceUntil(TimeMicros until) { silent_until_ = until; }

  Mmsi mmsi() const { return mmsi_; }
  const LatLng& position() const { return position_; }
  double sog_knots() const { return sog_knots_; }
  double cog_deg() const { return cog_deg_; }
  const AisStatic& static_info() const { return static_info_; }
  int current_lane() const { return lane_; }

  /// Configures the emission mixture (defaults reproduce the paper's stream
  /// statistics).
  void set_emission_model(const EmissionModel& model) { emission_ = model; }

 private:
  void EnterLane(int lane_index, double progress_fraction);
  void SteerTowardsWaypoint(double dt_sec);

  Mmsi mmsi_;
  const World* world_;
  Rng rng_;
  AisStatic static_info_;
  EmissionModel emission_;

  int lane_ = 0;
  size_t waypoint_ = 0;
  LatLng position_;
  double sog_knots_ = 12.0;
  double cruise_knots_ = 12.0;
  double cog_deg_ = 0.0;
  double next_emit_sec_ = 0.0;  // stream-time seconds until next emission
  TimeMicros silent_until_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_SIM_VESSEL_H_

#include "sim/fleet.h"

#include <algorithm>

namespace marlin {

FleetSimulator::FleetSimulator(const World* world, const FleetConfig& config)
    : world_(world), config_(config), now_(config.start_time) {
  Rng master(config.seed);
  vessels_.reserve(static_cast<size_t>(config.num_vessels));
  arrival_time_.reserve(static_cast<size_t>(config.num_vessels));
  for (int i = 0; i < config.num_vessels; ++i) {
    auto vessel = std::make_unique<VesselSim>(
        config.mmsi_base + static_cast<Mmsi>(i), world, master.Fork());
    if (config.emission.has_value()) {
      vessel->set_emission_model(*config.emission);
    }
    vessels_.push_back(std::move(vessel));
    // Front-loaded (exponential) arrivals: a live feed surfaces most of the
    // active fleet within the first minutes of a connection and stragglers
    // trickle in — the "massive introduction of new actors" dynamic of the
    // paper's initialisation phase (§6.3).
    double arrival = 0.0;
    if (config.arrival_span_sec > 0.0) {
      arrival = std::min(config.arrival_span_sec,
                         master.Exponential(6.0 / config.arrival_span_sec));
    }
    arrival_time_.push_back(config.start_time +
                            static_cast<TimeMicros>(arrival * kMicrosPerSecond));
  }
}

TimeMicros FleetSimulator::Step(std::vector<AisPosition>* out) {
  now_ += static_cast<TimeMicros>(config_.step_sec * kMicrosPerSecond);
  active_ = 0;
  for (size_t i = 0; i < vessels_.size(); ++i) {
    if (now_ < arrival_time_[i]) continue;
    ++active_;
    vessels_[i]->Step(config_.step_sec);
    std::optional<AisPosition> report = vessels_[i]->MaybeEmit(now_);
    if (report.has_value() && out != nullptr) {
      out->push_back(*report);
    }
  }
  return now_;
}

std::vector<AisPosition> FleetSimulator::Run(double duration_sec) {
  std::vector<AisPosition> out;
  const TimeMicros end =
      now_ + static_cast<TimeMicros>(duration_sec * kMicrosPerSecond);
  while (now_ < end) Step(&out);
  return out;
}

std::map<Mmsi, std::vector<AisPosition>> FleetSimulator::RunTracks(
    double duration_sec) {
  std::map<Mmsi, std::vector<AisPosition>> tracks;
  const TimeMicros end =
      now_ + static_cast<TimeMicros>(duration_sec * kMicrosPerSecond);
  std::vector<AisPosition> buffer;
  while (now_ < end) {
    buffer.clear();
    Step(&buffer);
    for (const AisPosition& report : buffer) {
      tracks[report.mmsi].push_back(report);
    }
  }
  return tracks;
}

}  // namespace marlin

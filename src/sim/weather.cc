#include "sim/weather.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace marlin {

WeatherField::WeatherField(uint64_t seed) {
  Rng rng(seed);
  for (System& system : systems_) {
    system.lat_freq = rng.Uniform(0.03, 0.12);   // cycles per degree
    system.lon_freq = rng.Uniform(0.02, 0.10);
    system.phase = rng.Uniform(0.0, 2.0 * kPi);
    system.speed = rng.Uniform(0.5, 2.0);        // radians per day
    system.amplitude = rng.Uniform(2.0, 7.0);    // m/s of wind
  }
}

WeatherSample WeatherField::At(const LatLng& position, TimeMicros t) const {
  const double days =
      static_cast<double>(t) / (24.0 * 3600.0 * kMicrosPerSecond);
  // Wind vector as the superposition of the systems' gradients.
  double u = 0.0, v = 0.0;
  for (const System& system : systems_) {
    const double arg = 2.0 * kPi * (system.lat_freq * position.lat_deg +
                                    system.lon_freq * position.lon_deg) +
                       system.phase + system.speed * days;
    u += system.amplitude * std::sin(arg);
    v += system.amplitude * std::cos(arg * 0.83 + 1.1);
  }
  WeatherSample sample;
  sample.wind_speed_mps = std::hypot(u, v);
  sample.wind_dir_deg = std::fmod(std::atan2(u, v) * kRadToDeg + 360.0, 360.0);
  // Wave height: wind-driven with a mid-latitude swell floor (roaring
  // forties and North Atlantic get a baseline).
  const double swell =
      0.5 + 1.2 * std::pow(std::sin(position.lat_deg * kDegToRad), 2.0);
  sample.wave_height_m = std::max(
      0.1, 0.18 * sample.wind_speed_mps + swell * 0.6);
  return sample;
}

double WeatherField::RoutePenalty(const LatLng& position, TimeMicros t) const {
  const WeatherSample sample = At(position, t);
  // Normalise against the worst modelled state (~ sum of amplitudes wind,
  // ~7 m waves).
  const double wind_norm = std::clamp(sample.wind_speed_mps / 25.0, 0.0, 1.0);
  const double wave_norm = std::clamp(sample.wave_height_m / 7.0, 0.0, 1.0);
  return std::clamp(0.5 * wind_norm + 0.5 * wave_norm, 0.0, 1.0);
}

}  // namespace marlin

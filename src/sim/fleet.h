#ifndef MARLIN_SIM_FLEET_H_
#define MARLIN_SIM_FLEET_H_

#include <map>
#include <memory>
#include <vector>

#include "sim/vessel.h"
#include "geo/world.h"
#include "util/clock.h"

namespace marlin {

/// Configuration of a fleet-scale AIS stream simulation.
struct FleetConfig {
  int num_vessels = 1000;
  /// Simulation integration step.
  double step_sec = 10.0;
  /// Base of MMSI assignment (vessels get base, base+1, ...).
  Mmsi mmsi_base = 237000000;
  uint64_t seed = 1;
  /// Stream start time.
  TimeMicros start_time = TimeMicros{1635811200} * kMicrosPerSecond;  // 2021-11-02
  /// Optional override of the per-vessel AIS emission model.
  std::optional<EmissionModel> emission;
  /// Vessels enter the simulation progressively over this warmup span
  /// (0 = all present from the start). Reproduces the "massive introduction
  /// of new actors" dynamic of the paper's initialisation phase.
  double arrival_span_sec = 0.0;
};

/// Drives `num_vessels` VesselSims through stream time, producing the merged
/// irregular AIS message stream the paper's ingestion layer consumes —
/// Marlin's substitute for the MarineTraffic global feed.
class FleetSimulator {
 public:
  FleetSimulator(const World* world, const FleetConfig& config);

  /// Advances stream time by one step and appends emitted messages
  /// (time-ordered within the step) to `out`. Returns the new stream time.
  TimeMicros Step(std::vector<AisPosition>* out);

  /// Runs for `duration_sec` of stream time, collecting every message.
  std::vector<AisPosition> Run(double duration_sec);

  /// Runs for `duration_sec` and returns per-vessel time-ordered tracks
  /// (the historical-dataset shape used for training/evaluation).
  std::map<Mmsi, std::vector<AisPosition>> RunTracks(double duration_sec);

  TimeMicros now() const { return now_; }
  int active_vessels() const { return active_; }
  int total_vessels() const { return static_cast<int>(vessels_.size()); }
  VesselSim* vessel(int index) { return vessels_[static_cast<size_t>(index)].get(); }

 private:
  const World* world_;
  FleetConfig config_;
  std::vector<std::unique_ptr<VesselSim>> vessels_;
  std::vector<TimeMicros> arrival_time_;
  TimeMicros now_;
  int active_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_SIM_FLEET_H_

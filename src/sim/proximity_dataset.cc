#include "sim/proximity_dataset.h"

#include <algorithm>
#include <cmath>

namespace marlin {
namespace {

/// Parametric description of one vessel's path through an encounter:
/// the vessel passes `cpa_pos` at relative time 0 on course
/// `course_at_cpa`, moving at `sog_knots`, with a constant turn rate (so
/// paths are arcs, not lines — dead reckoning from a single report cannot
/// follow them, which is the difficulty profile of real encounters).
struct PathSpec {
  LatLng cpa_pos;
  double course_at_cpa_deg = 0.0;
  double sog_knots = 12.0;
  double turn_rate_deg_min = 0.0;
};

/// Path position at `dt_sec` relative to the CPA passage (negative =
/// before). Integrated in 10-second sub-steps.
LatLng PathPosition(const PathSpec& spec, double dt_sec) {
  const double step = dt_sec >= 0.0 ? 10.0 : -10.0;
  const double speed_mps = spec.sog_knots * kKnotsToMps;
  LatLng position = spec.cpa_pos;
  double t = 0.0;
  while (std::abs(dt_sec - t) > 1e-9) {
    double dt = step;
    if (std::abs(dt_sec - t) < std::abs(step)) dt = dt_sec - t;
    // Course at the midpoint of the sub-step.
    const double course =
        spec.course_at_cpa_deg +
        spec.turn_rate_deg_min * (t + dt / 2.0) / 60.0;
    position = DestinationPoint(position, course, speed_mps * dt);
    t += dt;
  }
  return position;
}

/// Densely pre-sampled path over [begin_sec, end_sec] relative to CPA.
struct SampledPath {
  double begin_sec = 0.0;
  double step_sec = 10.0;
  std::vector<LatLng> points;

  LatLng At(double dt_sec) const {
    const double f = (dt_sec - begin_sec) / step_sec;
    const double clamped =
        std::clamp(f, 0.0, static_cast<double>(points.size() - 1));
    const size_t i0 = static_cast<size_t>(clamped);
    const size_t i1 = std::min(i0 + 1, points.size() - 1);
    const double w = clamped - static_cast<double>(i0);
    LatLng out;
    out.lat_deg =
        points[i0].lat_deg + w * (points[i1].lat_deg - points[i0].lat_deg);
    out.lon_deg =
        points[i0].lon_deg + w * (points[i1].lon_deg - points[i0].lon_deg);
    return out;
  }
};

SampledPath SamplePath(const PathSpec& spec, double begin_sec,
                       double end_sec) {
  SampledPath path;
  path.begin_sec = begin_sec;
  path.step_sec = 10.0;
  // Integrate once from begin to end instead of restarting at the CPA for
  // every sample.
  const double speed_mps = spec.sog_knots * kKnotsToMps;
  LatLng position = PathPosition(spec, begin_sec);
  double t = begin_sec;
  path.points.push_back(position);
  while (t < end_sec - 1e-9) {
    const double dt = std::min(path.step_sec, end_sec - t);
    const double course = spec.course_at_cpa_deg +
                          spec.turn_rate_deg_min * (t + dt / 2.0) / 60.0;
    position = DestinationPoint(position, course, speed_mps * dt);
    t += dt;
    path.points.push_back(position);
  }
  return path;
}

/// Emits the AIS track for a sampled path: jittered reporting intervals,
/// GNSS position noise, noisy SOG/COG readings.
std::vector<AisPosition> EmitTrack(Mmsi mmsi, const PathSpec& spec,
                                   const SampledPath& path,
                                   TimeMicros cpa_time, double begin_sec,
                                   double end_sec, double mean_interval_sec,
                                   Rng* rng) {
  std::vector<AisPosition> track;
  double t = begin_sec;
  while (t <= end_sec) {
    AisPosition report;
    report.mmsi = mmsi;
    report.timestamp =
        cpa_time + static_cast<TimeMicros>(t * kMicrosPerSecond);
    report.position = DestinationPoint(path.At(t), rng->Uniform(0.0, 360.0),
                                       std::abs(rng->Normal(0.0, 10.0)));
    report.sog_knots =
        std::max(0.5, spec.sog_knots + rng->Normal(0.0, 0.25));
    const double course =
        spec.course_at_cpa_deg + spec.turn_rate_deg_min * t / 60.0;
    report.cog_deg =
        std::fmod(course + rng->Normal(0.0, 1.5) + 720.0, 360.0);
    report.heading_deg = static_cast<int>(report.cog_deg);
    track.push_back(report);
    t += std::max(10.0,
                  mean_interval_sec + rng->Normal(0.0, mean_interval_sec * 0.35));
  }
  return track;
}

/// Empirical CPA of two sampled paths over their common span (5-second
/// scan). Returns distance and the relative time of the minimum.
void EmpiricalCpa(const SampledPath& a, const SampledPath& b, double begin_sec,
                  double end_sec, double* cpa_m, double* cpa_dt_sec) {
  *cpa_m = 1e18;
  *cpa_dt_sec = 0.0;
  for (double t = begin_sec; t <= end_sec; t += 5.0) {
    const double d = ApproxDistanceMeters(a.At(t), b.At(t));
    if (d < *cpa_m) {
      *cpa_m = d;
      *cpa_dt_sec = t;
    }
  }
}

}  // namespace

std::vector<AisPosition> GenerateEncounterStyleTrack(
    Mmsi mmsi, const BoundingBox& region, double duration_sec,
    double mean_interval_sec, Rng* rng) {
  PathSpec spec;
  spec.cpa_pos = LatLng{rng->Uniform(region.min_lat + 0.3, region.max_lat - 0.3),
                        rng->Uniform(region.min_lon + 0.3, region.max_lon - 0.3)};
  spec.course_at_cpa_deg = rng->Uniform(0.0, 360.0);
  spec.sog_knots = rng->Uniform(8.0, 20.0);
  spec.turn_rate_deg_min =
      rng->Bernoulli(0.5) ? 0.0 : rng->Uniform(-2.0, 2.0);
  const double begin = -duration_sec / 2.0;
  const double end = duration_sec / 2.0;
  const SampledPath path = SamplePath(spec, begin, end);
  const TimeMicros mid_time =
      TimeMicros{1694000000} * kMicrosPerSecond +
      static_cast<TimeMicros>(rng->Uniform(0, 86400.0) * kMicrosPerSecond);
  return EmitTrack(mmsi, spec, path, mid_time, begin, end, mean_interval_sec,
                   rng);
}

int ProximityDataset::EventsWithin(double seconds) const {
  int count = 0;
  for (const auto& s : scenarios) {
    if (s.truth.is_event && s.truth.time_to_cpa_sec < seconds) ++count;
  }
  return count;
}

int ProximityDataset::TotalEvents() const {
  int count = 0;
  for (const auto& s : scenarios) {
    if (s.truth.is_event) ++count;
  }
  return count;
}

int ProximityDataset::TotalMessages() const {
  int count = 0;
  for (const auto& s : scenarios) {
    count += static_cast<int>(s.track_a.size() + s.track_b.size());
  }
  return count;
}

ProximityDataset GenerateProximityDataset(
    const ProximityDatasetConfig& config) {
  ProximityDataset dataset;
  Rng rng(config.seed);
  Mmsi next_mmsi = config.mmsi_base;

  // Builds one curved-encounter scenario with a requested nominal
  // time-to-CPA and perpendicular offset, then measures the *empirical*
  // CPA. The caller resamples until the scenario lands in the intended
  // class and bucket.
  auto make_scenario = [&](double tta_sec, double offset_m) {
    ProximityScenario scenario;
    PathSpec a, b;
    a.cpa_pos = LatLng{
        rng.Uniform(config.region.min_lat + 0.3, config.region.max_lat - 0.3),
        rng.Uniform(config.region.min_lon + 0.3, config.region.max_lon - 0.3)};
    a.course_at_cpa_deg = rng.Uniform(0.0, 360.0);
    const double crossing =
        rng.Uniform(25.0, 155.0) * (rng.Bernoulli(0.5) ? 1.0 : -1.0);
    b.course_at_cpa_deg =
        std::fmod(a.course_at_cpa_deg + crossing + 360.0, 360.0);
    a.sog_knots = rng.Uniform(8.0, 20.0);
    b.sog_knots = rng.Uniform(8.0, 20.0);
    // Half the vessels manoeuvre (constant-rate turns): the difficulty the
    // real dataset derives from vessel behaviour.
    a.turn_rate_deg_min = rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(-2.0, 2.0);
    b.turn_rate_deg_min = rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(-2.0, 2.0);
    b.cpa_pos =
        DestinationPoint(a.cpa_pos, a.course_at_cpa_deg + 90.0, offset_m);

    const TimeMicros eval_time =
        TimeMicros{1695000000} * kMicrosPerSecond +
        static_cast<TimeMicros>(rng.Uniform(0, 86400.0) * kMicrosPerSecond);
    const TimeMicros cpa_time =
        eval_time + static_cast<TimeMicros>(tta_sec * kMicrosPerSecond);

    const double begin_sec = -(config.history_span_sec + tta_sec + 120.0);
    const double end_sec = 4.0 * 60.0;
    const SampledPath path_a = SamplePath(a, begin_sec, end_sec);
    const SampledPath path_b = SamplePath(b, begin_sec, end_sec);

    double cpa_m, cpa_dt;
    EmpiricalCpa(path_a, path_b, -tta_sec - 90.0, end_sec - 60.0, &cpa_m,
                 &cpa_dt);

    scenario.track_a =
        EmitTrack(next_mmsi, a, path_a, cpa_time, begin_sec + 120.0, end_sec,
                  config.mean_interval_sec, &rng);
    scenario.track_b =
        EmitTrack(next_mmsi + 1, b, path_b, cpa_time, begin_sec + 120.0,
                  end_sec, config.mean_interval_sec, &rng);
    scenario.eval_time = eval_time;
    scenario.truth.vessel_a = next_mmsi;
    scenario.truth.vessel_b = next_mmsi + 1;
    scenario.truth.cpa_time =
        cpa_time + static_cast<TimeMicros>(cpa_dt * kMicrosPerSecond);
    scenario.truth.cpa_distance_m = cpa_m;
    scenario.truth.time_to_cpa_sec = tta_sec + cpa_dt;
    return scenario;
  };

  auto add_events = [&](int count, double min_tta_sec, double max_tta_sec) {
    for (int i = 0; i < count; ++i) {
      for (int attempt = 0; attempt < 300; ++attempt) {
        const double tta = rng.Uniform(min_tta_sec + 10.0, max_tta_sec - 10.0);
        const double offset =
            rng.Uniform(10.0, config.proximity_threshold_m * 0.6);
        ProximityScenario scenario = make_scenario(tta, offset);
        if (scenario.truth.cpa_distance_m < config.proximity_threshold_m &&
            scenario.truth.time_to_cpa_sec >= min_tta_sec &&
            scenario.truth.time_to_cpa_sec < max_tta_sec) {
          scenario.truth.is_event = true;
          dataset.scenarios.push_back(std::move(scenario));
          next_mmsi += 2;
          break;
        }
      }
    }
  };
  add_events(config.events_under_2min, 20.0, 120.0);
  add_events(config.events_2_to_5min, 120.0, 300.0);
  add_events(config.events_5_to_12min, 300.0, 720.0);

  // Negatives: a mix of hard near-misses (just beyond the proximity
  // threshold — the false-positive trap for noisy forecasts) and safe
  // passes.
  for (int i = 0; i < config.negatives; ++i) {
    const bool near_miss = rng.Bernoulli(0.6);
    for (int attempt = 0; attempt < 300; ++attempt) {
      const double tta = rng.Uniform(60.0, 720.0);
      const double offset =
          near_miss
              ? rng.Uniform(config.proximity_threshold_m * 2.2,
                            config.proximity_threshold_m * 6.0)
              : rng.Uniform(config.safe_distance_m,
                            config.safe_distance_m * 3.0);
      ProximityScenario scenario = make_scenario(tta, offset);
      const double lower_bound = config.proximity_threshold_m * 1.6;
      if (scenario.truth.cpa_distance_m >= lower_bound) {
        scenario.truth.is_event = false;
        dataset.scenarios.push_back(std::move(scenario));
        next_mmsi += 2;
        break;
      }
    }
  }
  return dataset;
}

}  // namespace marlin

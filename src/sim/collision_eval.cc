#include "sim/collision_eval.h"

#include "ais/preprocess.h"

namespace marlin {
namespace {

/// Builds the model input for one vessel from its track prefix up to
/// `eval_time`. Returns false when the history is too short.
bool BuildInput(const std::vector<AisPosition>& track, TimeMicros eval_time,
                SvrfInput* input) {
  VesselHistory history;
  for (const AisPosition& report : track) {
    if (report.timestamp > eval_time) break;
    history.Push(report);
  }
  if (!history.Ready()) return false;
  *input = history.MakeInput();
  return true;
}

bool InSubset(const ProximityTruth& truth, ProximitySubset subset) {
  if (!truth.is_event) return true;  // negatives always participate
  switch (subset) {
    case ProximitySubset::kAll:
      return true;
    case ProximitySubset::kUnder2:
      return truth.time_to_cpa_sec < 120.0;
    case ProximitySubset::kUnder5:
      return truth.time_to_cpa_sec < 300.0;
  }
  return true;
}

}  // namespace

CollisionEvalResult EvaluateCollisionForecasting(
    const RouteForecaster& model, const ProximityDataset& dataset,
    ProximitySubset subset, TimeMicros temporal_threshold,
    double spatial_threshold_m) {
  CollisionEvalResult result;
  result.model_name = std::string(model.name());
  result.temporal_threshold_min =
      static_cast<double>(temporal_threshold) / kMicrosPerMinute;

  for (const ProximityScenario& scenario : dataset.scenarios) {
    if (!InSubset(scenario.truth, subset)) continue;
    if (scenario.truth.is_event) ++result.total_events;

    SvrfInput input_a, input_b;
    const bool ok_a =
        BuildInput(scenario.track_a, scenario.eval_time, &input_a);
    const bool ok_b =
        BuildInput(scenario.track_b, scenario.eval_time, &input_b);

    bool predicted = false;
    if (ok_a && ok_b) {
      StatusOr<ForecastTrajectory> forecast_a = model.Forecast(input_a);
      StatusOr<ForecastTrajectory> forecast_b = model.Forecast(input_b);
      if (forecast_a.ok() && forecast_b.ok()) {
        forecast_a->mmsi = scenario.truth.vessel_a;
        forecast_b->mmsi = scenario.truth.vessel_b;
        // Fresh forecaster per scenario: scenarios are independent
        // encounters (different times and places).
        CollisionForecaster::Config config;
        config.temporal_threshold = temporal_threshold;
        config.spatial_threshold_m = spatial_threshold_m;
        CollisionForecaster forecaster(config);
        forecaster.Observe(*forecast_a);
        predicted = !forecaster.Observe(*forecast_b).empty();
      }
    }

    if (scenario.truth.is_event) {
      if (predicted) {
        ++result.tp;
      } else {
        ++result.fn;
      }
    } else {
      if (predicted) {
        ++result.fp;
      } else {
        ++result.tn;
      }
    }
  }

  const double tp = result.tp, fp = result.fp, fn = result.fn;
  result.precision = tp + fp > 0 ? tp / (tp + fp) : 0.0;
  result.recall = tp + fn > 0 ? tp / (tp + fn) : 0.0;
  result.f1 = result.precision + result.recall > 0
                  ? 2.0 * result.precision * result.recall /
                        (result.precision + result.recall)
                  : 0.0;
  result.accuracy = tp + fp + fn > 0 ? tp / (tp + fp + fn) : 0.0;
  return result;
}

}  // namespace marlin

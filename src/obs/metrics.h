#ifndef MARLIN_OBS_METRICS_H_
#define MARLIN_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace marlin {
namespace obs {

/// Sorted (key, value) label pairs identifying one time series within a
/// metric family. Kept small: the conventions (DESIGN.md §Observability)
/// cap label cardinality at topics, groups, stages and op names — never
/// per-vessel or per-actor values.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing counter, sharded across cache lines so that
/// dispatcher threads incrementing the same family member never contend on
/// one cache line. Increment is a single relaxed fetch_add on the calling
/// thread's shard; Value() sums the shards (scrape-time only).
class Counter {
 public:
  static constexpr int kShards = 16;

  void Increment(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes all shards. Test-only; concurrent increments may survive.
  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex() {
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  }

  Shard shards_[kShards];
};

/// A settable instantaneous value (queue depths, lags, live counts) with a
/// CAS-max update for high-water marks.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Sub(int64_t delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }

  /// Raises the gauge to `candidate` if it is larger (high-water mark).
  void UpdateMax(int64_t candidate) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram over fixed exponential buckets: bucket i covers values
/// <= lowest * growth^i, with a final +Inf bucket. Observations and the
/// running sum/count are lock-free atomics; designed for nanosecond
/// latencies (integer values, clamped at zero).
class Histogram {
 public:
  struct Options {
    /// Upper bound of the first bucket (1 µs in nanoseconds by default).
    double lowest = 1e3;
    /// Bucket-to-bucket growth factor.
    double growth = 4.0;
    /// Number of finite buckets (a +Inf bucket is always appended).
    int buckets = 12;
  };

  /// One rendered bucket: cumulative count of observations <= upper_bound.
  struct BucketSnapshot {
    double upper_bound = 0.0;  // +Inf for the last bucket
    uint64_t cumulative_count = 0;
  };

  struct Snapshot {
    std::vector<BucketSnapshot> buckets;
    uint64_t count = 0;
    double sum = 0.0;
  };

  Histogram();  // default Options
  explicit Histogram(const Options& options);

  void Observe(int64_t value);

  uint64_t Count() const;
  double Sum() const;
  /// Mean observation, or 0 when empty.
  double Mean() const;
  Snapshot TakeSnapshot() const;

  /// Zeroes counts and sum. Test-only; concurrent observes may survive.
  void Reset();

 private:
  std::vector<double> upper_bounds_;               // finite bounds, ascending
  std::vector<std::atomic<uint64_t>> bucket_counts_;  // one per bound + Inf
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// A process-wide registry of labeled metric families. Families are created
/// on first Get* and live for the registry's lifetime, so instruments can
/// cache the returned pointers and update them without any registry lock —
/// the registry mutex is taken only at registration and scrape time.
///
/// Components default to the process-global registry; tests may pass their
/// own instance for isolation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry exported via GET /metrics.
  static MetricsRegistry& Global();

  /// Resolves the conventional "null means global" handle.
  static MetricsRegistry* OrGlobal(MetricsRegistry* registry) {
    return registry != nullptr ? registry : &Global();
  }

  /// Returns the counter `name{labels}`, creating the family (with `help`)
  /// and the member on first use. The pointer is stable for the registry's
  /// lifetime. Aborts if `name` already names a non-counter family.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          Labels labels = {},
                          const Histogram::Options& options = {});

  /// Renders every family in the Prometheus text exposition format
  /// (HELP/TYPE headers, cumulative `_bucket`/`_sum`/`_count` series for
  /// histograms).
  std::string RenderPrometheus() const;

  /// Renders the same snapshot as a JSON object keyed by family name.
  std::string RenderJson() const;

  /// Zeroes every counter, gauge and histogram (families stay registered).
  /// Test-only.
  void ResetAll();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Member {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    // Keyed by the serialised label set for stable, deduplicated lookup.
    std::map<std::string, Member> members;
  };

  Family* GetFamily(const std::string& name, const std::string& help,
                    Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;  // ordered for stable rendering
};

/// Observes the lifetime of one scope into a histogram, in nanoseconds.
/// `histogram` may be null (disabled instrumentation).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram),
        start_(histogram != nullptr ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point()) {}

  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    histogram_->Observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace marlin

#endif  // MARLIN_OBS_METRICS_H_

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/logging.h"

namespace marlin {
namespace obs {
namespace {

/// Serialises a label set into the Prometheus inner form
/// `key1="v1",key2="v2"` (sorted by key), escaping backslash, quote and
/// newline in values. Doubles as the member map key.
std::string SerializeLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, value] : sorted) {
    if (!out.empty()) out += ",";
    out += key;
    out += "=\"";
    for (const char c : value) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out.push_back(c);
      }
    }
    out += "\"";
  }
  return out;
}

/// `name` or `name{labels}`, with `extra` (e.g. a le="...") merged in.
std::string SeriesRef(const std::string& name, const std::string& labels,
                      const std::string& extra = "") {
  std::string inner = labels;
  if (!extra.empty()) {
    if (!inner.empty()) inner += ",";
    inner += extra;
  }
  if (inner.empty()) return name;
  return name + "{" + inner + "}";
}

std::string FormatDouble(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  // %.17g round-trips doubles; trims to the shortest exact form for
  // integers, which covers all bucket bounds and nanosecond sums.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Minimal JSON string escaping (metric names and label values are ASCII by
/// convention; control characters are dropped).
std::string JsonStr(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

}  // namespace

// ----------------------------------------------------------- Histogram

Histogram::Histogram() : Histogram(Options()) {}

Histogram::Histogram(const Options& options)
    : bucket_counts_(
          static_cast<size_t>(std::max(1, options.buckets)) + 1) {
  const int n = std::max(1, options.buckets);
  const double growth = options.growth > 1.0 ? options.growth : 2.0;
  double bound = options.lowest > 0 ? options.lowest : 1.0;
  upper_bounds_.reserve(n);
  for (int i = 0; i < n; ++i) {
    upper_bounds_.push_back(bound);
    bound *= growth;
  }
}

void Histogram::Observe(int64_t value) {
  const double v = static_cast<double>(std::max<int64_t>(0, value));
  // Branch-free enough: the bound arrays are tiny (<= ~20 entries) and
  // read-only, so this is a short scan over one cache line.
  size_t index = upper_bounds_.size();  // +Inf bucket
  for (size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (v <= upper_bounds_[i]) {
      index = i;
      break;
    }
  }
  bucket_counts_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(static_cast<uint64_t>(std::max<int64_t>(0, value)),
                 std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return static_cast<double>(sum_.load(std::memory_order_relaxed));
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.count = Count();
  snapshot.sum = Sum();
  snapshot.buckets.reserve(bucket_counts_.size());
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts_.size(); ++i) {
    cumulative += bucket_counts_[i].load(std::memory_order_relaxed);
    const double bound = i < upper_bounds_.size()
                             ? upper_bounds_[i]
                             : std::numeric_limits<double>::infinity();
    snapshot.buckets.push_back(BucketSnapshot{bound, cumulative});
  }
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : bucket_counts_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ----------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const kGlobal = new MetricsRegistry();  // chk-lint: allow(naked-new) leaky singleton
  return *kGlobal;
}

MetricsRegistry::Family* MetricsRegistry::GetFamily(const std::string& name,
                                                    const std::string& help,
                                                    Kind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.kind = kind;
  } else {
    MARLIN_CHECK(it->second.kind == kind);  // one name, one metric type
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Kind::kCounter);
  Member& member = family->members[SerializeLabels(labels)];
  if (member.counter == nullptr) {
    member.labels = std::move(labels);
    member.counter = std::make_unique<Counter>();
  }
  return member.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Kind::kGauge);
  Member& member = family->members[SerializeLabels(labels)];
  if (member.gauge == nullptr) {
    member.labels = std::move(labels);
    member.gauge = std::make_unique<Gauge>();
  }
  return member.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         Labels labels,
                                         const Histogram::Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Kind::kHistogram);
  Member& member = family->members[SerializeLabels(labels)];
  if (member.histogram == nullptr) {
    member.labels = std::move(labels);
    member.histogram = std::make_unique<Histogram>(options);
  }
  return member.histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [label_key, member] : family.members) {
      switch (family.kind) {
        case Kind::kCounter:
          out += SeriesRef(name, label_key) + " " +
                 std::to_string(member.counter->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += SeriesRef(name, label_key) + " " +
                 std::to_string(member.gauge->Value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snapshot =
              member.histogram->TakeSnapshot();
          for (const auto& bucket : snapshot.buckets) {
            out += SeriesRef(name + "_bucket", label_key,
                             "le=\"" + FormatDouble(bucket.upper_bound) +
                                 "\"") +
                   " " + std::to_string(bucket.cumulative_count) + "\n";
          }
          out += SeriesRef(name + "_sum", label_key) + " " +
                 FormatDouble(snapshot.sum) + "\n";
          out += SeriesRef(name + "_count", label_key) + " " +
                 std::to_string(snapshot.count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ",";
    first_family = false;
    out += JsonStr(name) + ":{";
    switch (family.kind) {
      case Kind::kCounter:
        out += "\"type\":\"counter\"";
        break;
      case Kind::kGauge:
        out += "\"type\":\"gauge\"";
        break;
      case Kind::kHistogram:
        out += "\"type\":\"histogram\"";
        break;
    }
    out += ",\"help\":" + JsonStr(family.help) + ",\"series\":[";
    bool first_member = true;
    for (const auto& [label_key, member] : family.members) {
      if (!first_member) out += ",";
      first_member = false;
      out += "{\"labels\":{";
      bool first_label = true;
      for (const auto& [key, value] : member.labels) {
        if (!first_label) out += ",";
        first_label = false;
        out += JsonStr(key) + ":" + JsonStr(value);
      }
      out += "}";
      switch (family.kind) {
        case Kind::kCounter:
          out += ",\"value\":" + std::to_string(member.counter->Value());
          break;
        case Kind::kGauge:
          out += ",\"value\":" + std::to_string(member.gauge->Value());
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snapshot =
              member.histogram->TakeSnapshot();
          out += ",\"count\":" + std::to_string(snapshot.count);
          out += ",\"sum\":" + FormatDouble(snapshot.sum);
          out += ",\"mean\":" + FormatDouble(member.histogram->Mean());
          out += ",\"buckets\":[";
          bool first_bucket = true;
          for (const auto& bucket : snapshot.buckets) {
            if (!first_bucket) out += ",";
            first_bucket = false;
            out += "{\"le\":" + JsonStr(FormatDouble(bucket.upper_bound)) +
                   ",\"count\":" + std::to_string(bucket.cumulative_count) +
                   "}";
          }
          out += "]";
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [label_key, member] : family.members) {
      if (member.counter != nullptr) member.counter->Reset();
      if (member.gauge != nullptr) member.gauge->Set(0);
      if (member.histogram != nullptr) member.histogram->Reset();
    }
  }
}

}  // namespace obs
}  // namespace marlin

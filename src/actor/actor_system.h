#ifndef MARLIN_ACTOR_ACTOR_SYSTEM_H_
#define MARLIN_ACTOR_ACTOR_SYSTEM_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "actor/actor.h"
#include "actor/dispatcher.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/status.h"

namespace marlin {

/// Runtime state of one actor: its instance, FIFO mailbox, and scheduling
/// flag. Internal to the runtime; exposed only for ActorRef's weak handle.
struct ActorCell {
  ActorId id = kNoActor;
  /// Process-globally unique key for the thread-ownership checker. Actor
  /// ids restart at 1 in every ActorSystem, so a multi-system process (a
  /// cluster node pair in one test) would alias ids across systems.
  uint64_t chk_key = 0;
  std::string name;
  std::unique_ptr<Actor> actor;
  std::mutex mu;
  std::deque<Envelope> mailbox;
  bool scheduled = false;
  bool stopped = false;
  int restarts = 0;
};

/// Configuration of an ActorSystem.
struct ActorSystemConfig {
  /// Dispatcher threads. <= 0 selects hardware_concurrency(). Ignored when
  /// `dispatcher` is set.
  int num_threads = 0;
  /// Execution substrate. Null selects a ThreadPoolDispatcher with
  /// `num_threads` workers; tests inject chk::DeterministicScheduler here
  /// to explore and replay message interleavings.
  std::shared_ptr<Dispatcher> dispatcher = nullptr;
  /// Messages processed per mailbox drain before yielding the thread
  /// (Akka's "throughput" fairness knob).
  int throughput = 64;
  /// Restarts allowed per actor before it is stopped for good.
  int max_restarts = 5;
  /// Registry the runtime reports its metrics into (null = process global).
  obs::MetricsRegistry* metrics = nullptr;
};

/// An asynchronous message-passing runtime in the style of Akka [8]: actors
/// with isolated state and per-actor FIFO mailboxes are multiplexed onto a
/// fixed dispatcher thread pool; communication is non-blocking `Tell` or
/// future-returning `Ask`. Dynamic spawn (including get-or-spawn keyed by
/// name, used for per-vessel actors), supervision with restart, delayed
/// delivery timers, and quiescence/shutdown control complete the subset of
/// the actor model the paper's architecture needs.
class ActorSystem {
 public:
  explicit ActorSystem(const ActorSystemConfig& config = {});
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  /// Creates an actor with a unique `name`. Fails with AlreadyExists if the
  /// name is taken, or FailedPrecondition after Shutdown.
  StatusOr<ActorRef> Spawn(std::string name, std::unique_ptr<Actor> actor);

  /// Convenience typed spawn.
  template <typename T, typename... Args>
  StatusOr<ActorRef> SpawnActor(std::string name, Args&&... args) {
    return Spawn(std::move(name),
                 std::make_unique<T>(std::forward<Args>(args)...));
  }

  /// Returns the actor named `name`, spawning it via `factory` on first use.
  /// This is the partitioning primitive: vessel/cell/collision actors are
  /// created on the first message routed to their key.
  StatusOr<ActorRef> GetOrSpawn(
      const std::string& name,
      const std::function<std::unique_ptr<Actor>()>& factory);

  /// Looks up a live actor by name.
  StatusOr<ActorRef> Find(const std::string& name) const;

  /// Asynchronously delivers `message` to `target`. Returns false when the
  /// target is stopped or the system is shutting down (message dropped).
  bool Tell(const ActorRef& target, std::any message,
            ActorId sender = kNoActor);

  /// Request/response: delivers `message` with a reply slot and returns the
  /// future reply. The receiving actor must call ctx.Reply().
  std::future<std::any> Ask(const ActorRef& target, std::any message,
                            ActorId sender = kNoActor);

  /// Delivers `message` to `target` after `delay` microseconds.
  void ScheduleTell(TimeMicros delay, const ActorRef& target,
                    std::any message, ActorId sender = kNoActor);

  /// Stops one actor: pending mailbox messages are dropped, OnStop runs.
  void Stop(const ActorRef& target);

  /// Blocks until every mailbox is empty and no message is being processed.
  /// (Messages sent by timers that have not fired yet are not waited for.)
  void AwaitQuiescence();

  /// Drains and joins everything. Idempotent; called by the destructor.
  void Shutdown();

  /// Number of live actors.
  size_t ActorCount() const;

  /// Messages delivered (processed) since construction.
  int64_t ProcessedCount() const {
    return processed_.load(std::memory_order_relaxed);
  }

  /// The registry this system reports into.
  obs::MetricsRegistry* metrics_registry() const { return metrics_.registry; }

 private:
  /// Cached handles into the metrics registry (resolved once at
  /// construction; updates are lock-free afterwards).
  struct Metrics {
    obs::MetricsRegistry* registry = nullptr;
    obs::Counter* messages_processed = nullptr;
    obs::Counter* messages_dropped = nullptr;
    obs::Counter* actors_spawned = nullptr;
    obs::Counter* actors_stopped = nullptr;
    obs::Counter* restarts = nullptr;
    obs::Gauge* live_actors = nullptr;
    obs::Gauge* mailbox_highwater = nullptr;
    obs::Gauge* dispatcher_queue_depth = nullptr;
  };

  struct TimerEntry {
    TimeMicros fire_at_wall;  // wall-clock micros
    ActorRef target;
    std::any message;
    ActorId sender;
    bool operator<(const TimerEntry& other) const {
      return fire_at_wall > other.fire_at_wall;  // min-heap
    }
  };

  bool Enqueue(const std::shared_ptr<ActorCell>& cell, Envelope envelope);
  void DecrementPending(int64_t n);
  void DrainMailbox(std::shared_ptr<ActorCell> cell);
  void HandleFailure(const std::shared_ptr<ActorCell>& cell,
                     const Status& failure);
  void StopCell(const std::shared_ptr<ActorCell>& cell);
  void TimerLoop();

  const ActorSystemConfig config_;
  Metrics metrics_;
  std::shared_ptr<Dispatcher> dispatcher_;

  mutable std::mutex registry_mu_;
  std::unordered_map<std::string, std::shared_ptr<ActorCell>> by_name_;
  std::unordered_map<ActorId, std::shared_ptr<ActorCell>> by_id_;
  /// Names a GetOrSpawn is currently constructing (claim registered under
  /// registry_mu_ before the factory runs, so concurrent callers for the
  /// same name wait on spawn_cv_ instead of double-constructing).
  std::unordered_set<std::string> spawning_;
  std::condition_variable spawn_cv_;
  std::atomic<ActorId> next_id_{1};
  bool shutting_down_ = false;

  std::atomic<int64_t> pending_{0};
  std::atomic<int64_t> processed_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerEntry> timers_;
  bool timer_stop_ = false;
  std::thread timer_thread_;
};

}  // namespace marlin

#endif  // MARLIN_ACTOR_ACTOR_SYSTEM_H_

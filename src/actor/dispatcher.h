#ifndef MARLIN_ACTOR_DISPATCHER_H_
#define MARLIN_ACTOR_DISPATCHER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>

#include "util/thread_pool.h"

namespace marlin {

/// The unit of scheduling the actor runtime hands to a dispatcher: one
/// mailbox drain (or timer-driven resubmission). `label` names the actor
/// whose mailbox the task drains so that schedule-recording dispatchers can
/// produce human-readable traces.
struct DispatchTask {
  std::function<void()> fn;
  std::string label;
};

/// The seam between the actor runtime and its execution substrate.
///
/// Production uses ThreadPoolDispatcher (below): tasks are multiplexed onto
/// a fixed worker pool and run concurrently. The checked build swaps in
/// chk::DeterministicScheduler, a single-threaded seed-driven dispatcher
/// that explores distinct task interleavings and can replay any schedule
/// from its recorded trace — the same seam a reproducible-schedule training
/// or inference runtime would hook.
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Enqueues a task. Returns false when the dispatcher no longer accepts
  /// work (shut down); the caller must roll back its bookkeeping.
  virtual bool Submit(DispatchTask task) = 0;

  /// Cooperative scheduling point. ActorSystem::AwaitQuiescence calls this
  /// before blocking: inline (cooperative) dispatchers drain their run
  /// queue here on the calling thread; threaded dispatchers do nothing
  /// because their workers make progress on their own.
  virtual void Quiesce() {}

  /// True when tasks only run inside Quiesce() on the caller's thread.
  /// The actor runtime polls instead of blocking on such dispatchers.
  virtual bool cooperative() const { return false; }

  /// Stops accepting tasks; runs or discards anything still queued.
  virtual void Shutdown() = 0;

  /// Tasks queued but not yet running (diagnostic gauge).
  virtual size_t QueueDepth() const = 0;
};

/// Production dispatcher: a fixed-size worker pool with a FIFO task queue.
class ThreadPoolDispatcher : public Dispatcher {
 public:
  explicit ThreadPoolDispatcher(int num_threads) : pool_(num_threads) {}

  bool Submit(DispatchTask task) override {
    return pool_.Submit(std::move(task.fn));
  }
  void Shutdown() override { pool_.Shutdown(); }
  size_t QueueDepth() const override { return pool_.QueueDepth(); }

  int num_threads() const { return pool_.num_threads(); }

 private:
  ThreadPool pool_;
};

}  // namespace marlin

#endif  // MARLIN_ACTOR_DISPATCHER_H_

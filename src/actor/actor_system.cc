#include "actor/actor_system.h"

#include <algorithm>
#include <utility>

#include "chk/chk.h"
#include "fault/fault_injector.h"
#include "util/logging.h"

namespace marlin {
namespace {

TimeMicros WallNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Ownership-checker keys must be unique across every ActorSystem in the
/// process (per-system actor ids all start at 1), so they come from one
/// process-wide counter.
uint64_t NextChkKey() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void ActorContext::AssertExclusive(const char* what) const {
#if defined(MARLIN_CHECKED) && MARLIN_CHECKED
  chk::ThreadOwnership::AssertOwned(chk_key_, what);
#else
  (void)what;
#endif
}

ActorSystem::ActorSystem(const ActorSystemConfig& config)
    : config_(config),
      dispatcher_(config.dispatcher
                      ? config.dispatcher
                      : std::make_shared<ThreadPoolDispatcher>(
                            config.num_threads > 0
                                ? config.num_threads
                                : static_cast<int>(std::max(
                                      2u,
                                      std::thread::hardware_concurrency())))) {
  obs::MetricsRegistry* registry = obs::MetricsRegistry::OrGlobal(config.metrics);
  metrics_.registry = registry;
  metrics_.messages_processed = registry->GetCounter(
      "marlin_actor_messages_processed_total",
      "Messages delivered to actors and processed");
  metrics_.messages_dropped = registry->GetCounter(
      "marlin_actor_messages_dropped_total",
      "Messages dropped (stopped target or shutdown)");
  metrics_.actors_spawned = registry->GetCounter(
      "marlin_actor_spawned_total", "Actors spawned");
  metrics_.actors_stopped = registry->GetCounter(
      "marlin_actor_stopped_total", "Actors stopped");
  metrics_.restarts = registry->GetCounter(
      "marlin_actor_restarts_total", "Actor supervision restarts");
  metrics_.live_actors = registry->GetGauge(
      "marlin_actor_live", "Actors currently registered");
  metrics_.mailbox_highwater = registry->GetGauge(
      "marlin_actor_mailbox_highwater",
      "Deepest mailbox observed at enqueue time");
  metrics_.dispatcher_queue_depth = registry->GetGauge(
      "marlin_dispatcher_queue_depth",
      "Dispatcher pool queue depth sampled at scheduling points");
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

ActorSystem::~ActorSystem() { Shutdown(); }

StatusOr<ActorRef> ActorSystem::Spawn(std::string name,
                                      std::unique_ptr<Actor> actor) {
  std::shared_ptr<ActorCell> cell;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (shutting_down_) {
      return Status::FailedPrecondition("actor system is shutting down");
    }
    if (by_name_.count(name) > 0) {
      return Status::AlreadyExists("actor '" + name + "' already exists");
    }
    cell = std::make_shared<ActorCell>();
    cell->id = next_id_.fetch_add(1, std::memory_order_relaxed);
    cell->chk_key = NextChkKey();
    cell->name = name;
    cell->actor = std::move(actor);
    // Born "scheduled": the cell is visible in the registry from here on,
    // so concurrent senders can already enqueue — but no mailbox drain may
    // start until OnStart has finished on this thread.
    cell->scheduled = true;
    by_name_.emplace(name, cell);
    by_id_.emplace(cell->id, cell);
  }
  metrics_.actors_spawned->Increment();
  metrics_.live_actors->Add(1);
  ActorRef ref(cell->id, std::move(name), cell);
  Envelope start_env;
  ActorContext ctx(this, cell->id, &start_env, cell->chk_key);
  {
    MARLIN_CHK_OWNERSHIP_SCOPE(cell->chk_key);
    cell->actor->OnStart(ctx);
  }
  // Release the birth claim: drain anything that arrived during OnStart.
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(cell->mu);
    if (cell->mailbox.empty() || cell->stopped) {
      cell->scheduled = false;
    } else {
      drain = true;
    }
  }
  if (drain && !dispatcher_->Submit(DispatchTask{
                   [this, cell] { DrainMailbox(cell); }, cell->name})) {
    size_t dropped;
    {
      std::lock_guard<std::mutex> lock(cell->mu);
      dropped = cell->mailbox.size();
      cell->mailbox.clear();
      cell->scheduled = false;
    }
    DecrementPending(static_cast<int64_t>(dropped));
    metrics_.messages_dropped->Increment(dropped);
  }
  return ref;
}

StatusOr<ActorRef> ActorSystem::GetOrSpawn(
    const std::string& name,
    const std::function<std::unique_ptr<Actor>()>& factory) {
  // Claim the name before running the factory so concurrent callers for the
  // same key construct the actor exactly once: losers wait for the winner's
  // spawn to finish instead of building a throwaway instance. The factory
  // and Spawn run outside registry_mu_, so an OnStart that itself calls
  // GetOrSpawn (for a different name) cannot deadlock.
  {
    std::unique_lock<std::mutex> lock(registry_mu_);
    for (;;) {
      auto it = by_name_.find(name);
      if (it != by_name_.end()) {
        return ActorRef(it->second->id, name, it->second);
      }
      if (shutting_down_) {
        return Status::FailedPrecondition("actor system is shutting down");
      }
      if (spawning_.insert(name).second) break;  // we own the spawn
      spawn_cv_.wait(lock);
    }
  }
  StatusOr<ActorRef> spawned = Spawn(name, factory());
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    spawning_.erase(name);
  }
  spawn_cv_.notify_all();
  if (!spawned.ok() &&
      spawned.status().code() == StatusCode::kAlreadyExists) {
    // A direct Spawn (not holding a claim) slipped in; return the winner.
    return Find(name);
  }
  return spawned;
}

StatusOr<ActorRef> ActorSystem::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("actor '" + name + "' not found");
  }
  return ActorRef(it->second->id, name, it->second);
}

bool ActorSystem::Tell(const ActorRef& target, std::any message,
                       ActorId sender) {
  std::shared_ptr<ActorCell> cell = target.cell_.lock();
  if (cell == nullptr) {
    if (target.remote_ != nullptr) {
      // Remote ref: hand the payload to the cluster layer's routing hook.
      // Remote delivery is the one lossy Tell path (the hook serialises
      // onto a transport), so it carries an injection point; local mailbox
      // delivery below stays reliable by contract.
      if (MARLIN_FAULT_POINT("actor.remote_tell") !=
          fault::FaultAction::kNone) {
        return false;
      }
      return (*target.remote_)(std::move(message));
    }
    return false;
  }
  Envelope env;
  env.payload = std::move(message);
  env.sender = sender;
  return Enqueue(cell, std::move(env));
}

std::future<std::any> ActorSystem::Ask(const ActorRef& target,
                                       std::any message, ActorId sender) {
  auto promise = std::make_shared<std::promise<std::any>>();
  std::future<std::any> future = promise->get_future();
  std::shared_ptr<ActorCell> cell = target.cell_.lock();
  if (cell == nullptr) {
    promise->set_value(std::any());  // broken target: empty reply
    return future;
  }
  Envelope env;
  env.payload = std::move(message);
  env.sender = sender;
  env.reply = promise;
  if (!Enqueue(cell, std::move(env))) {
    promise->set_value(std::any());
  }
  return future;
}

void ActorSystem::ScheduleTell(TimeMicros delay, const ActorRef& target,
                               std::any message, ActorId sender) {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (timer_stop_) return;
    timers_.push(TimerEntry{WallNowMicros() + std::max<TimeMicros>(0, delay),
                            target, std::move(message), sender});
  }
  timer_cv_.notify_one();
}

void ActorSystem::Stop(const ActorRef& target) {
  std::shared_ptr<ActorCell> cell = target.cell_.lock();
  if (cell != nullptr) StopCell(cell);
}

void ActorSystem::AwaitQuiescence() {
  if (dispatcher_->cooperative()) {
    // Cooperative dispatchers (chk::DeterministicScheduler) only run tasks
    // inside Quiesce() on this thread; poll for stragglers racing in from
    // the timer thread between a pending_ increment and its Submit.
    while (pending_.load(std::memory_order_acquire) != 0) {
      dispatcher_->Quiesce();
      if (pending_.load(std::memory_order_acquire) != 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    return;
  }
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ActorSystem::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  // Stop the timer first so no new sends originate from it.
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  AwaitQuiescence();
  dispatcher_->Shutdown();
  std::vector<std::shared_ptr<ActorCell>> cells;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    cells.reserve(by_id_.size());
    for (auto& [id, cell] : by_id_) cells.push_back(cell);
  }
  for (auto& cell : cells) {
    std::lock_guard<std::mutex> lock(cell->mu);
    if (!cell->stopped) {
      cell->stopped = true;
      MARLIN_CHK_OWNERSHIP_SCOPE(cell->chk_key);
      cell->actor->OnStop();
      metrics_.actors_stopped->Increment();
      metrics_.live_actors->Sub(1);
    }
  }
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    by_name_.clear();
    by_id_.clear();
  }
}

size_t ActorSystem::ActorCount() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return by_id_.size();
}

bool ActorSystem::Enqueue(const std::shared_ptr<ActorCell>& cell,
                          Envelope envelope) {
  // Count the message in-flight *before* it becomes visible to the
  // dispatcher, so AwaitQuiescence never observes a transient zero while a
  // message is queued or being processed.
  pending_.fetch_add(1, std::memory_order_acq_rel);
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(cell->mu);
    if (cell->stopped) {
      DecrementPending(1);
      metrics_.messages_dropped->Increment();
      return false;
    }
    cell->mailbox.push_back(std::move(envelope));
    metrics_.mailbox_highwater->UpdateMax(
        static_cast<int64_t>(cell->mailbox.size()));
    if (!cell->scheduled) {
      cell->scheduled = true;
      schedule = true;
    }
  }
  if (schedule) {
    metrics_.dispatcher_queue_depth->Set(
        static_cast<int64_t>(dispatcher_->QueueDepth()));
    if (!dispatcher_->Submit(
            DispatchTask{[this, cell] { DrainMailbox(cell); }, cell->name})) {
      // Pool already shut down; roll back so quiescence does not hang.
      size_t dropped;
      {
        std::lock_guard<std::mutex> lock(cell->mu);
        dropped = cell->mailbox.size();
        cell->mailbox.clear();
        cell->scheduled = false;
      }
      DecrementPending(static_cast<int64_t>(dropped));
      metrics_.messages_dropped->Increment(dropped);
      return false;
    }
  }
  return true;
}

void ActorSystem::DecrementPending(int64_t n) {
  if (n <= 0) return;
  if (pending_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    std::lock_guard<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

void ActorSystem::DrainMailbox(std::shared_ptr<ActorCell> cell) {
  int processed_here = 0;
  for (;;) {
    Envelope env;
    {
      std::lock_guard<std::mutex> lock(cell->mu);
      if (cell->mailbox.empty() || cell->stopped) {
        cell->scheduled = false;
        return;
      }
      if (processed_here >= config_.throughput) {
        // Yield the thread; reschedule for fairness.
        if (!dispatcher_->Submit(DispatchTask{
                [this, cell] { DrainMailbox(cell); }, cell->name})) {
          cell->scheduled = false;
        }
        return;
      }
      env = std::move(cell->mailbox.front());
      cell->mailbox.pop_front();
    }
    ActorContext ctx(this, cell->id, &env, cell->chk_key);
    Status status;
    {
      MARLIN_CHK_OWNERSHIP_SCOPE(cell->chk_key);
      status = cell->actor->Receive(env.payload, ctx);
      // Handle the failure before releasing the pending count so that
      // AwaitQuiescence observes completed supervision, not just delivery;
      // supervision (OnRestart/OnStop) runs inside the ownership scope.
      if (!status.ok()) HandleFailure(cell, status);
    }
    ++processed_here;
    processed_.fetch_add(1, std::memory_order_relaxed);
    metrics_.messages_processed->Increment();
    if (!status.ok()) {
      DecrementPending(1);
      std::lock_guard<std::mutex> lock(cell->mu);
      if (cell->stopped) {
        cell->scheduled = false;
        return;
      }
    } else {
      DecrementPending(1);
    }
  }
}

void ActorSystem::HandleFailure(const std::shared_ptr<ActorCell>& cell,
                                const Status& failure) {
  int restarts;
  {
    std::lock_guard<std::mutex> lock(cell->mu);
    restarts = ++cell->restarts;
  }
  metrics_.restarts->Increment();
  if (restarts > config_.max_restarts) {
    MARLIN_LOG(WARNING) << "actor '" << cell->name << "' exceeded "
                        << config_.max_restarts
                        << " restarts; stopping (last failure: "
                        << failure.ToString() << ")";
    StopCell(cell);
    return;
  }
  MARLIN_LOG(WARNING) << "actor '" << cell->name
                      << "' failed: " << failure.ToString() << " (restart "
                      << restarts << "/" << config_.max_restarts << ")";
  MARLIN_CHK_OWNERSHIP_SCOPE(cell->chk_key);
  cell->actor->OnRestart(failure);
}

void ActorSystem::StopCell(const std::shared_ptr<ActorCell>& cell) {
  size_t dropped;
  {
    std::lock_guard<std::mutex> lock(cell->mu);
    if (cell->stopped) return;
    cell->stopped = true;
    dropped = cell->mailbox.size();
    cell->mailbox.clear();
    MARLIN_CHK_OWNERSHIP_SCOPE(cell->chk_key);
    cell->actor->OnStop();
  }
  DecrementPending(static_cast<int64_t>(dropped));
  if (dropped > 0) metrics_.messages_dropped->Increment(dropped);
  metrics_.actors_stopped->Increment();
  metrics_.live_actors->Sub(1);
  std::lock_guard<std::mutex> lock(registry_mu_);
  by_name_.erase(cell->name);
  by_id_.erase(cell->id);
}

void ActorSystem::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  for (;;) {
    if (timer_stop_) return;
    if (timers_.empty()) {
      timer_cv_.wait(lock,
                     [this] { return timer_stop_ || !timers_.empty(); });
      continue;
    }
    const TimeMicros now = WallNowMicros();
    const TimerEntry& next = timers_.top();
    if (next.fire_at_wall > now) {
      timer_cv_.wait_for(
          lock, std::chrono::microseconds(next.fire_at_wall - now));
      continue;
    }
    TimerEntry entry = timers_.top();
    timers_.pop();
    lock.unlock();
    Tell(entry.target, std::move(entry.message), entry.sender);
    lock.lock();
  }
}

}  // namespace marlin

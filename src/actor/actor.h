#ifndef MARLIN_ACTOR_ACTOR_H_
#define MARLIN_ACTOR_ACTOR_H_

#include <any>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>

#include "util/status.h"

namespace marlin {

class Actor;
class ActorSystem;
struct ActorCell;

/// Unique actor identity within one ActorSystem.
using ActorId = uint64_t;

constexpr ActorId kNoActor = 0;

/// A message in flight: a type-erased payload plus the sender's identity and
/// an optional reply slot (set by Ask).
struct Envelope {
  std::any payload;
  ActorId sender = kNoActor;
  std::shared_ptr<std::promise<std::any>> reply;
};

/// Lightweight handle to an actor. Copyable; holds the target alive through
/// the cell registry (messages to stopped actors are dropped).
///
/// A ref may also point at a *remote* actor hosted by another cluster node:
/// it then carries no cell but a delivery function that routes the payload
/// over the wire (cluster::ShardRegion installs one that re-resolves the
/// owner on every send, so the ref stays correct across shard handoffs).
/// Remote refs accept only std::string payloads and do not support Ask.
class ActorRef {
 public:
  /// Serialises and forwards one payload toward the remote actor. Returns
  /// false when the payload is not a std::string or the transport refused.
  using RemoteDeliverFn = std::function<bool(std::any)>;

  ActorRef() = default;

  bool valid() const { return remote_ != nullptr || !cell_.expired(); }
  bool is_remote() const { return remote_ != nullptr; }
  ActorId id() const { return id_; }
  const std::string& name() const { return name_; }

  bool operator==(const ActorRef& other) const {
    return is_remote() || other.is_remote() ? name_ == other.name_
                                            : id_ == other.id_;
  }

  /// Builds a remote ref (cluster layer only; local refs come from Spawn).
  static ActorRef Remote(std::string name,
                         std::shared_ptr<RemoteDeliverFn> deliver) {
    ActorRef ref;
    ref.name_ = std::move(name);
    ref.remote_ = std::move(deliver);
    return ref;
  }

 private:
  friend class ActorSystem;
  ActorRef(ActorId id, std::string name, std::weak_ptr<ActorCell> cell)
      : id_(id), name_(std::move(name)), cell_(std::move(cell)) {}

  ActorId id_ = kNoActor;
  std::string name_;
  std::weak_ptr<ActorCell> cell_;
  std::shared_ptr<RemoteDeliverFn> remote_;
};

/// Per-delivery context handed to Actor::Receive: identifies the sender,
/// allows replying to an Ask, and gives access to the system for spawning
/// and messaging other actors.
class ActorContext {
 public:
  ActorContext(ActorSystem* system, ActorId self, Envelope* envelope,
               uint64_t chk_key = 0)
      : system_(system), self_(self), envelope_(envelope),
        chk_key_(chk_key) {}

  ActorSystem& system() const { return *system_; }
  ActorId self() const { return self_; }
  ActorId sender() const { return envelope_->sender; }

  /// Fulfils the reply slot of an Ask. No-op for plain Tells.
  void Reply(std::any value) const {
    if (envelope_->reply) envelope_->reply->set_value(std::move(value));
  }

  bool IsAsk() const { return envelope_->reply != nullptr; }

  /// Checked builds: asserts the calling thread is the one currently
  /// draining this actor's mailbox — i.e. that actor state accessed here
  /// honours the isolation guarantee. No-op in release builds.
  void AssertExclusive(const char* what = "actor state") const;

 private:
  ActorSystem* system_;
  ActorId self_;
  Envelope* envelope_;
  uint64_t chk_key_;  // ownership-checker key (see ActorCell::chk_key)
};

/// Base class for all actors. Exactly one message is processed at a time per
/// actor (the runtime never runs Receive concurrently for the same actor),
/// so actor state needs no synchronisation — the isolation property the
/// paper's architecture relies on.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Handles one message. Returning a non-OK status signals a failure to the
  /// supervisor, which restarts the actor (OnRestart) up to a restart limit
  /// and then stops it.
  virtual Status Receive(const std::any& message, ActorContext& ctx) = 0;

  /// Called after spawn, before the first message.
  virtual void OnStart(ActorContext& ctx) { (void)ctx; }

  /// Called by the supervisor on failure, before resuming message
  /// processing. Implementations should reset volatile state.
  virtual void OnRestart(const Status& failure) { (void)failure; }

  /// Called when the actor is stopped (system shutdown or restart limit).
  virtual void OnStop() {}
};

}  // namespace marlin

#endif  // MARLIN_ACTOR_ACTOR_H_

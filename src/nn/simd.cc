#include "nn/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

namespace marlin {
namespace simd {
namespace {

bool DetectCpu() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    if (!CompiledIn() || !DetectCpu()) return false;
    const char* disable = std::getenv("MARLIN_SIMD_DISABLE");
    return disable == nullptr || disable[0] == '\0' || disable[0] == '0';
  }();
  return enabled;
}

}  // namespace

bool CompiledIn() {
#ifdef MARLIN_SIMD
  return true;
#else
  return false;
#endif
}

bool CpuSupported() {
  static const bool supported = DetectCpu();
  return supported;
}

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabledForTesting(bool enabled) {
  EnabledFlag().store(enabled && CompiledIn() && CpuSupported(),
                      std::memory_order_relaxed);
}

const char* ActiveIsa() { return Enabled() ? "avx2-fma" : "scalar"; }

}  // namespace simd

namespace nnkernels {

void LstmGatesScalar(const double* pre, const double* c_prev, double* gates,
                     double* c, double* h, double* tanh_c, int hidden,
                     int batch) {
  const int H = hidden, B = batch;
  for (int j = 0; j < H; ++j) {
    const double* pre_i = pre + static_cast<size_t>(j) * B;
    const double* pre_f = pre + static_cast<size_t>(H + j) * B;
    const double* pre_g = pre + static_cast<size_t>(2 * H + j) * B;
    const double* pre_o = pre + static_cast<size_t>(3 * H + j) * B;
    double* g_i = gates + static_cast<size_t>(j) * B;
    double* g_f = gates + static_cast<size_t>(H + j) * B;
    double* g_g = gates + static_cast<size_t>(2 * H + j) * B;
    double* g_o = gates + static_cast<size_t>(3 * H + j) * B;
    const double* cp = c_prev + static_cast<size_t>(j) * B;
    double* cr = c + static_cast<size_t>(j) * B;
    double* hr = h + static_cast<size_t>(j) * B;
    double* tr = tanh_c + static_cast<size_t>(j) * B;
    for (int b = 0; b < B; ++b) {
      const double i_g = 1.0 / (1.0 + std::exp(-pre_i[b]));
      const double f_g = 1.0 / (1.0 + std::exp(-pre_f[b]));
      const double g_gt = std::tanh(pre_g[b]);
      const double o_g = 1.0 / (1.0 + std::exp(-pre_o[b]));
      g_i[b] = i_g;
      g_f[b] = f_g;
      g_g[b] = g_gt;
      g_o[b] = o_g;
      const double c_new = f_g * cp[b] + i_g * g_gt;
      cr[b] = c_new;
      const double tc = std::tanh(c_new);
      tr[b] = tc;
      hr[b] = o_g * tc;
    }
  }
}

void LstmGates(const double* pre, const double* c_prev, double* gates,
               double* c, double* h, double* tanh_c, int hidden, int batch) {
#ifdef MARLIN_SIMD
  if (simd::Enabled()) {
    simd::LstmGatesAvx2(pre, c_prev, gates, c, h, tanh_c, hidden, batch);
    return;
  }
#endif
  LstmGatesScalar(pre, c_prev, gates, c, h, tanh_c, hidden, batch);
}

void TanhInPlace(double* x, size_t n) {
#ifdef MARLIN_SIMD
  if (simd::Enabled()) {
    simd::TanhInPlaceAvx2(x, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

}  // namespace nnkernels
}  // namespace marlin

// AVX2/FMA kernels for the NN hot paths. Compiled only under
// -DMARLIN_SIMD=ON, with -mavx2 -mfma -ffp-contract=off: contraction stays
// off so the mul+add sequences in MatMulAvx2 / MatMulTransposeAAvx2 are NOT
// fused into FMAs — those two kernels promise bitwise identity with the
// scalar path (same per-element accumulation order, same rounding per
// step). FMA is used only where the numerical contract is a documented
// tolerance (dot products in MatMulTransposeBAvx2, the vector exp).

#include "nn/simd.h"

#ifdef MARLIN_SIMD

#include <immintrin.h>

#include <cstring>

namespace marlin {
namespace simd {
namespace {

/// Cephes-style vector exp: rational approximation after range reduction
/// x = n*ln2 + r. Relative error ~1-2 ulp over the clamped input range;
/// inputs are clamped to ±708 (exp saturates to ~3e307 / ~3e-308 instead of
/// inf / 0, which is inside every caller's tolerance).
inline __m256d ExpPd(__m256d x) {
  const __m256d kMax = _mm256_set1_pd(708.0);
  const __m256d kMin = _mm256_set1_pd(-708.0);
  x = _mm256_min_pd(kMax, _mm256_max_pd(kMin, x));

  const __m256d kLog2e = _mm256_set1_pd(1.4426950408889634073599);
  __m256d px = _mm256_floor_pd(
      _mm256_fmadd_pd(x, kLog2e, _mm256_set1_pd(0.5)));
  const __m128i n32 = _mm256_cvttpd_epi32(px);  // px is integral

  const __m256d kC1 = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d kC2 = _mm256_set1_pd(1.42860682030941723212e-6);
  x = _mm256_fnmadd_pd(px, kC1, x);
  x = _mm256_fnmadd_pd(px, kC2, x);

  const __m256d xx = _mm256_mul_pd(x, x);
  __m256d p = _mm256_set1_pd(1.26177193074810590878e-4);
  p = _mm256_fmadd_pd(p, xx, _mm256_set1_pd(3.02994407707441961300e-2));
  p = _mm256_fmadd_pd(p, xx, _mm256_set1_pd(9.99999999999999999910e-1));
  p = _mm256_mul_pd(p, x);

  __m256d q = _mm256_set1_pd(3.00198505138664455042e-6);
  q = _mm256_fmadd_pd(q, xx, _mm256_set1_pd(2.52448340349684104192e-3));
  q = _mm256_fmadd_pd(q, xx, _mm256_set1_pd(2.27265548208155028766e-1));
  q = _mm256_fmadd_pd(q, xx, _mm256_set1_pd(2.00000000000000000005e0));

  const __m256d e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
  const __m256d r =
      _mm256_fmadd_pd(e, _mm256_set1_pd(2.0), _mm256_set1_pd(1.0));

  // ldexp(r, n): build 2^n from exponent bits. |n| <= 1022 after clamping.
  __m256i n64 = _mm256_cvtepi32_epi64(n32);
  n64 = _mm256_add_epi64(n64, _mm256_set1_epi64x(1023));
  n64 = _mm256_slli_epi64(n64, 52);
  return _mm256_mul_pd(r, _mm256_castsi256_pd(n64));
}

inline __m256d SigmoidPd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d e = ExpPd(_mm256_sub_pd(_mm256_setzero_pd(), x));
  return _mm256_div_pd(one, _mm256_add_pd(one, e));
}

inline __m256d TanhPd(__m256d x) {
  // tanh(x) = (exp(2x) - 1) / (exp(2x) + 1); saturates correctly at the
  // exp clamp and stays within the documented tolerance near zero.
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d e2x = ExpPd(_mm256_add_pd(x, x));
  return _mm256_div_pd(_mm256_sub_pd(e2x, one), _mm256_add_pd(e2x, one));
}

inline double HorizontalSum(__m256d v) {
  // (v0+v2) + (v1+v3): fixed reduction order, documented as differing from
  // the scalar left-to-right sum by reassociation.
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
}

}  // namespace

void MatMulAvx2(const double* a, const double* b, double* out, int m, int k,
                int n) {
  // j-tiled i-k-j: each out element accumulates over k in the scalar order,
  // so results are bitwise identical to the scalar kernel.
  for (int i = 0; i < m; ++i) {
    const double* arow = a + static_cast<size_t>(i) * k;
    double* orow = out + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d acc0 = _mm256_loadu_pd(orow + j);
      __m256d acc1 = _mm256_loadu_pd(orow + j + 4);
      for (int kk = 0; kk < k; ++kk) {
        const double av = arow[kk];
        if (av == 0.0) continue;
        const __m256d vav = _mm256_set1_pd(av);
        const double* brow = b + static_cast<size_t>(kk) * n;
        acc0 = _mm256_add_pd(acc0,
                             _mm256_mul_pd(vav, _mm256_loadu_pd(brow + j)));
        acc1 = _mm256_add_pd(
            acc1, _mm256_mul_pd(vav, _mm256_loadu_pd(brow + j + 4)));
      }
      _mm256_storeu_pd(orow + j, acc0);
      _mm256_storeu_pd(orow + j + 4, acc1);
    }
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_loadu_pd(orow + j);
      for (int kk = 0; kk < k; ++kk) {
        const double av = arow[kk];
        if (av == 0.0) continue;
        const double* brow = b + static_cast<size_t>(kk) * n;
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(_mm256_set1_pd(av), _mm256_loadu_pd(brow + j)));
      }
      _mm256_storeu_pd(orow + j, acc);
    }
    for (; j < n; ++j) {
      double acc = orow[j];
      for (int kk = 0; kk < k; ++kk) {
        const double av = arow[kk];
        if (av == 0.0) continue;
        acc += av * b[static_cast<size_t>(kk) * n + j];
      }
      orow[j] = acc;
    }
  }
}

void MatMulTransposeAAvx2(const double* a, const double* b, double* out,
                          int m, int k, int n) {
  // out(i,j) += sum_kk a(kk,i) * b(kk,j), k ascending per element — bitwise
  // identical to the scalar kernel.
  for (int i = 0; i < m; ++i) {
    double* orow = out + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_loadu_pd(orow + j);
      for (int kk = 0; kk < k; ++kk) {
        const double av = a[static_cast<size_t>(kk) * m + i];
        if (av == 0.0) continue;
        const double* brow = b + static_cast<size_t>(kk) * n;
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(_mm256_set1_pd(av), _mm256_loadu_pd(brow + j)));
      }
      _mm256_storeu_pd(orow + j, acc);
    }
    for (; j < n; ++j) {
      double acc = orow[j];
      for (int kk = 0; kk < k; ++kk) {
        const double av = a[static_cast<size_t>(kk) * m + i];
        if (av == 0.0) continue;
        acc += av * b[static_cast<size_t>(kk) * n + j];
      }
      orow[j] = acc;
    }
  }
}

void MatMulTransposeBAvx2(const double* a, const double* b, double* out,
                          int m, int k, int n) {
  // Dot products over k with a 4-wide FMA accumulator + horizontal sum:
  // differs from the scalar sum by reassociation (documented tolerance).
  for (int i = 0; i < m; ++i) {
    const double* arow = a + static_cast<size_t>(i) * k;
    double* orow = out + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const double* brow = b + static_cast<size_t>(j) * k;
      __m256d acc = _mm256_setzero_pd();
      int kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(arow + kk),
                              _mm256_loadu_pd(brow + kk), acc);
      }
      double sum = HorizontalSum(acc);
      for (; kk < k; ++kk) sum += arow[kk] * brow[kk];
      orow[j] = sum;
    }
  }
}

namespace {

/// Applies the fused gate update to 4 batch lanes starting at column b of
/// row j (pointers pre-offset to the row starts).
inline void GateLanes(const double* pre_i, const double* pre_f,
                      const double* pre_g, const double* pre_o,
                      const double* cp, double* g_i, double* g_f, double* g_g,
                      double* g_o, double* cr, double* hr, double* tr) {
  const __m256d i_g = SigmoidPd(_mm256_loadu_pd(pre_i));
  const __m256d f_g = SigmoidPd(_mm256_loadu_pd(pre_f));
  const __m256d g_gt = TanhPd(_mm256_loadu_pd(pre_g));
  const __m256d o_g = SigmoidPd(_mm256_loadu_pd(pre_o));
  _mm256_storeu_pd(g_i, i_g);
  _mm256_storeu_pd(g_f, f_g);
  _mm256_storeu_pd(g_g, g_gt);
  _mm256_storeu_pd(g_o, o_g);
  const __m256d c_new = _mm256_add_pd(_mm256_mul_pd(f_g, _mm256_loadu_pd(cp)),
                                      _mm256_mul_pd(i_g, g_gt));
  _mm256_storeu_pd(cr, c_new);
  const __m256d tc = TanhPd(c_new);
  _mm256_storeu_pd(tr, tc);
  _mm256_storeu_pd(hr, _mm256_mul_pd(o_g, tc));
}

}  // namespace

void LstmGatesAvx2(const double* pre, const double* c_prev, double* gates,
                   double* c, double* h, double* tanh_c, int hidden,
                   int batch) {
  const int H = hidden, B = batch;
  for (int j = 0; j < H; ++j) {
    const double* pre_i = pre + static_cast<size_t>(j) * B;
    const double* pre_f = pre + static_cast<size_t>(H + j) * B;
    const double* pre_g = pre + static_cast<size_t>(2 * H + j) * B;
    const double* pre_o = pre + static_cast<size_t>(3 * H + j) * B;
    double* g_i = gates + static_cast<size_t>(j) * B;
    double* g_f = gates + static_cast<size_t>(H + j) * B;
    double* g_g = gates + static_cast<size_t>(2 * H + j) * B;
    double* g_o = gates + static_cast<size_t>(3 * H + j) * B;
    const double* cp = c_prev + static_cast<size_t>(j) * B;
    double* cr = c + static_cast<size_t>(j) * B;
    double* hr = h + static_cast<size_t>(j) * B;
    double* tr = tanh_c + static_cast<size_t>(j) * B;
    int b = 0;
    for (; b + 4 <= B; b += 4) {
      GateLanes(pre_i + b, pre_f + b, pre_g + b, pre_o + b, cp + b, g_i + b,
                g_f + b, g_g + b, g_o + b, cr + b, hr + b, tr + b);
    }
    if (b < B) {
      // Ragged tail: run the same vector kernel on a zero-padded stage so
      // every batch column sees identical arithmetic regardless of its
      // position — PredictBatch results are batch-size invariant.
      const int rem = B - b;
      double sp_i[4] = {0}, sp_f[4] = {0}, sp_g[4] = {0}, sp_o[4] = {0};
      double scp[4] = {0}, sgi[4], sgf[4], sgg[4], sgo[4], scr[4], shr[4],
             str[4];
      std::memcpy(sp_i, pre_i + b, rem * sizeof(double));
      std::memcpy(sp_f, pre_f + b, rem * sizeof(double));
      std::memcpy(sp_g, pre_g + b, rem * sizeof(double));
      std::memcpy(sp_o, pre_o + b, rem * sizeof(double));
      std::memcpy(scp, cp + b, rem * sizeof(double));
      GateLanes(sp_i, sp_f, sp_g, sp_o, scp, sgi, sgf, sgg, sgo, scr, shr,
                str);
      std::memcpy(g_i + b, sgi, rem * sizeof(double));
      std::memcpy(g_f + b, sgf, rem * sizeof(double));
      std::memcpy(g_g + b, sgg, rem * sizeof(double));
      std::memcpy(g_o + b, sgo, rem * sizeof(double));
      std::memcpy(cr + b, scr, rem * sizeof(double));
      std::memcpy(hr + b, shr, rem * sizeof(double));
      std::memcpy(tr + b, str, rem * sizeof(double));
    }
  }
}

void TanhInPlaceAvx2(double* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, TanhPd(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    double stage[4] = {0};
    std::memcpy(stage, x + i, (n - i) * sizeof(double));
    __m256d v = TanhPd(_mm256_loadu_pd(stage));
    _mm256_storeu_pd(stage, v);
    std::memcpy(x + i, stage, (n - i) * sizeof(double));
  }
}

}  // namespace simd
}  // namespace marlin

#endif  // MARLIN_SIMD

#ifndef MARLIN_NN_MATRIX_H_
#define MARLIN_NN_MATRIX_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <vector>

#include "util/rng.h"

namespace marlin {

/// Dense row-major matrix of doubles — the numeric workhorse of the neural
/// network substrate. Sized for small recurrent models (tens of thousands of
/// parameters); no BLAS dependency by design.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

  /// Sets every element to zero.
  void Zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  /// Fills with N(0, stddev) values.
  void FillNormal(Rng* rng, double stddev) {
    for (double& v : data_) v = rng->Normal(0.0, stddev);
  }

  /// Xavier/Glorot uniform initialisation for a weight matrix of shape
  /// (fan_out, fan_in).
  void FillXavier(Rng* rng) {
    const double limit = std::sqrt(6.0 / (rows_ + cols_));
    for (double& v : data_) v = rng->Uniform(-limit, limit);
  }

  /// In-place element-wise transform.
  void Apply(const std::function<double(double)>& fn) {
    for (double& v : data_) v = fn(v);
  }

  /// this += other (shapes must match).
  void AddInPlace(const Matrix& other) {
    assert(SameShape(other));
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  }

  /// this *= scalar.
  void Scale(double s) {
    for (double& v : data_) v *= s;
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sum of squares of all elements.
  double SquaredNorm() const {
    double sum = 0.0;
    for (double v : data_) sum += v * v;
    return sum;
  }

  /// Sum of absolute values (L1 norm of the flattened matrix).
  double L1Norm() const {
    double sum = 0.0;
    for (double v : data_) sum += std::abs(v);
    return sum;
  }

 private:
  int rows_, cols_;
  std::vector<double> data_;
};

/// out = a * b. Shapes: (m,k) x (k,n) -> (m,n). `out` is resized.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b. Shapes: (k,m) x (k,n) -> (m,n).
void MatMulTransposeA(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T. Shapes: (m,k) x (n,k) -> (m,n).
void MatMulTransposeB(const Matrix& a, const Matrix& b, Matrix* out);

/// out(r,c) = a(r,c) + bias(r,0): adds a column vector to every column.
void AddColumnBroadcast(const Matrix& a, const Matrix& bias, Matrix* out);

/// Element-wise product, out = a ∘ b.
void Hadamard(const Matrix& a, const Matrix& b, Matrix* out);

/// Vertical concatenation: out = [top; bottom] (same cols).
void ConcatRows(const Matrix& top, const Matrix& bottom, Matrix* out);

/// Splits `m` vertically at row `split`: top gets rows [0, split), bottom
/// the rest.
void SplitRows(const Matrix& m, int split, Matrix* top, Matrix* bottom);

}  // namespace marlin

#endif  // MARLIN_NN_MATRIX_H_

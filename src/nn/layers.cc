#include "nn/layers.h"

#include <cassert>
#include <utility>

#include "nn/simd.h"

namespace marlin {

// ------------------------------------------------------------------ Dense

Dense::Dense(std::string name, int in_dim, int out_dim, Activation activation,
             Rng* rng)
    : activation_(activation),
      weight_(name + ".W", out_dim, in_dim, /*l1=*/false),
      bias_(name + ".b", out_dim, 1, /*l1=*/false) {
  weight_.value.FillXavier(rng);
}

const Matrix& Dense::Forward(const Matrix& input) {
  input_cache_ = input;
  MatMul(weight_.value, input, &pre_act_);
  AddColumnBroadcast(pre_act_, bias_.value, &pre_act_);
  output_ = pre_act_;
  switch (activation_) {
    case Activation::kLinear:
      break;
    case Activation::kTanh:
      // Same dispatched kernel as Infer, so training-forward and inference
      // outputs are bitwise identical in every build.
      nnkernels::TanhInPlace(output_.data(), output_.size());
      break;
    case Activation::kRelu:
      output_.Apply([](double x) { return act::Relu(x); });
      break;
  }
  return output_;
}

void Dense::Infer(const Matrix& input, Matrix* pre, Matrix* out) const {
  MatMul(weight_.value, input, pre);
  AddColumnBroadcast(*pre, bias_.value, pre);
  if (!out->SameShape(*pre)) *out = Matrix(pre->rows(), pre->cols());
  switch (activation_) {
    case Activation::kLinear:
      *out = *pre;
      break;
    case Activation::kTanh:
      *out = *pre;
      nnkernels::TanhInPlace(out->data(), out->size());
      break;
    case Activation::kRelu: {
      const size_t n = pre->size();
      for (size_t i = 0; i < n; ++i) {
        const double v = pre->storage()[i];
        out->storage()[i] = v > 0.0 ? v : 0.0;
      }
      break;
    }
  }
}

const Matrix& Dense::Backward(const Matrix& grad_output) {
  assert(grad_output.SameShape(output_));
  grad_pre_ = grad_output;
  switch (activation_) {
    case Activation::kLinear:
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < grad_pre_.size(); ++i) {
        grad_pre_.storage()[i] *=
            act::TanhDerivFromOutput(output_.storage()[i]);
      }
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < grad_pre_.size(); ++i) {
        grad_pre_.storage()[i] *=
            act::ReluDerivFromOutput(output_.storage()[i]);
      }
      break;
  }
  // dW += dY X^T ; db += rowsum(dY) ; dX = W^T dY
  Matrix dw;
  MatMulTransposeB(grad_pre_, input_cache_, &dw);
  weight_.grad.AddInPlace(dw);
  for (int r = 0; r < grad_pre_.rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < grad_pre_.cols(); ++c) sum += grad_pre_(r, c);
    bias_.grad(r, 0) += sum;
  }
  MatMulTransposeA(weight_.value, grad_pre_, &grad_input_);
  return grad_input_;
}

// --------------------------------------------------------------- LstmCell

LstmCell::LstmCell(std::string name, int input_dim, int hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      weight_(name + ".W", 4 * hidden_dim, hidden_dim + input_dim,
              /*l1=*/true),
      bias_(name + ".b", 4 * hidden_dim, 1, /*l1=*/false) {
  weight_.value.FillXavier(rng);
  // Forget-gate bias init to 1: standard stabilisation for LSTM training.
  for (int h = 0; h < hidden_dim_; ++h) bias_.value(hidden_dim_ + h, 0) = 1.0;
}

const Matrix& LstmCell::Forward(const std::vector<Matrix>& inputs) {
  steps_ = static_cast<int>(inputs.size());
  assert(steps_ > 0);
  batch_ = inputs[0].cols();
  z_.assign(steps_, Matrix());
  gates_.assign(steps_, Matrix());
  c_.assign(steps_, Matrix());
  h_.assign(steps_, Matrix());
  tanh_c_.assign(steps_, Matrix());

  Matrix h_prev(hidden_dim_, batch_);
  Matrix c_prev(hidden_dim_, batch_);
  Matrix pre;
  const int H = hidden_dim_;
  for (int t = 0; t < steps_; ++t) {
    assert(inputs[t].rows() == input_dim_ && inputs[t].cols() == batch_);
    ConcatRows(h_prev, inputs[t], &z_[t]);
    MatMul(weight_.value, z_[t], &pre);
    AddColumnBroadcast(pre, bias_.value, &pre);
    gates_[t] = Matrix(4 * H, batch_);
    c_[t] = Matrix(H, batch_);
    h_[t] = Matrix(H, batch_);
    tanh_c_[t] = Matrix(H, batch_);
    // Fused gate activations + state update (vectorized when SIMD is on).
    nnkernels::LstmGates(pre.data(), c_prev.data(), gates_[t].data(),
                         c_[t].data(), h_[t].data(), tanh_c_[t].data(), H,
                         batch_);
    h_prev = h_[t];
    c_prev = c_[t];
  }
  return h_[steps_ - 1];
}

void LstmCell::Infer(const std::vector<const Matrix*>& inputs,
                     InferenceState* state) const {
  const int steps = static_cast<int>(inputs.size());
  assert(steps > 0);
  const int H = hidden_dim_;
  const int B = inputs[0]->cols();
  auto ensure = [](Matrix* m, int rows, int cols) {
    if (m->rows() != rows || m->cols() != cols) *m = Matrix(rows, cols);
  };
  ensure(&state->h, H, B);
  ensure(&state->c, H, B);
  ensure(&state->gates, 4 * H, B);
  ensure(&state->tanh_c, H, B);
  ensure(&state->c_next, H, B);
  ensure(&state->h_next, H, B);
  state->h.Zero();
  state->c.Zero();
  for (int t = 0; t < steps; ++t) {
    assert(inputs[t]->rows() == input_dim_ && inputs[t]->cols() == B);
    ConcatRows(state->h, *inputs[t], &state->z);
    MatMul(weight_.value, state->z, &state->pre);
    AddColumnBroadcast(state->pre, bias_.value, &state->pre);
    nnkernels::LstmGates(state->pre.data(), state->c.data(),
                         state->gates.data(), state->c_next.data(),
                         state->h_next.data(), state->tanh_c.data(), H, B);
    std::swap(state->h, state->h_next);
    std::swap(state->c, state->c_next);
  }
}

void LstmCell::Backward(const Matrix& grad_last_hidden,
                        const std::vector<Matrix>& grad_hidden_steps,
                        std::vector<Matrix>* grad_inputs) {
  const int H = hidden_dim_;
  assert(steps_ > 0);
  assert(grad_last_hidden.rows() == H && grad_last_hidden.cols() == batch_);
  grad_inputs->assign(steps_, Matrix());

  Matrix dh = grad_last_hidden;  // dL/dh_t flowing backwards
  Matrix dc(H, batch_);          // dL/dc_t flowing backwards
  Matrix da(4 * H, batch_);      // pre-activation gate grads
  Matrix dz;
  Matrix dw;
  for (int t = steps_ - 1; t >= 0; --t) {
    if (!grad_hidden_steps.empty() && grad_hidden_steps[t].rows() == H) {
      dh.AddInPlace(grad_hidden_steps[t]);
    }
    for (int b = 0; b < batch_; ++b) {
      for (int j = 0; j < H; ++j) {
        const double i_g = gates_[t](j, b);
        const double f_g = gates_[t](H + j, b);
        const double g_g = gates_[t](2 * H + j, b);
        const double o_g = gates_[t](3 * H + j, b);
        const double tc = tanh_c_[t](j, b);
        const double c_prev = t > 0 ? c_[t - 1](j, b) : 0.0;

        const double dh_v = dh(j, b);
        const double dc_v = dc(j, b) + dh_v * o_g * (1.0 - tc * tc);

        const double da_o = dh_v * tc * act::SigmoidDerivFromOutput(o_g);
        const double da_f = dc_v * c_prev * act::SigmoidDerivFromOutput(f_g);
        const double da_i = dc_v * g_g * act::SigmoidDerivFromOutput(i_g);
        const double da_g = dc_v * i_g * act::TanhDerivFromOutput(g_g);

        da(j, b) = da_i;
        da(H + j, b) = da_f;
        da(2 * H + j, b) = da_g;
        da(3 * H + j, b) = da_o;

        dc(j, b) = dc_v * f_g;  // propagate to c_{t-1}
      }
    }
    // Parameter grads: dW += da z^T ; db += rowsum(da).
    MatMulTransposeB(da, z_[t], &dw);
    weight_.grad.AddInPlace(dw);
    for (int r = 0; r < 4 * H; ++r) {
      double sum = 0.0;
      for (int b = 0; b < batch_; ++b) sum += da(r, b);
      bias_.grad(r, 0) += sum;
    }
    // dz = W^T da; split into dh_{t-1} and dx_t.
    MatMulTransposeA(weight_.value, da, &dz);
    Matrix dh_prev;
    SplitRows(dz, H, &dh_prev, &(*grad_inputs)[t]);
    dh = std::move(dh_prev);
  }
}

// ----------------------------------------------------------------- BiLstm

BiLstm::BiLstm(std::string name, int input_dim, int hidden_dim, Rng* rng)
    : forward_(name + ".fwd", input_dim, hidden_dim, rng),
      backward_(name + ".bwd", input_dim, hidden_dim, rng) {}

const Matrix& BiLstm::Forward(const std::vector<Matrix>& inputs) {
  steps_ = static_cast<int>(inputs.size());
  reversed_inputs_.assign(inputs.rbegin(), inputs.rend());
  const Matrix& h_fwd = forward_.Forward(inputs);
  const Matrix& h_bwd = backward_.Forward(reversed_inputs_);
  ConcatRows(h_fwd, h_bwd, &output_);
  return output_;
}

const Matrix& BiLstm::Infer(const std::vector<Matrix>& inputs,
                            InferenceState* state) const {
  const int steps = static_cast<int>(inputs.size());
  state->ptrs_fwd.resize(steps);
  state->ptrs_bwd.resize(steps);
  for (int t = 0; t < steps; ++t) {
    state->ptrs_fwd[t] = &inputs[t];
    state->ptrs_bwd[t] = &inputs[steps - 1 - t];
  }
  forward_.Infer(state->ptrs_fwd, &state->fwd);
  backward_.Infer(state->ptrs_bwd, &state->bwd);
  ConcatRows(state->fwd.h, state->bwd.h, &state->out);
  return state->out;
}

void BiLstm::Backward(const Matrix& grad_output,
                      std::vector<Matrix>* grad_inputs) {
  const int H = forward_.hidden_dim();
  SplitRows(grad_output, H, &grad_fwd_, &grad_bwd_);
  forward_.Backward(grad_fwd_, {}, grad_inputs);
  backward_.Backward(grad_bwd_, {}, &grad_inputs_bwd_);
  // The backward cell consumed reversed inputs: un-reverse its input grads
  // and accumulate.
  for (int t = 0; t < steps_; ++t) {
    (*grad_inputs)[t].AddInPlace(grad_inputs_bwd_[steps_ - 1 - t]);
  }
}

std::vector<Parameter*> BiLstm::Params() {
  std::vector<Parameter*> params = forward_.Params();
  for (Parameter* p : backward_.Params()) params.push_back(p);
  return params;
}

}  // namespace marlin

#ifndef MARLIN_NN_SIMD_H_
#define MARLIN_NN_SIMD_H_

#include <cstddef>

namespace marlin {
namespace simd {

/// Runtime dispatch for the vectorized NN kernels. The AVX2/FMA kernels are
/// compiled only under -DMARLIN_SIMD=ON (in a translation unit built with
/// -mavx2 -mfma); whether they actually run is decided once at startup from
/// CPUID, and can be overridden per-process for parity testing.
///
/// Numerical contract (see DESIGN.md §10):
///  - MatMul / MatMulTransposeA: bitwise identical to the scalar path (the
///    per-element accumulation order is preserved; mul+add, no FMA
///    contraction).
///  - MatMulTransposeB: the k-loop dot product is computed with 4 partial
///    accumulators + horizontal sum, so results may differ from scalar by a
///    few ulps.
///  - LstmGates / TanhInPlace: sigmoid/tanh use a Cephes-style vector exp;
///    elementwise |simd - scalar| <= 1e-12 + 1e-12 * |scalar|.

/// True when the build carries the AVX2 kernels (-DMARLIN_SIMD=ON).
bool CompiledIn();

/// True when the running CPU supports AVX2 and FMA.
bool CpuSupported();

/// True when vector kernels will actually be used: compiled in, CPU
/// support, not disabled via MARLIN_SIMD_DISABLE=1 or SetEnabledForTesting.
bool Enabled();

/// Forces the scalar path (false) or re-enables dispatch (true). Testing
/// hook for in-process scalar-vs-SIMD parity checks; not thread-safe
/// against concurrent kernel calls.
void SetEnabledForTesting(bool enabled);

/// "avx2-fma" when Enabled(), else "scalar".
const char* ActiveIsa();

#ifdef MARLIN_SIMD
/// out(m×n) += a(m×k) * b(k×n); `out` must be pre-zeroed (row-major).
void MatMulAvx2(const double* a, const double* b, double* out, int m, int k,
                int n);
/// out(m×n) += a(k×m)^T * b(k×n); `out` must be pre-zeroed.
void MatMulTransposeAAvx2(const double* a, const double* b, double* out,
                          int m, int k, int n);
/// out(m×n) = a(m×k) * b(n×k)^T.
void MatMulTransposeBAvx2(const double* a, const double* b, double* out,
                          int m, int k, int n);
/// Fused LSTM gate activations + state update, gate order i,f,g,o:
///   gates = [sigmoid; sigmoid; tanh; sigmoid](pre)   (4H×B)
///   c     = f ∘ c_prev + i ∘ g                        (H×B)
///   tanh_c= tanh(c), h = o ∘ tanh_c                   (H×B)
void LstmGatesAvx2(const double* pre, const double* c_prev, double* gates,
                   double* c, double* h, double* tanh_c, int hidden, int batch);
/// x[i] = tanh(x[i]).
void TanhInPlaceAvx2(double* x, size_t n);
#endif  // MARLIN_SIMD

}  // namespace simd

namespace nnkernels {

/// Scalar reference for the fused LSTM gate kernel (identical arithmetic to
/// the historical per-element loops in LstmCell::Forward).
void LstmGatesScalar(const double* pre, const double* c_prev, double* gates,
                     double* c, double* h, double* tanh_c, int hidden,
                     int batch);

/// Dispatching fused LSTM gate kernel (AVX2 when simd::Enabled()).
void LstmGates(const double* pre, const double* c_prev, double* gates,
               double* c, double* h, double* tanh_c, int hidden, int batch);

/// Dispatching in-place tanh over a contiguous buffer.
void TanhInPlace(double* x, size_t n);

}  // namespace nnkernels
}  // namespace marlin

#endif  // MARLIN_NN_SIMD_H_

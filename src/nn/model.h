#ifndef MARLIN_NN_MODEL_H_
#define MARLIN_NN_MODEL_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "util/status.h"

namespace marlin {

/// Adam optimiser with optional L1 penalty on parameters flagged
/// `l1_regularised` (the paper couples the BiLSTM with in-layer L1
/// regularisation to reduce overfitting).
class AdamOptimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double l1_lambda = 0.0;
    /// Global gradient-norm clip applied before the update (0 = off).
    /// Standard stabiliser for recurrent nets trained through long BPTT.
    double clip_norm = 0.0;
  };

  explicit AdamOptimizer(const Options& options) : options_(options) {}

  /// Applies one update step from the accumulated gradients, then zeroes
  /// them.
  void Step(const std::vector<Parameter*>& params);

  int64_t step_count() const { return t_; }
  const Options& options() const { return options_; }

  /// Adjusts the learning rate mid-training (used by LR schedules).
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  Options options_;
  int64_t t_ = 0;
};

/// One supervised sequence-regression sample: `steps[t]` is the feature
/// vector of timestep t (all samples in a dataset share T and D), `target`
/// the regression output vector.
struct SeqSample {
  std::vector<std::vector<double>> steps;
  std::vector<double> target;
};

/// The S-VRF network shape (§4.2, Figure 3): input layer → one BiLSTM layer
/// → one fully-connected layer → linear output layer. Generic over
/// dimensions so tests can gradient-check tiny instances.
class SequenceRegressor {
 public:
  struct Config {
    int input_dim = 3;
    int hidden_dim = 32;   // per direction
    int dense_dim = 32;
    int output_dim = 12;
    uint64_t seed = 42;
  };

  explicit SequenceRegressor(const Config& config);

  /// Forward over a column-batched sequence (inputs[t]: D×B) → O×B.
  const Matrix& Forward(const std::vector<Matrix>& inputs);

  /// Backward from dL/d(output). Accumulates parameter gradients.
  void Backward(const Matrix& grad_output);

  /// Reusable scratch for PredictBatch. One workspace per calling thread;
  /// after the first call at a given (T, B) shape, inference performs no
  /// heap allocations.
  struct InferenceWorkspace {
    BiLstm::InferenceState bilstm;
    Matrix dense_pre, dense_out, head_pre, head_out;
    /// Column-batched input staging (inputs[t]: D×B); callers may pack
    /// samples directly into these buffers before PredictBatch.
    std::vector<Matrix> inputs;

    /// Resizes `inputs` to T matrices of D×B, reusing storage.
    void PackShape(int steps, int dim, int batch);
  };

  /// Batched inference over a column-batched sequence (inputs[t]: D×B).
  /// Returns the O×B output, owned by `ws`. Const and thread-safe with
  /// distinct workspaces: training caches are untouched, so many threads
  /// can serve one mounted model concurrently. Per-column results are
  /// bitwise independent of B (a sample predicts identically at any batch
  /// position, including the ragged final batch).
  const Matrix& PredictBatch(const std::vector<Matrix>& inputs,
                             InferenceWorkspace* ws) const;

  /// Convenience single-sample prediction (B=1 PredictBatch over a
  /// thread-local workspace).
  std::vector<double> Predict(
      const std::vector<std::vector<double>>& steps) const;

  /// All trainable parameters.
  std::vector<Parameter*> Params();

  /// Mean squared error + L1 penalty over one batch; also runs
  /// forward+backward, leaving gradients accumulated (caller then calls
  /// optimizer.Step). Targets: O×B.
  double TrainBatch(const std::vector<Matrix>& inputs, const Matrix& targets,
                    double l1_lambda);

  /// Mean squared error of predictions vs targets without training.
  double Evaluate(const std::vector<Matrix>& inputs, const Matrix& targets);

  const Config& config() const { return config_; }

  /// Serialises all weights to a portable text blob.
  std::string Serialize() const;
  /// Restores weights from Serialize() output. Dimensions must match.
  Status Deserialize(const std::string& blob);

 private:
  Config config_;
  Rng rng_;
  BiLstm bilstm_;
  Dense dense_;
  Dense head_;
  std::vector<Matrix> grad_inputs_;  // discarded (inputs are data)
  Matrix grad_out_buffer_;
};

/// Mini-batch trainer with epoch shuffling and optional validation-loss
/// reporting.
class Trainer {
 public:
  struct Options {
    int epochs = 10;
    int batch_size = 64;
    double learning_rate = 1e-3;
    /// Multiplicative LR decay applied after every epoch (1.0 = constant).
    double lr_decay = 1.0;
    double l1_lambda = 1e-5;
    /// Stop when the validation MSE has not improved for this many epochs
    /// (0 = never stop early; requires a validation set).
    int early_stopping_patience = 0;
    /// Global gradient-norm clip (0 = off), forwarded to the optimiser.
    double clip_norm = 0.0;
    uint64_t shuffle_seed = 17;
    bool verbose = false;
  };

  explicit Trainer(const Options& options) : options_(options) {}

  /// Trains `model` on `train`; returns the final epoch's mean training
  /// loss. If `validation` is non-empty, `validation_losses` (when non-null)
  /// receives the per-epoch validation MSE.
  double Fit(SequenceRegressor* model, const std::vector<SeqSample>& train,
             const std::vector<SeqSample>& validation = {},
             std::vector<double>* validation_losses = nullptr);

  /// Mean squared error of the model over a dataset.
  static double Mse(SequenceRegressor* model,
                    const std::vector<SeqSample>& dataset, int batch_size = 256);

 private:
  /// Packs samples [begin, end) into column-batched inputs/targets.
  static void PackBatch(const std::vector<SeqSample>& dataset,
                        const std::vector<int>& order, int begin, int end,
                        std::vector<Matrix>* inputs, Matrix* targets);

  Options options_;
};

}  // namespace marlin

#endif  // MARLIN_NN_MODEL_H_

#include "nn/matrix.h"

#include "nn/simd.h"

namespace marlin {

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (out->rows() != m || out->cols() != n) *out = Matrix(m, n);
  out->Zero();
#ifdef MARLIN_SIMD
  if (simd::Enabled()) {
    simd::MatMulAvx2(a.data(), b.data(), out->data(), m, k, n);
    return;
  }
#endif
  // i-k-j loop order for cache-friendly row-major access.
  for (int i = 0; i < m; ++i) {
    const double* arow = a.data() + static_cast<size_t>(i) * k;
    double* orow = out->data() + static_cast<size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const double av = arow[kk];
      if (av == 0.0) continue;
      const double* brow = b.data() + static_cast<size_t>(kk) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeA(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  if (out->rows() != m || out->cols() != n) *out = Matrix(m, n);
  out->Zero();
#ifdef MARLIN_SIMD
  if (simd::Enabled()) {
    simd::MatMulTransposeAAvx2(a.data(), b.data(), out->data(), m, k, n);
    return;
  }
#endif
  for (int kk = 0; kk < k; ++kk) {
    const double* arow = a.data() + static_cast<size_t>(kk) * m;
    const double* brow = b.data() + static_cast<size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out->data() + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeB(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.cols());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  if (out->rows() != m || out->cols() != n) *out = Matrix(m, n);
#ifdef MARLIN_SIMD
  if (simd::Enabled()) {
    simd::MatMulTransposeBAvx2(a.data(), b.data(), out->data(), m, k, n);
    return;
  }
#endif
  for (int i = 0; i < m; ++i) {
    const double* arow = a.data() + static_cast<size_t>(i) * k;
    double* orow = out->data() + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const double* brow = b.data() + static_cast<size_t>(j) * k;
      double sum = 0.0;
      for (int kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      orow[j] = sum;
    }
  }
}

void AddColumnBroadcast(const Matrix& a, const Matrix& bias, Matrix* out) {
  assert(bias.cols() == 1 && bias.rows() == a.rows());
  if (!out->SameShape(a)) *out = Matrix(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const double b = bias(r, 0);
    for (int c = 0; c < a.cols(); ++c) (*out)(r, c) = a(r, c) + b;
  }
}

void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.SameShape(b));
  if (!out->SameShape(a)) *out = Matrix(a.rows(), a.cols());
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) {
    out->storage()[i] = a.storage()[i] * b.storage()[i];
  }
}

void ConcatRows(const Matrix& top, const Matrix& bottom, Matrix* out) {
  assert(top.cols() == bottom.cols());
  const int cols = top.cols();
  if (out->rows() != top.rows() + bottom.rows() || out->cols() != cols) {
    *out = Matrix(top.rows() + bottom.rows(), cols);
  }
  for (int r = 0; r < top.rows(); ++r) {
    for (int c = 0; c < cols; ++c) (*out)(r, c) = top(r, c);
  }
  for (int r = 0; r < bottom.rows(); ++r) {
    for (int c = 0; c < cols; ++c) (*out)(top.rows() + r, c) = bottom(r, c);
  }
}

void SplitRows(const Matrix& m, int split, Matrix* top, Matrix* bottom) {
  assert(split >= 0 && split <= m.rows());
  if (top->rows() != split || top->cols() != m.cols()) {
    *top = Matrix(split, m.cols());
  }
  if (bottom->rows() != m.rows() - split || bottom->cols() != m.cols()) {
    *bottom = Matrix(m.rows() - split, m.cols());
  }
  for (int r = 0; r < split; ++r) {
    for (int c = 0; c < m.cols(); ++c) (*top)(r, c) = m(r, c);
  }
  for (int r = split; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) (*bottom)(r - split, c) = m(r, c);
  }
}

}  // namespace marlin

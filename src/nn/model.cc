#include "nn/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"

namespace marlin {

// ---------------------------------------------------------- AdamOptimizer

void AdamOptimizer::Step(const std::vector<Parameter*>& params) {
  ++t_;
  if (options_.clip_norm > 0.0) {
    double total = 0.0;
    for (const Parameter* p : params) total += p->grad.SquaredNorm();
    const double norm = std::sqrt(total);
    if (norm > options_.clip_norm) {
      const double scale = options_.clip_norm / norm;
      for (Parameter* p : params) p->grad.Scale(scale);
    }
  }
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (Parameter* p : params) {
    const size_t n = p->value.size();
    for (size_t i = 0; i < n; ++i) {
      double g = p->grad.storage()[i];
      if (options_.l1_lambda > 0.0 && p->l1_regularised) {
        const double w = p->value.storage()[i];
        g += options_.l1_lambda * (w > 0.0 ? 1.0 : (w < 0.0 ? -1.0 : 0.0));
      }
      double& m = p->adam_m.storage()[i];
      double& v = p->adam_v.storage()[i];
      m = options_.beta1 * m + (1.0 - options_.beta1) * g;
      v = options_.beta2 * v + (1.0 - options_.beta2) * g * g;
      const double m_hat = m / bc1;
      const double v_hat = v / bc2;
      p->value.storage()[i] -=
          options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
    p->ZeroGrad();
  }
}

// ------------------------------------------------------ SequenceRegressor

SequenceRegressor::SequenceRegressor(const Config& config)
    : config_(config),
      rng_(config.seed),
      bilstm_("bilstm", config.input_dim, config.hidden_dim, &rng_),
      dense_("dense", 2 * config.hidden_dim, config.dense_dim,
             Dense::Activation::kTanh, &rng_),
      head_("head", config.dense_dim, config.output_dim,
            Dense::Activation::kLinear, &rng_) {}

const Matrix& SequenceRegressor::Forward(const std::vector<Matrix>& inputs) {
  const Matrix& features = bilstm_.Forward(inputs);
  const Matrix& hidden = dense_.Forward(features);
  return head_.Forward(hidden);
}

void SequenceRegressor::Backward(const Matrix& grad_output) {
  const Matrix& grad_hidden = head_.Backward(grad_output);
  const Matrix& grad_features = dense_.Backward(grad_hidden);
  bilstm_.Backward(grad_features, &grad_inputs_);
}

void SequenceRegressor::InferenceWorkspace::PackShape(int steps, int dim,
                                                      int batch) {
  if (static_cast<int>(inputs.size()) != steps) inputs.resize(steps);
  for (int t = 0; t < steps; ++t) {
    if (inputs[t].rows() != dim || inputs[t].cols() != batch) {
      inputs[t] = Matrix(dim, batch);
    }
  }
}

const Matrix& SequenceRegressor::PredictBatch(const std::vector<Matrix>& inputs,
                                              InferenceWorkspace* ws) const {
  const Matrix& features = bilstm_.Infer(inputs, &ws->bilstm);
  dense_.Infer(features, &ws->dense_pre, &ws->dense_out);
  head_.Infer(ws->dense_out, &ws->head_pre, &ws->head_out);
  return ws->head_out;
}

std::vector<double> SequenceRegressor::Predict(
    const std::vector<std::vector<double>>& steps) const {
  // Single-sample inference is the forecast-serving hot path; batched
  // training goes through Forward/TrainBatch and is not timed here.
  static obs::Histogram* const inference_nanos =
      obs::MetricsRegistry::Global().GetHistogram(
          "marlin_nn_inference_nanos",
          "SequenceRegressor inference latency in nanoseconds per sample");
  obs::ScopedTimer timer(inference_nanos);
  thread_local InferenceWorkspace ws;
  const int steps_n = static_cast<int>(steps.size());
  ws.PackShape(steps_n, config_.input_dim, /*batch=*/1);
  for (int t = 0; t < steps_n; ++t) {
    for (int d = 0; d < config_.input_dim; ++d) {
      ws.inputs[t](d, 0) = steps[static_cast<size_t>(t)][static_cast<size_t>(d)];
    }
  }
  const Matrix& out = PredictBatch(ws.inputs, &ws);
  std::vector<double> result(static_cast<size_t>(config_.output_dim));
  for (int i = 0; i < config_.output_dim; ++i) result[i] = out(i, 0);
  return result;
}

std::vector<Parameter*> SequenceRegressor::Params() {
  std::vector<Parameter*> params = bilstm_.Params();
  for (Parameter* p : dense_.Params()) params.push_back(p);
  for (Parameter* p : head_.Params()) params.push_back(p);
  return params;
}

double SequenceRegressor::TrainBatch(const std::vector<Matrix>& inputs,
                                     const Matrix& targets, double l1_lambda) {
  const Matrix& out = Forward(inputs);
  assert(out.SameShape(targets));
  const double denom = static_cast<double>(out.size());
  grad_out_buffer_ = out;
  double loss = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    const double diff = out.storage()[i] - targets.storage()[i];
    loss += diff * diff;
    grad_out_buffer_.storage()[i] = 2.0 * diff / denom;
  }
  loss /= denom;
  if (l1_lambda > 0.0) {
    for (Parameter* p : Params()) {
      if (p->l1_regularised) loss += l1_lambda * p->value.L1Norm();
    }
  }
  Backward(grad_out_buffer_);
  return loss;
}

double SequenceRegressor::Evaluate(const std::vector<Matrix>& inputs,
                                   const Matrix& targets) {
  const Matrix& out = Forward(inputs);
  double loss = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    const double diff = out.storage()[i] - targets.storage()[i];
    loss += diff * diff;
  }
  return loss / static_cast<double>(out.size());
}

std::string SequenceRegressor::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "marlin-seqreg-v1 " << config_.input_dim << " " << config_.hidden_dim
      << " " << config_.dense_dim << " " << config_.output_dim << "\n";
  // Const-cast is safe: Params() only aggregates pointers.
  auto* self = const_cast<SequenceRegressor*>(this);
  for (Parameter* p : self->Params()) {
    out << p->name << " " << p->value.rows() << " " << p->value.cols() << "\n";
    for (size_t i = 0; i < p->value.size(); ++i) {
      out << p->value.storage()[i];
      out << (((i + 1) % 8 == 0) ? '\n' : ' ');
    }
    out << "\n";
  }
  return out.str();
}

Status SequenceRegressor::Deserialize(const std::string& blob) {
  std::istringstream in(blob);
  std::string magic;
  int input_dim, hidden_dim, dense_dim, output_dim;
  if (!(in >> magic >> input_dim >> hidden_dim >> dense_dim >> output_dim)) {
    return Status::InvalidArgument("malformed model header");
  }
  if (magic != "marlin-seqreg-v1") {
    return Status::InvalidArgument("unknown model format: " + magic);
  }
  if (input_dim != config_.input_dim || hidden_dim != config_.hidden_dim ||
      dense_dim != config_.dense_dim || output_dim != config_.output_dim) {
    return Status::FailedPrecondition("model dimensions do not match");
  }
  for (Parameter* p : Params()) {
    std::string name;
    int rows, cols;
    if (!(in >> name >> rows >> cols)) {
      return Status::InvalidArgument("truncated parameter header");
    }
    if (name != p->name || rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument("parameter mismatch at '" + name + "'");
    }
    for (size_t i = 0; i < p->value.size(); ++i) {
      if (!(in >> p->value.storage()[i])) {
        return Status::InvalidArgument("truncated parameter data");
      }
    }
  }
  return Status::Ok();
}

// ------------------------------------------------------------------ Trainer

void Trainer::PackBatch(const std::vector<SeqSample>& dataset,
                        const std::vector<int>& order, int begin, int end,
                        std::vector<Matrix>* inputs, Matrix* targets) {
  const int batch = end - begin;
  const SeqSample& first = dataset[static_cast<size_t>(order[begin])];
  const int steps = static_cast<int>(first.steps.size());
  const int dim = static_cast<int>(first.steps[0].size());
  const int out_dim = static_cast<int>(first.target.size());
  inputs->assign(steps, Matrix());
  for (int t = 0; t < steps; ++t) (*inputs)[t] = Matrix(dim, batch);
  *targets = Matrix(out_dim, batch);
  for (int b = 0; b < batch; ++b) {
    const SeqSample& sample = dataset[static_cast<size_t>(order[begin + b])];
    for (int t = 0; t < steps; ++t) {
      for (int d = 0; d < dim; ++d) {
        (*inputs)[t](d, b) = sample.steps[t][static_cast<size_t>(d)];
      }
    }
    for (int o = 0; o < out_dim; ++o) {
      (*targets)(o, b) = sample.target[static_cast<size_t>(o)];
    }
  }
}

double Trainer::Fit(SequenceRegressor* model,
                    const std::vector<SeqSample>& train,
                    const std::vector<SeqSample>& validation,
                    std::vector<double>* validation_losses) {
  if (train.empty()) return 0.0;
  AdamOptimizer::Options adam_options;
  adam_options.learning_rate = options_.learning_rate;
  adam_options.l1_lambda = options_.l1_lambda;
  adam_options.clip_norm = options_.clip_norm;
  AdamOptimizer optimizer(adam_options);
  const std::vector<Parameter*> params = model->Params();

  Rng rng(options_.shuffle_seed);
  std::vector<int> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  double last_epoch_loss = 0.0;
  double learning_rate = options_.learning_rate;
  double best_val = 1e300;
  int epochs_since_best = 0;
  std::vector<Matrix> inputs;
  Matrix targets;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    optimizer.set_learning_rate(learning_rate);
    // Fisher-Yates with the deterministic RNG.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.UniformInt(static_cast<uint64_t>(i))]);
    }
    double epoch_loss = 0.0;
    int batches = 0;
    for (int begin = 0; begin < static_cast<int>(train.size());
         begin += options_.batch_size) {
      const int end = std::min(static_cast<int>(train.size()),
                               begin + options_.batch_size);
      PackBatch(train, order, begin, end, &inputs, &targets);
      epoch_loss += model->TrainBatch(inputs, targets, options_.l1_lambda);
      optimizer.Step(params);
      ++batches;
    }
    last_epoch_loss = epoch_loss / std::max(1, batches);
    double val_loss = -1.0;
    if (!validation.empty()) {
      val_loss = Mse(model, validation);
      if (validation_losses != nullptr) validation_losses->push_back(val_loss);
    }
    if (options_.verbose) {
      MARLIN_LOG(INFO) << "epoch " << (epoch + 1) << "/" << options_.epochs
                       << " train_loss=" << last_epoch_loss
                       << (val_loss >= 0
                               ? " val_mse=" + std::to_string(val_loss)
                               : "");
    }
    learning_rate *= options_.lr_decay;
    if (options_.early_stopping_patience > 0 && val_loss >= 0.0) {
      if (val_loss < best_val - 1e-12) {
        best_val = val_loss;
        epochs_since_best = 0;
      } else if (++epochs_since_best >= options_.early_stopping_patience) {
        if (options_.verbose) {
          MARLIN_LOG(INFO) << "early stop after epoch " << (epoch + 1)
                           << " (best val_mse=" << best_val << ")";
        }
        break;
      }
    }
  }
  return last_epoch_loss;
}

double Trainer::Mse(SequenceRegressor* model,
                    const std::vector<SeqSample>& dataset, int batch_size) {
  if (dataset.empty()) return 0.0;
  std::vector<int> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<Matrix> inputs;
  Matrix targets;
  double total = 0.0;
  int64_t elements = 0;
  for (int begin = 0; begin < static_cast<int>(dataset.size());
       begin += batch_size) {
    const int end =
        std::min(static_cast<int>(dataset.size()), begin + batch_size);
    PackBatch(dataset, order, begin, end, &inputs, &targets);
    const double mse = model->Evaluate(inputs, targets);
    total += mse * static_cast<double>(targets.size());
    elements += static_cast<int64_t>(targets.size());
  }
  return total / static_cast<double>(elements);
}

}  // namespace marlin

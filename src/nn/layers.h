#ifndef MARLIN_NN_LAYERS_H_
#define MARLIN_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace marlin {

/// A trainable tensor: value plus accumulated gradient plus Adam moments.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;
  Matrix adam_m;
  Matrix adam_v;
  /// Whether L1 regularisation applies to this parameter (the paper uses
  /// in-layer L1 on the BiLSTM weights; biases are exempt).
  bool l1_regularised = false;

  Parameter() = default;
  Parameter(std::string n, int rows, int cols, bool l1 = false)
      : name(std::move(n)),
        value(rows, cols),
        grad(rows, cols),
        adam_m(rows, cols),
        adam_v(rows, cols),
        l1_regularised(l1) {}

  void ZeroGrad() { grad.Zero(); }
};

/// Element-wise activations with derivatives expressed in terms of the
/// activation output (the form backward passes need).
namespace act {
inline double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
inline double SigmoidDerivFromOutput(double y) { return y * (1.0 - y); }
inline double Tanh(double x) { return std::tanh(x); }
inline double TanhDerivFromOutput(double y) { return 1.0 - y * y; }
inline double Relu(double x) { return x > 0.0 ? x : 0.0; }
inline double ReluDerivFromOutput(double y) { return y > 0.0 ? 1.0 : 0.0; }
}  // namespace act

/// Fully-connected layer y = act(W x + b) operating on column-batched
/// inputs (x: in×B, y: out×B).
class Dense {
 public:
  enum class Activation { kLinear, kTanh, kRelu };

  Dense(std::string name, int in_dim, int out_dim, Activation activation,
        Rng* rng);

  /// Forward pass; caches input and output for the backward pass.
  const Matrix& Forward(const Matrix& input);

  /// Backward pass: takes dL/dy, accumulates parameter gradients, returns
  /// dL/dx. Must follow a Forward with the same batch.
  const Matrix& Backward(const Matrix& grad_output);

  /// Inference-only forward into caller-owned buffers: does not touch the
  /// training caches, so it is const and safe to call concurrently with
  /// distinct `pre`/`out` scratch. Vectorized activation when SIMD is on.
  void Infer(const Matrix& input, Matrix* pre, Matrix* out) const;

  std::vector<Parameter*> Params() { return {&weight_, &bias_}; }
  const Matrix& output() const { return output_; }
  int in_dim() const { return weight_.value.cols(); }
  int out_dim() const { return weight_.value.rows(); }

 private:
  Activation activation_;
  Parameter weight_;
  Parameter bias_;
  Matrix input_cache_;
  Matrix pre_act_;
  Matrix output_;
  Matrix grad_pre_;
  Matrix grad_input_;
};

/// Single-direction LSTM processed over a whole sequence with full
/// backpropagation through time. Gates packed in one weight matrix
/// W: (4H × (H+D)), bias b: (4H × 1); gate order i, f, g, o.
class LstmCell {
 public:
  LstmCell(std::string name, int input_dim, int hidden_dim, Rng* rng);

  /// Runs the sequence (inputs[t]: D×B, all same B). Returns the hidden
  /// state of the last step (H×B). Caches everything needed for Backward.
  const Matrix& Forward(const std::vector<Matrix>& inputs);

  /// BPTT. `grad_last_hidden` is dL/dh_T (H×B); per-step hidden grads may
  /// additionally be supplied via `grad_hidden_steps` (empty = none).
  /// Accumulates parameter grads; fills `grad_inputs` (one D×B per step).
  void Backward(const Matrix& grad_last_hidden,
                const std::vector<Matrix>& grad_hidden_steps,
                std::vector<Matrix>* grad_inputs);

  std::vector<Parameter*> Params() { return {&weight_, &bias_}; }

  /// Reusable scratch for the inference-only sequence pass: only the
  /// current h/c survive a step (no BPTT history), and every buffer is
  /// reused across calls, so a warm pass performs zero allocations.
  struct InferenceState {
    Matrix h, c;                       // current states (H×B)
    Matrix z, pre, gates, tanh_c;      // per-step scratch
    Matrix c_next, h_next;
  };

  /// Runs the sequence through the cell without touching the training
  /// caches; const, thread-safe with distinct `state`. `inputs` are
  /// pointers so a caller can present the sequence reversed without
  /// copying. On return `state->h` holds h_T (H×B).
  void Infer(const std::vector<const Matrix*>& inputs,
             InferenceState* state) const;

  int hidden_dim() const { return hidden_dim_; }
  int input_dim() const { return input_dim_; }
  /// Hidden states per step from the last Forward (h_1..h_T).
  const std::vector<Matrix>& hidden_states() const { return h_; }

 private:
  int input_dim_;
  int hidden_dim_;
  Parameter weight_;
  Parameter bias_;

  // Forward caches (index t over sequence steps).
  std::vector<Matrix> z_;      // concat [h_{t-1}; x_t]
  std::vector<Matrix> gates_;  // post-activation gates (4H×B)
  std::vector<Matrix> c_;      // cell states
  std::vector<Matrix> h_;      // hidden states
  std::vector<Matrix> tanh_c_;
  int batch_ = 0;
  int steps_ = 0;
};

/// Bidirectional LSTM for sequence-to-one regression: the forward cell
/// reads x_1..x_T, the backward cell reads x_T..x_1; the layer output is the
/// concatenation [h_fwd_T ; h_bwd_T] (2H × B) — the BiLSTM configuration of
/// the paper's S-VRF architecture (§4.2, Figure 3).
class BiLstm {
 public:
  BiLstm(std::string name, int input_dim, int hidden_dim, Rng* rng);

  const Matrix& Forward(const std::vector<Matrix>& inputs);

  /// Backward from dL/d(concat output); fills grad_inputs per step.
  void Backward(const Matrix& grad_output, std::vector<Matrix>* grad_inputs);

  /// Scratch for the inference-only pass over both directions.
  struct InferenceState {
    LstmCell::InferenceState fwd, bwd;
    std::vector<const Matrix*> ptrs_fwd, ptrs_bwd;
    Matrix out;  // 2H×B
  };

  /// Inference-only forward: const, allocation-free when warm, safe to call
  /// concurrently with distinct `state`. Returns [h_fwd_T; h_bwd_T] (2H×B),
  /// stored in state->out.
  const Matrix& Infer(const std::vector<Matrix>& inputs,
                      InferenceState* state) const;

  std::vector<Parameter*> Params();

  int output_dim() const { return 2 * forward_.hidden_dim(); }

 private:
  LstmCell forward_;
  LstmCell backward_;
  Matrix output_;
  Matrix grad_fwd_, grad_bwd_;
  std::vector<Matrix> reversed_inputs_;
  std::vector<Matrix> grad_inputs_bwd_;
  int steps_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_NN_LAYERS_H_

#include "kvstore/kvstore.h"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "chk/chk.h"

namespace marlin {

KvStore::KvStore(const Clock* clock, int num_shards,
                 obs::MetricsRegistry* metrics)
    : clock_(clock != nullptr ? clock : &default_clock_) {
  const int n = std::max(1, num_shards);
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());

  obs::MetricsRegistry* registry = obs::MetricsRegistry::OrGlobal(metrics);
  const std::string ops_name = "marlin_kv_ops_total";
  const std::string ops_help = "KvStore operations by command";
  metrics_.set = registry->GetCounter(ops_name, ops_help, {{"op", "set"}});
  metrics_.get = registry->GetCounter(ops_name, ops_help, {{"op", "get"}});
  metrics_.hset = registry->GetCounter(ops_name, ops_help, {{"op", "hset"}});
  metrics_.hget = registry->GetCounter(ops_name, ops_help, {{"op", "hget"}});
  metrics_.hgetall =
      registry->GetCounter(ops_name, ops_help, {{"op", "hgetall"}});
  metrics_.del = registry->GetCounter(ops_name, ops_help, {{"op", "del"}});
  metrics_.scan = registry->GetCounter(ops_name, ops_help, {{"op", "scan"}});
  metrics_.snapshot =
      registry->GetCounter(ops_name, ops_help, {{"op", "snapshot"}});
  metrics_.expired_purged = registry->GetCounter(
      "marlin_kv_expired_purged_total", "Expired entries physically removed");
}

TimeMicros KvStore::Now() const { return clock_->Now(); }

KvStore::Shard& KvStore::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const KvStore::Shard& KvStore::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void KvStore::Set(const std::string& key, std::string value) {
  metrics_.set->Increment();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& entry = shard.map[key];
  entry.value = std::move(value);
  entry.hash.clear();
  entry.is_hash = false;
  entry.expires_at = 0;
}

StatusOr<std::string> KvStore::Get(const std::string& key) const {
  metrics_.get->Increment();
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || IsExpired(it->second, Now())) {
    return Status::NotFound("key '" + key + "' not found");
  }
  if (it->second.is_hash) {
    return Status::FailedPrecondition("key '" + key + "' holds a hash");
  }
  return it->second.value;
}

Status KvStore::HSet(const std::string& key, const std::string& field,
                     std::string value) {
  metrics_.hset->Increment();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end() && IsExpired(it->second, Now())) {
    shard.map.erase(it);
    it = shard.map.end();
  }
  if (it == shard.map.end()) {
    Entry entry;
    entry.is_hash = true;
    entry.hash.emplace(field, std::move(value));
    shard.map.emplace(key, std::move(entry));
    return Status::Ok();
  }
  if (!it->second.is_hash) {
    return Status::FailedPrecondition("key '" + key + "' holds a string");
  }
  MARLIN_CHK_INVARIANT(it->second.value.empty(),
                       "hash entries must not carry a string value");
  it->second.hash[field] = std::move(value);
  return Status::Ok();
}

StatusOr<std::string> KvStore::HGet(const std::string& key,
                                    const std::string& field) const {
  metrics_.hget->Increment();
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || IsExpired(it->second, Now())) {
    return Status::NotFound("key '" + key + "' not found");
  }
  if (!it->second.is_hash) {
    return Status::FailedPrecondition("key '" + key + "' holds a string");
  }
  auto field_it = it->second.hash.find(field);
  if (field_it == it->second.hash.end()) {
    return Status::NotFound("field '" + field + "' not found");
  }
  return field_it->second;
}

std::map<std::string, std::string> KvStore::HGetAll(
    const std::string& key) const {
  metrics_.hgetall->Increment();
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || IsExpired(it->second, Now()) ||
      !it->second.is_hash) {
    return {};
  }
  return it->second.hash;
}

bool KvStore::Del(const std::string& key) {
  metrics_.del->Increment();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  const bool was_live = !IsExpired(it->second, Now());
  shard.map.erase(it);
  return was_live;
}

bool KvStore::Exists(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  return it != shard.map.end() && !IsExpired(it->second, Now());
}

bool KvStore::Expire(const std::string& key, TimeMicros ttl) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || IsExpired(it->second, Now())) return false;
  it->second.expires_at = Now() + ttl;
  MARLIN_CHK_INVARIANT(ttl <= 0 || !IsExpired(it->second, Now()),
                       "a freshly set positive TTL must leave the key live");
  return true;
}

std::optional<TimeMicros> KvStore::Ttl(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  const TimeMicros now = Now();
  if (it == shard.map.end() || IsExpired(it->second, now) ||
      it->second.expires_at == 0) {
    return std::nullopt;
  }
  return it->second.expires_at - now;
}

size_t KvStore::Size() const {
  size_t total = 0;
  const TimeMicros now = Now();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      if (!IsExpired(entry, now)) ++total;
    }
  }
  return total;
}

void KvStore::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
  }
}

std::vector<std::string> KvStore::ScanPrefix(const std::string& prefix) const {
  metrics_.scan->Increment();
  std::vector<std::string> out;
  const TimeMicros now = Now();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      if (!IsExpired(entry, now) && key.rfind(prefix, 0) == 0) {
        out.push_back(key);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, std::string>> KvStore::Snapshot() const {
  metrics_.snapshot->Increment();
  std::vector<std::pair<std::string, std::string>> out;
  const TimeMicros now = Now();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      if (IsExpired(entry, now)) continue;
      if (entry.is_hash) {
        std::string rendered;
        for (const auto& [field, value] : entry.hash) {
          if (!rendered.empty()) rendered += ",";
          rendered += field + "=" + value;
        }
        out.emplace_back(key, std::move(rendered));
      } else {
        out.emplace_back(key, entry.value);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

void AppendLengthPrefixed(const std::string& data, std::string* out) {
  *out += std::to_string(data.size());
  out->push_back(' ');
  *out += data;
}

/// Reads "<len> <bytes>" from `blob` at `*pos`; false on malformed input.
bool ReadLengthPrefixed(const std::string& blob, size_t* pos,
                        std::string* out) {
  size_t end = *pos;
  while (end < blob.size() && blob[end] != ' ') ++end;
  if (end >= blob.size()) return false;
  const std::string length_text = blob.substr(*pos, end - *pos);
  char* parse_end = nullptr;
  const unsigned long length = std::strtoul(length_text.c_str(), &parse_end, 10);
  if (parse_end == length_text.c_str()) return false;
  const size_t start = end + 1;
  if (start + length > blob.size()) return false;
  *out = blob.substr(start, length);
  *pos = start + length;
  return true;
}

}  // namespace

std::string KvStore::Dump() const {
  std::string out = "MARLINKV1\n";
  const TimeMicros now = Now();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      if (IsExpired(entry, now)) continue;
      out.push_back(entry.is_hash ? 'H' : 'S');
      out.push_back(' ');
      out += std::to_string(entry.expires_at);
      out.push_back(' ');
      AppendLengthPrefixed(key, &out);
      if (entry.is_hash) {
        out.push_back(' ');
        out += std::to_string(entry.hash.size());
        for (const auto& [field, value] : entry.hash) {
          out.push_back(' ');
          AppendLengthPrefixed(field, &out);
          out.push_back(' ');
          AppendLengthPrefixed(value, &out);
        }
      } else {
        out.push_back(' ');
        AppendLengthPrefixed(entry.value, &out);
      }
      out.push_back('\n');
    }
  }
  return out;
}

Status KvStore::Restore(const std::string& blob) {
  const std::string magic = "MARLINKV1\n";
  if (blob.rfind(magic, 0) != 0) {
    return Status::InvalidArgument("not a kvstore dump");
  }
  Clear();
  const TimeMicros now = Now();
  size_t pos = magic.size();
  while (pos < blob.size()) {
    const char kind = blob[pos];
    if (kind != 'S' && kind != 'H') {
      return Status::InvalidArgument("corrupt dump: bad record kind");
    }
    pos += 2;  // kind + space
    size_t space = blob.find(' ', pos);
    if (space == std::string::npos) {
      return Status::InvalidArgument("corrupt dump: missing expiry");
    }
    const TimeMicros expires_at =
        std::strtoll(blob.substr(pos, space - pos).c_str(), nullptr, 10);
    pos = space + 1;
    std::string key;
    if (!ReadLengthPrefixed(blob, &pos, &key)) {
      return Status::InvalidArgument("corrupt dump: bad key");
    }
    Entry entry;
    entry.expires_at = expires_at;
    if (kind == 'H') {
      entry.is_hash = true;
      if (pos >= blob.size() || blob[pos] != ' ') {
        return Status::InvalidArgument("corrupt dump: missing field count");
      }
      ++pos;
      space = blob.find(' ', pos);
      const size_t newline = blob.find('\n', pos);
      const size_t count_end =
          std::min(space == std::string::npos ? blob.size() : space,
                   newline == std::string::npos ? blob.size() : newline);
      const unsigned long fields =
          std::strtoul(blob.substr(pos, count_end - pos).c_str(), nullptr, 10);
      pos = count_end;
      for (unsigned long i = 0; i < fields; ++i) {
        if (pos >= blob.size() || blob[pos] != ' ') {
          return Status::InvalidArgument("corrupt dump: bad hash layout");
        }
        ++pos;
        std::string field, value;
        if (!ReadLengthPrefixed(blob, &pos, &field)) {
          return Status::InvalidArgument("corrupt dump: bad field");
        }
        if (pos >= blob.size() || blob[pos] != ' ') {
          return Status::InvalidArgument("corrupt dump: bad hash layout");
        }
        ++pos;
        if (!ReadLengthPrefixed(blob, &pos, &value)) {
          return Status::InvalidArgument("corrupt dump: bad value");
        }
        entry.hash.emplace(std::move(field), std::move(value));
      }
    } else {
      if (pos >= blob.size() || blob[pos] != ' ') {
        return Status::InvalidArgument("corrupt dump: missing value");
      }
      ++pos;
      if (!ReadLengthPrefixed(blob, &pos, &entry.value)) {
        return Status::InvalidArgument("corrupt dump: bad value");
      }
    }
    if (pos >= blob.size() || blob[pos] != '\n') {
      return Status::InvalidArgument("corrupt dump: missing terminator");
    }
    ++pos;
    if (!IsExpired(entry, now)) {
      MARLIN_CHK_INVARIANT(entry.is_hash ? entry.value.empty()
                                         : entry.hash.empty(),
                           "restored entry must be exclusively string or "
                           "hash shaped");
      Shard& shard = ShardFor(key);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map[key] = std::move(entry);
    }
  }
  return Status::Ok();
}

size_t KvStore::PurgeExpired() {
  size_t removed = 0;
  const TimeMicros now = Now();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (IsExpired(it->second, now)) {
        it = shard->map.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  if (removed > 0) metrics_.expired_purged->Increment(removed);
  return removed;
}

}  // namespace marlin

#ifndef MARLIN_KVSTORE_DURABLE_KVSTORE_H_
#define MARLIN_KVSTORE_DURABLE_KVSTORE_H_

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "kvstore/kvstore.h"
#include "obs/metrics.h"
#include "storage/partition_log.h"
#include "storage/record_io.h"
#include "util/clock.h"
#include "util/status.h"

namespace marlin {

/// Durability wrapper for KvStore: write-ahead journal + checkpoint.
///
///   <dir>/wal/<base>.seg...   mutation journal (one storage::PartitionLog)
///   <dir>/kv.snap             atomic snapshot: [wal offset][KvStore::Dump]
///
/// Every mutator journals its operation to the WAL *before* applying it to
/// the in-memory store (write-ahead: an op is recoverable once it is
/// observable), and journal+apply run under a per-key lock stripe so the
/// WAL order of a key's ops equals their apply order — replay therefore
/// reconstructs exactly the state readers observed, never a re-shuffled
/// one. Checkpoint() snapshots the full store together with the WAL
/// offset it covers and compacts the journal prefix below it, so Open()
/// recovery is snapshot + *tail* replay — the replayed record count is
/// bounded by the mutations since the last checkpoint, not the store's
/// lifetime (the property bench/storage_recovery.cc measures and the crash
/// soak asserts).
///
/// Reads go through store(); mutations MUST go through this wrapper — a
/// write to store() directly is invisible to the journal and silently lost
/// on the next recovery.
///
/// Thread-safe: mutators run concurrently (the inner store shards its
/// locks); Checkpoint() takes the exclusive side of a shared_mutex so the
/// snapshot never interleaves with a half-applied op.
class DurableKvStore {
 public:
  struct Options {
    /// Drives TTL expiry and the journaled absolute expiry deadlines.
    const Clock* clock = nullptr;
    int num_shards = 16;
    obs::MetricsRegistry* metrics = nullptr;
    /// WAL tuning (sync mode, segment size). Labels are set internally.
    storage::PartitionLog::Options wal;
  };

  /// Opens (creating or recovering) the store rooted at directory `dir`:
  /// restores the latest valid snapshot, then replays the WAL tail past it.
  static StatusOr<std::unique_ptr<DurableKvStore>> Open(
      const std::string& dir, const Options& options);
  static StatusOr<std::unique_ptr<DurableKvStore>> Open(
      const std::string& dir) {
    return Open(dir, Options());
  }

  // -- Journaled mutators (KvStore signatures, lifted to Status where the
  // -- inner store returns void so a journal failure is visible) ---------

  /// Applies only when the op journaled; the returned Status is the WAL
  /// append's.
  Status Set(const std::string& key, std::string value);
  Status HSet(const std::string& key, const std::string& field,
              std::string value);
  /// false covers both "key absent" and "journal failed" — the
  /// marlin_storage_kv_wal_journal_failures_total counter disambiguates
  /// in aggregate.
  bool Del(const std::string& key);
  bool Expire(const std::string& key, TimeMicros ttl);

  /// Read-side handle (Get/HGetAll/ScanPrefix/Dump/...). Do not mutate
  /// through it — see the class comment.
  KvStore& store() { return kv_; }
  const KvStore& store() const { return kv_; }

  /// Atomically snapshots the store and compacts the WAL prefix the
  /// snapshot covers.
  Status Checkpoint();

  /// fsyncs the WAL.
  Status Flush() { return wal_->Flush(); }

  /// WAL records replayed by Open() — the "recovery replays only the tail"
  /// acceptance check reads this.
  int64_t replayed_records() const { return replayed_; }
  int64_t wal_end() const { return wal_->end_offset(); }
  int64_t wal_start() const { return wal_->start_offset(); }

  /// Public only so Open() can make_unique; use Open().
  DurableKvStore(std::string dir, const Options& options,
                 std::unique_ptr<storage::PartitionLog> wal);

 private:
  Status Recover();
  Status Apply(const storage::LogRecord& record);
  Status Journal(const std::string& key, std::string op_blob);
  TimeMicros Now() const { return clock_->Now(); }
  std::mutex& KeyMutex(const std::string& key) {
    return key_mu_[std::hash<std::string>{}(key) % key_mu_.size()];
  }

  const std::string dir_;
  const Options options_;
  const Clock* clock_;
  WallClock default_clock_;
  std::unique_ptr<storage::PartitionLog> wal_;
  KvStore kv_;
  int64_t replayed_ = 0;

  /// Mutators hold shared (they may interleave with each other — the inner
  /// store serializes per shard); Checkpoint holds exclusive so its
  /// (wal offset, dump) pair is a consistent cut.
  mutable std::shared_mutex checkpoint_mu_;
  /// Journal-then-apply must be atomic *per key*: without it, two writers
  /// to one key can land in the WAL in one order and in the store in the
  /// other, and replay would recover a state nobody ever read. Striped so
  /// unrelated keys still mutate concurrently. Acquired under
  /// checkpoint_mu_ (shared), never the other way around.
  std::array<std::mutex, 64> key_mu_;

  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* wal_records_ = nullptr;
  obs::Counter* replayed_records_ = nullptr;
  obs::Counter* journal_failures_ = nullptr;
};

}  // namespace marlin

#endif  // MARLIN_KVSTORE_DURABLE_KVSTORE_H_

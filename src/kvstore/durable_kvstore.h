#ifndef MARLIN_KVSTORE_DURABLE_KVSTORE_H_
#define MARLIN_KVSTORE_DURABLE_KVSTORE_H_

#include <memory>
#include <shared_mutex>
#include <string>

#include "kvstore/kvstore.h"
#include "obs/metrics.h"
#include "storage/partition_log.h"
#include "storage/record_io.h"
#include "util/clock.h"
#include "util/status.h"

namespace marlin {

/// Durability wrapper for KvStore: write-ahead journal + checkpoint.
///
///   <dir>/wal/<base>.seg...   mutation journal (one storage::PartitionLog)
///   <dir>/kv.snap             atomic snapshot: [wal offset][KvStore::Dump]
///
/// Every mutator journals its operation to the WAL *before* applying it to
/// the in-memory store (write-ahead: an op is recoverable once it is
/// observable). Checkpoint() snapshots the full store together with the WAL
/// offset it covers and compacts the journal prefix below it, so Open()
/// recovery is snapshot + *tail* replay — the replayed record count is
/// bounded by the mutations since the last checkpoint, not the store's
/// lifetime (the property bench/storage_recovery.cc measures and the crash
/// soak asserts).
///
/// Reads go through store(); mutations MUST go through this wrapper — a
/// write to store() directly is invisible to the journal and silently lost
/// on the next recovery.
///
/// Thread-safe: mutators run concurrently (the inner store shards its
/// locks); Checkpoint() takes the exclusive side of a shared_mutex so the
/// snapshot never interleaves with a half-applied op.
class DurableKvStore {
 public:
  struct Options {
    /// Drives TTL expiry and the journaled absolute expiry deadlines.
    const Clock* clock = nullptr;
    int num_shards = 16;
    obs::MetricsRegistry* metrics = nullptr;
    /// WAL tuning (sync mode, segment size). Labels are set internally.
    storage::PartitionLog::Options wal;
  };

  /// Opens (creating or recovering) the store rooted at directory `dir`:
  /// restores the latest valid snapshot, then replays the WAL tail past it.
  static StatusOr<std::unique_ptr<DurableKvStore>> Open(
      const std::string& dir, const Options& options);
  static StatusOr<std::unique_ptr<DurableKvStore>> Open(
      const std::string& dir) {
    return Open(dir, Options());
  }

  // -- Journaled mutators (KvStore signatures) --------------------------

  void Set(const std::string& key, std::string value);
  Status HSet(const std::string& key, const std::string& field,
              std::string value);
  bool Del(const std::string& key);
  bool Expire(const std::string& key, TimeMicros ttl);

  /// Read-side handle (Get/HGetAll/ScanPrefix/Dump/...). Do not mutate
  /// through it — see the class comment.
  KvStore& store() { return kv_; }
  const KvStore& store() const { return kv_; }

  /// Atomically snapshots the store and compacts the WAL prefix the
  /// snapshot covers.
  Status Checkpoint();

  /// fsyncs the WAL.
  Status Flush() { return wal_->Flush(); }

  /// WAL records replayed by Open() — the "recovery replays only the tail"
  /// acceptance check reads this.
  int64_t replayed_records() const { return replayed_; }
  int64_t wal_end() const { return wal_->end_offset(); }
  int64_t wal_start() const { return wal_->start_offset(); }

  /// Public only so Open() can make_unique; use Open().
  DurableKvStore(std::string dir, const Options& options,
                 std::unique_ptr<storage::PartitionLog> wal);

 private:
  Status Recover();
  Status Apply(const storage::LogRecord& record);
  Status Journal(const std::string& key, std::string op_blob);
  TimeMicros Now() const { return clock_->Now(); }

  const std::string dir_;
  const Options options_;
  const Clock* clock_;
  WallClock default_clock_;
  std::unique_ptr<storage::PartitionLog> wal_;
  KvStore kv_;
  int64_t replayed_ = 0;

  /// Mutators hold shared (they may interleave with each other — the inner
  /// store serializes per shard); Checkpoint holds exclusive so its
  /// (wal offset, dump) pair is a consistent cut.
  mutable std::shared_mutex checkpoint_mu_;

  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* wal_records_ = nullptr;
  obs::Counter* replayed_records_ = nullptr;
};

}  // namespace marlin

#endif  // MARLIN_KVSTORE_DURABLE_KVSTORE_H_

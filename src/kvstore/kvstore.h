#ifndef MARLIN_KVSTORE_KVSTORE_H_
#define MARLIN_KVSTORE_KVSTORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/status.h"

namespace marlin {

/// In-memory key-value store — Marlin's substitute for the Redis database
/// [14] the writer actor publishes actor states into.
///
/// Supports string values and hash (field→value) values with optional TTL
/// expiry, sharded internally for concurrent access from multiple writer
/// actors. `Snapshot`/`ScanPrefix` serve the read side (the middleware API
/// feeding the UI).
class KvStore {
 public:
  /// `clock` drives TTL expiry; defaults to the wall clock. `num_shards`
  /// bounds lock contention. `metrics` is the registry op counters report
  /// into (null = process global).
  explicit KvStore(const Clock* clock = nullptr, int num_shards = 16,
                   obs::MetricsRegistry* metrics = nullptr);

  // -- String commands -------------------------------------------------

  /// SET key value. Overwrites any previous value (string or hash) and
  /// clears any TTL.
  void Set(const std::string& key, std::string value);

  /// GET key. NotFound for absent/expired keys, FailedPrecondition when the
  /// key holds a hash.
  StatusOr<std::string> Get(const std::string& key) const;

  // -- Hash commands ----------------------------------------------------

  /// HSET key field value. Creates the hash if absent; FailedPrecondition
  /// when the key holds a string.
  Status HSet(const std::string& key, const std::string& field,
              std::string value);

  /// HGET key field.
  StatusOr<std::string> HGet(const std::string& key,
                             const std::string& field) const;

  /// HGETALL key. Returns an empty map for absent keys.
  std::map<std::string, std::string> HGetAll(const std::string& key) const;

  // -- Generic commands -------------------------------------------------

  /// DEL key. Returns true when a live key was removed.
  bool Del(const std::string& key);

  /// EXISTS key (expired keys count as absent).
  bool Exists(const std::string& key) const;

  /// EXPIRE key ttl: sets time-to-live from now. False for absent keys.
  bool Expire(const std::string& key, TimeMicros ttl);

  /// Remaining TTL, or nullopt when the key is absent or has no TTL.
  std::optional<TimeMicros> Ttl(const std::string& key) const;

  /// Number of live keys.
  size_t Size() const;

  /// Removes all keys.
  void Clear();

  /// All live keys starting with `prefix`, sorted.
  std::vector<std::string> ScanPrefix(const std::string& prefix) const;

  /// Consistent-enough point-in-time copy of all live string keys (hashes
  /// are rendered as "field=value,..." lines) — the read model consumed by
  /// the UI layer. Sorted by key.
  std::vector<std::pair<std::string, std::string>> Snapshot() const;

  /// Physically removes expired entries; returns the count removed.
  size_t PurgeExpired();

  // -- Persistence --------------------------------------------------------

  /// Serialises all live entries (including TTL deadlines) to a
  /// length-prefixed binary-safe dump — the RDB-style persistence of the
  /// Redis substitute.
  std::string Dump() const;

  /// Restores a Dump() blob into this store (existing keys are cleared
  /// first). Entries whose TTL already passed are skipped.
  Status Restore(const std::string& blob);

 private:
  struct Entry {
    std::string value;
    std::map<std::string, std::string> hash;
    bool is_hash = false;
    TimeMicros expires_at = 0;  // 0 = no expiry
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
  };

  TimeMicros Now() const;
  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  bool IsExpired(const Entry& entry, TimeMicros now) const {
    return entry.expires_at != 0 && entry.expires_at <= now;
  }

  /// Cached members of marlin_kv_ops_total{op=...} plus the purge counter,
  /// fetched once at construction so op paths never touch the registry.
  struct Metrics {
    obs::Counter* set = nullptr;
    obs::Counter* get = nullptr;
    obs::Counter* hset = nullptr;
    obs::Counter* hget = nullptr;
    obs::Counter* hgetall = nullptr;
    obs::Counter* del = nullptr;
    obs::Counter* scan = nullptr;
    obs::Counter* snapshot = nullptr;
    obs::Counter* expired_purged = nullptr;
  };

  const Clock* clock_;
  WallClock default_clock_;
  Metrics metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace marlin

#endif  // MARLIN_KVSTORE_KVSTORE_H_

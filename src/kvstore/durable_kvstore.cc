#include "kvstore/durable_kvstore.h"

#include <utility>

#include "storage/record_io.h"
#include "storage/snapshot.h"

namespace marlin {
namespace {

// WAL op tags (first byte of the record value). The record key is the kv
// key, so a future keyed compaction could drop superseded ops without
// decoding the blob.
constexpr char kOpSet = 'S';
constexpr char kOpHSet = 'H';
constexpr char kOpDel = 'D';
constexpr char kOpExpire = 'E';

std::string SnapshotPath(const std::string& dir) { return dir + "/kv.snap"; }

}  // namespace

StatusOr<std::unique_ptr<DurableKvStore>> DurableKvStore::Open(
    const std::string& dir, const Options& options) {
  storage::PartitionLog::Options wal_options = options.wal;
  wal_options.metrics = options.metrics;
  wal_options.labels = {{"topic", "kvwal"}};
  auto wal = storage::PartitionLog::Open(dir + "/wal", wal_options);
  if (!wal.ok()) return wal.status();
  auto store =
      std::make_unique<DurableKvStore>(dir, options, std::move(*wal));
  Status recovered = store->Recover();
  if (!recovered.ok()) return recovered;
  return store;
}

DurableKvStore::DurableKvStore(std::string dir, const Options& options,
                               std::unique_ptr<storage::PartitionLog> wal)
    : dir_(std::move(dir)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : &default_clock_),
      wal_(std::move(wal)),
      kv_(clock_, options.num_shards, options.metrics) {
  obs::MetricsRegistry* registry = obs::MetricsRegistry::OrGlobal(
      options_.metrics);
  checkpoints_ = registry->GetCounter(
      "marlin_storage_kv_checkpoints_total",
      "Snapshot checkpoints taken by DurableKvStore");
  wal_records_ = registry->GetCounter(
      "marlin_storage_kv_wal_records_total",
      "Mutations journaled to the KvStore write-ahead log");
  replayed_records_ = registry->GetCounter(
      "marlin_storage_kv_wal_replayed_records_total",
      "WAL records replayed during DurableKvStore recovery");
  journal_failures_ = registry->GetCounter(
      "marlin_storage_kv_wal_journal_failures_total",
      "Mutations dropped because the WAL append failed");
}

Status DurableKvStore::Recover() {
  int64_t replay_from = wal_->start_offset();
  auto snapshot = storage::LoadSnapshot(SnapshotPath(dir_));
  if (snapshot.ok()) {
    storage::ByteReader reader(*snapshot);
    uint64_t covered = 0;
    std::string dump;
    if (!reader.GetU64(&covered) || !reader.GetBytes(&dump)) {
      return Status::Internal("kv snapshot blob is structurally invalid: " +
                              SnapshotPath(dir_));
    }
    Status restored = kv_.Restore(dump);
    if (!restored.ok()) return restored;
    // Records at [wal start, covered) are already folded into the snapshot;
    // replaying the overlap would be harmless (ops are deterministic and
    // last-writer-wins) but defeats the tail-only recovery bound.
    if (static_cast<int64_t>(covered) > replay_from) {
      replay_from = static_cast<int64_t>(covered);
    }
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }

  while (replay_from < wal_->end_offset()) {
    auto batch = wal_->Read(replay_from, 1024);
    if (!batch.ok()) return batch.status();
    if (batch->empty()) break;
    for (const storage::LogRecord& record : *batch) {
      Status applied = Apply(record);
      if (!applied.ok()) return applied;
      ++replayed_;
      replay_from = record.offset + 1;
    }
  }
  replayed_records_->Increment(replayed_);
  return Status::Ok();
}

Status DurableKvStore::Apply(const storage::LogRecord& record) {
  if (record.value.empty()) {
    return Status::Internal("empty kv WAL op at offset " +
                            std::to_string(record.offset));
  }
  char op = record.value[0];
  storage::ByteReader reader(
      std::string_view(record.value).substr(1));
  switch (op) {
    case kOpSet: {
      std::string value;
      if (!reader.GetBytes(&value)) break;
      kv_.Set(record.key, std::move(value));
      return Status::Ok();
    }
    case kOpHSet: {
      std::string field;
      std::string value;
      if (!reader.GetBytes(&field) || !reader.GetBytes(&value)) break;
      // A type-mismatch error here means the mismatch also happened at
      // journal time and was reported then; replay keeps going so the rest
      // of the tail is not lost to one rejected op.
      (void)kv_.HSet(record.key, field, std::move(value));
      return Status::Ok();
    }
    case kOpDel: {
      (void)kv_.Del(record.key);
      return Status::Ok();
    }
    case kOpExpire: {
      // The journal holds the *absolute* deadline — replaying "expire in
      // 5s" minutes after the crash would resurrect the key; replaying
      // "expire at T" re-derives the remaining (possibly negative) TTL.
      uint64_t deadline = 0;
      if (!reader.GetU64(&deadline)) break;
      (void)kv_.Expire(record.key,
                       static_cast<TimeMicros>(deadline) - Now());
      return Status::Ok();
    }
    default:
      break;
  }
  return Status::Internal("malformed kv WAL op '" + std::string(1, op) +
                          "' at offset " + std::to_string(record.offset));
}

Status DurableKvStore::Journal(const std::string& key, std::string op_blob) {
  auto offset = wal_->Append(Now(), key, std::move(op_blob));
  if (!offset.ok()) {
    journal_failures_->Increment();
    return offset.status();
  }
  wal_records_->Increment();
  return Status::Ok();
}

// Each mutator journals and applies under the key's stripe lock: a key's
// WAL order must equal its apply order, or recovery could replay writes in
// an order no reader ever observed.

Status DurableKvStore::Set(const std::string& key, std::string value) {
  std::shared_lock<std::shared_mutex> lock(checkpoint_mu_);
  std::string op(1, kOpSet);
  storage::PutBytes(&op, value);
  std::lock_guard<std::mutex> key_lock(KeyMutex(key));
  Status journaled = Journal(key, std::move(op));
  if (!journaled.ok()) return journaled;
  kv_.Set(key, std::move(value));
  return Status::Ok();
}

Status DurableKvStore::HSet(const std::string& key, const std::string& field,
                            std::string value) {
  std::shared_lock<std::shared_mutex> lock(checkpoint_mu_);
  std::string op(1, kOpHSet);
  storage::PutBytes(&op, field);
  storage::PutBytes(&op, value);
  std::lock_guard<std::mutex> key_lock(KeyMutex(key));
  Status journaled = Journal(key, std::move(op));
  if (!journaled.ok()) return journaled;
  return kv_.HSet(key, field, std::move(value));
}

bool DurableKvStore::Del(const std::string& key) {
  std::shared_lock<std::shared_mutex> lock(checkpoint_mu_);
  std::lock_guard<std::mutex> key_lock(KeyMutex(key));
  if (!Journal(key, std::string(1, kOpDel)).ok()) return false;
  return kv_.Del(key);
}

bool DurableKvStore::Expire(const std::string& key, TimeMicros ttl) {
  std::shared_lock<std::shared_mutex> lock(checkpoint_mu_);
  std::string op(1, kOpExpire);
  storage::PutU64(&op, static_cast<uint64_t>(Now() + ttl));
  std::lock_guard<std::mutex> key_lock(KeyMutex(key));
  if (!Journal(key, std::move(op)).ok()) return false;
  return kv_.Expire(key, ttl);
}

Status DurableKvStore::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(checkpoint_mu_);
  // Capture the WAL end *before* dumping: any op at an offset below this
  // mark is inside the dump, so restoring the snapshot and replaying from
  // `covered` loses nothing (and replays nothing twice).
  Status flushed = wal_->Flush();
  if (!flushed.ok()) return flushed;
  int64_t covered = wal_->end_offset();
  std::string blob;
  storage::PutU64(&blob, static_cast<uint64_t>(covered));
  storage::PutBytes(&blob, kv_.Dump());
  Status saved = storage::SaveSnapshot(SnapshotPath(dir_), blob);
  if (!saved.ok()) return saved;
  wal_->CompactPrefix(covered);
  checkpoints_->Increment();
  return Status::Ok();
}

}  // namespace marlin

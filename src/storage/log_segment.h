#ifndef MARLIN_STORAGE_LOG_SEGMENT_H_
#define MARLIN_STORAGE_LOG_SEGMENT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storage/record_io.h"
#include "util/status.h"

namespace marlin {
namespace storage {

/// One append-only segment file of a partition log: a run of CRC-framed
/// records covering the dense offset range [base_offset, end_offset).
///
/// Alongside the record stream the segment keeps an in-memory *sparse*
/// offset index — one (offset, file position) entry roughly every
/// `index_interval_bytes` of file — so a read seeks near its target and
/// scans at most one interval of records instead of the whole file. The
/// index is rebuilt from the record stream on open (it is an optimization,
/// never a source of truth), which is also what makes recovery trivially
/// safe: scan, truncate the torn tail, re-derive everything else.
///
/// Not thread-safe; PartitionLog serializes access.
class LogSegment {
 public:
  struct Options {
    /// Approximate bytes between sparse index entries.
    size_t index_interval_bytes = 4096;
  };

  struct IndexEntry {
    int64_t offset = 0;     // first offset at/after this file position
    uint64_t file_pos = 0;  // byte position of that record's frame
  };

  /// What Open() found on disk; surfaced into the recovery metrics.
  struct RecoveryStats {
    int64_t records = 0;
    uint64_t truncated_bytes = 0;  // torn/corrupt tail removed
  };

  /// Creates a new, empty segment file whose first record will carry
  /// `base_offset`. Fails if the file cannot be created.
  static StatusOr<std::unique_ptr<LogSegment>> Create(const std::string& path,
                                                      int64_t base_offset,
                                                      const Options& options);

  /// Opens an existing segment: scans every frame, rebuilds the sparse
  /// index, and derives the valid record range. The records must be dense
  /// from `base_offset`. When `writable`, also truncates the file to the
  /// last valid CRC record and positions the writer at the end; when not
  /// (a sealed mid-log segment), the file is left untouched — any corrupt
  /// tail stays on disk for inspection and reads simply stop before it.
  static StatusOr<std::unique_ptr<LogSegment>> Open(const std::string& path,
                                                    int64_t base_offset,
                                                    const Options& options,
                                                    RecoveryStats* stats,
                                                    bool writable = true);

  ~LogSegment();
  LogSegment(const LogSegment&) = delete;
  LogSegment& operator=(const LogSegment&) = delete;

  /// Appends one record; `record.offset` must equal end_offset(). A short
  /// write seals the segment (further appends fail; the partial frame is
  /// truncated by the next Open()).
  Status Append(const LogRecord& record);

  /// Makes a sealed segment the append target again: truncates the file to
  /// the valid record bytes (dropping any ignored corrupt tail) and opens
  /// the write handle. No-op when already writable.
  Status PrepareForAppend();

  /// Drops every record at or past `offset` (the replication reconcile
  /// path: a divergent uncommitted suffix is cut before re-appending the
  /// leader's version). `offset` must lie in [base_offset, end_offset].
  /// Leaves the segment writable.
  Status TruncateTo(int64_t offset);

  /// Drains the stdio buffer to the OS; when `sync` also fsyncs to media.
  Status Flush(bool sync);

  /// Reads up to `max_records` records starting at `from_offset`
  /// (inclusive), seeking via the sparse index. Offsets below base or at or
  /// past the end yield an empty batch.
  StatusOr<std::vector<LogRecord>> Read(int64_t from_offset, int max_records);

  /// Closes the write handle (further Appends fail). Idempotent.
  void Close();

  int64_t base_offset() const { return base_offset_; }
  /// Next offset this segment would assign (base + record count).
  int64_t end_offset() const { return next_offset_; }
  uint64_t size_bytes() const { return bytes_; }
  const std::string& path() const { return path_; }
  const std::vector<IndexEntry>& sparse_index() const { return index_; }

  /// Public only so the factories can make_unique; use Create()/Open().
  LogSegment(std::string path, int64_t base_offset, const Options& options)
      : path_(std::move(path)),
        options_(options),
        base_offset_(base_offset),
        next_offset_(base_offset) {}

 private:
  const std::string path_;
  const Options options_;
  const int64_t base_offset_;
  int64_t next_offset_;
  uint64_t bytes_ = 0;
  /// File bytes already covered by an index entry (interval accumulator).
  uint64_t last_indexed_pos_ = 0;
  std::vector<IndexEntry> index_;
  std::FILE* file_ = nullptr;  // append handle; reads open their own
};

}  // namespace storage
}  // namespace marlin

#endif  // MARLIN_STORAGE_LOG_SEGMENT_H_

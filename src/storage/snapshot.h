#ifndef MARLIN_STORAGE_SNAPSHOT_H_
#define MARLIN_STORAGE_SNAPSHOT_H_

#include <string>

#include "util/status.h"

namespace marlin {
namespace storage {

/// Atomic, CRC-guarded snapshot files.
///
/// On disk: `"MRLSNAP1"` magic, then [u32 crc32c(blob)][u32 len][blob].
/// SaveSnapshot writes a temporary sibling, fsyncs it, and renames it over
/// `path` — so a crash at any instant leaves either the previous snapshot
/// or the new one, never a torn hybrid; LoadSnapshot verifies magic and CRC
/// and reports anything else as corruption (callers fall back to replaying
/// more log, never to trusting half a snapshot).

Status SaveSnapshot(const std::string& path, const std::string& blob);

/// NotFound when no snapshot exists; DataLoss-style Internal error when the
/// file exists but fails validation.
StatusOr<std::string> LoadSnapshot(const std::string& path);

}  // namespace storage
}  // namespace marlin

#endif  // MARLIN_STORAGE_SNAPSHOT_H_

#include "storage/log_segment.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/file.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace marlin {
namespace storage {
namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

StatusOr<std::unique_ptr<LogSegment>> LogSegment::Create(
    const std::string& path, int64_t base_offset, const Options& options) {
  auto segment = std::make_unique<LogSegment>(path, base_offset, options);
  segment->file_ = std::fopen(path.c_str(), "wb");
  if (segment->file_ == nullptr) return IoError("create segment", path);
  return segment;
}

StatusOr<std::unique_ptr<LogSegment>> LogSegment::Open(
    const std::string& path, int64_t base_offset, const Options& options,
    RecoveryStats* stats, bool writable) {
  StatusOr<std::string> data = ReadFile(path);
  if (!data.ok()) return data.status();

  auto segment = std::make_unique<LogSegment>(path, base_offset, options);
  RecordScanner scanner(*data);
  LogRecord record;
  while (scanner.Next(&record)) {
    if (record.offset != segment->next_offset_) {
      // A CRC-valid record with the wrong offset means the stream diverged
      // (e.g. a segment file renamed by hand). Treat everything from here
      // on as corrupt: keep the dense prefix, drop the rest.
      break;
    }
    if (segment->index_.empty() ||
        segment->bytes_ - segment->last_indexed_pos_ >=
            options.index_interval_bytes) {
      segment->index_.push_back({record.offset, segment->bytes_});
      segment->last_indexed_pos_ = segment->bytes_;
    }
    segment->bytes_ = scanner.valid_bytes();
    ++segment->next_offset_;
  }
  if (stats != nullptr) {
    stats->records = segment->next_offset_ - segment->base_offset_;
    stats->truncated_bytes = data->size() - segment->bytes_;
  }
  if (writable) {
    // Torn or corrupt tail (a kill -9 mid-write): truncate to the last
    // valid CRC record so the next append continues a clean stream.
    Status prepared = segment->PrepareForAppend();
    if (!prepared.ok()) return prepared;
  }
  return segment;
}

LogSegment::~LogSegment() { Close(); }

void LogSegment::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status LogSegment::Append(const LogRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("segment '" + path_ + "' is closed");
  }
  if (record.offset != next_offset_) {
    return Status::InvalidArgument(
        "segment append offset " + std::to_string(record.offset) +
        " != next offset " + std::to_string(next_offset_));
  }
  if (record.key.size() + record.value.size() + 64 > kMaxRecordBytes) {
    return Status::InvalidArgument("record exceeds kMaxRecordBytes");
  }
  std::string frame;
  EncodeRecord(record, &frame);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    // A partial frame may now sit at the tail; appending more through this
    // handle would interleave with it. Seal the segment — the next Open()
    // truncates the torn bytes.
    Status status = IoError("append to segment", path_);
    Close();
    return status;
  }
  // Index only once the bytes are in the stream: an entry pointing at a
  // file position holding no record would misdirect every later read.
  if (index_.empty() ||
      bytes_ - last_indexed_pos_ >= options_.index_interval_bytes) {
    index_.push_back({record.offset, bytes_});
    last_indexed_pos_ = bytes_;
  }
  bytes_ += frame.size();
  ++next_offset_;
  return Status::Ok();
}

Status LogSegment::PrepareForAppend() {
  if (file_ != nullptr) return Status::Ok();
  std::error_code ec;
  const uintmax_t file_bytes = std::filesystem::file_size(path_, ec);
  if (ec) {
    return Status::Internal("stat segment '" + path_ + "': " + ec.message());
  }
  if (file_bytes > bytes_) {
    std::filesystem::resize_file(path_, bytes_, ec);
    if (ec) {
      return Status::Internal("truncate segment '" + path_ +
                              "': " + ec.message());
    }
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) return IoError("reopen segment", path_);
  return Status::Ok();
}

Status LogSegment::TruncateTo(int64_t offset) {
  if (offset < base_offset_ || offset > next_offset_) {
    return Status::InvalidArgument(
        "truncate offset " + std::to_string(offset) + " outside segment [" +
        std::to_string(base_offset_) + ", " + std::to_string(next_offset_) +
        "]");
  }
  if (offset == next_offset_) return PrepareForAppend();
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return IoError("flush segment", path_);
  }
  // Locate the cut: seek near it via the sparse index, then walk frames.
  uint64_t pos = 0;
  for (const IndexEntry& entry : index_) {
    if (entry.offset > offset) break;
    pos = entry.file_pos;
  }
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) return IoError("open segment for read", path_);
  std::string buffer;
  buffer.resize(static_cast<size_t>(bytes_ - pos));
  size_t got = 0;
  if (std::fseek(in, static_cast<long>(pos), SEEK_SET) == 0) {
    got = std::fread(buffer.data(), 1, buffer.size(), in);
  }
  std::fclose(in);
  buffer.resize(got);
  RecordScanner scanner(buffer);
  LogRecord record;
  size_t keep = 0;
  while (scanner.Next(&record)) {
    if (record.offset >= offset) break;
    keep = scanner.valid_bytes();
  }
  const uint64_t cut = pos + keep;
  // The write handle keeps its own stdio position at the old end (Create
  // opens "wb", which is positional, not O_APPEND) — writing through it
  // after the resize would leave a zero-filled hole at the cut. Drop it and
  // reopen in append mode so the next write lands exactly at the new end.
  Close();
  std::error_code ec;
  std::filesystem::resize_file(path_, cut, ec);
  if (ec) {
    return Status::Internal("truncate segment '" + path_ +
                            "': " + ec.message());
  }
  bytes_ = cut;
  next_offset_ = offset;
  while (!index_.empty() && index_.back().offset >= offset) index_.pop_back();
  last_indexed_pos_ = index_.empty() ? 0 : index_.back().file_pos;
  return PrepareForAppend();
}

Status LogSegment::Flush(bool sync) {
  if (file_ == nullptr) return Status::Ok();  // sealed segments are durable
  if (std::fflush(file_) != 0) return IoError("flush segment", path_);
#if defined(__unix__) || defined(__APPLE__)
  if (sync && ::fsync(::fileno(file_)) != 0) {
    return IoError("fsync segment", path_);
  }
#else
  (void)sync;
#endif
  return Status::Ok();
}

StatusOr<std::vector<LogRecord>> LogSegment::Read(int64_t from_offset,
                                                  int max_records) {
  std::vector<LogRecord> out;
  if (max_records <= 0 || from_offset >= next_offset_) return out;
  if (from_offset < base_offset_) from_offset = base_offset_;
  // The write handle buffers in stdio; make everything visible to the read
  // handle before seeking into the file.
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return IoError("flush segment", path_);
  }
  // Largest sparse-index entry at or before the target offset.
  uint64_t pos = 0;
  for (const IndexEntry& entry : index_) {
    if (entry.offset > from_offset) break;
    pos = entry.file_pos;
  }
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) return IoError("open segment for read", path_);
  std::string buffer;
  buffer.resize(static_cast<size_t>(bytes_ - pos));
  size_t got = 0;
  if (std::fseek(in, static_cast<long>(pos), SEEK_SET) == 0) {
    got = std::fread(buffer.data(), 1, buffer.size(), in);
  }
  std::fclose(in);
  buffer.resize(got);
  RecordScanner scanner(buffer);
  LogRecord record;
  while (static_cast<int>(out.size()) < max_records && scanner.Next(&record)) {
    if (record.offset < from_offset) continue;  // inside the index interval
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace storage
}  // namespace marlin

#include "storage/replicated_partition.h"

#include <algorithm>

#include "chk/chk.h"

namespace marlin {
namespace storage {

bool ReplicatedPartition::BecomeLeader(uint64_t epoch,
                                       std::vector<uint32_t> followers) {
  if (epoch < epoch_) return false;
  // Same-epoch transition is idempotent; a new epoch resets follower
  // progress — a rejoining follower (possibly holding a divergent
  // uncommitted suffix) must re-earn credit through this epoch's
  // replicate/ack round-trips.
  if (epoch > epoch_ || !is_leader_) {
    acked_.clear();
    shipped_.clear();
  }
  epoch_ = epoch;
  is_leader_ = true;
  leader_ = 0;
  verified_end_ = 0;  // follower-side state; meaningless while leading
  for (const uint32_t follower : followers) {
    acked_.emplace(follower, 0);  // keep existing progress on refresh
    shipped_.emplace(follower, 0);
  }
  // Followers that left the replica set stop counting toward quorum.
  for (auto it = acked_.begin(); it != acked_.end();) {
    const bool still_replica =
        std::find(followers.begin(), followers.end(), it->first) !=
        followers.end();
    if (still_replica) {
      ++it;
    } else {
      shipped_.erase(it->first);
      it = acked_.erase(it);
    }
  }
  RecomputeCommitted();
  return true;
}

bool ReplicatedPartition::BecomeFollower(uint64_t epoch, uint32_t leader) {
  if (epoch < epoch_) return false;
  // A new epoch (or a demotion) may have installed a leader whose log
  // diverges from ours above the committed point; the proven-equal prefix
  // must be re-established from scratch. A same-epoch follower refresh
  // keeps it — the leader did not change.
  if (epoch > epoch_ || is_leader_) verified_end_ = 0;
  epoch_ = epoch;
  is_leader_ = false;
  leader_ = leader;
  acked_.clear();
  shipped_.clear();
  return true;
}

void ReplicatedPartition::SetLocalEnd(int64_t end) {
  if (end > local_end_) local_end_ = end;
  if (is_leader_) RecomputeCommitted();
}

std::vector<std::pair<uint32_t, int64_t>>
ReplicatedPartition::PendingReplication() const {
  std::vector<std::pair<uint32_t, int64_t>> pending;
  if (!is_leader_) return pending;
  for (const auto& [follower, acked_end] : acked_) {
    if (acked_end < local_end_) pending.emplace_back(follower, acked_end);
  }
  return pending;
}

void ReplicatedPartition::MarkShipped(uint32_t follower, uint64_t epoch,
                                      int64_t shipped_end) {
  if (!is_leader_ || epoch != epoch_) return;  // role moved since the read
  auto it = shipped_.find(follower);
  if (it == shipped_.end()) return;  // left the replica set
  it->second = std::max(it->second, std::min(shipped_end, local_end_));
}

bool ReplicatedPartition::OnAck(uint32_t follower, uint64_t epoch,
                                int64_t acked_end) {
  if (!is_leader_ || epoch != epoch_) return false;  // stale or misrouted
  auto it = acked_.find(follower);
  if (it == acked_.end()) return false;  // not in this epoch's replica set
  // Credit only offsets this leader shipped to this follower this epoch
  // (Raft match-index rule). A rejoined replica with a divergent
  // uncommitted suffix acks its own log end; counting that toward quorum
  // would "commit" offsets where it holds different bytes. Clamping to the
  // shipped mark forces the overlap through replicate round-trips, which
  // the follower verifies (and truncates on mismatch) before acking.
  auto shipped = shipped_.find(follower);
  const int64_t ceiling = shipped == shipped_.end() ? 0 : shipped->second;
  const int64_t credited = std::min(acked_end, ceiling);
  if (credited > it->second) {
    it->second = credited;
    RecomputeCommitted();
  }
  return true;
}

bool ReplicatedPartition::AcceptReplicate(uint32_t from, uint64_t epoch) const {
  // Accept only the current epoch's leader. A higher epoch means this node
  // missed the election; the caller refreshes roles from the ring first,
  // so by the time frames arrive the epochs agree.
  return !is_leader_ && epoch == epoch_ && from == leader_;
}

int64_t ReplicatedPartition::ReplicationLag() const {
  if (!is_leader_ || acked_.empty()) return 0;
  int64_t min_acked = local_end_;
  for (const auto& [follower, acked_end] : acked_) {
    min_acked = std::min(min_acked, acked_end);
  }
  return local_end_ - min_acked;
}

void ReplicatedPartition::RecomputeCommitted() {
  if (!is_leader_) return;
  // k-th highest end across {local} ∪ acked, k = majority of the replica
  // set: the highest offset a quorum provably has.
  std::vector<int64_t> ends;
  ends.reserve(acked_.size() + 1);
  ends.push_back(local_end_);
  for (const auto& [follower, acked_end] : acked_) ends.push_back(acked_end);
  const size_t quorum = ends.size() / 2 + 1;
  std::sort(ends.begin(), ends.end(), std::greater<int64_t>());
  const int64_t quorum_end = ends[quorum - 1];
  if (quorum_end > committed_) committed_ = quorum_end;
  // Follower credit is clamped to the shipped mark, which is itself clamped
  // to the local end, so the commit point can never run ahead of the
  // leader's own log — the property that makes "promote any quorum member"
  // a safe failover rule.
  MARLIN_CHK_INVARIANT(committed_ <= local_end_,
                       "committed offset ran ahead of the leader's log");
}

}  // namespace storage
}  // namespace marlin

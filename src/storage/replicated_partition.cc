#include "storage/replicated_partition.h"

#include <algorithm>

#include "chk/chk.h"

namespace marlin {
namespace storage {

bool ReplicatedPartition::BecomeLeader(uint64_t epoch,
                                       std::vector<uint32_t> followers) {
  if (epoch < epoch_) return false;
  // Same-epoch transition is idempotent; a new epoch resets follower
  // progress (a rejoining follower re-announces its end with its first
  // ack — assuming its old progress would over-advance the commit point).
  if (epoch > epoch_ || !is_leader_) acked_.clear();
  epoch_ = epoch;
  is_leader_ = true;
  leader_ = 0;
  for (const uint32_t follower : followers) {
    acked_.emplace(follower, 0);  // keep existing progress on refresh
  }
  // Followers that left the replica set stop counting toward quorum.
  for (auto it = acked_.begin(); it != acked_.end();) {
    const bool still_replica =
        std::find(followers.begin(), followers.end(), it->first) !=
        followers.end();
    it = still_replica ? std::next(it) : acked_.erase(it);
  }
  RecomputeCommitted();
  return true;
}

bool ReplicatedPartition::BecomeFollower(uint64_t epoch, uint32_t leader) {
  if (epoch < epoch_) return false;
  epoch_ = epoch;
  is_leader_ = false;
  leader_ = leader;
  acked_.clear();
  return true;
}

void ReplicatedPartition::SetLocalEnd(int64_t end) {
  if (end > local_end_) local_end_ = end;
  if (is_leader_) RecomputeCommitted();
}

std::vector<std::pair<uint32_t, int64_t>>
ReplicatedPartition::PendingReplication() const {
  std::vector<std::pair<uint32_t, int64_t>> pending;
  if (!is_leader_) return pending;
  for (const auto& [follower, acked_end] : acked_) {
    if (acked_end < local_end_) pending.emplace_back(follower, acked_end);
  }
  return pending;
}

bool ReplicatedPartition::OnAck(uint32_t follower, uint64_t epoch,
                                int64_t acked_end) {
  if (!is_leader_ || epoch != epoch_) return false;  // stale or misrouted
  auto it = acked_.find(follower);
  if (it == acked_.end()) return false;  // not in this epoch's replica set
  if (acked_end > it->second) {
    it->second = std::min(acked_end, local_end_);
    RecomputeCommitted();
  }
  return true;
}

bool ReplicatedPartition::AcceptReplicate(uint32_t from, uint64_t epoch) const {
  // Accept only the current epoch's leader. A higher epoch means this node
  // missed the election; the caller refreshes roles from the ring first,
  // so by the time frames arrive the epochs agree.
  return !is_leader_ && epoch == epoch_ && from == leader_;
}

int64_t ReplicatedPartition::ReplicationLag() const {
  if (!is_leader_ || acked_.empty()) return 0;
  int64_t min_acked = local_end_;
  for (const auto& [follower, acked_end] : acked_) {
    min_acked = std::min(min_acked, acked_end);
  }
  return local_end_ - min_acked;
}

void ReplicatedPartition::RecomputeCommitted() {
  if (!is_leader_) return;
  // k-th highest end across {local} ∪ acked, k = majority of the replica
  // set: the highest offset a quorum provably has.
  std::vector<int64_t> ends;
  ends.reserve(acked_.size() + 1);
  ends.push_back(local_end_);
  for (const auto& [follower, acked_end] : acked_) ends.push_back(acked_end);
  const size_t quorum = ends.size() / 2 + 1;
  std::sort(ends.begin(), ends.end(), std::greater<int64_t>());
  const int64_t quorum_end = ends[quorum - 1];
  if (quorum_end > committed_) committed_ = quorum_end;
  // Follower acks are clamped to the local end, so the commit point can
  // never run ahead of the leader's own log — the property that makes
  // "promote any quorum member" a safe failover rule.
  MARLIN_CHK_INVARIANT(committed_ <= local_end_,
                       "committed offset ran ahead of the leader's log");
}

}  // namespace storage
}  // namespace marlin

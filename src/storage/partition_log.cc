#include "storage/partition_log.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

namespace marlin {
namespace storage {
namespace {

constexpr const char* kSegmentSuffix = ".seg";

std::string SegmentPath(const std::string& dir, int64_t base_offset) {
  char name[32];
  std::snprintf(name, sizeof(name), "%020" PRId64, base_offset);
  return dir + "/" + name + kSegmentSuffix;
}

/// Parses "<20 digits>.seg" into its base offset; false for foreign files.
bool ParseSegmentName(const std::string& name, int64_t* base_offset) {
  const size_t suffix_len = std::string(kSegmentSuffix).size();
  if (name.size() <= suffix_len ||
      name.compare(name.size() - suffix_len, suffix_len, kSegmentSuffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(0, name.size() - suffix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *base_offset = std::strtoll(digits.c_str(), nullptr, 10);
  return true;
}

}  // namespace

PartitionLog::PartitionLog(std::string dir, const Options& options)
    : dir_(std::move(dir)), options_(options) {
  obs::MetricsRegistry* registry =
      obs::MetricsRegistry::OrGlobal(options_.metrics);
  metrics_.appended = registry->GetCounter(
      "marlin_storage_append_records_total",
      "Records appended to durable partition logs", options_.labels);
  metrics_.fsyncs = registry->GetCounter(
      "marlin_storage_fsyncs_total", "fsync calls issued by partition logs",
      options_.labels);
  metrics_.fsync_latency = registry->GetHistogram(
      "marlin_storage_fsync_latency_nanos",
      "Latency of segment fsync calls (nanoseconds)", options_.labels);
  metrics_.segments_created = registry->GetCounter(
      "marlin_storage_segments_created_total",
      "Segment files created (initial + rolls)", options_.labels);
  metrics_.segments_compacted = registry->GetCounter(
      "marlin_storage_segments_compacted_total",
      "Segment files deleted by prefix compaction", options_.labels);
  metrics_.recovered = registry->GetCounter(
      "marlin_storage_recovered_records_total",
      "Records recovered from segments at open", options_.labels);
  metrics_.truncated_bytes = registry->GetCounter(
      "marlin_storage_truncated_bytes_total",
      "Torn-tail bytes truncated during recovery", options_.labels);
  metrics_.quarantined = registry->GetCounter(
      "marlin_storage_quarantined_segments_total",
      "Corrupt-suffix segments renamed aside during recovery",
      options_.labels);
}

StatusOr<std::unique_ptr<PartitionLog>> PartitionLog::Open(
    const std::string& dir, const Options& options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("create log dir '" + dir + "': " + ec.message());
  }
  auto log = std::make_unique<PartitionLog>(dir, options);
  std::lock_guard<std::mutex> lock(log->mu_);
  Status status = log->RecoverLocked();
  if (!status.ok()) return status;
  return log;
}

Status PartitionLog::RecoverLocked() {
  std::vector<int64_t> bases;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    int64_t base = 0;
    if (ParseSegmentName(entry.path().filename().string(), &base)) {
      bases.push_back(base);
    }
  }
  if (ec) {
    return Status::Internal("list log dir '" + dir_ + "': " + ec.message());
  }
  std::sort(bases.begin(), bases.end());

  LogSegment::Options segment_options;
  segment_options.index_interval_bytes = options_.index_interval_bytes;
  int64_t expected_base = bases.empty() ? 0 : bases.front();
  for (size_t i = 0; i < bases.size(); ++i) {
    const int64_t base = bases[i];
    if (base != expected_base) {
      // A sealed segment lost records to corruption (or a file vanished):
      // the offset stream has a hole, so nothing past it can be served.
      if (!options_.quarantine_corrupt_suffix) {
        return Status::Internal(
            "log dir '" + dir_ + "' has an offset gap: segment " +
            std::to_string(base) + " follows end " +
            std::to_string(expected_base) +
            " — a sealed segment is corrupt or missing; inspect the files, "
            "or set Options::quarantine_corrupt_suffix to move the "
            "unreadable suffix aside and recover the prefix");
      }
      size_t quarantined = 0;
      for (size_t j = i; j < bases.size(); ++j) {
        const std::string path = SegmentPath(dir_, bases[j]);
        std::filesystem::rename(path, path + ".quarantined", ec);
        if (ec) {
          return Status::Internal("quarantine segment '" + path +
                                  "': " + ec.message());
        }
        ++quarantined;
      }
      quarantined_segments_ = quarantined;
      metrics_.quarantined->Increment(quarantined);
      break;
    }
    LogSegment::RecoveryStats stats;
    // Only the final segment takes appends; sealed ones open read-only so
    // a corrupt region's bytes stay on disk untouched for inspection.
    StatusOr<std::unique_ptr<LogSegment>> segment = LogSegment::Open(
        SegmentPath(dir_, base), base, segment_options, &stats,
        /*writable=*/i + 1 == bases.size());
    if (!segment.ok()) return segment.status();
    recovered_records_ += stats.records;
    truncated_bytes_ += stats.truncated_bytes;
    expected_base = (*segment)->end_offset();
    segments_.emplace(base, std::move(*segment));
  }
  if (recovered_records_ > 0) {
    metrics_.recovered->Increment(static_cast<uint64_t>(recovered_records_));
  }
  if (truncated_bytes_ > 0) {
    metrics_.truncated_bytes->Increment(truncated_bytes_);
  }
  if (segments_.empty()) {
    StatusOr<std::unique_ptr<LogSegment>> segment =
        LogSegment::Create(SegmentPath(dir_, 0), 0, segment_options);
    if (!segment.ok()) return segment.status();
    metrics_.segments_created->Increment();
    segments_.emplace(0, std::move(*segment));
    return Status::Ok();
  }
  // Quarantining may have left a sealed segment as the tail: truncate its
  // ignored corrupt bytes and reopen it as the append target.
  return ActiveLocked()->PrepareForAppend();
}

Status PartitionLog::RollLocked() {
  LogSegment* active = ActiveLocked();
  Status status = active->Flush(/*sync=*/true);
  if (!status.ok()) return status;
  active->Close();
  unsynced_bytes_ = 0;
  const int64_t base = active->end_offset();
  LogSegment::Options segment_options;
  segment_options.index_interval_bytes = options_.index_interval_bytes;
  StatusOr<std::unique_ptr<LogSegment>> segment =
      LogSegment::Create(SegmentPath(dir_, base), base, segment_options);
  if (!segment.ok()) return segment.status();
  metrics_.segments_created->Increment();
  segments_.emplace(base, std::move(*segment));
  return Status::Ok();
}

Status PartitionLog::AppendLocked(const LogRecord& record) {
  LogSegment* active = ActiveLocked();
  if (active->size_bytes() >= options_.segment_bytes) {
    Status status = RollLocked();
    if (!status.ok()) return status;
    active = ActiveLocked();
  }
  const uint64_t before = active->size_bytes();
  Status status = active->Append(record);
  if (!status.ok()) return status;
  unsynced_bytes_ += active->size_bytes() - before;
  metrics_.appended->Increment();
  const bool sync_now =
      options_.sync == SyncMode::kAlways ||
      (options_.sync == SyncMode::kBatch &&
       unsynced_bytes_ >= options_.sync_batch_bytes);
  if (sync_now) {
    obs::ScopedTimer timer(metrics_.fsync_latency);
    status = active->Flush(/*sync=*/true);
    if (!status.ok()) return status;
    metrics_.fsyncs->Increment();
    unsynced_bytes_ = 0;
  }
  return Status::Ok();
}

StatusOr<int64_t> PartitionLog::Append(TimeMicros timestamp,
                                       std::string_view key,
                                       std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  LogRecord record;
  record.offset = ActiveLocked()->end_offset();
  record.timestamp = timestamp;
  record.key.assign(key);
  record.value.assign(value);
  Status status = AppendLocked(record);
  if (!status.ok()) return status;
  return record.offset;
}

Status PartitionLog::AppendRecord(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.offset != ActiveLocked()->end_offset()) {
    return Status::InvalidArgument(
        "append offset " + std::to_string(record.offset) + " != log end " +
        std::to_string(ActiveLocked()->end_offset()));
  }
  return AppendLocked(record);
}

StatusOr<std::vector<LogRecord>> PartitionLog::Read(int64_t from_offset,
                                                    int max_records) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out;
  if (segments_.empty() || max_records <= 0) return out;
  if (from_offset < segments_.begin()->first) {
    from_offset = segments_.begin()->first;
  }
  // Start at the segment covering from_offset: the last one whose base is
  // at or before it.
  auto it = segments_.upper_bound(from_offset);
  if (it != segments_.begin()) --it;
  for (; it != segments_.end() && static_cast<int>(out.size()) < max_records;
       ++it) {
    StatusOr<std::vector<LogRecord>> batch = it->second->Read(
        from_offset, max_records - static_cast<int>(out.size()));
    if (!batch.ok()) return batch.status();
    for (LogRecord& record : *batch) {
      from_offset = record.offset + 1;
      out.push_back(std::move(record));
    }
  }
  return out;
}

Status PartitionLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (segments_.empty()) return Status::Ok();
  obs::ScopedTimer timer(metrics_.fsync_latency);
  Status status = ActiveLocked()->Flush(/*sync=*/true);
  if (!status.ok()) return status;
  metrics_.fsyncs->Increment();
  unsynced_bytes_ = 0;
  return Status::Ok();
}

Status PartitionLog::TruncateSuffix(int64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (segments_.empty()) return Status::Ok();
  if (offset >= segments_.rbegin()->second->end_offset()) return Status::Ok();
  if (offset < segments_.begin()->first) {
    return Status::InvalidArgument(
        "truncate offset " + std::to_string(offset) + " below start offset " +
        std::to_string(segments_.begin()->first));
  }
  // Whole segments at or past the cut are deleted outright...
  while (segments_.size() > 1 && segments_.rbegin()->first >= offset) {
    auto last = std::prev(segments_.end());
    last->second->Close();
    std::error_code ec;
    std::filesystem::remove(last->second->path(), ec);
    if (ec) {
      return Status::Internal("remove segment '" + last->second->path() +
                              "': " + ec.message());
    }
    segments_.erase(last);
  }
  // ...then the cut lands inside (or at the end of) the remaining tail
  // segment, which TruncateTo leaves open for appends.
  unsynced_bytes_ = 0;  // the truncated bytes can no longer need syncing
  return ActiveLocked()->TruncateTo(offset);
}

size_t PartitionLog::CompactPrefix(int64_t horizon) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  // Keep at least the active (last) segment, and only drop a segment when
  // the *next* segment's base is within the horizon too — i.e. every record
  // in it is below the horizon.
  while (segments_.size() > 1) {
    auto first = segments_.begin();
    auto second = std::next(first);
    if (second->first > horizon) break;
    std::error_code ec;
    std::filesystem::remove(first->second->path(), ec);
    if (ec) break;  // leave the segment; compaction retries next cycle
    segments_.erase(first);
    ++removed;
  }
  if (removed > 0) metrics_.segments_compacted->Increment(removed);
  return removed;
}

int64_t PartitionLog::start_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.empty() ? 0 : segments_.begin()->first;
}

int64_t PartitionLog::end_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.empty() ? 0 : segments_.rbegin()->second->end_offset();
}

size_t PartitionLog::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

}  // namespace storage
}  // namespace marlin

#ifndef MARLIN_STORAGE_LOG_STORAGE_H_
#define MARLIN_STORAGE_LOG_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/partition_log.h"
#include "storage/record_io.h"
#include "util/status.h"

namespace marlin {
namespace storage {

/// Committed consumer offsets: group -> topic -> partition -> next offset.
/// Shape-identical to the broker's in-memory offset table so recovery is a
/// straight assignment.
using OffsetsMap = std::unordered_map<
    std::string, std::unordered_map<std::string, std::vector<int64_t>>>;

/// The broker's pluggable durability seam. The default broker keeps its
/// logs purely in memory (storage == nullptr); a durable broker writes
/// every append and offset commit through one of these and re-reads both on
/// restart. Implementations must be thread-safe — the broker calls Append
/// under its per-partition lock but OpenPartition/CommitOffset under its
/// topology lock.
class LogStorage {
 public:
  virtual ~LogStorage() = default;

  /// Opens (creating or recovering) the backing log of one partition and
  /// returns every recovered record, in offset order. Called once per
  /// partition at topic creation.
  virtual StatusOr<std::vector<LogRecord>> OpenPartition(
      const std::string& topic, int partition) = 0;

  /// Persists one appended record. `record.offset` is the offset the
  /// in-memory log just assigned; storage must refuse a mismatch with its
  /// own end (the two logs diverging is corruption, not a race, because
  /// the caller holds the partition lock).
  virtual Status Append(const std::string& topic, int partition,
                        const LogRecord& record) = 0;

  /// Persists a committed consumer offset.
  virtual Status CommitOffset(const std::string& group,
                              const std::string& topic, int partition,
                              int64_t offset) = 0;

  /// The offsets recovered at construction, for seeding the broker.
  virtual const OffsetsMap& RecoveredOffsets() const = 0;

  /// fsyncs everything outstanding (all partitions + offsets).
  virtual Status Flush() = 0;
};

/// Filesystem-backed LogStorage:
///
///   <root>/<topic>/p<partition>/<base>.seg...   partition segment logs
///   <root>/offsets.snap                         committed-offset snapshot
///
/// Offsets are persisted as an atomic CRC'd snapshot rewritten on every
/// commit that changes a value (drain-phase re-commits of the same offset
/// are skipped). Construction is infallible by design — the crash-recovery
/// path constructs one mid-restart — with best-effort offset recovery: a
/// torn offsets snapshot (killed mid-rename has no window, but a corrupt
/// disk does) recovers as "no commits", which at-least-once consumers with
/// idempotent applies absorb by re-consuming.
class DurableLogStorage : public LogStorage {
 public:
  struct Options {
    /// Per-partition log tuning; `labels` is overridden per topic.
    PartitionLog::Options log;
  };

  explicit DurableLogStorage(std::string root, Options options = {},
                             obs::MetricsRegistry* metrics = nullptr);

  StatusOr<std::vector<LogRecord>> OpenPartition(const std::string& topic,
                                                 int partition) override;
  Status Append(const std::string& topic, int partition,
                const LogRecord& record) override;
  Status CommitOffset(const std::string& group, const std::string& topic,
                      int partition, int64_t offset) override;
  const OffsetsMap& RecoveredOffsets() const override { return recovered_; }
  Status Flush() override;

  /// Direct handle to one partition's log (compaction, tests). Null when
  /// the partition was never opened.
  PartitionLog* partition_log(const std::string& topic, int partition) const;

  const std::string& root() const { return root_; }

 private:
  Status PersistOffsetsLocked();

  const std::string root_;
  const Options options_;
  obs::MetricsRegistry* metrics_;

  mutable std::mutex mu_;  // guards logs_ topology + offsets_, not appends
  std::map<std::pair<std::string, int>, std::unique_ptr<PartitionLog>> logs_;
  OffsetsMap offsets_;
  OffsetsMap recovered_;
};

}  // namespace storage
}  // namespace marlin

#endif  // MARLIN_STORAGE_LOG_STORAGE_H_

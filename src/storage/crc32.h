#ifndef MARLIN_STORAGE_CRC32_H_
#define MARLIN_STORAGE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace marlin {
namespace storage {

/// CRC-32C (Castagnoli polynomial, reflected 0x82F63B78) over `data`,
/// continuing from `seed` (pass the previous return value to checksum a
/// logical blob in pieces). The same polynomial Kafka and iSCSI use for
/// on-disk record framing; chosen over FNV because a checksum, not a hash,
/// is what detects torn writes and bit rot.
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

}  // namespace storage
}  // namespace marlin

#endif  // MARLIN_STORAGE_CRC32_H_

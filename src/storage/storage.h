#ifndef MARLIN_STORAGE_STORAGE_H_
#define MARLIN_STORAGE_STORAGE_H_

/// Umbrella header for the durability subsystem (DESIGN.md §12): CRC-framed
/// record segments with sparse offset indexes (record_io, log_segment),
/// rolling/compacting partition logs (partition_log), atomic CRC'd
/// snapshots (snapshot), the broker's pluggable durability seam
/// (log_storage), and the per-partition quorum-replication state machine
/// the cluster layer drives (replicated_partition).

#include "storage/crc32.h"
#include "storage/log_segment.h"
#include "storage/log_storage.h"
#include "storage/partition_log.h"
#include "storage/record_io.h"
#include "storage/replicated_partition.h"
#include "storage/snapshot.h"

#endif  // MARLIN_STORAGE_STORAGE_H_

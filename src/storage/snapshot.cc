#include "storage/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "storage/crc32.h"
#include "storage/record_io.h"
#include "util/file.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace marlin {
namespace storage {
namespace {

constexpr char kMagic[] = "MRLSNAP1";
constexpr size_t kMagicLen = 8;

#if defined(__unix__) || defined(__APPLE__)
/// fsyncs the directory containing `path` so the rename itself is durable.
void SyncParentDir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
#endif

}  // namespace

Status SaveSnapshot(const std::string& path, const std::string& blob) {
  std::string contents;
  contents.reserve(kMagicLen + 8 + blob.size());
  contents.append(kMagic, kMagicLen);
  PutU32(&contents, Crc32c(blob));
  PutBytes(&contents, blob);

#if defined(__unix__) || defined(__APPLE__)
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("create snapshot temp '" + tmp +
                            "': " + std::strerror(errno));
  }
  const bool wrote =
      std::fwrite(contents.data(), 1, contents.size(), out) == contents.size();
  const bool flushed = std::fflush(out) == 0;
  const bool synced = ::fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (!wrote || !flushed || !synced) {
    std::remove(tmp.c_str());
    return Status::Internal("write snapshot temp '" + tmp +
                            "': " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename snapshot into '" + path +
                            "': " + std::strerror(errno));
  }
  SyncParentDir(path);
  return Status::Ok();
#else
  return WriteFileAtomic(path, contents);
#endif
}

StatusOr<std::string> LoadSnapshot(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound("no snapshot at '" + path + "'");
  }
  StatusOr<std::string> contents = ReadFile(path);
  if (!contents.ok()) return contents.status();
  if (contents->size() < kMagicLen ||
      contents->compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return Status::Internal("snapshot '" + path + "' has bad magic");
  }
  ByteReader reader(std::string_view(*contents).substr(kMagicLen));
  uint32_t crc = 0;
  std::string blob;
  if (!reader.GetU32(&crc) || !reader.GetBytes(&blob) ||
      reader.remaining() != 0) {
    return Status::Internal("snapshot '" + path + "' is truncated");
  }
  if (Crc32c(blob) != crc) {
    return Status::Internal("snapshot '" + path + "' failed CRC validation");
  }
  return blob;
}

}  // namespace storage
}  // namespace marlin

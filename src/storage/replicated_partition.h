#ifndef MARLIN_STORAGE_REPLICATED_PARTITION_H_
#define MARLIN_STORAGE_REPLICATED_PARTITION_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace marlin {
namespace storage {

/// Pure (transport-free) per-partition replication state machine; the
/// cluster layer's LogReplicator drives one per partition and moves the
/// actual record frames.
///
/// Model: single leader per epoch, chosen externally (the hash-ring owner
/// at the current membership epoch). The leader appends to its local log,
/// ships the tail to each follower from that follower's acked end, and
/// advances the committed offset to the highest offset a *quorum* of
/// replicas (leader included) has — the Kafka ISR/Raft-commit rule that
/// makes a committed record survive any minority of crashes. Followers
/// accept records only from the current epoch's leader; a superseded
/// leader's frames (delayed in flight across a failover) are rejected by
/// the epoch guard.
///
/// Failover: when the ring re-elects, every node calls BecomeLeader /
/// BecomeFollower with the new (higher) membership epoch. The new leader
/// starts from its own log end — which contains every committed record,
/// because commitment required a quorum and the new leader is in every
/// quorum's intersection under majority quorums — so the committed offset
/// never regresses (Commit() enforces monotonicity as a hard invariant).
///
/// Divergence safety: a deposed leader can rejoin holding an *uncommitted*
/// suffix that differs from the new leader's log at the same offsets. Two
/// guards keep such a replica from vouching for bytes it does not hold:
///
///   - Leader side, Raft match-index style: an ack is credited only up to
///     the highest offset the leader actually shipped to that follower this
///     epoch (MarkShipped). A rejoiner acking its own divergent end earns
///     no quorum credit until the overlap has gone through replicate/ack
///     round-trips.
///   - Follower side: `verified_end` tracks the prefix proven byte-equal to
///     the current epoch's leader. It resets on epoch change; the transport
///     layer re-verifies the overlap record-by-record as the leader ships
///     it, truncating the local suffix at the first mismatch, and acks only
///     the verified prefix.
///
/// Not thread-safe; the owning LogReplicator serializes access.
class ReplicatedPartition {
 public:
  explicit ReplicatedPartition(int partition) : partition_(partition) {}

  /// Role transitions. Stale epochs (below the current one) are ignored and
  /// return false. Re-electing the same leader at a higher epoch just
  /// refreshes the follower set.
  bool BecomeLeader(uint64_t epoch, std::vector<uint32_t> followers);
  bool BecomeFollower(uint64_t epoch, uint32_t leader);

  bool is_leader() const { return is_leader_; }
  uint64_t epoch() const { return epoch_; }
  uint32_t leader() const { return leader_; }
  int partition() const { return partition_; }

  /// Leader bookkeeping: the local log grew to `end`.
  void SetLocalEnd(int64_t end);
  int64_t local_end() const { return local_end_; }

  /// Followers whose acked end trails the local end, with the offset to
  /// resume shipping from: (follower, from_offset). Leader only.
  std::vector<std::pair<uint32_t, int64_t>> PendingReplication() const;

  /// Records that a replicate batch covering offsets up to `shipped_end`
  /// went out to `follower` this epoch. Acks are credited only below this
  /// mark — call it before the frame is handed to the transport.
  void MarkShipped(uint32_t follower, uint64_t epoch, int64_t shipped_end);

  /// Epoch-guarded follower ack. Returns true when the progress was
  /// accepted (current epoch, known follower) — acked ends never regress,
  /// and credit never exceeds what MarkShipped recorded for the follower.
  bool OnAck(uint32_t follower, uint64_t epoch, int64_t acked_end);

  /// Follower-side guard for an incoming replicate frame.
  bool AcceptReplicate(uint32_t from, uint64_t epoch) const;

  /// Follower-side: prefix of the local log proven byte-equal to the
  /// current epoch's leader. Resets to 0 on epoch change or demotion.
  int64_t verified_end() const { return verified_end_; }
  void AdvanceVerified(int64_t end) {
    if (end > verified_end_) verified_end_ = end;
  }

  /// Quorum-committed offset: every record below it is on a majority of
  /// replicas. Monotone across role changes and failovers.
  int64_t committed() const { return committed_; }

  /// Records the leader has that the slowest follower lacks (0 on
  /// followers) — the replication-lag gauge's input.
  int64_t ReplicationLag() const;

 private:
  void RecomputeCommitted();

  const int partition_;
  uint64_t epoch_ = 0;
  bool is_leader_ = false;
  uint32_t leader_ = 0;
  int64_t local_end_ = 0;
  int64_t committed_ = 0;
  int64_t verified_end_ = 0;           // follower: prefix matching the leader
  std::map<uint32_t, int64_t> acked_;  // follower -> credited acked end
  std::map<uint32_t, int64_t> shipped_;  // follower -> end shipped this epoch
};

}  // namespace storage
}  // namespace marlin

#endif  // MARLIN_STORAGE_REPLICATED_PARTITION_H_

#ifndef MARLIN_STORAGE_PARTITION_LOG_H_
#define MARLIN_STORAGE_PARTITION_LOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "storage/log_segment.h"
#include "storage/record_io.h"
#include "util/status.h"

namespace marlin {
namespace storage {

/// A durable, append-only partition: a directory of segment files named by
/// their base offset (`00000000000000000000.seg`, ...), the active one open
/// for appends. Covers the dense offset range [start_offset, end_offset).
///
///   - Appends roll to a new segment once the active one passes
///     `segment_bytes`.
///   - `sync` picks the durability/latency trade-off: kNone leaves flushing
///     to the OS, kBatch fsyncs once at least `sync_batch_bytes` are
///     pending (plus on every explicit Flush), kAlways fsyncs every append.
///   - Open() recovers: segments are scanned oldest-first, a torn tail in
///     the last segment is truncated to the last valid CRC record, and the
///     sparse per-segment offset indexes are rebuilt. Corruption in a
///     *sealed* (non-final) segment leaves an offset gap before the next
///     segment; by default Open() fails with an error naming the gap (the
///     bytes stay on disk for inspection), or, with
///     `quarantine_corrupt_suffix`, the unreadable suffix segments are
///     renamed aside (`*.seg.quarantined`) and the valid prefix recovers.
///   - CompactPrefix(horizon) is the log-compaction seam: whole segments
///     strictly below the horizon (snapshot covers them) are deleted.
///     Compaction is cooperative — callers invoke it from their own
///     maintenance tick; the storage layer owns no threads (the Dispatcher
///     seam rule, DESIGN.md §11).
///
/// Thread-safe.
class PartitionLog {
 public:
  enum class SyncMode { kNone, kBatch, kAlways };

  struct Options {
    uint64_t segment_bytes = 4u << 20;
    size_t index_interval_bytes = 4096;
    SyncMode sync = SyncMode::kBatch;
    uint64_t sync_batch_bytes = 64u << 10;
    /// Registry for marlin_storage_* metrics (null = process global).
    obs::MetricsRegistry* metrics = nullptr;
    /// Labels for this log's series (conventionally {{"topic", ...}}; keep
    /// cardinality at topic granularity, never per-partition).
    obs::Labels labels;
    /// Mid-log corruption policy. Off (default): Open() fails with an error
    /// advising operator action, losing nothing. On: segments past the
    /// corruption-induced offset gap are renamed `*.seg.quarantined` and
    /// the valid prefix recovers — explicit data loss in exchange for a
    /// usable partition (replication backfills the suffix).
    bool quarantine_corrupt_suffix = false;
  };

  /// Opens (creating if needed) the log rooted at directory `dir`.
  static StatusOr<std::unique_ptr<PartitionLog>> Open(const std::string& dir,
                                                      const Options& options);

  /// Public only so Open() can make_unique; use Open().
  PartitionLog(std::string dir, const Options& options);

  PartitionLog(const PartitionLog&) = delete;
  PartitionLog& operator=(const PartitionLog&) = delete;

  /// Appends a record at the next offset; returns the offset assigned.
  StatusOr<int64_t> Append(TimeMicros timestamp, std::string_view key,
                           std::string_view value);

  /// Appends a pre-offset record; `record.offset` must equal end_offset().
  /// The replication follower path, where the leader dictates offsets.
  Status AppendRecord(const LogRecord& record);

  /// Reads up to `max_records` records starting at `from_offset`, crossing
  /// segment boundaries as needed.
  StatusOr<std::vector<LogRecord>> Read(int64_t from_offset, int max_records);

  /// Flushes and fsyncs the active segment.
  Status Flush();

  /// Deletes whole segments entirely below `horizon` (every record with
  /// offset < horizon that shares no segment with a retained record).
  /// Returns the number of segments removed.
  size_t CompactPrefix(int64_t horizon);

  /// Drops every record at or past `offset`, deleting whole segments above
  /// the cut and truncating within the one containing it. The replication
  /// reconcile path: a follower cuts a divergent uncommitted suffix before
  /// re-appending the leader's version. `offset` must be at or above
  /// start_offset(); at or past end_offset() it is a no-op.
  Status TruncateSuffix(int64_t offset);

  /// Oldest retained offset (advances under compaction).
  int64_t start_offset() const;
  /// Next offset to be assigned.
  int64_t end_offset() const;
  size_t segment_count() const;
  /// Torn-tail bytes truncated and records recovered by Open().
  uint64_t recovered_truncated_bytes() const { return truncated_bytes_; }
  int64_t recovered_records() const { return recovered_records_; }
  /// Corrupt-suffix segments renamed aside by Open() (quarantine mode).
  size_t quarantined_segments() const { return quarantined_segments_; }
  const std::string& dir() const { return dir_; }

 private:
  Status RecoverLocked();
  Status RollLocked();
  Status AppendLocked(const LogRecord& record);
  LogSegment* ActiveLocked() { return segments_.rbegin()->second.get(); }

  const std::string dir_;
  const Options options_;

  mutable std::mutex mu_;
  std::map<int64_t, std::unique_ptr<LogSegment>> segments_;  // by base offset
  uint64_t unsynced_bytes_ = 0;
  uint64_t truncated_bytes_ = 0;
  int64_t recovered_records_ = 0;
  size_t quarantined_segments_ = 0;

  struct Metrics {
    obs::Counter* appended = nullptr;
    obs::Counter* fsyncs = nullptr;
    obs::Histogram* fsync_latency = nullptr;
    obs::Counter* segments_created = nullptr;
    obs::Counter* segments_compacted = nullptr;
    obs::Counter* recovered = nullptr;
    obs::Counter* truncated_bytes = nullptr;
    obs::Counter* quarantined = nullptr;
  };
  Metrics metrics_;
};

}  // namespace storage
}  // namespace marlin

#endif  // MARLIN_STORAGE_PARTITION_LOG_H_

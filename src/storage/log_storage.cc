#include "storage/log_storage.h"

#include <filesystem>
#include <utility>

#include "storage/snapshot.h"

namespace marlin {
namespace storage {
namespace {

constexpr const char* kOffsetsFile = "offsets.snap";

std::string PartitionDir(const std::string& root, const std::string& topic,
                         int partition) {
  return root + "/" + topic + "/p" + std::to_string(partition);
}

std::string EncodeOffsets(const OffsetsMap& offsets) {
  std::string blob;
  PutU32(&blob, static_cast<uint32_t>(offsets.size()));
  for (const auto& [group, topics] : offsets) {
    PutBytes(&blob, group);
    PutU32(&blob, static_cast<uint32_t>(topics.size()));
    for (const auto& [topic, partitions] : topics) {
      PutBytes(&blob, topic);
      PutU32(&blob, static_cast<uint32_t>(partitions.size()));
      for (const int64_t offset : partitions) {
        PutU64(&blob, static_cast<uint64_t>(offset));
      }
    }
  }
  return blob;
}

bool DecodeOffsets(const std::string& blob, OffsetsMap* out) {
  ByteReader reader(blob);
  uint32_t num_groups = 0;
  if (!reader.GetU32(&num_groups)) return false;
  for (uint32_t g = 0; g < num_groups; ++g) {
    std::string group;
    uint32_t num_topics = 0;
    if (!reader.GetBytes(&group) || !reader.GetU32(&num_topics)) return false;
    for (uint32_t t = 0; t < num_topics; ++t) {
      std::string topic;
      uint32_t num_partitions = 0;
      if (!reader.GetBytes(&topic) || !reader.GetU32(&num_partitions)) {
        return false;
      }
      std::vector<int64_t> partitions;
      partitions.reserve(num_partitions);
      for (uint32_t p = 0; p < num_partitions; ++p) {
        uint64_t offset = 0;
        if (!reader.GetU64(&offset)) return false;
        partitions.push_back(static_cast<int64_t>(offset));
      }
      (*out)[group][topic] = std::move(partitions);
    }
  }
  return reader.remaining() == 0;
}

}  // namespace

DurableLogStorage::DurableLogStorage(std::string root, Options options,
                                     obs::MetricsRegistry* metrics)
    : root_(std::move(root)),
      options_(std::move(options)),
      metrics_(obs::MetricsRegistry::OrGlobal(metrics)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  // Best-effort offset recovery: the snapshot write is atomic, so a failed
  // load means no commits were ever persisted (or the disk corrupted the
  // file, which recovers as "re-consume from 0" — safe under at-least-once
  // delivery with idempotent applies).
  StatusOr<std::string> blob = LoadSnapshot(root_ + "/" + kOffsetsFile);
  if (blob.ok()) {
    OffsetsMap decoded;
    if (DecodeOffsets(*blob, &decoded)) {
      offsets_ = decoded;
      recovered_ = std::move(decoded);
    }
  }
}

StatusOr<std::vector<LogRecord>> DurableLogStorage::OpenPartition(
    const std::string& topic, int partition) {
  PartitionLog::Options log_options = options_.log;
  log_options.metrics = metrics_;
  log_options.labels = {{"topic", topic}};
  StatusOr<std::unique_ptr<PartitionLog>> opened =
      PartitionLog::Open(PartitionDir(root_, topic, partition), log_options);
  if (!opened.ok()) return opened.status();
  PartitionLog* log = opened->get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    logs_[{topic, partition}] = std::move(*opened);
  }
  std::vector<LogRecord> records;
  int64_t from = log->start_offset();
  const int64_t end = log->end_offset();
  while (from < end) {
    StatusOr<std::vector<LogRecord>> batch = log->Read(from, 1024);
    if (!batch.ok()) return batch.status();
    if (batch->empty()) break;
    from = batch->back().offset + 1;
    for (LogRecord& record : *batch) records.push_back(std::move(record));
  }
  return records;
}

Status DurableLogStorage::Append(const std::string& topic, int partition,
                                 const LogRecord& record) {
  PartitionLog* log = partition_log(topic, partition);
  if (log == nullptr) {
    return Status::FailedPrecondition("partition " + topic + "/" +
                                      std::to_string(partition) +
                                      " was never opened");
  }
  return log->AppendRecord(record);
}

Status DurableLogStorage::CommitOffset(const std::string& group,
                                       const std::string& topic, int partition,
                                       int64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t>& partitions = offsets_[group][topic];
  if (partitions.size() <= static_cast<size_t>(partition)) {
    partitions.resize(static_cast<size_t>(partition) + 1, 0);
  }
  if (partitions[static_cast<size_t>(partition)] == offset) {
    return Status::Ok();  // drain-phase re-commit; skip the snapshot rewrite
  }
  partitions[static_cast<size_t>(partition)] = offset;
  return PersistOffsetsLocked();
}

Status DurableLogStorage::PersistOffsetsLocked() {
  return SaveSnapshot(root_ + "/" + kOffsetsFile, EncodeOffsets(offsets_));
}

Status DurableLogStorage::Flush() {
  std::vector<PartitionLog*> logs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, log] : logs_) logs.push_back(log.get());
  }
  for (PartitionLog* log : logs) {
    Status status = log->Flush();
    if (!status.ok()) return status;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return PersistOffsetsLocked();
}

PartitionLog* DurableLogStorage::partition_log(const std::string& topic,
                                               int partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = logs_.find({topic, partition});
  return it == logs_.end() ? nullptr : it->second.get();
}

}  // namespace storage
}  // namespace marlin

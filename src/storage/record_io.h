#ifndef MARLIN_STORAGE_RECORD_IO_H_
#define MARLIN_STORAGE_RECORD_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/clock.h"

namespace marlin {
namespace storage {

/// One durable log record. Mirrors the broker's Record minus the partition
/// (a PartitionLog *is* one partition): the offset assigned at append time,
/// the producer timestamp, and the opaque key/value bytes.
struct LogRecord {
  int64_t offset = -1;
  TimeMicros timestamp = 0;
  std::string key;
  std::string value;

  bool operator==(const LogRecord& other) const {
    return offset == other.offset && timestamp == other.timestamp &&
           key == other.key && value == other.value;
  }
};

/// Records larger than this are refused at append time and treated as
/// corruption at scan time — same bound as the cluster frame codec, so a
/// desynced or bit-rotted length field never drives a gigabyte allocation.
constexpr uint32_t kMaxRecordBytes = 16u << 20;

// -- Little-endian wire helpers ------------------------------------------
//
// storage sits below src/cluster in the layering DAG, so it carries its own
// minimal byte codec instead of borrowing cluster::WireWriter. Integers are
// little-endian; strings are u32-length-prefixed.

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutBytes(std::string* out, std::string_view s);  // u32 len + bytes

/// Cursor over a wire blob; every getter returns false on underflow and
/// leaves the output untouched, so malformed input is rejected, never read
/// out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetBytes(std::string* s);

  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// -- Record framing ------------------------------------------------------
//
// On disk a record is CRC-framed:
//
//   [u32 len][u32 crc32c(payload)][payload: len bytes]
//   payload = [u64 offset][u64 timestamp][u32 key_len][key][u32 val_len][value]
//
// `len` counts payload bytes only; all integers little-endian. A scan stops
// at the first frame whose length is implausible, whose CRC mismatches, or
// that runs past the end of the data — all three look identical to a torn
// tail and are truncated by recovery.

/// Appends the framed encoding of `record` to `out`.
void EncodeRecord(const LogRecord& record, std::string* out);

/// Sequential decoder over one segment's bytes. Never throws and never
/// reads out of bounds regardless of input — the property the corruption
/// corpus in tests/storage_test.cc pins down.
class RecordScanner {
 public:
  explicit RecordScanner(std::string_view data) : data_(data) {}

  /// Decodes the next record. Returns false at the end of the valid prefix
  /// (clean end, torn tail, or corrupt frame — see clean_end()).
  bool Next(LogRecord* out);

  /// Bytes consumed by fully valid records; recovery truncates the file to
  /// this length.
  size_t valid_bytes() const { return valid_bytes_; }

  /// True when the scan consumed every byte (no torn/corrupt tail).
  bool clean_end() const { return done_ && valid_bytes_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  size_t valid_bytes_ = 0;
  bool done_ = false;
};

}  // namespace storage
}  // namespace marlin

#endif  // MARLIN_STORAGE_RECORD_IO_H_

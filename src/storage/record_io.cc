#include "storage/record_io.h"

#include <cstring>

#include "storage/crc32.h"

namespace marlin {
namespace storage {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutBytes(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool ByteReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 4;
  *v = value;
  return true;
}

bool ByteReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  *v = value;
  return true;
}

bool ByteReader::GetBytes(std::string* s) {
  uint32_t len = 0;
  const size_t mark = pos_;
  if (!GetU32(&len)) return false;
  if (remaining() < len) {
    pos_ = mark;
    return false;
  }
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

void EncodeRecord(const LogRecord& record, std::string* out) {
  std::string payload;
  payload.reserve(24 + record.key.size() + record.value.size());
  PutU64(&payload, static_cast<uint64_t>(record.offset));
  PutU64(&payload, static_cast<uint64_t>(record.timestamp));
  PutBytes(&payload, record.key);
  PutBytes(&payload, record.value);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32c(payload));
  out->append(payload);
}

bool RecordScanner::Next(LogRecord* out) {
  if (done_) return false;
  ByteReader header(data_.substr(pos_));
  uint32_t len = 0;
  uint32_t crc = 0;
  if (!header.GetU32(&len) || !header.GetU32(&crc) || len > kMaxRecordBytes ||
      header.remaining() < len) {
    done_ = true;  // clean end or torn tail; either way the prefix stands
    return false;
  }
  const std::string_view payload = data_.substr(pos_ + 8, len);
  if (Crc32c(payload) != crc) {
    done_ = true;  // bit rot or a torn mid-frame write
    return false;
  }
  ByteReader reader(payload);
  uint64_t offset = 0;
  uint64_t timestamp = 0;
  LogRecord record;
  if (!reader.GetU64(&offset) || !reader.GetU64(&timestamp) ||
      !reader.GetBytes(&record.key) || !reader.GetBytes(&record.value) ||
      reader.remaining() != 0) {
    done_ = true;  // CRC-valid but structurally bogus: treat as corrupt tail
    return false;
  }
  record.offset = static_cast<int64_t>(offset);
  record.timestamp = static_cast<TimeMicros>(timestamp);
  pos_ += 8 + len;
  valid_bytes_ = pos_;
  *out = std::move(record);
  return true;
}

}  // namespace storage
}  // namespace marlin

#include "hexgrid/hexgrid.h"

#include <algorithm>
#include <cmath>

namespace marlin {
namespace {

constexpr int64_t kCoordBias = int64_t{1} << 29;  // center of the 30-bit range
constexpr int64_t kCoordMax = (int64_t{1} << 30) - 1;
constexpr double kSqrt3 = 1.7320508075688772;

// Per-resolution lattice phase, as a fraction of the cell circumradius.
// Without it the aperture-4 ladder's fine-cell centers would fall exactly on
// coarse-cell boundaries (the lattices are aligned), making parent
// assignment a floating-point coin toss. The irrational-ish offsets
// de-align every resolution from every other.
constexpr double kPhaseX = 0.21376433;
constexpr double kPhaseY = 0.37193218;

/// Projects lat/lon onto the global equirectangular plane (meters).
void Project(const LatLng& p, double* x, double* y) {
  *x = p.lon_deg * kDegToRad * kEarthRadiusMeters;
  *y = p.lat_deg * kDegToRad * kEarthRadiusMeters;
}

LatLng Unproject(double x, double y) {
  LatLng out;
  out.lon_deg = WrapLongitude((x / kEarthRadiusMeters) * kRadToDeg);
  out.lat_deg = ClampLatitude((y / kEarthRadiusMeters) * kRadToDeg);
  return out;
}

/// Rounds fractional cube coordinates to the nearest hex.
void CubeRound(double fq, double fr, int64_t* out_q, int64_t* out_r) {
  const double fs = -fq - fr;
  double q = std::round(fq);
  double r = std::round(fr);
  double s = std::round(fs);
  const double dq = std::abs(q - fq);
  const double dr = std::abs(r - fr);
  const double ds = std::abs(s - fs);
  if (dq > dr && dq > ds) {
    q = -r - s;
  } else if (dr > ds) {
    r = -q - s;
  }
  *out_q = static_cast<int64_t>(q);
  *out_r = static_cast<int64_t>(r);
}

// Axial direction vectors for the 6 hex neighbours (pointy-top).
constexpr int kHexDirections[6][2] = {
    {+1, 0}, {+1, -1}, {0, -1}, {-1, 0}, {-1, +1}, {0, +1}};

}  // namespace

double HexGrid::CircumradiusMeters(int resolution) {
  if (resolution < kMinResolution || resolution > kMaxResolution) return 0.0;
  return kRes0CircumradiusMeters / static_cast<double>(int64_t{1} << resolution);
}

double HexGrid::CellAreaSqMeters(int resolution) {
  const double s = CircumradiusMeters(resolution);
  return 1.5 * kSqrt3 * s * s;
}

CellId HexGrid::LatLngToCell(const LatLng& position, int resolution) {
  if (resolution < kMinResolution || resolution > kMaxResolution) {
    return kInvalidCellId;
  }
  if (!std::isfinite(position.lat_deg) || !std::isfinite(position.lon_deg)) {
    return kInvalidCellId;
  }
  double x, y;
  Project(position, &x, &y);
  const double s = CircumradiusMeters(resolution);
  x -= kPhaseX * s * static_cast<double>(resolution);
  y -= kPhaseY * s * static_cast<double>(resolution);
  // Pointy-top axial coordinates.
  const double fq = (kSqrt3 / 3.0 * x - 1.0 / 3.0 * y) / s;
  const double fr = (2.0 / 3.0 * y) / s;
  int64_t q, r;
  CubeRound(fq, fr, &q, &r);
  return Encode(resolution, q, r);
}

LatLng HexGrid::CellToLatLng(CellId cell) {
  int resolution;
  int64_t q, r;
  Decode(cell, &resolution, &q, &r);
  if (resolution < 0) return LatLng{0.0, 0.0};
  const double s = CircumradiusMeters(resolution);
  const double x =
      s * kSqrt3 * (static_cast<double>(q) + static_cast<double>(r) / 2.0) +
      kPhaseX * s * static_cast<double>(resolution);
  const double y = s * 1.5 * static_cast<double>(r) +
                   kPhaseY * s * static_cast<double>(resolution);
  return Unproject(x, y);
}

int HexGrid::Resolution(CellId cell) {
  if (cell == kInvalidCellId) return -1;
  return static_cast<int>(cell >> 60);
}

bool HexGrid::IsValid(CellId cell) {
  if (cell == kInvalidCellId) return false;
  const int res = static_cast<int>(cell >> 60);
  return res >= kMinResolution && res <= kMaxResolution;
}

void HexGrid::Decode(CellId cell, int* resolution, int64_t* q, int64_t* r) {
  if (cell == kInvalidCellId) {
    *resolution = -1;
    *q = 0;
    *r = 0;
    return;
  }
  *resolution = static_cast<int>(cell >> 60);
  *q = static_cast<int64_t>((cell >> 30) & kCoordMax) - kCoordBias;
  *r = static_cast<int64_t>(cell & kCoordMax) - kCoordBias;
}

CellId HexGrid::Encode(int resolution, int64_t q, int64_t r) {
  if (resolution < kMinResolution || resolution > kMaxResolution) {
    return kInvalidCellId;
  }
  const int64_t bq = q + kCoordBias;
  const int64_t br = r + kCoordBias;
  if (bq < 0 || bq > kCoordMax || br < 0 || br > kCoordMax) {
    return kInvalidCellId;
  }
  return (static_cast<uint64_t>(resolution) << 60) |
         (static_cast<uint64_t>(bq) << 30) | static_cast<uint64_t>(br);
}

std::vector<CellId> HexGrid::KRing(CellId center, int k) {
  std::vector<CellId> out;
  int resolution;
  int64_t cq, cr;
  Decode(center, &resolution, &cq, &cr);
  if (resolution < 0 || k < 0) return out;
  out.reserve(1 + 3 * k * (k + 1));
  out.push_back(center);
  for (int ring = 1; ring <= k; ++ring) {
    // Start at the cell `ring` steps in direction 4 (-1, +1), then walk the
    // six sides of the ring.
    int64_t q = cq + static_cast<int64_t>(kHexDirections[4][0]) * ring;
    int64_t r = cr + static_cast<int64_t>(kHexDirections[4][1]) * ring;
    for (int side = 0; side < 6; ++side) {
      for (int step = 0; step < ring; ++step) {
        const CellId id = Encode(resolution, q, r);
        if (id != kInvalidCellId) out.push_back(id);
        q += kHexDirections[side][0];
        r += kHexDirections[side][1];
      }
    }
  }
  return out;
}

std::vector<CellId> HexGrid::Neighbors(CellId cell) {
  std::vector<CellId> out;
  int resolution;
  int64_t q, r;
  Decode(cell, &resolution, &q, &r);
  if (resolution < 0) return out;
  out.reserve(6);
  for (const auto& dir : kHexDirections) {
    const CellId id = Encode(resolution, q + dir[0], r + dir[1]);
    if (id != kInvalidCellId) out.push_back(id);
  }
  return out;
}

bool HexGrid::AreNeighbors(CellId a, CellId b) {
  return GridDistance(a, b) == 1;
}

int HexGrid::GridDistance(CellId a, CellId b) {
  int res_a, res_b;
  int64_t qa, ra, qb, rb;
  Decode(a, &res_a, &qa, &ra);
  Decode(b, &res_b, &qb, &rb);
  if (res_a < 0 || res_a != res_b) return -1;
  const int64_t dq = qa - qb;
  const int64_t dr = ra - rb;
  const int64_t ds = -dq - dr;
  const int64_t dist =
      (std::abs(dq) + std::abs(dr) + std::abs(ds)) / 2;
  return static_cast<int>(dist);
}

CellId HexGrid::Parent(CellId cell, int coarser_resolution) {
  const int res = Resolution(cell);
  if (res < 0 || coarser_resolution > res ||
      coarser_resolution < kMinResolution) {
    return kInvalidCellId;
  }
  // Iterate single-level steps so that multi-level parents are consistent
  // with chained Parent() calls (center containment alone is not
  // transitive).
  CellId current = cell;
  for (int r = res; r > coarser_resolution; --r) {
    current = LatLngToCell(CellToLatLng(current), r - 1);
  }
  return current;
}

CellId HexGrid::Parent(CellId cell) {
  const int res = Resolution(cell);
  if (res <= kMinResolution) return kInvalidCellId;
  return Parent(cell, res - 1);
}

std::vector<CellId> HexGrid::Children(CellId cell) {
  std::vector<CellId> out;
  const int res = Resolution(cell);
  if (res < 0 || res >= kMaxResolution) return out;
  // Candidate children: all finer cells within grid distance 3 of the finer
  // cell at this cell's center. The aperture-4 ladder puts every true child
  // within that disk; filter by Parent() == cell for exactness.
  const CellId center_child = LatLngToCell(CellToLatLng(cell), res + 1);
  for (CellId candidate : KRing(center_child, 3)) {
    if (Parent(candidate) == cell) out.push_back(candidate);
  }
  return out;
}

std::vector<CellId> HexGrid::Polyfill(const BoundingBox& box,
                                      int resolution) {
  std::vector<CellId> cells;
  if (resolution < kMinResolution || resolution > kMaxResolution) return cells;
  // Sample the box on a grid finer than the cell inradius so no cell that
  // intersects the box is missed, then deduplicate.
  const double inradius_m = CircumradiusMeters(resolution) * 0.8660254;
  const double lat_step =
      std::max(1e-7, (inradius_m / kEarthRadiusMeters) * kRadToDeg * 0.9);
  const double min_cos =
      std::max(0.05, std::cos(std::max(std::abs(box.min_lat),
                                       std::abs(box.max_lat)) *
                              kDegToRad));
  const double lon_step = std::max(1e-7, lat_step / min_cos);
  for (double lat = box.min_lat; lat <= box.max_lat + lat_step;
       lat += lat_step) {
    const double clamped_lat = std::min(lat, box.max_lat);
    for (double lon = box.min_lon; lon <= box.max_lon + lon_step;
         lon += lon_step) {
      const double clamped_lon = std::min(lon, box.max_lon);
      const CellId cell =
          LatLngToCell(LatLng{clamped_lat, clamped_lon}, resolution);
      if (cell != kInvalidCellId) cells.push_back(cell);
      if (clamped_lon >= box.max_lon) break;
    }
    if (clamped_lat >= box.max_lat) break;
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

}  // namespace marlin

#ifndef MARLIN_HEXGRID_HEXGRID_H_
#define MARLIN_HEXGRID_HEXGRID_H_

#include <cstdint>
#include <vector>

#include "geo/geodesy.h"
#include "util/status.h"

namespace marlin {

/// 64-bit identifier of a hexagonal cell. Layout (most significant first):
///   [ 4 bits resolution | 30 bits biased axial q | 30 bits biased axial r ]
/// Cell ids are stable, hashable, and totally ordered within a resolution.
/// The value 0 is never a valid cell (resolution 0 cells still carry the
/// coordinate bias) and is used as a sentinel.
using CellId = uint64_t;

constexpr CellId kInvalidCellId = 0;

/// Hierarchical hexagonal spatial index over an equirectangular projection
/// of the WGS84 sphere — Marlin's substitute for Uber H3 [26].
///
/// Pointy-top hexagons in axial coordinates (q, r). Sixteen resolutions; the
/// hex circumradius halves at each finer resolution (aperture-4 hierarchy),
/// starting from ~1100 km at resolution 0 — the same coverage span as H3's
/// res-0 .. res-15 ladder. Supported operations mirror the subset the paper
/// uses: point→cell, cell→center, k-ring neighbourhoods (collision candidate
/// lookup), parent/children traversal (multi-resolution rasters), adjacency
/// and grid distance.
///
/// All functions are pure and thread-safe.
class HexGrid {
 public:
  static constexpr int kMinResolution = 0;
  static constexpr int kMaxResolution = 15;
  /// Circumradius (center to vertex) of a resolution-0 hexagon, meters.
  static constexpr double kRes0CircumradiusMeters = 1100000.0;

  /// Circumradius of a cell at `resolution`, meters.
  static double CircumradiusMeters(int resolution);

  /// Edge length of a cell at `resolution` (equal to the circumradius for a
  /// regular hexagon), meters.
  static double EdgeLengthMeters(int resolution) {
    return CircumradiusMeters(resolution);
  }

  /// Approximate cell area at `resolution`, square meters.
  static double CellAreaSqMeters(int resolution);

  /// Maps a position to the cell containing it at `resolution`.
  /// Returns kInvalidCellId when the resolution is out of range or the
  /// position is non-finite.
  static CellId LatLngToCell(const LatLng& position, int resolution);

  /// Center of a cell. Inverse of LatLngToCell up to quantisation.
  static LatLng CellToLatLng(CellId cell);

  /// Resolution encoded in a cell id, or -1 for the invalid cell.
  static int Resolution(CellId cell);

  /// True if the id decodes to a structurally valid cell.
  static bool IsValid(CellId cell);

  /// All cells within grid distance `k` of `center`, including `center`
  /// itself. Size is 1 + 3k(k+1). Order: ring by ring, center first.
  static std::vector<CellId> KRing(CellId center, int k);

  /// The 6 cells adjacent to `cell` (fewer near the projection boundary,
  /// where out-of-range neighbours are skipped).
  static std::vector<CellId> Neighbors(CellId cell);

  /// True if the two cells share an edge (grid distance 1).
  static bool AreNeighbors(CellId a, CellId b);

  /// Hex grid distance (minimum number of cell steps) between two cells of
  /// the same resolution; returns -1 when resolutions differ.
  static int GridDistance(CellId a, CellId b);

  /// The cell at `coarser_resolution` containing this cell's center.
  /// `coarser_resolution` must be <= the cell's own resolution.
  static CellId Parent(CellId cell, int coarser_resolution);

  /// Immediate parent (resolution - 1); kInvalidCellId at resolution 0.
  static CellId Parent(CellId cell);

  /// All cells at resolution + 1 whose center lies within `cell` (i.e. whose
  /// Parent() is `cell`). Typically 4-5 cells for the aperture-4 ladder.
  static std::vector<CellId> Children(CellId cell);

  /// All cells at `resolution` that cover the bounding box (every point of
  /// the box maps to one of the returned cells). Sorted, deduplicated.
  /// Used for viewport rasters and region sweeps.
  static std::vector<CellId> Polyfill(const BoundingBox& box, int resolution);

  // -- Internal coordinate access, exposed for tests and the traffic raster.

  /// Decodes the axial coordinates of a cell.
  static void Decode(CellId cell, int* resolution, int64_t* q, int64_t* r);

  /// Encodes axial coordinates into a cell id. Returns kInvalidCellId when
  /// the coordinates fall outside the 30-bit biased range.
  static CellId Encode(int resolution, int64_t q, int64_t r);
};

}  // namespace marlin

#endif  // MARLIN_HEXGRID_HEXGRID_H_

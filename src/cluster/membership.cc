#include "cluster/membership.h"

#include "chk/chk.h"

namespace marlin {
namespace cluster {

const char* NodeStateName(NodeState state) {
  switch (state) {
    case NodeState::kJoining:
      return "joining";
    case NodeState::kUp:
      return "up";
    case NodeState::kUnreachable:
      return "unreachable";
    case NodeState::kRemoved:
      return "removed";
  }
  return "unknown";
}

Membership::Membership(NodeId self, std::vector<NodeId> nodes,
                       const MembershipOptions& options)
    : self_(self), options_(options) {
  for (const NodeId node : nodes) {
    Member member;
    // Self is authoritatively up; peers must prove themselves with a first
    // heartbeat before they can own shards.
    member.state = node == self ? NodeState::kUp : NodeState::kJoining;
    members_.emplace(node, member);
  }
  members_[self].state = NodeState::kUp;  // even if absent from `nodes`
}

void Membership::Transition(NodeId node, Member* member, NodeState to,
                            std::vector<MembershipEvent>* events) {
  const NodeState from = member->state;
  if (from == to) return;
  member->state = to;
  if (to == NodeState::kUnreachable || to == NodeState::kRemoved) {
    // Once the detector gives up on a peer, forget the epoch it reported:
    // a restarted incarnation legitimately starts over at epoch 1, and
    // holding it to the dead incarnation's high-water mark would reject
    // its heartbeats forever.
    member->last_epoch = 0;
  }
  const uint64_t previous_epoch = epoch_;
  ++epoch_;
  MARLIN_CHK_INVARIANT(epoch_ > previous_epoch,
                       "membership epochs must be strictly monotonic");
  (void)previous_epoch;  // release builds compile the invariant out
  events->push_back(MembershipEvent{node, from, to, epoch_});
}

std::vector<MembershipEvent> Membership::RecordHeartbeat(NodeId from,
                                                         TimeMicros now,
                                                         uint64_t sender_epoch) {
  std::vector<MembershipEvent> events;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(from);
  if (it == members_.end()) return events;  // not on the static roster
  Member& member = it->second;
  // Reject evidence that is strictly older than what we already hold: a
  // delayed or duplicated frame must not rewind the failure detector (the
  // peer would look `age` stale and get declared unreachable while alive).
  // Equal timestamps are fine — heartbeat and ack from one tick share one.
  if (now < member.last_heartbeat) return events;
  // Reject heartbeats from a superseded membership view: the sender's
  // epoch only grows, so a smaller value is a stale in-flight frame.
  if (sender_epoch != 0 && sender_epoch < member.last_epoch) return events;
  if (sender_epoch > member.last_epoch) member.last_epoch = sender_epoch;
  member.last_heartbeat = now;
  switch (member.state) {
    case NodeState::kJoining:
    case NodeState::kUnreachable:
      Transition(from, &member, NodeState::kUp, &events);
      break;
    case NodeState::kUp:
      break;
    case NodeState::kRemoved:
      // Terminal: late heartbeats from a removed node are ignored.
      break;
  }
  return events;
}

std::vector<MembershipEvent> Membership::Tick(TimeMicros now) {
  std::vector<MembershipEvent> events;
  const TimeMicros unreachable_age =
      options_.heartbeat_interval * options_.unreachable_after_missed;
  const TimeMicros removed_age =
      options_.removed_after_missed > 0
          ? options_.heartbeat_interval * options_.removed_after_missed
          : 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [node, member] : members_) {
    if (node == self_) continue;
    // A joining peer that never spoke is not failed — it just has not
    // arrived yet (static roster, nodes boot in any order).
    if (member.state == NodeState::kJoining && member.last_heartbeat == 0) {
      continue;
    }
    const TimeMicros age = now - member.last_heartbeat;
    if (member.state == NodeState::kUp && age > unreachable_age) {
      Transition(node, &member, NodeState::kUnreachable, &events);
    }
    if (member.state == NodeState::kUnreachable && removed_age > 0 &&
        age > removed_age) {
      Transition(node, &member, NodeState::kRemoved, &events);
    }
  }
  return events;
}

NodeState Membership::StateOf(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(node);
  return it == members_.end() ? NodeState::kRemoved : it->second.state;
}

std::vector<NodeId> Membership::UpNodes() const {
  std::vector<NodeId> up;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [node, member] : members_) {
    if (member.state == NodeState::kUp) up.push_back(node);
  }
  return up;  // std::map iteration is already sorted
}

std::vector<MemberInfo> Membership::Members() const {
  std::vector<MemberInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(members_.size());
  for (const auto& [node, member] : members_) {
    out.push_back(MemberInfo{node, member.state, member.last_heartbeat});
  }
  return out;
}

uint64_t Membership::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

}  // namespace cluster
}  // namespace marlin

#include "cluster/log_replication.h"

#include <algorithm>
#include <utility>

#include "chk/chk.h"

namespace marlin {
namespace cluster {

LogReplicator::LogReplicator(ClusterNode* node, Options options)
    : node_(node), options_(std::move(options)) {
  MARLIN_CHK_INVARIANT(options_.num_partitions >= 1,
                       "LogReplicator needs at least one partition");
  MARLIN_CHK_INVARIANT(static_cast<bool>(options_.log_for_partition),
                       "LogReplicator needs a log_for_partition mapping");
  partitions_.reserve(options_.num_partitions);
  for (int p = 0; p < options_.num_partitions; ++p) {
    partitions_.push_back(std::make_unique<storage::ReplicatedPartition>(p));
  }
  obs::MetricsRegistry* registry =
      obs::MetricsRegistry::OrGlobal(options_.metrics);
  const obs::Labels labels = {{"topic", options_.topic}};
  replicated_records_ = registry->GetCounter(
      "marlin_storage_replicated_records_total",
      "Records appended to local logs from replicate frames", labels);
  acks_received_ = registry->GetCounter(
      "marlin_storage_replication_acks_total",
      "Replicate-ack frames folded into commit progress", labels);
  lag_gauge_ = registry->GetGauge(
      "marlin_storage_replication_lag",
      "Records the slowest follower trails the leader by, summed over "
      "partitions led by this node",
      labels);
  node_->RegisterFrameHandler(
      FrameType::kReplicate,
      [this](const Frame& frame) { OnReplicate(frame); });
  node_->RegisterFrameHandler(
      FrameType::kReplicateAck,
      [this](const Frame& frame) { OnReplicateAck(frame); });
  node_->AddTickListener([this](TimeMicros now) { OnTick(now); });
  RefreshRoles();
}

void LogReplicator::RefreshRoles() {
  const HashRing ring = node_->ring();
  const uint64_t epoch = ring.epoch();
  // The replica set is the full static roster (minus permanently removed
  // members), NOT the currently-up nodes: quorum must stay a majority of
  // the *cluster*. Deriving it from the up-set would let an isolated
  // minority — in the extreme, a single node whose view is {self} — shrink
  // the quorum to itself and "commit" records the other side never saw.
  // Down followers simply never ack, which is exactly what holds the
  // commit point back.
  std::vector<uint32_t> replicas;
  for (const MemberInfo& member : node_->membership().Members()) {
    if (member.id == node_->self()) continue;
    if (member.state == NodeState::kRemoved) continue;
    replicas.push_back(member.id);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& partition : partitions_) {
    const NodeId owner = ring.OwnerOfShard(partition->partition());
    if (owner == node_->self()) {
      if (partition->BecomeLeader(epoch, replicas)) {
        partition->SetLocalEnd(log(partition->partition())->end_offset());
      }
    } else if (owner != kNoNode) {
      partition->BecomeFollower(epoch, owner);
    }
  }
}

StatusOr<int64_t> LogReplicator::Append(int partition, TimeMicros timestamp,
                                        std::string key, std::string value) {
  if (partition < 0 || partition >= options_.num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!partitions_[partition]->is_leader()) {
      return Status::FailedPrecondition(
          "node " + std::to_string(node_->self()) +
          " is not the leader of partition " + std::to_string(partition));
    }
  }
  auto offset = log(partition)->Append(timestamp, std::move(key),
                                       std::move(value));
  if (!offset.ok()) return offset.status();
  std::lock_guard<std::mutex> lock(mu_);
  partitions_[partition]->SetLocalEnd(log(partition)->end_offset());
  return offset;
}

int64_t LogReplicator::committed(int partition) const {
  if (partition < 0 || partition >= options_.num_partitions) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_[partition]->committed();
}

bool LogReplicator::is_leader(int partition) const {
  if (partition < 0 || partition >= options_.num_partitions) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_[partition]->is_leader();
}

int64_t LogReplicator::TotalReplicationLag() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& partition : partitions_) {
    total += partition->ReplicationLag();
  }
  return total;
}

void LogReplicator::OnTick(TimeMicros now) {
  (void)now;  // retransmission is state-driven, not timer-driven
  RefreshRoles();
  // Collect the work under the lock, then send with it released —
  // synchronous in-process delivery can re-enter OnReplicateAck.
  struct Shipment {
    int partition;
    uint64_t epoch;
    uint32_t follower;
    int64_t from;
  };
  std::vector<Shipment> shipments;
  int64_t total_lag = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& partition : partitions_) {
      if (!partition->is_leader()) continue;
      total_lag += partition->ReplicationLag();
      for (const auto& [follower, from] : partition->PendingReplication()) {
        shipments.push_back(Shipment{partition->partition(),
                                     partition->epoch(), follower, from});
      }
    }
  }
  lag_gauge_->Set(total_lag);
  for (const Shipment& shipment : shipments) {
    auto batch = log(shipment.partition)
                     ->Read(shipment.from, options_.max_batch);
    if (!batch.ok() || batch->empty()) continue;
    // Record what this frame covers *before* it can be acked (the
    // in-process transport delivers synchronously): acks are only credited
    // up to offsets actually shipped this epoch, so a rejoined follower's
    // divergent suffix can never vouch for a quorum commit.
    {
      std::lock_guard<std::mutex> lock(mu_);
      partitions_[static_cast<size_t>(shipment.partition)]->MarkShipped(
          shipment.follower, shipment.epoch, batch->back().offset + 1);
    }
    WireWriter writer;
    writer.PutString16(options_.topic);
    writer.PutU32(static_cast<uint32_t>(shipment.partition));
    writer.PutU64(shipment.epoch);
    writer.PutU64(static_cast<uint64_t>((*batch)[0].offset));
    writer.PutU32(static_cast<uint32_t>(batch->size()));
    for (const storage::LogRecord& record : *batch) {
      writer.PutU64(static_cast<uint64_t>(record.timestamp));
      writer.PutString16(record.key);
      writer.PutString32(record.value);
    }
    Frame frame;
    frame.type = FrameType::kReplicate;
    frame.src = node_->self();
    frame.payload = writer.Take();
    node_->wire()->Send(shipment.follower, frame);
  }
}

void LogReplicator::OnReplicate(const Frame& frame) {
  WireReader reader(frame.payload);
  std::string topic;
  uint32_t partition = 0;
  uint64_t epoch = 0;
  uint64_t from = 0;
  uint32_t count = 0;
  if (!reader.GetString16(&topic) || !reader.GetU32(&partition) ||
      !reader.GetU64(&epoch) || !reader.GetU64(&from) ||
      !reader.GetU32(&count)) {
    return;
  }
  if (topic != options_.topic ||
      partition >= static_cast<uint32_t>(options_.num_partitions)) {
    return;
  }
  int64_t acked_end = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    storage::ReplicatedPartition& state = *partitions_[partition];
    if (!state.AcceptReplicate(frame.src, epoch)) return;
    storage::PartitionLog* target = log(static_cast<int>(partition));
    int64_t appended = 0;
    for (uint32_t i = 0; i < count; ++i) {
      storage::LogRecord record;
      uint64_t timestamp = 0;
      if (!reader.GetU64(&timestamp) || !reader.GetString16(&record.key) ||
          !reader.GetString32(&record.value)) {
        break;  // malformed tail; ack whatever was verified so far
      }
      record.timestamp = static_cast<TimeMicros>(timestamp);
      record.offset = static_cast<int64_t>(from) + i;
      if (record.offset < state.verified_end()) continue;  // known to match
      if (record.offset < target->start_offset()) {
        // Compacted away locally — only quorum-committed (hence identical)
        // records are ever compacted, so the overlap needs no comparison.
        state.AdvanceVerified(record.offset + 1);
        continue;
      }
      const int64_t end = target->end_offset();
      if (record.offset > end) break;  // gap: leader will resend from end
      if (record.offset < end) {
        // Unverified overlap with the local log. If this node was deposed
        // as leader it may hold a *divergent* uncommitted suffix at these
        // offsets; blindly skipping them would let later acks vouch for
        // bytes that differ from the leader's. Compare, and truncate the
        // local suffix at the first mismatch.
        auto local = target->Read(record.offset, 1);
        if (!local.ok() || local->empty()) break;
        if (local->front() == record) {
          state.AdvanceVerified(record.offset + 1);
          continue;
        }
        if (!target->TruncateSuffix(record.offset).ok()) break;
      }
      if (!target->AppendRecord(record).ok()) break;
      ++appended;
      state.AdvanceVerified(record.offset + 1);
    }
    if (appended > 0) replicated_records_->Increment(appended);
    // Ack only the verified prefix, never the raw log end: offsets past it
    // may hold a divergent suffix the leader has not confirmed. The leader
    // resumes shipping from the acked end, so verification advances one
    // batch per round-trip until the logs provably agree.
    acked_end = std::min(state.verified_end(), target->end_offset());
  }
  WireWriter writer;
  writer.PutString16(options_.topic);
  writer.PutU32(partition);
  writer.PutU64(epoch);
  writer.PutU64(static_cast<uint64_t>(acked_end));
  Frame ack;
  ack.type = FrameType::kReplicateAck;
  ack.src = node_->self();
  ack.payload = writer.Take();
  node_->wire()->Send(frame.src, ack);
}

void LogReplicator::OnReplicateAck(const Frame& frame) {
  WireReader reader(frame.payload);
  std::string topic;
  uint32_t partition = 0;
  uint64_t epoch = 0;
  uint64_t acked_end = 0;
  if (!reader.GetString16(&topic) || !reader.GetU32(&partition) ||
      !reader.GetU64(&epoch) || !reader.GetU64(&acked_end)) {
    return;
  }
  if (topic != options_.topic ||
      partition >= static_cast<uint32_t>(options_.num_partitions)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (partitions_[partition]->OnAck(frame.src, epoch,
                                    static_cast<int64_t>(acked_end))) {
    acks_received_->Increment();
  }
}

}  // namespace cluster
}  // namespace marlin

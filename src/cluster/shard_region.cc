#include "cluster/shard_region.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "chk/chk.h"
#include "util/logging.h"

namespace marlin {
namespace cluster {
namespace {

/// Wire-envelope flag bits (payload byte after the region tag).
constexpr uint8_t kFlagForwarded = 1u << 0;  // already took its forward hop
constexpr uint8_t kFlagReplayed = 1u << 1;   // re-sent from a handoff buffer

int64_t SteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardRegion::ShardRegion(ShardRegionOptions options, ActorSystem* system,
                         Transport* transport, NodeId self,
                         const HashRing& ring, obs::MetricsRegistry* metrics)
    : options_(std::move(options)),
      system_(system),
      transport_(transport),
      self_(self),
      ring_(ring),
      shards_(static_cast<size_t>(ring.num_shards())) {
  for (int shard = 0; shard < ring.num_shards(); ++shard) {
    shards_[static_cast<size_t>(shard)].owner = ring.OwnerOfShard(shard);
  }
  obs::MetricsRegistry* registry = obs::MetricsRegistry::OrGlobal(metrics);
  const obs::Labels region_label = {{"region", options_.name}};
  auto route_counter = [&](const char* route) {
    obs::Labels labels = region_label;
    labels.emplace_back("route", route);
    return registry->GetCounter("marlin_cluster_envelopes_total",
                                "Envelopes routed by the shard region",
                                std::move(labels));
  };
  metrics_.local = route_counter("local");
  metrics_.remote = route_counter("remote");
  metrics_.forwarded = route_counter("forward");
  metrics_.misrouted = route_counter("misrouted");
  metrics_.buffered = route_counter("buffered");
  metrics_.replayed = route_counter("replayed");
  metrics_.dropped = route_counter("dropped");
  metrics_.handoffs = registry->GetCounter(
      "marlin_cluster_handoffs_total", "Completed shard handoffs (buffer "
      "flushed after the next owner's ack)", region_label);
  metrics_.shards_owned = registry->GetGauge(
      "marlin_cluster_shards_owned", "Shards owned by this node",
      region_label);
  metrics_.entities = registry->GetGauge(
      "marlin_cluster_entities", "Live local entity actors", region_label);
  metrics_.buffered_now = registry->GetGauge(
      "marlin_cluster_envelopes_buffered",
      "Envelopes parked awaiting a handoff ack", region_label);
  metrics_.handoff_latency = registry->GetHistogram(
      "marlin_cluster_handoff_latency_nanos",
      "Handoff begin→ack→flush latency", region_label);
  metrics_.shards_owned->Set(
      static_cast<int64_t>(ring.ShardsOwnedBy(self_).size()));
}

Frame ShardRegion::MakeEnvelopeFrame(const std::string& entity,
                                     const std::string& payload, uint64_t seq,
                                     uint8_t flags) const {
  WireWriter writer;
  writer.PutString16(options_.name);
  writer.PutU8(flags);
  writer.PutString16(entity);
  writer.PutString32(payload);
  Frame frame;
  frame.type = FrameType::kEnvelope;
  frame.src = self_;
  frame.seq = seq;
  frame.payload = writer.Take();
  return frame;
}

bool ShardRegion::Tell(const std::string& entity, std::string payload) {
  enum class Route { kLocal, kRemote, kBuffered };
  Route route;
  NodeId owner = kNoNode;
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int shard = ring_.ShardForKey(entity);
    ShardInfo& info = shards_[static_cast<size_t>(shard)];
    if (info.buffering) {
      seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
      info.buffer.push_back(BufferedEnvelope{entity, std::move(payload), seq});
      metrics_.buffered->Increment();
      metrics_.buffered_now->Add(1);
      return true;
    }
    owner = info.owner;
    if (owner == self_ || owner == kNoNode) {
      route = Route::kLocal;
    } else {
      route = Route::kRemote;
      seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (route == Route::kLocal) {
    metrics_.local->Increment();
    DeliverLocal(entity, std::move(payload), self_, 0);
    return true;
  }
  const Frame frame = MakeEnvelopeFrame(entity, payload, seq, 0);
  if (!transport_->Send(owner, frame)) {
    metrics_.dropped->Increment();
    return false;
  }
  metrics_.remote->Increment();
  return true;
}

StatusOr<ActorRef> ShardRegion::Resolve(const std::string& entity) {
  NodeId owner;
  {
    std::lock_guard<std::mutex> lock(mu_);
    owner = shards_[static_cast<size_t>(ring_.ShardForKey(entity))].owner;
  }
  const std::string actor_name = options_.name + "/" + entity;
  if (owner == self_ || owner == kNoNode) {
    StatusOr<ActorRef> ref = system_->GetOrSpawn(
        actor_name, [this, &entity] { return options_.factory(entity); });
    if (ref.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      const int shard = ring_.ShardForKey(entity);
      ShardInfo& info = shards_[static_cast<size_t>(shard)];
      if (info.local_entities.insert(entity).second) {
        metrics_.entities->Add(1);
      }
    }
    return ref;
  }
  // Remote entity: hand out a ref whose deliveries re-enter this region,
  // so the route stays correct across later handoffs.
  auto deliver = std::make_shared<ActorRef::RemoteDeliverFn>(
      [this, entity](std::any message) {
        std::string* payload = std::any_cast<std::string>(&message);
        if (payload == nullptr) return false;  // cross-node needs bytes
        return Tell(entity, std::move(*payload));
      });
  return ActorRef::Remote(actor_name, std::move(deliver));
}

void ShardRegion::DeliverLocal(const std::string& entity, std::string payload,
                               NodeId origin, uint64_t seq) {
#if defined(MARLIN_CHECKED) && MARLIN_CHECKED
  if (origin != self_) {
    std::lock_guard<std::mutex> lock(mu_);
    const bool fresh = delivered_[origin].insert(seq).second;
    MARLIN_CHK_INVARIANT(
        fresh, "envelope (origin=" + std::to_string(origin) + ", seq=" +
                   std::to_string(seq) + ") delivered twice in region '" +
                   options_.name + "'");
  }
#else
  (void)origin;
  (void)seq;
#endif
  const std::string actor_name = options_.name + "/" + entity;
  StatusOr<ActorRef> ref = system_->GetOrSpawn(
      actor_name, [this, &entity] { return options_.factory(entity); });
  if (!ref.ok()) return;  // shutting down
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int shard = ring_.ShardForKey(entity);
    ShardInfo& info = shards_[static_cast<size_t>(shard)];
    MARLIN_CHK_INVARIANT(
        info.owner == self_ || info.owner == kNoNode || origin != self_,
        "local delivery for shard " + std::to_string(shard) +
            " this node does not own (region '" + options_.name + "')");
    if (info.local_entities.insert(entity).second) {
      metrics_.entities->Add(1);
    }
  }
  system_->Tell(*ref, ShardEnvelope{entity, std::move(payload)});
}

void ShardRegion::OnEnvelope(const Frame& frame) {
  WireReader reader(frame.payload);
  std::string region, entity, payload;
  uint8_t flags = 0;
  if (!reader.GetString16(&region) || !reader.GetU8(&flags) ||
      !reader.GetString16(&entity) || !reader.GetString32(&payload)) {
    metrics_.dropped->Increment();
    return;
  }
  enum class Route { kDeliver, kForward, kMisrouteDeliver };
  Route route;
  NodeId owner;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int shard = ring_.ShardForKey(entity);
    owner = shards_[static_cast<size_t>(shard)].owner;
    if (owner == self_ || owner == kNoNode) {
      route = Route::kDeliver;
    } else if ((flags & kFlagForwarded) == 0) {
      // The sender's ring lagged ours; forward one hop to the owner we
      // know. The flag caps route length at 2 so view splits cannot loop.
      route = Route::kForward;
    } else {
      route = Route::kMisrouteDeliver;
    }
  }
  switch (route) {
    case Route::kDeliver:
      DeliverLocal(entity, std::move(payload), frame.src, frame.seq);
      break;
    case Route::kForward: {
      Frame forwarded = MakeEnvelopeFrame(entity, payload, frame.seq,
                                          flags | kFlagForwarded);
      // Preserve the original origin so duplicate detection stays keyed on
      // the true sender's sequence.
      forwarded.src = frame.src;
      if (transport_->Send(owner, forwarded)) {
        metrics_.forwarded->Increment();
      } else {
        metrics_.dropped->Increment();
      }
      break;
    }
    case Route::kMisrouteDeliver:
      // Both hops disagreed with us — deliver rather than loop; the next
      // topology convergence re-homes the entity.
      metrics_.misrouted->Increment();
      DeliverLocal(entity, std::move(payload), frame.src, frame.seq);
      break;
  }
}

void ShardRegion::ApplyTopology(const HashRing& ring) {
  std::vector<std::pair<NodeId, Frame>> sends;
  std::vector<std::string> stop_entities;
  std::vector<BufferedEnvelope> local_replay;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_ = ring;
    for (int shard = 0; shard < ring_.num_shards(); ++shard) {
      ShardInfo& info = shards_[static_cast<size_t>(shard)];
      const NodeId new_owner = ring_.OwnerOfShard(shard);
      const NodeId old_owner = info.owner;
      if (new_owner == old_owner) continue;
      info.owner = new_owner;
      if (new_owner == self_) {
        // Gained the shard. Any envelopes we were buffering toward a
        // now-dethroned owner are ours to deliver.
        if (info.buffering) {
          info.buffering = false;
          metrics_.buffered_now->Sub(
              static_cast<int64_t>(info.buffer.size()));
          for (BufferedEnvelope& env : info.buffer) {
            local_replay.push_back(std::move(env));
          }
          info.buffer.clear();
        }
        continue;
      }
      // Shard now belongs to a peer: stop local entities (successors spawn
      // on demand on the owner) and open a handoff so in-flight sends
      // buffer until the owner confirms.
      if (old_owner == self_) {
        for (const std::string& entity : info.local_entities) {
          stop_entities.push_back(entity);
        }
        metrics_.entities->Sub(
            static_cast<int64_t>(info.local_entities.size()));
        info.local_entities.clear();
      }
      if (!info.buffering) {
        info.buffering = true;
        info.begin_sent_nanos = SteadyNanos();
      }
      // New owner, fresh handoff conversation: restart the retry backoff
      // (the inline begin below counts as attempt zero; the next Tick may
      // retransmit immediately in case it was lost).
      info.next_resend_at = 0;
      info.resend_delay = options_.handoff_resend_initial;
      info.resend_attempts = 0;
      WireWriter writer;
      writer.PutString16(options_.name);
      writer.PutU32(static_cast<uint32_t>(shard));
      writer.PutU64(ring_.epoch());
      Frame begin;
      begin.type = FrameType::kHandoffBegin;
      begin.src = self_;
      begin.payload = writer.Take();
      sends.emplace_back(new_owner, std::move(begin));
    }
    metrics_.shards_owned->Set(
        static_cast<int64_t>(ring_.ShardsOwnedBy(self_).size()));
  }
  for (const std::string& entity : stop_entities) {
    StatusOr<ActorRef> ref = system_->Find(options_.name + "/" + entity);
    if (ref.ok()) system_->Stop(*ref);
  }
  for (auto& [to, frame] : sends) {
    transport_->Send(to, frame);
  }
  for (BufferedEnvelope& env : local_replay) {
    metrics_.replayed->Increment();
    DeliverLocal(env.entity, std::move(env.payload), self_, 0);
  }
}

void ShardRegion::OnHandoffBegin(NodeId from, int shard, uint64_t epoch) {
  (void)epoch;  // informational: the sender's view when it opened the handoff
  bool ack = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shard >= 0 && shard < ring_.num_shards()) {
      // Only confirm shards we agree we own; a lagging view acks nothing
      // and the sender's Tick retries after we converge.
      ack = shards_[static_cast<size_t>(shard)].owner == self_;
    }
  }
  if (!ack) return;
  WireWriter writer;
  writer.PutString16(options_.name);
  writer.PutU32(static_cast<uint32_t>(shard));
  Frame frame;
  frame.type = FrameType::kHandoffAck;
  frame.src = self_;
  frame.payload = writer.Take();
  transport_->Send(from, frame);
}

void ShardRegion::OnHandoffAck(NodeId from, int shard) {
  std::vector<BufferedEnvelope> flush;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shard < 0 || shard >= ring_.num_shards()) return;
    ShardInfo& info = shards_[static_cast<size_t>(shard)];
    // Stale ack (owner moved again, or duplicate): ignore.
    if (!info.buffering || info.owner != from) return;
    info.buffering = false;
    flush.swap(info.buffer);
    metrics_.buffered_now->Sub(static_cast<int64_t>(flush.size()));
    metrics_.handoffs->Increment();
    metrics_.handoff_latency->Observe(SteadyNanos() - info.begin_sent_nanos);
  }
  for (BufferedEnvelope& env : flush) {
    const Frame frame =
        MakeEnvelopeFrame(env.entity, env.payload, env.seq, kFlagReplayed);
    if (transport_->Send(from, frame)) {
      metrics_.replayed->Increment();
    } else {
      metrics_.dropped->Increment();
    }
  }
}

void ShardRegion::ResendPendingHandoffs(TimeMicros now) {
  std::vector<std::pair<NodeId, Frame>> sends;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int shard = 0; shard < ring_.num_shards(); ++shard) {
      ShardInfo& info = shards_[static_cast<size_t>(shard)];
      if (!info.buffering || info.owner == kNoNode) continue;
      if (now < info.next_resend_at) continue;  // backoff window still open
      if (info.resend_delay <= 0) {
        info.resend_delay = options_.handoff_resend_initial;
      }
      info.next_resend_at = now + info.resend_delay;
      ++info.resend_attempts;
      if (info.resend_attempts >= 2) {
        info.resend_delay =
            std::min(info.resend_delay * 2, options_.handoff_resend_max);
      }
      WireWriter writer;
      writer.PutString16(options_.name);
      writer.PutU32(static_cast<uint32_t>(shard));
      writer.PutU64(ring_.epoch());
      Frame begin;
      begin.type = FrameType::kHandoffBegin;
      begin.src = self_;
      begin.payload = writer.Take();
      sends.emplace_back(info.owner, std::move(begin));
    }
  }
  for (auto& [to, frame] : sends) {
    transport_->Send(to, frame);
  }
}

NodeId ShardRegion::OwnerOfShard(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return kNoNode;
  return shards_[static_cast<size_t>(shard)].owner;
}

int ShardRegion::ShardForEntity(const std::string& entity) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.ShardForKey(entity);
}

size_t ShardRegion::OwnedShardCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t owned = 0;
  for (const ShardInfo& info : shards_) {
    if (info.owner == self_) ++owned;
  }
  return owned;
}

size_t ShardRegion::BufferedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t buffered = 0;
  for (const ShardInfo& info : shards_) buffered += info.buffer.size();
  return buffered;
}

size_t ShardRegion::LocalEntityCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t entities = 0;
  for (const ShardInfo& info : shards_) {
    entities += info.local_entities.size();
  }
  return entities;
}

}  // namespace cluster
}  // namespace marlin

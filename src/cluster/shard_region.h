#ifndef MARLIN_CLUSTER_SHARD_REGION_H_
#define MARLIN_CLUSTER_SHARD_REGION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "actor/actor_system.h"
#include "cluster/frame.h"
#include "cluster/hash_ring.h"
#include "cluster/transport.h"
#include "obs/metrics.h"

namespace marlin {
namespace cluster {

/// What a sharded entity actor receives: the entity key (MMSI) plus the
/// opaque payload bytes the sender routed. Payloads are strings because a
/// message that may cross a node boundary must be serialisable anyway; the
/// entity actor owns the decode.
struct ShardEnvelope {
  std::string entity;
  std::string payload;
};

struct ShardRegionOptions {
  /// Region name, e.g. "vessel". Scopes entity actor names
  /// ("vessel/244060000") and appears as the wire-envelope region tag and
  /// the metrics label.
  std::string name = "entities";
  /// Builds the entity actor on first local delivery — the distributed
  /// extension of ActorSystem::GetOrSpawn's factory.
  std::function<std::unique_ptr<Actor>(const std::string& entity)> factory;
  /// Handoff-begin retransmission backoff: first retry after `initial`,
  /// doubling per retry up to `max`. Bounded backoff instead of
  /// retry-every-tick so a wedged peer sees O(log) duplicate begins, not a
  /// begin per heartbeat forever; retries never stop entirely because the
  /// buffered envelopes cannot be released without an ack.
  TimeMicros handoff_resend_initial = 200'000;
  TimeMicros handoff_resend_max = 1'600'000;
};

/// The front door to a sharded entity type, Akka-cluster-sharding style:
/// `Tell(entity, payload)` transparently either delivers to a local actor
/// (spawned on demand via the region factory, exactly like
/// ActorSystem::GetOrSpawn) or serialises the envelope onto the transport
/// toward the node that owns the entity's shard.
///
/// Topology changes drive per-shard handoff: while a shard migrates, this
/// region buffers envelopes for it, sends the new owner a handoff-begin,
/// and replays the buffer only after the owner acks — so no envelope is
/// lost in the window and (chk-asserted) none is delivered twice. Local
/// entity actors of a lost shard are stopped; their successors spawn on
/// demand on the new owner.
///
/// Created via ClusterNode::CreateRegion; thread-safe.
class ShardRegion {
 public:
  /// Internal constructor — use ClusterNode::CreateRegion.
  ShardRegion(ShardRegionOptions options, ActorSystem* system,
              Transport* transport, NodeId self, const HashRing& ring,
              obs::MetricsRegistry* metrics);

  const std::string& name() const { return options_.name; }

  /// Routes `payload` to `entity`'s actor, wherever its shard lives.
  /// Returns false only when the envelope could not even be queued
  /// (transport down and shard remote).
  bool Tell(const std::string& entity, std::string payload);

  /// Resolves an ActorRef for `entity`: a live local ref (spawning on
  /// demand) when this node owns the shard, or a remote ref whose
  /// deliveries route back through this region. Remote refs accept only
  /// std::string payloads; Ask is not supported across nodes.
  StatusOr<ActorRef> Resolve(const std::string& entity);

  // -- Introspection (tests, admin API) ---------------------------------

  int num_shards() const { return static_cast<int>(shards_.size()); }
  NodeId OwnerOfShard(int shard) const;
  int ShardForEntity(const std::string& entity) const;
  /// Shards this node owns per its current ring snapshot.
  size_t OwnedShardCount() const;
  /// Envelopes currently parked waiting for a handoff ack.
  size_t BufferedCount() const;
  /// Live local entity actors.
  size_t LocalEntityCount() const;

 private:
  friend class ClusterNode;

  struct BufferedEnvelope {
    std::string entity;
    std::string payload;
    uint64_t seq = 0;
  };

  struct ShardInfo {
    NodeId owner = kNoNode;
    /// True while this node waits for the owner's handoff ack; Tells for
    /// the shard park in `buffer` meanwhile.
    bool buffering = false;
    std::vector<BufferedEnvelope> buffer;
    int64_t begin_sent_nanos = 0;  // steady-clock stamp for handoff latency
    /// Earliest protocol time the next handoff-begin retransmit may go out
    /// (0 = retransmit on the next Tick) and the doubling retry delay.
    /// The delay starts doubling from the second retransmit: the first one
    /// re-covers a begin frame lost in flight at full speed; backoff only
    /// kicks in once the peer is evidently not ready to ack.
    TimeMicros next_resend_at = 0;
    TimeMicros resend_delay = 0;
    int resend_attempts = 0;
    std::set<std::string> local_entities;
  };

  // Frame entry points, called by ClusterNode's dispatcher.
  void OnEnvelope(const Frame& frame);
  void OnHandoffBegin(NodeId from, int shard, uint64_t epoch);
  void OnHandoffAck(NodeId from, int shard);
  /// Adopts a new ring snapshot; stops local entities of lost shards and
  /// opens handoffs toward the new owners.
  void ApplyTopology(const HashRing& ring);
  /// Re-sends handoff-begin for shards stuck buffering (owner view lagged
  /// or the begin frame was lost), honoring the per-shard doubling backoff.
  /// Called from ClusterNode::Tick with protocol time.
  void ResendPendingHandoffs(TimeMicros now);

  /// Encodes a wire envelope frame for `entity`.
  Frame MakeEnvelopeFrame(const std::string& entity,
                          const std::string& payload, uint64_t seq,
                          uint8_t flags) const;

  /// Spawns (if needed) and tells the local entity actor. `origin`/`seq`
  /// identify remote-originated envelopes for the duplicate-delivery
  /// check; local tells pass origin == self.
  void DeliverLocal(const std::string& entity, std::string payload,
                    NodeId origin, uint64_t seq);

  const ShardRegionOptions options_;
  ActorSystem* system_;
  Transport* transport_;
  const NodeId self_;

  mutable std::mutex mu_;
  HashRing ring_;
  std::vector<ShardInfo> shards_;
  std::atomic<uint64_t> next_seq_{1};

#if defined(MARLIN_CHECKED) && MARLIN_CHECKED
  /// Every (origin, seq) pair delivered locally — duplicate delivery after
  /// handoff is the bug class this exists to catch. Checked builds only
  /// (unbounded growth is fine for test lifetimes).
  std::unordered_map<NodeId, std::unordered_set<uint64_t>> delivered_;
#endif

  struct Metrics {
    obs::Counter* local = nullptr;
    obs::Counter* remote = nullptr;
    obs::Counter* forwarded = nullptr;
    obs::Counter* misrouted = nullptr;
    obs::Counter* buffered = nullptr;
    obs::Counter* replayed = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* handoffs = nullptr;
    obs::Gauge* shards_owned = nullptr;
    obs::Gauge* entities = nullptr;
    obs::Gauge* buffered_now = nullptr;
    obs::Histogram* handoff_latency = nullptr;
  };
  Metrics metrics_;
};

}  // namespace cluster
}  // namespace marlin

#endif  // MARLIN_CLUSTER_SHARD_REGION_H_

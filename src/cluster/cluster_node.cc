#include "cluster/cluster_node.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "chk/chk.h"
#include "util/logging.h"

namespace marlin {
namespace cluster {
namespace {

TimeMicros WallNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Message type driving TickerActor.
struct TickMsg {};

/// Extracts the sender membership epoch from a heartbeat/ack payload.
/// Empty payload (a pre-epoch sender) decodes as 0 = "no epoch reported".
uint64_t SenderEpochOf(const Frame& frame) {
  WireReader reader(frame.payload);
  uint64_t epoch = 0;
  if (!reader.GetU64(&epoch)) return 0;
  return epoch;
}

}  // namespace

/// Decorates the wire transport with per-peer frame/byte accounting so the
/// counters live in one place no matter which transport implementation is
/// underneath. Regions and the node itself send through this.
class ClusterNode::CountingTransport : public Transport {
 public:
  CountingTransport(std::shared_ptr<Transport> wrapped,
                    const std::vector<NodeId>& roster,
                    obs::MetricsRegistry* registry) {
    wrapped_ = std::move(wrapped);
    for (const NodeId peer : roster) {
      PeerCounters counters;
      const obs::Labels labels = {{"peer", std::to_string(peer)}};
      counters.frames_sent = registry->GetCounter(
          "marlin_cluster_frames_sent_total", "Frames sent per peer", labels);
      counters.bytes_sent = registry->GetCounter(
          "marlin_cluster_bytes_sent_total",
          "Payload bytes sent per peer", labels);
      counters.frames_received = registry->GetCounter(
          "marlin_cluster_frames_received_total", "Frames received per peer",
          labels);
      counters.bytes_received = registry->GetCounter(
          "marlin_cluster_bytes_received_total",
          "Payload bytes received per peer", labels);
      peers_.emplace(peer, counters);
    }
  }

  Status Start(NodeId self, FrameHandler handler) override {
    return wrapped_->Start(self, std::move(handler));
  }

  // Pure accounting decorator: the wrapped wire transport carries the
  // MARLIN_FAULT_POINT, so injecting here too would double-count faults.
  bool Send(NodeId to, const Frame& frame) override {  // chk-lint: allow(fault-point)
    if (!wrapped_->Send(to, frame)) return false;
    auto it = peers_.find(to);
    if (it != peers_.end()) {
      it->second.frames_sent->Increment();
      it->second.bytes_sent->Increment(frame.payload.size());
    }
    return true;
  }

  void Shutdown() override { wrapped_->Shutdown(); }

  void CountReceived(const Frame& frame) {
    auto it = peers_.find(frame.src);
    if (it == peers_.end()) return;
    it->second.frames_received->Increment();
    it->second.bytes_received->Increment(frame.payload.size());
  }

 private:
  struct PeerCounters {
    obs::Counter* frames_sent = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* frames_received = nullptr;
    obs::Counter* bytes_received = nullptr;
  };

  std::shared_ptr<Transport> wrapped_;
  std::map<NodeId, PeerCounters> peers_;  // immutable after construction
};

/// Internal actor rescheduling itself at the heartbeat interval to drive
/// Tick() off the wall clock (auto_tick mode). Using the actor timer wheel
/// keeps the cluster layer free of raw threads.
class ClusterNode::TickerActor : public Actor {
 public:
  explicit TickerActor(ClusterNode* node) : node_(node) {}

  Status Receive(const std::any& message, ActorContext& ctx) override {
    (void)message;
    (void)ctx;
    node_->Tick(WallNowMicros());
    node_->ScheduleNextTick();
    return Status::Ok();
  }

 private:
  ClusterNode* node_;
};

ClusterNode::ClusterNode(const ClusterNodeConfig& config,
                         std::shared_ptr<Transport> transport)
    : config_(config),
      transport_(std::move(transport)),
      membership_(config.self, config.nodes, config.membership),
      system_(config.actor),
      ring_(config.num_shards, config.vnodes_per_node) {
  obs::MetricsRegistry* registry =
      obs::MetricsRegistry::OrGlobal(config_.metrics);
  counting_transport_ = std::make_unique<CountingTransport>(
      transport_, config_.nodes, registry);
  metrics_.heartbeats_sent = registry->GetCounter(
      "marlin_cluster_heartbeats_sent_total", "Heartbeat frames sent");
  metrics_.heartbeats_received = registry->GetCounter(
      "marlin_cluster_heartbeats_received_total",
      "Heartbeat and heartbeat-ack frames received");
  metrics_.transitions_up = registry->GetCounter(
      "marlin_cluster_membership_transitions_total",
      "Membership transitions by resulting state", {{"to", "up"}});
  metrics_.transitions_unreachable = registry->GetCounter(
      "marlin_cluster_membership_transitions_total",
      "Membership transitions by resulting state", {{"to", "unreachable"}});
  metrics_.transitions_removed = registry->GetCounter(
      "marlin_cluster_membership_transitions_total",
      "Membership transitions by resulting state", {{"to", "removed"}});
  metrics_.epoch = registry->GetGauge("marlin_cluster_membership_epoch",
                                      "Current membership epoch");
  metrics_.members_up =
      registry->GetGauge("marlin_cluster_members_up", "Members in state up");
  // Bootstrap ring: only self is up until peers prove themselves with a
  // heartbeat, so every node starts owning the full shard space locally.
  ring_.SetMembers(membership_.UpNodes(), membership_.epoch());
  metrics_.epoch->Set(static_cast<int64_t>(membership_.epoch()));
  metrics_.members_up->Set(
      static_cast<int64_t>(membership_.UpNodes().size()));
}

ClusterNode::~ClusterNode() { Shutdown(); }

Status ClusterNode::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (shut_down_) return Status::FailedPrecondition("node was shut down");
    if (started_) return Status::FailedPrecondition("node already started");
    started_ = true;
  }
  Status status = counting_transport_->Start(
      config_.self, [this](const Frame& frame) { OnFrame(frame); });
  if (!status.ok()) return status;
  if (config_.auto_tick) {
    StatusOr<ActorRef> ticker = system_.Spawn(
        "cluster/ticker", std::make_unique<TickerActor>(this));
    if (!ticker.ok()) return ticker.status();
    {
      std::lock_guard<std::mutex> lock(lifecycle_mu_);
      ticker_ref_ = *ticker;
    }
    ScheduleNextTick();
  }
  return Status::Ok();
}

void ClusterNode::ScheduleNextTick() {
  ActorRef ticker;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (shut_down_) return;
    ticker = ticker_ref_;
  }
  system_.ScheduleTell(config_.membership.heartbeat_interval, ticker,
                       TickMsg{});
}

void ClusterNode::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Transport first: joins any reader threads, so no frame handler runs
  // into a dying actor system.
  counting_transport_->Shutdown();
  system_.Shutdown();
}

StatusOr<ShardRegion*> ClusterNode::CreateRegion(ShardRegionOptions options) {
  if (!options.factory) {
    return Status::InvalidArgument("region '" + options.name +
                                   "' needs an entity factory");
  }
  HashRing ring_snapshot;
  {
    std::lock_guard<std::mutex> lock(topology_mu_);
    ring_snapshot = ring_;
  }
  std::lock_guard<std::mutex> lock(regions_mu_);
  if (regions_.count(options.name) > 0) {
    return Status::AlreadyExists("region '" + options.name +
                                 "' already exists");
  }
  const std::string name = options.name;
  auto region = std::make_unique<ShardRegion>(
      std::move(options), &system_, counting_transport_.get(), config_.self,
      ring_snapshot, config_.metrics);
  ShardRegion* raw = region.get();
  regions_.emplace(name, std::move(region));
  return raw;
}

ShardRegion* ClusterNode::GetRegion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(regions_mu_);
  auto it = regions_.find(name);
  return it == regions_.end() ? nullptr : it->second.get();
}

void ClusterNode::Tick(TimeMicros now) {
  for (const NodeId peer : config_.nodes) {
    if (peer == config_.self) continue;
    if (membership_.StateOf(peer) == NodeState::kRemoved) continue;
    Frame heartbeat;
    heartbeat.type = FrameType::kHeartbeat;
    heartbeat.src = config_.self;
    // The sequence carries the sender's protocol time; the ack echoes it,
    // so liveness evidence stays on the sender's own clock (deterministic
    // under test-controlled time). The payload carries the sender's
    // membership epoch so receivers can reject frames from a superseded
    // view (delayed in flight across a topology change).
    heartbeat.seq = static_cast<uint64_t>(now);
    WireWriter writer;
    writer.PutU64(membership_.epoch());
    heartbeat.payload = writer.Take();
    if (counting_transport_->Send(peer, heartbeat)) {
      metrics_.heartbeats_sent->Increment();
    }
  }
  ApplyEvents(membership_.Tick(now));
  std::vector<ShardRegion*> regions;
  {
    std::lock_guard<std::mutex> lock(regions_mu_);
    for (auto& [name, region] : regions_) regions.push_back(region.get());
  }
  for (ShardRegion* region : regions) region->ResendPendingHandoffs(now);
  for (const auto& listener : tick_listeners_) listener(now);
}

void ClusterNode::RegisterFrameHandler(
    FrameType type, std::function<void(const Frame&)> handler) {
  frame_handlers_[type] = std::move(handler);
}

void ClusterNode::AddTickListener(std::function<void(TimeMicros)> listener) {
  tick_listeners_.push_back(std::move(listener));
}

Transport* ClusterNode::wire() { return counting_transport_.get(); }

void ClusterNode::OnFrame(const Frame& frame) {
  counting_transport_->CountReceived(frame);
  auto extension = frame_handlers_.find(frame.type);
  if (extension != frame_handlers_.end()) {
    extension->second(frame);
    return;
  }
  switch (frame.type) {
    case FrameType::kHello:
      // Connection attribution; consumed by the TCP transport layer.
      break;
    case FrameType::kHeartbeat: {
      metrics_.heartbeats_received->Increment();
      ApplyEvents(membership_.RecordHeartbeat(
          frame.src, static_cast<TimeMicros>(frame.seq),
          SenderEpochOf(frame)));
      Frame ack;
      ack.type = FrameType::kHeartbeatAck;
      ack.src = config_.self;
      ack.seq = frame.seq;  // echo the sender's timestamp
      WireWriter writer;
      writer.PutU64(membership_.epoch());  // the acker's own epoch
      ack.payload = writer.Take();
      counting_transport_->Send(frame.src, ack);
      break;
    }
    case FrameType::kHeartbeatAck:
      metrics_.heartbeats_received->Increment();
      ApplyEvents(membership_.RecordHeartbeat(
          frame.src, static_cast<TimeMicros>(frame.seq),
          SenderEpochOf(frame)));
      break;
    case FrameType::kEnvelope: {
      WireReader reader(frame.payload);
      std::string region_name;
      if (!reader.GetString16(&region_name)) break;
      ShardRegion* region = GetRegion(region_name);
      if (region != nullptr) region->OnEnvelope(frame);
      break;
    }
    case FrameType::kHandoffBegin: {
      WireReader reader(frame.payload);
      std::string region_name;
      uint32_t shard = 0;
      uint64_t epoch = 0;
      if (!reader.GetString16(&region_name) || !reader.GetU32(&shard) ||
          !reader.GetU64(&epoch)) {
        break;
      }
      ShardRegion* region = GetRegion(region_name);
      if (region != nullptr) {
        region->OnHandoffBegin(frame.src, static_cast<int>(shard), epoch);
      }
      break;
    }
    case FrameType::kHandoffAck: {
      WireReader reader(frame.payload);
      std::string region_name;
      uint32_t shard = 0;
      if (!reader.GetString16(&region_name) || !reader.GetU32(&shard)) break;
      ShardRegion* region = GetRegion(region_name);
      if (region != nullptr) {
        region->OnHandoffAck(frame.src, static_cast<int>(shard));
      }
      break;
    }
    case FrameType::kReplicate:
    case FrameType::kReplicateAck:
      // Replication frames are only meaningful through a registered
      // handler (cluster::LogReplicator); without one they are dropped.
      break;
  }
}

void ClusterNode::ApplyEvents(const std::vector<MembershipEvent>& events) {
  if (events.empty()) return;
  for (const MembershipEvent& event : events) {
    MARLIN_LOG(INFO) << "cluster node " << config_.self << ": member "
                     << event.node << " " << NodeStateName(event.from)
                     << " -> " << NodeStateName(event.to) << " (epoch "
                     << event.epoch << ")";
    switch (event.to) {
      case NodeState::kUp:
        metrics_.transitions_up->Increment();
        break;
      case NodeState::kUnreachable:
        metrics_.transitions_unreachable->Increment();
        break;
      case NodeState::kRemoved:
        metrics_.transitions_removed->Increment();
        break;
      case NodeState::kJoining:
        break;
    }
  }
  HashRing ring_snapshot;
  {
    std::lock_guard<std::mutex> lock(topology_mu_);
    ring_.SetMembers(membership_.UpNodes(), membership_.epoch());
    ring_snapshot = ring_;
  }
  metrics_.epoch->Set(static_cast<int64_t>(membership_.epoch()));
  metrics_.members_up->Set(
      static_cast<int64_t>(membership_.UpNodes().size()));
  std::vector<ShardRegion*> regions;
  {
    std::lock_guard<std::mutex> lock(regions_mu_);
    for (auto& [name, region] : regions_) regions.push_back(region.get());
  }
  for (ShardRegion* region : regions) region->ApplyTopology(ring_snapshot);
}

HashRing ClusterNode::ring() const {
  std::lock_guard<std::mutex> lock(topology_mu_);
  return ring_;
}

std::string ClusterNode::StatusJson() const {
  std::ostringstream out;
  out << "{\"self\":" << config_.self
      << ",\"epoch\":" << membership_.epoch() << ",\"members\":[";
  bool first = true;
  for (const MemberInfo& member : membership_.Members()) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":" << member.id << ",\"state\":\""
        << NodeStateName(member.state)
        << "\",\"last_heartbeat_micros\":" << member.last_heartbeat << "}";
  }
  out << "],\"regions\":[";
  std::lock_guard<std::mutex> lock(regions_mu_);
  first = true;
  for (const auto& [name, region] : regions_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << name
        << "\",\"num_shards\":" << region->num_shards()
        << ",\"shards_owned\":" << region->OwnedShardCount()
        << ",\"entities\":" << region->LocalEntityCount()
        << ",\"buffered\":" << region->BufferedCount() << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace cluster
}  // namespace marlin

#include "cluster/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "fault/fault_injector.h"
#include "util/logging.h"

namespace marlin {
namespace cluster {
namespace {

TimeMicros WallNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Writes the whole buffer, absorbing short writes. False on I/O error.
bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)) {
  obs::MetricsRegistry* registry =
      obs::MetricsRegistry::OrGlobal(options_.metrics);
  metrics_.connects = registry->GetCounter(
      "marlin_cluster_tcp_connects_total", "Outbound connections established");
  metrics_.accepts = registry->GetCounter(
      "marlin_cluster_tcp_accepts_total", "Inbound connections accepted");
  metrics_.send_drops_queue_full = registry->GetCounter(
      "marlin_cluster_tcp_send_drops_total",
      "Outbound frames dropped by reason", {{"reason", "queue_full"}});
  metrics_.send_drops_timeout = registry->GetCounter(
      "marlin_cluster_tcp_send_drops_total",
      "Outbound frames dropped by reason", {{"reason", "timeout"}});
  metrics_.send_drops_io = registry->GetCounter(
      "marlin_cluster_tcp_send_drops_total",
      "Outbound frames dropped by reason", {{"reason", "io"}});
  metrics_.send_drops_shutdown = registry->GetCounter(
      "marlin_cluster_tcp_send_drops_total",
      "Outbound frames dropped by reason", {{"reason", "shutdown"}});
  metrics_.send_drops_fault = registry->GetCounter(
      "marlin_cluster_tcp_send_drops_total",
      "Outbound frames dropped by reason", {{"reason", "fault"}});
  metrics_.decode_errors = registry->GetCounter(
      "marlin_cluster_tcp_decode_errors_total",
      "Inbound streams dropped on malformed frames");
}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::Listen() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(options_.listen_port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    ::close(fd);
    return Status::Unavailable("bind() failed on port " +
                               std::to_string(options_.listen_port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  // Discover the OS-assigned port when 0 was requested.
  socklen_t length = sizeof(address);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length) == 0) {
    port_ = ntohs(address.sin_port);
  }
  listen_fd_.store(fd);
  return Status::Ok();
}

void TcpTransport::SetPeers(std::vector<TcpPeer> peers) {
  for (TcpPeer& peer : peers) {
    auto state = std::make_unique<PeerState>();
    state->address = std::move(peer);
    peers_.emplace(state->address.id, std::move(state));
  }
}

Status TcpTransport::Start(NodeId self, FrameHandler handler) {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("transport already started");
  }
  if (listen_fd_.load() < 0) {
    Status status = Listen();
    if (!status.ok()) {
      running_.store(false);
      return status;
    }
  }
  self_ = self;
  handler_ = std::move(handler);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  for (auto& [id, peer] : peers_) {
    PeerState* raw = peer.get();
    peer->sender = std::thread([this, raw] { SenderLoop(raw); });
  }
  return Status::Ok();
}

bool TcpTransport::Send(NodeId to, const Frame& frame) {
  if (!running_.load(std::memory_order_acquire)) return false;
  auto it = peers_.find(to);
  if (it == peers_.end()) return false;
  if (MARLIN_FAULT_POINT("tcp.send") != fault::FaultAction::kNone) {
    metrics_.send_drops_fault->Increment();
    return false;
  }
  PeerState* peer = it->second.get();
  {
    std::lock_guard<std::mutex> lock(peer->mu);
    if (peer->queue.size() >= options_.max_queue) {
      metrics_.send_drops_queue_full->Increment();
      return false;
    }
    peer->queue.emplace_back(WallNowMicros(), EncodeFrame(frame));
  }
  peer->cv.notify_one();
  return true;
}

void TcpTransport::Shutdown() {
  if (!running_.exchange(false)) return;
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  for (auto& [id, peer] : peers_) {
    peer->cv.notify_all();
    if (peer->sender.joinable()) peer->sender.join();
    // Frames still queued when the sender thread exits are dropped; account
    // for them so shutdown losses are visible to metrics like every other
    // drop reason (they were accepted by Send and never hit the wire).
    std::lock_guard<std::mutex> lock(peer->mu);
    if (!peer->queue.empty()) {
      metrics_.send_drops_shutdown->Increment(peer->queue.size());
      peer->queue.clear();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::pair<int, std::thread>> readers;
  {
    std::lock_guard<std::mutex> lock(readers_mu_);
    readers.swap(readers_);
  }
  for (auto& [reader_fd, thread] : readers) {
    ::shutdown(reader_fd, SHUT_RDWR);
    if (thread.joinable()) thread.join();
    ::close(reader_fd);
  }
}

void TcpTransport::AcceptLoop() {
  while (running_.load()) {
    const int fd = listen_fd_.load();
    if (fd < 0) return;
    const int client_fd = ::accept(fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    metrics_.accepts->Increment();
    std::lock_guard<std::mutex> lock(readers_mu_);
    if (!running_.load()) {
      ::close(client_fd);
      return;
    }
    readers_.emplace_back(client_fd,
                          std::thread([this, client_fd] {
                            ReaderLoop(client_fd);
                          }));
  }
}

void TcpTransport::ReaderLoop(int fd) {
  FrameDecoder decoder;
  char buffer[16384];
  bool attributed = false;
  while (running_.load()) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    decoder.Feed(buffer, static_cast<size_t>(n));
    Frame frame;
    while (decoder.Next(&frame)) {
      if (frame.type == FrameType::kHello) {
        // Attribution preamble from the dialing node; not for the handler.
        attributed = true;
        continue;
      }
      handler_(frame);
    }
    if (!decoder.error().ok()) {
      metrics_.decode_errors->Increment();
      MARLIN_LOG(WARNING) << "cluster tcp: dropping connection ("
                          << decoder.error().ToString() << ")";
      break;
    }
  }
  (void)attributed;
  // The fd is closed by Shutdown (which owns the readers_ entries); closing
  // here as well would race the shutdown path's ::shutdown on the fd.
}

int TcpTransport::DialPeer(const TcpPeer& address) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(address.port);
  if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void TcpTransport::SenderLoop(PeerState* peer) {
  TimeMicros backoff = options_.reconnect_initial;
  int fd = -1;
  while (running_.load()) {
    std::pair<TimeMicros, std::string> entry;
    {
      std::unique_lock<std::mutex> lock(peer->mu);
      peer->cv.wait(lock, [this, peer] {
        return !peer->queue.empty() || !running_.load();
      });
      if (!running_.load()) break;
      entry = std::move(peer->queue.front());
      peer->queue.pop_front();
    }
    if (WallNowMicros() - entry.first > options_.send_timeout) {
      metrics_.send_drops_timeout->Increment();
      continue;
    }
    if (fd < 0) {
      fd = DialPeer(peer->address);
      if (fd < 0) {
        metrics_.send_drops_io->Increment();
        // Park until the backoff elapses (or shutdown); the frame is lost —
        // heartbeat cadence and handoff retries recover the protocol state.
        std::unique_lock<std::mutex> lock(peer->mu);
        peer->cv.wait_for(lock, std::chrono::microseconds(backoff),
                          [this] { return !running_.load(); });
        backoff = std::min(backoff * 2, options_.reconnect_max);
        continue;
      }
      metrics_.connects->Increment();
      backoff = options_.reconnect_initial;
      Frame hello;
      hello.type = FrameType::kHello;
      hello.src = self_;
      if (!WriteAll(fd, EncodeFrame(hello))) {
        ::close(fd);
        fd = -1;
        metrics_.send_drops_io->Increment();
        continue;
      }
    }
    if (!WriteAll(fd, entry.second)) {
      ::close(fd);
      fd = -1;
      metrics_.send_drops_io->Increment();
    }
  }
  if (fd >= 0) ::close(fd);
}

}  // namespace cluster
}  // namespace marlin

#ifndef MARLIN_CLUSTER_TCP_TRANSPORT_H_
#define MARLIN_CLUSTER_TCP_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/transport.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace marlin {
namespace cluster {

/// Address of one roster member for the TCP transport.
struct TcpPeer {
  NodeId id = kNoNode;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct TcpTransportOptions {
  /// Port to listen on; 0 picks an ephemeral port (read it via port()).
  uint16_t listen_port = 0;
  /// Frames older than this in an outbound queue are dropped, not sent —
  /// stale heartbeats and envelopes are worse than lost ones.
  TimeMicros send_timeout = 2'000'000;  // 2 s
  /// Reconnect backoff: starts here, doubles per failure, caps at max.
  TimeMicros reconnect_initial = 50'000;  // 50 ms
  TimeMicros reconnect_max = 2'000'000;   // 2 s
  /// Per-peer outbound queue cap; Send fails beyond it (backpressure).
  size_t max_queue = 4096;
  /// Registry for transport metrics (null = process global).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Real-socket transport: one listening socket, one accept thread plus a
/// reader thread per inbound connection, and one sender thread per peer
/// draining a bounded outbound queue. Send never blocks on the network —
/// it enqueues and returns; the sender thread connects lazily with
/// exponential backoff and re-dials after failures, so transient peer
/// outages surface as dropped frames (which the cluster layer's heartbeat
/// and handoff retries absorb), never as a blocked caller.
///
/// Wire format: length-prefixed frames (see frame.h). The first frame on
/// every outbound connection is a kHello carrying the dialing node's id.
///
/// Lifecycle: Listen() binds (so ephemeral ports can be exchanged between
/// processes before any traffic), SetPeers() installs the roster's
/// addresses, Start() begins accepting and sending, Shutdown() joins every
/// thread.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options = {});
  ~TcpTransport() override;

  /// Binds and listens on options.listen_port (loopback). After success,
  /// port() returns the actual port.
  Status Listen();

  uint16_t port() const { return port_; }

  /// Installs peer addresses. Call before Start().
  void SetPeers(std::vector<TcpPeer> peers);

  Status Start(NodeId self, FrameHandler handler) override;
  bool Send(NodeId to, const Frame& frame) override;
  void Shutdown() override;

 private:
  /// Outbound state for one peer, drained by a dedicated sender thread.
  struct PeerState {
    TcpPeer address;
    std::mutex mu;
    std::condition_variable cv;
    /// (enqueue time, encoded frame) — timestamps implement send_timeout.
    std::deque<std::pair<TimeMicros, std::string>> queue;
    std::thread sender;
    int fd = -1;  // guarded by mu; owned by the sender thread
  };

  void AcceptLoop();
  void ReaderLoop(int fd);
  void SenderLoop(PeerState* peer);
  /// Dials the peer once; returns the connected fd or -1.
  int DialPeer(const TcpPeer& address);

  const TcpTransportOptions options_;
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  NodeId self_ = kNoNode;
  FrameHandler handler_;
  std::atomic<bool> running_{false};

  std::map<NodeId, std::unique_ptr<PeerState>> peers_;  // set before Start

  std::thread accept_thread_;
  std::mutex readers_mu_;
  /// (fd, thread) per accepted connection; fds are shut down to unblock
  /// the readers at Shutdown.
  std::vector<std::pair<int, std::thread>> readers_;

  struct Metrics {
    obs::Counter* connects = nullptr;
    obs::Counter* accepts = nullptr;
    obs::Counter* send_drops_queue_full = nullptr;
    obs::Counter* send_drops_timeout = nullptr;
    obs::Counter* send_drops_io = nullptr;
    obs::Counter* send_drops_shutdown = nullptr;
    obs::Counter* send_drops_fault = nullptr;
    obs::Counter* decode_errors = nullptr;
  };
  Metrics metrics_;
};

}  // namespace cluster
}  // namespace marlin

#endif  // MARLIN_CLUSTER_TCP_TRANSPORT_H_

#ifndef MARLIN_CLUSTER_HASH_RING_H_
#define MARLIN_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "cluster/frame.h"

namespace marlin {
namespace cluster {

/// Consistent-hash ring mapping entity keys (MMSI strings) → shard → node,
/// Akka-cluster-sharding style. The indirection through a fixed shard count
/// keeps the routing table tiny (num_shards entries, not num_entities) and
/// makes handoff a per-shard, not per-entity, operation.
///
/// Every node places `vnodes_per_node` virtual points on a 64-bit circle;
/// a shard is owned by the first point clockwise of its own hash. The
/// mapping is a pure function of (members, num_shards, vnodes), so every
/// node that observes the same up-set computes the same owner table without
/// any coordination — the property the gossip-free membership relies on.
///
/// Key→shard uses FNV-1a modulo num_shards, the same partitioner the broker
/// uses for key→partition: with num_shards == num_partitions, a record's
/// broker partition equals its entity's shard, so consumers can be assigned
/// exactly the partitions their node owns (see Consumer::SetAssignment).
///
/// Plain value type; not internally synchronised. ShardRegion keeps its own
/// snapshot under its lock; ClusterNode guards the master copy.
class HashRing {
 public:
  explicit HashRing(int num_shards = 64, int vnodes_per_node = 16);

  /// Rebuilds the owner table for the given member set at `epoch`. Members
  /// may be unsorted; an empty set leaves every shard unowned (kNoNode).
  void SetMembers(const std::vector<NodeId>& members, uint64_t epoch);

  int num_shards() const { return num_shards_; }
  uint64_t epoch() const { return epoch_; }
  const std::vector<NodeId>& members() const { return members_; }

  /// FNV-1a(key) % num_shards.
  int ShardForKey(std::string_view key) const;

  /// Owner of a shard, or kNoNode when the member set is empty.
  NodeId OwnerOfShard(int shard) const;

  NodeId OwnerOfKey(std::string_view key) const {
    return OwnerOfShard(ShardForKey(key));
  }

  /// All shards currently owned by `node`, ascending. Doubles as the
  /// shard-aligned broker partition assignment for that node.
  std::vector<int> ShardsOwnedBy(NodeId node) const;

 private:
  int num_shards_;
  int vnodes_per_node_;
  uint64_t epoch_ = 0;
  std::vector<NodeId> members_;     // sorted
  std::vector<NodeId> shard_owner_;  // shard index → owner
};

}  // namespace cluster
}  // namespace marlin

#endif  // MARLIN_CLUSTER_HASH_RING_H_

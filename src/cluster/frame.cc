#include "cluster/frame.h"

#include <cstring>

namespace marlin {
namespace cluster {
namespace {

constexpr size_t kHeaderAfterLen = 1 + 1 + 4 + 8;  // ver, type, src, seq

void AppendLE(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint64_t ReadLE(const char* p, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kEnvelope:
      return "envelope";
    case FrameType::kHeartbeat:
      return "heartbeat";
    case FrameType::kHeartbeatAck:
      return "heartbeat-ack";
    case FrameType::kHandoffBegin:
      return "handoff-begin";
    case FrameType::kHandoffAck:
      return "handoff-ack";
    case FrameType::kReplicate:
      return "replicate";
    case FrameType::kReplicateAck:
      return "replicate-ack";
  }
  return "unknown";
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(4 + kHeaderAfterLen + frame.payload.size());
  AppendLE(&out, kHeaderAfterLen + frame.payload.size(), 4);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(frame.type));
  AppendLE(&out, frame.src, 4);
  AppendLE(&out, frame.seq, 8);
  out.append(frame.payload);
  return out;
}

void FrameDecoder::Feed(const char* data, size_t size) {
  if (!error_.ok()) return;
  // Compact lazily: only when the decoded prefix dominates the buffer, so
  // steady-state feeding is amortised O(bytes).
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

bool FrameDecoder::Next(Frame* out) {
  if (!error_.ok()) return false;
  const size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const char* base = buffer_.data() + consumed_;
  const uint64_t len = ReadLE(base, 4);
  if (len < kHeaderAfterLen || len > kMaxFrameBytes) {
    error_ = Status::InvalidArgument("malformed frame length " +
                                     std::to_string(len));
    return false;
  }
  if (available < 4 + len) return false;
  const uint8_t version = static_cast<uint8_t>(base[4]);
  if (version != kWireVersion) {
    error_ = Status::InvalidArgument("unsupported wire version " +
                                     std::to_string(version));
    return false;
  }
  out->type = static_cast<FrameType>(static_cast<uint8_t>(base[5]));
  out->src = static_cast<NodeId>(ReadLE(base + 6, 4));
  out->seq = ReadLE(base + 10, 8);
  out->payload.assign(base + 4 + kHeaderAfterLen, len - kHeaderAfterLen);
  consumed_ += 4 + len;
  return true;
}

void FrameDecoder::Reset() {
  buffer_.clear();
  consumed_ = 0;
  error_ = Status::Ok();
}

void WireWriter::PutU16(uint16_t v) { AppendLE(&out_, v, 2); }
void WireWriter::PutU32(uint32_t v) { AppendLE(&out_, v, 4); }
void WireWriter::PutU64(uint64_t v) { AppendLE(&out_, v, 8); }

void WireWriter::PutString16(std::string_view s) {
  PutU16(static_cast<uint16_t>(s.size() > 0xFFFF ? 0xFFFF : s.size()));
  out_.append(s.substr(0, 0xFFFF));
}

void WireWriter::PutString32(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

bool WireReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_]);
  pos_ += 1;
  return true;
}

bool WireReader::GetU16(uint16_t* v) {
  if (remaining() < 2) return false;
  *v = static_cast<uint16_t>(ReadLE(data_.data() + pos_, 2));
  pos_ += 2;
  return true;
}

bool WireReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = static_cast<uint32_t>(ReadLE(data_.data() + pos_, 4));
  pos_ += 4;
  return true;
}

bool WireReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  *v = ReadLE(data_.data() + pos_, 8);
  pos_ += 8;
  return true;
}

bool WireReader::GetString16(std::string* s) {
  uint16_t len = 0;
  if (!GetU16(&len)) return false;
  if (remaining() < len) return false;
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

bool WireReader::GetString32(std::string* s) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  if (remaining() < len) return false;
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

}  // namespace cluster
}  // namespace marlin

#ifndef MARLIN_CLUSTER_FRAME_H_
#define MARLIN_CLUSTER_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace marlin {
namespace cluster {

/// Node identity within one cluster. Assigned statically by the operator
/// (the membership list is gossip-free); 0 is reserved for "no node".
using NodeId = uint32_t;

constexpr NodeId kNoNode = 0;

/// Kinds of frames exchanged between cluster nodes.
enum class FrameType : uint8_t {
  /// First frame on every outbound TCP connection: identifies the dialing
  /// node so the acceptor can attribute inbound frames.
  kHello = 1,
  /// A serialized actor envelope routed between shard regions.
  kEnvelope = 2,
  /// Periodic liveness probe; `seq` carries the sender's send timestamp
  /// (micros) so the ack can be turned into an RTT sample.
  kHeartbeat = 3,
  /// Echo of a heartbeat; `seq` is copied from the probe.
  kHeartbeatAck = 4,
  /// "I stopped routing shard S to myself and believe you own it now" —
  /// sent by the previous owner to the new owner on a topology change.
  kHandoffBegin = 5,
  /// "I agree I own shard S; send me its buffered envelopes."
  kHandoffAck = 6,
  /// A batch of log records streamed from a partition leader to a
  /// follower (storage replication; handled by cluster::LogReplicator).
  kReplicate = 7,
  /// Follower's acknowledged log end for one partition; the leader folds
  /// acks into the quorum-committed offset.
  kReplicateAck = 8,
};

const char* FrameTypeName(FrameType type);

/// One unit of the wire protocol. On the wire a frame is length-prefixed:
///
///   [u32 len][u8 ver][u8 type][u32 src][u64 seq][payload: len-14 bytes]
///
/// `len` counts every byte after the length field itself; all integers are
/// little-endian. `seq` is type-specific: a per-origin envelope sequence
/// number for kEnvelope (the duplicate-delivery detector keys on it), a
/// timestamp echo for heartbeats, zero elsewhere.
struct Frame {
  FrameType type = FrameType::kHello;
  NodeId src = kNoNode;
  uint64_t seq = 0;
  std::string payload;
};

/// Protocol version emitted by EncodeFrame and required by FrameDecoder.
constexpr uint8_t kWireVersion = 1;

/// Frames larger than this are malformed (a desynced or hostile stream),
/// not data: the decoder fails hard instead of allocating gigabytes.
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Serialises one frame, length prefix included.
std::string EncodeFrame(const Frame& frame);

/// Incremental decoder for a TCP byte stream: feed arbitrary slices, pull
/// complete frames. Not thread-safe (one decoder per connection/reader).
class FrameDecoder {
 public:
  /// Appends raw bytes from the stream.
  void Feed(const char* data, size_t size);

  /// Extracts the next complete frame into `out`. Returns false when no
  /// complete frame is buffered (feed more) or the stream is corrupt
  /// (check error()).
  bool Next(Frame* out);

  /// Non-OK once a malformed frame (bad version, oversized length) was
  /// seen; the connection should be dropped.
  const Status& error() const { return error_; }

  /// Discards all buffered bytes and clears the sticky error, returning
  /// the decoder to its initial state. The recovery path after a corrupt
  /// stream: drop the connection, Reset(), reuse the decoder for the next
  /// connection's byte stream.
  void Reset();

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ already decoded
  Status error_ = Status::Ok();
};

/// Append-only writer for frame payloads (and other wire blobs). Integers
/// are little-endian; strings are u16- or u32-length-prefixed.
class WireWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// u16 length prefix; aborts values over 64 KiB to a truncation error at
  /// read time — callers validate sizes (entity keys, region names).
  void PutString16(std::string_view s);
  /// u32 length prefix (bulk payloads).
  void PutString32(std::string_view s);

  std::string Take() { return std::move(out_); }
  const std::string& view() const { return out_; }

 private:
  std::string out_;
};

/// Cursor-based reader over a wire blob. Every getter returns false (and
/// leaves the output untouched) on underflow, so malformed payloads are
/// rejected rather than read out of bounds.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU16(uint16_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetString16(std::string* s);
  bool GetString32(std::string* s);

  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace cluster
}  // namespace marlin

#endif  // MARLIN_CLUSTER_FRAME_H_

#ifndef MARLIN_CLUSTER_TRANSPORT_H_
#define MARLIN_CLUSTER_TRANSPORT_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "cluster/frame.h"
#include "util/status.h"

namespace marlin {
namespace cluster {

/// The seam between a ClusterNode and the wire. Two implementations:
/// InProcessTransport (virtual nodes sharing one Hub — deterministic,
/// test-friendly) and TcpTransport (real sockets for multi-process
/// deployment). Send never blocks the caller beyond queueing.
class Transport {
 public:
  /// Invoked for every inbound frame. May run on a transport thread (TCP
  /// readers) or synchronously on the sender's thread (in-process), so
  /// handlers must be thread-safe and must not hold locks across their own
  /// Send calls (re-entrancy).
  using FrameHandler = std::function<void(const Frame&)>;

  virtual ~Transport() = default;

  /// Binds this transport to `self` and starts delivering inbound frames
  /// to `handler`.
  virtual Status Start(NodeId self, FrameHandler handler) = 0;

  /// Queues (or directly delivers) one frame to `to`. Returns false when
  /// the peer is unknown/unreachable or the transport is shut down; the
  /// frame is dropped in that case — cluster-layer retry (heartbeats,
  /// handoff re-begins) provides the recovery, not the transport.
  virtual bool Send(NodeId to, const Frame& frame) = 0;

  /// Stops delivery. Idempotent.
  virtual void Shutdown() = 0;
};

class InProcessTransport;

/// Wiring harness for in-process "virtual node" clusters: every transport
/// registers its handler here and Send is a synchronous call into the
/// peer's handler. Links can be administratively cut (SetLinkUp) to
/// simulate partitions and node death deterministically — the failure
/// detector then sees real missed heartbeats without any wall-clock
/// sleeping. The hub must outlive its transports.
class InProcessHub {
 public:
  /// Cuts or restores the (bidirectional) link between `a` and `b`.
  /// Frames over a down link are silently dropped (Send returns false).
  void SetLinkUp(NodeId a, NodeId b, bool up);

  bool LinkUp(NodeId a, NodeId b) const;

 private:
  friend class InProcessTransport;

  void Register(NodeId node, Transport::FrameHandler handler);
  void Unregister(NodeId node);
  /// Copies the handler out under the lock, then invokes it unlocked —
  /// synchronous delivery without holding hub state across user code.
  bool Deliver(NodeId from, NodeId to, const Frame& frame);

  mutable std::mutex mu_;
  std::map<NodeId, Transport::FrameHandler> handlers_;
  std::set<std::pair<NodeId, NodeId>> down_links_;  // normalised (min,max)
};

/// Virtual-node transport: delivery is a synchronous function call on the
/// caller's thread through the shared hub. Deterministic given a
/// deterministic caller, which is what the `cluster`-label tests exploit.
class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(InProcessHub* hub) : hub_(hub) {}
  ~InProcessTransport() override { Shutdown(); }

  Status Start(NodeId self, FrameHandler handler) override;
  bool Send(NodeId to, const Frame& frame) override;
  void Shutdown() override;

 private:
  InProcessHub* hub_;
  std::mutex mu_;
  NodeId self_ = kNoNode;
  bool running_ = false;
};

}  // namespace cluster
}  // namespace marlin

#endif  // MARLIN_CLUSTER_TRANSPORT_H_

#include "cluster/hash_ring.h"

#include <algorithm>

#include "util/hash.h"

namespace marlin {
namespace cluster {
namespace {

/// Ring positions compare full 64-bit values, and raw FNV-1a has poor
/// high-bit avalanche for inputs that share a prefix ("shard-0".."shard-63"
/// would all land in one narrow band, collapsing the ring to one arc). A
/// splitmix64-style finalizer spreads them. Key→shard stays raw FNV-1a
/// (its low bits mix fine under modulo, and it must match the broker's
/// partitioner).
uint64_t MixPosition(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

HashRing::HashRing(int num_shards, int vnodes_per_node)
    : num_shards_(std::max(1, num_shards)),
      vnodes_per_node_(std::max(1, vnodes_per_node)),
      shard_owner_(static_cast<size_t>(num_shards_), kNoNode) {}

void HashRing::SetMembers(const std::vector<NodeId>& members, uint64_t epoch) {
  members_ = members;
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
  epoch_ = epoch;
  if (members_.empty()) {
    std::fill(shard_owner_.begin(), shard_owner_.end(), kNoNode);
    return;
  }
  // Virtual points, sorted by position. Hash inputs are textual so the
  // layout is stable across processes and architectures.
  struct Point {
    uint64_t position;
    NodeId node;
    bool operator<(const Point& other) const {
      return position != other.position ? position < other.position
                                        : node < other.node;
    }
  };
  std::vector<Point> points;
  points.reserve(members_.size() * static_cast<size_t>(vnodes_per_node_));
  for (const NodeId node : members_) {
    for (int replica = 0; replica < vnodes_per_node_; ++replica) {
      const std::string label =
          "node-" + std::to_string(node) + "#" + std::to_string(replica);
      points.push_back(Point{MixPosition(Fnv1a(label)), node});
    }
  }
  std::sort(points.begin(), points.end());
  for (int shard = 0; shard < num_shards_; ++shard) {
    const uint64_t position =
        MixPosition(Fnv1a("shard-" + std::to_string(shard)));
    // First point clockwise (>= position), wrapping to the start.
    auto it = std::lower_bound(
        points.begin(), points.end(), Point{position, 0},
        [](const Point& a, const Point& b) { return a.position < b.position; });
    if (it == points.end()) it = points.begin();
    shard_owner_[static_cast<size_t>(shard)] = it->node;
  }
}

int HashRing::ShardForKey(std::string_view key) const {
  return static_cast<int>(Fnv1a(key) % static_cast<uint64_t>(num_shards_));
}

NodeId HashRing::OwnerOfShard(int shard) const {
  if (shard < 0 || shard >= num_shards_) return kNoNode;
  return shard_owner_[static_cast<size_t>(shard)];
}

std::vector<int> HashRing::ShardsOwnedBy(NodeId node) const {
  std::vector<int> owned;
  for (int shard = 0; shard < num_shards_; ++shard) {
    if (shard_owner_[static_cast<size_t>(shard)] == node) {
      owned.push_back(shard);
    }
  }
  return owned;
}

}  // namespace cluster
}  // namespace marlin

#ifndef MARLIN_CLUSTER_LOG_REPLICATION_H_
#define MARLIN_CLUSTER_LOG_REPLICATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster_node.h"
#include "obs/metrics.h"
#include "storage/partition_log.h"
#include "storage/replicated_partition.h"
#include "util/clock.h"
#include "util/status.h"

namespace marlin {
namespace cluster {

/// Per-partition leader/follower log replication over the cluster wire —
/// the piece that turns one node's durable PartitionLogs into a quorum-
/// replicated log that survives losing a minority of nodes.
///
/// Roles come from infrastructure that already exists: the partition's
/// leader is the hash-ring owner of the same-numbered shard, and the epoch
/// guarding every frame is the membership epoch — so leadership moves
/// exactly when shard ownership moves, with no separate election protocol.
/// The replica set handed to the state machine is the full static roster,
/// so the commit quorum is a majority of the cluster even when the local
/// view of "up" has shrunk — an isolated minority can append but never
/// commit. The quorum/commit arithmetic lives in
/// storage::ReplicatedPartition (pure, transport-free); this class moves
/// the frames:
///
///   - On every cluster tick the leader ships each lagging follower a batch
///     of records from that follower's acked end (kReplicate), recording
///     what it shipped (the ceiling for ack credit).
///   - Followers append epoch-guarded batches to their local PartitionLog.
///     Where a batch overlaps records they already hold, they compare
///     byte-for-byte — a mismatch is a divergent uncommitted suffix left
///     over from a deposed leadership, and is truncated in favour of the
///     leader's version — and reply with their *verified* log end
///     (kReplicateAck).
///   - The leader folds acks into the quorum-committed offset, crediting
///     each follower no further than what it shipped to it this epoch.
///
/// Ticks both drive retransmission (an unacked batch is simply re-sent from
/// the stale acked end next tick) and bound the replication lag window.
///
/// Plugs into ClusterNode through RegisterFrameHandler/AddTickListener;
/// construct after the node, before Start() (the registration caveat on
/// those seams). Thread-safe; the internal mutex is never held across a
/// transport Send, so synchronous in-process delivery cannot deadlock.
class LogReplicator {
 public:
  struct Options {
    /// Topic name carried in replicate frames; a receiver replicating a
    /// different topic ignores the frame.
    std::string topic = "ais";
    /// Partition count; must equal the peers' and (for shard-aligned
    /// leadership) the node's num_shards.
    int num_partitions = 1;
    /// Records per kReplicate frame.
    int max_batch = 64;
    /// Maps a partition to its durable log (unowned, must outlive the
    /// replicator). Required.
    std::function<storage::PartitionLog*(int)> log_for_partition;
    /// Registry for marlin_storage_replication_* metrics (null = process
    /// global).
    obs::MetricsRegistry* metrics = nullptr;
  };

  LogReplicator(ClusterNode* node, Options options);

  LogReplicator(const LogReplicator&) = delete;
  LogReplicator& operator=(const LogReplicator&) = delete;

  /// Leader-side append: writes to the local durable log and exposes the
  /// new end to the replication state machine. FailedPrecondition when this
  /// node is not the partition's current leader.
  StatusOr<int64_t> Append(int partition, TimeMicros timestamp,
                           std::string key, std::string value);

  /// Quorum-committed offset of a partition (0 for out-of-range).
  int64_t committed(int partition) const;

  bool is_leader(int partition) const;

  /// Sum over led partitions of (local end - slowest acked end).
  int64_t TotalReplicationLag() const;

  /// Re-derives every partition's role from the current ring owner and
  /// membership epoch. Runs automatically at construction and on every
  /// tick; public so deterministic tests can force it between steps.
  void RefreshRoles();

 private:
  /// Tick listener: refresh roles, then ship pending tails to followers.
  void OnTick(TimeMicros now);
  void OnReplicate(const Frame& frame);
  void OnReplicateAck(const Frame& frame);
  storage::PartitionLog* log(int partition) const {
    return options_.log_for_partition(partition);
  }

  ClusterNode* node_;
  const Options options_;

  mutable std::mutex mu_;  // guards partitions_; never held across Send
  std::vector<std::unique_ptr<storage::ReplicatedPartition>> partitions_;

  obs::Counter* replicated_records_ = nullptr;
  obs::Counter* acks_received_ = nullptr;
  obs::Gauge* lag_gauge_ = nullptr;
};

}  // namespace cluster
}  // namespace marlin

#endif  // MARLIN_CLUSTER_LOG_REPLICATION_H_

#include "cluster/transport.h"

#include "fault/fault_injector.h"

namespace marlin {
namespace cluster {
namespace {

std::pair<NodeId, NodeId> NormalisedLink(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

void InProcessHub::SetLinkUp(NodeId a, NodeId b, bool up) {
  std::lock_guard<std::mutex> lock(mu_);
  if (up) {
    down_links_.erase(NormalisedLink(a, b));
  } else {
    down_links_.insert(NormalisedLink(a, b));
  }
}

bool InProcessHub::LinkUp(NodeId a, NodeId b) const {
  std::lock_guard<std::mutex> lock(mu_);
  return down_links_.count(NormalisedLink(a, b)) == 0;
}

void InProcessHub::Register(NodeId node, Transport::FrameHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[node] = std::move(handler);
}

void InProcessHub::Unregister(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(node);
}

bool InProcessHub::Deliver(NodeId from, NodeId to, const Frame& frame) {
  Transport::FrameHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_links_.count(NormalisedLink(from, to)) > 0) return false;
    auto it = handlers_.find(to);
    if (it == handlers_.end()) return false;
    handler = it->second;
  }
  handler(frame);
  return true;
}

Status InProcessTransport::Start(NodeId self, FrameHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::FailedPrecondition("transport already started");
  self_ = self;
  running_ = true;
  hub_->Register(self, std::move(handler));
  return Status::Ok();
}

bool InProcessTransport::Send(NodeId to, const Frame& frame) {
  NodeId self;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return false;
    self = self_;
  }
  // Mirrors the TCP transport's injection site so fault-build tests can
  // exercise lossy sends without real sockets.
  if (MARLIN_FAULT_POINT("inproc.send") != fault::FaultAction::kNone) {
    return false;
  }
  return hub_->Deliver(self, to, frame);
}

void InProcessTransport::Shutdown() {
  NodeId self = kNoNode;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    self = self_;
  }
  hub_->Unregister(self);
}

}  // namespace cluster
}  // namespace marlin

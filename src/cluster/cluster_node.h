#ifndef MARLIN_CLUSTER_CLUSTER_NODE_H_
#define MARLIN_CLUSTER_CLUSTER_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "actor/actor_system.h"
#include "cluster/frame.h"
#include "cluster/hash_ring.h"
#include "cluster/membership.h"
#include "cluster/shard_region.h"
#include "cluster/transport.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace marlin {
namespace cluster {

struct ClusterNodeConfig {
  /// This node's identity. Must appear in `nodes`.
  NodeId self = 1;
  /// The full static roster (gossip-free membership: every node knows the
  /// complete node list up front).
  std::vector<NodeId> nodes = {1};
  /// Shard-space size shared by every region on this cluster. Align with
  /// stream partition counts (Broker::PartitionForKey) so a node's shards
  /// double as its consumer partition assignment.
  int num_shards = 64;
  /// Virtual nodes per member on the hash ring.
  int vnodes_per_node = 16;
  MembershipOptions membership;
  /// Configuration for the node's embedded ActorSystem.
  ActorSystemConfig actor;
  /// Registry for cluster metrics (null = process global).
  obs::MetricsRegistry* metrics = nullptr;
  /// When true, Start() spawns an internal ticker actor that drives
  /// Tick() at the heartbeat interval off the wall clock. Deterministic
  /// tests leave this false and call Tick(now) with controlled timestamps.
  bool auto_tick = true;
};

/// One cluster member: an ActorSystem plus membership, a hash ring over the
/// up-set, and the frame dispatcher gluing shard regions to the transport.
///
/// Heartbeats ride the transport as kHeartbeat/kHeartbeatAck frames whose
/// `seq` carries the sender's timestamp; each node runs its own failure
/// detector (Membership) over the evidence. When the up-set changes, the
/// ring is rebuilt at the new membership epoch and every region performs
/// per-shard handoff toward the new owners.
class ClusterNode {
 public:
  ClusterNode(const ClusterNodeConfig& config,
              std::shared_ptr<Transport> transport);
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Wires the frame handler into the transport and (if configured) starts
  /// the auto ticker. Call after the transport is ready to listen.
  Status Start();

  /// Stops the ticker, the transport (no more inbound frames), then the
  /// actor system. Idempotent; called by the destructor.
  void Shutdown();

  /// Registers a shard region. The returned pointer is owned by the node
  /// and stable until Shutdown. Fails if the name is taken.
  StatusOr<ShardRegion*> CreateRegion(ShardRegionOptions options);

  ShardRegion* GetRegion(const std::string& name) const;

  /// One protocol step at time `now`: sends heartbeats to peers, advances
  /// the failure detector, applies any membership transitions to the ring
  /// and regions, and retries pending handoffs. Public so deterministic
  /// tests can drive protocol time explicitly.
  void Tick(TimeMicros now);

  NodeId self() const { return config_.self; }
  ActorSystem& system() { return system_; }
  Membership& membership() { return membership_; }

  /// Routes inbound frames of `type` to `handler` — the extension seam
  /// protocol add-ons (log replication) plug into without the node knowing
  /// their payloads. One handler per type; registering twice replaces.
  /// Register before Start() or from a quiescent node: registration is not
  /// synchronized against in-flight frame delivery.
  void RegisterFrameHandler(FrameType type,
                            std::function<void(const Frame&)> handler);

  /// Adds a callback invoked at the end of every Tick(now) — how add-ons
  /// piggyback their periodic work (replication fan-out) on the node's
  /// protocol clock without owning a thread. Same registration caveat as
  /// RegisterFrameHandler.
  void AddTickListener(std::function<void(TimeMicros)> listener);

  /// The counting transport regions and add-ons send through (so their
  /// frames appear in per-peer accounting). Owned by the node.
  Transport* wire();

  /// Current ring snapshot (copy).
  HashRing ring() const;

  /// Cluster status as a JSON object (membership, epoch, per-region shard
  /// ownership) — served by the admin API's /cluster route.
  std::string StatusJson() const;

 private:
  class CountingTransport;
  class TickerActor;

  void OnFrame(const Frame& frame);
  /// Folds membership transitions into the ring and regions.
  void ApplyEvents(const std::vector<MembershipEvent>& events);
  void ScheduleNextTick();

  const ClusterNodeConfig config_;
  std::shared_ptr<Transport> transport_;  // the real wire
  std::unique_ptr<CountingTransport> counting_transport_;  // what regions use
  Membership membership_;
  ActorSystem system_;

  mutable std::mutex topology_mu_;
  HashRing ring_;

  mutable std::mutex regions_mu_;
  std::map<std::string, std::unique_ptr<ShardRegion>> regions_;

  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool shut_down_ = false;
  ActorRef ticker_ref_;

  /// Extension seams (see RegisterFrameHandler / AddTickListener). Mutated
  /// only during setup; read from the frame handler and Tick without a
  /// lock, matching the registration caveat.
  std::map<FrameType, std::function<void(const Frame&)>> frame_handlers_;
  std::vector<std::function<void(TimeMicros)>> tick_listeners_;

  struct Metrics {
    obs::Counter* heartbeats_sent = nullptr;
    obs::Counter* heartbeats_received = nullptr;
    obs::Counter* transitions_up = nullptr;
    obs::Counter* transitions_unreachable = nullptr;
    obs::Counter* transitions_removed = nullptr;
    obs::Gauge* epoch = nullptr;
    obs::Gauge* members_up = nullptr;
  };
  Metrics metrics_;
};

}  // namespace cluster
}  // namespace marlin

#endif  // MARLIN_CLUSTER_CLUSTER_NODE_H_

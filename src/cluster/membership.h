#ifndef MARLIN_CLUSTER_MEMBERSHIP_H_
#define MARLIN_CLUSTER_MEMBERSHIP_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "cluster/frame.h"
#include "util/clock.h"

namespace marlin {
namespace cluster {

/// Lifecycle of one member in the static node list:
///
///   joining ──heartbeat──▶ up ──missed beats──▶ unreachable ──more──▶ removed
///                           ▲─────heartbeat───────┘
///
/// `removed` is terminal: a removed node that comes back must rejoin under
/// a fresh process (its shards were permanently reassigned).
enum class NodeState : uint8_t { kJoining, kUp, kUnreachable, kRemoved };

const char* NodeStateName(NodeState state);

/// One observed state transition. `epoch` is the membership epoch *after*
/// the transition; epochs are strictly monotonic (chk-asserted).
struct MembershipEvent {
  NodeId node = kNoNode;
  NodeState from = NodeState::kJoining;
  NodeState to = NodeState::kJoining;
  uint64_t epoch = 0;
};

struct MemberInfo {
  NodeId id = kNoNode;
  NodeState state = NodeState::kJoining;
  TimeMicros last_heartbeat = 0;
};

struct MembershipOptions {
  /// Expected heartbeat cadence (ClusterNode sends one per Tick at this
  /// interval).
  TimeMicros heartbeat_interval = 200'000;  // 200 ms
  /// Missed beats before a peer is declared unreachable — the
  /// phi-accrual-lite threshold: suspicion is a step function of missed
  /// intervals rather than a continuous phi.
  int unreachable_after_missed = 4;
  /// Missed beats before an unreachable peer is removed for good
  /// (<= 0 disables removal).
  int removed_after_missed = 0;
};

/// Gossip-free membership over a static node list: every node knows the
/// full roster at construction and runs its own heartbeat failure detector
/// against it. No agreement protocol — two nodes may transiently disagree
/// about a third — but because shard placement is a pure function of the
/// up-set (HashRing), views converge as soon as detectors do.
///
/// Thread-safe; pure bookkeeping (no I/O, no clocks — callers feed
/// timestamps), so it is deterministic under test-controlled time.
class Membership {
 public:
  Membership(NodeId self, std::vector<NodeId> nodes,
             const MembershipOptions& options);

  NodeId self() const { return self_; }

  /// Records liveness evidence for `from` at `now` (a received heartbeat
  /// or heartbeat-ack). Returns the transitions this triggered
  /// (joining→up, unreachable→up).
  ///
  /// Stale evidence is rejected rather than applied: a heartbeat whose
  /// sender timestamp is strictly older than evidence already recorded
  /// (a delayed/reordered frame) must not rewind the failure detector,
  /// and a heartbeat carrying a sender membership epoch older than one
  /// already seen from that peer is a relic of a superseded view.
  /// `sender_epoch` 0 means "sender did not report an epoch" (older wire
  /// format) and skips the epoch check.
  std::vector<MembershipEvent> RecordHeartbeat(NodeId from, TimeMicros now,
                                               uint64_t sender_epoch = 0);

  /// Advances the failure detector to `now`: peers whose last evidence is
  /// older than the missed-beat thresholds transition to unreachable /
  /// removed. Returns the transitions.
  std::vector<MembershipEvent> Tick(TimeMicros now);

  NodeState StateOf(NodeId node) const;

  /// Nodes currently kUp (including self when up), sorted — the member set
  /// the hash ring is built from.
  std::vector<NodeId> UpNodes() const;

  std::vector<MemberInfo> Members() const;

  /// Monotonic epoch, bumped by every transition.
  uint64_t epoch() const;

 private:
  struct Member {
    NodeState state = NodeState::kJoining;
    TimeMicros last_heartbeat = 0;
    /// Highest membership epoch this peer has reported about itself; used
    /// to reject stale-epoch heartbeats (delayed frames from an old view).
    uint64_t last_epoch = 0;
  };

  /// Applies one transition under mu_; appends the event.
  void Transition(NodeId node, Member* member, NodeState to,
                  std::vector<MembershipEvent>* events);

  const NodeId self_;
  const MembershipOptions options_;

  mutable std::mutex mu_;
  std::map<NodeId, Member> members_;
  uint64_t epoch_ = 1;  // epoch 1 = the initial roster
};

}  // namespace cluster
}  // namespace marlin

#endif  // MARLIN_CLUSTER_MEMBERSHIP_H_

#include "ais/types.h"

namespace marlin {

std::string_view VesselTypeName(VesselType type) {
  switch (type) {
    case VesselType::kUnknown:
      return "Unknown";
    case VesselType::kCargo:
      return "Cargo";
    case VesselType::kTanker:
      return "Tanker";
    case VesselType::kPassenger:
      return "Passenger";
    case VesselType::kFishing:
      return "Fishing";
    case VesselType::kTug:
      return "Tug";
    case VesselType::kHighSpeedCraft:
      return "HighSpeedCraft";
    case VesselType::kPleasureCraft:
      return "PleasureCraft";
    case VesselType::kOther:
      return "Other";
  }
  return "Unknown";
}

VesselType VesselTypeFromItuCode(int itu_code) {
  if (itu_code == 36 || itu_code == 37) return VesselType::kPleasureCraft;
  const int category = itu_code / 10;
  switch (category) {
    case 3:
      return VesselType::kFishing;
    case 4:
      return VesselType::kHighSpeedCraft;
    case 5:
      return VesselType::kTug;
    case 6:
      return VesselType::kPassenger;
    case 7:
      return VesselType::kCargo;
    case 8:
      return VesselType::kTanker;
    case 9:
      return VesselType::kOther;
    default:
      break;
  }
  return VesselType::kUnknown;
}

}  // namespace marlin

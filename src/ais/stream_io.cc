#include "ais/stream_io.h"

#include <cstdlib>

#include "ais/codec.h"
#include "util/file.h"

namespace marlin {

std::string EncodeAivdmLog(const std::vector<AisPosition>& messages) {
  std::string out;
  out.reserve(messages.size() * 64);
  for (const AisPosition& report : messages) {
    out += std::to_string(report.timestamp);
    out.push_back(' ');
    out += AisCodec::EncodePosition(report);
    out.push_back('\n');
  }
  return out;
}

std::vector<AisPosition> DecodeAivdmLog(const std::string& log, int* dropped) {
  std::vector<AisPosition> messages;
  int bad = 0;
  size_t start = 0;
  while (start < log.size()) {
    size_t end = log.find('\n', start);
    if (end == std::string::npos) end = log.size();
    const std::string line = log.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      ++bad;
      continue;
    }
    char* parse_end = nullptr;
    const long long received =
        std::strtoll(line.substr(0, space).c_str(), &parse_end, 10);
    if (parse_end == line.c_str()) {
      ++bad;
      continue;
    }
    StatusOr<AisPosition> decoded = AisCodec::DecodePosition(
        line.substr(space + 1), static_cast<TimeMicros>(received));
    if (!decoded.ok()) {
      ++bad;
      continue;
    }
    messages.push_back(*decoded);
  }
  if (dropped != nullptr) *dropped = bad;
  return messages;
}

Status WriteAivdmLog(const std::vector<AisPosition>& messages,
                     const std::string& path) {
  return WriteFileAtomic(path, EncodeAivdmLog(messages));
}

StatusOr<std::vector<AisPosition>> ReadAivdmLog(const std::string& path,
                                                int* dropped) {
  MARLIN_ASSIGN_OR_RETURN(std::string log, ReadFile(path));
  return DecodeAivdmLog(log, dropped);
}

}  // namespace marlin

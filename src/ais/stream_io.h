#ifndef MARLIN_AIS_STREAM_IO_H_
#define MARLIN_AIS_STREAM_IO_H_

#include <string>
#include <vector>

#include "ais/types.h"
#include "util/status.h"

namespace marlin {

/// Archived-stream tooling: the paper's evaluations run on *archived* AIS
/// streams (§6.1 uses a stored 24 h capture). These helpers persist a
/// position stream as a timestamped AIVDM log ("<received_us> <sentence>"
/// per line — the standard shape of receiver dumps) and replay it back,
/// losing only the sub-quantisation precision of the AIS wire format.

/// Serialises the messages as a timestamped AIVDM log.
std::string EncodeAivdmLog(const std::vector<AisPosition>& messages);

/// Parses a timestamped AIVDM log; undecodable lines are skipped and
/// counted in `*dropped` (pass null to ignore).
std::vector<AisPosition> DecodeAivdmLog(const std::string& log,
                                        int* dropped = nullptr);

/// Writes the messages to an AIVDM log file (atomic replace).
Status WriteAivdmLog(const std::vector<AisPosition>& messages,
                     const std::string& path);

/// Reads an AIVDM log file back into decoded position reports.
StatusOr<std::vector<AisPosition>> ReadAivdmLog(const std::string& path,
                                                int* dropped = nullptr);

}  // namespace marlin

#endif  // MARLIN_AIS_STREAM_IO_H_

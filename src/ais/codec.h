#ifndef MARLIN_AIS_CODEC_H_
#define MARLIN_AIS_CODEC_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ais/types.h"
#include "util/status.h"

namespace marlin {

/// Bit-level writer for AIS payloads (big-endian bit order per ITU-R
/// M.1371). Grows on demand; pads the final 6-bit group with zeros.
class BitWriter {
 public:
  /// Appends the low `width` bits of `value` (unsigned), MSB first.
  void WriteUint(uint64_t value, int width);
  /// Appends a two's-complement signed value.
  void WriteInt(int64_t value, int width);
  /// Appends a 6-bit-character string field of `chars` characters, padded
  /// with '@'.
  void WriteString(const std::string& text, int chars);

  int BitCount() const { return static_cast<int>(bits_.size()); }
  const std::vector<bool>& bits() const { return bits_; }

 private:
  std::vector<bool> bits_;
};

/// Bit-level reader over a decoded AIS payload.
class BitReader {
 public:
  explicit BitReader(std::vector<bool> bits) : bits_(std::move(bits)) {}

  /// Reads `width` bits as an unsigned value; returns 0 past the end (the
  /// caller should pre-validate the payload length).
  uint64_t ReadUint(int width);
  /// Reads `width` bits as a two's-complement signed value.
  int64_t ReadInt(int width);
  /// Reads a 6-bit-character string of `chars` characters, trimming trailing
  /// '@' and spaces.
  std::string ReadString(int chars);

  int Remaining() const { return static_cast<int>(bits_.size()) - pos_; }

 private:
  std::vector<bool> bits_;
  int pos_ = 0;
};

/// Encoder/decoder for NMEA 0183 AIVDM sentences carrying AIS messages —
/// the wire format of the real-time feeds the paper's ingestion services
/// consume. Supports position reports (types 1/2/3) and the static/voyage
/// report (type 5, two-fragment).
class AisCodec {
 public:
  /// Encodes a position report as a single !AIVDM sentence (message type 1).
  /// `timestamp` seconds are carried in the 6-bit UTC-second field; full
  /// timestamps are restored by the decoder from `received_at`.
  static std::string EncodePosition(const AisPosition& report);

  /// Encodes a Class-B position report (message type 18) — the transponder
  /// class of most fishing and pleasure craft.
  static std::string EncodePositionClassB(const AisPosition& report);

  /// Encodes a static report as the two-fragment type-5 sentence pair.
  static std::vector<std::string> EncodeStatic(const AisStatic& report);

  /// Decodes one position-report sentence (types 1/2/3 and 18).
  /// `received_at` supplies the full receive timestamp (AIS itself only
  /// carries the UTC second).
  static StatusOr<AisPosition> DecodePosition(const std::string& sentence,
                                              TimeMicros received_at);

  /// Decodes a reassembled type-5 sentence pair.
  static StatusOr<AisStatic> DecodeStatic(
      const std::vector<std::string>& sentences);

  /// Computes the NMEA checksum (XOR of characters between '!' and '*').
  static uint8_t Checksum(std::string_view body);

  /// Extracts and validates the 6-bit payload of an AIVDM sentence.
  /// Returns the payload characters and the number of fill bits.
  static StatusOr<std::string> ExtractPayload(const std::string& sentence);

  /// Parses the fragment bookkeeping of an AIVDM sentence.
  struct FragmentInfo {
    int fragment_count = 1;
    int fragment_number = 1;
    /// Sequential message id linking the fragments of one group; -1 for
    /// single-fragment sentences (the field is empty there).
    int sequence_id = -1;
    char channel = 'A';
  };
  static StatusOr<FragmentInfo> ParseFragmentInfo(const std::string& sentence);

  /// 6-bit armouring: payload characters -> bit vector.
  static std::vector<bool> PayloadToBits(const std::string& payload,
                                         int fill_bits);
  /// 6-bit armouring: bit vector -> payload characters (pads to 6-bit
  /// groups). Also returns via `fill_bits` the number of pad bits added.
  static std::string BitsToPayload(const std::vector<bool>& bits,
                                   int* fill_bits);
};

/// Reassembles multi-fragment AIVDM groups from an interleaved sentence
/// stream (real receivers interleave fragments of different messages and
/// channels). Feed sentences in arrival order; when a group completes, the
/// ordered sentence list is returned. Incomplete groups are evicted after
/// `max_pending` other groups have started (lost-fragment hygiene).
class AivdmAssembler {
 public:
  explicit AivdmAssembler(size_t max_pending = 64)
      : max_pending_(max_pending) {}

  /// Returns the completed group containing `sentence`, or an empty vector
  /// while the group is still incomplete. Errors on malformed sentences.
  StatusOr<std::vector<std::string>> Feed(const std::string& sentence);

  size_t PendingGroups() const { return pending_.size(); }

 private:
  struct Group {
    std::vector<std::string> fragments;  // indexed by fragment_number - 1
    int received = 0;
    uint64_t age_stamp = 0;
  };

  size_t max_pending_;
  uint64_t next_stamp_ = 0;
  std::map<std::pair<int, char>, Group> pending_;
};

}  // namespace marlin

#endif  // MARLIN_AIS_CODEC_H_

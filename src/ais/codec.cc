#include "ais/codec.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace marlin {
namespace {

// 6-bit AIS character set (ITU-R M.1371 table 47): value 0-63.
char SixBitToChar(int v) {
  // '@' (0) .. '_' (31), ' ' (32) .. '?' (63)
  return v < 32 ? static_cast<char>('@' + v) : static_cast<char>(' ' + v - 32);
}

int CharToSixBit(char c) {
  if (c >= '@' && c <= '_') return c - '@';
  if (c >= ' ' && c <= '?') return 32 + (c - ' ');
  return 0;
}

// Payload armouring alphabet: value v -> v + 48, +8 more if >= 40.
char ArmourChar(int v) {
  return static_cast<char>(v < 40 ? v + 48 : v + 56);
}

int UnarmourChar(char c) {
  int v = c - 48;
  if (v > 40) v -= 8;
  return v;
}

std::string FormatSentence(const std::string& body) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "*%02X", AisCodec::Checksum(body));
  return "!" + body + buf;
}

}  // namespace

void BitWriter::WriteUint(uint64_t value, int width) {
  for (int i = width - 1; i >= 0; --i) {
    bits_.push_back(((value >> i) & 1ULL) != 0);
  }
}

void BitWriter::WriteInt(int64_t value, int width) {
  WriteUint(static_cast<uint64_t>(value) & ((width == 64)
                                                ? ~uint64_t{0}
                                                : ((uint64_t{1} << width) - 1)),
            width);
}

void BitWriter::WriteString(const std::string& text, int chars) {
  for (int i = 0; i < chars; ++i) {
    char c = i < static_cast<int>(text.size())
                 ? static_cast<char>(std::toupper(text[i]))
                 : '@';
    WriteUint(static_cast<uint64_t>(CharToSixBit(c)), 6);
  }
}

uint64_t BitReader::ReadUint(int width) {
  uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    value <<= 1;
    if (pos_ < static_cast<int>(bits_.size())) {
      value |= bits_[pos_] ? 1ULL : 0ULL;
      ++pos_;
    }
  }
  return value;
}

int64_t BitReader::ReadInt(int width) {
  uint64_t raw = ReadUint(width);
  // Sign-extend.
  if (width < 64 && (raw & (uint64_t{1} << (width - 1)))) {
    raw |= ~((uint64_t{1} << width) - 1);
  }
  return static_cast<int64_t>(raw);
}

std::string BitReader::ReadString(int chars) {
  std::string out;
  out.reserve(chars);
  for (int i = 0; i < chars; ++i) {
    out.push_back(SixBitToChar(static_cast<int>(ReadUint(6))));
  }
  // Trim trailing padding ('@') and spaces.
  while (!out.empty() && (out.back() == '@' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

uint8_t AisCodec::Checksum(std::string_view body) {
  uint8_t sum = 0;
  for (char c : body) sum = static_cast<uint8_t>(sum ^ c);
  return sum;
}

std::string AisCodec::BitsToPayload(const std::vector<bool>& bits,
                                    int* fill_bits) {
  std::string payload;
  const int groups = (static_cast<int>(bits.size()) + 5) / 6;
  payload.reserve(groups);
  *fill_bits = groups * 6 - static_cast<int>(bits.size());
  for (int g = 0; g < groups; ++g) {
    int v = 0;
    for (int b = 0; b < 6; ++b) {
      const int idx = g * 6 + b;
      v = (v << 1) | (idx < static_cast<int>(bits.size()) && bits[idx] ? 1 : 0);
    }
    payload.push_back(ArmourChar(v));
  }
  return payload;
}

std::vector<bool> AisCodec::PayloadToBits(const std::string& payload,
                                          int fill_bits) {
  std::vector<bool> bits;
  bits.reserve(payload.size() * 6);
  for (char c : payload) {
    const int v = UnarmourChar(c);
    for (int b = 5; b >= 0; --b) bits.push_back(((v >> b) & 1) != 0);
  }
  for (int i = 0; i < fill_bits && !bits.empty(); ++i) bits.pop_back();
  return bits;
}

std::string AisCodec::EncodePosition(const AisPosition& report) {
  BitWriter w;
  w.WriteUint(1, 6);   // message type 1
  w.WriteUint(0, 2);   // repeat indicator
  w.WriteUint(report.mmsi, 30);
  w.WriteUint(static_cast<uint64_t>(report.nav_status), 4);
  // ROT: encoded as 4.733 * sqrt(deg/min), signed 8 bits; 0 = not turning.
  int rot_enc = 0;
  if (report.rot_deg_min != 0.0) {
    const double mag = 4.733 * std::sqrt(std::abs(report.rot_deg_min));
    rot_enc = static_cast<int>(std::clamp(mag, 0.0, 126.0));
    if (report.rot_deg_min < 0) rot_enc = -rot_enc;
  }
  w.WriteInt(rot_enc, 8);
  // SOG in 0.1-knot steps, 1023 = not available.
  const int sog = report.sog_knots >= 102.3
                      ? 1023
                      : static_cast<int>(std::lround(report.sog_knots * 10.0));
  w.WriteUint(static_cast<uint64_t>(std::clamp(sog, 0, 1023)), 10);
  w.WriteUint(1, 1);  // position accuracy: high
  // Lon/lat in 1/10000 minute.
  const int64_t lon =
      static_cast<int64_t>(std::lround(report.position.lon_deg * 600000.0));
  const int64_t lat =
      static_cast<int64_t>(std::lround(report.position.lat_deg * 600000.0));
  w.WriteInt(lon, 28);
  w.WriteInt(lat, 27);
  // COG in 0.1 degrees, 3600 = not available.
  const int cog = report.cog_deg >= 360.0
                      ? 3600
                      : static_cast<int>(std::lround(report.cog_deg * 10.0));
  w.WriteUint(static_cast<uint64_t>(std::clamp(cog, 0, 3600)), 12);
  // True heading, 511 = not available.
  w.WriteUint(static_cast<uint64_t>(std::clamp(report.heading_deg, 0, 511)),
              9);
  // UTC second of the report.
  const int utc_second =
      static_cast<int>((report.timestamp / kMicrosPerSecond) % 60);
  w.WriteUint(static_cast<uint64_t>(utc_second), 6);
  w.WriteUint(0, 2);   // maneuver indicator
  w.WriteUint(0, 3);   // spare
  w.WriteUint(0, 1);   // RAIM
  w.WriteUint(0, 19);  // radio status
  int fill_bits = 0;
  const std::string payload = BitsToPayload(w.bits(), &fill_bits);
  char body[128];
  std::snprintf(body, sizeof(body), "AIVDM,1,1,,A,%s,%d", payload.c_str(),
                fill_bits);
  return FormatSentence(body);
}

std::string AisCodec::EncodePositionClassB(const AisPosition& report) {
  BitWriter w;
  w.WriteUint(18, 6);  // message type 18
  w.WriteUint(0, 2);   // repeat indicator
  w.WriteUint(report.mmsi, 30);
  w.WriteUint(0, 8);  // reserved
  const int sog = report.sog_knots >= 102.3
                      ? 1023
                      : static_cast<int>(std::lround(report.sog_knots * 10.0));
  w.WriteUint(static_cast<uint64_t>(std::clamp(sog, 0, 1023)), 10);
  w.WriteUint(1, 1);  // position accuracy
  const int64_t lon =
      static_cast<int64_t>(std::lround(report.position.lon_deg * 600000.0));
  const int64_t lat =
      static_cast<int64_t>(std::lround(report.position.lat_deg * 600000.0));
  w.WriteInt(lon, 28);
  w.WriteInt(lat, 27);
  const int cog = report.cog_deg >= 360.0
                      ? 3600
                      : static_cast<int>(std::lround(report.cog_deg * 10.0));
  w.WriteUint(static_cast<uint64_t>(std::clamp(cog, 0, 3600)), 12);
  w.WriteUint(static_cast<uint64_t>(std::clamp(report.heading_deg, 0, 511)),
              9);
  const int utc_second =
      static_cast<int>((report.timestamp / kMicrosPerSecond) % 60);
  w.WriteUint(static_cast<uint64_t>(utc_second), 6);
  w.WriteUint(0, 2);   // reserved
  w.WriteUint(1, 1);   // CS unit: carrier sense
  w.WriteUint(0, 1);   // no display
  w.WriteUint(0, 1);   // no DSC
  w.WriteUint(0, 1);   // band flag
  w.WriteUint(0, 1);   // message 22 flag
  w.WriteUint(0, 1);   // assigned mode
  w.WriteUint(0, 1);   // RAIM
  w.WriteUint(0, 20);  // radio status
  int fill_bits = 0;
  const std::string payload = BitsToPayload(w.bits(), &fill_bits);
  char body[128];
  std::snprintf(body, sizeof(body), "AIVDM,1,1,,B,%s,%d", payload.c_str(),
                fill_bits);
  return FormatSentence(body);
}

std::vector<std::string> AisCodec::EncodeStatic(const AisStatic& report) {
  BitWriter w;
  w.WriteUint(5, 6);  // message type 5
  w.WriteUint(0, 2);
  w.WriteUint(report.mmsi, 30);
  w.WriteUint(0, 2);        // AIS version
  w.WriteUint(0, 30);       // IMO number (not modelled)
  w.WriteString("", 7);     // call sign
  w.WriteString(report.name, 20);
  // Ship type: reverse-map the coarse category to a representative ITU code.
  int itu = 0;
  switch (report.type) {
    case VesselType::kFishing:
      itu = 30;
      break;
    case VesselType::kHighSpeedCraft:
      itu = 40;
      break;
    case VesselType::kTug:
      itu = 52;
      break;
    case VesselType::kPassenger:
      itu = 60;
      break;
    case VesselType::kCargo:
      itu = 70;
      break;
    case VesselType::kTanker:
      itu = 80;
      break;
    case VesselType::kPleasureCraft:
      itu = 37;
      break;
    case VesselType::kOther:
      itu = 90;
      break;
    case VesselType::kUnknown:
      itu = 0;
      break;
  }
  w.WriteUint(static_cast<uint64_t>(itu), 8);
  // Dimensions: bow/stern split evenly, port/starboard likewise.
  const int half_len = static_cast<int>(report.length_m / 2.0);
  const int half_beam = static_cast<int>(report.beam_m / 2.0);
  w.WriteUint(static_cast<uint64_t>(std::clamp(half_len, 0, 511)), 9);
  w.WriteUint(static_cast<uint64_t>(std::clamp(half_len, 0, 511)), 9);
  w.WriteUint(static_cast<uint64_t>(std::clamp(half_beam, 0, 63)), 6);
  w.WriteUint(static_cast<uint64_t>(std::clamp(half_beam, 0, 63)), 6);
  w.WriteUint(1, 4);   // EPFD: GPS
  w.WriteUint(0, 20);  // ETA (not modelled)
  // Draught in 0.1 m.
  const int draught = static_cast<int>(std::lround(report.draught_m * 10.0));
  w.WriteUint(static_cast<uint64_t>(std::clamp(draught, 0, 255)), 8);
  w.WriteString(report.destination, 20);
  w.WriteUint(0, 1);  // DTE
  w.WriteUint(0, 1);  // spare
  int fill_bits = 0;
  const std::string payload = BitsToPayload(w.bits(), &fill_bits);
  // Split into two fragments (real type-5 sentences are two fragments
  // because the 424-bit payload exceeds one sentence's capacity).
  const size_t split = 60;
  const std::string part1 = payload.substr(0, split);
  const std::string part2 = payload.substr(std::min(split, payload.size()));
  char body1[160], body2[160];
  std::snprintf(body1, sizeof(body1), "AIVDM,2,1,1,A,%s,0", part1.c_str());
  std::snprintf(body2, sizeof(body2), "AIVDM,2,2,1,A,%s,%d", part2.c_str(),
                fill_bits);
  return {FormatSentence(body1), FormatSentence(body2)};
}

StatusOr<std::string> AisCodec::ExtractPayload(const std::string& sentence) {
  if (sentence.empty() || sentence[0] != '!') {
    return Status::InvalidArgument("AIVDM sentence must start with '!'");
  }
  const size_t star = sentence.rfind('*');
  if (star == std::string::npos || star + 3 > sentence.size()) {
    return Status::InvalidArgument("missing NMEA checksum");
  }
  const std::string body = sentence.substr(1, star - 1);
  const int expected = static_cast<int>(
      std::strtol(sentence.substr(star + 1, 2).c_str(), nullptr, 16));
  if (Checksum(body) != expected) {
    return Status::InvalidArgument("NMEA checksum mismatch");
  }
  // body: AIVDM,<frag_count>,<frag_no>,<seq>,<channel>,<payload>,<fill>
  std::vector<std::string> fields;
  size_t start = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i == body.size() || body[i] == ',') {
      fields.push_back(body.substr(start, i - start));
      start = i + 1;
    }
  }
  if (fields.size() != 7 || fields[0] != "AIVDM") {
    return Status::InvalidArgument("malformed AIVDM body");
  }
  return fields[5];
}

StatusOr<AisPosition> AisCodec::DecodePosition(const std::string& sentence,
                                               TimeMicros received_at) {
  MARLIN_ASSIGN_OR_RETURN(std::string payload, ExtractPayload(sentence));
  // Fill bits live in field 6; re-extract cheaply.
  const size_t last_comma = sentence.rfind(',');
  const int fill_bits = sentence[last_comma + 1] - '0';
  BitReader r(PayloadToBits(payload, fill_bits));
  if (r.Remaining() < 168) {
    return Status::InvalidArgument("position payload shorter than 168 bits");
  }
  const int type = static_cast<int>(r.ReadUint(6));
  if ((type < 1 || type > 3) && type != 18) {
    return Status::InvalidArgument("not a position report (type " +
                                   std::to_string(type) + ")");
  }
  r.ReadUint(2);  // repeat
  AisPosition out;
  out.mmsi = static_cast<Mmsi>(r.ReadUint(30));
  if (type == 18) {
    r.ReadUint(8);  // reserved (Class B has no nav status / ROT)
    out.nav_status = NavStatus::kUndefined;
  } else {
    out.nav_status = static_cast<NavStatus>(r.ReadUint(4));
    const int64_t rot_enc = r.ReadInt(8);
    if (rot_enc != 0 && rot_enc != -128) {
      const double mag = static_cast<double>(std::abs(rot_enc)) / 4.733;
      out.rot_deg_min = (rot_enc < 0 ? -1.0 : 1.0) * mag * mag;
    }
  }
  const uint64_t sog = r.ReadUint(10);
  out.sog_knots = sog == 1023 ? 102.3 : static_cast<double>(sog) / 10.0;
  r.ReadUint(1);  // accuracy
  out.position.lon_deg = static_cast<double>(r.ReadInt(28)) / 600000.0;
  out.position.lat_deg = static_cast<double>(r.ReadInt(27)) / 600000.0;
  const uint64_t cog = r.ReadUint(12);
  out.cog_deg = cog >= 3600 ? 360.0 : static_cast<double>(cog) / 10.0;
  out.heading_deg = static_cast<int>(r.ReadUint(9));
  const int utc_second = static_cast<int>(r.ReadUint(6));
  // Reconstruct the full timestamp: align the receive time's second-of-
  // minute with the transmitted UTC second (AIS carries only the second).
  const TimeMicros base_minute =
      (received_at / kMicrosPerMinute) * kMicrosPerMinute;
  TimeMicros ts = base_minute + utc_second * kMicrosPerSecond;
  if (ts > received_at + 5 * kMicrosPerSecond) ts -= kMicrosPerMinute;
  out.timestamp = ts;
  return out;
}

StatusOr<AisCodec::FragmentInfo> AisCodec::ParseFragmentInfo(
    const std::string& sentence) {
  if (sentence.empty() || sentence[0] != '!') {
    return Status::InvalidArgument("AIVDM sentence must start with '!'");
  }
  const size_t star = sentence.rfind('*');
  if (star == std::string::npos) {
    return Status::InvalidArgument("missing NMEA checksum");
  }
  const std::string body = sentence.substr(1, star - 1);
  std::vector<std::string> fields;
  size_t start = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i == body.size() || body[i] == ',') {
      fields.push_back(body.substr(start, i - start));
      start = i + 1;
    }
  }
  if (fields.size() != 7 || fields[0] != "AIVDM") {
    return Status::InvalidArgument("malformed AIVDM body");
  }
  FragmentInfo info;
  info.fragment_count = std::atoi(fields[1].c_str());
  info.fragment_number = std::atoi(fields[2].c_str());
  info.sequence_id = fields[3].empty() ? -1 : std::atoi(fields[3].c_str());
  info.channel = fields[4].empty() ? 'A' : fields[4][0];
  if (info.fragment_count < 1 || info.fragment_number < 1 ||
      info.fragment_number > info.fragment_count) {
    return Status::InvalidArgument("inconsistent fragment numbering");
  }
  return info;
}

StatusOr<std::vector<std::string>> AivdmAssembler::Feed(
    const std::string& sentence) {
  MARLIN_ASSIGN_OR_RETURN(AisCodec::FragmentInfo info,
                          AisCodec::ParseFragmentInfo(sentence));
  if (info.fragment_count == 1) {
    return std::vector<std::string>{sentence};
  }
  const std::pair<int, char> key{info.sequence_id, info.channel};
  Group& group = pending_[key];
  if (group.fragments.empty()) {
    group.fragments.resize(static_cast<size_t>(info.fragment_count));
    group.age_stamp = next_stamp_++;
  }
  if (static_cast<int>(group.fragments.size()) != info.fragment_count) {
    // Sequence id reused with a different group size: restart the group.
    group.fragments.assign(static_cast<size_t>(info.fragment_count), "");
    group.received = 0;
    group.age_stamp = next_stamp_++;
  }
  std::string& slot =
      group.fragments[static_cast<size_t>(info.fragment_number - 1)];
  if (slot.empty()) ++group.received;
  slot = sentence;
  if (group.received == info.fragment_count) {
    std::vector<std::string> complete = std::move(group.fragments);
    pending_.erase(key);
    return complete;
  }
  // Evict the oldest incomplete groups when too many are pending.
  while (pending_.size() > max_pending_) {
    auto oldest = pending_.begin();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->second.age_stamp < oldest->second.age_stamp) oldest = it;
    }
    pending_.erase(oldest);
  }
  return std::vector<std::string>{};
}

StatusOr<AisStatic> AisCodec::DecodeStatic(
    const std::vector<std::string>& sentences) {
  if (sentences.size() != 2) {
    return Status::InvalidArgument("type-5 report requires 2 fragments");
  }
  std::string payload;
  int fill_bits = 0;
  for (size_t i = 0; i < sentences.size(); ++i) {
    MARLIN_ASSIGN_OR_RETURN(std::string part, ExtractPayload(sentences[i]));
    payload += part;
    const size_t last_comma = sentences[i].rfind(',');
    fill_bits = sentences[i][last_comma + 1] - '0';
  }
  BitReader r(PayloadToBits(payload, fill_bits));
  if (r.Remaining() < 420) {
    return Status::InvalidArgument("static payload too short");
  }
  const int type = static_cast<int>(r.ReadUint(6));
  if (type != 5) {
    return Status::InvalidArgument("not a static report");
  }
  r.ReadUint(2);  // repeat
  AisStatic out;
  out.mmsi = static_cast<Mmsi>(r.ReadUint(30));
  r.ReadUint(2);     // AIS version
  r.ReadUint(30);    // IMO
  r.ReadString(7);   // call sign
  out.name = r.ReadString(20);
  out.type = VesselTypeFromItuCode(static_cast<int>(r.ReadUint(8)));
  const int to_bow = static_cast<int>(r.ReadUint(9));
  const int to_stern = static_cast<int>(r.ReadUint(9));
  const int to_port = static_cast<int>(r.ReadUint(6));
  const int to_starboard = static_cast<int>(r.ReadUint(6));
  out.length_m = to_bow + to_stern;
  out.beam_m = to_port + to_starboard;
  r.ReadUint(4);   // EPFD
  r.ReadUint(20);  // ETA
  out.draught_m = static_cast<double>(r.ReadUint(8)) / 10.0;
  out.destination = r.ReadString(20);
  return out;
}

}  // namespace marlin

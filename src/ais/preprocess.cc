#include "ais/preprocess.h"

#include <algorithm>

namespace marlin {

bool Downsampler::Accept(TimeMicros timestamp) {
  if (last_accepted_ >= 0 && timestamp < last_accepted_ + min_interval_) {
    return false;
  }
  last_accepted_ = timestamp;
  return true;
}

bool FleetDownsampler::Accept(Mmsi mmsi, TimeMicros timestamp) {
  auto it = per_vessel_.try_emplace(mmsi, min_interval_).first;
  return it->second.Accept(timestamp);
}

std::vector<std::vector<AisPosition>> SegmentTrajectory(
    const std::vector<AisPosition>& track, TimeMicros max_gap) {
  std::vector<std::vector<AisPosition>> segments;
  std::vector<AisPosition> current;
  for (const AisPosition& p : track) {
    if (!current.empty() &&
        p.timestamp - current.back().timestamp > max_gap) {
      if (current.size() >= 2) segments.push_back(std::move(current));
      current.clear();
    }
    if (current.empty() || p.timestamp >= current.back().timestamp) {
      current.push_back(p);
    }
  }
  if (current.size() >= 2) segments.push_back(std::move(current));
  return segments;
}

StatusOr<LatLng> InterpolatePosition(const std::vector<AisPosition>& segment,
                                     TimeMicros t) {
  if (segment.empty()) {
    return Status::InvalidArgument("empty segment");
  }
  if (t < segment.front().timestamp || t > segment.back().timestamp) {
    return Status::OutOfRange("time outside segment span");
  }
  // Binary search for the first point at or after t.
  auto it = std::lower_bound(
      segment.begin(), segment.end(), t,
      [](const AisPosition& p, TimeMicros value) { return p.timestamp < value; });
  if (it == segment.begin() || it->timestamp == t) {
    return it->position;
  }
  const AisPosition& b = *it;
  const AisPosition& a = *(it - 1);
  const double span = static_cast<double>(b.timestamp - a.timestamp);
  const double f = span <= 0.0
                       ? 0.0
                       : static_cast<double>(t - a.timestamp) / span;
  LatLng out;
  out.lat_deg = a.position.lat_deg + f * (b.position.lat_deg - a.position.lat_deg);
  out.lon_deg = a.position.lon_deg + f * (b.position.lon_deg - a.position.lon_deg);
  return out;
}

std::vector<SvrfSample> BuildSvrfSamples(
    const std::vector<AisPosition>& track,
    const SampleBuilderOptions& options) {
  std::vector<SvrfSample> samples;
  // Downsample first, then segment.
  Downsampler downsampler(options.downsample_interval);
  std::vector<AisPosition> kept;
  kept.reserve(track.size());
  for (const AisPosition& p : track) {
    if (downsampler.Accept(p.timestamp)) kept.push_back(p);
  }
  const auto segments = SegmentTrajectory(kept, options.segment_gap);
  const int stride = std::max(1, options.stride);
  for (const auto& segment : segments) {
    if (static_cast<int>(segment.size()) < kSvrfInputLength + 2) continue;
    for (size_t anchor = kSvrfInputLength;
         anchor < segment.size();
         anchor += static_cast<size_t>(stride)) {
      const AisPosition& a = segment[anchor];
      if (a.timestamp + kSvrfHorizonMicros > segment.back().timestamp) break;
      SvrfSample sample;
      for (int k = 0; k < kSvrfInputLength; ++k) {
        const AisPosition& prev = segment[anchor - kSvrfInputLength + k];
        const AisPosition& next = segment[anchor - kSvrfInputLength + k + 1];
        sample.input.displacements[k].dlat_deg =
            next.position.lat_deg - prev.position.lat_deg;
        sample.input.displacements[k].dlon_deg =
            next.position.lon_deg - prev.position.lon_deg;
        sample.input.displacements[k].dt_sec =
            static_cast<double>(next.timestamp - prev.timestamp) /
            static_cast<double>(kMicrosPerSecond);
      }
      sample.input.anchor = a.position;
      sample.input.anchor_time = a.timestamp;
      sample.input.anchor_sog_knots = a.sog_knots;
      sample.input.anchor_cog_deg = a.cog_deg;
      LatLng prev_pos = a.position;
      bool ok = true;
      for (int step = 0; step < kSvrfOutputSteps; ++step) {
        const TimeMicros t = a.timestamp + (step + 1) * kSvrfStepMicros;
        StatusOr<LatLng> at = InterpolatePosition(segment, t);
        if (!at.ok()) {
          ok = false;
          break;
        }
        sample.targets[step].dlat_deg = at->lat_deg - prev_pos.lat_deg;
        sample.targets[step].dlon_deg = at->lon_deg - prev_pos.lon_deg;
        sample.targets[step].dt_sec =
            static_cast<double>(kSvrfStepMicros) / kMicrosPerSecond;
        prev_pos = *at;
      }
      if (ok) samples.push_back(sample);
    }
  }
  return samples;
}

bool VesselHistory::Push(const AisPosition& report) {
  if (!points_.empty() && report.timestamp <= points_.back().timestamp) {
    return false;
  }
  if (!downsampler_.Accept(report.timestamp)) return false;
  points_.push_back(report);
  while (points_.size() > static_cast<size_t>(kSvrfInputLength) + 1) {
    points_.pop_front();
  }
  return true;
}

SvrfInput VesselHistory::MakeInput() const {
  SvrfInput input;
  const size_t n = points_.size();
  for (int k = 0; k < kSvrfInputLength; ++k) {
    const AisPosition& prev = points_[n - kSvrfInputLength - 1 + k];
    const AisPosition& next = points_[n - kSvrfInputLength + k];
    input.displacements[k].dlat_deg =
        next.position.lat_deg - prev.position.lat_deg;
    input.displacements[k].dlon_deg =
        next.position.lon_deg - prev.position.lon_deg;
    input.displacements[k].dt_sec =
        static_cast<double>(next.timestamp - prev.timestamp) /
        static_cast<double>(kMicrosPerSecond);
  }
  const AisPosition& anchor = points_.back();
  input.anchor = anchor.position;
  input.anchor_time = anchor.timestamp;
  input.anchor_sog_knots = anchor.sog_knots;
  input.anchor_cog_deg = anchor.cog_deg;
  return input;
}

void VesselHistory::Clear() {
  points_.clear();
  downsampler_.Reset();
}

}  // namespace marlin

#ifndef MARLIN_AIS_PREPROCESS_H_
#define MARLIN_AIS_PREPROCESS_H_

#include <array>
#include <deque>
#include <unordered_map>
#include <vector>

#include "ais/types.h"
#include "util/status.h"

namespace marlin {

/// S-VRF preprocessing constants fixed by the paper (§4.2): input = 20 past
/// spatiotemporal displacements, output = 6 transitions at 5-minute steps up
/// to a 30-minute horizon, 30-second minimum downsampling rate.
constexpr int kSvrfInputLength = 20;
constexpr int kSvrfOutputSteps = 6;
constexpr TimeMicros kSvrfStepMicros = 5 * kMicrosPerMinute;
constexpr TimeMicros kSvrfHorizonMicros = kSvrfOutputSteps * kSvrfStepMicros;
constexpr TimeMicros kDefaultDownsampleMicros = 30 * kMicrosPerSecond;

/// One past displacement: the spatial and temporal delta between two
/// consecutive (downsampled) AIS positions.
struct Displacement {
  double dlat_deg = 0.0;
  double dlon_deg = 0.0;
  double dt_sec = 0.0;
};

/// Model input: exactly kSvrfInputLength displacements plus the anchor
/// (most recent) position, from which predicted transitions are unrolled.
struct SvrfInput {
  std::array<Displacement, kSvrfInputLength> displacements;
  LatLng anchor;
  TimeMicros anchor_time = 0;
  double anchor_sog_knots = 0.0;
  double anchor_cog_deg = 0.0;
};

/// One supervised training sample: the input window and the 6 target
/// transitions (Δlat, Δlon) at the fixed 5-minute timestamps.
struct SvrfSample {
  SvrfInput input;
  std::array<Displacement, kSvrfOutputSteps> targets;  // dt_sec fixed at 300
};

/// Enforces the minimum inter-message interval for one vessel: messages
/// arriving sooner than `min_interval` after the last accepted one are
/// aggregated away (dropped), reproducing the paper's 30-second downsampling
/// of the irregular raw stream.
class Downsampler {
 public:
  explicit Downsampler(TimeMicros min_interval = kDefaultDownsampleMicros)
      : min_interval_(min_interval) {}

  /// Returns true if the message at `timestamp` should be kept. Out-of-order
  /// messages (timestamp before the last accepted) are rejected.
  bool Accept(TimeMicros timestamp);

  void Reset() { last_accepted_ = -1; }

 private:
  TimeMicros min_interval_;
  TimeMicros last_accepted_ = -1;
};

/// Keyed downsampler for a multi-vessel stream.
class FleetDownsampler {
 public:
  explicit FleetDownsampler(TimeMicros min_interval = kDefaultDownsampleMicros)
      : min_interval_(min_interval) {}

  bool Accept(Mmsi mmsi, TimeMicros timestamp);

  size_t TrackedVessels() const { return per_vessel_.size(); }

 private:
  TimeMicros min_interval_;
  std::unordered_map<Mmsi, Downsampler> per_vessel_;
};

/// Splits a time-ordered single-vessel position sequence into trajectory
/// segments at transmission gaps larger than `max_gap` (vessels out of
/// coverage, moored with AIS off, etc.).
std::vector<std::vector<AisPosition>> SegmentTrajectory(
    const std::vector<AisPosition>& track, TimeMicros max_gap);

/// Linearly interpolates the vessel position at `t` inside a time-ordered
/// segment. Returns an error when `t` is outside the segment's time span.
StatusOr<LatLng> InterpolatePosition(const std::vector<AisPosition>& segment,
                                     TimeMicros t);

/// Options controlling supervised sample extraction.
struct SampleBuilderOptions {
  /// Anchors are taken every `stride` accepted points (1 = every point).
  int stride = 1;
  /// Segments are pre-downsampled with this interval before windowing.
  TimeMicros downsample_interval = kDefaultDownsampleMicros;
  /// Points separated by more than this end a segment.
  TimeMicros segment_gap = 30 * kMicrosPerMinute;
};

/// Builds S-VRF training samples from a single-vessel track: for every
/// anchor with 20 past displacements available and ground truth spanning the
/// full 30-minute horizon, emits the input window plus the 6 interpolated
/// 5-minute target transitions — the tensorisation described in §6.1.
std::vector<SvrfSample> BuildSvrfSamples(const std::vector<AisPosition>& track,
                                         const SampleBuilderOptions& options);

/// Online, per-vessel input window maintained by each vessel actor: feeds
/// accepted positions in arrival order and yields a ready SvrfInput once 21
/// downsampled positions (20 displacements) are buffered.
class VesselHistory {
 public:
  explicit VesselHistory(TimeMicros downsample_interval = kDefaultDownsampleMicros)
      : downsampler_(downsample_interval) {}

  /// Offers a new position; returns true if it was accepted (not
  /// downsampled away and in order).
  bool Push(const AisPosition& report);

  /// True once a full input window is available.
  bool Ready() const {
    return points_.size() >= static_cast<size_t>(kSvrfInputLength) + 1;
  }

  /// Builds the current model input. Requires Ready().
  SvrfInput MakeInput() const;

  /// Most recently accepted report, if any.
  const AisPosition* Latest() const {
    return points_.empty() ? nullptr : &points_.back();
  }

  size_t size() const { return points_.size(); }
  void Clear();

 private:
  Downsampler downsampler_;
  std::deque<AisPosition> points_;  // capped at kSvrfInputLength + 1
};

}  // namespace marlin

#endif  // MARLIN_AIS_PREPROCESS_H_

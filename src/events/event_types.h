#ifndef MARLIN_EVENTS_EVENT_TYPES_H_
#define MARLIN_EVENTS_EVENT_TYPES_H_

#include <string>

#include "ais/types.h"
#include "geo/geodesy.h"

namespace marlin {

/// Kinds of maritime events the platform detects or forecasts (§5).
enum class EventType {
  /// Two vessels observed in close proximity (detected, present-time).
  kProximity,
  /// A vessel's AIS transmitter went silent (detected).
  kAisSwitchOff,
  /// Two vessels' forecast trajectories intersect in space and time
  /// (forecast, future-time).
  kCollisionForecast,
  /// A vessel on a declared voyage left the corridor of historically
  /// travelled cells for its origin-destination pair (detected).
  kRouteDeviation,
};

std::string_view EventTypeName(EventType type);

/// One detected or forecast maritime event, as published to the event list
/// of the UI.
struct MaritimeEvent {
  EventType type = EventType::kProximity;
  Mmsi vessel_a = 0;
  /// Second vessel for pairwise events; 0 otherwise.
  Mmsi vessel_b = 0;
  /// When the system raised the event.
  TimeMicros detected_at = 0;
  /// When the event occurs (= detected_at for detections; the predicted
  /// collision time for forecasts).
  TimeMicros event_time = 0;
  LatLng location;
  /// Vessel separation for pairwise events, meters.
  double distance_m = 0.0;
};

/// Canonical unordered pair key for pairwise event deduplication.
inline uint64_t PairKey(Mmsi a, Mmsi b) {
  const uint64_t lo = a < b ? a : b;
  const uint64_t hi = a < b ? b : a;
  return (hi << 32) | lo;
}

}  // namespace marlin

#endif  // MARLIN_EVENTS_EVENT_TYPES_H_

#ifndef MARLIN_EVENTS_TRAFFIC_FLOW_H_
#define MARLIN_EVENTS_TRAFFIC_FLOW_H_

#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "events/event_types.h"
#include "hexgrid/hexgrid.h"
#include "vrf/route_forecaster.h"

namespace marlin {

/// Predicted (or observed) vessel count of one grid cell in one 5-minute
/// time window.
struct FlowCell {
  CellId cell = kInvalidCellId;
  int count = 0;
};

/// Indirect Vessel Traffic Flow Forecasting (§5.1): the VRF model's
/// predicted vessel locations are allocated into a spatiotemporal raster —
/// the hexagonal grid × six 5-minute windows up to 30 minutes — and the
/// per-cell counts *are* the traffic flow forecast. The indirect strategy
/// rides on the already-running S-VRF, which [17] found both more accurate
/// (often > 1.5×) and cheaper than direct flow-sequence forecasting.
class TrafficFlowForecaster {
 public:
  struct Config {
    /// Raster resolution (res 7 ≈ 8.6 km cells, the scale of Figure 4d).
    int resolution = 7;
    /// Trajectories older than this are dropped from the raster.
    TimeMicros retention = 10 * kMicrosPerMinute;
  };

  TrafficFlowForecaster();
  explicit TrafficFlowForecaster(const Config& config);

  /// Ingests a vessel's newest forecast trajectory (replaces its previous
  /// contribution to the raster).
  void Observe(const ForecastTrajectory& trajectory);

  /// Forecast raster for horizon step 1..6 (t+5min .. t+30min): vessel
  /// count per active cell, unsorted.
  std::vector<FlowCell> Flow(int step) const;

  /// Predicted count for one position at one horizon step.
  int FlowAt(const LatLng& position, int step) const;

  /// Number of vessels currently contributing to the raster.
  size_t TrackedVessels() const { return per_vessel_.size(); }

  /// Drops contributions from vessels whose forecast anchor is older than
  /// `now - retention`.
  void Prune(TimeMicros now);

 private:
  struct VesselContribution {
    TimeMicros anchor_time = 0;
    // Cell occupied at each horizon step (index 0 = t+5min).
    std::vector<CellId> cells;
  };

  Config config_;
  std::unordered_map<Mmsi, VesselContribution> per_vessel_;
  // counts_[step][cell] = vessels forecast in `cell` during window `step`.
  std::vector<std::unordered_map<CellId, int>> counts_;
};

/// Direct traffic flow forecasting baseline (the alternative strategy of
/// [17], reproduced for the ablation bench): per-cell history of observed
/// vessel counts per 5-minute window, extrapolated by a seasonal
/// moving-average of the recent windows.
class DirectTrafficForecaster {
 public:
  struct Config {
    int resolution = 7;
    TimeMicros window = 5 * kMicrosPerMinute;
    /// Windows of history per cell used by the moving average.
    int history_windows = 6;
  };

  DirectTrafficForecaster();
  explicit DirectTrafficForecaster(const Config& config);

  /// Ingests one observed position.
  void Observe(const AisPosition& report);

  /// Closes the current window at `now`, pushing per-cell counts into
  /// history. Call at window boundaries.
  void Roll(TimeMicros now);

  /// Predicts the vessel count of the cell containing `position` `steps`
  /// windows ahead (moving-average of the cell's history — the direct
  /// sequence-forecasting strategy; the same value for all future steps).
  double Forecast(const LatLng& position, int steps) const;

  size_t ActiveCells() const { return history_.size(); }

 private:
  Config config_;
  std::unordered_map<CellId, std::unordered_map<Mmsi, bool>> current_;
  std::unordered_map<CellId, std::deque<int>> history_;
};

}  // namespace marlin

#endif  // MARLIN_EVENTS_TRAFFIC_FLOW_H_

#include "events/traffic_flow.h"

#include <algorithm>

namespace marlin {

TrafficFlowForecaster::TrafficFlowForecaster()
    : TrafficFlowForecaster(Config()) {}

TrafficFlowForecaster::TrafficFlowForecaster(const Config& config)
    : config_(config), counts_(kSvrfOutputSteps) {}

void TrafficFlowForecaster::Observe(const ForecastTrajectory& trajectory) {
  if (trajectory.points.size() < static_cast<size_t>(kSvrfOutputSteps) + 1) {
    return;
  }
  // Remove the vessel's previous contribution.
  auto it = per_vessel_.find(trajectory.mmsi);
  if (it != per_vessel_.end()) {
    for (int step = 0; step < kSvrfOutputSteps; ++step) {
      const CellId cell = it->second.cells[static_cast<size_t>(step)];
      auto& bucket = counts_[static_cast<size_t>(step)];
      auto cell_it = bucket.find(cell);
      if (cell_it != bucket.end() && --cell_it->second <= 0) {
        bucket.erase(cell_it);
      }
    }
  }
  VesselContribution contribution;
  contribution.anchor_time = trajectory.points.front().time;
  contribution.cells.resize(kSvrfOutputSteps);
  for (int step = 0; step < kSvrfOutputSteps; ++step) {
    const CellId cell = HexGrid::LatLngToCell(
        trajectory.points[static_cast<size_t>(step) + 1].position,
        config_.resolution);
    contribution.cells[static_cast<size_t>(step)] = cell;
    if (cell != kInvalidCellId) {
      ++counts_[static_cast<size_t>(step)][cell];
    }
  }
  per_vessel_[trajectory.mmsi] = std::move(contribution);
}

std::vector<FlowCell> TrafficFlowForecaster::Flow(int step) const {
  std::vector<FlowCell> out;
  if (step < 1 || step > kSvrfOutputSteps) return out;
  const auto& bucket = counts_[static_cast<size_t>(step) - 1];
  out.reserve(bucket.size());
  for (const auto& [cell, count] : bucket) {
    out.push_back(FlowCell{cell, count});
  }
  return out;
}

int TrafficFlowForecaster::FlowAt(const LatLng& position, int step) const {
  if (step < 1 || step > kSvrfOutputSteps) return 0;
  const CellId cell = HexGrid::LatLngToCell(position, config_.resolution);
  const auto& bucket = counts_[static_cast<size_t>(step) - 1];
  auto it = bucket.find(cell);
  return it == bucket.end() ? 0 : it->second;
}

void TrafficFlowForecaster::Prune(TimeMicros now) {
  const TimeMicros cutoff = now - config_.retention;
  for (auto it = per_vessel_.begin(); it != per_vessel_.end();) {
    if (it->second.anchor_time < cutoff) {
      for (int step = 0; step < kSvrfOutputSteps; ++step) {
        const CellId cell = it->second.cells[static_cast<size_t>(step)];
        auto& bucket = counts_[static_cast<size_t>(step)];
        auto cell_it = bucket.find(cell);
        if (cell_it != bucket.end() && --cell_it->second <= 0) {
          bucket.erase(cell_it);
        }
      }
      it = per_vessel_.erase(it);
    } else {
      ++it;
    }
  }
}

DirectTrafficForecaster::DirectTrafficForecaster()
    : DirectTrafficForecaster(Config()) {}

DirectTrafficForecaster::DirectTrafficForecaster(const Config& config)
    : config_(config) {}

void DirectTrafficForecaster::Observe(const AisPosition& report) {
  const CellId cell =
      HexGrid::LatLngToCell(report.position, config_.resolution);
  if (cell == kInvalidCellId) return;
  current_[cell][report.mmsi] = true;
}

void DirectTrafficForecaster::Roll(TimeMicros now) {
  (void)now;
  // Every cell with any history (or current observations) gets a window
  // sample, including zeros, so the moving average decays correctly.
  for (auto& [cell, vessels] : current_) {
    history_[cell];  // ensure exists
  }
  for (auto& [cell, window_history] : history_) {
    auto it = current_.find(cell);
    const int count =
        it == current_.end() ? 0 : static_cast<int>(it->second.size());
    window_history.push_back(count);
    while (static_cast<int>(window_history.size()) > config_.history_windows) {
      window_history.pop_front();
    }
  }
  current_.clear();
}

double DirectTrafficForecaster::Forecast(const LatLng& position,
                                         int steps) const {
  (void)steps;  // The moving-average forecast is flat across horizons.
  const CellId cell = HexGrid::LatLngToCell(position, config_.resolution);
  auto it = history_.find(cell);
  if (it == history_.end() || it->second.empty()) return 0.0;
  double sum = 0.0;
  for (int count : it->second) sum += count;
  return sum / static_cast<double>(it->second.size());
}

}  // namespace marlin

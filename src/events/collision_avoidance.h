#ifndef MARLIN_EVENTS_COLLISION_AVOIDANCE_H_
#define MARLIN_EVENTS_COLLISION_AVOIDANCE_H_

#include "events/collision.h"
#include "vrf/route_forecaster.h"

namespace marlin {

/// A proposed evasive manoeuvre for a vessel on a forecast collision
/// course.
struct AvoidanceManeuver {
  Mmsi vessel = 0;
  /// Course to steer, degrees.
  double new_course_deg = 0.0;
  /// Signed alteration from the present course (positive = starboard).
  double course_change_deg = 0.0;
  /// Predicted minimum separation from the other vessel after the
  /// alteration, meters.
  double clearance_m = 0.0;
  TimeMicros issued_at = 0;
};

/// Automated rerouting for vessel collision avoidance — one of the paper's
/// named future-work assets (§7), built directly on the collision
/// forecasting machinery: given own and other forecast trajectories on a
/// collision course, searches course alterations (starboard first, per the
/// COLREGs convention for crossing/head-on situations) until the predicted
/// separation clears the safety margin.
class CollisionAvoidance {
 public:
  struct Config {
    /// Required post-manoeuvre separation.
    double min_clearance_m = 1500.0;
    /// Course alterations tried: step, 2*step, ..., up to max (each side).
    double course_step_deg = 10.0;
    double max_alteration_deg = 60.0;
    /// Close-pass window for separation checks (matches the collision
    /// forecaster's temporal difference threshold).
    TimeMicros temporal_tolerance = 2 * kMicrosPerMinute;
  };

  CollisionAvoidance();
  explicit CollisionAvoidance(const Config& config);

  /// Proposes an evasive course for `own`. Returns FailedPrecondition when
  /// the pair is already clear, or NotFound when no alteration within the
  /// search budget achieves the clearance.
  StatusOr<AvoidanceManeuver> Propose(const ForecastTrajectory& own,
                                      const ForecastTrajectory& other) const;

  /// Rebuilds `own` as a constant-speed trajectory on a new course from its
  /// present position (the candidate the searcher evaluates). Exposed for
  /// tests and for callers that apply the manoeuvre.
  static ForecastTrajectory ApplyCourse(const ForecastTrajectory& own,
                                        double new_course_deg);

 private:
  Config config_;
};

}  // namespace marlin

#endif  // MARLIN_EVENTS_COLLISION_AVOIDANCE_H_

#ifndef MARLIN_EVENTS_COLLISION_H_
#define MARLIN_EVENTS_COLLISION_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "events/event_types.h"
#include "hexgrid/hexgrid.h"
#include "vrf/route_forecaster.h"

namespace marlin {

/// Minimum separation between two piecewise-linear forecast trajectories,
/// sampled on a fine time grid with positions compared at sample times
/// closer than `temporal_tolerance` (the close-pass window). Returns the
/// distance in meters and, via the out-params when non-null, where/when the
/// minimum occurs.
double MinTrajectoryDistance(const ForecastTrajectory& a,
                             const ForecastTrajectory& b,
                             TimeMicros temporal_tolerance,
                             TimeMicros* meet_time = nullptr,
                             LatLng* meet_point = nullptr);

/// Vessel collision forecasting (§5.2, Figure 5): each vessel's forecast
/// trajectory (1 present + 6 predicted positions) is assigned to its grid
/// cells *and each cell's nearest neighbours*; vessels sharing a cell are
/// collision candidates. A candidate pair is flagged when the forecast
/// trajectories intersect temporally (pointwise time difference within the
/// configured threshold, inside the 30-minute prediction window) and
/// spatially (pointwise distance below the spatial threshold).
///
/// The class holds the state the collision actors partition by cell; one
/// instance per CollisionActor (or one global instance when driven
/// directly, as in the Table-2 evaluation bench).
class CollisionForecaster {
 public:
  struct Config {
    /// Cell resolution for candidate generation. Resolution 7 cells
    /// (~8.6 km circumradius) comfortably contain 5 minutes of vessel
    /// motion, so trajectory points of colliding vessels land in the same
    /// or adjacent cells.
    int resolution = 7;
    /// Spatial intersection threshold between forecast points.
    double spatial_threshold_m = 500.0;
    /// Temporal intersection threshold ("temporal difference threshold" of
    /// Table 2; evaluated at 2 and 5 minutes).
    TimeMicros temporal_threshold = 2 * kMicrosPerMinute;
    /// Trajectories unseen for longer than this are pruned.
    TimeMicros retention = 40 * kMicrosPerMinute;
    /// Minimum spacing between repeated alerts for the same pair.
    TimeMicros pair_cooldown = 10 * kMicrosPerMinute;
  };

  CollisionForecaster();
  explicit CollisionForecaster(const Config& config);

  /// Ingests a vessel's newest forecast trajectory, replacing its previous
  /// one, and returns any collision forecasts it triggers.
  std::vector<MaritimeEvent> Observe(const ForecastTrajectory& trajectory);

  /// Drops trajectories whose anchor is older than `now - retention`.
  void Prune(TimeMicros now);

  size_t TrackedVessels() const { return trajectories_.size(); }

 private:
  /// Cells covered by a trajectory: each point's cell plus its neighbours.
  std::vector<CellId> CoveredCells(const ForecastTrajectory& trajectory) const;

  /// Pointwise space-time intersection test of two trajectories. On hit,
  /// fills the meeting description.
  bool Intersects(const ForecastTrajectory& a, const ForecastTrajectory& b,
                  TimeMicros* meet_time, LatLng* meet_point,
                  double* distance_m) const;

  Config config_;
  std::unordered_map<Mmsi, ForecastTrajectory> trajectories_;
  std::unordered_map<Mmsi, std::vector<CellId>> vessel_cells_;
  std::unordered_map<CellId, std::unordered_set<Mmsi>> cell_vessels_;
  std::unordered_map<uint64_t, TimeMicros> last_alert_;
};

}  // namespace marlin

#endif  // MARLIN_EVENTS_COLLISION_H_

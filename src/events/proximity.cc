#include "events/proximity.h"

#include "geo/geodesy.h"

namespace marlin {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kProximity:
      return "Proximity";
    case EventType::kAisSwitchOff:
      return "AisSwitchOff";
    case EventType::kCollisionForecast:
      return "CollisionForecast";
    case EventType::kRouteDeviation:
      return "RouteDeviation";
  }
  return "Unknown";
}

ProximityDetector::ProximityDetector() : ProximityDetector(Config()) {}

ProximityDetector::ProximityDetector(const Config& config) : config_(config) {}

std::vector<MaritimeEvent> ProximityDetector::Observe(
    const AisPosition& report) {
  std::vector<MaritimeEvent> events;
  const CellId cell =
      HexGrid::LatLngToCell(report.position, config_.resolution);
  if (cell == kInvalidCellId) return events;
  // Candidate partners: this cell and its 6 neighbours.
  for (CellId candidate_cell : HexGrid::KRing(cell, 1)) {
    auto it = cells_.find(candidate_cell);
    if (it == cells_.end()) continue;
    for (const StoredPosition& other : it->second) {
      if (other.mmsi == report.mmsi) continue;
      const TimeMicros dt = report.timestamp >= other.timestamp
                                ? report.timestamp - other.timestamp
                                : other.timestamp - report.timestamp;
      if (dt > config_.time_window) continue;
      const double d = ApproxDistanceMeters(report.position, other.position);
      if (d > config_.threshold_m) continue;
      const uint64_t key = PairKey(report.mmsi, other.mmsi);
      auto last_it = last_event_.find(key);
      if (last_it != last_event_.end() &&
          report.timestamp - last_it->second < config_.pair_cooldown) {
        continue;
      }
      last_event_[key] = report.timestamp;
      MaritimeEvent event;
      event.type = EventType::kProximity;
      event.vessel_a = report.mmsi;
      event.vessel_b = other.mmsi;
      event.detected_at = report.timestamp;
      event.event_time = report.timestamp;
      event.location = report.position;
      event.distance_m = d;
      events.push_back(event);
    }
  }
  // Store after matching so a vessel does not match itself.
  StoredPosition stored;
  stored.mmsi = report.mmsi;
  stored.timestamp = report.timestamp;
  stored.position = report.position;
  cells_[cell].push_back(stored);
  return events;
}

void ProximityDetector::Prune(TimeMicros now) {
  const TimeMicros cutoff = now - config_.retention;
  for (auto it = cells_.begin(); it != cells_.end();) {
    std::deque<StoredPosition>& bucket = it->second;
    while (!bucket.empty() && bucket.front().timestamp < cutoff) {
      bucket.pop_front();
    }
    if (bucket.empty()) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t ProximityDetector::StoredObservations() const {
  size_t total = 0;
  for (const auto& [cell, bucket] : cells_) total += bucket.size();
  return total;
}

}  // namespace marlin

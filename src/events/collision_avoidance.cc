#include "events/collision_avoidance.h"

#include <cmath>

#include "geo/geodesy.h"

namespace marlin {

CollisionAvoidance::CollisionAvoidance() : CollisionAvoidance(Config()) {}

CollisionAvoidance::CollisionAvoidance(const Config& config)
    : config_(config) {}

ForecastTrajectory CollisionAvoidance::ApplyCourse(
    const ForecastTrajectory& own, double new_course_deg) {
  ForecastTrajectory out;
  out.mmsi = own.mmsi;
  if (own.points.empty()) return out;
  // Speed implied by the original forecast (total path length over span).
  double path_m = 0.0;
  for (size_t i = 1; i < own.points.size(); ++i) {
    path_m += ApproxDistanceMeters(own.points[i - 1].position,
                                   own.points[i].position);
  }
  const double span_sec =
      static_cast<double>(own.points.back().time - own.points.front().time) /
      kMicrosPerSecond;
  const double speed_mps = span_sec > 0.0 ? path_m / span_sec : 0.0;
  LatLng position = own.points.front().position;
  out.points.push_back(ForecastPoint{position, own.points.front().time});
  for (size_t i = 1; i < own.points.size(); ++i) {
    const double dt =
        static_cast<double>(own.points[i].time - own.points[i - 1].time) /
        kMicrosPerSecond;
    position = DestinationPoint(position, new_course_deg, speed_mps * dt);
    out.points.push_back(ForecastPoint{position, own.points[i].time});
  }
  return out;
}

StatusOr<AvoidanceManeuver> CollisionAvoidance::Propose(
    const ForecastTrajectory& own, const ForecastTrajectory& other) const {
  if (own.points.size() < 2 || other.points.size() < 2) {
    return Status::InvalidArgument("trajectories need at least two points");
  }
  const double current_separation =
      MinTrajectoryDistance(own, other, config_.temporal_tolerance);
  if (current_separation >= config_.min_clearance_m) {
    return Status::FailedPrecondition("vessels are already clear");
  }
  const double present_course =
      InitialBearingDeg(own.points[0].position, own.points[1].position);
  AvoidanceManeuver best;
  best.vessel = own.mmsi;
  best.issued_at = own.points.front().time;
  best.clearance_m = current_separation;
  // Starboard alterations first (COLREGs crossing/head-on convention),
  // then port as a fallback; smallest sufficient alteration wins.
  for (double alteration = config_.course_step_deg;
       alteration <= config_.max_alteration_deg + 1e-9;
       alteration += config_.course_step_deg) {
    for (const double sign : {+1.0, -1.0}) {
      const double candidate_course =
          std::fmod(present_course + sign * alteration + 360.0, 360.0);
      const ForecastTrajectory altered = ApplyCourse(own, candidate_course);
      const double clearance =
          MinTrajectoryDistance(altered, other, config_.temporal_tolerance);
      if (clearance >= config_.min_clearance_m) {
        best.new_course_deg = candidate_course;
        best.course_change_deg = sign * alteration;
        best.clearance_m = clearance;
        return best;
      }
    }
  }
  return Status::NotFound(
      "no course alteration within the search budget clears the target");
}

}  // namespace marlin

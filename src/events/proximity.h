#ifndef MARLIN_EVENTS_PROXIMITY_H_
#define MARLIN_EVENTS_PROXIMITY_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "events/event_types.h"
#include "hexgrid/hexgrid.h"

namespace marlin {

/// Present-time close-proximity event detection (§5, Figure 4e): AIS
/// positions are routed to grid cells; within each cell (and its immediate
/// neighbours) vessel pairs closer than the threshold at approximately the
/// same time raise a proximity event.
///
/// This is the cell-actor state/logic; `CellActor` in src/core hosts one
/// detector shard per cell actor, while tests and the evaluation benches
/// drive it directly. Not internally synchronised (each instance is owned
/// by one actor).
class ProximityDetector {
 public:
  struct Config {
    /// Grid resolution for candidate bucketing. Resolution 9's ~2 km cells
    /// with 1-ring neighbour lookup cover any 500 m proximity pair.
    int resolution = 9;
    /// Vessels closer than this are "in proximity".
    double threshold_m = 500.0;
    /// Maximum timestamp difference for two positions to count as
    /// simultaneous.
    TimeMicros time_window = 90 * kMicrosPerSecond;
    /// Observations older than this are pruned.
    TimeMicros retention = 10 * kMicrosPerMinute;
    /// Minimum spacing between repeated events for the same pair.
    TimeMicros pair_cooldown = 10 * kMicrosPerMinute;
  };

  ProximityDetector();
  explicit ProximityDetector(const Config& config);

  /// Ingests one position report; returns any proximity events it
  /// completes.
  std::vector<MaritimeEvent> Observe(const AisPosition& report);

  /// Drops stored observations older than `now - retention`.
  void Prune(TimeMicros now);

  const Config& config() const { return config_; }
  size_t StoredObservations() const;

 private:
  struct StoredPosition {
    Mmsi mmsi = 0;
    TimeMicros timestamp = 0;
    LatLng position;
  };

  Config config_;
  std::unordered_map<CellId, std::deque<StoredPosition>> cells_;
  std::unordered_map<uint64_t, TimeMicros> last_event_;
};

}  // namespace marlin

#endif  // MARLIN_EVENTS_PROXIMITY_H_

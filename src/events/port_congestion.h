#ifndef MARLIN_EVENTS_PORT_CONGESTION_H_
#define MARLIN_EVENTS_PORT_CONGESTION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "events/event_types.h"
#include "geo/world.h"
#include "vrf/route_forecaster.h"

namespace marlin {

/// Present and forecast state of one port's traffic.
struct PortTrafficStatus {
  int port = -1;
  std::string name;
  /// Vessels currently inside the port radius.
  int occupancy = 0;
  /// Vessels whose forecast trajectory enters the port radius within the
  /// 30-minute horizon.
  int inbound_30min = 0;
  /// occupancy + inbound_30min exceeds the congestion threshold.
  bool congested = false;
};

/// Berth/port congestion monitoring and prediction — one of the paper's
/// named future-work assets (§7: "the monitoring and prediction of berth
/// and port congestion"), built on the same primitives as the rest of the
/// platform: present occupancy from the live positions, predicted arrivals
/// from the S-VRF forecast trajectories.
class PortCongestionMonitor {
 public:
  struct Config {
    /// A vessel within this range of the port anchor counts as in port.
    double port_radius_m = 20000.0;
    /// occupancy + inbound above this flags congestion.
    int congestion_threshold = 10;
    /// Vessels unseen for longer than this leave the occupancy set.
    TimeMicros presence_ttl = 60 * kMicrosPerMinute;
  };

  PortCongestionMonitor(const std::vector<Port>& ports, const Config& config);
  explicit PortCongestionMonitor(const std::vector<Port>& ports)
      : PortCongestionMonitor(ports, Config()) {}

  /// Updates present occupancy from a live position report.
  void ObservePosition(const AisPosition& report);

  /// Updates predicted arrivals from a forecast trajectory: the vessel is
  /// inbound to the first port whose radius any predicted point enters
  /// (unless it is already inside that port).
  void ObserveForecast(const ForecastTrajectory& trajectory);

  /// Status of every port as of `now` (expired presences pruned).
  std::vector<PortTrafficStatus> Status(TimeMicros now);

  /// Status of one port.
  PortTrafficStatus PortStatus(int port, TimeMicros now);

 private:
  struct Presence {
    TimeMicros last_seen = 0;
  };
  struct PortState {
    std::unordered_map<Mmsi, Presence> occupants;
    std::unordered_map<Mmsi, Presence> inbound;
  };

  int NearestPortWithin(const LatLng& position, double radius_m) const;
  void PruneState(PortState* state, TimeMicros now) const;

  std::vector<Port> ports_;
  Config config_;
  std::vector<PortState> state_;
  /// Which port each vessel currently occupies (-1 = none), to move
  /// occupancy when the vessel departs.
  std::unordered_map<Mmsi, int> occupied_port_;
};

}  // namespace marlin

#endif  // MARLIN_EVENTS_PORT_CONGESTION_H_

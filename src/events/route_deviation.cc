#include "events/route_deviation.h"

namespace marlin {

RouteDeviationDetector::RouteDeviationDetector(const EnvClusModel* model,
                                               const Config& config)
    : model_(model), config_(config), resolution_(model->config().resolution) {}

Status RouteDeviationDetector::StartVoyage(Mmsi mmsi, int origin_port,
                                           int destination_port) {
  const std::vector<CellId> pathway =
      model_->VisitedCells(origin_port, destination_port);
  if (pathway.empty()) {
    return Status::NotFound("no historical pathway for this OD pair");
  }
  Voyage voyage;
  for (CellId cell : pathway) {
    for (CellId expanded : HexGrid::KRing(cell, config_.tolerance_rings)) {
      voyage.corridor.insert(expanded);
    }
  }
  voyages_[mmsi] = std::move(voyage);
  return Status::Ok();
}

void RouteDeviationDetector::EndVoyage(Mmsi mmsi) { voyages_.erase(mmsi); }

std::optional<MaritimeEvent> RouteDeviationDetector::Observe(
    const AisPosition& report) {
  auto it = voyages_.find(report.mmsi);
  if (it == voyages_.end()) return std::nullopt;
  Voyage& voyage = it->second;
  const CellId cell = HexGrid::LatLngToCell(report.position, resolution_);
  if (voyage.corridor.count(cell) > 0) {
    voyage.consecutive_off = 0;
    return std::nullopt;
  }
  if (++voyage.consecutive_off < config_.confirmation_count) {
    return std::nullopt;
  }
  if (voyage.last_alert != 0 &&
      report.timestamp - voyage.last_alert < config_.cooldown) {
    return std::nullopt;
  }
  voyage.last_alert = report.timestamp;
  MaritimeEvent event;
  event.type = EventType::kRouteDeviation;
  event.vessel_a = report.mmsi;
  event.detected_at = report.timestamp;
  event.event_time = report.timestamp;
  event.location = report.position;
  return event;
}

}  // namespace marlin

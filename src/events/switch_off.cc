#include "events/switch_off.h"

#include <algorithm>

namespace marlin {

SwitchOffDetector::SwitchOffDetector() : SwitchOffDetector(Config()) {}

SwitchOffDetector::SwitchOffDetector(const Config& config) : config_(config) {}

void SwitchOffDetector::Observe(const AisPosition& report) {
  VesselState& state = vessels_[report.mmsi];
  if (state.observations > 0 && report.timestamp > state.last_seen) {
    const double interval_sec =
        static_cast<double>(report.timestamp - state.last_seen) /
        kMicrosPerSecond;
    // Exponential moving average of the cadence. Silence-episode gaps (at
    // or beyond the alarm threshold) are outages, not cadence; folding them
    // in would inflate the adaptive threshold after every episode.
    const double threshold_sec =
        static_cast<double>(config_.silence_threshold) / kMicrosPerSecond;
    if (interval_sec < threshold_sec) {
      const double alpha = 0.2;
      state.mean_interval_sec =
          state.observations == 1
              ? interval_sec
              : (1.0 - alpha) * state.mean_interval_sec + alpha * interval_sec;
    }
  }
  state.last_seen = std::max(state.last_seen, report.timestamp);
  state.last_position = report.position;
  ++state.observations;
  state.alarm_raised = false;  // transmission closes any silence episode
}

std::vector<MaritimeEvent> SwitchOffDetector::Check(TimeMicros now) {
  std::vector<MaritimeEvent> events;
  for (auto& [mmsi, state] : vessels_) {
    if (state.alarm_raised || state.observations < config_.min_observations) {
      continue;
    }
    const TimeMicros adaptive = static_cast<TimeMicros>(
        config_.interval_factor * state.mean_interval_sec * kMicrosPerSecond);
    const TimeMicros threshold = std::max(config_.silence_threshold, adaptive);
    if (now - state.last_seen > threshold) {
      state.alarm_raised = true;
      MaritimeEvent event;
      event.type = EventType::kAisSwitchOff;
      event.vessel_a = mmsi;
      event.detected_at = now;
      event.event_time = state.last_seen;
      event.location = state.last_position;
      events.push_back(event);
    }
  }
  return events;
}

}  // namespace marlin

#ifndef MARLIN_EVENTS_ROUTE_DEVIATION_H_
#define MARLIN_EVENTS_ROUTE_DEVIATION_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "events/event_types.h"
#include "vrf/envclus.h"

namespace marlin {

/// Detection of deviations from common vessel traffic patterns (§4.1: the
/// fused long-term view "allows the user to ... detect possible deviations
/// from common vessel traffic patterns"): a vessel on a declared
/// origin→destination voyage raises a deviation event when its live
/// position leaves the corridor of historically travelled cells of that OD
/// pair (the EnvClus* pathway cells expanded by a tolerance ring).
class RouteDeviationDetector {
 public:
  struct Config {
    /// Corridor tolerance: pathway cells are expanded by this many rings.
    int tolerance_rings = 1;
    /// Consecutive off-corridor positions required before alerting
    /// (filters single noisy fixes).
    int confirmation_count = 3;
    /// Minimum spacing between repeated alerts for the same vessel.
    TimeMicros cooldown = 60 * kMicrosPerMinute;
  };

  /// `model` must outlive the detector.
  RouteDeviationDetector(const EnvClusModel* model, const Config& config);
  explicit RouteDeviationDetector(const EnvClusModel* model)
      : RouteDeviationDetector(model, Config()) {}

  /// Declares a vessel's voyage; builds its corridor from the model's
  /// historical pathways. NotFound when the OD pair has no history.
  Status StartVoyage(Mmsi mmsi, int origin_port, int destination_port);

  /// Ends tracking for a vessel.
  void EndVoyage(Mmsi mmsi);

  /// Checks a live position against the vessel's corridor; returns the
  /// deviation event when the corridor has been left (confirmed and not in
  /// cooldown). Vessels without a declared voyage are ignored.
  std::optional<MaritimeEvent> Observe(const AisPosition& report);

  size_t TrackedVoyages() const { return voyages_.size(); }

 private:
  struct Voyage {
    std::unordered_set<CellId> corridor;
    int consecutive_off = 0;
    TimeMicros last_alert = 0;
  };

  const EnvClusModel* model_;
  Config config_;
  int resolution_;
  std::unordered_map<Mmsi, Voyage> voyages_;
};

}  // namespace marlin

#endif  // MARLIN_EVENTS_ROUTE_DEVIATION_H_

#include "events/port_congestion.h"

#include "geo/geodesy.h"

namespace marlin {

PortCongestionMonitor::PortCongestionMonitor(const std::vector<Port>& ports,
                                             const Config& config)
    : ports_(ports), config_(config), state_(ports.size()) {}

int PortCongestionMonitor::NearestPortWithin(const LatLng& position,
                                             double radius_m) const {
  int best = -1;
  double best_distance = radius_m;
  for (size_t i = 0; i < ports_.size(); ++i) {
    const double d = ApproxDistanceMeters(ports_[i].position, position);
    if (d < best_distance) {
      best_distance = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void PortCongestionMonitor::ObservePosition(const AisPosition& report) {
  const int port = NearestPortWithin(report.position, config_.port_radius_m);
  auto previous_it = occupied_port_.find(report.mmsi);
  const int previous = previous_it == occupied_port_.end()
                           ? -1
                           : previous_it->second;
  if (previous >= 0 && previous != port) {
    state_[static_cast<size_t>(previous)].occupants.erase(report.mmsi);
  }
  if (port >= 0) {
    state_[static_cast<size_t>(port)].occupants[report.mmsi] =
        Presence{report.timestamp};
    // An in-port vessel is no longer "inbound".
    state_[static_cast<size_t>(port)].inbound.erase(report.mmsi);
    occupied_port_[report.mmsi] = port;
  } else if (previous >= 0) {
    occupied_port_.erase(report.mmsi);
  }
}

void PortCongestionMonitor::ObserveForecast(
    const ForecastTrajectory& trajectory) {
  if (trajectory.points.empty()) return;
  // Skip the present point: a vessel already in port is occupancy, not
  // inbound traffic.
  for (size_t i = 1; i < trajectory.points.size(); ++i) {
    const int port = NearestPortWithin(trajectory.points[i].position,
                                       config_.port_radius_m);
    if (port < 0) continue;
    auto occupied_it = occupied_port_.find(trajectory.mmsi);
    if (occupied_it != occupied_port_.end() && occupied_it->second == port) {
      continue;  // already there
    }
    state_[static_cast<size_t>(port)].inbound[trajectory.mmsi] =
        Presence{trajectory.points.front().time};
    return;  // first predicted port call only
  }
}

void PortCongestionMonitor::PruneState(PortState* state,
                                       TimeMicros now) const {
  const TimeMicros cutoff = now - config_.presence_ttl;
  for (auto it = state->occupants.begin(); it != state->occupants.end();) {
    it = it->second.last_seen < cutoff ? state->occupants.erase(it)
                                       : std::next(it);
  }
  for (auto it = state->inbound.begin(); it != state->inbound.end();) {
    it = it->second.last_seen < cutoff ? state->inbound.erase(it)
                                       : std::next(it);
  }
}

PortTrafficStatus PortCongestionMonitor::PortStatus(int port, TimeMicros now) {
  PortTrafficStatus status;
  if (port < 0 || port >= static_cast<int>(ports_.size())) return status;
  PortState& state = state_[static_cast<size_t>(port)];
  PruneState(&state, now);
  status.port = port;
  status.name = ports_[static_cast<size_t>(port)].name;
  status.occupancy = static_cast<int>(state.occupants.size());
  status.inbound_30min = static_cast<int>(state.inbound.size());
  status.congested =
      status.occupancy + status.inbound_30min > config_.congestion_threshold;
  return status;
}

std::vector<PortTrafficStatus> PortCongestionMonitor::Status(TimeMicros now) {
  std::vector<PortTrafficStatus> out;
  out.reserve(ports_.size());
  for (size_t i = 0; i < ports_.size(); ++i) {
    out.push_back(PortStatus(static_cast<int>(i), now));
  }
  return out;
}

}  // namespace marlin

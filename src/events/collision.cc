#include "events/collision.h"

#include <algorithm>

#include "geo/geodesy.h"

namespace marlin {

CollisionForecaster::CollisionForecaster()
    : CollisionForecaster(Config()) {}

CollisionForecaster::CollisionForecaster(const Config& config)
    : config_(config) {}

std::vector<CellId> CollisionForecaster::CoveredCells(
    const ForecastTrajectory& trajectory) const {
  std::vector<CellId> cells;
  for (const ForecastPoint& point : trajectory.points) {
    const CellId cell =
        HexGrid::LatLngToCell(point.position, config_.resolution);
    if (cell == kInvalidCellId) continue;
    for (CellId c : HexGrid::KRing(cell, 1)) cells.push_back(c);
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

namespace {

/// Linear interpolation of a forecast trajectory at absolute time `t`
/// (clamped to the trajectory's span).
LatLng SampleTrajectory(const ForecastTrajectory& trajectory, TimeMicros t) {
  const auto& points = trajectory.points;
  if (t <= points.front().time) return points.front().position;
  if (t >= points.back().time) return points.back().position;
  for (size_t i = 1; i < points.size(); ++i) {
    if (t <= points[i].time) {
      const double span =
          static_cast<double>(points[i].time - points[i - 1].time);
      const double f =
          span <= 0.0
              ? 0.0
              : static_cast<double>(t - points[i - 1].time) / span;
      LatLng out;
      out.lat_deg = points[i - 1].position.lat_deg +
                    f * (points[i].position.lat_deg -
                         points[i - 1].position.lat_deg);
      out.lon_deg = points[i - 1].position.lon_deg +
                    f * (points[i].position.lon_deg -
                         points[i - 1].position.lon_deg);
      return out;
    }
  }
  return points.back().position;
}

constexpr TimeMicros kIntersectSampleStep = 30 * kMicrosPerSecond;

}  // namespace

double MinTrajectoryDistance(const ForecastTrajectory& a,
                             const ForecastTrajectory& b,
                             TimeMicros temporal_tolerance,
                             TimeMicros* meet_time, LatLng* meet_point) {
  double best = 1e18;
  if (a.points.empty() || b.points.empty()) return best;
  const TimeMicros start =
      std::max(a.points.front().time, b.points.front().time) -
      temporal_tolerance;
  const TimeMicros end = std::min(a.points.back().time, b.points.back().time) +
                         temporal_tolerance;
  for (TimeMicros ta = start; ta <= end; ta += kIntersectSampleStep) {
    if (ta < a.points.front().time || ta > a.points.back().time) continue;
    const LatLng pa = SampleTrajectory(a, ta);
    const TimeMicros tb_min =
        std::max(ta - temporal_tolerance, b.points.front().time);
    const TimeMicros tb_max =
        std::min(ta + temporal_tolerance, b.points.back().time);
    for (TimeMicros tb = tb_min; tb <= tb_max; tb += kIntersectSampleStep) {
      const LatLng pb = SampleTrajectory(b, tb);
      const double d = ApproxDistanceMeters(pa, pb);
      if (d < best) {
        best = d;
        if (meet_time != nullptr) *meet_time = ta / 2 + tb / 2;
        if (meet_point != nullptr) {
          meet_point->lat_deg = 0.5 * (pa.lat_deg + pb.lat_deg);
          meet_point->lon_deg = 0.5 * (pa.lon_deg + pb.lon_deg);
        }
      }
    }
  }
  return best;
}

bool CollisionForecaster::Intersects(const ForecastTrajectory& a,
                                     const ForecastTrajectory& b,
                                     TimeMicros* meet_time, LatLng* meet_point,
                                     double* distance_m) const {
  // Continuous space-time intersection: resample both piecewise-linear
  // trajectories on a fine common grid; a collision course exists when the
  // vessels are within the spatial threshold at sample times closer than
  // the temporal difference threshold (which accounts for close-proximity
  // passes, §5.2). Pointwise checks at the raw 5-minute spacing would miss
  // crossings between forecast points.
  const TimeMicros start =
      std::max(a.points.front().time, b.points.front().time) -
      config_.temporal_threshold;
  const TimeMicros end =
      std::min(a.points.back().time, b.points.back().time) +
      config_.temporal_threshold;
  if (start > end) return false;  // no temporal intersection at all
  bool found = false;
  double best_distance = config_.spatial_threshold_m;
  for (TimeMicros ta = start; ta <= end; ta += kIntersectSampleStep) {
    if (ta < a.points.front().time || ta > a.points.back().time) continue;
    const LatLng pa = SampleTrajectory(a, ta);
    // The temporal threshold admits b's position within +/- threshold.
    const TimeMicros tb_min =
        std::max(ta - config_.temporal_threshold, b.points.front().time);
    const TimeMicros tb_max =
        std::min(ta + config_.temporal_threshold, b.points.back().time);
    for (TimeMicros tb = tb_min; tb <= tb_max; tb += kIntersectSampleStep) {
      const LatLng pb = SampleTrajectory(b, tb);
      const double d = ApproxDistanceMeters(pa, pb);
      if (d <= best_distance) {
        best_distance = d;
        *meet_time = ta / 2 + tb / 2;
        meet_point->lat_deg = 0.5 * (pa.lat_deg + pb.lat_deg);
        meet_point->lon_deg = 0.5 * (pa.lon_deg + pb.lon_deg);
        *distance_m = d;
        found = true;
      }
    }
  }
  return found;
}

std::vector<MaritimeEvent> CollisionForecaster::Observe(
    const ForecastTrajectory& trajectory) {
  std::vector<MaritimeEvent> events;
  if (trajectory.points.empty()) return events;
  const Mmsi mmsi = trajectory.mmsi;

  // Remove the vessel's previous cell registrations.
  if (auto it = vessel_cells_.find(mmsi); it != vessel_cells_.end()) {
    for (CellId cell : it->second) {
      auto cell_it = cell_vessels_.find(cell);
      if (cell_it != cell_vessels_.end()) {
        cell_it->second.erase(mmsi);
        if (cell_it->second.empty()) cell_vessels_.erase(cell_it);
      }
    }
  }

  // Register the new trajectory.
  std::vector<CellId> cells = CoveredCells(trajectory);
  std::unordered_set<Mmsi> candidates;
  for (CellId cell : cells) {
    auto& bucket = cell_vessels_[cell];
    for (Mmsi other : bucket) candidates.insert(other);
    bucket.insert(mmsi);
  }
  trajectories_[mmsi] = trajectory;
  vessel_cells_[mmsi] = std::move(cells);

  const TimeMicros now = trajectory.points.front().time;
  for (Mmsi other : candidates) {
    if (other == mmsi) continue;
    auto other_it = trajectories_.find(other);
    if (other_it == trajectories_.end()) continue;
    TimeMicros meet_time = 0;
    LatLng meet_point;
    double distance = 0.0;
    if (!Intersects(trajectory, other_it->second, &meet_time, &meet_point,
                    &distance)) {
      continue;
    }
    const uint64_t key = PairKey(mmsi, other);
    auto last_it = last_alert_.find(key);
    if (last_it != last_alert_.end() &&
        now - last_it->second < config_.pair_cooldown) {
      continue;
    }
    last_alert_[key] = now;
    MaritimeEvent event;
    event.type = EventType::kCollisionForecast;
    event.vessel_a = mmsi;
    event.vessel_b = other;
    event.detected_at = now;
    event.event_time = meet_time;
    event.location = meet_point;
    event.distance_m = distance;
    events.push_back(event);
  }
  return events;
}

void CollisionForecaster::Prune(TimeMicros now) {
  const TimeMicros cutoff = now - config_.retention;
  for (auto it = trajectories_.begin(); it != trajectories_.end();) {
    if (it->second.points.front().time < cutoff) {
      const Mmsi mmsi = it->first;
      if (auto cells_it = vessel_cells_.find(mmsi);
          cells_it != vessel_cells_.end()) {
        for (CellId cell : cells_it->second) {
          auto cell_it = cell_vessels_.find(cell);
          if (cell_it != cell_vessels_.end()) {
            cell_it->second.erase(mmsi);
            if (cell_it->second.empty()) cell_vessels_.erase(cell_it);
          }
        }
        vessel_cells_.erase(cells_it);
      }
      it = trajectories_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace marlin

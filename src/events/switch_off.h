#ifndef MARLIN_EVENTS_SWITCH_OFF_H_
#define MARLIN_EVENTS_SWITCH_OFF_H_

#include <unordered_map>
#include <vector>

#include "events/event_types.h"

namespace marlin {

/// Real-time detection of intentional AIS switch-off [9] (§5): a vessel
/// that had been transmitting regularly and then goes silent for longer
/// than the threshold raises an event. Regularity is established from the
/// vessel's own recent inter-transmission intervals, so satellite-coverage
/// stragglers with naturally sparse reception do not false-positive.
class SwitchOffDetector {
 public:
  struct Config {
    /// Silence longer than max(threshold, factor × typical interval) raises
    /// the event.
    TimeMicros silence_threshold = 30 * kMicrosPerMinute;
    double interval_factor = 8.0;
    /// Transmissions needed to establish a regularity baseline.
    int min_observations = 5;
  };

  SwitchOffDetector();
  explicit SwitchOffDetector(const Config& config);

  /// Ingests one position report (updates the vessel's cadence baseline,
  /// closes any open silence episode).
  void Observe(const AisPosition& report);

  /// Scans for vessels whose silence exceeded their threshold as of `now`;
  /// returns at most one event per silence episode.
  std::vector<MaritimeEvent> Check(TimeMicros now);

  size_t TrackedVessels() const { return vessels_.size(); }

 private:
  struct VesselState {
    TimeMicros last_seen = 0;
    LatLng last_position;
    double mean_interval_sec = 0.0;
    int observations = 0;
    bool alarm_raised = false;
  };

  Config config_;
  std::unordered_map<Mmsi, VesselState> vessels_;
};

}  // namespace marlin

#endif  // MARLIN_EVENTS_SWITCH_OFF_H_

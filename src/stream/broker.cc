#include "stream/broker.h"

#include <algorithm>

#include "chk/chk.h"
#include "util/hash.h"

namespace marlin {

int Broker::PartitionForKey(const std::string& key, int num_partitions) {
  if (num_partitions < 1) return 0;
  return static_cast<int>(Fnv1a(key) %
                          static_cast<uint64_t>(num_partitions));
}

Status Broker::CreateTopic(const std::string& topic, int num_partitions) {
  if (num_partitions < 1) {
    return Status::InvalidArgument("topic needs >= 1 partition");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.count(topic) > 0) {
    return Status::AlreadyExists("topic '" + topic + "' already exists");
  }
  TopicState state;
  state.partitions.reserve(num_partitions);
  for (int i = 0; i < num_partitions; ++i) {
    state.partitions.push_back(std::make_unique<Partition>());
  }
  if (storage_ != nullptr) {
    // Durable mode: open (or recover) every partition's backing log and
    // replay the recovered records into the in-memory log, preserving the
    // offsets they were appended with.
    for (int p = 0; p < num_partitions; ++p) {
      StatusOr<std::vector<storage::LogRecord>> recovered =
          storage_->OpenPartition(topic, p);
      if (!recovered.ok()) return recovered.status();
      Partition* partition = state.partitions[static_cast<size_t>(p)].get();
      for (storage::LogRecord& durable : *recovered) {
        Record record;
        record.key = std::move(durable.key);
        record.value = std::move(durable.value);
        record.partition = p;
        record.offset = durable.offset;
        record.timestamp = durable.timestamp;
        if (record.offset !=
            static_cast<int64_t>(partition->log.size())) {
          return Status::Internal(
              "recovered log for " + topic + "/" + std::to_string(p) +
              " is not dense at offset " + std::to_string(record.offset));
        }
        partition->log.push_back(std::move(record));
      }
    }
  }
  state.append_counter = metrics_->GetCounter(
      "marlin_broker_append_records_total", "Records appended per topic",
      {{"topic", topic}});
  topics_.emplace(topic, std::move(state));
  return Status::Ok();
}

bool Broker::HasTopic(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  return topics_.count(topic) > 0;
}

int Broker::NumPartitions(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? 0
                             : static_cast<int>(it->second.partitions.size());
}

const Broker::TopicState* Broker::FindTopic(const std::string& topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : &it->second;
}

StatusOr<Record> Broker::Append(const std::string& topic, std::string key,
                                std::string value, TimeMicros timestamp) {
  Partition* partition = nullptr;
  obs::Counter* append_counter = nullptr;
  int partition_index = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const TopicState* state = FindTopic(topic);
    if (state == nullptr) {
      return Status::NotFound("topic '" + topic + "' not found");
    }
    partition_index =
        PartitionForKey(key, static_cast<int>(state->partitions.size()));
    partition = state->partitions[partition_index].get();
    append_counter = state->append_counter;
  }
  Record record;
  record.key = std::move(key);
  record.value = std::move(value);
  record.partition = partition_index;
  record.timestamp = timestamp;
  {
    std::lock_guard<std::mutex> lock(partition->mu);
    record.offset = static_cast<int64_t>(partition->log.size());
    MARLIN_CHK_INVARIANT(
        partition->log.empty() ||
            partition->log.back().offset == record.offset - 1,
        "partition log offsets must be dense and monotonic");
    if (storage_ != nullptr) {
      // Write-through under the partition lock so the durable order equals
      // the in-memory order; a storage failure rejects the append entirely
      // (the producer retries), keeping the two logs identical.
      storage::LogRecord durable;
      durable.offset = record.offset;
      durable.timestamp = record.timestamp;
      durable.key = record.key;
      durable.value = record.value;
      Status status = storage_->Append(topic, partition_index, durable);
      if (!status.ok()) return status;
    }
    partition->log.push_back(record);
  }
  append_counter->Increment();
  return record;
}

StatusOr<std::vector<Record>> Broker::Read(const std::string& topic,
                                           int partition_index, int64_t offset,
                                           int max_records) const {
  Partition* partition = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const TopicState* state = FindTopic(topic);
    if (state == nullptr) {
      return Status::NotFound("topic '" + topic + "' not found");
    }
    if (partition_index < 0 ||
        partition_index >= static_cast<int>(state->partitions.size())) {
      return Status::OutOfRange("partition out of range");
    }
    partition = state->partitions[partition_index].get();
  }
  std::vector<Record> out;
  std::lock_guard<std::mutex> lock(partition->mu);
  const int64_t end = static_cast<int64_t>(partition->log.size());
  for (int64_t i = std::max<int64_t>(0, offset);
       i < end && static_cast<int>(out.size()) < max_records; ++i) {
    out.push_back(partition->log[static_cast<size_t>(i)]);
  }
  return out;
}

StatusOr<int64_t> Broker::EndOffset(const std::string& topic,
                                    int partition_index) const {
  Partition* partition = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const TopicState* state = FindTopic(topic);
    if (state == nullptr) {
      return Status::NotFound("topic '" + topic + "' not found");
    }
    if (partition_index < 0 ||
        partition_index >= static_cast<int>(state->partitions.size())) {
      return Status::OutOfRange("partition out of range");
    }
    partition = state->partitions[partition_index].get();
  }
  std::lock_guard<std::mutex> lock(partition->mu);
  return static_cast<int64_t>(partition->log.size());
}

int64_t Broker::CommittedOffset(const std::string& group,
                                const std::string& topic,
                                int partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto group_it = offsets_.find(group);
  if (group_it == offsets_.end()) return 0;
  auto topic_it = group_it->second.find(topic);
  if (topic_it == group_it->second.end()) return 0;
  if (partition < 0 || partition >= static_cast<int>(topic_it->second.size())) {
    return 0;
  }
  return topic_it->second[partition];
}

void Broker::CommitOffset(const std::string& group, const std::string& topic,
                          int partition, int64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  const TopicState* state = FindTopic(topic);
  if (state == nullptr || partition < 0 ||
      partition >= static_cast<int>(state->partitions.size())) {
    return;
  }
  auto& per_topic = offsets_[group][topic];
  if (per_topic.size() < state->partitions.size()) {
    per_topic.resize(state->partitions.size(), 0);
  }
#if defined(MARLIN_CHECKED) && MARLIN_CHECKED
  // Commits beyond the current log end are documented as harmless (the
  // consumer simply waits for the log to catch up), but a commit that goes
  // negative or moves a group's position backwards means the consumer's
  // bookkeeping diverged from its poll order.
  MARLIN_CHK_INVARIANT(
      offset >= 0 && offset >= per_topic[partition],
      "committed offset regressed or negative for topic '" + topic + "'");
#endif
  per_topic[partition] = offset;
  if (storage_ != nullptr) {
    // Offset persistence is best-effort at commit time: a failed write
    // surfaces on the next restart as a smaller committed offset, which
    // at-least-once consumption re-covers.
    (void)storage_->CommitOffset(group, topic, partition, offset);
  }
}

Status Broker::Flush() {
  if (storage_ == nullptr) return Status::Ok();
  return storage_->Flush();
}

int64_t Broker::TopicSize(const std::string& topic) const {
  std::vector<Partition*> partitions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const TopicState* state = FindTopic(topic);
    if (state == nullptr) return 0;
    for (const auto& p : state->partitions) partitions.push_back(p.get());
  }
  int64_t total = 0;
  for (Partition* p : partitions) {
    std::lock_guard<std::mutex> lock(p->mu);
    total += static_cast<int64_t>(p->log.size());
  }
  return total;
}

Consumer::Consumer(Broker* broker, std::string group, std::string topic)
    : broker_(broker), group_(std::move(group)), topic_(std::move(topic)) {
  obs::MetricsRegistry* registry = broker_->metrics_registry();
  const obs::Labels labels = {{"group", group_}, {"topic", topic_}};
  polled_records_ = registry->GetCounter("marlin_broker_poll_records_total",
                                         "Records polled per consumer group",
                                         labels);
  commits_ = registry->GetCounter("marlin_broker_commits_total",
                                  "Offset commits per consumer group", labels);
  lag_gauge_ = registry->GetGauge(
      "marlin_consumer_lag",
      "Records remaining (end minus position) per consumer group", labels);
  SyncPartitions();
}

void Consumer::SyncPartitions() {
  const int n = broker_->NumPartitions(topic_);
  if (static_cast<int>(positions_.size()) >= n) return;
  const size_t old_size = positions_.size();
  positions_.resize(static_cast<size_t>(n));
  for (size_t p = old_size; p < positions_.size(); ++p) {
    positions_[p] =
        broker_->CommittedOffset(group_, topic_, static_cast<int>(p));
  }
}

void Consumer::SetAssignment(std::vector<int> partitions) {
  std::sort(partitions.begin(), partitions.end());
  partitions.erase(std::unique(partitions.begin(), partitions.end()),
                   partitions.end());
  // Re-seed the in-memory position of every partition *entering* the
  // assignment from the group's committed offset: while the partition was
  // assigned elsewhere, another consumer advanced and committed it, so the
  // position held here is stale — resuming from it would re-deliver (or,
  // after this consumer restarts, skip) records. Partitions the consumer
  // already held keep their live positions. An empty previous assignment
  // means "all partitions", so nothing was ever given away and no position
  // is stale.
  if (!assignment_.empty()) {
    auto held = [this](int p) {
      return std::binary_search(assignment_.begin(), assignment_.end(), p);
    };
    auto reseed = [this](int p) {
      if (p >= 0 && p < static_cast<int>(positions_.size())) {
        positions_[static_cast<size_t>(p)] =
            broker_->CommittedOffset(group_, topic_, p);
      }
    };
    if (partitions.empty()) {
      // Expanding back to "all": partitions outside the old slice re-enter.
      for (int p = 0; p < static_cast<int>(positions_.size()); ++p) {
        if (!held(p)) reseed(p);
      }
    } else {
      for (const int p : partitions) {
        if (!held(p)) reseed(p);
      }
    }
  }
  assignment_ = std::move(partitions);
  next_partition_ = 0;
}

std::vector<Record> Consumer::Poll(int max_records) {
  SyncPartitions();
  std::vector<Record> out;
  const int total = static_cast<int>(positions_.size());
  // Round-robin over the assigned partitions (all of them by default).
  const int n = assignment_.empty() ? total
                                    : static_cast<int>(assignment_.size());
  if (n == 0) return out;
  for (int scanned = 0; scanned < n && static_cast<int>(out.size()) < max_records;
       ++scanned) {
    const int slot = next_partition_;
    next_partition_ = (next_partition_ + 1) % n;
    const int p = assignment_.empty() ? slot : assignment_[slot];
    if (p < 0 || p >= total) continue;  // assigned partition not created yet
    const int budget = max_records - static_cast<int>(out.size());
    StatusOr<std::vector<Record>> batch =
        broker_->Read(topic_, p, positions_[p], budget);
    if (!batch.ok()) continue;
    for (Record& r : *batch) {
      MARLIN_CHK_INVARIANT(r.offset + 1 > positions_[p],
                           "poll must advance the partition position "
                           "monotonically (no re-delivery)");
      positions_[p] = r.offset + 1;
      out.push_back(std::move(r));
    }
  }
  if (!out.empty()) polled_records_->Increment(out.size());
  return out;
}

void Consumer::Commit() {
  for (size_t p = 0; p < positions_.size(); ++p) {
    if (!assignment_.empty() &&
        !std::binary_search(assignment_.begin(), assignment_.end(),
                            static_cast<int>(p))) {
      continue;  // another node's partition; don't clobber its offsets
    }
    broker_->CommitOffset(group_, topic_, static_cast<int>(p), positions_[p]);
  }
  commits_->Increment();
  lag_gauge_->Set(Lag());
}

int64_t Consumer::Lag() const {
  // Covers partitions that appeared after construction without mutating
  // state: positions beyond our snapshot fall back to committed offsets.
  const int n = broker_->NumPartitions(topic_);
  int64_t lag = 0;
  for (int p = 0; p < n; ++p) {
    if (!assignment_.empty() &&
        !std::binary_search(assignment_.begin(), assignment_.end(), p)) {
      continue;
    }
    const int64_t position =
        p < static_cast<int>(positions_.size())
            ? positions_[p]
            : broker_->CommittedOffset(group_, topic_, p);
    StatusOr<int64_t> end = broker_->EndOffset(topic_, p);
    if (end.ok()) lag += std::max<int64_t>(0, *end - position);
  }
  lag_gauge_->Set(lag);
  return lag;
}

}  // namespace marlin

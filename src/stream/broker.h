#ifndef MARLIN_STREAM_BROKER_H_
#define MARLIN_STREAM_BROKER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/log_storage.h"
#include "util/clock.h"
#include "util/status.h"

namespace marlin {

/// One record in a partitioned log: an opaque key/value pair with the offset
/// assigned at append time. AIS ingestion keys records by MMSI so that a
/// vessel's messages stay ordered within one partition.
struct Record {
  std::string key;
  std::string value;
  int32_t partition = 0;
  int64_t offset = -1;
  TimeMicros timestamp = 0;
};

/// In-process, log-structured message broker — Marlin's substitute for the
/// Kafka connections of the paper's ingestion services [11].
///
/// Topics are split into partitions; each partition is an append-only
/// ordered log. Producers append by key (hash-partitioned); consumer groups
/// track committed offsets per partition and poll records in order. All
/// operations are thread-safe.
///
/// Durability is a seam, not a mode switch: pass a storage::LogStorage and
/// every append and offset commit is written through to it, while
/// CreateTopic recovers whatever the storage already holds — so a broker
/// restarted over the same directory resumes with its partitions and
/// committed offsets intact. With the default null storage the broker is
/// the original pure in-memory stand-in.
class Broker {
 public:
  /// `metrics` is the registry append/poll/lag metrics report into (null =
  /// process global). `storage` (optional, unowned, must outlive the
  /// broker) makes the broker durable; committed offsets persisted by a
  /// previous incarnation are recovered here, record logs on CreateTopic.
  explicit Broker(obs::MetricsRegistry* metrics = nullptr,
                  storage::LogStorage* storage = nullptr)
      : metrics_(obs::MetricsRegistry::OrGlobal(metrics)), storage_(storage) {
    if (storage_ != nullptr) offsets_ = storage_->RecoveredOffsets();
  }

  /// The registry this broker (and its consumers) report into.
  obs::MetricsRegistry* metrics_registry() const { return metrics_; }

  /// Creates a topic with `num_partitions` partitions (>= 1).
  Status CreateTopic(const std::string& topic, int num_partitions);

  /// True if the topic exists.
  bool HasTopic(const std::string& topic) const;

  /// Number of partitions of a topic, or 0 if absent.
  int NumPartitions(const std::string& topic) const;

  /// The partitioner: FNV-1a(key) % num_partitions. Stable across
  /// processes and platforms (unlike std::hash), and identical to the
  /// cluster layer's key→shard mapping (HashRing::ShardForKey), so with
  /// num_partitions == num_shards a record's partition equals its entity's
  /// shard — the property shard-aligned consumer assignment relies on.
  static int PartitionForKey(const std::string& key, int num_partitions);

  /// Appends a record; the partition is chosen by hashing `key`. Returns
  /// the assigned (partition, offset).
  StatusOr<Record> Append(const std::string& topic, std::string key,
                          std::string value, TimeMicros timestamp);

  /// Reads up to `max_records` records from one partition starting at
  /// `offset` (inclusive).
  StatusOr<std::vector<Record>> Read(const std::string& topic, int partition,
                                     int64_t offset, int max_records) const;

  /// Log end offset (next offset to be assigned) of a partition.
  StatusOr<int64_t> EndOffset(const std::string& topic, int partition) const;

  /// Committed offset of a consumer group on a partition (0 if never
  /// committed).
  int64_t CommittedOffset(const std::string& group, const std::string& topic,
                          int partition) const;

  /// Commits `offset` (the next offset to consume) for a group/partition.
  void CommitOffset(const std::string& group, const std::string& topic,
                    int partition, int64_t offset);

  /// Total records across all partitions of a topic.
  int64_t TopicSize(const std::string& topic) const;

  /// fsyncs outstanding appends and offset commits to the storage seam.
  /// No-op (Ok) for the in-memory broker.
  Status Flush();

  /// True when a LogStorage seam is attached.
  bool durable() const { return storage_ != nullptr; }

 private:
  struct Partition {
    mutable std::mutex mu;
    std::vector<Record> log;
  };
  struct TopicState {
    std::vector<std::unique_ptr<Partition>> partitions;
    obs::Counter* append_counter = nullptr;  // cached per-topic family member
  };

  const TopicState* FindTopic(const std::string& topic) const;

  obs::MetricsRegistry* metrics_;
  storage::LogStorage* storage_;  // null = in-memory only
  mutable std::mutex mu_;  // guards topology & offsets, not partition logs
  std::unordered_map<std::string, TopicState> topics_;
  // group -> topic -> partition -> committed offset
  std::unordered_map<std::string, std::unordered_map<std::string, std::vector<int64_t>>>
      offsets_;
};

/// Convenience producer bound to one topic.
class Producer {
 public:
  Producer(Broker* broker, std::string topic)
      : broker_(broker), topic_(std::move(topic)) {}

  StatusOr<Record> Send(std::string key, std::string value,
                        TimeMicros timestamp) {
    return broker_->Append(topic_, std::move(key), std::move(value),
                           timestamp);
  }

 private:
  Broker* broker_;
  std::string topic_;
};

/// Offset-tracking consumer bound to one (group, topic). Polls all
/// partitions round-robin from its positions; `Commit` persists positions
/// back to the broker so a re-created consumer resumes where the group left
/// off. A consumer may be created before its topic exists: the partition
/// count is re-synced lazily on each Poll()/Lag().
class Consumer {
 public:
  Consumer(Broker* broker, std::string group, std::string topic);

  /// Restricts this consumer to `partitions` (sorted, deduplicated). An
  /// empty list restores the default "all partitions" behaviour. Poll,
  /// Commit and Lag then only touch the assigned partitions — this is how
  /// a cluster node consumes exactly the partitions of the shards it owns
  /// (HashRing::ShardsOwnedBy with num_partitions == num_shards).
  ///
  /// Partitions entering the assignment resume from the group's committed
  /// offset, not from this consumer's (stale) in-memory position — the
  /// rebalance-resync rule that keeps a partition's consumption continuous
  /// when ownership moves between nodes and back.
  void SetAssignment(std::vector<int> partitions);

  /// Current assignment (empty = all partitions).
  const std::vector<int>& assignment() const { return assignment_; }

  /// Returns up to `max_records` records in partition order, advancing the
  /// in-memory positions.
  std::vector<Record> Poll(int max_records);

  /// Persists current positions to the broker.
  void Commit();

  /// Records remaining across assigned partitions (end minus positions).
  int64_t Lag() const;

 private:
  /// Picks up partitions that appeared after construction (topic created
  /// late), seeding their positions from the group's committed offsets.
  void SyncPartitions();

  Broker* broker_;
  std::string group_;
  std::string topic_;
  std::vector<int64_t> positions_;
  std::vector<int> assignment_;  // sorted; empty = all partitions
  int next_partition_ = 0;       // index into assignment_ when non-empty
  obs::Counter* polled_records_;  // marlin_broker_poll_records_total
  obs::Counter* commits_;        // marlin_broker_commits_total
  obs::Gauge* lag_gauge_;        // marlin_consumer_lag
};

}  // namespace marlin

#endif  // MARLIN_STREAM_BROKER_H_

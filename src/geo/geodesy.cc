#include "geo/geodesy.h"

#include <algorithm>

namespace marlin {

double HaversineMeters(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h =
      sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double ApproxDistanceMeters(const LatLng& a, const LatLng& b) {
  const double mean_lat = 0.5 * (a.lat_deg + b.lat_deg) * kDegToRad;
  const double dx =
      (b.lon_deg - a.lon_deg) * kDegToRad * std::cos(mean_lat);
  const double dy = (b.lat_deg - a.lat_deg) * kDegToRad;
  return kEarthRadiusMeters * std::sqrt(dx * dx + dy * dy);
}

double InitialBearingDeg(const LatLng& from, const LatLng& to) {
  const double lat1 = from.lat_deg * kDegToRad;
  const double lat2 = to.lat_deg * kDegToRad;
  const double dlon = (to.lon_deg - from.lon_deg) * kDegToRad;
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double bearing = std::atan2(y, x) * kRadToDeg;
  if (bearing < 0.0) bearing += 360.0;
  return bearing;
}

LatLng DestinationPoint(const LatLng& origin, double bearing_deg,
                        double distance_m) {
  const double delta = distance_m / kEarthRadiusMeters;
  const double theta = bearing_deg * kDegToRad;
  const double lat1 = origin.lat_deg * kDegToRad;
  const double lon1 = origin.lon_deg * kDegToRad;
  const double sin_lat2 = std::sin(lat1) * std::cos(delta) +
                          std::cos(lat1) * std::sin(delta) * std::cos(theta);
  const double lat2 = std::asin(std::clamp(sin_lat2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(lat1);
  const double x = std::cos(delta) - std::sin(lat1) * sin_lat2;
  const double lon2 = lon1 + std::atan2(y, x);
  LatLng out;
  out.lat_deg = lat2 * kRadToDeg;
  out.lon_deg = WrapLongitude(lon2 * kRadToDeg);
  return out;
}

double WrapLongitude(double lon_deg) {
  double lon = std::fmod(lon_deg + 180.0, 360.0);
  if (lon < 0.0) lon += 360.0;
  return lon - 180.0;
}

double ClampLatitude(double lat_deg) {
  return std::clamp(lat_deg, -90.0, 90.0);
}

void DegreesToMeters(double dlat_deg, double dlon_deg, double at_lat_deg,
                     double* north_m, double* east_m) {
  *north_m = dlat_deg * kDegToRad * kEarthRadiusMeters;
  *east_m = dlon_deg * kDegToRad * kEarthRadiusMeters *
            std::cos(at_lat_deg * kDegToRad);
}

void MetersToDegrees(double north_m, double east_m, double at_lat_deg,
                     double* dlat_deg, double* dlon_deg) {
  *dlat_deg = (north_m / kEarthRadiusMeters) * kRadToDeg;
  const double cos_lat = std::cos(at_lat_deg * kDegToRad);
  *dlon_deg =
      (east_m / (kEarthRadiusMeters * (cos_lat < 1e-9 ? 1e-9 : cos_lat))) *
      kRadToDeg;
}

}  // namespace marlin

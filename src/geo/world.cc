#include "geo/world.h"

#include <algorithm>
#include <cmath>

namespace marlin {
namespace {

/// Major world ports anchoring the global lane network. Positions are
/// approximate harbour coordinates; precision is irrelevant to the
/// experiments (the network only shapes plausible traffic).
const struct {
  const char* name;
  double lat;
  double lon;
} kGlobalPorts[] = {
    {"Rotterdam", 51.95, 4.05},       {"Antwerp", 51.30, 4.30},
    {"Hamburg", 53.55, 9.93},         {"Felixstowe", 51.95, 1.35},
    {"Algeciras", 36.13, -5.43},      {"Valencia", 39.45, -0.32},
    {"Marseille", 43.30, 5.35},       {"Genoa", 44.40, 8.92},
    {"Piraeus", 37.94, 23.62},        {"Istanbul", 41.00, 28.95},
    {"Constanta", 44.17, 28.65},      {"Port Said", 31.25, 32.30},
    {"Jeddah", 21.48, 39.17},         {"Dubai", 25.27, 55.30},
    {"Mumbai", 18.95, 72.85},         {"Colombo", 6.95, 79.85},
    {"Singapore", 1.26, 103.84},      {"Port Klang", 3.00, 101.40},
    {"Jakarta", -6.10, 106.88},       {"Hong Kong", 22.30, 114.17},
    {"Shenzhen", 22.50, 114.05},      {"Shanghai", 31.23, 121.49},
    {"Ningbo", 29.87, 121.55},        {"Qingdao", 36.07, 120.38},
    {"Busan", 35.10, 129.04},         {"Tokyo", 35.60, 139.80},
    {"Sydney", -33.85, 151.20},       {"Auckland", -36.84, 174.77},
    {"Los Angeles", 33.73, -118.26},  {"Oakland", 37.80, -122.30},
    {"Vancouver", 49.29, -123.11},    {"Panama", 8.95, -79.57},
    {"Houston", 29.73, -95.02},       {"New York", 40.67, -74.04},
    {"Savannah", 32.03, -80.90},      {"Santos", -23.98, -46.30},
    {"Buenos Aires", -34.60, -58.37}, {"Cape Town", -33.91, 18.43},
    {"Lagos", 6.43, 3.40},            {"Durban", -29.87, 31.02},
};

constexpr int kWaypointSpacingKm = 25;

}  // namespace

World World::GlobalWorld(uint64_t seed) {
  World world;
  Rng rng(seed);
  for (const auto& p : kGlobalPorts) {
    world.ports_.push_back(Port{p.name, LatLng{p.lat, p.lon}});
  }
  const int n = static_cast<int>(world.ports_.size());
  // Connect each port to its 4 nearest neighbours plus 2 random long-haul
  // links, giving a connected, realistic-degree network.
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<double, int>> by_distance;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      by_distance.emplace_back(
          HaversineMeters(world.ports_[i].position, world.ports_[j].position),
          j);
    }
    std::sort(by_distance.begin(), by_distance.end());
    for (int k = 0; k < 4 && k < static_cast<int>(by_distance.size()); ++k) {
      world.Connect(i, by_distance[k].second, &rng);
    }
    for (int k = 0; k < 2; ++k) {
      world.Connect(i, static_cast<int>(rng.UniformInt(
                           static_cast<uint64_t>(n))),
                    &rng);
    }
  }
  return world;
}

World World::RegionalWorld(const BoundingBox& box, int num_ports,
                           uint64_t seed) {
  World world;
  Rng rng(seed);
  for (int i = 0; i < num_ports; ++i) {
    Port port;
    port.name = "port-" + std::to_string(i);
    port.position.lat_deg = rng.Uniform(box.min_lat, box.max_lat);
    port.position.lon_deg = rng.Uniform(box.min_lon, box.max_lon);
    world.ports_.push_back(port);
  }
  // Dense-ish connectivity for small regional networks.
  for (int i = 0; i < num_ports; ++i) {
    for (int j = i + 1; j < num_ports; ++j) {
      if (rng.Bernoulli(std::min(1.0, 6.0 / num_ports))) {
        world.Connect(i, j, &rng);
        world.Connect(j, i, &rng);
      }
    }
  }
  // Guarantee every port has at least one outgoing lane.
  for (int i = 0; i < num_ports; ++i) {
    if (world.LanesFrom(i).empty()) {
      int other = (i + 1) % num_ports;
      world.Connect(i, other, &rng);
      world.Connect(other, i, &rng);
    }
  }
  return world;
}

void World::Connect(int a, int b, Rng* rng) {
  if (a == b) return;
  for (const Lane& lane : lanes_) {
    if (lane.from_port == a && lane.to_port == b) return;  // already linked
  }
  Lane lane;
  lane.from_port = a;
  lane.to_port = b;
  const LatLng& from = ports_[a].position;
  const LatLng& to = ports_[b].position;
  const double total = HaversineMeters(from, to);
  lane.length_m = total;
  const int segments =
      std::max(2, static_cast<int>(total / (kWaypointSpacingKm * 1000.0)));
  // Deterministic per-lane wiggle amplitude (up to ~3 km) so opposing and
  // parallel lanes do not overlap exactly.
  const double wiggle = rng->Uniform(500.0, 3000.0);
  const double phase = rng->Uniform(0.0, 2.0 * kPi);
  lane.waypoints.push_back(from);
  for (int s = 1; s < segments; ++s) {
    const double f = static_cast<double>(s) / segments;
    // Interpolate along the great circle by distance+bearing steps.
    const double bearing = InitialBearingDeg(from, to);
    LatLng base = DestinationPoint(from, bearing, total * f);
    // Cross-track sinusoidal offset.
    const double offset = wiggle * std::sin(2.0 * kPi * f + phase) *
                          std::sin(kPi * f);  // pinned at both ends
    base = DestinationPoint(base, bearing + 90.0, offset);
    lane.waypoints.push_back(base);
  }
  lane.waypoints.push_back(to);
  lanes_.push_back(std::move(lane));
}

std::vector<int> World::LanesFrom(int port) const {
  std::vector<int> out;
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].from_port == port) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace marlin

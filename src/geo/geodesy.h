#ifndef MARLIN_GEO_GEODESY_H_
#define MARLIN_GEO_GEODESY_H_

#include <cmath>

namespace marlin {

/// Mean Earth radius (meters), WGS84 authalic sphere.
constexpr double kEarthRadiusMeters = 6371008.8;
constexpr double kPi = 3.14159265358979323846;
constexpr double kDegToRad = kPi / 180.0;
constexpr double kRadToDeg = 180.0 / kPi;
/// 1 knot in meters/second.
constexpr double kKnotsToMps = 0.514444;

/// A WGS84 position in decimal degrees. Longitude in [-180, 180),
/// latitude in [-90, 90].
struct LatLng {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  bool operator==(const LatLng& other) const {
    return lat_deg == other.lat_deg && lon_deg == other.lon_deg;
  }
};

/// Geographic bounding box (min/max corner). Handles boxes that do not cross
/// the antimeridian (all evaluation regions in the paper are within one
/// hemisphere span).
struct BoundingBox {
  double min_lat = -90.0;
  double min_lon = -180.0;
  double max_lat = 90.0;
  double max_lon = 180.0;

  bool Contains(const LatLng& p) const {
    return p.lat_deg >= min_lat && p.lat_deg <= max_lat &&
           p.lon_deg >= min_lon && p.lon_deg <= max_lon;
  }
};

/// Great-circle distance between two points, in meters (haversine formula).
double HaversineMeters(const LatLng& a, const LatLng& b);

/// Fast equirectangular approximation of the distance in meters; accurate to
/// well under 1% for separations below ~100 km, which covers every
/// per-message computation in the pipeline (forecast horizons of 30 minutes
/// at vessel speeds reach ~30 km).
double ApproxDistanceMeters(const LatLng& a, const LatLng& b);

/// Initial great-circle bearing from `from` to `to`, degrees in [0, 360).
double InitialBearingDeg(const LatLng& from, const LatLng& to);

/// Destination point after travelling `distance_m` meters from `origin` on
/// the great circle with initial bearing `bearing_deg`.
LatLng DestinationPoint(const LatLng& origin, double bearing_deg,
                        double distance_m);

/// Wraps a longitude into [-180, 180).
double WrapLongitude(double lon_deg);

/// Clamps a latitude into [-90, 90].
double ClampLatitude(double lat_deg);

/// Converts a (Δlat, Δlon) degree displacement at latitude `at_lat_deg` into
/// meters (north, east). The inverse of `MetersToDegrees`.
void DegreesToMeters(double dlat_deg, double dlon_deg, double at_lat_deg,
                     double* north_m, double* east_m);

/// Converts a (north, east) meter displacement at latitude `at_lat_deg` into
/// (Δlat, Δlon) degrees.
void MetersToDegrees(double north_m, double east_m, double at_lat_deg,
                     double* dlat_deg, double* dlon_deg);

/// Local tangent-plane projection anchored at a reference point: maps
/// lat/lon to local (east, north) meters via the equirectangular
/// approximation. Suitable for the regional computations in the collision
/// and proximity detectors.
class LocalProjection {
 public:
  explicit LocalProjection(const LatLng& origin)
      : origin_(origin), cos_lat_(std::cos(origin.lat_deg * kDegToRad)) {}

  /// Projects to local meters (x = east, y = north).
  void Forward(const LatLng& p, double* x_m, double* y_m) const {
    *x_m = (p.lon_deg - origin_.lon_deg) * kDegToRad * kEarthRadiusMeters *
           cos_lat_;
    *y_m = (p.lat_deg - origin_.lat_deg) * kDegToRad * kEarthRadiusMeters;
  }

  /// Unprojects local meters back to lat/lon.
  LatLng Inverse(double x_m, double y_m) const {
    LatLng out;
    out.lat_deg = origin_.lat_deg + (y_m / kEarthRadiusMeters) * kRadToDeg;
    out.lon_deg =
        origin_.lon_deg +
        (x_m / (kEarthRadiusMeters * cos_lat_)) * kRadToDeg;
    return out;
  }

  const LatLng& origin() const { return origin_; }

 private:
  LatLng origin_;
  double cos_lat_;
};

}  // namespace marlin

#endif  // MARLIN_GEO_GEODESY_H_

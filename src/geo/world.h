#ifndef MARLIN_GEO_WORLD_H_
#define MARLIN_GEO_WORLD_H_

#include <string>
#include <vector>

#include "geo/geodesy.h"
#include "util/rng.h"

namespace marlin {

/// A port: a named anchor point of the shipping-lane network.
struct Port {
  std::string name;
  LatLng position;
};

/// A directed shipping lane between two ports, discretised into waypoints
/// along the great circle (with deterministic cross-track wiggle so parallel
/// lanes do not coincide).
struct Lane {
  int from_port = 0;
  int to_port = 0;
  std::vector<LatLng> waypoints;
  double length_m = 0.0;
};

/// The static world the fleet simulator moves vessels through: a set of
/// ports connected by great-circle shipping lanes. Stands in for the
/// real-world route network implied by the paper's global AIS feed.
///
/// Two construction modes:
///  - `GlobalWorld()` — 40 major real-world ports with a dense lane network,
///    used for the Figure-6 scalability experiment.
///  - `RegionalWorld(bbox, ports, seed)` — synthetic ports inside a bounding
///    box (e.g. the Aegean for Table 2, the paper's European box for
///    Table 1).
class World {
 public:
  /// Builds the global port/lane network.
  static World GlobalWorld(uint64_t seed = 7);

  /// Builds a synthetic regional network of `num_ports` ports within `box`.
  static World RegionalWorld(const BoundingBox& box, int num_ports,
                             uint64_t seed);

  const std::vector<Port>& ports() const { return ports_; }
  const std::vector<Lane>& lanes() const { return lanes_; }

  /// Lanes departing from `port`.
  std::vector<int> LanesFrom(int port) const;

  /// A uniformly random lane index.
  int RandomLane(Rng* rng) const {
    return static_cast<int>(rng->UniformInt(lanes_.size()));
  }

 private:
  /// Adds the two directed lanes between ports a and b.
  void Connect(int a, int b, Rng* rng);

  std::vector<Port> ports_;
  std::vector<Lane> lanes_;
};

}  // namespace marlin

#endif  // MARLIN_GEO_WORLD_H_

#include "core/pipeline.h"

#include <thread>

#include "ais/codec.h"
#include "core/actors.h"
#include "util/logging.h"
#include "vrf/inference_batcher.h"

namespace marlin {

MaritimePipeline::MaritimePipeline(
    std::shared_ptr<const RouteForecaster> forecaster,
    const PipelineConfig& config)
    : config_(config),
      forecaster_(std::move(forecaster)),
      metrics_(obs::MetricsRegistry::OrGlobal(config.metrics)),
      store_(nullptr, 16, metrics_),
      broker_(metrics_) {
  MARLIN_CHECK(forecaster_ != nullptr);
  if (config_.actor_system.metrics == nullptr) {
    config_.actor_system.metrics = metrics_;
  }
}

MaritimePipeline::~MaritimePipeline() { Stop(); }

Status MaritimePipeline::Start() {
  if (started_) return Status::FailedPrecondition("pipeline already started");
  started_ = true;
  system_ = std::make_unique<ActorSystem>(config_.actor_system);
  context_ = std::make_unique<PipelineContext>();
  context_->config = &config_;
  context_->forecaster = forecaster_.get();
  context_->registry = registry_;
  context_->store = &store_;
  context_->broker = &broker_;
  context_->latency = &latency_;
  context_->latency_clock = config_.latency_clock;
  context_->system = system_.get();
  if (config_.batched_inference) {
    InferenceBatcher::Options batcher_options;
    batcher_options.max_batch = std::max(1, config_.inference_batch_size);
    batcher_options.flush_deadline_micros = config_.inference_flush_micros;
    batcher_options.background_flusher = config_.inference_background_flusher;
    batcher_options.metrics = metrics_;
    batcher_ =
        std::make_unique<InferenceBatcher>(forecaster_.get(), batcher_options);
    context_->batcher = batcher_.get();
  }
  const std::string stage_name = "marlin_pipeline_stage_nanos";
  const std::string stage_help = "Per-stage pipeline latency in nanoseconds";
  context_->stage_ingest =
      metrics_->GetHistogram(stage_name, stage_help, {{"stage", "ingest"}});
  context_->stage_position =
      metrics_->GetHistogram(stage_name, stage_help, {{"stage", "position"}});
  context_->stage_forecast =
      metrics_->GetHistogram(stage_name, stage_help, {{"stage", "forecast"}});
  context_->stage_write =
      metrics_->GetHistogram(stage_name, stage_help, {{"stage", "write"}});

  const int writers = std::max(1, config_.num_writer_actors);
  for (int i = 0; i < writers; ++i) {
    MARLIN_ASSIGN_OR_RETURN(
        ActorRef writer,
        system_->SpawnActor<WriterActor>("writer-" + std::to_string(i),
                                         context_.get(), i));
    context_->writers.push_back(writer);
  }
  if (config_.enable_vtff) {
    MARLIN_ASSIGN_OR_RETURN(
        context_->traffic,
        system_->SpawnActor<TrafficActor>("traffic", context_.get()));
  }
  if (!config_.monitored_ports.empty()) {
    MARLIN_ASSIGN_OR_RETURN(
        context_->ports,
        system_->SpawnActor<PortsActor>("ports", context_.get()));
  }
  if (config_.enable_switch_off_detection) {
    MARLIN_ASSIGN_OR_RETURN(
        context_->surveillance,
        system_->SpawnActor<SurveillanceActor>("surveillance",
                                               context_.get()));
  }
  MARLIN_RETURN_IF_ERROR(
      broker_.CreateTopic(config_.topic, config_.topic_partitions));
  if (config_.publish_output_topics) {
    MARLIN_RETURN_IF_ERROR(
        broker_.CreateTopic(config_.events_topic, config_.topic_partitions));
    MARLIN_RETURN_IF_ERROR(broker_.CreateTopic(config_.forecasts_topic,
                                               config_.topic_partitions));
  }
  consumer_ = std::make_unique<Consumer>(&broker_, config_.consumer_group,
                                         config_.topic);
  return Status::Ok();
}

void MaritimePipeline::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Stop the batcher first: its final flush still Tells results into the
  // live actor system; afterwards no non-actor thread touches the system.
  if (batcher_ != nullptr) batcher_->Stop();
  system_->Shutdown();
}

Status MaritimePipeline::Ingest(const AisPosition& report) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("pipeline not running");
  }
  obs::ScopedTimer ingest_timer(context_->stage_ingest);
  Stopwatch spawn_watch(config_.latency_clock);
  StatusOr<ActorRef> actor = system_->GetOrSpawn(
      marlin::VesselActorName(report.mmsi), [this, &report] {
        return std::make_unique<VesselActor>(report.mmsi, context_.get());
      });
  MARLIN_RETURN_IF_ERROR(actor.status());
  PositionMsg message{report, spawn_watch.ElapsedNanos()};
  system_->Tell(*actor, std::move(message));
  return Status::Ok();
}

Status MaritimePipeline::Produce(const std::string& aivdm_sentence,
                                 TimeMicros received_at) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("pipeline not running");
  }
  // Validate & extract the MMSI for keying (vessel messages stay ordered
  // within one partition).
  MARLIN_ASSIGN_OR_RETURN(AisPosition decoded,
                          AisCodec::DecodePosition(aivdm_sentence, received_at));
  return broker_
      .Append(config_.topic, std::to_string(decoded.mmsi), aivdm_sentence,
              received_at)
      .status();
}

int MaritimePipeline::PumpIngestion(int max_records) {
  if (!started_ || stopped_ || consumer_ == nullptr) return 0;
  const std::vector<Record> batch = consumer_->Poll(max_records);
  int ingested = 0;
  for (const Record& record : batch) {
    StatusOr<AisPosition> decoded =
        AisCodec::DecodePosition(record.value, record.timestamp);
    if (!decoded.ok()) {
      MARLIN_LOG(WARNING) << "dropping undecodable record: "
                          << decoded.status().ToString();
      continue;
    }
    if (Ingest(*decoded).ok()) ++ingested;
  }
  consumer_->Commit();
  return ingested;
}

void MaritimePipeline::AwaitQuiescence() {
  if (system_ == nullptr) return;
  // Actors and the batcher feed each other: draining the mailboxes can
  // enqueue forecast requests, and flushing those requests Tells results
  // back into the mailboxes. Alternate until both are quiet. Once the
  // system is quiescent no actor can submit, so a batcher that is also
  // quiescent ends the loop.
  for (;;) {
    system_->AwaitQuiescence();
    if (batcher_ == nullptr) return;
    if (batcher_->Flush() == 0 && batcher_->Quiescent()) return;
    // A concurrent flusher (ticker or submitting thread) still owns a
    // batch; let it finish delivering before re-checking.
    std::this_thread::yield();
  }
}

StatusOr<ForecastTrajectory> MaritimePipeline::LatestForecast(Mmsi mmsi) {
  MARLIN_ASSIGN_OR_RETURN(ActorRef vessel,
                          system_->Find(marlin::VesselActorName(mmsi)));
  std::future<std::any> reply = system_->Ask(vessel, GetForecastQuery{});
  const std::any value = reply.get();
  if (const auto* trajectory = std::any_cast<TrajectoryMsg>(&value)) {
    return trajectory->trajectory;
  }
  return Status::NotFound("vessel has no forecast yet");
}

StatusOr<std::vector<MaritimeEvent>> MaritimePipeline::VesselEvents(Mmsi mmsi) {
  MARLIN_ASSIGN_OR_RETURN(ActorRef vessel,
                          system_->Find(marlin::VesselActorName(mmsi)));
  std::future<std::any> reply = system_->Ask(vessel, GetVesselEventsQuery{});
  const std::any value = reply.get();
  if (const auto* events = std::any_cast<std::vector<MaritimeEvent>>(&value)) {
    return *events;
  }
  return Status::Internal("unexpected reply type");
}

std::vector<MaritimeEvent> MaritimePipeline::RecentEvents(int limit) {
  // Gather from every writer shard, then merge newest-first.
  std::vector<MaritimeEvent> merged;
  for (const ActorRef& writer : context_->writers) {
    if (!writer.valid()) continue;
    std::future<std::any> reply =
        system_->Ask(writer, GetRecentEventsQuery{limit});
    const std::any value = reply.get();
    if (const auto* events =
            std::any_cast<std::vector<MaritimeEvent>>(&value)) {
      merged.insert(merged.end(), events->begin(), events->end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const MaritimeEvent& a, const MaritimeEvent& b) {
              return a.detected_at > b.detected_at;
            });
  if (static_cast<int>(merged.size()) > limit) {
    merged.resize(static_cast<size_t>(limit));
  }
  return merged;
}

std::vector<FlowCell> MaritimePipeline::TrafficFlow(int step) {
  if (!config_.enable_vtff || !context_->traffic.valid()) return {};
  std::future<std::any> reply =
      system_->Ask(context_->traffic, GetTrafficFlowQuery{step});
  const std::any value = reply.get();
  if (const auto* flow = std::any_cast<std::vector<FlowCell>>(&value)) {
    return *flow;
  }
  return {};
}

std::vector<PortTrafficStatus> MaritimePipeline::PortTraffic() {
  if (!context_->ports.valid()) return {};
  std::future<std::any> reply =
      system_->Ask(context_->ports, GetPortTrafficQuery{});
  const std::any value = reply.get();
  if (const auto* status =
          std::any_cast<std::vector<PortTrafficStatus>>(&value)) {
    return *status;
  }
  return {};
}

std::vector<CellMobilityStats> MaritimePipeline::Patterns(int top_n) {
  if (!context_->traffic.valid()) return {};
  std::future<std::any> reply =
      system_->Ask(context_->traffic, GetPatternsQuery{top_n});
  const std::any value = reply.get();
  if (const auto* cells =
          std::any_cast<std::vector<CellMobilityStats>>(&value)) {
    return *cells;
  }
  return {};
}

PipelineStats MaritimePipeline::Stats() const {
  PipelineStats stats;
  if (system_ != nullptr) {
    stats.actor_count = system_->ActorCount();
    stats.messages_processed = system_->ProcessedCount();
  }
  if (context_ != nullptr) {
    stats.positions_ingested =
        context_->positions_ingested.load(std::memory_order_relaxed);
    stats.forecasts_generated =
        context_->forecasts_generated.load(std::memory_order_relaxed);
    stats.events_detected =
        context_->events_detected.load(std::memory_order_relaxed);
  }
  // The position-stage histogram observes the same per-message totals the
  // Figure-6 recorder sees, so its running mean replaces the recorder's.
  if (context_ != nullptr && context_->stage_position != nullptr) {
    stats.mean_processing_nanos = context_->stage_position->Mean();
  }
  return stats;
}

std::string MaritimePipeline::VesselActorName(Mmsi mmsi) const {
  return marlin::VesselActorName(mmsi);
}

}  // namespace marlin

#ifndef MARLIN_CORE_MESSAGES_H_
#define MARLIN_CORE_MESSAGES_H_

#include <vector>

#include "ais/types.h"
#include "events/event_types.h"
#include "vrf/route_forecaster.h"

namespace marlin {

/// Message payloads exchanged between pipeline actors. All are copyable
/// value types carried in std::any envelopes.

/// AIS position routed to a vessel actor (the core partitioning: one actor
/// per MMSI).
struct PositionMsg {
  AisPosition report;
  /// Ingest-side cost already spent on this message (actor lookup/spawn),
  /// folded into the per-message processing-time measurement so the
  /// init-phase actor-creation storm is visible in the Figure-6 curve.
  int64_t ingest_cost_nanos = 0;
};

/// Position observation forwarded by a vessel actor to its cell actor for
/// proximity event detection.
struct CellObservationMsg {
  AisPosition report;
};

/// Forecast trajectory forwarded to collision actors, the traffic-flow
/// actor, and the writer.
struct TrajectoryMsg {
  ForecastTrajectory trajectory;
};

/// Detected or forecast event, routed to the writer and back to the
/// affected vessel actors.
struct EventMsg {
  MaritimeEvent event;
};

/// Completed asynchronous forecast, Tell-ed back to the owning vessel actor
/// by the inference batcher's flushing thread. The actor finishes the
/// forecast fan-out (collision/traffic/ports/writer) when this lands.
struct ForecastResultMsg {
  bool ok = false;
  ForecastTrajectory trajectory;  // valid when ok
  /// This request's share of the batched network forward, in nanoseconds
  /// (batch cost / batch size) — the async path's contribution to the
  /// Figure-6 per-message processing cost.
  int64_t forecast_nanos = 0;
};

/// Vessel state published by vessel actors to the writer.
struct VesselStateMsg {
  AisPosition latest;
  bool has_forecast = false;
  ForecastTrajectory forecast;
};

/// Periodic prune tick for stateful grid actors.
struct PruneTickMsg {
  TimeMicros now = 0;
};

// ---- Ask payloads (replies in parentheses) ----

/// Vessel actor: latest forecast (reply: TrajectoryMsg; empty reply if no
/// forecast has been produced yet).
struct GetForecastQuery {};

/// Vessel actor: events that involved this vessel (reply:
/// std::vector<MaritimeEvent>).
struct GetVesselEventsQuery {};

/// Writer actor: most recent events, newest first (reply:
/// std::vector<MaritimeEvent>).
struct GetRecentEventsQuery {
  int limit = 100;
};

/// Traffic actor: predicted flow raster for one horizon step (reply:
/// std::vector<FlowCell>).
struct GetTrafficFlowQuery {
  int step = 1;
};

/// Ports actor: current + forecast port traffic (reply:
/// std::vector<PortTrafficStatus>).
struct GetPortTrafficQuery {
  TimeMicros now = 0;
};

/// Traffic actor: busiest historical cells — the Patterns-of-Life view
/// (reply: std::vector<CellMobilityStats>).
struct GetPatternsQuery {
  int top_n = 20;
};

}  // namespace marlin

#endif  // MARLIN_CORE_MESSAGES_H_

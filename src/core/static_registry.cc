#include "core/static_registry.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace marlin {

int StaticRegistry::LoadFromText(const std::string& text) {
  int loaded = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == '|') {
        fields.push_back(line.substr(start, i - start));
        start = i + 1;
      }
    }
    if (fields.size() != 8) continue;
    char* end = nullptr;
    const unsigned long mmsi = std::strtoul(fields[0].c_str(), &end, 10);
    if (end == fields[0].c_str() || mmsi == 0) continue;
    AisStatic record;
    record.mmsi = static_cast<Mmsi>(mmsi);
    record.name = fields[1];
    record.type = VesselTypeFromItuCode(std::atoi(fields[2].c_str()));
    record.length_m = std::atof(fields[3].c_str());
    record.beam_m = std::atof(fields[4].c_str());
    record.draught_m = std::atof(fields[5].c_str());
    record.dwt = std::atof(fields[6].c_str());
    record.destination = fields[7];
    Put(record);
    ++loaded;
  }
  return loaded;
}

std::string StaticRegistry::DumpToText() const {
  std::string out = "# mmsi|name|itu_type|length|beam|draught|dwt|destination\n";
  for (const auto& [mmsi, record] : vessels_) {
    int itu = 0;
    switch (record.type) {
      case VesselType::kFishing:
        itu = 30;
        break;
      case VesselType::kHighSpeedCraft:
        itu = 40;
        break;
      case VesselType::kTug:
        itu = 52;
        break;
      case VesselType::kPassenger:
        itu = 60;
        break;
      case VesselType::kCargo:
        itu = 70;
        break;
      case VesselType::kTanker:
        itu = 80;
        break;
      case VesselType::kPleasureCraft:
        itu = 37;
        break;
      case VesselType::kOther:
        itu = 90;
        break;
      case VesselType::kUnknown:
        itu = 0;
        break;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%u|%s|%d|%.1f|%.1f|%.1f|%.0f|%s\n", mmsi,
                  record.name.c_str(), itu, record.length_m, record.beam_m,
                  record.draught_m, record.dwt, record.destination.c_str());
    out += buf;
  }
  return out;
}

}  // namespace marlin

#ifndef MARLIN_CORE_ACTORS_H_
#define MARLIN_CORE_ACTORS_H_

#include <deque>
#include <string>
#include <vector>

#include "actor/actor.h"
#include "ais/preprocess.h"
#include "core/messages.h"
#include "core/pipeline.h"
#include "events/collision.h"
#include "events/proximity.h"
#include "events/switch_off.h"
#include "events/traffic_flow.h"
#include "hexgrid/hexgrid.h"
#include "vrf/patterns_of_life.h"

namespace marlin {

/// Actor-name helpers shared by the pipeline and its actors.
std::string VesselActorName(Mmsi mmsi);
std::string CellActorName(CellId cell);
std::string CollisionActorName(CellId cell);

/// Per-vessel actor (§3: "multiple actors N, each one corresponding to a
/// specific vessel as defined by its MMSI"). Maintains the vessel's
/// downsampled history window, runs the shared S-VRF model on each accepted
/// position, and fans results out to the cell actor (proximity), the
/// collision actor of its region, the traffic actor, and the writer.
class VesselActor : public Actor {
 public:
  VesselActor(Mmsi mmsi, PipelineContext* pipeline);

  Status Receive(const std::any& message, ActorContext& ctx) override;
  void OnRestart(const Status& failure) override;

 private:
  Status HandlePosition(const AisPosition& report, int64_t ingest_cost_nanos,
                        ActorContext& ctx);
  /// Completes an asynchronously batched forecast: stores it, fans it out
  /// to the collision/traffic/ports/writer actors, and records the
  /// per-message processing cost (stashed sync share + batched share).
  Status HandleForecastResult(const ForecastResultMsg& result,
                              ActorContext& ctx);
  /// Forecast fan-out shared by the inline and batched paths.
  void PublishForecast(const ForecastTrajectory& trajectory, ActorContext& ctx);
  /// Writer-state publish shared by both paths.
  void PublishState(const AisPosition& report, ActorContext& ctx);

  Mmsi mmsi_;
  PipelineContext* pipeline_;
  VesselHistory history_;
  bool has_forecast_ = false;
  ForecastTrajectory latest_forecast_;
  AisPosition latest_report_;
  std::deque<MaritimeEvent> my_events_;  // events affecting this vessel
  /// Self-handle captured into batcher callbacks (resolved lazily).
  ActorRef self_ref_;
  /// Sync-side nanos of positions whose forecast is still in the batcher,
  /// oldest first; results pop from the front (actor isolation — the deque
  /// is only touched from this actor's Receive).
  std::deque<int64_t> pending_sync_nanos_;
};

/// Per-cell actor for proximity event detection (§3: "a class for proximity
/// event detection with variable size M"). Owns the detector shard of one
/// grid cell's neighbourhood.
class CellActor : public Actor {
 public:
  explicit CellActor(PipelineContext* pipeline);

  Status Receive(const std::any& message, ActorContext& ctx) override;

 private:
  PipelineContext* pipeline_;
  ProximityDetector detector_;
  int observations_since_prune_ = 0;
};

/// Per-region actor for collision forecasting (§3: "a class for collision
/// forecasting with variable size K"). Owns the collision forecaster of one
/// coarse grid region; forecast trajectories are routed here by the region
/// cell of their anchor.
class CollisionActor : public Actor {
 public:
  explicit CollisionActor(PipelineContext* pipeline);

  Status Receive(const std::any& message, ActorContext& ctx) override;

 private:
  PipelineContext* pipeline_;
  CollisionForecaster forecaster_;
  int observations_since_prune_ = 0;
};

/// Singleton aggregation actor for indirect vessel traffic flow
/// forecasting (§5.1): rasterises every forecast trajectory into the
/// (cell × 5-minute-window) grid. Also accumulates the historical
/// "Patterns of Life" mobility statistics (§4.1) from the raw positions it
/// observes.
class TrafficActor : public Actor {
 public:
  explicit TrafficActor(PipelineContext* pipeline);

  Status Receive(const std::any& message, ActorContext& ctx) override;

 private:
  PipelineContext* pipeline_;
  TrafficFlowForecaster forecaster_;
  PatternsOfLife patterns_;
  int observations_since_prune_ = 0;
};

/// Singleton actor hosting the AIS switch-off detector (§5: "the switch-off
/// of the AIS transmitter on a vessel" is one of the platform's detected
/// composite events [9]). Consumes every position to maintain per-vessel
/// cadence baselines and periodically scans for silent vessels in stream
/// time.
class SurveillanceActor : public Actor {
 public:
  explicit SurveillanceActor(PipelineContext* pipeline);

  Status Receive(const std::any& message, ActorContext& ctx) override;

 private:
  PipelineContext* pipeline_;
  SwitchOffDetector detector_;
  TimeMicros latest_time_ = 0;
  int observations_since_check_ = 0;
};

/// Singleton actor hosting the berth/port congestion monitor (§7 future
/// work, implemented): consumes raw positions (occupancy) and forecast
/// trajectories (inbound arrivals) and answers port-traffic queries.
class PortsActor : public Actor {
 public:
  explicit PortsActor(PipelineContext* pipeline);

  Status Receive(const std::any& message, ActorContext& ctx) override;

 private:
  PipelineContext* pipeline_;
  PortCongestionMonitor monitor_;
  TimeMicros latest_time_ = 0;
};

/// Writer actor (§3): the single sink publishing actor states and events
/// into the KvStore for the middleware/UI, and answering recent-event
/// queries.
class WriterActor : public Actor {
 public:
  /// `shard` distinguishes this writer's event keys when several writer
  /// actors run concurrently (§3).
  explicit WriterActor(PipelineContext* pipeline, int shard = 0);

  Status Receive(const std::any& message, ActorContext& ctx) override;

 private:
  void WriteVesselState(const VesselStateMsg& state);
  void WriteEvent(const MaritimeEvent& event);

  PipelineContext* pipeline_;
  int shard_;
  std::deque<MaritimeEvent> recent_events_;
  int64_t event_seq_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_CORE_ACTORS_H_

#include "core/actors.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/logging.h"
#include "vrf/inference_batcher.h"

namespace marlin {
namespace {

/// Routes an event to the writer and (optionally) back to the two affected
/// vessel actors, per the state feedback loop of §3.
void PublishEvent(const MaritimeEvent& event, PipelineContext* pipeline,
                  ActorContext& ctx) {
  pipeline->events_detected.fetch_add(1, std::memory_order_relaxed);
  ctx.system().Tell(pipeline->WriterFor(event.vessel_a), EventMsg{event},
                    ctx.self());
  if (!pipeline->config->notify_vessel_actors) return;
  for (Mmsi mmsi : {event.vessel_a, event.vessel_b}) {
    if (mmsi == 0) continue;
    StatusOr<ActorRef> vessel = ctx.system().Find(VesselActorName(mmsi));
    if (vessel.ok()) {
      ctx.system().Tell(*vessel, EventMsg{event}, ctx.self());
    }
  }
}

}  // namespace

std::string VesselActorName(Mmsi mmsi) {
  return "vessel-" + std::to_string(mmsi);
}

std::string CellActorName(CellId cell) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "cell-%016llx",
                static_cast<unsigned long long>(cell));
  return buf;
}

std::string CollisionActorName(CellId cell) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "coll-%016llx",
                static_cast<unsigned long long>(cell));
  return buf;
}

// ------------------------------------------------------------ VesselActor

VesselActor::VesselActor(Mmsi mmsi, PipelineContext* pipeline)
    : mmsi_(mmsi), pipeline_(pipeline) {}

Status VesselActor::Receive(const std::any& message, ActorContext& ctx) {
  if (const auto* position = std::any_cast<PositionMsg>(&message)) {
    return HandlePosition(position->report, position->ingest_cost_nanos, ctx);
  }
  if (const auto* result = std::any_cast<ForecastResultMsg>(&message)) {
    return HandleForecastResult(*result, ctx);
  }
  if (const auto* event = std::any_cast<EventMsg>(&message)) {
    my_events_.push_back(event->event);
    while (my_events_.size() > 64) my_events_.pop_front();
    return Status::Ok();
  }
  if (std::any_cast<GetForecastQuery>(&message) != nullptr) {
    if (has_forecast_) {
      ctx.Reply(TrajectoryMsg{latest_forecast_});
    } else {
      ctx.Reply(std::any());
    }
    return Status::Ok();
  }
  if (std::any_cast<GetVesselEventsQuery>(&message) != nullptr) {
    ctx.Reply(std::vector<MaritimeEvent>(my_events_.begin(), my_events_.end()));
    return Status::Ok();
  }
  return Status::InvalidArgument("vessel actor: unexpected message type");
}

Status VesselActor::HandlePosition(const AisPosition& report,
                                   int64_t ingest_cost_nanos,
                                   ActorContext& ctx) {
  // The Figure-6 measurement: time to fully process one AIS message at the
  // actor level (history update, forecast, event routing), read from the
  // pipeline's latency source (host steady clock unless a virtual-time
  // driver injected its VirtualClock).
  Stopwatch stopwatch(pipeline_->latency_clock);
  pipeline_->positions_ingested.fetch_add(1, std::memory_order_relaxed);

  const bool accepted = history_.Push(report);
  latest_report_ = report;

  // Route the raw observation to the proximity cell actor.
  const CellId cell = HexGrid::LatLngToCell(
      report.position, pipeline_->config->cell_actor_resolution);
  if (cell != kInvalidCellId) {
    StatusOr<ActorRef> cell_actor = ctx.system().GetOrSpawn(
        CellActorName(cell),
        [this] { return std::make_unique<CellActor>(pipeline_); });
    if (cell_actor.ok()) {
      ctx.system().Tell(*cell_actor, CellObservationMsg{report}, ctx.self());
    }
  }

  // Port occupancy monitoring.
  if (pipeline_->ports.valid()) {
    ctx.system().Tell(pipeline_->ports, CellObservationMsg{report},
                      ctx.self());
  }

  // Patterns-of-Life accumulation (historical mobility statistics).
  if (pipeline_->config->enable_vtff && pipeline_->traffic.valid()) {
    ctx.system().Tell(pipeline_->traffic, CellObservationMsg{report},
                      ctx.self());
  }

  // AIS switch-off surveillance.
  if (pipeline_->surveillance.valid()) {
    ctx.system().Tell(pipeline_->surveillance, CellObservationMsg{report},
                      ctx.self());
  }

  // Generate a forecast once a full input window is available. Preferred
  // path: submit to the shared inference batcher, which coalesces requests
  // from many vessel actors into one column-batched network forward and
  // Tells a ForecastResultMsg back; the fan-out then happens in
  // HandleForecastResult. Falls back to the inline forecast when batching
  // is off or the batcher applies backpressure.
  bool submitted = false;
  if (accepted && history_.Ready()) {
    const SvrfInput input = history_.MakeInput();
    InferenceBatcher* batcher = pipeline_->batcher;
    if (batcher != nullptr) {
      if (!self_ref_.valid()) {
        StatusOr<ActorRef> self = ctx.system().Find(VesselActorName(mmsi_));
        if (self.ok()) self_ref_ = *self;
      }
      if (self_ref_.valid()) {
        // The callback runs on whichever thread flushes the batch; Tell is
        // thread-safe and re-enters this actor through its mailbox, so no
        // actor state is touched off-thread.
        ActorSystem* system = &ctx.system();
        submitted =
            batcher
                ->Submit(input,
                         [system, self = self_ref_](
                             StatusOr<ForecastTrajectory> result,
                             int64_t per_item_nanos) {
                           ForecastResultMsg msg;
                           msg.ok = result.ok();
                           if (result.ok()) {
                             msg.trajectory = std::move(*result);
                           }
                           msg.forecast_nanos = per_item_nanos;
                           system->Tell(self, std::move(msg));
                         })
                .ok();
      }
    }
    if (!submitted) {
      obs::ScopedTimer forecast_timer(pipeline_->stage_forecast);
      StatusOr<ForecastTrajectory> forecast =
          pipeline_->forecaster->Forecast(input);
      if (forecast.ok()) {
        forecast->mmsi = mmsi_;
        latest_forecast_ = std::move(*forecast);
        has_forecast_ = true;
        pipeline_->forecasts_generated.fetch_add(1, std::memory_order_relaxed);
        PublishForecast(latest_forecast_, ctx);
      }
    }
  }

  PublishState(report, ctx);

  const int64_t total_nanos = stopwatch.ElapsedNanos() + ingest_cost_nanos;
  if (submitted) {
    // Charge this message's cost once, when its forecast lands: stash the
    // sync share for HandleForecastResult to combine with the batched
    // share. Bounded defensively; entries only leak if a callback is lost.
    pending_sync_nanos_.push_back(total_nanos);
    while (pending_sync_nanos_.size() > 64) pending_sync_nanos_.pop_front();
  } else {
    if (pipeline_->stage_position != nullptr) {
      pipeline_->stage_position->Observe(total_nanos);
    }
    pipeline_->latency->Record(static_cast<int64_t>(ctx.system().ActorCount()),
                               total_nanos);
  }
  return Status::Ok();
}

Status VesselActor::HandleForecastResult(const ForecastResultMsg& result,
                                         ActorContext& ctx) {
  Stopwatch stopwatch(pipeline_->latency_clock);
  int64_t sync_nanos = 0;
  if (!pending_sync_nanos_.empty()) {
    sync_nanos = pending_sync_nanos_.front();
    pending_sync_nanos_.pop_front();
  }
  if (pipeline_->stage_forecast != nullptr) {
    pipeline_->stage_forecast->Observe(result.forecast_nanos);
  }
  if (result.ok) {
    latest_forecast_ = result.trajectory;
    latest_forecast_.mmsi = mmsi_;
    has_forecast_ = true;
    pipeline_->forecasts_generated.fetch_add(1, std::memory_order_relaxed);
    PublishForecast(latest_forecast_, ctx);
    // Refresh the writer's view now that the forecast exists.
    PublishState(latest_report_, ctx);
  }
  // Complete the Figure-6 measurement for the originating message: its
  // synchronous share, its slice of the batched forward, and this fan-out.
  const int64_t total_nanos =
      sync_nanos + result.forecast_nanos + stopwatch.ElapsedNanos();
  if (pipeline_->stage_position != nullptr) {
    pipeline_->stage_position->Observe(total_nanos);
  }
  pipeline_->latency->Record(static_cast<int64_t>(ctx.system().ActorCount()),
                             total_nanos);
  return Status::Ok();
}

void VesselActor::PublishForecast(const ForecastTrajectory& trajectory,
                                  ActorContext& ctx) {
  // Collision actor of the anchor's coarse region.
  const CellId region = HexGrid::LatLngToCell(
      latest_report_.position, pipeline_->config->collision_actor_resolution);
  if (region != kInvalidCellId) {
    StatusOr<ActorRef> collision_actor = ctx.system().GetOrSpawn(
        CollisionActorName(region),
        [this] { return std::make_unique<CollisionActor>(pipeline_); });
    if (collision_actor.ok()) {
      ctx.system().Tell(*collision_actor, TrajectoryMsg{trajectory},
                        ctx.self());
    }
  }
  // Traffic raster.
  if (pipeline_->config->enable_vtff && pipeline_->traffic.valid()) {
    ctx.system().Tell(pipeline_->traffic, TrajectoryMsg{trajectory},
                      ctx.self());
  }
  // Predicted port arrivals.
  if (pipeline_->ports.valid()) {
    ctx.system().Tell(pipeline_->ports, TrajectoryMsg{trajectory}, ctx.self());
  }
}

void VesselActor::PublishState(const AisPosition& report, ActorContext& ctx) {
  VesselStateMsg state;
  state.latest = report;
  state.has_forecast = has_forecast_;
  if (has_forecast_) state.forecast = latest_forecast_;
  ctx.system().Tell(pipeline_->WriterFor(mmsi_), std::move(state), ctx.self());
}

void VesselActor::OnRestart(const Status& failure) {
  (void)failure;
  history_.Clear();
}

// -------------------------------------------------------------- CellActor

CellActor::CellActor(PipelineContext* pipeline)
    : pipeline_(pipeline), detector_(pipeline->config->proximity) {}

Status CellActor::Receive(const std::any& message, ActorContext& ctx) {
  if (const auto* observation = std::any_cast<CellObservationMsg>(&message)) {
    for (const MaritimeEvent& event : detector_.Observe(observation->report)) {
      PublishEvent(event, pipeline_, ctx);
    }
    // Self-prune on stream time so long-running cells do not accumulate
    // unbounded observation history.
    if (++observations_since_prune_ >= 64) {
      observations_since_prune_ = 0;
      detector_.Prune(observation->report.timestamp);
    }
    return Status::Ok();
  }
  if (const auto* tick = std::any_cast<PruneTickMsg>(&message)) {
    detector_.Prune(tick->now);
    return Status::Ok();
  }
  return Status::InvalidArgument("cell actor: unexpected message type");
}

// --------------------------------------------------------- CollisionActor

CollisionActor::CollisionActor(PipelineContext* pipeline)
    : pipeline_(pipeline), forecaster_(pipeline->config->collision) {}

Status CollisionActor::Receive(const std::any& message, ActorContext& ctx) {
  if (const auto* trajectory = std::any_cast<TrajectoryMsg>(&message)) {
    for (const MaritimeEvent& event :
         forecaster_.Observe(trajectory->trajectory)) {
      PublishEvent(event, pipeline_, ctx);
    }
    if (++observations_since_prune_ >= 64 &&
        !trajectory->trajectory.points.empty()) {
      observations_since_prune_ = 0;
      forecaster_.Prune(trajectory->trajectory.points.front().time);
    }
    return Status::Ok();
  }
  if (const auto* tick = std::any_cast<PruneTickMsg>(&message)) {
    forecaster_.Prune(tick->now);
    return Status::Ok();
  }
  return Status::InvalidArgument("collision actor: unexpected message type");
}

// ----------------------------------------------------------- TrafficActor

TrafficActor::TrafficActor(PipelineContext* pipeline)
    : pipeline_(pipeline),
      forecaster_(pipeline->config->traffic),
      patterns_(pipeline->config->traffic.resolution) {}

Status TrafficActor::Receive(const std::any& message, ActorContext& ctx) {
  if (const auto* observation = std::any_cast<CellObservationMsg>(&message)) {
    patterns_.AddObservation(observation->report);
    return Status::Ok();
  }
  if (const auto* query = std::any_cast<GetPatternsQuery>(&message)) {
    ctx.Reply(patterns_.TopCells(query->top_n));
    return Status::Ok();
  }
  if (const auto* trajectory = std::any_cast<TrajectoryMsg>(&message)) {
    forecaster_.Observe(trajectory->trajectory);
    if (++observations_since_prune_ >= 1024 &&
        !trajectory->trajectory.points.empty()) {
      observations_since_prune_ = 0;
      forecaster_.Prune(trajectory->trajectory.points.front().time);
    }
    return Status::Ok();
  }
  if (const auto* query = std::any_cast<GetTrafficFlowQuery>(&message)) {
    ctx.Reply(forecaster_.Flow(query->step));
    return Status::Ok();
  }
  if (const auto* tick = std::any_cast<PruneTickMsg>(&message)) {
    forecaster_.Prune(tick->now);
    return Status::Ok();
  }
  return Status::InvalidArgument("traffic actor: unexpected message type");
}

// ------------------------------------------------------- SurveillanceActor

SurveillanceActor::SurveillanceActor(PipelineContext* pipeline)
    : pipeline_(pipeline), detector_(pipeline->config->switch_off) {}

Status SurveillanceActor::Receive(const std::any& message,
                                  ActorContext& ctx) {
  if (const auto* observation = std::any_cast<CellObservationMsg>(&message)) {
    detector_.Observe(observation->report);
    latest_time_ = std::max(latest_time_, observation->report.timestamp);
    // Scan for silent vessels periodically in stream time.
    if (++observations_since_check_ >= 256) {
      observations_since_check_ = 0;
      for (const MaritimeEvent& event : detector_.Check(latest_time_)) {
        PublishEvent(event, pipeline_, ctx);
      }
    }
    return Status::Ok();
  }
  if (const auto* tick = std::any_cast<PruneTickMsg>(&message)) {
    for (const MaritimeEvent& event : detector_.Check(tick->now)) {
      PublishEvent(event, pipeline_, ctx);
    }
    return Status::Ok();
  }
  return Status::InvalidArgument("surveillance actor: unexpected message");
}

// ------------------------------------------------------------- PortsActor

PortsActor::PortsActor(PipelineContext* pipeline)
    : pipeline_(pipeline),
      monitor_(pipeline->config->monitored_ports,
               pipeline->config->port_monitor) {}

Status PortsActor::Receive(const std::any& message, ActorContext& ctx) {
  if (const auto* observation = std::any_cast<CellObservationMsg>(&message)) {
    monitor_.ObservePosition(observation->report);
    latest_time_ = std::max(latest_time_, observation->report.timestamp);
    return Status::Ok();
  }
  if (const auto* trajectory = std::any_cast<TrajectoryMsg>(&message)) {
    monitor_.ObserveForecast(trajectory->trajectory);
    if (!trajectory->trajectory.points.empty()) {
      latest_time_ = std::max(latest_time_,
                              trajectory->trajectory.points.front().time);
    }
    return Status::Ok();
  }
  if (const auto* query = std::any_cast<GetPortTrafficQuery>(&message)) {
    ctx.Reply(monitor_.Status(query->now > 0 ? query->now : latest_time_));
    return Status::Ok();
  }
  return Status::InvalidArgument("ports actor: unexpected message type");
}

// ------------------------------------------------------------ WriterActor

WriterActor::WriterActor(PipelineContext* pipeline, int shard)
    : pipeline_(pipeline), shard_(shard) {}

Status WriterActor::Receive(const std::any& message, ActorContext& ctx) {
  if (const auto* state = std::any_cast<VesselStateMsg>(&message)) {
    WriteVesselState(*state);
    return Status::Ok();
  }
  if (const auto* event = std::any_cast<EventMsg>(&message)) {
    recent_events_.push_back(event->event);
    while (recent_events_.size() > 1024) recent_events_.pop_front();
    WriteEvent(event->event);
    return Status::Ok();
  }
  if (const auto* query = std::any_cast<GetRecentEventsQuery>(&message)) {
    std::vector<MaritimeEvent> out;
    const int limit = query->limit;
    for (auto it = recent_events_.rbegin();
         it != recent_events_.rend() && static_cast<int>(out.size()) < limit;
         ++it) {
      out.push_back(*it);
    }
    ctx.Reply(std::move(out));
    return Status::Ok();
  }
  return Status::InvalidArgument("writer actor: unexpected message type");
}

void WriterActor::WriteVesselState(const VesselStateMsg& state) {
  obs::ScopedTimer write_timer(pipeline_->stage_write);
  const std::string key = "vessel:" + std::to_string(state.latest.mmsi);
  KvStore* store = pipeline_->store;
  char buf[64];
  // Dedicated forecast output stream (§7), keyed by MMSI.
  if (pipeline_->config->publish_output_topics && state.has_forecast) {
    std::string record = std::to_string(state.latest.mmsi);
    for (const ForecastPoint& point : state.forecast.points) {
      std::snprintf(buf, sizeof(buf), ";%.6f,%.6f,%lld",
                    point.position.lat_deg, point.position.lon_deg,
                    static_cast<long long>(point.time));
      record += buf;
    }
    (void)pipeline_->broker->Append(pipeline_->config->forecasts_topic,
                                    std::to_string(state.latest.mmsi),
                                    std::move(record),
                                    state.latest.timestamp);
  }
  std::snprintf(buf, sizeof(buf), "%.6f", state.latest.position.lat_deg);
  (void)store->HSet(key, "lat", buf);
  std::snprintf(buf, sizeof(buf), "%.6f", state.latest.position.lon_deg);
  (void)store->HSet(key, "lon", buf);
  std::snprintf(buf, sizeof(buf), "%.1f", state.latest.sog_knots);
  (void)store->HSet(key, "sog", buf);
  std::snprintf(buf, sizeof(buf), "%.1f", state.latest.cog_deg);
  (void)store->HSet(key, "cog", buf);
  (void)store->HSet(key, "ts", std::to_string(state.latest.timestamp));
  // Static-data fusion (§3): enrich the published state with the cached
  // registry record.
  if (pipeline_->registry != nullptr) {
    if (const AisStatic* info = pipeline_->registry->Find(state.latest.mmsi)) {
      (void)store->HSet(key, "name", info->name);
      (void)store->HSet(key, "type",
                        std::string(VesselTypeName(info->type)));
    }
  }
  if (state.has_forecast) {
    std::string forecast;
    for (const ForecastPoint& point : state.forecast.points) {
      std::snprintf(buf, sizeof(buf), "%.6f,%.6f,%lld;",
                    point.position.lat_deg, point.position.lon_deg,
                    static_cast<long long>(point.time));
      forecast += buf;
    }
    (void)store->HSet(key, "forecast", std::move(forecast));
  }
}

void WriterActor::WriteEvent(const MaritimeEvent& event) {
  obs::ScopedTimer write_timer(pipeline_->stage_write);
  const std::string key = "event:" + std::to_string(shard_) + ":" +
                          std::to_string(event_seq_++);
  KvStore* store = pipeline_->store;
  // Dedicated event output stream (§7), keyed by the primary vessel.
  if (pipeline_->config->publish_output_topics) {
    char record[192];
    std::snprintf(record, sizeof(record), "%s,%u,%u,%lld,%.6f,%.6f,%.1f",
                  std::string(EventTypeName(event.type)).c_str(),
                  event.vessel_a, event.vessel_b,
                  static_cast<long long>(event.event_time),
                  event.location.lat_deg, event.location.lon_deg,
                  event.distance_m);
    (void)pipeline_->broker->Append(pipeline_->config->events_topic,
                                    std::to_string(event.vessel_a), record,
                                    event.detected_at);
  }
  (void)store->HSet(key, "type", std::string(EventTypeName(event.type)));
  (void)store->HSet(key, "vessel_a", std::to_string(event.vessel_a));
  (void)store->HSet(key, "vessel_b", std::to_string(event.vessel_b));
  (void)store->HSet(key, "time", std::to_string(event.event_time));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f,%.6f", event.location.lat_deg,
                event.location.lon_deg);
  (void)store->HSet(key, "location", buf);
  std::snprintf(buf, sizeof(buf), "%.1f", event.distance_m);
  (void)store->HSet(key, "distance_m", buf);
}

}  // namespace marlin

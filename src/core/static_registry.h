#ifndef MARLIN_CORE_STATIC_REGISTRY_H_
#define MARLIN_CORE_STATIC_REGISTRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ais/types.h"
#include "util/status.h"

namespace marlin {

/// The static vessel-information cache of §3: "at the initialization phase,
/// any static information required to be fused with the streaming
/// information is provided ... As soon as the information is retrieved, it
/// is cached in memory, available for fast retrieval from all actors."
///
/// Immutable after Freeze(): loading happens at pipeline initialisation
/// (from a registry dump file or programmatically); afterwards every vessel
/// actor reads lock-free. Lookups before Freeze() are a programming error
/// in release flows but safe (they read the current map).
class StaticRegistry {
 public:
  StaticRegistry() = default;

  /// Adds or replaces a vessel's static record. Only valid before Freeze().
  void Put(const AisStatic& record) {
    vessels_[record.mmsi] = record;
  }

  /// Bulk-load from serialised lines ("mmsi|name|itu_type|length|beam|
  /// draught|dwt|destination" per line, the registry dump format). Returns
  /// the number of records loaded; malformed lines are skipped.
  int LoadFromText(const std::string& text);

  /// Serialises all records to the dump format.
  std::string DumpToText() const;

  /// Marks the registry immutable (documentation of intent; enforced by
  /// checks in debug builds via the mutation methods' contract).
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Lock-free lookup. Returns nullptr for unknown vessels.
  const AisStatic* Find(Mmsi mmsi) const {
    auto it = vessels_.find(mmsi);
    return it == vessels_.end() ? nullptr : &it->second;
  }

  size_t size() const { return vessels_.size(); }

 private:
  std::unordered_map<Mmsi, AisStatic> vessels_;
  bool frozen_ = false;
};

}  // namespace marlin

#endif  // MARLIN_CORE_STATIC_REGISTRY_H_

#ifndef MARLIN_CORE_PIPELINE_H_
#define MARLIN_CORE_PIPELINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "actor/actor_system.h"
#include "core/messages.h"
#include "events/collision.h"
#include "events/port_congestion.h"
#include "events/proximity.h"
#include "events/switch_off.h"
#include "events/traffic_flow.h"
#include "geo/world.h"
#include "core/static_registry.h"
#include "kvstore/kvstore.h"
#include "stream/broker.h"
#include "util/latency_recorder.h"
#include "vrf/patterns_of_life.h"
#include "vrf/route_forecaster.h"

namespace marlin {

class InferenceBatcher;

/// Pipeline configuration (the knobs named in §3: per-vessel actors N,
/// cell actors of variable size M, collision actors of variable size K).
struct PipelineConfig {
  ActorSystemConfig actor_system;
  /// Grid resolution of the proximity cell actors ("variable size M").
  int cell_actor_resolution = 9;
  /// Coarser grid resolution partitioning the collision actors ("variable
  /// size K"): each collision actor owns one coarse region.
  int collision_actor_resolution = 4;
  ProximityDetector::Config proximity;
  CollisionForecaster::Config collision;
  TrafficFlowForecaster::Config traffic;
  /// AIS switch-off detection (§5). Disable for throughput-only runs.
  bool enable_switch_off_detection = true;
  SwitchOffDetector::Config switch_off;
  /// Kafka-substitute topic layout for broker-backed ingestion.
  std::string topic = "ais-positions";
  int topic_partitions = 8;
  std::string consumer_group = "marlin-pipeline";
  /// Output streams (§7 future work, implemented): when enabled, the writer
  /// actor also publishes every event and every vessel forecast to
  /// dedicated broker topics that external consumers can subscribe to.
  bool publish_output_topics = false;
  std::string events_topic = "marlin-events";
  std::string forecasts_topic = "marlin-forecasts";
  /// Enable vessel traffic flow forecasting (aggregation actor).
  bool enable_vtff = true;
  /// Number of writer actors. §3 deploys a single writer; "depending on
  /// system and application requirements, multiple writer actors may exist
  /// and be supported by Akka concurrently" — outputs are sharded across
  /// them by vessel key.
  int num_writer_actors = 1;
  /// Ports monitored for berth/port congestion (§7 future work; empty =
  /// monitoring disabled). The ports actor consumes positions and forecast
  /// trajectories like the other grid actors.
  std::vector<Port> monitored_ports;
  PortCongestionMonitor::Config port_monitor;
  /// Forward proximity/collision events back to the affected vessel actors
  /// (§3: actors "communicate their state back to the respective affected
  /// subset of vessel actors").
  bool notify_vessel_actors = true;
  /// Batched S-VRF inference (DESIGN.md §10): vessel actors submit forecast
  /// requests to a shared InferenceBatcher that coalesces them into one
  /// column-batched network forward, instead of each actor running the
  /// network inline per message. Results come back as ForecastResultMsg.
  /// Batching never changes forecast values (columns are independent).
  bool batched_inference = true;
  /// Requests coalesced per batched forward.
  int inference_batch_size = 32;
  /// Straggler flush deadline for partial batches.
  int64_t inference_flush_micros = 2000;
  /// Run the batcher's background deadline ticker. Off = partial batches
  /// only flush via AwaitQuiescence (deterministic-scheduler tests).
  bool inference_background_flusher = true;
  /// Registry all pipeline substrates (actor system, broker, store, stage
  /// histograms) report into. Null = process global. Also applied to
  /// `actor_system.metrics` when that is unset.
  obs::MetricsRegistry* metrics = nullptr;
  /// Nanosecond source for the per-message stopwatches feeding the
  /// Figure-6 LatencyRecorder. Null = host steady clock (processing *cost*,
  /// the paper's measurement). Virtual-time drivers that want stream-time
  /// latency stats instead of host-time inject the run's VirtualClock here
  /// (see DESIGN.md §13). Not owned; must outlive the pipeline.
  const NanoClock* latency_clock = nullptr;
};

/// Aggregate pipeline statistics.
struct PipelineStats {
  size_t actor_count = 0;
  int64_t messages_processed = 0;
  int64_t positions_ingested = 0;
  int64_t forecasts_generated = 0;
  int64_t events_detected = 0;
  double mean_processing_nanos = 0.0;
};

/// Shared state handed to every actor of one pipeline. Owned by
/// MaritimePipeline; actors hold a raw pointer (the pipeline outlives its
/// actor system).
struct PipelineContext {
  const PipelineConfig* config = nullptr;
  const RouteForecaster* forecaster = nullptr;
  const StaticRegistry* registry = nullptr;  // may be null
  KvStore* store = nullptr;
  Broker* broker = nullptr;
  LatencyRecorder* latency = nullptr;
  ActorSystem* system = nullptr;
  /// Shared inference batcher; null when batched_inference is off. Vessel
  /// actors Submit here and fall back to an inline Forecast on rejection.
  InferenceBatcher* batcher = nullptr;
  /// Source for the actors' latency stopwatches (config.latency_clock;
  /// null = host steady clock).
  const NanoClock* latency_clock = nullptr;
  /// Stage-latency members of marlin_pipeline_stage_nanos{stage=...},
  /// cached at Start() so actors never touch the registry on the hot path.
  obs::Histogram* stage_ingest = nullptr;
  obs::Histogram* stage_position = nullptr;
  obs::Histogram* stage_forecast = nullptr;
  obs::Histogram* stage_write = nullptr;
  std::vector<ActorRef> writers;
  ActorRef traffic;
  ActorRef ports;
  ActorRef surveillance;

  /// The writer actor responsible for a vessel's outputs.
  const ActorRef& WriterFor(Mmsi mmsi) const {
    return writers[mmsi % writers.size()];
  }
  std::atomic<int64_t> positions_ingested{0};
  std::atomic<int64_t> forecasts_generated{0};
  std::atomic<int64_t> events_detected{0};
};

/// The maritime route and event forecasting platform (§3, Figure 2),
/// assembled from Marlin's substrates:
///
///   broker (Kafka substitute) → ingestion → vessel actors (1 per MMSI,
///   S-VRF forecasts at the actor level) → cell actors (proximity events)
///   + collision actors (collision forecasts) + traffic actor (VTFF)
///   → writer actor → KvStore (Redis substitute) → queries/UI.
///
/// `forecaster` is mounted once and shared by all vessel actors, per the
/// digital-twin design of §3. Use Ingest() to push decoded positions
/// directly, or Produce()/PumpIngestion() to go through the broker path.
class MaritimePipeline {
 public:
  /// `forecaster` must outlive the pipeline.
  MaritimePipeline(std::shared_ptr<const RouteForecaster> forecaster,
                   const PipelineConfig& config = PipelineConfig());
  ~MaritimePipeline();

  /// Provides the static vessel-information cache fused with the stream
  /// (§3). Must be called before Start(); the registry must outlive the
  /// pipeline and should be frozen.
  void SetStaticRegistry(const StaticRegistry* registry) {
    registry_ = registry;
  }

  MaritimePipeline(const MaritimePipeline&) = delete;
  MaritimePipeline& operator=(const MaritimePipeline&) = delete;

  /// Spawns the writer and traffic actors and creates the ingestion topic.
  Status Start();

  /// Stops ingestion and shuts the actor system down. Idempotent.
  void Stop();

  // -- Ingestion ---------------------------------------------------------

  /// Routes one decoded position to its vessel actor (spawned on first
  /// message). The common hot path.
  Status Ingest(const AisPosition& report);

  /// Appends an AIVDM sentence to the broker topic (keyed by MMSI).
  Status Produce(const std::string& aivdm_sentence, TimeMicros received_at);

  /// Polls the broker and ingests up to `max_records`; returns the number
  /// ingested. Call repeatedly (or from a pump thread) to drain.
  int PumpIngestion(int max_records = 1024);

  /// Blocks until all in-flight actor messages are processed.
  void AwaitQuiescence();

  // -- Queries -----------------------------------------------------------

  /// Latest forecast trajectory of a vessel (NotFound if the vessel is
  /// unknown or has not yet produced a forecast).
  StatusOr<ForecastTrajectory> LatestForecast(Mmsi mmsi);

  /// Events involving a specific vessel.
  StatusOr<std::vector<MaritimeEvent>> VesselEvents(Mmsi mmsi);

  /// Most recent events across the fleet, newest first.
  std::vector<MaritimeEvent> RecentEvents(int limit = 100);

  /// Predicted traffic flow raster at horizon step 1..6 (empty when VTFF
  /// is disabled).
  std::vector<FlowCell> TrafficFlow(int step);

  /// Present + forecast port traffic (empty when no ports are monitored).
  std::vector<PortTrafficStatus> PortTraffic();

  /// Busiest historical cells (Patterns of Life, §4.1). Empty when VTFF is
  /// disabled (the traffic actor hosts the aggregates).
  std::vector<CellMobilityStats> Patterns(int top_n = 20);

  /// Aggregate statistics.
  PipelineStats Stats() const;

  /// Figure-6 series: windowed mean processing time vs live actor count.
  std::vector<LatencyPoint> LatencySeries() const { return latency_.Series(); }

  KvStore& store() { return store_; }
  Broker& broker() { return broker_; }
  ActorSystem& system() { return *system_; }
  obs::MetricsRegistry* metrics() { return metrics_; }

 private:
  std::string VesselActorName(Mmsi mmsi) const;

  PipelineConfig config_;
  std::shared_ptr<const RouteForecaster> forecaster_;
  const StaticRegistry* registry_ = nullptr;
  obs::MetricsRegistry* metrics_;  // declared before the substrates it feeds
  KvStore store_;
  Broker broker_;
  LatencyRecorder latency_;
  std::unique_ptr<ActorSystem> system_;
  std::unique_ptr<InferenceBatcher> batcher_;
  std::unique_ptr<PipelineContext> context_;
  std::unique_ptr<Consumer> consumer_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace marlin

#endif  // MARLIN_CORE_PIPELINE_H_

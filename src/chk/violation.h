#ifndef MARLIN_CHK_VIOLATION_H_
#define MARLIN_CHK_VIOLATION_H_

#include <cstdint>
#include <string>

namespace marlin {
namespace chk {

/// Classes of correctness violations the chk detectors report.
enum class ViolationKind {
  kOwnership,  // actor state touched off its mailbox thread
  kLockOrder,  // lock acquisition closes a cycle in the order graph
  kInvariant,  // MARLIN_CHK_INVARIANT condition failed
};

const char* ViolationKindName(ViolationKind kind);

/// Callback invoked for every detected violation. The default handler logs
/// FATAL and aborts so CI fails loudly; negative tests install a recording
/// handler instead.
using ViolationHandler = void (*)(ViolationKind, const std::string&);

/// Installs `handler` and returns the previous one (never null). Passing
/// nullptr restores the default abort-on-violation handler.
ViolationHandler ExchangeViolationHandler(ViolationHandler handler);

/// Reports a violation through the installed handler and bumps the global
/// violation counter (counted before the handler runs, so even the abort
/// path registers it).
void ReportViolation(ViolationKind kind, const std::string& message);

/// Violations reported since process start (or the last Reset).
int64_t ViolationCount();
void ResetViolationCount();

/// RAII test helper: records violations instead of aborting, restoring the
/// previous handler on destruction. At most one recorder may be active.
class ScopedViolationRecorder {
 public:
  ScopedViolationRecorder();
  ~ScopedViolationRecorder();

  ScopedViolationRecorder(const ScopedViolationRecorder&) = delete;
  ScopedViolationRecorder& operator=(const ScopedViolationRecorder&) = delete;

  int64_t count() const;
  /// Message of the i-th recorded violation ("" when out of range).
  std::string message(size_t i) const;
  /// Kind of the i-th recorded violation (kInvariant when out of range).
  ViolationKind kind(size_t i) const;

 private:
  ViolationHandler previous_;
};

}  // namespace chk
}  // namespace marlin

#endif  // MARLIN_CHK_VIOLATION_H_

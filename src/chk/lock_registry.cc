#include "chk/lock_registry.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chk/violation.h"

namespace marlin {
namespace chk {

struct LockRegistry::Impl {
  struct Node {
    std::string name;
    std::unordered_set<const void*> held_before;  // successors: this → other
  };

  mutable std::mutex mu;
  std::unordered_map<const void*, Node> graph;

  // Locks held by the calling thread, in acquisition order.
  static std::vector<const void*>& Held() {
    thread_local std::vector<const void*> held;
    return held;
  }

  // True when `to` is reachable from `from` over held-before edges.
  // Caller holds `mu`.
  bool Reachable(const void* from, const void* to) const {
    std::vector<const void*> stack{from};
    std::unordered_set<const void*> seen;
    while (!stack.empty()) {
      const void* node = stack.back();
      stack.pop_back();
      if (node == to) return true;
      if (!seen.insert(node).second) continue;
      auto it = graph.find(node);
      if (it == graph.end()) continue;
      for (const void* next : it->second.held_before) stack.push_back(next);
    }
    return false;
  }

  std::string NameOf(const void* lock) const {
    auto it = graph.find(lock);
    return it == graph.end() ? "<unregistered>" : it->second.name;
  }
};

LockRegistry::Impl& LockRegistry::impl() const {
  static Impl instance;
  return instance;
}

LockRegistry& LockRegistry::Global() {
  static LockRegistry registry;
  return registry;
}

void LockRegistry::NoteAcquired(const void* lock, const char* name) {
  Impl& state = impl();
  std::vector<const void*>& held = Impl::Held();
  {
    std::lock_guard<std::mutex> guard(state.mu);
    state.graph[lock].name = name;
    for (const void* prior : held) {
      if (prior == lock) continue;
      Impl::Node& node = state.graph[prior];
      if (node.held_before.count(lock) > 0) continue;
      // Adding prior→lock: a path lock→…→prior means some other history
      // acquired these in the opposite order — a potential deadlock cycle.
      if (state.Reachable(lock, prior)) {
        ReportViolation(
            ViolationKind::kLockOrder,
            "acquiring '" + std::string(name) + "' while holding '" +
                state.NameOf(prior) +
                "' closes a lock-order cycle (the opposite order was "
                "recorded earlier); potential deadlock");
      }
      node.held_before.insert(lock);
    }
  }
  held.push_back(lock);
}

void LockRegistry::NoteReleased(const void* lock) {
  std::vector<const void*>& held = Impl::Held();
  auto it = std::find(held.rbegin(), held.rend(), lock);
  if (it != held.rend()) held.erase(std::next(it).base());
}

size_t LockRegistry::EdgeCount() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> guard(state.mu);
  size_t edges = 0;
  for (const auto& [lock, node] : state.graph) edges += node.held_before.size();
  return edges;
}

void LockRegistry::Reset() {
  Impl& state = impl();
  std::lock_guard<std::mutex> guard(state.mu);
  state.graph.clear();
  Impl::Held().clear();
}

}  // namespace chk
}  // namespace marlin

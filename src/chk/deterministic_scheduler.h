#ifndef MARLIN_CHK_DETERMINISTIC_SCHEDULER_H_
#define MARLIN_CHK_DETERMINISTIC_SCHEDULER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "actor/dispatcher.h"
#include "chk/fingerprint.h"
#include "util/rng.h"

namespace marlin {
namespace chk {

/// One scheduling decision: with `ready` tasks runnable, the task at index
/// `chosen` (labelled `label`) was picked to run next.
struct SchedDecision {
  uint32_t chosen = 0;
  uint32_t ready = 0;
  std::string label;
};

/// The full schedule of a run: the sequence of decisions, reproducible from
/// the seed and replayable verbatim.
using ScheduleTrace = std::vector<SchedDecision>;

/// A single-threaded, seed-driven model-checking dispatcher in the spirit
/// of CHESS/loom: a drop-in Dispatcher for ActorSystem that serialises all
/// mailbox drains onto the caller's thread and, at every step, picks the
/// next runnable task uniformly at random from the seeded PRNG. Distinct
/// seeds explore distinct message interleavings; the same seed always
/// yields the identical schedule, and a recorded trace can be replayed
/// decision-for-decision to reproduce a failing run.
///
/// Usage:
///   auto sched = std::make_shared<chk::DeterministicScheduler>(seed);
///   ActorSystemConfig cfg;
///   cfg.dispatcher = sched;
///   cfg.throughput = 1;  // one message per drain → message-level schedules
///   ActorSystem system(cfg);
///   ... Tell(...) from the test thread ...
///   system.AwaitQuiescence();  // drains deterministically on this thread
///   uint64_t fingerprint = sched->TraceHash();
///
/// Tasks only run inside Quiesce()/Shutdown() on the calling thread, so a
/// blocking Ask().get() before AwaitQuiescence() would deadlock — resolve
/// futures after quiescence instead.
class DeterministicScheduler : public Dispatcher {
 public:
  explicit DeterministicScheduler(uint64_t seed);

  /// Replay constructor: decisions follow `replay` while it lasts, then
  /// fall back to the seeded PRNG (for schedules that run longer than the
  /// recording, e.g. after a partial fix).
  DeterministicScheduler(uint64_t seed, ScheduleTrace replay);

  bool Submit(DispatchTask task) override;
  void Quiesce() override;
  bool cooperative() const override { return true; }
  void Shutdown() override;
  size_t QueueDepth() const override;

  uint64_t seed() const { return seed_; }

  /// The schedule executed so far (copy; safe to keep after destruction).
  /// Empty when recording is off.
  ScheduleTrace Trace() const;

  /// Order-sensitive FNV-1a fingerprint of the schedule — two runs made
  /// the same decisions iff their hashes match. Maintained incrementally,
  /// so it stays available with recording off.
  uint64_t TraceHash() const;

  /// Decisions taken so far.
  size_t StepCount() const;

  /// Stops storing per-decision SchedDecision entries (each carries the
  /// chosen task's label string). Long runs — millions of mailbox drains,
  /// e.g. `fig6 --verify`'s full-pipeline replays — only need the
  /// fingerprint; the stored schedule is for replay debugging at test
  /// scale. Call before the first Quiesce(); already-recorded decisions
  /// are dropped.
  void DisableTraceRecording();

 private:
  // Runs queued tasks on the calling thread until none remain. The
  // executing task may Submit more; those join the ready set.
  void DrainLoop();

  const uint64_t seed_;
  Rng rng_;

  mutable std::mutex mu_;
  std::vector<DispatchTask> ready_;
  ScheduleTrace trace_;
  Fingerprint trace_fp_;
  size_t steps_ = 0;
  bool record_trace_ = true;
  ScheduleTrace replay_;
  size_t replay_pos_ = 0;
  bool shutdown_ = false;
  bool draining_ = false;
  std::thread::id draining_thread_;
};

}  // namespace chk
}  // namespace marlin

#endif  // MARLIN_CHK_DETERMINISTIC_SCHEDULER_H_

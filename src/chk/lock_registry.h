#ifndef MARLIN_CHK_LOCK_REGISTRY_H_
#define MARLIN_CHK_LOCK_REGISTRY_H_

#include <mutex>
#include <string>

namespace marlin {
namespace chk {

/// Lock-order registry: detects *potential* deadlock cycles at acquisition
/// time, before any thread ever blocks.
///
/// Every instrumented acquisition records held-before edges (each lock the
/// thread already holds → the lock being acquired) into a global directed
/// graph. If the new edge closes a cycle — some other code path acquired
/// these locks in the opposite order — a ViolationKind::kLockOrder is
/// reported immediately, even though this particular run did not deadlock.
/// This is the classic lock-order-graph half of a GoodLock/TSan-deadlock
/// style detector, cheap enough for debug builds.
class LockRegistry {
 public:
  static LockRegistry& Global();

  /// Records that the calling thread acquired `lock` (named `name` for
  /// diagnostics) while holding its current lock set, adding held-before
  /// edges and reporting a violation when an edge closes a cycle.
  void NoteAcquired(const void* lock, const char* name);

  /// Records that the calling thread released `lock`.
  void NoteReleased(const void* lock);

  /// Number of distinct held-before edges recorded so far.
  size_t EdgeCount() const;

  /// Forgets all edges and the calling thread's held set (test isolation).
  void Reset();

 private:
  LockRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// A named std::mutex whose lock/unlock feed the global LockRegistry.
/// BasicLockable, so it works with std::lock_guard / std::unique_lock.
/// Instrumentation is always compiled (the class lives in tests and checked
/// builds; production code keeps using std::mutex).
class OrderedMutex {
 public:
  explicit OrderedMutex(const char* name) : name_(name) {}

  void lock() {
    mu_.lock();
    LockRegistry::Global().NoteAcquired(this, name_);
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    LockRegistry::Global().NoteAcquired(this, name_);
    return true;
  }

  void unlock() {
    LockRegistry::Global().NoteReleased(this);
    mu_.unlock();
  }

  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const char* name_;
};

}  // namespace chk
}  // namespace marlin

#endif  // MARLIN_CHK_LOCK_REGISTRY_H_

#include "chk/violation.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace marlin {
namespace chk {
namespace {

void DefaultHandler(ViolationKind kind, const std::string& message) {
  MARLIN_LOG(ERROR) << "chk violation [" << ViolationKindName(kind)
                    << "]: " << message;
  std::abort();
}

std::atomic<ViolationHandler> g_handler{&DefaultHandler};
std::atomic<int64_t> g_count{0};

// Backing store for the active ScopedViolationRecorder. Guarded by its own
// mutex: violations can surface from any thread (dispatcher workers, test
// helper threads).
std::mutex g_recorder_mu;
bool g_recording = false;

std::vector<std::pair<ViolationKind, std::string>>& RecordedStore() {
  static std::vector<std::pair<ViolationKind, std::string>> store;
  return store;
}

void RecordingHandler(ViolationKind kind, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_recorder_mu);
  if (g_recording) RecordedStore().emplace_back(kind, message);
}

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kOwnership:
      return "ownership";
    case ViolationKind::kLockOrder:
      return "lock-order";
    case ViolationKind::kInvariant:
      return "invariant";
  }
  return "unknown";
}

ViolationHandler ExchangeViolationHandler(ViolationHandler handler) {
  if (handler == nullptr) handler = &DefaultHandler;
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void ReportViolation(ViolationKind kind, const std::string& message) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_handler.load(std::memory_order_acquire)(kind, message);
}

int64_t ViolationCount() { return g_count.load(std::memory_order_relaxed); }

void ResetViolationCount() { g_count.store(0, std::memory_order_relaxed); }

ScopedViolationRecorder::ScopedViolationRecorder() {
  {
    std::lock_guard<std::mutex> lock(g_recorder_mu);
    RecordedStore().clear();
    g_recording = true;
  }
  previous_ = ExchangeViolationHandler(&RecordingHandler);
}

ScopedViolationRecorder::~ScopedViolationRecorder() {
  ExchangeViolationHandler(previous_);
  std::lock_guard<std::mutex> lock(g_recorder_mu);
  g_recording = false;
  RecordedStore().clear();
}

int64_t ScopedViolationRecorder::count() const {
  std::lock_guard<std::mutex> lock(g_recorder_mu);
  return static_cast<int64_t>(RecordedStore().size());
}

std::string ScopedViolationRecorder::message(size_t i) const {
  std::lock_guard<std::mutex> lock(g_recorder_mu);
  if (i >= RecordedStore().size()) return "";
  return RecordedStore()[i].second;
}

ViolationKind ScopedViolationRecorder::kind(size_t i) const {
  std::lock_guard<std::mutex> lock(g_recorder_mu);
  if (i >= RecordedStore().size()) return ViolationKind::kInvariant;
  return RecordedStore()[i].first;
}

}  // namespace chk
}  // namespace marlin

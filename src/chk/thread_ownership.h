#ifndef MARLIN_CHK_THREAD_OWNERSHIP_H_
#define MARLIN_CHK_THREAD_OWNERSHIP_H_

#include <cstdint>

namespace marlin {
namespace chk {

/// Actor-context thread-ownership checker.
///
/// The actor model's isolation guarantee — actor state is only ever touched
/// by the thread currently draining that actor's mailbox — is tracked here
/// as a map from actor id to owning thread. The runtime brackets every
/// Receive/OnStart/OnRestart/OnStop with Enter/Exit (checked builds only);
/// actor code and tests call AssertOwned wherever state is read or written.
/// A mismatch (wrong thread, or no drain in progress) reports a
/// ViolationKind::kOwnership through the violation handler.
class ThreadOwnership {
 public:
  /// Marks the calling thread as owner of `actor_id`. Reports a violation
  /// if another thread already owns it (the runtime should make that
  /// impossible; the check guards the runtime itself).
  static void Enter(uint64_t actor_id);

  /// Releases ownership of `actor_id` by the calling thread.
  static void Exit(uint64_t actor_id);

  /// Asserts the calling thread currently owns `actor_id`; `what` names the
  /// touched state for the violation message.
  static void AssertOwned(uint64_t actor_id, const char* what);

  /// True when the calling thread owns `actor_id` (no reporting).
  static bool IsOwnedByCurrentThread(uint64_t actor_id);

  /// Drops all ownership records (test isolation helper).
  static void Reset();
};

/// RAII Enter/Exit bracket.
class OwnershipScope {
 public:
  explicit OwnershipScope(uint64_t actor_id) : actor_id_(actor_id) {
    ThreadOwnership::Enter(actor_id_);
  }
  ~OwnershipScope() { ThreadOwnership::Exit(actor_id_); }

  OwnershipScope(const OwnershipScope&) = delete;
  OwnershipScope& operator=(const OwnershipScope&) = delete;

 private:
  uint64_t actor_id_;
};

}  // namespace chk
}  // namespace marlin

#endif  // MARLIN_CHK_THREAD_OWNERSHIP_H_

#include "chk/deterministic_scheduler.h"

#include <utility>

#include "chk/fingerprint.h"

namespace marlin {
namespace chk {

DeterministicScheduler::DeterministicScheduler(uint64_t seed)
    : seed_(seed), rng_(seed) {}

DeterministicScheduler::DeterministicScheduler(uint64_t seed,
                                               ScheduleTrace replay)
    : seed_(seed), rng_(seed), replay_(std::move(replay)) {}

bool DeterministicScheduler::Submit(DispatchTask task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return false;
  ready_.push_back(std::move(task));
  return true;
}

void DeterministicScheduler::Quiesce() { DrainLoop(); }

void DeterministicScheduler::Shutdown() {
  DrainLoop();
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  ready_.clear();
}

size_t DeterministicScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_.size();
}

ScheduleTrace DeterministicScheduler::Trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

uint64_t DeterministicScheduler::TraceHash() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_fp_.Value();
}

size_t DeterministicScheduler::StepCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_;
}

void DeterministicScheduler::DisableTraceRecording() {
  std::lock_guard<std::mutex> lock(mu_);
  record_trace_ = false;
  trace_.clear();
  trace_.shrink_to_fit();
}

void DeterministicScheduler::DrainLoop() {
  {
    // Re-entrant drain (a task calling AwaitQuiescence) would recurse into
    // its own scheduler; let the outer loop finish the queue instead.
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ && draining_thread_ == std::this_thread::get_id()) return;
    draining_ = true;
    draining_thread_ = std::this_thread::get_id();
  }
  for (;;) {
    DispatchTask task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (ready_.empty()) {
        draining_ = false;
        return;
      }
      const uint32_t ready = static_cast<uint32_t>(ready_.size());
      uint32_t pick;
      if (replay_pos_ < replay_.size()) {
        pick = replay_[replay_pos_].chosen;
        if (pick >= ready) pick = ready - 1;  // diverged run: stay in range
        ++replay_pos_;
      } else {
        pick = static_cast<uint32_t>(rng_.UniformInt(ready));
      }
      trace_fp_.MixU64(pick);
      trace_fp_.MixU64(ready);
      trace_fp_.MixBytes(ready_[pick].label);
      ++steps_;
      if (record_trace_) {
        trace_.push_back(SchedDecision{pick, ready, ready_[pick].label});
      }
      task = std::move(ready_[pick]);
      ready_.erase(ready_.begin() + pick);
    }
    task.fn();
  }
}

}  // namespace chk
}  // namespace marlin

#ifndef MARLIN_CHK_FINGERPRINT_H_
#define MARLIN_CHK_FINGERPRINT_H_

#include <cstdint>
#include <string_view>

/// Incremental FNV-1a fingerprinting, shared by trace hashers across the
/// checking layers (the deterministic scheduler's schedule trace, the fault
/// injector's decision trace). Two runs with the same fingerprint made the
/// same decisions in the same order — the property "same seed → same trace
/// hash" hangs off these few lines, so there is exactly one copy of them.

namespace marlin {
namespace chk {

class Fingerprint {
 public:
  /// FNV-1a 64-bit offset basis.
  static constexpr uint64_t kOffsetBasis = 0xCBF29CE484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001B3ULL;

  void MixByte(uint8_t byte) {
    hash_ ^= byte;
    hash_ *= kPrime;
  }

  void MixU64(uint64_t value) {
    for (int i = 0; i < 8; ++i) MixByte(static_cast<uint8_t>(value >> (i * 8)));
  }

  void MixBytes(std::string_view bytes) {
    for (char c : bytes) MixByte(static_cast<uint8_t>(c));
  }

  uint64_t Value() const { return hash_; }

 private:
  uint64_t hash_ = kOffsetBasis;
};

/// One-shot FNV-1a over a byte string. Stable across platforms; used to key
/// per-injection-point RNG streams so adding a point never shifts another
/// point's stream.
inline uint64_t Fnv1a(std::string_view bytes) {
  Fingerprint fp;
  fp.MixBytes(bytes);
  return fp.Value();
}

}  // namespace chk
}  // namespace marlin

#endif  // MARLIN_CHK_FINGERPRINT_H_

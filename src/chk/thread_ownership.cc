#include "chk/thread_ownership.h"

#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "chk/violation.h"

namespace marlin {
namespace chk {
namespace {

struct Owner {
  std::thread::id thread;
  int depth = 0;  // Enter/Exit nest (Receive → supervision → OnStop)
};

struct OwnershipTable {
  std::mutex mu;
  std::unordered_map<uint64_t, Owner> owner;
};

OwnershipTable& Table() {
  static OwnershipTable table;
  return table;
}

std::string Describe(std::thread::id id) {
  std::ostringstream os;
  os << id;
  return os.str();
}

}  // namespace

void ThreadOwnership::Enter(uint64_t actor_id) {
  OwnershipTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mu);
  Owner& owner = table.owner[actor_id];
  if (owner.depth > 0 && owner.thread != std::this_thread::get_id()) {
    ReportViolation(
        ViolationKind::kOwnership,
        "actor " + std::to_string(actor_id) + " entered by thread " +
            Describe(std::this_thread::get_id()) + " while owned by thread " +
            Describe(owner.thread) + " (two concurrent mailbox drains)");
    owner.depth = 0;
  }
  owner.thread = std::this_thread::get_id();
  ++owner.depth;
}

void ThreadOwnership::Exit(uint64_t actor_id) {
  OwnershipTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.owner.find(actor_id);
  if (it != table.owner.end() &&
      it->second.thread == std::this_thread::get_id()) {
    if (--it->second.depth <= 0) table.owner.erase(it);
  }
}

void ThreadOwnership::AssertOwned(uint64_t actor_id, const char* what) {
  OwnershipTable& table = Table();
  std::thread::id owner;
  bool owned = false;
  {
    std::lock_guard<std::mutex> lock(table.mu);
    auto it = table.owner.find(actor_id);
    if (it != table.owner.end()) {
      owned = true;
      owner = it->second.thread;
    }
  }
  if (!owned) {
    ReportViolation(ViolationKind::kOwnership,
                    std::string(what) + " of actor " +
                        std::to_string(actor_id) +
                        " touched outside any mailbox drain (thread " +
                        Describe(std::this_thread::get_id()) + ")");
    return;
  }
  if (owner != std::this_thread::get_id()) {
    ReportViolation(ViolationKind::kOwnership,
                    std::string(what) + " of actor " +
                        std::to_string(actor_id) + " touched from thread " +
                        Describe(std::this_thread::get_id()) +
                        " while its mailbox runs on thread " +
                        Describe(owner));
  }
}

bool ThreadOwnership::IsOwnedByCurrentThread(uint64_t actor_id) {
  OwnershipTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.owner.find(actor_id);
  return it != table.owner.end() &&
         it->second.thread == std::this_thread::get_id();
}

void ThreadOwnership::Reset() {
  OwnershipTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mu);
  table.owner.clear();
}

}  // namespace chk
}  // namespace marlin

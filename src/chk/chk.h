#ifndef MARLIN_CHK_CHK_H_
#define MARLIN_CHK_CHK_H_

/// Umbrella header for Marlin's debug-build correctness layer.
///
/// The components (deterministic scheduler, thread-ownership checker,
/// lock-order registry, violation reporting) are ordinary classes usable in
/// any build; what `-DMARLIN_CHECKED=ON` controls is (a) the runtime hooks
/// compiled into ActorSystem / Broker / KvStore hot paths and (b) the
/// MARLIN_CHK_INVARIANT assertions below. Release builds pay nothing.

#include "chk/deterministic_scheduler.h"
#include "chk/fingerprint.h"
#include "chk/lock_registry.h"
#include "chk/thread_ownership.h"
#include "chk/violation.h"

/// Asserts a runtime invariant in checked builds; compiles to nothing
/// otherwise. Violations route through the chk violation handler (abort by
/// default, recordable in tests) rather than assert(), so a checked test
/// run can observe them without dying.
#if defined(MARLIN_CHECKED) && MARLIN_CHECKED
#define MARLIN_CHK_INVARIANT(cond, msg)                                 \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::marlin::chk::ReportViolation(                                   \
          ::marlin::chk::ViolationKind::kInvariant,                     \
          std::string("invariant '" #cond "' failed: ") + (msg));       \
    }                                                                   \
  } while (0)
#else
#define MARLIN_CHK_INVARIANT(cond, msg) \
  do {                                  \
  } while (0)
#endif

/// Brackets the enclosing scope as the mailbox-drain context of `actor_id`
/// for the thread-ownership checker (checked builds; no-op otherwise).
#if defined(MARLIN_CHECKED) && MARLIN_CHECKED
#define MARLIN_CHK_OWNERSHIP_SCOPE(actor_id) \
  ::marlin::chk::OwnershipScope marlin_chk_ownership_scope_(actor_id)
#else
#define MARLIN_CHK_OWNERSHIP_SCOPE(actor_id) ((void)(actor_id))
#endif

#endif  // MARLIN_CHK_CHK_H_

#ifndef MARLIN_FAULT_FAULT_PLAN_H_
#define MARLIN_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>

#include "util/clock.h"

namespace marlin {
namespace fault {

/// The complete description of one chaos run: a seed plus bounded fault
/// rates. Everything the injector does is a pure function of this plan and
/// the order of injection-point hits, so a failing run is reproduced by
/// re-running with the same plan (in practice: the same seed —
/// `FaultPlan::FromSeed` derives every rate from it deterministically).
struct FaultPlan {
  uint64_t seed = 1;

  // -- Per-frame message faults (applied by ChaosHub / fault points) ------
  /// Probability that a frame is silently lost after being accepted.
  double drop_rate = 0.05;
  /// Probability that a frame is parked and delivered 1..max_delay_ticks
  /// chaos ticks later (delay doubles as reordering: delayed frames overtake
  /// nothing, but everything sent meanwhile overtakes them).
  double delay_rate = 0.10;
  int max_delay_ticks = 3;
  /// Probability that a *control* frame (heartbeat/ack/handoff) is
  /// delivered twice. Envelopes are never duplicated: TCP does not
  /// duplicate within a connection, and the shard layer's exactly-once
  /// invariant treats a duplicated (origin, seq) as the bug it would be.
  double duplicate_rate = 0.05;

  // -- Link- and node-level faults (driven once per chaos tick) -----------
  /// Per-link-per-tick probability of cutting the link for
  /// 1..max_partition_ticks ticks (a transient partition / connection
  /// reset; frames over a down link are dropped).
  double partition_rate = 0.02;
  int max_partition_ticks = 4;
  /// Per-node-per-tick probability that the harness crashes the node and
  /// restarts it a few ticks later (the driver owns the actual teardown).
  double crash_rate = 0.0;
  int max_crash_ticks = 5;

  // -- Clock skew ---------------------------------------------------------
  /// Each node's protocol clock is offset by a fixed skew drawn uniformly
  /// from [-max_clock_skew, +max_clock_skew] at the start of the run.
  TimeMicros max_clock_skew = 0;

  /// Derives a randomized-but-bounded plan from a single seed: every rate
  /// is drawn from a fixed range so a 50-seed sweep explores light drizzle
  /// through heavy weather, all reproducible from the seed alone.
  static FaultPlan FromSeed(uint64_t seed);

  /// One-line human-readable summary (logged with failing seeds).
  std::string Describe() const;
};

}  // namespace fault
}  // namespace marlin

#endif  // MARLIN_FAULT_FAULT_PLAN_H_

#ifndef MARLIN_FAULT_CHAOS_CLOCK_H_
#define MARLIN_FAULT_CHAOS_CLOCK_H_

#include <atomic>

#include "util/clock.h"

namespace marlin {
namespace fault {

/// A clock that reports its base clock's time plus a skew. Each cluster
/// node in a chaos run reads protocol time through its own ChaosClock
/// (initial skew drawn via `FaultInjector::ClockSkewFor`), so heartbeat
/// timestamps and failure-detector thresholds experience the bounded
/// inter-node disagreement real deployments have.
///
/// Skew is piecewise-constant, not drifting: it only changes when a
/// virtual-time skew event (sim/des) calls SetSkew — the chaos harness
/// posts those during the fault window and freezes skew for the
/// heal/convergence phases, so membership-evidence ordering is exercised
/// without making convergence assertions time-dependent. SetSkew/Now are
/// atomic: the event loop retunes skew while node threads read protocol
/// time.
class ChaosClock : public Clock {
 public:
  ChaosClock(Clock* base, TimeMicros skew) : base_(base), skew_(skew) {}

  TimeMicros Now() const override {
    return base_->Now() + skew_.load(std::memory_order_acquire);
  }

  TimeMicros skew() const { return skew_.load(std::memory_order_acquire); }

  /// Retunes the skew (virtual-time clock-skew events). The new value
  /// applies to the next Now() read.
  void SetSkew(TimeMicros skew) {
    skew_.store(skew, std::memory_order_release);
  }

 private:
  Clock* base_;  // not owned
  std::atomic<TimeMicros> skew_;
};

}  // namespace fault
}  // namespace marlin

#endif  // MARLIN_FAULT_CHAOS_CLOCK_H_

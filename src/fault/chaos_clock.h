#ifndef MARLIN_FAULT_CHAOS_CLOCK_H_
#define MARLIN_FAULT_CHAOS_CLOCK_H_

#include "util/clock.h"

namespace marlin {
namespace fault {

/// A clock that reports its base clock's time plus a fixed skew. Each
/// cluster node in a chaos run reads protocol time through its own
/// ChaosClock (skew drawn via `FaultInjector::ClockSkewFor`), so heartbeat
/// timestamps and failure-detector thresholds experience the bounded
/// inter-node disagreement real deployments have.
///
/// Skew is fixed, not drifting: membership evidence ordering only cares
/// about offsets between sender clocks, and a constant offset already
/// exercises the stale-evidence / reordering paths without making test
/// assertions time-dependent.
class ChaosClock : public Clock {
 public:
  ChaosClock(Clock* base, TimeMicros skew) : base_(base), skew_(skew) {}

  TimeMicros Now() const override { return base_->Now() + skew_; }

  TimeMicros skew() const { return skew_; }

 private:
  Clock* base_;  // not owned
  TimeMicros skew_;
};

}  // namespace fault
}  // namespace marlin

#endif  // MARLIN_FAULT_CHAOS_CLOCK_H_

#include "fault/chaos_hub.h"

#include <string>

namespace marlin {
namespace fault {

namespace {

std::string LinkPoint(const char* prefix, cluster::NodeId a,
                      cluster::NodeId b) {
  return std::string(prefix) + "." + std::to_string(a) + "-" +
         std::to_string(b);
}

}  // namespace

std::unique_ptr<cluster::Transport> ChaosHub::CreateTransport() {
  return std::make_unique<ChaosTransport>(this);
}

void ChaosHub::Register(cluster::NodeId node,
                        cluster::Transport::FrameHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[node] = std::move(handler);
}

void ChaosHub::Unregister(cluster::NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(node);
}

bool ChaosHub::LinkDownLocked(cluster::NodeId a, cluster::NodeId b) const {
  return down_links_.count(Normalize(a, b)) > 0;
}

bool ChaosHub::LinkUp(cluster::NodeId a, cluster::NodeId b) const {
  std::lock_guard<std::mutex> lock(mu_);
  return !LinkDownLocked(a, b);
}

void ChaosHub::SetLinkUp(cluster::NodeId a, cluster::NodeId b, bool up) {
  std::lock_guard<std::mutex> lock(mu_);
  if (up) {
    down_links_.erase(Normalize(a, b));
  } else {
    down_links_[Normalize(a, b)] = 0;  // admin cut: never auto-heals
  }
}

void ChaosHub::SetChaosEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  chaos_enabled_ = enabled;
}

void ChaosHub::HealAll() {
  std::vector<DelayedFrame> to_deliver;
  {
    std::lock_guard<std::mutex> lock(mu_);
    down_links_.clear();
    to_deliver.assign(delayed_frames_.begin(), delayed_frames_.end());
    delayed_frames_.clear();
  }
  for (const DelayedFrame& d : to_deliver) Dispatch(d.to, d.frame);
}

void ChaosHub::Tick() {
  std::vector<DelayedFrame> to_deliver;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++tick_;
    // Heal partitions whose sentence is served (admin cuts carry tick 0).
    for (auto it = down_links_.begin(); it != down_links_.end();) {
      if (it->second != 0 && it->second <= tick_) {
        it = down_links_.erase(it);
      } else {
        ++it;
      }
    }
    // Roll for new transient partitions across every live node pair.
    if (chaos_enabled_ && injector_ != nullptr) {
      const FaultPlan& plan = injector_->plan();
      for (auto a = handlers_.begin(); a != handlers_.end(); ++a) {
        auto b = a;
        for (++b; b != handlers_.end(); ++b) {
          const LinkKey key = Normalize(a->first, b->first);
          if (down_links_.count(key) > 0) continue;
          const std::string point =
              LinkPoint("hub.partition", key.first, key.second);
          if (injector_->Chance(point, plan.partition_rate)) {
            const uint64_t ticks =
                1 + injector_->Pick(
                        point, static_cast<uint64_t>(plan.max_partition_ticks));
            down_links_[key] = tick_ + ticks;
            ++partitions_count_;
          }
        }
      }
    }
    // Release matured delayed frames in send order.
    while (!delayed_frames_.empty() &&
           delayed_frames_.front().release_tick <= tick_) {
      to_deliver.push_back(delayed_frames_.front());
      delayed_frames_.pop_front();
    }
  }
  for (const DelayedFrame& d : to_deliver) Dispatch(d.to, d.frame);
}

uint64_t ChaosHub::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t ChaosHub::delayed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delayed_count_;
}

uint64_t ChaosHub::duplicated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicated_;
}

uint64_t ChaosHub::partitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_count_;
}

bool ChaosHub::Dispatch(cluster::NodeId to, const cluster::Frame& frame) {
  cluster::Transport::FrameHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(to);
    if (it == handlers_.end()) return false;
    handler = it->second;
  }
  handler(frame);
  return true;
}

bool ChaosHub::Deliver(cluster::NodeId from, cluster::NodeId to,
                       const cluster::Frame& frame) {
  FaultDecision decision;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (handlers_.find(to) == handlers_.end()) return false;
    if (LinkDownLocked(from, to)) {
      // The sender's kernel accepted the bytes; the partition ate them.
      ++dropped_;
      return true;
    }
    if (chaos_enabled_ && injector_ != nullptr) {
      decision = injector_->DecideFrame(
          LinkPoint("hub.frame", from, to),
          /*allow_duplicate=*/frame.type != cluster::FrameType::kEnvelope);
    }
    switch (decision.action) {
      case FaultAction::kDrop:
      case FaultAction::kReset:
        ++dropped_;
        return true;
      case FaultAction::kDelay:
        ++delayed_count_;
        delayed_frames_.push_back(DelayedFrame{
            tick_ + static_cast<uint64_t>(decision.delay_ticks), to, frame});
        return true;
      case FaultAction::kDuplicate:
        ++duplicated_;
        break;
      case FaultAction::kNone:
        break;
    }
  }
  const int copies = decision.action == FaultAction::kDuplicate ? 2 : 1;
  bool delivered = true;
  for (int i = 0; i < copies; ++i) delivered = Dispatch(to, frame) && delivered;
  return delivered;
}

Status ChaosTransport::Start(cluster::NodeId self, FrameHandler handler) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_)
      return Status::FailedPrecondition("chaos transport already started");
    self_ = self;
    running_ = true;
  }
  hub_->Register(self, std::move(handler));
  return Status::Ok();
}

// ChaosTransport *is* the injection mechanism: drops/delays/duplicates come
// from the FaultPlan via the hub, so an additional MARLIN_FAULT_POINT here
// would double-inject.
bool ChaosTransport::Send(cluster::NodeId to, const cluster::Frame& frame) {  // chk-lint: allow(fault-point)
  cluster::NodeId self;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return false;
    self = self_;
  }
  return hub_->Deliver(self, to, frame);
}

void ChaosTransport::Shutdown() {
  cluster::NodeId self;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    self = self_;
  }
  hub_->Unregister(self);
}

}  // namespace fault
}  // namespace marlin

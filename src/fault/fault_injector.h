#ifndef MARLIN_FAULT_FAULT_INJECTOR_H_
#define MARLIN_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_plan.h"
#include "util/clock.h"
#include "util/rng.h"

namespace marlin {
namespace fault {

/// What a fault point does to the operation it guards.
enum class FaultAction : uint8_t {
  kNone = 0,       // proceed normally
  kDrop = 1,       // silently lose the message / skip the operation
  kDelay = 2,      // park and retry `delay_ticks` chaos ticks later
  kDuplicate = 3,  // perform the operation twice
  kReset = 4,      // sever the connection / fail the operation loudly
};

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  int delay_ticks = 0;  // meaningful only for kDelay
};

/// Seed-driven decision oracle. Every queriable point gets its own RNG
/// stream keyed by `plan.seed ^ fnv1a(point)`, so the decision sequence at
/// one point is independent of how often any other point is hit — adding an
/// injection point to the codebase does not reshuffle faults elsewhere.
/// Every decision is appended to a trace; `TraceHash()` fingerprints it so
/// replays can assert "same seed → same faults in the same order".
///
/// Thread-safe: transports may consult fault points from sender threads.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// True with probability `p`, drawn from `point`'s stream. Recorded.
  bool Chance(std::string_view point, double p);

  /// Uniform integer in [0, n), n >= 1, from `point`'s stream. Recorded.
  uint64_t Pick(std::string_view point, uint64_t n);

  /// Frame-level fault decision honoring the plan's drop/delay/duplicate
  /// rates. `allow_duplicate` is false for envelope frames: TCP never
  /// duplicates within a connection and the shard layer's exactly-once
  /// dedup invariant would (correctly) flag the duplicate as a bug.
  FaultDecision DecideFrame(std::string_view point, bool allow_duplicate);

  /// Fixed per-node protocol-clock skew in [-max_clock_skew, +max_clock_skew].
  /// A pure function of (seed, node) — independent of query order, so it is
  /// not part of the decision trace.
  TimeMicros ClockSkewFor(uint32_t node) const;

  /// Per-node skew *schedule* for virtual-time chaos: the skew a node's
  /// ChaosClock is retuned to by its `step`-th skew event (step 0 ==
  /// ClockSkewFor — the boot value). Also a pure function of
  /// (seed, node, step) and also outside the decision trace, so the event
  /// loop can post retunes at any virtual cadence without reshuffling the
  /// frame-fault streams.
  TimeMicros ClockSkewAt(uint32_t node, uint32_t step) const;

  /// FNV-1a fingerprint of the decision trace (point, kind, outcome).
  uint64_t TraceHash() const;
  size_t DecisionCount() const;
  /// Times `point` drew from its stream (0 if never hit).
  uint64_t HitCount(std::string_view point) const;
  /// Decisions at `point` that came back non-kNone / true.
  uint64_t FiredCount(std::string_view point) const;

 private:
  struct PointStream {
    explicit PointStream(uint64_t seed) : rng(seed) {}
    Rng rng;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  PointStream& StreamLocked(std::string_view point);
  void RecordLocked(std::string_view point, uint8_t kind, uint64_t outcome);

  const FaultPlan plan_;
  mutable std::mutex mu_;
  // Keyed by point name; values are stable (unique_ptr) so references
  // survive rehashing.
  std::map<std::string, std::unique_ptr<PointStream>, std::less<>> streams_;
  struct Decision {
    uint64_t point_hash;
    uint8_t kind;
    uint64_t outcome;
  };
  std::vector<Decision> trace_;
};

/// Process-wide injector consulted by MARLIN_FAULT_POINT sites compiled
/// with -DMARLIN_FAULT=ON. Null (all points no-op) unless a harness
/// installs one. Returns the previous injector.
FaultInjector* ExchangeProcessInjector(FaultInjector* injector);
FaultInjector* ProcessInjector();

/// RAII installer for test harnesses.
class ScopedProcessInjector {
 public:
  explicit ScopedProcessInjector(FaultInjector* injector)
      : previous_(ExchangeProcessInjector(injector)) {}
  ~ScopedProcessInjector() { ExchangeProcessInjector(previous_); }
  ScopedProcessInjector(const ScopedProcessInjector&) = delete;
  ScopedProcessInjector& operator=(const ScopedProcessInjector&) = delete;

 private:
  FaultInjector* previous_;
};

/// Implementation behind MARLIN_FAULT_POINT: asks the process injector for
/// a frame decision at `point` (duplication disallowed — in-line code paths
/// have no way to honor it safely). kNone when no injector is installed.
FaultAction PointAction(std::string_view point);

}  // namespace fault
}  // namespace marlin

/// Queries the process fault injector at a named point; yields a
/// `::marlin::fault::FaultAction`. Typical use:
///
///   if (MARLIN_FAULT_POINT("tcp.send") != fault::FaultAction::kNone) {
///     ... drop / fail the operation ...
///   }
///
/// Compiles to the constant kNone unless -DMARLIN_FAULT=ON, so release
/// binaries carry no branch and no string.
#if defined(MARLIN_FAULT) && MARLIN_FAULT
#define MARLIN_FAULT_POINT(name) (::marlin::fault::PointAction(name))
#else
#define MARLIN_FAULT_POINT(name) (::marlin::fault::FaultAction::kNone)
#endif

#endif  // MARLIN_FAULT_FAULT_INJECTOR_H_

#ifndef MARLIN_FAULT_CHAOS_HUB_H_
#define MARLIN_FAULT_CHAOS_HUB_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "cluster/frame.h"
#include "cluster/transport.h"
#include "fault/fault_injector.h"

namespace marlin {
namespace fault {

/// A drop-in replacement for cluster::InProcessHub whose links misbehave on
/// purpose. Every frame crossing the hub consults the FaultInjector:
///
///   - kDrop       frame accepted, then lost (Send still returns true —
///                 exactly how a TCP send into a doomed socket behaves)
///   - kDelay      frame parked for 1..max_delay_ticks chaos ticks; frames
///                 sent meanwhile overtake it (reordering)
///   - kDuplicate  control frames (heartbeat/ack/handoff) delivered twice;
///                 envelopes are never duplicated (see FaultPlan)
///
/// Once per `Tick()` each live link rolls for a transient partition
/// (both directions cut for 1..max_partition_ticks ticks, auto-healing).
/// All randomness comes from the injector's per-point streams, so one seed
/// reproduces the identical weather.
///
/// Thread-safety matches InProcessHub: delivery copies the handler out
/// under the lock and invokes it unlocked. The hub must outlive its
/// transports.
class ChaosHub {
 public:
  explicit ChaosHub(FaultInjector* injector) : injector_(injector) {}

  /// Makes a transport for `node`; wire it into ClusterNodeConfig.
  std::unique_ptr<cluster::Transport> CreateTransport();

  /// Advances chaos time one tick: heals expired partitions, rolls new
  /// ones, and delivers matured delayed frames (in send order).
  void Tick();

  /// Turns fault injection off (heal/convergence phase). Delayed frames
  /// still mature via Tick(); existing partitions still heal on schedule
  /// (or immediately via HealAll).
  void SetChaosEnabled(bool enabled);

  /// Restores every cut link and delivers all parked frames now. Used at
  /// the start of the convergence phase so invariants are checked against
  /// a connected, quiet network.
  void HealAll();

  /// Administratively cuts/restores a link (crash simulation support);
  /// admin-down links never auto-heal.
  void SetLinkUp(cluster::NodeId a, cluster::NodeId b, bool up);

  bool LinkUp(cluster::NodeId a, cluster::NodeId b) const;

  // Observability for soak logs.
  uint64_t dropped() const;
  uint64_t delayed() const;
  uint64_t duplicated() const;
  uint64_t partitions() const;

 private:
  friend class ChaosTransport;
  using LinkKey = std::pair<cluster::NodeId, cluster::NodeId>;

  static LinkKey Normalize(cluster::NodeId a, cluster::NodeId b) {
    return a < b ? LinkKey{a, b} : LinkKey{b, a};
  }

  void Register(cluster::NodeId node, cluster::Transport::FrameHandler handler);
  void Unregister(cluster::NodeId node);
  bool Deliver(cluster::NodeId from, cluster::NodeId to,
               const cluster::Frame& frame);
  /// Invokes `to`'s handler outside the lock; false if unregistered.
  bool Dispatch(cluster::NodeId to, const cluster::Frame& frame);
  bool LinkDownLocked(cluster::NodeId a, cluster::NodeId b) const;

  FaultInjector* injector_;  // not owned
  mutable std::mutex mu_;
  std::map<cluster::NodeId, cluster::Transport::FrameHandler> handlers_;
  bool chaos_enabled_ = true;
  uint64_t tick_ = 0;
  // Chaos partitions heal at their tick; admin cuts (value 0) never do.
  std::map<LinkKey, uint64_t> down_links_;
  struct DelayedFrame {
    uint64_t release_tick;
    cluster::NodeId to;
    cluster::Frame frame;
  };
  std::deque<DelayedFrame> delayed_frames_;
  uint64_t dropped_ = 0;
  uint64_t delayed_count_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t partitions_count_ = 0;
};

/// Transport handed to each virtual node by ChaosHub::CreateTransport.
class ChaosTransport : public cluster::Transport {
 public:
  explicit ChaosTransport(ChaosHub* hub) : hub_(hub) {}
  ~ChaosTransport() override { Shutdown(); }

  Status Start(cluster::NodeId self, FrameHandler handler) override;
  bool Send(cluster::NodeId to, const cluster::Frame& frame) override;
  void Shutdown() override;

 private:
  ChaosHub* hub_;
  std::mutex mu_;
  cluster::NodeId self_ = cluster::kNoNode;
  bool running_ = false;
};

}  // namespace fault
}  // namespace marlin

#endif  // MARLIN_FAULT_CHAOS_HUB_H_

#ifndef MARLIN_FAULT_FAULT_H_
#define MARLIN_FAULT_FAULT_H_

/// Umbrella header for Marlin's deterministic fault-injection layer.
///
/// The layer has two halves:
///   - Harness-driven: a chaos harness builds a `FaultInjector` from a
///     `FaultPlan` seed and wires it into a `ChaosHub` (lossy transport) and
///     `ChaosClock` (skewed clocks). No production code changes; everything
///     is dependency injection through the existing Transport/Clock seams.
///   - In-line points: `MARLIN_FAULT_POINT("name")` sites compiled into
///     production code. They expand to `FaultAction::kNone` (zero cost)
///     unless the build sets -DMARLIN_FAULT=ON *and* a harness installed a
///     process injector, in which case they yield kNone/kDrop/kReset for
///     the guarded operation.
///
/// Both halves draw from per-point RNG streams keyed off one uint64 seed,
/// and every decision lands in a fingerprintable trace: rerunning a failing
/// seed reproduces the identical fault schedule (`FaultInjector::TraceHash`).

#include "fault/chaos_clock.h"
#include "fault/chaos_hub.h"
#include "fault/fault_injector.h"  // also provides MARLIN_FAULT_POINT
#include "fault/fault_plan.h"

#endif  // MARLIN_FAULT_FAULT_H_

#include "fault/fault_plan.h"

#include <cstdio>

#include "util/rng.h"

namespace marlin {
namespace fault {

FaultPlan FromSeedImpl(uint64_t seed) {
  // A dedicated stream decoupled from the injector's decision streams, so
  // adding a plan knob never perturbs the per-point decision sequences of
  // existing seeds more than necessary.
  Rng rng(seed ^ 0x8f1bbcdc5f3c2d4dULL);
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_rate = rng.Uniform(0.0, 0.15);
  plan.delay_rate = rng.Uniform(0.0, 0.25);
  plan.max_delay_ticks = static_cast<int>(rng.UniformInt(1, 4));
  plan.duplicate_rate = rng.Uniform(0.0, 0.15);
  plan.partition_rate = rng.Uniform(0.0, 0.06);
  plan.max_partition_ticks = static_cast<int>(rng.UniformInt(1, 5));
  plan.crash_rate = rng.Uniform(0.0, 0.02);
  plan.max_crash_ticks = static_cast<int>(rng.UniformInt(2, 6));
  // Up to ±half a default heartbeat interval of fixed per-node skew.
  plan.max_clock_skew = static_cast<TimeMicros>(rng.UniformInt(
      static_cast<int64_t>(0), static_cast<int64_t>(100'000)));
  return plan;
}

FaultPlan FaultPlan::FromSeed(uint64_t seed) { return FromSeedImpl(seed); }

std::string FaultPlan::Describe() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "seed=%llu drop=%.3f delay=%.3f(max %d) dup=%.3f "
                "partition=%.3f(max %d) crash=%.3f(max %d) skew=%lldus",
                static_cast<unsigned long long>(seed), drop_rate, delay_rate,
                max_delay_ticks, duplicate_rate, partition_rate,
                max_partition_ticks, crash_rate, max_crash_ticks,
                static_cast<long long>(max_clock_skew));
  return buffer;
}

}  // namespace fault
}  // namespace marlin

#include "fault/fault_injector.h"

#include <atomic>

#include "chk/fingerprint.h"

namespace marlin {
namespace fault {

namespace {
// Trace record kinds (stable values: they feed the trace hash).
constexpr uint8_t kKindChance = 1;
constexpr uint8_t kKindPick = 2;
constexpr uint8_t kKindFrame = 3;
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {}

FaultInjector::PointStream& FaultInjector::StreamLocked(
    std::string_view point) {
  auto it = streams_.find(point);
  if (it == streams_.end()) {
    it = streams_
             .emplace(std::string(point), std::make_unique<PointStream>(
                                              plan_.seed ^ chk::Fnv1a(point)))
             .first;
  }
  return *it->second;
}

void FaultInjector::RecordLocked(std::string_view point, uint8_t kind,
                                 uint64_t outcome) {
  trace_.push_back(Decision{chk::Fnv1a(point), kind, outcome});
}

bool FaultInjector::Chance(std::string_view point, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  PointStream& stream = StreamLocked(point);
  ++stream.hits;
  const bool hit = stream.rng.Bernoulli(p);
  if (hit) ++stream.fired;
  RecordLocked(point, kKindChance, hit ? 1 : 0);
  return hit;
}

uint64_t FaultInjector::Pick(std::string_view point, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  PointStream& stream = StreamLocked(point);
  ++stream.hits;
  const uint64_t value = n <= 1 ? 0 : stream.rng.UniformInt(n);
  RecordLocked(point, kKindPick, value);
  return value;
}

FaultDecision FaultInjector::DecideFrame(std::string_view point,
                                         bool allow_duplicate) {
  std::lock_guard<std::mutex> lock(mu_);
  PointStream& stream = StreamLocked(point);
  ++stream.hits;
  // One uniform draw partitioned into [drop | delay | duplicate | none]
  // bands keeps the stream advancing exactly once per frame regardless of
  // outcome — critical for trace stability.
  const double roll = stream.rng.Uniform(0.0, 1.0);
  FaultDecision decision;
  double band = plan_.drop_rate;
  if (roll < band) {
    decision.action = FaultAction::kDrop;
  } else if (roll < (band += plan_.delay_rate)) {
    decision.action = FaultAction::kDelay;
    decision.delay_ticks =
        1 + static_cast<int>(stream.rng.UniformInt(
                static_cast<uint64_t>(plan_.max_delay_ticks)));
  } else if (allow_duplicate && roll < band + plan_.duplicate_rate) {
    decision.action = FaultAction::kDuplicate;
  }
  if (decision.action != FaultAction::kNone) ++stream.fired;
  RecordLocked(point, kKindFrame,
               (static_cast<uint64_t>(decision.action) << 8) |
                   static_cast<uint64_t>(decision.delay_ticks));
  return decision;
}

TimeMicros FaultInjector::ClockSkewFor(uint32_t node) const {
  if (plan_.max_clock_skew <= 0) return 0;
  Rng rng(plan_.seed ^ chk::Fnv1a("clock-skew") ^
          (0x9E3779B97F4A7C15ULL * (node + 1)));
  return static_cast<TimeMicros>(
      rng.UniformInt(-plan_.max_clock_skew, plan_.max_clock_skew));
}

TimeMicros FaultInjector::ClockSkewAt(uint32_t node, uint32_t step) const {
  if (step == 0) return ClockSkewFor(node);
  if (plan_.max_clock_skew <= 0) return 0;
  // Step draws come from the per-node boot stream advanced `step` times, so
  // the schedule is a pure function of (seed, node, step): retune events
  // may fire in any global order across nodes without perturbing each
  // other.
  Rng rng(plan_.seed ^ chk::Fnv1a("clock-skew") ^
          (0x9E3779B97F4A7C15ULL * (node + 1)));
  TimeMicros skew = 0;
  for (uint32_t i = 0; i <= step; ++i) {
    skew = static_cast<TimeMicros>(
        rng.UniformInt(-plan_.max_clock_skew, plan_.max_clock_skew));
  }
  return skew;
}

uint64_t FaultInjector::TraceHash() const {
  std::lock_guard<std::mutex> lock(mu_);
  chk::Fingerprint fp;
  for (const Decision& d : trace_) {
    fp.MixU64(d.point_hash);
    fp.MixByte(d.kind);
    fp.MixU64(d.outcome);
  }
  return fp.Value();
}

size_t FaultInjector::DecisionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_.size();
}

uint64_t FaultInjector::HitCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(point);
  return it == streams_.end() ? 0 : it->second->hits;
}

uint64_t FaultInjector::FiredCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(point);
  return it == streams_.end() ? 0 : it->second->fired;
}

namespace {
std::atomic<FaultInjector*> g_process_injector{nullptr};
}  // namespace

FaultInjector* ExchangeProcessInjector(FaultInjector* injector) {
  return g_process_injector.exchange(injector, std::memory_order_acq_rel);
}

FaultInjector* ProcessInjector() {
  return g_process_injector.load(std::memory_order_acquire);
}

FaultAction PointAction(std::string_view point) {
  FaultInjector* injector = ProcessInjector();
  if (injector == nullptr) return FaultAction::kNone;
  FaultDecision decision = injector->DecideFrame(point, /*allow_duplicate=*/false);
  // In-line fault points cannot park work for later; a delay decision
  // degrades to kNone so the stream still advances identically either way.
  if (decision.action == FaultAction::kDelay) return FaultAction::kNone;
  return decision.action;
}

}  // namespace fault
}  // namespace marlin

#include "baseline.h"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>

namespace marlin {
namespace analyze {

namespace {

std::string Fnv1aHex(const std::string& data) {
  uint64_t hash = 1469598103934665603ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  std::ostringstream out;
  out << std::hex << hash;
  return out.str();
}

std::string StripWhitespace(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

}  // namespace

std::string Baseline::Key(const Finding& finding, const std::string& line_text) {
  return Fnv1aHex(finding.rule + "|" + finding.file + "|" +
                  StripWhitespace(line_text));
}

void Baseline::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t last_tab = line.rfind('\t');
    if (last_tab == std::string::npos) continue;
    keys_.insert(line.substr(last_tab + 1));
  }
}

bool Baseline::Write(
    const std::string& path,
    const std::vector<std::pair<Finding, std::string>>& entries,
    std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    *error = "cannot write baseline: " + path;
    return false;
  }
  out << "# marlin-analyze accepted-findings baseline.\n"
      << "# rule<TAB>file<TAB>fingerprint — regenerate with "
         "--write-baseline;\n"
      << "# entries are content-keyed, so line-number churn does not "
         "invalidate them.\n";
  for (const auto& [finding, key] : entries) {
    out << finding.rule << '\t' << finding.file << '\t' << key << '\n';
  }
  return true;
}

}  // namespace analyze
}  // namespace marlin

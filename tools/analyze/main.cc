// marlin-analyze — the project-contract static analyzer (DESIGN.md §11).
//
// Usage:
//   marlin-analyze [--root=DIR] [--baseline=FILE] [--write-baseline]
//                  [--sarif=FILE] [--list-rules] [paths...]
//
// Scans `paths` (default: src tests) under --root (default: cwd) with every
// builtin rule. Exit code 0 = clean (after `// chk-lint: allow(...)`
// suppressions and the baseline), 1 = findings, 2 = usage or I/O error.

#include <cstdio>
#include <string>
#include <vector>

#include "analyzer.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: marlin-analyze [--root=DIR] [--baseline=FILE] "
      "[--write-baseline]\n"
      "                      [--sarif=FILE] [--list-rules] [paths...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using marlin::analyze::AnalyzeOptions;
  using marlin::analyze::AnalyzeResult;
  using marlin::analyze::Finding;

  AnalyzeOptions options;
  options.baseline_path = "tools/analyze/baseline.txt";
  std::vector<std::string> paths;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const std::string& flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--root=", 0) == 0) {
      options.root = value("--root=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      options.baseline_path = value("--baseline=");
    } else if (arg == "--no-baseline") {
      options.baseline_path.clear();
    } else if (arg == "--write-baseline") {
      options.write_baseline = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      options.sarif_path = value("--sarif=");
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "marlin-analyze: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (!paths.empty()) options.paths = paths;

  if (list_rules) {
    for (const auto& rule : marlin::analyze::BuiltinRules()) {
      std::printf("%-18s %s\n", rule->Name().c_str(),
                  rule->Description().c_str());
    }
    return 0;
  }

  const AnalyzeResult result = marlin::analyze::RunAnalysis(options);
  if (!result.ok) {
    std::fprintf(stderr, "marlin-analyze: %s\n", result.error.c_str());
    return 2;
  }
  if (options.write_baseline) {
    std::printf("marlin-analyze: baseline rewritten (%d files scanned)\n",
                result.files_scanned);
    return 0;
  }

  for (const Finding& finding : result.findings) {
    std::printf("%s:%d: [%s] %s\n", finding.file.c_str(), finding.line,
                finding.rule.c_str(), finding.message.c_str());
  }
  std::printf(
      "marlin-analyze: %zu finding%s (%d suppressed, %d baselined) across %d "
      "files in %.2fs\n",
      result.findings.size(), result.findings.size() == 1 ? "" : "s",
      result.suppressed, result.baselined, result.files_scanned,
      result.seconds);
  return result.findings.empty() ? 0 : 1;
}

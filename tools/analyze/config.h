#ifndef MARLIN_TOOLS_ANALYZE_CONFIG_H_
#define MARLIN_TOOLS_ANALYZE_CONFIG_H_

#include <set>
#include <string>
#include <vector>

namespace marlin {
namespace analyze {

/// The project contracts marlin-analyze enforces, declared in one place.
/// DESIGN.md §11 documents every field; changing the architecture means
/// changing this struct and the document together.
struct Config {
  /// Module layering, lowest layer first. A file in src/<m>/ may include
  /// headers of modules in the same or any lower layer; including a higher
  /// layer (or an undeclared module) is a `layering` finding. Module-level
  /// include cycles are findings regardless of layer assignment.
  std::vector<std::vector<std::string>> layers;

  /// Cross-cutting hook headers, includable from any module and excluded
  /// from the layering graph. These are the compile-gated instrumentation
  /// seams (chk invariants, fault points): no-ops unless the corresponding
  /// CMake option arms them, so they deliberately cross layers downward.
  std::set<std::string> crosscut_headers;

  /// Files (repo-relative) allowed to create raw std::thread/jthread/async —
  /// the execution substrates everything else reaches through the
  /// Dispatcher seam.
  std::set<std::string> raw_thread_files;

  /// Modules allowed to call ::socket() — the two networking substrates.
  std::set<std::string> raw_socket_modules;

  /// Files (repo-relative) allowed to touch host time directly
  /// (std::chrono::system_clock, sleep_for/sleep_until). Everything else
  /// reads time through the Clock / VirtualClock seam in util/clock.h so
  /// the discrete-event scheduler (DESIGN.md §13) can substitute a virtual
  /// timeline.
  std::set<std::string> raw_clock_files;

  /// The actor-message contract file: every struct defined here must be a
  /// copyable value type (no raw owning pointers, references, or
  /// non-copyable members).
  std::string messages_header;

  /// Layer index of `module`, or -1 when undeclared.
  int LayerOf(const std::string& module) const;
};

/// The checked-in project configuration.
const Config& ProjectConfig();

}  // namespace analyze
}  // namespace marlin

#endif  // MARLIN_TOOLS_ANALYZE_CONFIG_H_

#ifndef MARLIN_TOOLS_ANALYZE_RULES_H_
#define MARLIN_TOOLS_ANALYZE_RULES_H_

#include <memory>

#include "rule.h"

namespace marlin {
namespace analyze {

std::unique_ptr<Rule> MakeLayeringRule();
std::unique_ptr<Rule> MakeActorBlockingRule();
std::unique_ptr<Rule> MakeFaultPointRule();
std::unique_ptr<Rule> MakeMessageHygieneRule();
std::unique_ptr<Rule> MakeMetricNameRule();
// The virtual-time contract (DESIGN.md §13): no wall clocks or real sleeps
// outside the util/clock.h seam and the Config::raw_clock_files substrates.
std::unique_ptr<Rule> MakeRawClockRule();
// The four rules migrated from the original grep-based tools/lint.sh.
std::unique_ptr<Rule> MakeNoRawThreadRule();
std::unique_ptr<Rule> MakeNoNakedNewRule();
std::unique_ptr<Rule> MakeNoPlainCounterRule();
std::unique_ptr<Rule> MakeNoRawSocketRule();

}  // namespace analyze
}  // namespace marlin

#endif  // MARLIN_TOOLS_ANALYZE_RULES_H_

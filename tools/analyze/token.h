#ifndef MARLIN_TOOLS_ANALYZE_TOKEN_H_
#define MARLIN_TOOLS_ANALYZE_TOKEN_H_

#include <string>

namespace marlin {
namespace analyze {

/// Token kinds produced by the lexer. The analyzer works on a flat token
/// stream — no preprocessor expansion, no real parse — so the kinds are the
/// minimum needed to write robust pattern rules: identifiers, literals and
/// punctuation, with comments and preprocessor directives stripped (includes
/// and suppression comments are recorded on the SourceFile instead).
enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (integer/float, any base, with suffixes)
  kString,  // string literal, text holds the *contents* (no quotes)
  kChar,    // character literal
  kPunct,   // punctuation; "::" is one token, everything else single-char
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  // 1-based

  bool Is(TokKind k, const char* t) const { return kind == k && text == t; }
  bool IsIdent(const char* t) const { return Is(TokKind::kIdent, t); }
  bool IsPunct(const char* t) const { return Is(TokKind::kPunct, t); }
};

}  // namespace analyze
}  // namespace marlin

#endif  // MARLIN_TOOLS_ANALYZE_TOKEN_H_

#include <algorithm>
#include <map>
#include <set>

#include "rule.h"
#include "rules.h"

namespace marlin {
namespace analyze {

namespace {

/// Enforces the declared module layering DAG over direct project includes:
///  - a file in src/<m>/ may only include modules whose layer is <= m's;
///  - every included module must be declared in the config;
///  - the module-level include graph must be acyclic (cycles are flagged
///    even between modules of the same layer).
/// Cross-cutting hook headers (Config::crosscut_headers) never form edges.
class LayeringRule : public Rule {
 public:
  std::string Name() const override { return "layering"; }
  std::string Description() const override {
    return "module includes must follow the declared layering DAG "
           "(no upward or cyclic dependencies)";
  }

  void Run(const Project& project, std::vector<Finding>* findings) const override {
    const Config& config = project.config();
    // module -> (target module -> first include site), for cycle reporting.
    std::map<std::string, std::map<std::string, Finding>> edges;

    for (const SourceFile& file : project.files()) {
      if (file.module.empty()) continue;  // layering governs src/ only
      const int layer = config.LayerOf(file.module);
      if (layer < 0) {
        findings->push_back(
            {Name(), file.rel, 1,
             "module '" + file.module +
                 "' is not declared in the layering DAG (tools/analyze/"
                 "config.cc); add it to a layer"});
        continue;
      }
      for (const IncludeDirective& inc : file.includes) {
        if (inc.angled) continue;
        if (config.crosscut_headers.count(inc.target)) continue;
        const size_t slash = inc.target.find('/');
        if (slash == std::string::npos) continue;  // not a module path
        const std::string target = inc.target.substr(0, slash);
        if (target == file.module) continue;
        const int target_layer = config.LayerOf(target);
        if (target_layer < 0) {
          // Unknown directory: only flag when it exists as a module include
          // shape (src-rooted include of an undeclared module).
          findings->push_back(
              {Name(), file.rel, inc.line,
               "include \"" + inc.target + "\" targets module '" + target +
                   "' which is not declared in the layering DAG"});
          continue;
        }
        if (target_layer > layer) {
          findings->push_back(
              {Name(), file.rel, inc.line,
               "module '" + file.module + "' (layer " + std::to_string(layer) +
                   ") may not include \"" + inc.target + "\" — module '" +
                   target + "' is layer " + std::to_string(target_layer) +
                   ", above it"});
        }
        edges[file.module].emplace(
            target, Finding{Name(), file.rel, inc.line, ""});
      }
    }

    ReportCycles(edges, findings);
  }

 private:
  /// DFS cycle detection over the module graph; one finding per cycle,
  /// anchored at the include site that closes it.
  static void ReportCycles(
      const std::map<std::string, std::map<std::string, Finding>>& edges,
      std::vector<Finding>* findings) {
    std::set<std::string> done;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;

    // Iterative DFS with an explicit visit function.
    struct Frame {
      std::string node;
      std::map<std::string, Finding>::const_iterator next, end;
    };
    static const std::map<std::string, Finding> kNoEdges;

    for (const auto& [start, unused] : edges) {
      (void)unused;
      if (done.count(start)) continue;
      std::vector<Frame> frames;
      auto edges_of = [&](const std::string& n)
          -> const std::map<std::string, Finding>& {
        auto it = edges.find(n);
        return it == edges.end() ? kNoEdges : it->second;
      };
      frames.push_back({start, edges_of(start).begin(), edges_of(start).end()});
      stack.push_back(start);
      on_stack.insert(start);
      while (!frames.empty()) {
        Frame& frame = frames.back();
        if (frame.next == frame.end) {
          done.insert(frame.node);
          on_stack.erase(frame.node);
          stack.pop_back();
          frames.pop_back();
          continue;
        }
        const std::string target = frame.next->first;
        const Finding& site = frame.next->second;
        ++frame.next;
        if (on_stack.count(target)) {
          // Close the cycle: stack from `target` onward, back to target.
          std::string path;
          auto it = std::find(stack.begin(), stack.end(), target);
          for (; it != stack.end(); ++it) path += *it + " -> ";
          path += target;
          findings->push_back({
              "layering", site.file, site.line,
              "module include cycle: " + path +
                  " (cycles are forbidden regardless of layers)"});
          continue;
        }
        if (done.count(target)) continue;
        frames.push_back(
            {target, edges_of(target).begin(), edges_of(target).end()});
        stack.push_back(target);
        on_stack.insert(target);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLayeringRule() {
  return std::make_unique<LayeringRule>();
}

}  // namespace analyze
}  // namespace marlin

#ifndef MARLIN_TOOLS_ANALYZE_ANALYZER_H_
#define MARLIN_TOOLS_ANALYZE_ANALYZER_H_

#include <string>
#include <vector>

#include "rule.h"

namespace marlin {
namespace analyze {

struct AnalyzeOptions {
  std::string root = ".";
  /// Repo-relative paths to scan (files or directories).
  std::vector<std::string> paths = {"src", "tests"};
  /// Baseline file (repo-relative or absolute); "" disables the baseline.
  std::string baseline_path;
  /// Rewrite the baseline from the current findings instead of reporting.
  bool write_baseline = false;
  /// SARIF output path; "" disables.
  std::string sarif_path;
};

struct AnalyzeResult {
  bool ok = false;          // analysis ran (not: zero findings)
  std::string error;        // set when !ok
  std::vector<Finding> findings;   // new findings (post suppression+baseline)
  int suppressed = 0;       // dropped by chk-lint allow comments
  int baselined = 0;        // dropped by the baseline file
  int files_scanned = 0;
  double seconds = 0.0;
};

/// Loads the project, runs every builtin rule, applies suppressions and the
/// baseline, optionally writes SARIF / rewrites the baseline.
AnalyzeResult RunAnalysis(const AnalyzeOptions& options);

/// Runs the builtin rules over an already-loaded project and applies
/// per-line suppressions (no baseline, no I/O). Test seam.
std::vector<Finding> RunRules(const Project& project, int* suppressed);

}  // namespace analyze
}  // namespace marlin

#endif  // MARLIN_TOOLS_ANALYZE_ANALYZER_H_

#ifndef MARLIN_TOOLS_ANALYZE_PROJECT_H_
#define MARLIN_TOOLS_ANALYZE_PROJECT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "config.h"
#include "lexer.h"

namespace marlin {
namespace analyze {

/// One method definition (with a body) found by structural scanning.
struct MethodBody {
  const SourceFile* file = nullptr;
  std::string class_name;
  std::string method_name;
  int def_line = 0;     // line of the method name in the definition
  size_t body_begin = 0;  // token index of the '{'
  size_t body_end = 0;    // token index just past the matching '}'
};

/// Everything the rules run against: the lexed file set plus shared
/// structural scans (class hierarchies, method bodies).
class Project {
 public:
  Project(const Config& config, std::string root)
      : config_(config), root_(std::move(root)) {}

  const Config& config() const { return config_; }
  const std::string& root() const { return root_; }

  /// Loads every *.h/*.cc under `paths` (repo-relative). Directories named
  /// "build*", ".git" or "analyze_fixtures" are skipped — fixture trees
  /// carry planted violations and must only be analyzed when explicitly
  /// rooted there. Returns false (with `error` set) on I/O failure.
  bool Load(const std::vector<std::string>& paths, std::string* error);

  /// Adds one already-read file (tests use this to assemble projects
  /// in-memory).
  void AddSource(const std::string& rel, const std::string& content);

  const std::vector<SourceFile>& files() const { return files_; }

  /// Names of classes that (transitively) derive from `base` anywhere in
  /// src/. Direct bases are matched by the last identifier of the base
  /// specifier, so `public cluster::Transport` matches base "Transport".
  std::set<std::string> ClassesDerivedFrom(const std::string& base) const;

  /// Every definition-with-body of `method` on any class in `classes`,
  /// inline (inside the class braces) or out-of-line (Class::Method).
  std::vector<MethodBody> FindMethodBodies(
      const std::set<std::string>& classes, const std::string& method) const;

  /// Token index just past the brace partner of tokens[open_brace].
  static size_t MatchBrace(const std::vector<Token>& tokens, size_t open_brace);

  /// Given the '(' opening a signature's parameter list, returns the token
  /// index of the '{' opening the definition body, or 0 for declarations.
  static size_t FindBodyAfterSignature(const std::vector<Token>& tokens,
                                       size_t open_paren);

 private:
  void Classify(SourceFile* file) const;

  const Config& config_;
  std::string root_;
  std::vector<SourceFile> files_;
};

}  // namespace analyze
}  // namespace marlin

#endif  // MARLIN_TOOLS_ANALYZE_PROJECT_H_

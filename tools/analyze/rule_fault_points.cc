#include <map>
#include <set>

#include "rule.h"
#include "rules.h"

namespace marlin {
namespace analyze {

namespace {

/// The chaos layer can only exercise what the transports expose: every
/// Transport::Send override in src/ must carry a MARLIN_FAULT_POINT (or an
/// explicit `// chk-lint: allow(fault-point)` on the definition line for
/// pure decorators and the chaos transport itself), and fault-point names
/// must be globally unique — FaultInjector derives each point's RNG stream
/// from its name, so two sites sharing a name would silently share (and
/// skew) one stream.
class FaultPointRule : public Rule {
 public:
  std::string Name() const override { return "fault-point"; }
  std::string Description() const override {
    return "every Transport::Send override carries a MARLIN_FAULT_POINT and "
           "point names are globally unique";
  }

  void Run(const Project& project, std::vector<Finding>* findings) const override {
    CheckSendCoverage(project, findings);
    CheckNameUniqueness(project, findings);
  }

 private:
  void CheckSendCoverage(const Project& project,
                         std::vector<Finding>* findings) const {
    const std::set<std::string> transports =
        project.ClassesDerivedFrom("Transport");
    for (const MethodBody& body :
         project.FindMethodBodies(transports, "Send")) {
      const std::vector<Token>& toks = body.file->tokens;
      bool covered = false;
      for (size_t i = body.body_begin; i < body.body_end; ++i) {
        if (toks[i].IsIdent("MARLIN_FAULT_POINT")) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        findings->push_back(
            {Name(), body.file->rel, body.def_line,
             body.class_name +
                 "::Send has no MARLIN_FAULT_POINT — every transport send "
                 "path must be injectable (suppress with chk-lint allow for "
                 "pure decorators)"});
      }
    }
  }

  void CheckNameUniqueness(const Project& project,
                           std::vector<Finding>* findings) const {
    // name -> "file:line" of first sight.
    std::map<std::string, std::string> seen;
    for (const SourceFile& file : project.files()) {
      if (file.module.empty()) continue;
      const std::vector<Token>& toks = file.tokens;
      for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!toks[i].IsIdent("MARLIN_FAULT_POINT")) continue;
        if (!toks[i + 1].IsPunct("(")) continue;
        if (toks[i + 2].kind != TokKind::kString) continue;  // dynamic name
        const std::string& name = toks[i + 2].text;
        const std::string here =
            file.rel + ":" + std::to_string(toks[i + 2].line);
        auto [it, inserted] = seen.emplace(name, here);
        if (!inserted) {
          findings->push_back(
              {Name(), file.rel, toks[i + 2].line,
               "duplicate fault point name \"" + name + "\" (first used at " +
                   it->second +
                   ") — names seed per-point RNG streams and must be unique"});
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeFaultPointRule() {
  return std::make_unique<FaultPointRule>();
}

}  // namespace analyze
}  // namespace marlin

#ifndef MARLIN_TOOLS_ANALYZE_RULE_H_
#define MARLIN_TOOLS_ANALYZE_RULE_H_

#include <memory>
#include <string>
#include <vector>

#include "project.h"

namespace marlin {
namespace analyze {

/// One violation. `rule` is the stable rule id (also the suppression token
/// for `// chk-lint: allow(<rule>)` and the SARIF ruleId).
struct Finding {
  std::string rule;
  std::string file;  // repo-relative
  int line = 0;
  std::string message;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
};

/// A pluggable check. Rules are pure functions of the Project: they emit
/// every violation they see; suppression (allow comments) and the baseline
/// are applied uniformly by the engine afterwards.
class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable id, kebab-case (e.g. "actor-blocking").
  virtual std::string Name() const = 0;
  /// One-line description for --list-rules and the SARIF rule metadata.
  virtual std::string Description() const = 0;
  virtual void Run(const Project& project, std::vector<Finding>* findings) const = 0;
};

/// The full shipped rule set.
std::vector<std::unique_ptr<Rule>> BuiltinRules();

}  // namespace analyze
}  // namespace marlin

#endif  // MARLIN_TOOLS_ANALYZE_RULE_H_

// raw-clock: the virtual-time contract (DESIGN.md §13). Wall-clock reads
// (std::chrono::system_clock) and real sleeps (sleep_for / sleep_until)
// bypass the Clock / VirtualClock seam in util/clock.h, so code using them
// cannot run on the discrete-event scheduler's virtual timeline — a 72-hour
// simulated run would take 72 wall-clock hours. Time consumers take a
// `const Clock*` / `const NanoClock*`; the handful of substrates that
// legitimately touch host time (the seam itself, log timestamping, the
// dispatcher's idle backoff) are enumerated in Config::raw_clock_files.

#include <set>

#include "rule.h"
#include "rules.h"

namespace marlin {
namespace analyze {

namespace {

class RawClockRule : public Rule {
 public:
  std::string Name() const override { return "raw-clock"; }
  std::string Description() const override {
    return "no std::chrono::system_clock or sleep_for/sleep_until outside "
           "the util/clock.h seam — virtual time (DESIGN.md §13) cannot "
           "reach through them";
  }

  void Run(const Project& project, std::vector<Finding>* findings) const override {
    static const std::set<std::string> kSleeps = {"sleep_for", "sleep_until"};
    for (const SourceFile& file : project.files()) {
      // Applies to src/ modules and tests alike: tests that really sleep
      // flake under load, and fixed-point polls belong on the virtual
      // timeline. Consciously kept host-time code is allowlisted or
      // baselined.
      if (file.module.empty() && !file.in_tests) continue;
      if (project.config().raw_clock_files.count(file.rel)) continue;
      const std::vector<Token>& toks = file.tokens;
      for (size_t i = 0; i < toks.size(); ++i) {
        const Token& tok = toks[i];
        if (tok.kind != TokKind::kIdent) continue;
        if (tok.text == "system_clock") {
          findings->push_back(
              {Name(), file.rel, tok.line,
               "raw std::chrono::system_clock — read time through the Clock "
               "seam (util/clock.h) so virtual-time runs can substitute it"});
          continue;
        }
        const bool called = i + 1 < toks.size() && toks[i + 1].IsPunct("(");
        if (called && kSleeps.count(tok.text)) {
          findings->push_back(
              {Name(), file.rel, tok.line,
               "raw " + tok.text +
                   " — real sleeps stall the virtual timeline; post a future "
                   "event on the des::EventScheduler (or add the file to "
                   "Config::raw_clock_files if it is a genuine substrate)"});
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeRawClockRule() {
  return std::make_unique<RawClockRule>();
}

}  // namespace analyze
}  // namespace marlin

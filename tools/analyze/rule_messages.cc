#include <set>

#include "rule.h"
#include "rules.h"

namespace marlin {
namespace analyze {

namespace {

/// Actor messages travel by value in std::any envelopes, may be duplicated
/// by the fault layer and serialised by the cluster layer — so every struct
/// in the messages header must be a self-contained copyable value type. The
/// contract is deliberately strict: anywhere inside a message struct
/// definition, raw pointers (`*`), references (`&`) and known non-copyable
/// member types are forbidden. Shared payloads belong in value containers
/// (vector/string), not behind pointers.
class MessageHygieneRule : public Rule {
 public:
  std::string Name() const override { return "message-hygiene"; }
  std::string Description() const override {
    return "message structs must be copyable value types: no raw pointers, "
           "references or non-copyable members";
  }

  void Run(const Project& project, std::vector<Finding>* findings) const override {
    for (const SourceFile& file : project.files()) {
      if (file.rel != project.config().messages_header) continue;
      CheckFile(file, findings);
    }
  }

 private:
  void CheckFile(const SourceFile& file, std::vector<Finding>* findings) const {
    static const std::set<std::string> kNonCopyable = {
        "unique_ptr",          "mutex",   "shared_mutex", "atomic",
        "condition_variable",  "thread",  "jthread",      "future",
        "promise",             "stop_source"};
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!toks[i].IsIdent("struct") && !toks[i].IsIdent("class")) continue;
      if (i > 0 && toks[i - 1].IsIdent("enum")) continue;
      if (toks[i + 1].kind != TokKind::kIdent) continue;
      const std::string& name = toks[i + 1].text;
      // Find the body (skip base list if any); forward declarations have
      // ';' before '{'.
      size_t j = i + 2;
      while (j < toks.size() && !toks[j].IsPunct("{") && !toks[j].IsPunct(";")) ++j;
      if (j >= toks.size() || toks[j].IsPunct(";")) continue;
      const size_t end = Project::MatchBrace(file.tokens, j);
      for (size_t k = j + 1; k + 1 < end; ++k) {
        const Token& tok = toks[k];
        if (tok.IsPunct("*")) {
          Emit(file, tok.line, name, "raw pointer ('*')", findings);
        } else if (tok.IsPunct("&")) {
          Emit(file, tok.line, name, "reference ('&')", findings);
        } else if (tok.kind == TokKind::kIdent && kNonCopyable.count(tok.text)) {
          Emit(file, tok.line, name, "non-copyable type std::" + tok.text,
               findings);
        }
      }
      i = end - 1;
    }
  }

  void Emit(const SourceFile& file, int line, const std::string& struct_name,
            const std::string& what, std::vector<Finding>* findings) const {
    findings->push_back(
        {Name(), file.rel, line,
         "message struct " + struct_name + " uses " + what +
             " — messages must be copyable value types (they are duplicated "
             "by the fault layer and serialised by the cluster layer)"});
  }
};

}  // namespace

std::unique_ptr<Rule> MakeMessageHygieneRule() {
  return std::make_unique<MessageHygieneRule>();
}

}  // namespace analyze
}  // namespace marlin

#include "project.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace marlin {
namespace analyze {

namespace fs = std::filesystem;

namespace {

bool SkippedDir(const std::string& name) {
  return name == ".git" || name == "analyze_fixtures" ||
         name.rfind("build", 0) == 0;
}

bool AnalyzableFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

/// True for tokens that may appear between `class X :` and `{` without being
/// part of a base-class name.
bool IsBaseListNoise(const Token& token) {
  return token.IsIdent("public") || token.IsIdent("protected") ||
         token.IsIdent("private") || token.IsIdent("virtual");
}

}  // namespace

size_t Project::MatchBrace(const std::vector<Token>& tokens, size_t open_brace) {
  int depth = 0;
  for (size_t i = open_brace; i < tokens.size(); ++i) {
    if (tokens[i].IsPunct("{")) ++depth;
    if (tokens[i].IsPunct("}")) {
      if (--depth == 0) return i + 1;
    }
  }
  return tokens.size();
}

void Project::Classify(SourceFile* file) const {
  std::replace(file->rel.begin(), file->rel.end(), '\\', '/');
  file->is_header = file->rel.size() >= 2 &&
                    file->rel.compare(file->rel.size() - 2, 2, ".h") == 0;
  file->in_tests = file->rel.rfind("tests/", 0) == 0;
  if (file->rel.rfind("src/", 0) == 0) {
    const size_t slash = file->rel.find('/', 4);
    if (slash != std::string::npos) {
      file->module = file->rel.substr(4, slash - 4);
    }
  }
}

bool Project::Load(const std::vector<std::string>& paths, std::string* error) {
  std::vector<fs::path> found;
  for (const std::string& path : paths) {
    const fs::path abs = fs::path(root_) / path;
    std::error_code ec;
    if (fs::is_regular_file(abs, ec)) {
      found.push_back(abs);
      continue;
    }
    if (!fs::is_directory(abs, ec)) {
      *error = "path not found: " + abs.string();
      return false;
    }
    fs::recursive_directory_iterator it(abs, ec), end;
    if (ec) {
      *error = "cannot walk " + abs.string() + ": " + ec.message();
      return false;
    }
    for (; it != end; ++it) {
      if (it->is_directory() && SkippedDir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && AnalyzableFile(it->path())) {
        found.push_back(it->path());
      }
    }
  }
  std::sort(found.begin(), found.end());
  for (const fs::path& path : found) {
    std::ifstream in(path);
    if (!in) {
      *error = "cannot read " + path.string();
      return false;
    }
    std::ostringstream content;
    content << in.rdbuf();
    std::error_code ec;
    const fs::path rel = fs::relative(path, root_, ec);
    AddSource(ec ? path.string() : rel.generic_string(), content.str());
  }
  return true;
}

void Project::AddSource(const std::string& rel, const std::string& content) {
  SourceFile file;
  file.path = (fs::path(root_) / rel).string();
  file.rel = rel;
  Classify(&file);
  LexSource(content, &file);
  files_.push_back(std::move(file));
}

std::set<std::string> Project::ClassesDerivedFrom(const std::string& base) const {
  // (class name -> direct base name idents), src/ only.
  std::multimap<std::string, std::string> bases;
  for (const SourceFile& file : files_) {
    if (file.module.empty()) continue;
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!(toks[i].IsIdent("class") || toks[i].IsIdent("struct"))) continue;
      if (i > 0 && toks[i - 1].IsIdent("enum")) continue;
      // Class head: identifiers / "::" up to ':', '{', ';' or 'final'.
      size_t j = i + 1;
      std::string name;
      while (j < toks.size() &&
             (toks[j].kind == TokKind::kIdent || toks[j].IsPunct("::"))) {
        if (toks[j].IsIdent("final")) break;
        if (toks[j].kind == TokKind::kIdent) name = toks[j].text;
        ++j;
      }
      if (name.empty() || j >= toks.size()) continue;
      if (toks[j].IsIdent("final")) ++j;
      if (j >= toks.size() || !toks[j].IsPunct(":")) continue;
      // Base list: idents up to '{' (or ';' for stray matches).
      for (size_t k = j + 1; k < toks.size(); ++k) {
        if (toks[k].IsPunct("{") || toks[k].IsPunct(";")) break;
        if (toks[k].kind == TokKind::kIdent && !IsBaseListNoise(toks[k])) {
          bases.emplace(name, toks[k].text);
        }
      }
    }
  }
  std::set<std::string> derived;
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [name, base_name] : bases) {
      if (derived.count(name)) continue;
      if (base_name == base || derived.count(base_name)) {
        derived.insert(name);
        grew = true;
      }
    }
  }
  return derived;
}

std::vector<MethodBody> Project::FindMethodBodies(
    const std::set<std::string>& classes, const std::string& method) const {
  std::vector<MethodBody> bodies;
  for (const SourceFile& file : files_) {
    if (file.module.empty()) continue;
    const std::vector<Token>& toks = file.tokens;

    // Out-of-line: Class :: Method (
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || !classes.count(toks[i].text)) continue;
      if (!toks[i + 1].IsPunct("::") || !toks[i + 2].IsIdent(method.c_str()) ||
          !toks[i + 3].IsPunct("(")) {
        continue;
      }
      const size_t body = FindBodyAfterSignature(toks, i + 3);
      if (body == 0) continue;
      bodies.push_back(MethodBody{&file, toks[i].text, method,
                                  toks[i + 2].line, body,
                                  MatchBrace(toks, body)});
    }

    // Inline: Method ( ... ) ... { directly inside `class Name ... {`.
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!(toks[i].IsIdent("class") || toks[i].IsIdent("struct"))) continue;
      size_t j = i + 1;
      std::string name;
      while (j < toks.size() &&
             (toks[j].kind == TokKind::kIdent || toks[j].IsPunct("::"))) {
        if (toks[j].IsIdent("final")) break;
        if (toks[j].kind == TokKind::kIdent) name = toks[j].text;
        ++j;
      }
      if (name.empty() || !classes.count(name)) continue;
      // Find the class's opening brace (skip the base list).
      while (j < toks.size() && !toks[j].IsPunct("{") && !toks[j].IsPunct(";")) ++j;
      if (j >= toks.size() || toks[j].IsPunct(";")) continue;
      const size_t class_end = MatchBrace(toks, j);
      int depth = 0;
      for (size_t k = j; k < class_end; ++k) {
        if (toks[k].IsPunct("{")) ++depth;
        if (toks[k].IsPunct("}")) --depth;
        if (depth != 1) continue;
        if (toks[k].IsIdent(method.c_str()) && k + 1 < class_end &&
            toks[k + 1].IsPunct("(")) {
          const size_t body = FindBodyAfterSignature(toks, k + 1);
          if (body == 0 || body >= class_end) continue;
          bodies.push_back(MethodBody{&file, name, method, toks[k].line, body,
                                      MatchBrace(toks, body)});
          k = MatchBrace(toks, body) - 1;
        }
      }
    }
  }
  return bodies;
}

/// After the '(' that opens a signature's parameter list, finds the '{' that
/// opens the definition body; 0 when the signature is only a declaration.
size_t Project::FindBodyAfterSignature(const std::vector<Token>& toks,
                                       size_t open_paren) {
  int parens = 0;
  size_t i = open_paren;
  for (; i < toks.size(); ++i) {
    if (toks[i].IsPunct("(")) ++parens;
    if (toks[i].IsPunct(")")) {
      if (--parens == 0) break;
    }
  }
  for (++i; i < toks.size(); ++i) {
    if (toks[i].IsPunct("{")) return i;
    if (toks[i].IsPunct(";") || toks[i].IsPunct("=")) return 0;
    if (toks[i].IsPunct("(")) {  // noexcept(...) and friends
      int depth = 0;
      for (; i < toks.size(); ++i) {
        if (toks[i].IsPunct("(")) ++depth;
        if (toks[i].IsPunct(")") && --depth == 0) break;
      }
    }
  }
  return 0;
}

}  // namespace analyze
}  // namespace marlin

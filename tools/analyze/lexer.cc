#include "lexer.h"

#include <cctype>

namespace marlin {
namespace analyze {

namespace {

const std::string kEmpty;

/// Records every `chk-lint: allow(rule[,rule...])` occurrence in a comment.
void ScanCommentForAllows(const std::string& comment, int line,
                          SourceFile* out) {
  static const std::string kTag = "chk-lint:";
  size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    pos += kTag.size();
    while (pos < comment.size() && comment[pos] == ' ') ++pos;
    static const std::string kAllow = "allow(";
    if (comment.compare(pos, kAllow.size(), kAllow) != 0) continue;
    pos += kAllow.size();
    const size_t close = comment.find(')', pos);
    if (close == std::string::npos) return;
    std::string list = comment.substr(pos, close - pos);
    size_t start = 0;
    while (start <= list.size()) {
      size_t comma = list.find(',', start);
      if (comma == std::string::npos) comma = list.size();
      std::string rule = list.substr(start, comma - start);
      // Trim spaces.
      while (!rule.empty() && rule.front() == ' ') rule.erase(rule.begin());
      while (!rule.empty() && rule.back() == ' ') rule.pop_back();
      if (!rule.empty()) out->allows[line].insert(rule);
      start = comma + 1;
    }
    pos = close;
  }
}

class Lexer {
 public:
  Lexer(const std::string& src, SourceFile* out) : src_(src), out_(out) {}

  void Run() {
    SplitLines();
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        BlockComment();
        continue;
      }
      if (at_line_start_ && c == '#') {
        Preprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == 'R' && Peek(1) == '"') {
        RawString();
        continue;
      }
      if (c == '"') {
        StringLiteral();
        continue;
      }
      if (c == '\'') {
        CharLiteral();
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        Identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        Number();
        continue;
      }
      Punct();
    }
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokKind kind, std::string text) {
    out_->tokens.push_back(Token{kind, std::move(text), line_});
  }

  void SplitLines() {
    std::string current;
    for (const char c : src_) {
      if (c == '\n') {
        out_->lines.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    if (!current.empty()) out_->lines.push_back(current);
  }

  void LineComment() {
    const size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    ScanCommentForAllows(src_.substr(start, pos_ - start), line_, out_);
  }

  void BlockComment() {
    const int start_line = line_;
    const size_t start = pos_;
    pos_ += 2;
    while (pos_ < src_.size() && !(src_[pos_] == '*' && Peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    pos_ = pos_ < src_.size() ? pos_ + 2 : src_.size();
    // Allows inside a block comment attach to the line the comment starts on.
    ScanCommentForAllows(src_.substr(start, pos_ - start), start_line, out_);
  }

  /// Consumes a whole preprocessor directive (with \-continuations),
  /// recording #include targets. Directive bodies are not tokenized: macro
  /// definitions must not feed the pattern rules.
  void Preprocessor() {
    std::string directive;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && Peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        directive.push_back(' ');
        continue;
      }
      if (c == '\n') break;  // newline handled by main loop
      // Comments inside directives end or hide the rest of the line.
      if (c == '/' && Peek(1) == '/') {
        LineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        BlockComment();
        directive.push_back(' ');
        continue;
      }
      directive.push_back(c);
      ++pos_;
    }
    ParseDirective(directive);
  }

  void ParseDirective(const std::string& directive) {
    size_t i = 1;  // skip '#'
    while (i < directive.size() && std::isspace(static_cast<unsigned char>(directive[i]))) ++i;
    static const std::string kInclude = "include";
    if (directive.compare(i, kInclude.size(), kInclude) != 0) return;
    i += kInclude.size();
    while (i < directive.size() && std::isspace(static_cast<unsigned char>(directive[i]))) ++i;
    if (i >= directive.size()) return;
    const char open = directive[i];
    const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0') return;  // computed include — not analyzable
    const size_t end = directive.find(close, i + 1);
    if (end == std::string::npos) return;
    IncludeDirective inc;
    inc.target = directive.substr(i + 1, end - i - 1);
    inc.line = line_;
    inc.angled = open == '<';
    out_->includes.push_back(inc);
  }

  void RawString() {
    // R"delim( ... )delim"
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim.push_back(src_[pos_++]);
    ++pos_;  // (
    const std::string closer = ")" + delim + "\"";
    const int start_line = line_;
    std::string value;
    while (pos_ < src_.size() && src_.compare(pos_, closer.size(), closer) != 0) {
      if (src_[pos_] == '\n') ++line_;
      value.push_back(src_[pos_++]);
    }
    pos_ += closer.size();
    out_->tokens.push_back(Token{TokKind::kString, std::move(value), start_line});
  }

  void StringLiteral() {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        value.push_back(src_[pos_]);
        value.push_back(src_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') ++line_;  // unterminated; keep line count sane
      value.push_back(src_[pos_++]);
    }
    ++pos_;  // closing quote
    Emit(TokKind::kString, std::move(value));
  }

  void CharLiteral() {
    const size_t start = pos_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    ++pos_;
    Emit(TokKind::kChar, src_.substr(start, pos_ - start));
  }

  void Identifier() {
    const size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
      ++pos_;
    }
    std::string text = src_.substr(start, pos_ - start);
    // String-literal prefixes (u8"...", L"...") — treat as the literal.
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      StringLiteral();
      return;
    }
    Emit(TokKind::kIdent, std::move(text));
  }

  void Number() {
    const size_t start = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e-3, 0x1p+2
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(TokKind::kNumber, src_.substr(start, pos_ - start));
  }

  void Punct() {
    if (src_[pos_] == ':' && Peek(1) == ':') {
      Emit(TokKind::kPunct, "::");
      pos_ += 2;
      return;
    }
    Emit(TokKind::kPunct, std::string(1, src_[pos_]));
    ++pos_;
  }

  const std::string& src_;
  SourceFile* out_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

const std::string& SourceFile::LineText(int line) const {
  if (line < 1 || line > static_cast<int>(lines.size())) return kEmpty;
  return lines[line - 1];
}

void LexSource(const std::string& content, SourceFile* out) {
  Lexer lexer(content, out);
  lexer.Run();
}

}  // namespace analyze
}  // namespace marlin

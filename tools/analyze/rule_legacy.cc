// The four rules migrated from the original grep/awk tools/lint.sh. The
// token-level reimplementations close the gaps the line regexes had (string
// and comment false positives, declarations split across lines) while
// keeping the same rule names, so existing `// chk-lint: allow(...)`
// comments keep working unchanged.

#include <set>

#include "rule.h"
#include "rules.h"

namespace marlin {
namespace analyze {

namespace {

/// no-raw-thread: std::thread / std::jthread / std::async may only appear in
/// the execution substrates (Config::raw_thread_files). Everything else must
/// go through the Dispatcher seam so the deterministic scheduler can control
/// it. std::thread::id and std::this_thread are fine.
class NoRawThreadRule : public Rule {
 public:
  std::string Name() const override { return "no-raw-thread"; }
  std::string Description() const override {
    return "raw std::thread/jthread/async only in the execution substrates; "
           "everything else uses the Dispatcher seam";
  }

  void Run(const Project& project, std::vector<Finding>* findings) const override {
    static const std::set<std::string> kThreadish = {"thread", "jthread",
                                                     "async"};
    for (const SourceFile& file : project.files()) {
      if (file.module.empty()) continue;
      if (project.config().raw_thread_files.count(file.rel)) continue;
      const std::vector<Token>& toks = file.tokens;
      for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!toks[i].IsIdent("std") || !toks[i + 1].IsPunct("::")) continue;
        if (toks[i + 2].kind != TokKind::kIdent ||
            !kThreadish.count(toks[i + 2].text)) {
          continue;
        }
        // std::thread::id (and other nested names) are not thread creation.
        if (i + 3 < toks.size() && toks[i + 3].IsPunct("::")) continue;
        findings->push_back(
            {Name(), file.rel, toks[i + 2].line,
             "raw std::" + toks[i + 2].text +
                 " outside the execution substrates — use the Dispatcher "
                 "seam (or add the file to Config::raw_thread_files if it is "
                 "a new substrate)"});
      }
    }
  }
};

/// no-naked-new: no new/delete expressions in src/; use
/// make_unique/make_shared. Intentional leaky singletons carry
/// `// chk-lint: allow(naked-new)`.
class NoNakedNewRule : public Rule {
 public:
  std::string Name() const override { return "naked-new"; }
  std::string Description() const override {
    return "no new/delete expressions in src/ — use make_unique/make_shared "
           "(leaky singletons: chk-lint allow)";
  }

  void Run(const Project& project, std::vector<Finding>* findings) const override {
    for (const SourceFile& file : project.files()) {
      if (file.module.empty()) continue;
      const std::vector<Token>& toks = file.tokens;
      for (size_t i = 0; i < toks.size(); ++i) {
        const bool is_new = toks[i].IsIdent("new");
        const bool is_delete = toks[i].IsIdent("delete");
        if (!is_new && !is_delete) continue;
        // `operator new` / `operator delete` declarations are not
        // expressions; `= delete` is a deleted function.
        if (i > 0 && (toks[i - 1].IsIdent("operator"))) continue;
        if (is_delete && i > 0 && toks[i - 1].IsPunct("=")) continue;
        if (i + 1 >= toks.size()) continue;
        const Token& next = toks[i + 1];
        const bool new_expr = is_new && next.kind == TokKind::kIdent;
        const bool delete_expr =
            is_delete && (next.kind == TokKind::kIdent || next.IsPunct("*") ||
                          next.IsPunct("[") || next.IsPunct("(") ||
                          next.IsPunct("::"));
        if (!new_expr && !delete_expr) continue;
        findings->push_back(
            {Name(), file.rel, toks[i].line,
             std::string("naked '") + (is_new ? "new" : "delete") +
                 "' — ownership must be explicit: use "
                 "make_unique/make_shared"});
      }
    }
  }
};

/// no-plain-counter: tests may not use non-atomic static integer counters (a
/// classic hidden data race under the multi-threaded dispatcher).
class NoPlainCounterRule : public Rule {
 public:
  std::string Name() const override { return "no-plain-counter"; }
  std::string Description() const override {
    return "tests may not use non-atomic static integer counters — use "
           "std::atomic";
  }

  void Run(const Project& project, std::vector<Finding>* findings) const override {
    static const std::set<std::string> kIntTypes = {
        "int",     "long",     "short",    "unsigned", "size_t",
        "ssize_t", "int32_t",  "uint32_t", "int64_t",  "uint64_t"};
    for (const SourceFile& file : project.files()) {
      if (!file.in_tests) continue;
      const std::vector<Token>& toks = file.tokens;
      for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].IsIdent("static")) continue;
        const Token& next = toks[i + 1];
        // `static const/constexpr/atomic<...>` and class types are fine; the
        // race is specifically a mutable plain integer.
        if (next.kind != TokKind::kIdent || !kIntTypes.count(next.text)) {
          continue;
        }
        // Distinguish a variable from a function returning an integer: scan
        // to the declarator's end; '(' before ';'/'=' means a function, and
        // a cv qualifier anywhere makes the variable benign.
        bool is_variable = false;
        bool is_const = false;
        for (size_t j = i + 2; j < toks.size(); ++j) {
          if (toks[j].IsIdent("const") || toks[j].IsIdent("constexpr")) {
            is_const = true;
          }
          if (toks[j].IsPunct("(") || toks[j].IsPunct("{")) break;
          if (toks[j].IsPunct(";") || toks[j].IsPunct("=")) {
            is_variable = true;
            break;
          }
        }
        if (!is_variable || is_const) continue;
        findings->push_back(
            {Name(), file.rel, toks[i].line,
             "non-atomic static " + next.text +
                 " counter in a test — racy under the multi-threaded "
                 "dispatcher; use std::atomic"});
      }
    }
  }
};

/// no-raw-socket: ::socket() only in the networking substrates
/// (Config::raw_socket_modules); everything else goes through the
/// Transport / HttpServer seams so tests can swap in in-process fakes.
class NoRawSocketRule : public Rule {
 public:
  std::string Name() const override { return "no-raw-socket"; }
  std::string Description() const override {
    return "::socket() only in the networking substrates (cluster transport, "
           "middleware HTTP server)";
  }

  void Run(const Project& project, std::vector<Finding>* findings) const override {
    for (const SourceFile& file : project.files()) {
      if (file.module.empty()) continue;
      if (project.config().raw_socket_modules.count(file.module)) continue;
      const std::vector<Token>& toks = file.tokens;
      for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].IsPunct("::") && toks[i + 1].IsIdent("socket") &&
            toks[i + 2].IsPunct("(")) {
          findings->push_back(
              {Name(), file.rel, toks[i + 1].line,
               "raw ::socket() outside the networking substrates — go "
               "through the Transport / HttpServer seams"});
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeNoRawThreadRule() {
  return std::make_unique<NoRawThreadRule>();
}
std::unique_ptr<Rule> MakeNoNakedNewRule() {
  return std::make_unique<NoNakedNewRule>();
}
std::unique_ptr<Rule> MakeNoPlainCounterRule() {
  return std::make_unique<NoPlainCounterRule>();
}
std::unique_ptr<Rule> MakeNoRawSocketRule() {
  return std::make_unique<NoRawSocketRule>();
}

std::vector<std::unique_ptr<Rule>> BuiltinRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(MakeLayeringRule());
  rules.push_back(MakeActorBlockingRule());
  rules.push_back(MakeFaultPointRule());
  rules.push_back(MakeMessageHygieneRule());
  rules.push_back(MakeMetricNameRule());
  rules.push_back(MakeRawClockRule());
  rules.push_back(MakeNoRawThreadRule());
  rules.push_back(MakeNoNakedNewRule());
  rules.push_back(MakeNoPlainCounterRule());
  rules.push_back(MakeNoRawSocketRule());
  return rules;
}

}  // namespace analyze
}  // namespace marlin

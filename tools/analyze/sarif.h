#ifndef MARLIN_TOOLS_ANALYZE_SARIF_H_
#define MARLIN_TOOLS_ANALYZE_SARIF_H_

#include <string>
#include <vector>

#include "rule.h"

namespace marlin {
namespace analyze {

/// Renders findings as a SARIF 2.1.0 document (one run, one result per
/// finding) so CI can upload the report as an artifact and code-scanning
/// UIs can ingest it.
std::string RenderSarif(const std::vector<std::unique_ptr<Rule>>& rules,
                        const std::vector<Finding>& findings);

}  // namespace analyze
}  // namespace marlin

#endif  // MARLIN_TOOLS_ANALYZE_SARIF_H_

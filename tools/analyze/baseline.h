#ifndef MARLIN_TOOLS_ANALYZE_BASELINE_H_
#define MARLIN_TOOLS_ANALYZE_BASELINE_H_

#include <set>
#include <string>
#include <vector>

#include "rule.h"

namespace marlin {
namespace analyze {

/// The checked-in accepted-findings file. Each entry is
/// `rule<TAB>file<TAB>fnv1a(rule|file|normalized-line-text)` — keyed on
/// content, not line numbers, so unrelated edits don't churn it. The
/// workflow: new findings fail CI; a finding that is consciously accepted is
/// appended with --write-baseline and reviewed like any other diff; fixing
/// the code later leaves a stale entry that --write-baseline prunes.
class Baseline {
 public:
  /// Fingerprint of one finding (uses the current text of finding.line in
  /// `line_text`, whitespace-stripped).
  static std::string Key(const Finding& finding, const std::string& line_text);

  /// Loads entries from `path`. Missing file = empty baseline (not an
  /// error); malformed lines are ignored.
  void Load(const std::string& path);

  bool Contains(const std::string& key) const { return keys_.count(key) > 0; }
  size_t size() const { return keys_.size(); }

  /// Writes `findings` (with their fingerprints) as the new baseline.
  static bool Write(const std::string& path,
                    const std::vector<std::pair<Finding, std::string>>& entries,
                    std::string* error);

 private:
  std::set<std::string> keys_;
};

}  // namespace analyze
}  // namespace marlin

#endif  // MARLIN_TOOLS_ANALYZE_BASELINE_H_

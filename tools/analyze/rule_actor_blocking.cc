#include <set>

#include "rule.h"
#include "rules.h"

namespace marlin {
namespace analyze {

namespace {

/// Actor callbacks (Receive / OnStart / OnStop / OnRestart) run on dispatcher
/// threads; one blocked callback stalls a whole dispatcher lane and, under
/// the deterministic scheduler, deadlocks the exploration. This rule flags
/// blocking primitives inside the bodies of those callbacks on any class
/// derived from Actor in src/:
///   - std::this_thread::sleep_for / sleep_until
///   - condition-variable / future style waits: .wait( / .wait_for( /
///     .wait_until(
///   - thread joins: .join(
///   - raw socket calls: ::socket / ::connect / ::send / ::recv / ::accept
/// Asynchrony belongs on the Dispatcher seam (timers, Tell, the inference
/// batcher's completion messages), never inline in a callback.
class ActorBlockingRule : public Rule {
 public:
  std::string Name() const override { return "actor-blocking"; }
  std::string Description() const override {
    return "no blocking calls (sleep/wait/join/raw sockets) inside actor "
           "Receive/OnStart/OnStop/OnRestart bodies";
  }

  void Run(const Project& project, std::vector<Finding>* findings) const override {
    const std::set<std::string> actors = project.ClassesDerivedFrom("Actor");
    if (actors.empty()) return;
    static const char* kCallbacks[] = {"Receive", "OnStart", "OnStop",
                                       "OnRestart"};
    for (const char* callback : kCallbacks) {
      for (const MethodBody& body :
           project.FindMethodBodies(actors, callback)) {
        CheckBody(body, findings);
      }
    }
  }

 private:
  void CheckBody(const MethodBody& body, std::vector<Finding>* findings) const {
    static const std::set<std::string> kSleeps = {"sleep_for", "sleep_until"};
    static const std::set<std::string> kWaits = {"wait", "wait_for",
                                                 "wait_until", "join"};
    static const std::set<std::string> kSocketOps = {
        "socket", "connect", "send", "recv", "accept", "sendto", "recvfrom"};
    const std::vector<Token>& toks = body.file->tokens;
    for (size_t i = body.body_begin; i < body.body_end; ++i) {
      const Token& tok = toks[i];
      if (tok.kind != TokKind::kIdent) continue;
      const bool called = i + 1 < toks.size() && toks[i + 1].IsPunct("(");
      std::string what;
      if (kSleeps.count(tok.text)) {
        what = tok.text;
      } else if (called && kWaits.count(tok.text) && i > 0 &&
                 (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct(">"))) {
        // member call: cv.wait(...), future->wait_for(...), thread.join()
        what = "." + tok.text + "()";
      } else if (called && kSocketOps.count(tok.text) && i > 0 &&
                 toks[i - 1].IsPunct("::")) {
        what = "::" + tok.text + "()";
      } else {
        continue;
      }
      Emit(body, tok.line, what, findings);
    }
  }

  void Emit(const MethodBody& body, int line, const std::string& what,
            std::vector<Finding>* findings) const {
    findings->push_back(
        {Name(), body.file->rel, line,
         "blocking call " + what + " inside " + body.class_name +
             "::" + body.method_name +
             " — actor callbacks must not block; use the Dispatcher seam "
             "(timers, Tell-backs) instead"});
  }
};

}  // namespace

std::unique_ptr<Rule> MakeActorBlockingRule() {
  return std::make_unique<ActorBlockingRule>();
}

}  // namespace analyze
}  // namespace marlin

#ifndef MARLIN_TOOLS_ANALYZE_LEXER_H_
#define MARLIN_TOOLS_ANALYZE_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "token.h"

namespace marlin {
namespace analyze {

/// One `#include` directive.
struct IncludeDirective {
  std::string target;  // path between the quotes/brackets
  int line = 0;
  bool angled = false;  // <...> (system) vs "..." (project)
};

/// A lexed translation unit (or header) plus the side-band facts rules need:
/// project includes, per-line `// chk-lint: allow(<rule>)` suppressions, and
/// the raw line text (for baseline fingerprints and messages).
struct SourceFile {
  std::string path;  // as opened (absolute or root-relative)
  std::string rel;   // repo-relative, forward slashes: "src/core/pipeline.h"
  std::string module;  // "<m>" when rel is "src/<m>/...", else empty
  bool in_tests = false;  // rel starts with "tests/"
  bool is_header = false;

  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  /// line -> rule names suppressed on that line via `chk-lint: allow(rule)`.
  std::map<int, std::set<std::string>> allows;
  std::vector<std::string> lines;  // raw source lines, lines[0] is line 1

  bool LineAllows(int line, const std::string& rule) const {
    auto it = allows.find(line);
    return it != allows.end() && it->second.count(rule) > 0;
  }
  /// Raw text of a 1-based line ("" when out of range).
  const std::string& LineText(int line) const;
};

/// Lexes `content` into `out`. Strips // and /* */ comments (recording
/// chk-lint allows), strips preprocessor directives (recording #includes,
/// honouring backslash continuations), and understands raw strings so that
/// code inside R"(...)" never produces phantom tokens.
void LexSource(const std::string& content, SourceFile* out);

}  // namespace analyze
}  // namespace marlin

#endif  // MARLIN_TOOLS_ANALYZE_LEXER_H_

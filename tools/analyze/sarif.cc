#include "sarif.h"

#include <cstdio>
#include <sstream>

namespace marlin {
namespace analyze {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderSarif(const std::vector<std::unique_ptr<Rule>>& rules,
                        const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"marlin-analyze\",\n"
      << "      \"informationUri\": "
         "\"https://example.invalid/marlin/tools/analyze\",\n"
      << "      \"rules\": [\n";
  for (size_t i = 0; i < rules.size(); ++i) {
    out << "        {\"id\": \"" << JsonEscape(rules[i]->Name())
        << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(rules[i]->Description()) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }},\n"
      << "    \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "      {\"ruleId\": \"" << JsonEscape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << JsonEscape(f.message) << "\"}, \"locations\": [{"
        << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << JsonEscape(f.file) << "\"}, \"region\": {\"startLine\": " << f.line
        << "}}}]}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "    ]\n"
      << "  }]\n"
      << "}\n";
  return out.str();
}

}  // namespace analyze
}  // namespace marlin

#include "config.h"

namespace marlin {
namespace analyze {

int Config::LayerOf(const std::string& module) const {
  for (size_t i = 0; i < layers.size(); ++i) {
    for (const std::string& m : layers[i]) {
      if (m == module) return static_cast<int>(i);
    }
  }
  return -1;
}

const Config& ProjectConfig() {
  static const Config* const kConfig = [] {
    auto* config = new Config();  // chk-lint: allow(naked-new) leaky singleton
    // The allowed module dependency order (DESIGN.md §11). Lowest layer
    // first; every module may include its own layer and below. Relative to
    // the draft in ISSUE 7 this ordering makes two corrections the analyzer
    // itself surfaced: the domain-algorithm layer (vrf/events) sits *below*
    // the pipeline layer (core composes forecasters and detectors into
    // actors, never the reverse), and `sim` is a top-layer consumer (the
    // scenario/evaluation harness drives the domain code; after moving the
    // World types into geo, nothing in src/ depends on sim).
    config->layers = {
        {"util"},
        {"geo", "hexgrid", "obs", "ais", "storage"},
        {"stream", "kvstore", "nn"},
        {"vrf", "events"},
        {"actor", "core"},
        {"cluster", "fault", "middleware", "sim", "chk"},
    };
    // Compile-gated instrumentation seams: constant no-ops unless
    // -DMARLIN_CHECKED / -DMARLIN_FAULT arm them, so any module may include
    // them without creating a real layering edge.
    config->crosscut_headers = {
        "chk/chk.h",
        "fault/fault_injector.h",
    };
    // Execution substrates: the only files that may own raw threads. All
    // other code schedules through the Dispatcher seam so the deterministic
    // scheduler (src/chk) can control interleavings.
    config->raw_thread_files = {
        "src/util/thread_pool.h",      "src/util/thread_pool.cc",
        "src/actor/actor_system.h",    "src/actor/actor_system.cc",
        "src/middleware/http_server.h", "src/middleware/http_server.cc",
        "src/cluster/tcp_transport.h", "src/cluster/tcp_transport.cc",
    };
    // Networking substrates: the only modules that may open raw sockets.
    config->raw_socket_modules = {"cluster", "middleware"};
    // Host-time substrates: the only files that may read wall clocks or
    // really sleep. util/clock.h *is* the seam; logging stamps human-read
    // wall timestamps; the actor dispatcher's idle loop backs off with a
    // real micro-sleep. Everything else takes a Clock* / NanoClock* so
    // virtual-time runs (DESIGN.md §13) control what "now" means.
    config->raw_clock_files = {
        "src/util/clock.h",
        "src/util/logging.cc",
        "src/actor/actor_system.cc",
    };
    config->messages_header = "src/core/messages.h";
    return config;
  }();
  return *kConfig;
}

}  // namespace analyze
}  // namespace marlin

#include <cctype>
#include <map>

#include "rule.h"
#include "rules.h"

namespace marlin {
namespace analyze {

namespace {

/// Metric naming contract (DESIGN.md §6): every family registered through
/// MetricsRegistry::GetCounter/GetGauge/GetHistogram with a literal name
/// must be `marlin_` + lower_snake_case, and one family name must always be
/// registered as one metric kind — MetricsRegistry aborts at runtime on a
/// kind clash, this rule catches it before a test has to execute the path.
class MetricNameRule : public Rule {
 public:
  std::string Name() const override { return "metric-name"; }
  std::string Description() const override {
    return "metric names are marlin_* snake_case and each name registers as "
           "exactly one metric kind";
  }

  void Run(const Project& project, std::vector<Finding>* findings) const override {
    // name -> (kind, first "file:line")
    std::map<std::string, std::pair<std::string, std::string>> kinds;
    for (const SourceFile& file : project.files()) {
      if (file.module.empty()) continue;
      const std::vector<Token>& toks = file.tokens;
      for (size_t i = 0; i + 2 < toks.size(); ++i) {
        std::string kind;
        if (toks[i].IsIdent("GetCounter")) kind = "counter";
        else if (toks[i].IsIdent("GetGauge")) kind = "gauge";
        else if (toks[i].IsIdent("GetHistogram")) kind = "histogram";
        else continue;
        if (!toks[i + 1].IsPunct("(")) continue;
        if (toks[i + 2].kind != TokKind::kString) continue;  // computed name
        // Adjacent literal concatenation.
        std::string name = toks[i + 2].text;
        size_t j = i + 3;
        while (j < toks.size() && toks[j].kind == TokKind::kString) {
          name += toks[j++].text;
        }
        const int line = toks[i + 2].line;

        if (!WellFormed(name)) {
          findings->push_back(
              {Name(), file.rel, line,
               "metric name \"" + name +
                   "\" violates the naming contract: must match "
                   "marlin_[a-z0-9_]+ (lower snake_case, no leading/trailing "
                   "or doubled underscores)"});
        }
        const std::string here = file.rel + ":" + std::to_string(line);
        auto [it, inserted] = kinds.emplace(name, std::make_pair(kind, here));
        if (!inserted && it->second.first != kind) {
          findings->push_back(
              {Name(), file.rel, line,
               "metric \"" + name + "\" registered as " + kind +
                   " but previously as " + it->second.first + " (at " +
                   it->second.second +
                   ") — MetricsRegistry aborts on kind clashes"});
        }
      }
    }
  }

 private:
  static bool WellFormed(const std::string& name) {
    static const std::string kPrefix = "marlin_";
    if (name.rfind(kPrefix, 0) != 0) return false;
    const std::string rest = name.substr(kPrefix.size());
    if (rest.empty() || rest.front() == '_' || rest.back() == '_') return false;
    bool prev_underscore = false;
    for (const char c : rest) {
      if (c == '_') {
        if (prev_underscore) return false;
        prev_underscore = true;
        continue;
      }
      prev_underscore = false;
      if (!std::islower(static_cast<unsigned char>(c)) &&
          !std::isdigit(static_cast<unsigned char>(c))) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

std::unique_ptr<Rule> MakeMetricNameRule() {
  return std::make_unique<MetricNameRule>();
}

}  // namespace analyze
}  // namespace marlin

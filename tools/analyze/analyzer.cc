#include "analyzer.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>

#include "baseline.h"
#include "sarif.h"

namespace marlin {
namespace analyze {

namespace {

const SourceFile* FileByRel(const Project& project, const std::string& rel) {
  for (const SourceFile& file : project.files()) {
    if (file.rel == rel) return &file;
  }
  return nullptr;
}

}  // namespace

std::vector<Finding> RunRules(const Project& project, int* suppressed) {
  std::vector<Finding> findings;
  for (const std::unique_ptr<Rule>& rule : BuiltinRules()) {
    rule->Run(project, &findings);
  }
  // Per-line `// chk-lint: allow(<rule>)` suppressions.
  std::vector<Finding> kept;
  for (Finding& finding : findings) {
    const SourceFile* file = FileByRel(project, finding.file);
    if (file != nullptr && file->LineAllows(finding.line, finding.rule)) {
      if (suppressed != nullptr) ++*suppressed;
      continue;
    }
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.file == b.file && a.line == b.line &&
                                  a.rule == b.rule && a.message == b.message;
                         }),
             kept.end());
  return kept;
}

AnalyzeResult RunAnalysis(const AnalyzeOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  AnalyzeResult result;

  Project project(ProjectConfig(), options.root);
  std::string error;
  if (!project.Load(options.paths, &error)) {
    result.error = error;
    return result;
  }
  result.files_scanned = static_cast<int>(project.files().size());

  std::vector<Finding> findings = RunRules(project, &result.suppressed);

  // Attach content fingerprints for the baseline.
  std::vector<std::pair<Finding, std::string>> keyed;
  keyed.reserve(findings.size());
  for (Finding& finding : findings) {
    const SourceFile* file = FileByRel(project, finding.file);
    const std::string& line_text =
        file != nullptr ? file->LineText(finding.line) : finding.message;
    std::string key = Baseline::Key(finding, line_text);
    keyed.emplace_back(std::move(finding), std::move(key));
  }

  std::string baseline_path = options.baseline_path;
  if (!baseline_path.empty() &&
      !std::filesystem::path(baseline_path).is_absolute()) {
    baseline_path =
        (std::filesystem::path(options.root) / baseline_path).string();
  }

  if (options.write_baseline) {
    if (baseline_path.empty()) {
      result.error = "--write-baseline requires --baseline=<path>";
      return result;
    }
    if (!Baseline::Write(baseline_path, keyed, &result.error)) return result;
  }

  Baseline baseline;
  if (!baseline_path.empty()) baseline.Load(baseline_path);
  for (auto& [finding, key] : keyed) {
    if (!options.write_baseline && baseline.Contains(key)) {
      ++result.baselined;
      continue;
    }
    result.findings.push_back(finding);
  }
  if (options.write_baseline) result.findings.clear();

  if (!options.sarif_path.empty()) {
    std::ofstream out(options.sarif_path, std::ios::trunc);
    if (!out) {
      result.error = "cannot write SARIF report: " + options.sarif_path;
      return result;
    }
    out << RenderSarif(BuiltinRules(), result.findings);
  }

  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.ok = true;
  return result;
}

}  // namespace analyze
}  // namespace marlin

#!/usr/bin/env bash
# Thin wrapper around marlin-analyze (tools/analyze), which owns every lint
# rule that used to live here as grep/awk:
#
#   no-raw-thread, naked-new, no-plain-counter, no-raw-socket   (legacy set)
#   layering, actor-blocking, fault-point, message-hygiene, metric-name
#
# Suppress a finding on one line with `// chk-lint: allow(<rule>)`; accepted
# historical findings live in tools/analyze/baseline.txt. See DESIGN.md §11
# and `marlin-analyze --list-rules`.
#
# Usage: tools/lint.sh [extra marlin-analyze args]
# Reuses build/ when configured; otherwise configures a minimal build of the
# analyzer alone into build/.

set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build "$BUILD_DIR" --target marlin-analyze -j >/dev/null

exec "$BUILD_DIR/tools/analyze/marlin-analyze" --root=. "$@" src tests

#!/usr/bin/env bash
# Marlin project lint: enforces concurrency-hygiene rules that clang-tidy
# has no checks for. Run from anywhere; exits non-zero on any violation.
#
# Rules:
#   1. no-raw-thread   — `std::thread` / `std::jthread` / `std::async` may
#                        only appear in the execution substrate (ThreadPool,
#                        the ActorSystem timer, the HTTP accept loop). All
#                        other code must go through the Dispatcher seam so
#                        the deterministic scheduler can control it.
#                        (`std::thread::id` / `std::this_thread` are fine.)
#   2. no-naked-new    — no `new`/`delete` expressions in src/; use
#                        make_unique/make_shared. Intentional leaky
#                        singletons carry `// chk-lint: allow(naked-new)`.
#   3. no-plain-counter — tests may not use non-atomic static integer
#                        counters (a classic hidden data race under the
#                        multi-threaded dispatcher); use std::atomic.
#   4. no-raw-socket   — `::socket(` may only appear in the two networking
#                        substrates (src/cluster transport, src/middleware
#                        HTTP server). Everything else must go through the
#                        Transport / HttpServer seams so tests can swap in
#                        in-process fakes.
#
# Suppress a finding on one line with `// chk-lint: allow(<rule>)`.

set -u
cd "$(dirname "$0")/.."

fail=0

report() {
  local rule="$1" found="$2"
  if [ -n "$found" ]; then
    echo "lint[$rule]:"
    printf '%s\n' "$found" | sed 's/^/  /'
    fail=1
  fi
}

# --- Rule 1: no raw threads outside the execution substrate ----------------
found=$(grep -rln --include='*.cc' --include='*.h' 'std::\(thread\|jthread\|async\)' src | while read -r f; do
  case "$f" in
    src/util/thread_pool.cc|src/util/thread_pool.h) continue ;;
    src/actor/actor_system.cc|src/actor/actor_system.h) continue ;;
    src/middleware/http_server.cc|src/middleware/http_server.h) continue ;;
    src/cluster/tcp_transport.cc|src/cluster/tcp_transport.h) continue ;;
  esac
  awk -v file="$f" '
    /chk-lint:[ ]*allow\(no-raw-thread\)/ { next }
    {
      line = $0
      sub(/\/\/.*$/, "", line)
      gsub(/std::thread::/, "", line)   # std::thread::id is not a thread
      if (line ~ /std::(thread|jthread|async)[^:]/ ||
          line ~ /std::(thread|jthread|async)$/) {
        printf "%s:%d: %s\n", file, FNR, $0
      }
    }' "$f"
done)
report no-raw-thread "$found"

# --- Rule 2: no naked new/delete in src/ -----------------------------------
found=$(grep -rl --include='*.cc' --include='*.h' . src | while read -r f; do
  awk -v file="$f" '
    /chk-lint:[ ]*allow\(naked-new\)/ { next }
    {
      line = $0
      sub(/\/\/.*$/, "", line)
      if (line ~ /(^|[^_[:alnum:]])new[[:space:]]+[A-Za-z_:<]/ ||
          line ~ /(^|[^_[:alnum:]])delete[[:space:]]+[A-Za-z_:<*(]/) {
        printf "%s:%d: %s\n", file, FNR, $0
      }
    }' "$f"
done)
report no-naked-new "$found"

# --- Rule 3: no non-atomic static counters in tests ------------------------
found=$(grep -rn --include='*.cc' \
    -E '^[[:space:]]*static[[:space:]]+(int|long|short|unsigned|size_t|ssize_t|int32_t|uint32_t|int64_t|uint64_t)[[:space:]&*]' \
    tests | grep -v -e 'atomic' -e 'constexpr' -e 'const ' -e 'chk-lint:[ ]*allow(no-plain-counter)' || true)
report no-plain-counter "$found"

# --- Rule 4: no raw sockets outside the networking substrates --------------
found=$(grep -rn --include='*.cc' --include='*.h' '::socket(' src \
    | grep -v -e '^src/cluster/' -e '^src/middleware/' \
              -e 'chk-lint:[ ]*allow(no-raw-socket)' || true)
report no-raw-socket "$found"

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"

// Long-term route forecasting: the Figure-4a/4b view — EnvClus*-style
// pathway extraction from historical trips, per-OD-pair route forecasts
// conditioned on vessel type, and the aggregated "Patterns of Life"
// mobility statistics of the traversed area.
//
// Run: ./build/examples/long_term_route

#include <cstdio>

#include "sim/fleet.h"
#include "vrf/envclus.h"
#include "vrf/patterns_of_life.h"

using namespace marlin;

int main() {
  // 1. Historical data: a simulated global fleet over a day of stream time.
  const World world = World::GlobalWorld(7);
  FleetConfig fleet_config;
  fleet_config.num_vessels = 250;
  fleet_config.seed = 99;
  FleetSimulator fleet(&world, fleet_config);
  std::printf("simulating 24 h of history for %d vessels...\n",
              fleet_config.num_vessels);
  const auto tracks = fleet.RunTracks(24.0 * 3600.0);

  // Vessel-type registry (the static-data join of §3).
  std::map<Mmsi, VesselType> types;
  for (int i = 0; i < fleet.total_vessels(); ++i) {
    types[fleet.vessel(i)->mmsi()] = fleet.vessel(i)->static_info().type;
  }

  // 2. Build the EnvClus* transition graphs and the Patterns-of-Life
  //    aggregates from the same history.
  EnvClusModel envclus(&world);
  const int trips = envclus.BuildFromTracks(tracks, types);
  std::printf("extracted %d port-to-port trips covering %d OD pairs\n", trips,
              envclus.KnownOdPairs());

  PatternsOfLife pol(6);
  for (const auto& [mmsi, track] : tracks) {
    for (const AisPosition& report : track) pol.AddObservation(report);
  }
  std::printf("patterns of life: %lld observations over %zu active cells\n",
              static_cast<long long>(pol.TotalObservations()),
              pol.ActiveCells());

  // 3. Forecast a route for the first OD pair with data, for two vessel
  //    types, and show the aggregated mobility stats along the route.
  for (size_t origin = 0; origin < world.ports().size(); ++origin) {
    bool printed = false;
    for (size_t dest = 0; dest < world.ports().size(); ++dest) {
      if (origin == dest) continue;
      auto route = envclus.ForecastRoute(static_cast<int>(origin),
                                         static_cast<int>(dest),
                                         VesselType::kCargo);
      if (!route.ok()) continue;
      std::printf("\nroute forecast %s -> %s (%zu cells):\n",
                  world.ports()[origin].name.c_str(),
                  world.ports()[dest].name.c_str(), route->size());
      double distance = 0.0;
      for (size_t i = 0; i + 1 < route->size(); ++i) {
        distance += HaversineMeters((*route)[i], (*route)[i + 1]);
      }
      std::printf("  along-route distance: %.0f km\n", distance / 1000.0);
      std::printf("  waypoints (every 4th cell) with patterns-of-life:\n");
      for (size_t i = 0; i < route->size(); i += 4) {
        const CellMobilityStats stats = pol.Query((*route)[i]);
        std::printf("    lat %8.3f lon %8.3f | %5lld obs, %3lld vessels, "
                    "mean %4.1f kn\n",
                    (*route)[i].lat_deg, (*route)[i].lon_deg,
                    static_cast<long long>(stats.observations),
                    static_cast<long long>(stats.distinct_vessels),
                    stats.mean_sog_knots);
      }
      printed = true;
      break;
    }
    if (printed) break;
  }

  // 4. The global hotspots — the densest patterns-of-life cells.
  std::printf("\nglobal traffic hotspots:\n");
  for (const CellMobilityStats& stats : pol.TopCells(5)) {
    const LatLng center = HexGrid::CellToLatLng(stats.cell);
    std::printf("  lat %8.3f lon %8.3f | %6lld obs, %3lld vessels, mean "
                "%4.1f kn, mean course %5.1f deg\n",
                center.lat_deg, center.lon_deg,
                static_cast<long long>(stats.observations),
                static_cast<long long>(stats.distinct_vessels),
                stats.mean_sog_knots, stats.mean_cog_deg);
  }
  return 0;
}

// Traffic flow forecasting: the Figure-4d view — forecast trajectories of a
// regional fleet rasterised into the hexagonal grid, giving the predicted
// vessel count per cell for each 5-minute window up to 30 minutes. Cells
// are classed low/medium/high like the UI's green/red shading.
//
// Run: ./build/examples/traffic_flow

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/pipeline.h"
#include "sim/fleet.h"
#include "vrf/linear_model.h"

using namespace marlin;

int main() {
  MaritimePipeline pipeline(std::make_shared<LinearKinematicModel>());
  if (Status status = pipeline.Start(); !status.ok()) {
    std::printf("failed to start: %s\n", status.ToString().c_str());
    return 1;
  }

  // Stream ~90 minutes of a 300-vessel fleet so most vessels have full
  // input windows and live forecasts.
  const World world = World::GlobalWorld(7);
  FleetConfig fleet_config;
  fleet_config.num_vessels = 300;
  fleet_config.seed = 5;
  FleetSimulator fleet(&world, fleet_config);
  std::printf("streaming 90 minutes of a %d-vessel fleet...\n",
              fleet_config.num_vessels);
  for (const AisPosition& report : fleet.Run(90.0 * 60.0)) {
    (void)pipeline.Ingest(report);
  }
  pipeline.AwaitQuiescence();

  // Query the predicted raster per horizon window.
  std::printf("\npredicted traffic flow (active cells per horizon):\n");
  std::printf("| horizon   | active cells | vessels | low | med | high |\n");
  std::printf("|-----------|--------------|---------|-----|-----|------|\n");
  for (int step = 1; step <= kSvrfOutputSteps; ++step) {
    const std::vector<FlowCell> flow = pipeline.TrafficFlow(step);
    int total = 0, low = 0, medium = 0, high = 0;
    for (const FlowCell& cell : flow) {
      total += cell.count;
      if (cell.count <= 1) {
        ++low;
      } else if (cell.count <= 3) {
        ++medium;
      } else {
        ++high;
      }
    }
    std::printf("| t + %2d min | %12zu | %7d | %3d | %3d | %4d |\n", step * 5,
                flow.size(), total, low, medium, high);
  }

  // The busiest predicted cells at the 30-minute horizon — the red cells of
  // the UI heat view.
  std::vector<FlowCell> flow = pipeline.TrafficFlow(kSvrfOutputSteps);
  std::sort(flow.begin(), flow.end(), [](const FlowCell& a, const FlowCell& b) {
    return a.count > b.count;
  });
  std::printf("\nbusiest cells at t+30min:\n");
  for (size_t i = 0; i < std::min<size_t>(5, flow.size()); ++i) {
    const LatLng center = HexGrid::CellToLatLng(flow[i].cell);
    std::printf("  cell %016llx  (lat %.3f, lon %.3f)  %d vessels\n",
                static_cast<unsigned long long>(flow[i].cell), center.lat_deg,
                center.lon_deg, flow[i].count);
  }
  return 0;
}

// Middleware API tour: the §3 middleware component — the writer actor
// publishes actor states into the store, and the API serves the frontend.
// This example stands a pipeline up with a static vessel registry, streams
// a small fleet, and walks the REST-style routes the UI would call.
//
// Run: ./build/examples/api_tour

#include <cstdio>
#include <memory>

#include "core/pipeline.h"
#include "core/static_registry.h"
#include "middleware/api_service.h"
#include "sim/fleet.h"
#include "vrf/linear_model.h"

using namespace marlin;

namespace {

void Show(ApiService* api, const std::string& route) {
  const ApiResponse response = api->Handle("GET", route);
  std::string body = response.body;
  if (body.size() > 400) body = body.substr(0, 400) + "...";
  std::printf("GET %-55s -> %d\n  %s\n\n", route.c_str(), response.status,
              body.c_str());
}

}  // namespace

int main() {
  // Static registry: the §3 initialisation-phase data fusion. In
  // production this is loaded from the vessel database; here it is filled
  // from the simulator's own fleet metadata.
  const World world = World::GlobalWorld(7);
  FleetConfig fleet_config;
  fleet_config.num_vessels = 80;
  fleet_config.seed = 2718;
  FleetSimulator fleet(&world, fleet_config);
  StaticRegistry registry;
  for (int i = 0; i < fleet.total_vessels(); ++i) {
    registry.Put(fleet.vessel(i)->static_info());
  }
  registry.Freeze();
  std::printf("registry: %zu vessels cached in memory\n", registry.size());

  PipelineConfig config;
  // Monitor the five busiest world ports for berth congestion.
  for (int i = 0; i < 5; ++i) config.monitored_ports.push_back(world.ports()[i]);
  MaritimePipeline pipeline(std::make_shared<LinearKinematicModel>(), config);
  pipeline.SetStaticRegistry(&registry);
  if (Status status = pipeline.Start(); !status.ok()) {
    std::printf("failed to start: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("streaming 45 minutes of traffic...\n\n");
  for (const AisPosition& report : fleet.Run(45.0 * 60.0)) {
    (void)pipeline.Ingest(report);
  }
  pipeline.AwaitQuiescence();

  ApiService api(&pipeline);
  Show(&api, "/stats");
  // Pick a concrete vessel for the per-vessel routes.
  const auto keys = pipeline.store().ScanPrefix("vessel:");
  if (!keys.empty()) {
    const std::string mmsi = keys.front().substr(7);
    Show(&api, "/vessels/" + mmsi);
    Show(&api, "/vessels/" + mmsi + "/forecast");
  }
  Show(&api, "/events?limit=3");
  Show(&api, "/traffic/6");
  Show(&api, "/ports");
  Show(&api, "/viewport?min_lat=30&min_lon=-10&max_lat=60&max_lon=30");
  Show(&api, "/metrics");  // Prometheus text exposition of every substrate
  Show(&api, "/nonexistent");
  return 0;
}

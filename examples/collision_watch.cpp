// Collision watch: the Figure-4f scenario — a trained S-VRF mounted on the
// pipeline forecasts vessel routes in the Aegean; converging vessel pairs
// raise collision-forecast events that appear in the event list with the
// involved MMSIs and the estimated time of the collision.
//
// Run: ./build/examples/collision_watch

#include <cstdio>
#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "sim/fleet.h"
#include "sim/proximity_dataset.h"
#include "vrf/svrf_model.h"

using namespace marlin;

int main() {
  // 1. Train a compact S-VRF on simulated global traffic (in production the
  //    model is trained offline on archived streams and loaded here via
  //    SvrfModel::Deserialize).
  std::printf("training S-VRF...\n");
  SvrfModel::Config model_config;
  model_config.hidden_dim = 16;
  model_config.dense_dim = 16;
  auto svrf = std::make_shared<SvrfModel>(model_config);
  {
    const World world = World::GlobalWorld(7);
    FleetConfig fleet_config;
    fleet_config.num_vessels = 60;
    fleet_config.seed = 11;
    FleetSimulator fleet(&world, fleet_config);
    const auto tracks = fleet.RunTracks(6.0 * 3600.0);
    std::vector<SvrfSample> train;
    SampleBuilderOptions options;
    options.stride = 4;
    for (const auto& [mmsi, track] : tracks) {
      const auto samples = BuildSvrfSamples(track, options);
      train.insert(train.end(), samples.begin(), samples.end());
    }
    Trainer::Options train_options;
    train_options.epochs = 8;
    train_options.learning_rate = 3e-3;
    svrf->Train(train, {}, train_options);
    std::printf("trained on %zu segments\n", train.size());
  }

  // 2. Start the pipeline with the S-VRF mounted once, shared by all
  //    vessel actors.
  MaritimePipeline pipeline(svrf);
  if (Status status = pipeline.Start(); !status.ok()) {
    std::printf("failed to start: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Generate a handful of Aegean encounters (the synthetic
  //    proximity-event scenario family of §6.2) and replay both vessels'
  //    AIS histories through the pipeline in timestamp order.
  ProximityDatasetConfig dataset_config;
  dataset_config.events_under_2min = 3;
  dataset_config.events_2_to_5min = 4;
  dataset_config.events_5_to_12min = 3;
  dataset_config.negatives = 4;
  const ProximityDataset dataset = GenerateProximityDataset(dataset_config);
  std::printf("replaying %zu encounters (%d true proximity events)...\n",
              dataset.scenarios.size(), dataset.TotalEvents());
  for (const ProximityScenario& scenario : dataset.scenarios) {
    std::vector<AisPosition> merged;
    merged.insert(merged.end(), scenario.track_a.begin(),
                  scenario.track_a.end());
    merged.insert(merged.end(), scenario.track_b.begin(),
                  scenario.track_b.end());
    std::sort(merged.begin(), merged.end(),
              [](const AisPosition& a, const AisPosition& b) {
                return a.timestamp < b.timestamp;
              });
    for (const AisPosition& report : merged) {
      if (report.timestamp > scenario.eval_time) break;  // live boundary
      (void)pipeline.Ingest(report);
    }
  }
  pipeline.AwaitQuiescence();

  // 4. The event list (the UI's quick-navigation list of Figure 4f).
  std::printf("\n%-20s %-11s %-11s %-14s %s\n", "event", "vessel A",
              "vessel B", "separation (m)", "ETA (min from detection)");
  int collisions = 0;
  for (const MaritimeEvent& event : pipeline.RecentEvents(100)) {
    if (event.type != EventType::kCollisionForecast) continue;
    ++collisions;
    std::printf("%-20s %-11u %-11u %-14.0f %.1f\n",
                std::string(EventTypeName(event.type)).c_str(),
                event.vessel_a, event.vessel_b, event.distance_m,
                static_cast<double>(event.event_time - event.detected_at) /
                    kMicrosPerMinute);
  }
  std::printf("\n%d collision forecasts raised; ground truth: %d proximity "
              "events in the replayed window\n",
              collisions, dataset.TotalEvents());

  const PipelineStats stats = pipeline.Stats();
  std::printf("pipeline: %lld messages, %lld forecasts, %zu actors\n",
              static_cast<long long>(stats.positions_ingested),
              static_cast<long long>(stats.forecasts_generated),
              stats.actor_count);
  return 0;
}

// Quickstart: stand up the maritime forecasting pipeline, stream AIS
// messages into it (both the direct path and the broker/AIVDM wire path),
// and query forecasts, events, traffic flow, and the state store.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "ais/codec.h"
#include "core/pipeline.h"
#include "vrf/linear_model.h"

using namespace marlin;

namespace {

/// Crafts a position report for one vessel sailing course `cog` at `sog`.
AisPosition Report(Mmsi mmsi, TimeMicros t, LatLng where, double sog,
                   double cog) {
  AisPosition p;
  p.mmsi = mmsi;
  p.timestamp = t;
  p.position = where;
  p.sog_knots = sog;
  p.cog_deg = cog;
  p.heading_deg = static_cast<int>(cog);
  return p;
}

}  // namespace

int main() {
  // 1. Mount a route forecasting model (the linear kinematic baseline here;
  //    see collision_watch.cpp for a trained S-VRF) and start the pipeline.
  //    One vessel actor per MMSI is spawned automatically on first message.
  MaritimePipeline pipeline(std::make_shared<LinearKinematicModel>());
  if (Status status = pipeline.Start(); !status.ok()) {
    std::printf("failed to start: %s\n", status.ToString().c_str());
    return 1;
  }

  // 2. Stream a vessel eastbound through the Saronic Gulf: one report per
  //    minute. After 21 accepted reports the vessel actor has a full input
  //    window and produces a 30-minute forecast on every further message.
  const Mmsi kVessel = 237001234;
  LatLng position{37.90, 23.40};
  LatLng last_reported = position;
  TimeMicros t = TimeMicros{1700000000} * kMicrosPerSecond;
  for (int minute = 0; minute < 25; ++minute) {
    (void)pipeline.Ingest(Report(kVessel, t, position, 14.0, 90.0));
    last_reported = position;
    position = DestinationPoint(position, 90.0, 14.0 * kKnotsToMps * 60.0);
    t += kMicrosPerMinute;
  }
  pipeline.AwaitQuiescence();

  // 3. Query the vessel's latest forecast trajectory.
  StatusOr<ForecastTrajectory> forecast = pipeline.LatestForecast(kVessel);
  if (forecast.ok()) {
    std::printf("forecast for %u (present + 6 steps at 5-minute spacing):\n",
                kVessel);
    for (const ForecastPoint& point : forecast->points) {
      std::printf("  t+%2lldmin  lat %.4f  lon %.4f\n",
                  static_cast<long long>(
                      (point.time - forecast->points[0].time) / kMicrosPerMinute),
                  point.position.lat_deg, point.position.lon_deg);
    }
  }

  // 4. A second vessel crosses close by: the cell actor detects the
  //    proximity event and the writer publishes it.
  const LatLng near = DestinationPoint(last_reported, 0.0, 250.0);
  (void)pipeline.Ingest(Report(237005678, t - 30 * kMicrosPerSecond, near,
                               10.0, 180.0));
  pipeline.AwaitQuiescence();
  for (const MaritimeEvent& event : pipeline.RecentEvents(10)) {
    std::printf("event: %s between %u and %u at %.0f m\n",
                std::string(EventTypeName(event.type)).c_str(), event.vessel_a,
                event.vessel_b, event.distance_m);
  }

  // 5. The wire path: AIVDM sentences go through the embedded broker
  //    (Kafka substitute), keyed by MMSI, then get pumped into the actors.
  const AisPosition wire_report =
      Report(237009999, t, LatLng{37.5, 23.9}, 11.0, 45.0);
  const std::string sentence = AisCodec::EncodePosition(wire_report);
  std::printf("producing AIVDM: %s\n", sentence.c_str());
  (void)pipeline.Produce(sentence, wire_report.timestamp);
  const int pumped = pipeline.PumpIngestion();
  pipeline.AwaitQuiescence();
  std::printf("pumped %d record(s) from the broker\n", pumped);

  // 6. Everything the writer actor published is visible in the state store
  //    (the Redis-substitute the UI/API reads).
  std::printf("state store keys:\n");
  for (const std::string& key : pipeline.store().ScanPrefix("vessel:")) {
    std::printf("  %s\n", key.c_str());
  }

  const PipelineStats stats = pipeline.Stats();
  std::printf("stats: %lld positions, %lld forecasts, %lld events, "
              "%zu actors, mean processing %.1f us\n",
              static_cast<long long>(stats.positions_ingested),
              static_cast<long long>(stats.forecasts_generated),
              static_cast<long long>(stats.events_detected),
              stats.actor_count, stats.mean_processing_nanos / 1000.0);
  return 0;
}

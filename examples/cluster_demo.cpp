// Cluster sharding demo: vessel entity actors distributed over two Marlin
// nodes, with MMSI-keyed envelopes routed transparently to whichever node
// owns the vessel's shard (see DESIGN.md §8).
//
// Two ways to run it:
//
//   ./build/examples/cluster_demo
//       Single process, two in-process nodes — shows shard split, remote
//       routing, failure detection, and shard handoff with buffered replay.
//
//   ./build/examples/cluster_demo 1 7101 7102     # terminal A
//   ./build/examples/cluster_demo 2 7101 7102     # terminal B
//       Two real processes on loopback TCP: node <self_id> listens on its
//       own port and dials the other. Each process ingests reports for the
//       whole fleet; only the vessels whose shards it owns run locally.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "cluster/cluster_node.h"
#include "cluster/tcp_transport.h"
#include "cluster/transport.h"

using namespace marlin;
using namespace marlin::cluster;

namespace {

/// A stand-in vessel actor: counts the position reports routed to it.
class VesselActor : public Actor {
 public:
  explicit VesselActor(NodeId home) : home_(home) {}

  Status Receive(const std::any& message, ActorContext& ctx) override {
    (void)ctx;
    if (const auto* env = std::any_cast<ShardEnvelope>(&message)) {
      ++reports_;
      if (reports_ == 1) {
        std::printf("  [node %u] vessel %s spawned, first report: %s\n",
                    static_cast<unsigned>(home_), env->entity.c_str(),
                    env->payload.c_str());
      }
      return Status::Ok();
    }
    return Status::InvalidArgument("unexpected message");
  }

 private:
  const NodeId home_;
  int reports_ = 0;
};

ShardRegionOptions VesselRegion(NodeId self) {
  ShardRegionOptions options;
  options.name = "vessel";
  options.factory = [self](const std::string&) {
    return std::make_unique<VesselActor>(self);
  };
  return options;
}

std::string Mmsi(int i) { return "mmsi-" + std::to_string(244060000 + i); }

// ---------------------------------------------------------------- in-proc

int RunInProcess() {
  std::printf("== two in-process nodes, shared hub ==\n");
  InProcessHub hub;
  ClusterNodeConfig c1, c2;
  c1.self = 1;
  c2.self = 2;
  c1.nodes = c2.nodes = {1, 2};
  c1.auto_tick = c2.auto_tick = false;  // the demo drives protocol time
  ClusterNode n1(c1, std::make_shared<InProcessTransport>(&hub));
  ClusterNode n2(c2, std::make_shared<InProcessTransport>(&hub));
  if (!n1.Start().ok() || !n2.Start().ok()) return 1;
  ShardRegion* r1 = *n1.CreateRegion(VesselRegion(1));
  ShardRegion* r2 = *n2.CreateRegion(VesselRegion(2));

  // Two heartbeat rounds converge the membership; the shard space splits.
  constexpr TimeMicros kBeat = 200'000;
  TimeMicros now = 1'000'000;
  for (int round = 0; round < 2; ++round, now += kBeat) {
    n1.Tick(now);
    n2.Tick(now);
  }
  std::printf("converged: node 1 owns %zu shards, node 2 owns %zu\n",
              r1->OwnedShardCount(), r2->OwnedShardCount());

  // Route a handful of vessels from node 1; roughly half run remotely.
  for (int i = 0; i < 6; ++i) {
    r1->Tell(Mmsi(i), "lat=37.9,lon=23.6,sog=12.4");
  }
  n1.system().AwaitQuiescence();
  n2.system().AwaitQuiescence();
  std::printf("6 vessels told from node 1: %zu spawned locally, %zu on "
              "node 2\n",
              r1->LocalEntityCount(), r2->LocalEntityCount());

  // Kill the link and let node 1's failure detector fire: node 2's shards
  // hand off to node 1 (buffered envelopes replay once the handoff acks).
  hub.SetLinkUp(1, 2, false);
  for (int i = 0; i < 6; ++i, now += kBeat) n1.Tick(now);
  n1.system().AwaitQuiescence();
  std::printf("link cut -> node 2 unreachable on node 1; node 1 now owns "
              "%zu shards (epoch %llu)\n",
              r1->OwnedShardCount(),
              static_cast<unsigned long long>(n1.membership().epoch()));
  for (int i = 0; i < 6; ++i) {
    r1->Tell(Mmsi(i), "lat=38.0,lon=23.7,sog=12.1");
  }
  n1.system().AwaitQuiescence();
  std::printf("all 6 vessels now run on node 1 (%zu local entities)\n",
              r1->LocalEntityCount());

  std::printf("node 1 status: %s\n", n1.StatusJson().c_str());
  n1.Shutdown();
  n2.Shutdown();
  return 0;
}

// ---------------------------------------------------------------- TCP

int RunTcpNode(NodeId self, uint16_t port_a, uint16_t port_b) {
  const NodeId other = self == 1 ? 2 : 1;
  const uint16_t my_port = self == 1 ? port_a : port_b;
  const uint16_t other_port = self == 1 ? port_b : port_a;

  TcpTransportOptions transport_options;
  transport_options.listen_port = my_port;
  auto transport = std::make_shared<TcpTransport>(transport_options);
  if (Status status = transport->Listen(); !status.ok()) {
    std::printf("listen failed: %s\n", status.ToString().c_str());
    return 1;
  }
  transport->SetPeers({{other, "127.0.0.1", other_port}});

  ClusterNodeConfig config;
  config.self = self;
  config.nodes = {1, 2};
  config.membership.heartbeat_interval = 100'000;  // 100 ms
  ClusterNode node(config, transport);  // auto_tick drives the protocol
  if (Status status = node.Start(); !status.ok()) {
    std::printf("start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  ShardRegion* region = *node.CreateRegion(VesselRegion(self));
  std::printf("node %u up on 127.0.0.1:%u, dialing peer %u on :%u\n",
              static_cast<unsigned>(self), transport->port(),
              static_cast<unsigned>(other), other_port);

  // Both processes ingest the same fleet; the region routes each vessel to
  // the single node that owns its shard once membership converges.
  for (int second = 0; second < 10; ++second) {
    for (int i = 0; i < 10; ++i) {
      region->Tell(Mmsi(i), "t=" + std::to_string(second) +
                                ",reporter=" + std::to_string(self));
    }
    std::this_thread::sleep_for(std::chrono::seconds(1));
    std::printf("t=%ds: %zu shards owned, %zu local vessels\n", second,
                region->OwnedShardCount(), region->LocalEntityCount());
  }
  std::printf("final status: %s\n", node.StatusJson().c_str());
  node.Shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return RunInProcess();
  if (argc == 4) {
    const int self = std::atoi(argv[1]);
    const int port_a = std::atoi(argv[2]);
    const int port_b = std::atoi(argv[3]);
    if ((self == 1 || self == 2) && port_a > 0 && port_b > 0) {
      return RunTcpNode(static_cast<NodeId>(self),
                        static_cast<uint16_t>(port_a),
                        static_cast<uint16_t>(port_b));
    }
  }
  std::printf("usage: %s                 (two in-process nodes)\n", argv[0]);
  std::printf("       %s <1|2> <port_a> <port_b>   (one TCP node of a "
              "two-process pair)\n",
              argv[0]);
  return 2;
}

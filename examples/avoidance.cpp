// Collision avoidance (§7 future work, implemented): detect a forecast
// collision, propose the smallest sufficient starboard course alteration
// for the give-way vessel, and verify the manoeuvre clears the encounter.
//
// Run: ./build/examples/avoidance

#include <cstdio>

#include "events/collision.h"
#include "events/collision_avoidance.h"
#include "vrf/linear_model.h"

using namespace marlin;

namespace {

ForecastTrajectory Straight(Mmsi mmsi, LatLng from, double cog, double sog) {
  ForecastTrajectory trajectory;
  trajectory.mmsi = mmsi;
  LatLng position = from;
  for (int i = 0; i <= kSvrfOutputSteps; ++i) {
    trajectory.points.push_back(ForecastPoint{
        position, static_cast<TimeMicros>(i) * kSvrfStepMicros});
    position = DestinationPoint(position, cog, sog * kKnotsToMps * 300.0);
  }
  return trajectory;
}

}  // namespace

int main() {
  // Head-on encounter: two 14-knot vessels 10 km apart on reciprocal
  // courses — they meet in ~12 minutes.
  const LatLng own_start{37.8, 23.5};
  const LatLng other_start = DestinationPoint(own_start, 90.0, 10000.0);
  const ForecastTrajectory own = Straight(237000001, own_start, 90.0, 14.0);
  const ForecastTrajectory other =
      Straight(237000002, other_start, 270.0, 14.0);

  // 1. The collision forecaster flags the encounter.
  CollisionForecaster forecaster;
  forecaster.Observe(own);
  const auto events = forecaster.Observe(other);
  std::printf("collision forecast: %s\n",
              events.empty() ? "none (unexpected)" : "RAISED");
  if (!events.empty()) {
    std::printf("  vessels %u / %u, predicted separation %.0f m, ETA %.1f "
                "min\n",
                events[0].vessel_a, events[0].vessel_b, events[0].distance_m,
                static_cast<double>(events[0].event_time) / kMicrosPerMinute);
  }
  std::printf("  present CPA without action: %.0f m\n",
              MinTrajectoryDistance(own, other, 2 * kMicrosPerMinute));

  // 2. Propose the evasive manoeuvre for the own vessel.
  CollisionAvoidance avoidance;
  auto maneuver = avoidance.Propose(own, other);
  if (!maneuver.ok()) {
    std::printf("no manoeuvre found: %s\n",
                maneuver.status().ToString().c_str());
    return 1;
  }
  std::printf("\nproposed manoeuvre for %u:\n", maneuver->vessel);
  std::printf("  alter course %+.0f deg (to %.0f deg)\n",
              maneuver->course_change_deg, maneuver->new_course_deg);
  std::printf("  predicted clearance after manoeuvre: %.0f m\n",
              maneuver->clearance_m);

  // 3. Verify: the altered trajectory no longer triggers the forecaster.
  const ForecastTrajectory altered =
      CollisionAvoidance::ApplyCourse(own, maneuver->new_course_deg);
  CollisionForecaster verifier;
  verifier.Observe(altered);
  const auto residual = verifier.Observe(other);
  std::printf("\nverification: collision forecast after manoeuvre: %s\n",
              residual.empty() ? "CLEARED" : "still raised");
  return residual.empty() ? 0 : 1;
}

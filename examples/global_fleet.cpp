// Global fleet soak: a condensed Figure-6-style run — thousands of vessels
// arriving on the pipeline, S-VRF-equipped vessel actors, live processing
// statistics, and the latency-vs-actors curve summarised at the end.
//
// Run: ./build/examples/global_fleet   (about a minute on a laptop core)

#include <cstdio>
#include <memory>

#include "core/pipeline.h"
#include "sim/fleet.h"
#include "vrf/svrf_model.h"

using namespace marlin;

int main() {
  // Compact S-VRF; untrained weights are fine for a soak (inference cost
  // and routing are what this example exercises).
  SvrfModel::Config model_config;
  model_config.hidden_dim = 12;
  model_config.dense_dim = 12;
  MaritimePipeline pipeline(std::make_shared<SvrfModel>(model_config));
  if (Status status = pipeline.Start(); !status.ok()) {
    std::printf("failed to start: %s\n", status.ToString().c_str());
    return 1;
  }

  const World world = World::GlobalWorld(7);
  FleetConfig fleet_config;
  fleet_config.num_vessels = 5000;
  fleet_config.seed = 1;
  fleet_config.arrival_span_sec = 15.0 * 60.0;
  FleetSimulator fleet(&world, fleet_config);

  std::printf("streaming 45 min of a %d-vessel global fleet...\n",
              fleet_config.num_vessels);
  std::vector<AisPosition> batch;
  const int steps = static_cast<int>(45.0 * 60.0 / fleet_config.step_sec);
  for (int step = 0; step < steps; ++step) {
    batch.clear();
    fleet.Step(&batch);
    for (const AisPosition& report : batch) (void)pipeline.Ingest(report);
    pipeline.AwaitQuiescence();
    if (step % 60 == 59) {
      const PipelineStats stats = pipeline.Stats();
      std::printf("  +%2d min: %7lld msgs, %6lld forecasts, %5lld events, "
                  "%6zu actors, mean %6.1f us\n",
                  (step + 1) * 10 / 60,
                  static_cast<long long>(stats.positions_ingested),
                  static_cast<long long>(stats.forecasts_generated),
                  static_cast<long long>(stats.events_detected),
                  stats.actor_count, stats.mean_processing_nanos / 1000.0);
    }
  }
  pipeline.AwaitQuiescence();

  // Latency-vs-actors summary (the Figure-6 measurement).
  const std::vector<LatencyPoint> series = pipeline.LatencySeries();
  if (!series.empty()) {
    const int64_t max_actors = series.back().actor_count;
    double early = 0.0, late = 0.0;
    int64_t early_n = 0, late_n = 0;
    for (const LatencyPoint& point : series) {
      if (point.actor_count < max_actors / 4) {
        early += point.avg_nanos;
        ++early_n;
      } else if (point.actor_count > 3 * max_actors / 4) {
        late += point.avg_nanos;
        ++late_n;
      }
    }
    std::printf("\nlatency curve: first-quartile actors avg %.1f us, "
                "last-quartile avg %.1f us (%lld actor samples)\n",
                early_n ? early / early_n / 1000.0 : 0.0,
                late_n ? late / late_n / 1000.0 : 0.0,
                static_cast<long long>(series.size()));
  }
  const PipelineStats stats = pipeline.Stats();
  std::printf("final: %lld messages, %lld forecasts, %lld events, %zu "
              "actors, store holds %zu keys\n",
              static_cast<long long>(stats.positions_ingested),
              static_cast<long long>(stats.forecasts_generated),
              static_cast<long long>(stats.events_detected),
              stats.actor_count, pipeline.store().Size());
  return 0;
}

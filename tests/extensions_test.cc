#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <unordered_set>

#include "ais/codec.h"
#include "core/pipeline.h"
#include "events/port_congestion.h"
#include "events/route_deviation.h"
#include "sim/weather.h"
#include "stream/broker.h"
#include "vrf/envclus.h"
#include "vrf/linear_model.h"

namespace marlin {
namespace {

AisPosition At(Mmsi mmsi, TimeMicros t, LatLng where, double sog = 12.0,
               double cog = 90.0) {
  AisPosition p;
  p.mmsi = mmsi;
  p.timestamp = t;
  p.position = where;
  p.sog_knots = sog;
  p.cog_deg = cog;
  p.heading_deg = static_cast<int>(cog);
  return p;
}

ForecastTrajectory StraightForecast(Mmsi mmsi, TimeMicros start, LatLng from,
                                    double cog, double sog) {
  ForecastTrajectory trajectory;
  trajectory.mmsi = mmsi;
  LatLng position = from;
  for (int i = 0; i <= kSvrfOutputSteps; ++i) {
    trajectory.points.push_back(
        ForecastPoint{position, start + i * kSvrfStepMicros});
    position = DestinationPoint(position, cog, sog * kKnotsToMps * 300.0);
  }
  return trajectory;
}

// ------------------------------------------------------- Class B + codec

TEST(ClassBCodecTest, RoundTrip) {
  AisPosition original = At(339000123, TimeMicros{1700000000} * kMicrosPerSecond + 14 * kMicrosPerSecond,
                            LatLng{36.5, 25.4}, 8.7, 301.2);
  const std::string sentence = AisCodec::EncodePositionClassB(original);
  StatusOr<AisPosition> decoded =
      AisCodec::DecodePosition(sentence, original.timestamp);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->mmsi, original.mmsi);
  EXPECT_NEAR(decoded->position.lat_deg, original.position.lat_deg, 1e-5);
  EXPECT_NEAR(decoded->position.lon_deg, original.position.lon_deg, 1e-5);
  EXPECT_NEAR(decoded->sog_knots, original.sog_knots, 0.06);
  EXPECT_NEAR(decoded->cog_deg, original.cog_deg, 0.06);
  EXPECT_EQ(decoded->nav_status, NavStatus::kUndefined);
}

TEST(FragmentInfoTest, ParsesSingleAndMulti) {
  AisPosition p = At(237000001, 0, LatLng{38.0, 24.0});
  auto single = AisCodec::ParseFragmentInfo(AisCodec::EncodePosition(p));
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->fragment_count, 1);
  EXPECT_EQ(single->sequence_id, -1);

  AisStatic s;
  s.mmsi = 237000001;
  s.name = "TEST";
  const auto pair = AisCodec::EncodeStatic(s);
  auto first = AisCodec::ParseFragmentInfo(pair[0]);
  auto second = AisCodec::ParseFragmentInfo(pair[1]);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->fragment_count, 2);
  EXPECT_EQ(first->fragment_number, 1);
  EXPECT_EQ(second->fragment_number, 2);
  EXPECT_EQ(first->sequence_id, second->sequence_id);
  EXPECT_FALSE(AisCodec::ParseFragmentInfo("garbage").ok());
}

TEST(AivdmAssemblerTest, SingleFragmentPassesThrough) {
  AivdmAssembler assembler;
  const std::string sentence =
      AisCodec::EncodePosition(At(237000001, 0, LatLng{38.0, 24.0}));
  auto result = assembler.Feed(sentence);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], sentence);
  EXPECT_EQ(assembler.PendingGroups(), 0u);
}

TEST(AivdmAssemblerTest, ReassemblesInterleavedGroups) {
  AisStatic a;
  a.mmsi = 237000001;
  a.name = "ALPHA";
  AisStatic b;
  b.mmsi = 237000002;
  b.name = "BRAVO";
  auto group_a = AisCodec::EncodeStatic(a);
  auto group_b = AisCodec::EncodeStatic(b);
  // Give group B a different sequence id so the groups are distinct.
  for (std::string& sentence : group_b) {
    const size_t pos = sentence.find(",1,A,");
    // EncodeStatic always uses seq id 1; rewrite to 2 and fix checksum.
    if (pos == std::string::npos) continue;
    std::string body = sentence.substr(1, sentence.rfind('*') - 1);
    body[body.find(",1,A,") + 1] = '2';
    char buf[8];
    std::snprintf(buf, sizeof(buf), "*%02X", AisCodec::Checksum(body));
    sentence = "!" + body + buf;
  }
  AivdmAssembler assembler;
  // Interleave: A1, B1, B2 (completes B), A2 (completes A).
  auto r1 = assembler.Feed(group_a[0]);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty());
  auto r2 = assembler.Feed(group_b[0]);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
  EXPECT_EQ(assembler.PendingGroups(), 2u);
  auto r3 = assembler.Feed(group_b[1]);
  ASSERT_TRUE(r3.ok());
  ASSERT_EQ(r3->size(), 2u);
  auto decoded_b = AisCodec::DecodeStatic(*r3);
  ASSERT_TRUE(decoded_b.ok());
  EXPECT_EQ(decoded_b->name, "BRAVO");
  auto r4 = assembler.Feed(group_a[1]);
  ASSERT_TRUE(r4.ok());
  ASSERT_EQ(r4->size(), 2u);
  auto decoded_a = AisCodec::DecodeStatic(*r4);
  ASSERT_TRUE(decoded_a.ok());
  EXPECT_EQ(decoded_a->name, "ALPHA");
  EXPECT_EQ(assembler.PendingGroups(), 0u);
}

TEST(AivdmAssemblerTest, EvictsStaleGroups) {
  AivdmAssembler assembler(2);
  AisStatic s;
  s.name = "X";
  // Feed only first fragments of many groups with distinct mmsi/seq —
  // EncodeStatic always emits seq 1, so rewrite the channel letter to vary
  // the key instead.
  for (char channel : {'A', 'B', 'C', 'D'}) {
    s.mmsi = 237000000 + channel;
    auto pair = AisCodec::EncodeStatic(s);
    std::string body = pair[0].substr(1, pair[0].rfind('*') - 1);
    body[body.find(",1,A,") + 3] = channel;
    char buf[8];
    std::snprintf(buf, sizeof(buf), "*%02X", AisCodec::Checksum(body));
    ASSERT_TRUE(assembler.Feed("!" + body + buf).ok());
  }
  EXPECT_LE(assembler.PendingGroups(), 2u);
}

// -------------------------------------------------------- Output topics

TEST(OutputTopicsTest, EventsAndForecastsPublished) {
  PipelineConfig config;
  config.actor_system.num_threads = 2;
  config.publish_output_topics = true;
  MaritimePipeline pipeline(std::make_shared<LinearKinematicModel>(), config);
  ASSERT_TRUE(pipeline.Start().ok());
  // Full window -> forecasts; close pair -> proximity event.
  LatLng position{38.0, 24.0};
  for (int i = 0; i < kSvrfInputLength + 3; ++i) {
    ASSERT_TRUE(pipeline
                    .Ingest(At(700, static_cast<TimeMicros>(i) * kMicrosPerMinute,
                               position))
                    .ok());
    position = DestinationPoint(position, 90.0, 12.0 * kKnotsToMps * 60.0);
  }
  ASSERT_TRUE(
      pipeline
          .Ingest(At(701,
                     static_cast<TimeMicros>(kSvrfInputLength + 2) *
                             kMicrosPerMinute +
                         kMicrosPerSecond,
                     DestinationPoint(position, 270.0,
                                      12.0 * kKnotsToMps * 60.0 + 100.0)))
          .ok());
  pipeline.AwaitQuiescence();

  Consumer forecast_consumer(&pipeline.broker(), "test", "marlin-forecasts");
  const auto forecasts = forecast_consumer.Poll(1000);
  ASSERT_FALSE(forecasts.empty());
  EXPECT_EQ(forecasts[0].key, "700");
  // Record: mmsi;lat,lon,t;... with 7 points.
  size_t separators = 0;
  for (char c : forecasts[0].value) separators += c == ';';
  EXPECT_EQ(separators, static_cast<size_t>(kSvrfOutputSteps + 1));

  Consumer event_consumer(&pipeline.broker(), "test", "marlin-events");
  const auto events = event_consumer.Poll(1000);
  ASSERT_FALSE(events.empty());
  EXPECT_NE(events[0].value.find("Proximity"), std::string::npos);
}

TEST(OutputTopicsTest, DisabledByDefault) {
  MaritimePipeline pipeline(std::make_shared<LinearKinematicModel>());
  ASSERT_TRUE(pipeline.Start().ok());
  EXPECT_FALSE(pipeline.broker().HasTopic("marlin-forecasts"));
  EXPECT_FALSE(pipeline.broker().HasTopic("marlin-events"));
}

// ------------------------------------------------------- PortCongestion

TEST(PortCongestionTest, OccupancyTracksPresence) {
  std::vector<Port> ports = {{"Alpha", LatLng{38.0, 24.0}},
                             {"Beta", LatLng{40.0, 26.0}}};
  PortCongestionMonitor monitor(ports);
  // Two vessels in Alpha, one in Beta.
  monitor.ObservePosition(At(1, kMicrosPerMinute, LatLng{38.01, 24.01}));
  monitor.ObservePosition(At(2, kMicrosPerMinute, LatLng{38.02, 23.99}));
  monitor.ObservePosition(At(3, kMicrosPerMinute, LatLng{40.01, 26.0}));
  auto status = monitor.Status(2 * kMicrosPerMinute);
  EXPECT_EQ(status[0].occupancy, 2);
  EXPECT_EQ(status[1].occupancy, 1);
  EXPECT_FALSE(status[0].congested);
}

TEST(PortCongestionTest, DepartureMovesOccupancy) {
  std::vector<Port> ports = {{"Alpha", LatLng{38.0, 24.0}},
                             {"Beta", LatLng{40.0, 26.0}}};
  PortCongestionMonitor monitor(ports);
  monitor.ObservePosition(At(1, kMicrosPerMinute, LatLng{38.0, 24.0}));
  EXPECT_EQ(monitor.PortStatus(0, 2 * kMicrosPerMinute).occupancy, 1);
  // Vessel sails away (mid-sea), then shows up at Beta.
  monitor.ObservePosition(At(1, 10 * kMicrosPerMinute, LatLng{39.0, 25.0}));
  EXPECT_EQ(monitor.PortStatus(0, 11 * kMicrosPerMinute).occupancy, 0);
  monitor.ObservePosition(At(1, 20 * kMicrosPerMinute, LatLng{40.0, 26.0}));
  EXPECT_EQ(monitor.PortStatus(1, 21 * kMicrosPerMinute).occupancy, 1);
}

TEST(PortCongestionTest, PresenceExpires) {
  std::vector<Port> ports = {{"Alpha", LatLng{38.0, 24.0}}};
  PortCongestionMonitor::Config config;
  config.presence_ttl = 30 * kMicrosPerMinute;
  PortCongestionMonitor monitor(ports, config);
  monitor.ObservePosition(At(1, 0, LatLng{38.0, 24.0}));
  EXPECT_EQ(monitor.PortStatus(0, 10 * kMicrosPerMinute).occupancy, 1);
  EXPECT_EQ(monitor.PortStatus(0, 60 * kMicrosPerMinute).occupancy, 0);
}

TEST(PortCongestionTest, ForecastArrivalsCountAsInbound) {
  std::vector<Port> ports = {{"Alpha", LatLng{38.0, 24.0}}};
  PortCongestionMonitor monitor(ports);
  // Vessel 25 km west of the port heading east at 30 knots: the forecast
  // enters the 20 km port radius within 30 min.
  const LatLng start = DestinationPoint(LatLng{38.0, 24.0}, 270.0, 25000.0);
  monitor.ObserveForecast(StraightForecast(9, kMicrosPerMinute, start, 90.0, 30.0));
  const auto status = monitor.PortStatus(0, 2 * kMicrosPerMinute);
  EXPECT_EQ(status.inbound_30min, 1);
  EXPECT_EQ(status.occupancy, 0);
}

TEST(PortCongestionTest, CongestionFlagThreshold) {
  std::vector<Port> ports = {{"Alpha", LatLng{38.0, 24.0}}};
  PortCongestionMonitor::Config config;
  config.congestion_threshold = 3;
  PortCongestionMonitor monitor(ports, config);
  for (Mmsi mmsi = 1; mmsi <= 4; ++mmsi) {
    monitor.ObservePosition(At(mmsi, kMicrosPerMinute, LatLng{38.0, 24.0}));
  }
  EXPECT_TRUE(monitor.PortStatus(0, 2 * kMicrosPerMinute).congested);
}

TEST(PortCongestionTest, InPortVesselNotInbound) {
  std::vector<Port> ports = {{"Alpha", LatLng{38.0, 24.0}}};
  PortCongestionMonitor monitor(ports);
  monitor.ObservePosition(At(5, kMicrosPerMinute, LatLng{38.0, 24.0}));
  monitor.ObserveForecast(
      StraightForecast(5, kMicrosPerMinute, LatLng{38.0, 24.0}, 90.0, 2.0));
  const auto status = monitor.PortStatus(0, 2 * kMicrosPerMinute);
  EXPECT_EQ(status.occupancy, 1);
  EXPECT_EQ(status.inbound_30min, 0);
}

// ------------------------------------------------------- RouteDeviation

class RouteDeviationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const BoundingBox box{34.0, 18.0, 44.0, 30.0};
    world_ = std::make_unique<World>(World::RegionalWorld(box, 3, 13));
    model_ = std::make_unique<EnvClusModel>(world_.get());
    // Historical pathway: port 0 -> port 1 along the direct lane.
    const Lane* lane = nullptr;
    for (const Lane& l : world_->lanes()) {
      if (l.from_port == 0 && l.to_port == 1) lane = &l;
    }
    ASSERT_NE(lane, nullptr);
    Trip trip;
    trip.mmsi = 42;
    trip.origin_port = 0;
    trip.destination_port = 1;
    trip.vessel_type = VesselType::kCargo;
    TimeMicros t = 0;
    for (const LatLng& waypoint : lane->waypoints) {
      trip.points.push_back(At(42, t, waypoint));
      t += kMicrosPerMinute;
    }
    model_->AddTrip(trip);
    lane_ = lane;
  }

  std::unique_ptr<World> world_;
  std::unique_ptr<EnvClusModel> model_;
  const Lane* lane_ = nullptr;
};

TEST_F(RouteDeviationTest, OnCorridorPositionsAreQuiet) {
  RouteDeviationDetector detector(model_.get());
  ASSERT_TRUE(detector.StartVoyage(77, 0, 1).ok());
  TimeMicros t = 0;
  for (const LatLng& waypoint : lane_->waypoints) {
    EXPECT_FALSE(detector.Observe(At(77, t, waypoint)).has_value());
    t += kMicrosPerMinute;
  }
}

TEST_F(RouteDeviationTest, OffCorridorRaisesAfterConfirmation) {
  RouteDeviationDetector::Config config;
  config.confirmation_count = 3;
  RouteDeviationDetector detector(model_.get(), config);
  ASSERT_TRUE(detector.StartVoyage(77, 0, 1).ok());
  // ~150 km perpendicular off the lane midpoint: far outside the corridor.
  const LatLng mid = lane_->waypoints[lane_->waypoints.size() / 2];
  const double lane_bearing =
      InitialBearingDeg(lane_->waypoints.front(), lane_->waypoints.back());
  const LatLng off = DestinationPoint(mid, lane_bearing + 90.0, 150000.0);
  EXPECT_FALSE(detector.Observe(At(77, 0, off)).has_value());
  EXPECT_FALSE(detector.Observe(At(77, kMicrosPerMinute, off)).has_value());
  auto event = detector.Observe(At(77, 2 * kMicrosPerMinute, off));
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->type, EventType::kRouteDeviation);
  EXPECT_EQ(event->vessel_a, 77u);
  // Cooldown suppresses immediate re-alerts.
  EXPECT_FALSE(detector.Observe(At(77, 3 * kMicrosPerMinute, off)).has_value());
}

TEST_F(RouteDeviationTest, ReturnToCorridorsResetsConfirmation) {
  RouteDeviationDetector::Config config;
  config.confirmation_count = 2;
  RouteDeviationDetector detector(model_.get(), config);
  ASSERT_TRUE(detector.StartVoyage(77, 0, 1).ok());
  const LatLng mid = lane_->waypoints[lane_->waypoints.size() / 2];
  const LatLng off = DestinationPoint(mid, 90.0, 150000.0);
  EXPECT_FALSE(detector.Observe(At(77, 0, off)).has_value());
  // Back on the lane: counter resets.
  EXPECT_FALSE(detector.Observe(At(77, kMicrosPerMinute, mid)).has_value());
  EXPECT_FALSE(detector.Observe(At(77, 2 * kMicrosPerMinute, off)).has_value());
}

TEST_F(RouteDeviationTest, UnknownOdPairAndUntrackedVessel) {
  RouteDeviationDetector detector(model_.get());
  EXPECT_EQ(detector.StartVoyage(1, 0, 2).code(), StatusCode::kNotFound);
  EXPECT_FALSE(detector.Observe(At(123, 0, LatLng{0, 0})).has_value());
  detector.EndVoyage(123);  // no-op
}

// ------------------------------------------------------------- Weather

TEST(WeatherTest, DeterministicAndSmooth) {
  const WeatherField field(7);
  const WeatherField same(7);
  const LatLng p{45.0, -30.0};
  const TimeMicros t = TimeMicros{1700000000} * kMicrosPerSecond;
  const WeatherSample a = field.At(p, t);
  const WeatherSample b = same.At(p, t);
  EXPECT_DOUBLE_EQ(a.wind_speed_mps, b.wind_speed_mps);
  EXPECT_DOUBLE_EQ(a.wave_height_m, b.wave_height_m);
  // Smooth in space: 1 km apart differs by little.
  const WeatherSample c = field.At(DestinationPoint(p, 90.0, 1000.0), t);
  EXPECT_LT(std::abs(a.wind_speed_mps - c.wind_speed_mps), 1.0);
}

TEST(WeatherTest, FieldVariesAcrossSpaceAndTime) {
  const WeatherField field(7);
  const TimeMicros t = TimeMicros{1700000000} * kMicrosPerSecond;
  const WeatherSample here = field.At(LatLng{40.0, -30.0}, t);
  const WeatherSample there = field.At(LatLng{-10.0, 100.0}, t);
  const WeatherSample later =
      field.At(LatLng{40.0, -30.0}, t + 3 * 24 * 3600 * kMicrosPerSecond);
  EXPECT_NE(here.wind_speed_mps, there.wind_speed_mps);
  EXPECT_NE(here.wind_speed_mps, later.wind_speed_mps);
  EXPECT_GT(here.wave_height_m, 0.0);
}

TEST(WeatherTest, PenaltyBounded) {
  const WeatherField field(3);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const LatLng p{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
    const double penalty =
        field.RoutePenalty(p, static_cast<TimeMicros>(rng.Uniform(0, 1e15)));
    EXPECT_GE(penalty, 0.0);
    EXPECT_LE(penalty, 1.0);
  }
}

TEST(WeatherTest, WeatherAwareRoutingAvoidsPenalisedCells) {
  // Two equally travelled pathways diverge; penalising one's cells must
  // flip the forecast to the other.
  const BoundingBox box{34.0, 18.0, 44.0, 30.0};
  const World world = World::RegionalWorld(box, 2, 21);
  EnvClusModel model(&world);
  const LatLng start = world.ports()[0].position;
  const LatLng end = world.ports()[1].position;
  auto make_trip = [&](double detour_bearing, Mmsi mmsi) {
    Trip trip;
    trip.mmsi = mmsi;
    trip.origin_port = 0;
    trip.destination_port = 1;
    trip.vessel_type = VesselType::kCargo;
    const double bearing = InitialBearingDeg(start, end);
    const double total = HaversineMeters(start, end);
    TimeMicros t = 0;
    for (int i = 0; i <= 40; ++i) {
      const double f = i / 40.0;
      LatLng p = DestinationPoint(start, bearing, total * f);
      p = DestinationPoint(p, bearing + detour_bearing,
                           60000.0 * std::sin(kPi * f));
      trip.points.push_back(At(mmsi, t, p));
      t += kMicrosPerMinute;
    }
    return trip;
  };
  for (int i = 0; i < 3; ++i) {
    model.AddTrip(make_trip(90.0, 100 + i));   // south branch
    model.AddTrip(make_trip(-90.0, 200 + i));  // north branch
  }
  auto neutral = model.ForecastRoute(0, 1, VesselType::kCargo);
  ASSERT_TRUE(neutral.ok());
  // Penalise every cell of the neutral route heavily; the alternative
  // branch must be chosen.
  std::unordered_set<CellId> penalised;
  for (const LatLng& p : *neutral) {
    penalised.insert(HexGrid::LatLngToCell(p, model.config().resolution));
  }
  auto avoided = model.ForecastRoute(
      0, 1, VesselType::kCargo, [&penalised](CellId cell) {
        return penalised.count(cell) > 0 ? 50.0 : 0.0;
      });
  ASSERT_TRUE(avoided.ok());
  int overlap = 0;
  for (const LatLng& p : *avoided) {
    if (penalised.count(HexGrid::LatLngToCell(p, model.config().resolution)) >
        0) {
      ++overlap;
    }
  }
  // Endpoints necessarily overlap (same ports); the middle must not.
  EXPECT_LE(overlap, static_cast<int>(avoided->size() / 3));
}

}  // namespace
}  // namespace marlin

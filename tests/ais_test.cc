#include <gtest/gtest.h>

#include <cmath>

#include "ais/codec.h"
#include "ais/preprocess.h"
#include "ais/types.h"
#include "util/rng.h"

namespace marlin {
namespace {

AisPosition MakeReport(Mmsi mmsi, TimeMicros t, double lat, double lon,
                       double sog = 12.0, double cog = 90.0) {
  AisPosition p;
  p.mmsi = mmsi;
  p.timestamp = t;
  p.position = LatLng{lat, lon};
  p.sog_knots = sog;
  p.cog_deg = cog;
  p.heading_deg = static_cast<int>(cog);
  return p;
}

// ---------------------------------------------------------------- Types

TEST(AisTypesTest, VesselTypeFromItuCode) {
  EXPECT_EQ(VesselTypeFromItuCode(70), VesselType::kCargo);
  EXPECT_EQ(VesselTypeFromItuCode(79), VesselType::kCargo);
  EXPECT_EQ(VesselTypeFromItuCode(80), VesselType::kTanker);
  EXPECT_EQ(VesselTypeFromItuCode(60), VesselType::kPassenger);
  EXPECT_EQ(VesselTypeFromItuCode(30), VesselType::kFishing);
  EXPECT_EQ(VesselTypeFromItuCode(36), VesselType::kPleasureCraft);
  EXPECT_EQ(VesselTypeFromItuCode(37), VesselType::kPleasureCraft);
  EXPECT_EQ(VesselTypeFromItuCode(52), VesselType::kTug);
  EXPECT_EQ(VesselTypeFromItuCode(40), VesselType::kHighSpeedCraft);
  EXPECT_EQ(VesselTypeFromItuCode(90), VesselType::kOther);
  EXPECT_EQ(VesselTypeFromItuCode(0), VesselType::kUnknown);
}

TEST(AisTypesTest, VesselTypeNamesStable) {
  EXPECT_EQ(VesselTypeName(VesselType::kCargo), "Cargo");
  EXPECT_EQ(VesselTypeName(VesselType::kTanker), "Tanker");
  EXPECT_EQ(VesselTypeName(VesselType::kUnknown), "Unknown");
}

// ---------------------------------------------------------------- Codec

TEST(AisCodecTest, ChecksumMatchesKnownSentence) {
  // Standard NMEA checksum example: XOR of all chars between ! and *.
  EXPECT_EQ(AisCodec::Checksum("AIVDM,1,1,,A,?,0"),
            AisCodec::Checksum("AIVDM,1,1,,A,?,0"));
}

TEST(AisCodecTest, PayloadBitsRoundTrip) {
  BitWriter w;
  w.WriteUint(0x3FF, 10);
  w.WriteInt(-12345, 20);
  w.WriteUint(7, 3);
  int fill = 0;
  const std::string payload = AisCodec::BitsToPayload(w.bits(), &fill);
  const auto bits = AisCodec::PayloadToBits(payload, fill);
  ASSERT_EQ(bits.size(), w.bits().size());
  BitReader r(bits);
  EXPECT_EQ(r.ReadUint(10), 0x3FFu);
  EXPECT_EQ(r.ReadInt(20), -12345);
  EXPECT_EQ(r.ReadUint(3), 7u);
}

TEST(AisCodecTest, PositionRoundTrip) {
  const TimeMicros t = TimeMicros{1635811200} * kMicrosPerSecond + 37 * kMicrosPerSecond;
  AisPosition original = MakeReport(237846000, t, 37.94213, 23.64611, 14.3, 135.5);
  original.nav_status = NavStatus::kUnderWayUsingEngine;
  const std::string sentence = AisCodec::EncodePosition(original);
  EXPECT_EQ(sentence.front(), '!');
  StatusOr<AisPosition> decoded = AisCodec::DecodePosition(sentence, t);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->mmsi, original.mmsi);
  EXPECT_NEAR(decoded->position.lat_deg, original.position.lat_deg, 1e-5);
  EXPECT_NEAR(decoded->position.lon_deg, original.position.lon_deg, 1e-5);
  EXPECT_NEAR(decoded->sog_knots, original.sog_knots, 0.05);
  EXPECT_NEAR(decoded->cog_deg, original.cog_deg, 0.05);
  EXPECT_EQ(decoded->heading_deg, original.heading_deg);
  EXPECT_EQ(decoded->timestamp, original.timestamp);
  EXPECT_EQ(decoded->nav_status, original.nav_status);
}

TEST(AisCodecTest, PositionRoundTripRandomised) {
  Rng rng(61);
  for (int i = 0; i < 300; ++i) {
    const TimeMicros t = TimeMicros{1600000000} * kMicrosPerSecond +
                         rng.UniformInt(int64_t{0}, int64_t{86400}) * kMicrosPerSecond;
    AisPosition p = MakeReport(
        static_cast<Mmsi>(rng.UniformInt(int64_t{200000000}, int64_t{775999999})),
        t, rng.Uniform(-85.0, 85.0), rng.Uniform(-179.9, 179.9),
        rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 359.9));
    const std::string sentence = AisCodec::EncodePosition(p);
    StatusOr<AisPosition> decoded = AisCodec::DecodePosition(sentence, t);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->mmsi, p.mmsi);
    EXPECT_NEAR(decoded->position.lat_deg, p.position.lat_deg, 2e-6 + 1e-6);
    EXPECT_NEAR(decoded->position.lon_deg, p.position.lon_deg, 2e-6 + 1e-6);
    EXPECT_NEAR(decoded->sog_knots, p.sog_knots, 0.051);
    EXPECT_NEAR(decoded->cog_deg, p.cog_deg, 0.051);
  }
}

TEST(AisCodecTest, SogNotAvailableEncoding) {
  AisPosition p = MakeReport(205000000, kMicrosPerSecond, 40.0, -70.0);
  p.sog_knots = 102.3;
  const std::string sentence = AisCodec::EncodePosition(p);
  StatusOr<AisPosition> decoded =
      AisCodec::DecodePosition(sentence, kMicrosPerSecond);
  ASSERT_TRUE(decoded.ok());
  EXPECT_DOUBLE_EQ(decoded->sog_knots, 102.3);
}

TEST(AisCodecTest, RejectsCorruptedChecksum) {
  AisPosition p = MakeReport(205000000, kMicrosPerSecond, 40.0, -70.0);
  std::string sentence = AisCodec::EncodePosition(p);
  // Flip one payload character.
  sentence[20] = sentence[20] == 'A' ? 'B' : 'A';
  StatusOr<AisPosition> decoded =
      AisCodec::DecodePosition(sentence, kMicrosPerSecond);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(AisCodecTest, RejectsGarbage) {
  EXPECT_FALSE(AisCodec::DecodePosition("hello world", 0).ok());
  EXPECT_FALSE(AisCodec::DecodePosition("", 0).ok());
  EXPECT_FALSE(AisCodec::DecodePosition("!AIVDM,1,1,,A", 0).ok());
}

TEST(AisCodecTest, StaticRoundTrip) {
  AisStatic original;
  original.mmsi = 239000123;
  original.name = "MARLIN TEST";
  original.type = VesselType::kTanker;
  original.length_m = 240.0;
  original.beam_m = 38.0;
  original.draught_m = 12.4;
  original.destination = "PIRAEUS";
  const auto sentences = AisCodec::EncodeStatic(original);
  ASSERT_EQ(sentences.size(), 2u);
  StatusOr<AisStatic> decoded = AisCodec::DecodeStatic(sentences);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->mmsi, original.mmsi);
  EXPECT_EQ(decoded->name, original.name);
  EXPECT_EQ(decoded->type, original.type);
  EXPECT_NEAR(decoded->length_m, original.length_m, 2.0);
  EXPECT_NEAR(decoded->beam_m, original.beam_m, 2.0);
  EXPECT_NEAR(decoded->draught_m, original.draught_m, 0.05);
  EXPECT_EQ(decoded->destination, original.destination);
}

TEST(AisCodecTest, StaticRequiresTwoFragments) {
  EXPECT_FALSE(AisCodec::DecodeStatic({}).ok());
  EXPECT_FALSE(AisCodec::DecodeStatic({"!AIVDM,1,1,,A,0,0*00"}).ok());
}

// ---------------------------------------------------------- Downsampler

TEST(DownsamplerTest, EnforcesMinimumInterval) {
  Downsampler ds(30 * kMicrosPerSecond);
  EXPECT_TRUE(ds.Accept(0));
  EXPECT_FALSE(ds.Accept(10 * kMicrosPerSecond));
  EXPECT_FALSE(ds.Accept(29 * kMicrosPerSecond));
  EXPECT_TRUE(ds.Accept(30 * kMicrosPerSecond));
  EXPECT_TRUE(ds.Accept(75 * kMicrosPerSecond));
}

TEST(DownsamplerTest, RejectsOutOfOrder) {
  Downsampler ds(30 * kMicrosPerSecond);
  EXPECT_TRUE(ds.Accept(100 * kMicrosPerSecond));
  EXPECT_FALSE(ds.Accept(50 * kMicrosPerSecond));
}

TEST(DownsamplerTest, ResetForgetsHistory) {
  Downsampler ds(30 * kMicrosPerSecond);
  EXPECT_TRUE(ds.Accept(100 * kMicrosPerSecond));
  ds.Reset();
  EXPECT_TRUE(ds.Accept(0));
}

TEST(FleetDownsamplerTest, IndependentPerVessel) {
  FleetDownsampler ds(30 * kMicrosPerSecond);
  EXPECT_TRUE(ds.Accept(111, 0));
  EXPECT_TRUE(ds.Accept(222, 0));
  EXPECT_FALSE(ds.Accept(111, 10 * kMicrosPerSecond));
  EXPECT_FALSE(ds.Accept(222, 10 * kMicrosPerSecond));
  EXPECT_TRUE(ds.Accept(111, 31 * kMicrosPerSecond));
  EXPECT_EQ(ds.TrackedVessels(), 2u);
}

// ---------------------------------------------------------- Segmentation

TEST(SegmentTrajectoryTest, SplitsOnGaps) {
  std::vector<AisPosition> track;
  TimeMicros t = 0;
  for (int i = 0; i < 10; ++i) {
    track.push_back(MakeReport(1, t, 38.0 + 0.001 * i, 24.0));
    t += kMicrosPerMinute;
  }
  t += 2 * 60 * kMicrosPerMinute;  // 2-hour gap
  for (int i = 0; i < 5; ++i) {
    track.push_back(MakeReport(1, t, 39.0 + 0.001 * i, 24.0));
    t += kMicrosPerMinute;
  }
  const auto segments = SegmentTrajectory(track, 30 * kMicrosPerMinute);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].size(), 10u);
  EXPECT_EQ(segments[1].size(), 5u);
}

TEST(SegmentTrajectoryTest, DropsSingletonSegments) {
  std::vector<AisPosition> track;
  track.push_back(MakeReport(1, 0, 38.0, 24.0));
  track.push_back(MakeReport(1, 100 * kMicrosPerMinute, 38.5, 24.0));
  track.push_back(MakeReport(1, 200 * kMicrosPerMinute, 39.0, 24.0));
  const auto segments = SegmentTrajectory(track, 30 * kMicrosPerMinute);
  EXPECT_TRUE(segments.empty());
}

TEST(SegmentTrajectoryTest, EmptyInput) {
  EXPECT_TRUE(SegmentTrajectory({}, kMicrosPerMinute).empty());
}

TEST(InterpolatePositionTest, LinearBetweenPoints) {
  std::vector<AisPosition> segment;
  segment.push_back(MakeReport(1, 0, 38.0, 24.0));
  segment.push_back(MakeReport(1, 10 * kMicrosPerMinute, 39.0, 25.0));
  StatusOr<LatLng> mid = InterpolatePosition(segment, 5 * kMicrosPerMinute);
  ASSERT_TRUE(mid.ok());
  EXPECT_NEAR(mid->lat_deg, 38.5, 1e-9);
  EXPECT_NEAR(mid->lon_deg, 24.5, 1e-9);
}

TEST(InterpolatePositionTest, ExactEndpoints) {
  std::vector<AisPosition> segment;
  segment.push_back(MakeReport(1, 0, 38.0, 24.0));
  segment.push_back(MakeReport(1, 10 * kMicrosPerMinute, 39.0, 25.0));
  EXPECT_NEAR(InterpolatePosition(segment, 0)->lat_deg, 38.0, 1e-12);
  EXPECT_NEAR(InterpolatePosition(segment, 10 * kMicrosPerMinute)->lat_deg,
              39.0, 1e-12);
}

TEST(InterpolatePositionTest, OutsideSpanFails) {
  std::vector<AisPosition> segment;
  segment.push_back(MakeReport(1, kMicrosPerMinute, 38.0, 24.0));
  segment.push_back(MakeReport(1, 2 * kMicrosPerMinute, 39.0, 25.0));
  EXPECT_FALSE(InterpolatePosition(segment, 0).ok());
  EXPECT_FALSE(InterpolatePosition(segment, 3 * kMicrosPerMinute).ok());
  EXPECT_FALSE(InterpolatePosition({}, 0).ok());
}

// ---------------------------------------------------------- Sample builder

std::vector<AisPosition> StraightTrack(Mmsi mmsi, int points,
                                       TimeMicros interval,
                                       double lat0 = 38.0, double lon0 = 24.0) {
  // Eastward at ~12 knots: about 0.0033 deg lon per minute at lat 38.
  std::vector<AisPosition> track;
  for (int i = 0; i < points; ++i) {
    const double minutes =
        static_cast<double>(i) * static_cast<double>(interval) / kMicrosPerMinute;
    track.push_back(
        MakeReport(mmsi, i * interval, lat0, lon0 + 0.0033 * minutes));
  }
  return track;
}

TEST(BuildSvrfSamplesTest, ProducesFixedShapeSamples) {
  // 1-minute spacing, 120 points = 2 hours. Anchors need 20 history points
  // and 30 minutes of future -> plenty of samples.
  const auto track = StraightTrack(1, 120, kMicrosPerMinute);
  SampleBuilderOptions options;
  const auto samples = BuildSvrfSamples(track, options);
  ASSERT_GT(samples.size(), 10u);
  for (const auto& s : samples) {
    for (const auto& d : s.input.displacements) {
      EXPECT_GT(d.dt_sec, 0.0);
    }
    for (const auto& t : s.targets) {
      EXPECT_DOUBLE_EQ(t.dt_sec, 300.0);
    }
  }
}

TEST(BuildSvrfSamplesTest, TargetsMatchGroundTruthOnStraightTrack) {
  const auto track = StraightTrack(1, 120, kMicrosPerMinute);
  SampleBuilderOptions options;
  const auto samples = BuildSvrfSamples(track, options);
  ASSERT_FALSE(samples.empty());
  // Constant eastward speed: every 5-minute transition is 5*0.0033 deg lon.
  for (const auto& s : samples) {
    for (const auto& t : s.targets) {
      EXPECT_NEAR(t.dlon_deg, 0.0165, 1e-9);
      EXPECT_NEAR(t.dlat_deg, 0.0, 1e-9);
    }
  }
}

TEST(BuildSvrfSamplesTest, TooShortTrackYieldsNothing) {
  const auto track = StraightTrack(1, 15, kMicrosPerMinute);
  EXPECT_TRUE(BuildSvrfSamples(track, SampleBuilderOptions{}).empty());
}

TEST(BuildSvrfSamplesTest, StrideReducesSampleCount) {
  const auto track = StraightTrack(1, 200, kMicrosPerMinute);
  SampleBuilderOptions dense;
  SampleBuilderOptions sparse;
  sparse.stride = 5;
  const auto a = BuildSvrfSamples(track, dense);
  const auto b = BuildSvrfSamples(track, sparse);
  EXPECT_GT(a.size(), b.size() * 3);
}

TEST(BuildSvrfSamplesTest, DownsamplingShrinksDenseTracks) {
  // 10-second spacing gets reduced to >= 30 s spacing first.
  const auto track = StraightTrack(1, 720, 10 * kMicrosPerSecond);
  SampleBuilderOptions options;
  const auto samples = BuildSvrfSamples(track, options);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    for (const auto& d : s.input.displacements) {
      EXPECT_GE(d.dt_sec, 30.0);
    }
  }
}

// ---------------------------------------------------------- VesselHistory

TEST(VesselHistoryTest, BecomesReadyAfter21AcceptedPoints) {
  VesselHistory history;
  TimeMicros t = 0;
  for (int i = 0; i < kSvrfInputLength; ++i) {
    EXPECT_TRUE(history.Push(MakeReport(1, t, 38.0, 24.0 + i * 0.001)));
    EXPECT_FALSE(history.Ready());
    t += kMicrosPerMinute;
  }
  EXPECT_TRUE(history.Push(MakeReport(1, t, 38.0, 25.0)));
  EXPECT_TRUE(history.Ready());
}

TEST(VesselHistoryTest, DownsamplesAndRejectsStale) {
  VesselHistory history;
  EXPECT_TRUE(history.Push(MakeReport(1, kMicrosPerMinute, 38.0, 24.0)));
  // Too soon (< 30 s after).
  EXPECT_FALSE(history.Push(
      MakeReport(1, kMicrosPerMinute + 5 * kMicrosPerSecond, 38.0, 24.0)));
  // Older timestamp.
  EXPECT_FALSE(history.Push(MakeReport(1, 0, 38.0, 24.0)));
  EXPECT_EQ(history.size(), 1u);
}

TEST(VesselHistoryTest, MakeInputUsesMostRecentWindow) {
  VesselHistory history;
  TimeMicros t = 0;
  for (int i = 0; i < 40; ++i) {
    history.Push(MakeReport(1, t, 38.0, 24.0 + i * 0.01));
    t += kMicrosPerMinute;
  }
  ASSERT_TRUE(history.Ready());
  const SvrfInput input = history.MakeInput();
  EXPECT_NEAR(input.anchor.lon_deg, 24.0 + 39 * 0.01, 1e-9);
  for (const auto& d : input.displacements) {
    EXPECT_NEAR(d.dlon_deg, 0.01, 1e-9);
    EXPECT_NEAR(d.dt_sec, 60.0, 1e-9);
  }
}

TEST(VesselHistoryTest, ClearResets) {
  VesselHistory history;
  for (int i = 0; i < 30; ++i) {
    history.Push(MakeReport(1, i * kMicrosPerMinute, 38.0, 24.0));
  }
  history.Clear();
  EXPECT_EQ(history.size(), 0u);
  EXPECT_FALSE(history.Ready());
  EXPECT_EQ(history.Latest(), nullptr);
  EXPECT_TRUE(history.Push(MakeReport(1, 0, 38.0, 24.0)));
}

}  // namespace
}  // namespace marlin

#include <gtest/gtest.h>

#include <cstdio>

#include "ais/stream_io.h"
#include "events/collision_avoidance.h"
#include "sim/fleet.h"
#include "geo/world.h"

namespace marlin {
namespace {

ForecastTrajectory Straight(Mmsi mmsi, TimeMicros start, LatLng from,
                            double cog, double sog_knots) {
  ForecastTrajectory trajectory;
  trajectory.mmsi = mmsi;
  LatLng position = from;
  for (int i = 0; i <= kSvrfOutputSteps; ++i) {
    trajectory.points.push_back(
        ForecastPoint{position, start + i * kSvrfStepMicros});
    position = DestinationPoint(position, cog, sog_knots * kKnotsToMps * 300.0);
  }
  return trajectory;
}

// ------------------------------------------------ MinTrajectoryDistance

TEST(MinTrajectoryDistanceTest, HeadOnPairApproachesZero) {
  const LatLng a{38.0, 24.0};
  const LatLng b = DestinationPoint(a, 90.0, 8000.0);
  const auto ta = Straight(1, 0, a, 90.0, 12.0);
  const auto tb = Straight(2, 0, b, 270.0, 12.0);
  TimeMicros when = 0;
  LatLng where;
  const double d =
      MinTrajectoryDistance(ta, tb, 2 * kMicrosPerMinute, &when, &where);
  EXPECT_LT(d, 400.0);
  EXPECT_GT(when, 0);
  EXPECT_NEAR(where.lat_deg, 38.0, 0.05);
}

TEST(MinTrajectoryDistanceTest, ParallelPairKeepsSeparation) {
  const LatLng a{38.0, 24.0};
  const LatLng b = DestinationPoint(a, 0.0, 5000.0);
  const auto ta = Straight(1, 0, a, 90.0, 12.0);
  const auto tb = Straight(2, 0, b, 90.0, 12.0);
  const double d = MinTrajectoryDistance(ta, tb, 2 * kMicrosPerMinute);
  EXPECT_NEAR(d, 5000.0, 300.0);
}

TEST(MinTrajectoryDistanceTest, EmptyTrajectoriesAreInfinitelyFar) {
  ForecastTrajectory empty;
  const auto t = Straight(1, 0, LatLng{38.0, 24.0}, 90.0, 12.0);
  EXPECT_GT(MinTrajectoryDistance(empty, t, kMicrosPerMinute), 1e17);
}

// -------------------------------------------------- CollisionAvoidance

TEST(CollisionAvoidanceTest, ProposesStarboardAlterationOnHeadOn) {
  const LatLng a{38.0, 24.0};
  const LatLng b = DestinationPoint(a, 90.0, 9000.0);
  const auto own = Straight(1, 0, a, 90.0, 12.0);
  const auto other = Straight(2, 0, b, 270.0, 12.0);
  CollisionAvoidance avoidance;
  auto maneuver = avoidance.Propose(own, other);
  ASSERT_TRUE(maneuver.ok()) << maneuver.status().ToString();
  EXPECT_EQ(maneuver->vessel, 1u);
  EXPECT_GT(maneuver->course_change_deg, 0.0);  // starboard preferred
  EXPECT_GE(maneuver->clearance_m, 1500.0);
  // The manoeuvre verifies: applying the course clears the other vessel.
  const auto altered =
      CollisionAvoidance::ApplyCourse(own, maneuver->new_course_deg);
  EXPECT_GE(MinTrajectoryDistance(altered, other, 2 * kMicrosPerMinute),
            1500.0);
}

TEST(CollisionAvoidanceTest, AlreadyClearIsFailedPrecondition) {
  const LatLng a{38.0, 24.0};
  const LatLng b = DestinationPoint(a, 0.0, 20000.0);
  const auto own = Straight(1, 0, a, 90.0, 12.0);
  const auto other = Straight(2, 0, b, 90.0, 12.0);
  CollisionAvoidance avoidance;
  EXPECT_EQ(avoidance.Propose(own, other).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CollisionAvoidanceTest, PrefersSmallestSufficientAlteration) {
  // Crossing geometry where a modest alteration suffices: the proposal
  // should not jump straight to the maximum.
  const LatLng cross{38.0, 24.0};
  const double sog = 14.0;
  const LatLng own_start =
      DestinationPoint(cross, 270.0, sog * kKnotsToMps * 900.0);
  const LatLng other_start =
      DestinationPoint(cross, 180.0, sog * kKnotsToMps * 900.0);
  const auto own = Straight(1, 0, own_start, 90.0, sog);
  const auto other = Straight(2, 0, other_start, 0.0, sog);
  CollisionAvoidance avoidance;
  auto maneuver = avoidance.Propose(own, other);
  ASSERT_TRUE(maneuver.ok()) << maneuver.status().ToString();
  EXPECT_LE(std::abs(maneuver->course_change_deg), 60.0);
}

TEST(CollisionAvoidanceTest, ImpossibleClearanceIsNotFound) {
  // Demand an absurd clearance no 60-degree alteration can provide.
  const LatLng a{38.0, 24.0};
  const LatLng b = DestinationPoint(a, 90.0, 9000.0);
  CollisionAvoidance::Config config;
  config.min_clearance_m = 500000.0;
  CollisionAvoidance avoidance(config);
  auto result = avoidance.Propose(Straight(1, 0, a, 90.0, 12.0),
                                  Straight(2, 0, b, 270.0, 12.0));
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CollisionAvoidanceTest, ApplyCoursePreservesTimesAndSpeed) {
  const auto own = Straight(7, 1000, LatLng{38.0, 24.0}, 90.0, 12.0);
  const auto altered = CollisionAvoidance::ApplyCourse(own, 135.0);
  ASSERT_EQ(altered.points.size(), own.points.size());
  EXPECT_EQ(altered.mmsi, own.mmsi);
  for (size_t i = 0; i < own.points.size(); ++i) {
    EXPECT_EQ(altered.points[i].time, own.points[i].time);
  }
  // Per-step distance preserved (same implied speed).
  const double original = ApproxDistanceMeters(own.points[0].position,
                                               own.points[1].position);
  const double rebuilt = ApproxDistanceMeters(altered.points[0].position,
                                              altered.points[1].position);
  EXPECT_NEAR(rebuilt, original, original * 0.02);
  // New heading honoured.
  EXPECT_NEAR(InitialBearingDeg(altered.points[0].position,
                                altered.points[1].position),
              135.0, 1.0);
}

// ---------------------------------------------------------- Stream I/O

TEST(StreamIoTest, LogRoundTripPreservesStream) {
  const World world = World::GlobalWorld(7);
  FleetConfig config;
  config.num_vessels = 10;
  config.seed = 3;
  FleetSimulator fleet(&world, config);
  const auto messages = fleet.Run(1800.0);
  ASSERT_GT(messages.size(), 20u);

  const std::string log = EncodeAivdmLog(messages);
  int dropped = -1;
  const auto decoded = DecodeAivdmLog(log, &dropped);
  EXPECT_EQ(dropped, 0);
  ASSERT_EQ(decoded.size(), messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(decoded[i].mmsi, messages[i].mmsi);
    EXPECT_EQ(decoded[i].timestamp, messages[i].timestamp);
    EXPECT_NEAR(decoded[i].position.lat_deg, messages[i].position.lat_deg,
                2e-6);
    EXPECT_NEAR(decoded[i].position.lon_deg, messages[i].position.lon_deg,
                2e-6);
    EXPECT_NEAR(decoded[i].sog_knots, messages[i].sog_knots, 0.06);
  }
}

TEST(StreamIoTest, FileRoundTrip) {
  std::vector<AisPosition> messages;
  AisPosition p;
  p.mmsi = 237000005;
  p.timestamp = TimeMicros{1700000000} * kMicrosPerSecond;
  p.position = LatLng{37.9, 23.6};
  p.sog_knots = 11.0;
  p.cog_deg = 255.0;
  messages.push_back(p);
  const std::string path = "/tmp/marlin_stream_test.log";
  ASSERT_TRUE(WriteAivdmLog(messages, path).ok());
  auto restored = ReadAivdmLog(path);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 1u);
  EXPECT_EQ((*restored)[0].mmsi, 237000005u);
  std::remove(path.c_str());
}

TEST(StreamIoTest, SkipsCorruptLinesAndComments) {
  const std::string log =
      "# receiver dump\n"
      "notatimestamp !AIVDM,...\n"
      "12345\n"
      "1000000 !AIVDM,1,1,,A,garbage,0*00\n";
  int dropped = 0;
  const auto decoded = DecodeAivdmLog(log, &dropped);
  EXPECT_TRUE(decoded.empty());
  EXPECT_EQ(dropped, 3);
}

}  // namespace
}  // namespace marlin

// Tests for the chk::DeterministicScheduler: schedule determinism, seed
// diversity, replay, and a 50-seed invariant sweep over a 3-actor ring
// (ping/pong) topology. Labelled `chk` — run separately with `ctest -L chk`
// and stress with `ctest -L chk --repeat until-fail:10`.

#include <any>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "actor/actor_system.h"
#include "chk/chk.h"

namespace marlin {
namespace {

struct RingMsg {
  int hops = 0;
};

/// Forwards a RingMsg to the next actor in the ring until hops run out,
/// recording every delivery into a shared log.
class RingActor : public Actor {
 public:
  RingActor(std::string name, std::string next, std::mutex* mu,
            std::vector<std::string>* log)
      : name_(std::move(name)), next_(std::move(next)), mu_(mu), log_(log) {}

  Status Receive(const std::any& message, ActorContext& ctx) override {
    ctx.AssertExclusive("ring actor state");
    const RingMsg msg = std::any_cast<RingMsg>(message);
    {
      std::lock_guard<std::mutex> lock(*mu_);
      log_->push_back(name_ + ":" + std::to_string(msg.hops));
    }
    if (msg.hops > 0) {
      StatusOr<ActorRef> next = ctx.system().Find(next_);
      if (next.ok()) {
        ctx.system().Tell(*next, RingMsg{msg.hops - 1}, ctx.self());
      }
    }
    return Status::Ok();
  }

 private:
  std::string name_;
  std::string next_;
  std::mutex* mu_;
  std::vector<std::string>* log_;
};

struct RingRun {
  std::vector<std::string> deliveries;
  chk::ScheduleTrace trace;
  uint64_t trace_hash = 0;
};

/// Runs the 3-actor ring under a deterministic schedule: each actor gets an
/// initial 3-hop message, so three causal chains interleave freely.
RingRun RunRing(uint64_t seed, const chk::ScheduleTrace* replay = nullptr) {
  auto sched = replay == nullptr
                   ? std::make_shared<chk::DeterministicScheduler>(seed)
                   : std::make_shared<chk::DeterministicScheduler>(seed,
                                                                   *replay);
  ActorSystemConfig config;
  config.dispatcher = sched;
  config.throughput = 1;  // one message per drain → message-level schedules
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  ActorSystem system(config);

  std::mutex mu;
  std::vector<std::string> log;
  ActorRef a = *system.SpawnActor<RingActor>("a", "a", "b", &mu, &log);
  ActorRef b = *system.SpawnActor<RingActor>("b", "b", "c", &mu, &log);
  ActorRef c = *system.SpawnActor<RingActor>("c", "c", "a", &mu, &log);

  system.Tell(a, RingMsg{3});
  system.Tell(b, RingMsg{3});
  system.Tell(c, RingMsg{3});
  system.AwaitQuiescence();

  RingRun run;
  {
    std::lock_guard<std::mutex> lock(mu);
    run.deliveries = log;
  }
  run.trace = sched->Trace();
  run.trace_hash = sched->TraceHash();
  system.Shutdown();
  return run;
}

TEST(DeterministicSchedulerTest, SameSeedYieldsIdenticalDeliveryTrace) {
  const RingRun first = RunRing(42);
  const RingRun second = RunRing(42);
  EXPECT_EQ(first.deliveries, second.deliveries);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  ASSERT_EQ(first.trace.size(), second.trace.size());
  for (size_t i = 0; i < first.trace.size(); ++i) {
    EXPECT_EQ(first.trace[i].chosen, second.trace[i].chosen) << "step " << i;
    EXPECT_EQ(first.trace[i].ready, second.trace[i].ready) << "step " << i;
    EXPECT_EQ(first.trace[i].label, second.trace[i].label) << "step " << i;
  }
}

TEST(DeterministicSchedulerTest, DistinctSeedsExploreDistinctInterleavings) {
  std::set<uint64_t> schedule_hashes;
  std::set<std::vector<std::string>> delivery_orders;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const RingRun run = RunRing(seed);
    schedule_hashes.insert(run.trace_hash);
    delivery_orders.insert(run.deliveries);
  }
  // Three concurrent 4-hop chains give hundreds of legal interleavings; 50
  // seeds must surface a healthy sample of them.
  EXPECT_GE(schedule_hashes.size(), 5u);
  EXPECT_GE(delivery_orders.size(), 5u);
}

TEST(DeterministicSchedulerTest, FiftySeedSweepPreservesActorInvariants) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const RingRun run = RunRing(seed);
    // Every schedule delivers all 12 messages (3 kicks × 4 hops each),
    // exactly 4 per actor, and each actor's hop values from one chain
    // decrease — per-sender FIFO order survives any interleaving.
    EXPECT_EQ(run.deliveries.size(), 12u) << "seed " << seed;
    int per_actor[3] = {0, 0, 0};
    for (const std::string& d : run.deliveries) {
      ASSERT_GE(d.size(), 3u);
      per_actor[d[0] - 'a']++;
    }
    EXPECT_EQ(per_actor[0], 4) << "seed " << seed;
    EXPECT_EQ(per_actor[1], 4) << "seed " << seed;
    EXPECT_EQ(per_actor[2], 4) << "seed " << seed;
  }
}

TEST(DeterministicSchedulerTest, ReplayReproducesFailingSchedule) {
  // Treat "actor a's kick is not the first delivery" as the injected
  // failure; hunt a seed whose schedule triggers it, then replay the
  // recorded trace under a different seed and assert it re-fails
  // identically.
  auto fails = [](const RingRun& run) {
    return !run.deliveries.empty() && run.deliveries.front()[0] != 'a';
  };
  bool found = false;
  for (uint64_t seed = 0; seed < 64 && !found; ++seed) {
    const RingRun run = RunRing(seed);
    if (!fails(run)) continue;
    found = true;
    const RingRun replayed = RunRing(/*seed=*/0xDEADBEEF, &run.trace);
    EXPECT_TRUE(fails(replayed)) << "replayed schedule did not re-fail";
    EXPECT_EQ(replayed.deliveries, run.deliveries);
    EXPECT_EQ(replayed.trace_hash, run.trace_hash);
  }
  // The first decision picks among 3 ready kicks, so ~2/3 of seeds fail.
  EXPECT_TRUE(found) << "no failing schedule in 64 seeds";
}

/// Ring actor that crashes (returns a failure status, triggering the
/// supervisor's restart path) on odd hop counts — after logging and
/// forwarding, so every causal chain still completes.
class CrashyRingActor : public Actor {
 public:
  CrashyRingActor(std::string name, std::string next, std::mutex* mu,
                  std::vector<std::string>* log)
      : name_(std::move(name)), next_(std::move(next)), mu_(mu), log_(log) {}

  Status Receive(const std::any& message, ActorContext& ctx) override {
    const RingMsg msg = std::any_cast<RingMsg>(message);
    {
      std::lock_guard<std::mutex> lock(*mu_);
      log_->push_back(name_ + ":" + std::to_string(msg.hops));
    }
    if (msg.hops > 0) {
      StatusOr<ActorRef> next = ctx.system().Find(next_);
      if (next.ok()) {
        ctx.system().Tell(*next, RingMsg{msg.hops - 1}, ctx.self());
      }
    }
    if (msg.hops % 2 == 1) return Status::Internal("crash on odd hop");
    return Status::Ok();
  }

  void OnRestart(const Status& failure) override {
    std::lock_guard<std::mutex> lock(*mu_);
    log_->push_back(name_ + ":restart:" + std::string(failure.message()));
  }

 private:
  std::string name_;
  std::string next_;
  std::mutex* mu_;
  std::vector<std::string>* log_;
};

/// Like RunRing, but actor "b" is crashy: its failures route through the
/// supervisor, whose restart handling executes under the same deterministic
/// schedule as ordinary deliveries.
RingRun RunCrashyRing(uint64_t seed) {
  auto sched = std::make_shared<chk::DeterministicScheduler>(seed);
  ActorSystemConfig config;
  config.dispatcher = sched;
  config.throughput = 1;
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  ActorSystem system(config);

  std::mutex mu;
  std::vector<std::string> log;
  ActorRef a = *system.SpawnActor<RingActor>("a", "a", "b", &mu, &log);
  ActorRef b = *system.SpawnActor<CrashyRingActor>("b", "b", "c", &mu, &log);
  ActorRef c = *system.SpawnActor<RingActor>("c", "c", "a", &mu, &log);

  system.Tell(a, RingMsg{3});
  system.Tell(b, RingMsg{3});
  system.Tell(c, RingMsg{3});
  system.AwaitQuiescence();

  RingRun run;
  {
    std::lock_guard<std::mutex> lock(mu);
    run.deliveries = log;
  }
  run.trace = sched->Trace();
  run.trace_hash = sched->TraceHash();
  system.Shutdown();
  return run;
}

TEST(DeterministicSchedulerTest, RestartedChildReplaysToSameTraceHash) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const RingRun first = RunCrashyRing(seed);
    const RingRun second = RunCrashyRing(seed);
    // Determinism must survive the failure path: same seed → identical
    // delivery log (including restart events at the same positions) and
    // identical FNV schedule hash.
    EXPECT_EQ(first.deliveries, second.deliveries) << "seed " << seed;
    EXPECT_EQ(first.trace_hash, second.trace_hash) << "seed " << seed;

    // b sees hops {3, 2, 1, 0} across the three chains: the two odd hop
    // counts crash it, so every schedule restarts b exactly twice and all
    // 12 ring deliveries still happen.
    int restarts = 0;
    int deliveries = 0;
    for (const std::string& entry : first.deliveries) {
      if (entry.find(":restart:") != std::string::npos) {
        ++restarts;
      } else {
        ++deliveries;
      }
    }
    EXPECT_EQ(restarts, 2) << "seed " << seed;
    EXPECT_EQ(deliveries, 12) << "seed " << seed;
  }

  // The failure path must not collapse schedule diversity either.
  std::set<uint64_t> hashes;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    hashes.insert(RunCrashyRing(seed).trace_hash);
  }
  EXPECT_GE(hashes.size(), 3u);
}

TEST(DeterministicSchedulerTest, StandaloneTaskOrderIsSeedDriven) {
  auto run_once = [](uint64_t seed) {
    chk::DeterministicScheduler sched(seed);
    std::vector<int> order;
    for (int i = 0; i < 6; ++i) {
      sched.Submit(DispatchTask{[&order, i] { order.push_back(i); },
                                "task" + std::to_string(i)});
    }
    sched.Quiesce();
    return order;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  std::set<std::vector<int>> orders;
  for (uint64_t seed = 0; seed < 20; ++seed) orders.insert(run_once(seed));
  EXPECT_GE(orders.size(), 5u);  // 6! = 720 permutations to sample from
}

TEST(DeterministicSchedulerTest, FingerprintOnlyModeKeepsTraceHash) {
  // Long runs (fig6 --verify) turn off per-decision recording; the
  // incremental fingerprint must equal the recorded run's hash bit for bit.
  chk::DeterministicScheduler recorded(11);
  chk::DeterministicScheduler bare(11);
  bare.DisableTraceRecording();
  for (int i = 0; i < 16; ++i) {
    recorded.Submit(DispatchTask{[] {}, "task" + std::to_string(i)});
    bare.Submit(DispatchTask{[] {}, "task" + std::to_string(i)});
  }
  recorded.Quiesce();
  bare.Quiesce();
  EXPECT_EQ(recorded.TraceHash(), bare.TraceHash());
  EXPECT_EQ(recorded.StepCount(), bare.StepCount());
  EXPECT_EQ(recorded.Trace().size(), 16u);
  EXPECT_TRUE(bare.Trace().empty());
}

TEST(DeterministicSchedulerTest, RejectsSubmitAfterShutdown) {
  chk::DeterministicScheduler sched(1);
  int ran = 0;
  EXPECT_TRUE(sched.Submit(DispatchTask{[&ran] { ++ran; }, "t"}));
  sched.Shutdown();
  EXPECT_EQ(ran, 1);  // Shutdown drains before rejecting new work
  EXPECT_FALSE(sched.Submit(DispatchTask{[&ran] { ++ran; }, "late"}));
  EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace marlin

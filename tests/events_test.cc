#include <gtest/gtest.h>

#include <cmath>

#include "events/collision.h"
#include "sim/collision_eval.h"
#include "events/proximity.h"
#include "events/switch_off.h"
#include "events/traffic_flow.h"
#include "sim/proximity_dataset.h"
#include "vrf/linear_model.h"

namespace marlin {
namespace {

AisPosition At(Mmsi mmsi, TimeMicros t, double lat, double lon,
               double sog = 10.0, double cog = 0.0) {
  AisPosition p;
  p.mmsi = mmsi;
  p.timestamp = t;
  p.position = LatLng{lat, lon};
  p.sog_knots = sog;
  p.cog_deg = cog;
  return p;
}

/// Straight constant-velocity forecast trajectory starting at (lat, lon).
ForecastTrajectory MakeTrajectory(Mmsi mmsi, TimeMicros start, double lat,
                                  double lon, double cog, double sog_knots) {
  ForecastTrajectory trajectory;
  trajectory.mmsi = mmsi;
  LatLng pos{lat, lon};
  const double step_m = sog_knots * kKnotsToMps * 300.0;
  for (int i = 0; i <= kSvrfOutputSteps; ++i) {
    trajectory.points.push_back(
        ForecastPoint{pos, start + i * kSvrfStepMicros});
    pos = DestinationPoint(pos, cog, step_m);
  }
  return trajectory;
}

// ----------------------------------------------------- ProximityDetector

TEST(ProximityDetectorTest, DetectsClosePair) {
  ProximityDetector detector;
  EXPECT_TRUE(detector.Observe(At(1, 0, 38.0, 24.0)).empty());
  // 200 m east, 30 s later.
  const LatLng near = DestinationPoint(LatLng{38.0, 24.0}, 90.0, 200.0);
  const auto events = detector.Observe(
      At(2, 30 * kMicrosPerSecond, near.lat_deg, near.lon_deg));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kProximity);
  EXPECT_EQ(events[0].vessel_a, 2u);
  EXPECT_EQ(events[0].vessel_b, 1u);
  EXPECT_NEAR(events[0].distance_m, 200.0, 20.0);
}

TEST(ProximityDetectorTest, IgnoresFarPair) {
  ProximityDetector detector;
  detector.Observe(At(1, 0, 38.0, 24.0));
  const LatLng far = DestinationPoint(LatLng{38.0, 24.0}, 90.0, 2000.0);
  EXPECT_TRUE(
      detector.Observe(At(2, 10 * kMicrosPerSecond, far.lat_deg, far.lon_deg))
          .empty());
}

TEST(ProximityDetectorTest, DetectsAcrossCellBoundary) {
  // Place two vessels 300 m apart straddling a cell boundary: find a point
  // whose 300 m-east neighbour is in a different res-9 cell.
  ProximityDetector detector;
  LatLng a{38.0, 24.0};
  LatLng b = a;
  for (double lon = 24.0; lon < 25.0; lon += 0.001) {
    a = LatLng{38.0, lon};
    b = DestinationPoint(a, 90.0, 300.0);
    if (HexGrid::LatLngToCell(a, 9) != HexGrid::LatLngToCell(b, 9)) break;
  }
  ASSERT_NE(HexGrid::LatLngToCell(a, 9), HexGrid::LatLngToCell(b, 9));
  detector.Observe(At(1, 0, a.lat_deg, a.lon_deg));
  const auto events =
      detector.Observe(At(2, kMicrosPerSecond, b.lat_deg, b.lon_deg));
  ASSERT_EQ(events.size(), 1u);
}

TEST(ProximityDetectorTest, TimeWindowExcludesStaleObservations) {
  ProximityDetector detector;
  detector.Observe(At(1, 0, 38.0, 24.0));
  // Same spot, 10 minutes later: not simultaneous.
  EXPECT_TRUE(detector.Observe(At(2, 10 * kMicrosPerMinute, 38.0, 24.0)).empty());
}

TEST(ProximityDetectorTest, PairCooldownSuppressesDuplicates) {
  ProximityDetector detector;
  TimeMicros t = 0;
  detector.Observe(At(1, t, 38.0, 24.0));
  int events = 0;
  for (int i = 1; i <= 6; ++i) {
    t += 60 * kMicrosPerSecond;
    detector.Observe(At(1, t, 38.0, 24.0));
    events +=
        static_cast<int>(detector.Observe(At(2, t + 1000, 38.0, 24.0005)).size());
  }
  EXPECT_EQ(events, 1);  // deduped within the 10-minute cooldown
}

TEST(ProximityDetectorTest, SameVesselNeverSelfMatches) {
  ProximityDetector detector;
  detector.Observe(At(1, 0, 38.0, 24.0));
  EXPECT_TRUE(detector.Observe(At(1, 30 * kMicrosPerSecond, 38.0, 24.0)).empty());
}

TEST(ProximityDetectorTest, PruneDropsOldObservations) {
  ProximityDetector detector;
  for (int i = 0; i < 10; ++i) {
    detector.Observe(At(static_cast<Mmsi>(100 + i), i * kMicrosPerSecond,
                        38.0 + i * 0.1, 24.0));
  }
  EXPECT_EQ(detector.StoredObservations(), 10u);
  detector.Prune(2 * 60 * kMicrosPerMinute);
  EXPECT_EQ(detector.StoredObservations(), 0u);
}

// ----------------------------------------------------- SwitchOffDetector

TEST(SwitchOffDetectorTest, RaisesAfterSilence) {
  SwitchOffDetector detector;
  TimeMicros t = 0;
  for (int i = 0; i < 10; ++i) {
    detector.Observe(At(7, t, 38.0, 24.0));
    t += 60 * kMicrosPerSecond;
  }
  EXPECT_TRUE(detector.Check(t + 5 * kMicrosPerMinute).empty());
  const auto events = detector.Check(t + 45 * kMicrosPerMinute);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kAisSwitchOff);
  EXPECT_EQ(events[0].vessel_a, 7u);
  // One event per episode.
  EXPECT_TRUE(detector.Check(t + 90 * kMicrosPerMinute).empty());
}

TEST(SwitchOffDetectorTest, TransmissionResetsEpisode) {
  SwitchOffDetector detector;
  TimeMicros t = 0;
  for (int i = 0; i < 10; ++i) {
    detector.Observe(At(7, t, 38.0, 24.0));
    t += 60 * kMicrosPerSecond;
  }
  ASSERT_EQ(detector.Check(t + 45 * kMicrosPerMinute).size(), 1u);
  // Vessel transmits again, then goes silent again: a second event.
  t += 60 * kMicrosPerMinute;
  detector.Observe(At(7, t, 38.0, 24.0));
  const auto events = detector.Check(t + 60 * kMicrosPerMinute);
  ASSERT_EQ(events.size(), 1u);
}

TEST(SwitchOffDetectorTest, SparseTransmittersGetAdaptiveThreshold) {
  SwitchOffDetector detector;
  // Vessel with ~10-minute cadence (satellite coverage): 35 minutes of
  // silence is within 8x its typical interval, so no alarm.
  TimeMicros t = 0;
  for (int i = 0; i < 8; ++i) {
    detector.Observe(At(9, t, 38.0, 24.0));
    t += 10 * kMicrosPerMinute;
  }
  EXPECT_TRUE(detector.Check(t + 35 * kMicrosPerMinute).empty());
  EXPECT_FALSE(detector.Check(t + 100 * kMicrosPerMinute).empty());
}

TEST(SwitchOffDetectorTest, RequiresBaselineObservations) {
  SwitchOffDetector detector;
  detector.Observe(At(5, 0, 38.0, 24.0));
  EXPECT_TRUE(detector.Check(5 * 60 * kMicrosPerMinute).empty());
}

// ---------------------------------------------------- CollisionForecaster

TEST(CollisionForecasterTest, HeadOnCoursesCollide) {
  CollisionForecaster forecaster;
  const TimeMicros start = 1000 * kMicrosPerSecond;
  // Two vessels 6 km apart sailing directly at each other at 12 knots:
  // closing speed ~24 knots -> meet after ~8 minutes, inside the window.
  const LatLng a{38.0, 24.0};
  const LatLng b = DestinationPoint(a, 90.0, 6000.0);
  EXPECT_TRUE(forecaster
                  .Observe(MakeTrajectory(1, start, a.lat_deg, a.lon_deg, 90.0,
                                          12.0))
                  .empty());
  const auto events = forecaster.Observe(
      MakeTrajectory(2, start, b.lat_deg, b.lon_deg, 270.0, 12.0));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kCollisionForecast);
  EXPECT_GT(events[0].event_time, start);
  EXPECT_LT(events[0].event_time, start + 30 * kMicrosPerMinute);
  EXPECT_LT(events[0].distance_m, 500.0);
}

TEST(CollisionForecasterTest, ParallelCoursesDoNotCollide) {
  CollisionForecaster forecaster;
  const TimeMicros start = 0;
  const LatLng a{38.0, 24.0};
  const LatLng b = DestinationPoint(a, 0.0, 5000.0);  // 5 km north
  forecaster.Observe(MakeTrajectory(1, start, a.lat_deg, a.lon_deg, 90.0, 12.0));
  EXPECT_TRUE(forecaster
                  .Observe(MakeTrajectory(2, start, b.lat_deg, b.lon_deg, 90.0,
                                          12.0))
                  .empty());
}

TEST(CollisionForecasterTest, CrossingAtDifferentTimesRespectsThreshold) {
  // Both vessels pass through the same point, but 4 minutes apart.
  // With a 2-minute temporal threshold: no collision. With 5: collision.
  const TimeMicros start = 0;
  const LatLng cross{38.0, 24.0};
  const double sog = 12.0;
  const double speed_mps = sog * kKnotsToMps;
  // Vessel 1 reaches `cross` after 10 min heading east.
  const LatLng start1 = DestinationPoint(cross, 270.0, speed_mps * 600.0);
  // Vessel 2 reaches `cross` after 14 min heading north.
  const LatLng start2 = DestinationPoint(cross, 180.0, speed_mps * 840.0);

  CollisionForecaster::Config strict;
  strict.temporal_threshold = 2 * kMicrosPerMinute;
  CollisionForecaster strict_forecaster(strict);
  strict_forecaster.Observe(
      MakeTrajectory(1, start, start1.lat_deg, start1.lon_deg, 90.0, sog));
  EXPECT_TRUE(strict_forecaster
                  .Observe(MakeTrajectory(2, start, start2.lat_deg,
                                          start2.lon_deg, 0.0, sog))
                  .empty());

  CollisionForecaster::Config loose;
  loose.temporal_threshold = 5 * kMicrosPerMinute;
  CollisionForecaster loose_forecaster(loose);
  loose_forecaster.Observe(
      MakeTrajectory(1, start, start1.lat_deg, start1.lon_deg, 90.0, sog));
  EXPECT_FALSE(loose_forecaster
                   .Observe(MakeTrajectory(2, start, start2.lat_deg,
                                           start2.lon_deg, 0.0, sog))
                   .empty());
}

TEST(CollisionForecasterTest, NewTrajectoryReplacesOld) {
  CollisionForecaster forecaster;
  const LatLng a{38.0, 24.0};
  const LatLng b = DestinationPoint(a, 90.0, 6000.0);
  // Vessel 1 initially on collision course, then updates to a diverging
  // course before vessel 2 appears.
  forecaster.Observe(MakeTrajectory(1, 0, a.lat_deg, a.lon_deg, 90.0, 12.0));
  forecaster.Observe(
      MakeTrajectory(1, 5 * kMicrosPerMinute, a.lat_deg, a.lon_deg, 270.0, 12.0));
  const auto events = forecaster.Observe(
      MakeTrajectory(2, 5 * kMicrosPerMinute, b.lat_deg, b.lon_deg, 270.0, 12.0));
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(forecaster.TrackedVessels(), 2u);
}

TEST(CollisionForecasterTest, CooldownSuppressesRepeatAlerts) {
  CollisionForecaster forecaster;
  const LatLng a{38.0, 24.0};
  const LatLng b = DestinationPoint(a, 90.0, 6000.0);
  int alerts = 0;
  for (int i = 0; i < 5; ++i) {
    const TimeMicros t = i * kMicrosPerMinute;
    forecaster.Observe(MakeTrajectory(1, t, a.lat_deg, a.lon_deg, 90.0, 12.0));
    alerts += static_cast<int>(
        forecaster
            .Observe(MakeTrajectory(2, t, b.lat_deg, b.lon_deg, 270.0, 12.0))
            .size());
  }
  EXPECT_EQ(alerts, 1);
}

TEST(CollisionForecasterTest, PruneDropsStaleTrajectories) {
  CollisionForecaster forecaster;
  forecaster.Observe(MakeTrajectory(1, 0, 38.0, 24.0, 90.0, 12.0));
  forecaster.Observe(MakeTrajectory(2, 0, 39.0, 25.0, 90.0, 12.0));
  EXPECT_EQ(forecaster.TrackedVessels(), 2u);
  forecaster.Prune(2 * 60 * kMicrosPerMinute);
  EXPECT_EQ(forecaster.TrackedVessels(), 0u);
}

// ------------------------------------------------------------------ VTFF

TEST(TrafficFlowTest, CountsVesselsPerCellAndWindow) {
  TrafficFlowForecaster forecaster;
  // Three vessels forecast through the same area eastward.
  for (Mmsi m = 1; m <= 3; ++m) {
    forecaster.Observe(
        MakeTrajectory(m, 0, 38.0, 24.0 + 0.001 * m, 90.0, 12.0));
  }
  EXPECT_EQ(forecaster.TrackedVessels(), 3u);
  // At every horizon the total count across cells is 3.
  for (int step = 1; step <= kSvrfOutputSteps; ++step) {
    int total = 0;
    for (const FlowCell& cell : forecaster.Flow(step)) total += cell.count;
    EXPECT_EQ(total, 3) << "step " << step;
  }
  // The cell ahead of the fleet has traffic at the right horizon.
  const LatLng probe = DestinationPoint(LatLng{38.0, 24.0}, 90.0,
                                        12.0 * kKnotsToMps * 300.0);
  EXPECT_GT(forecaster.FlowAt(probe, 1), 0);
}

TEST(TrafficFlowTest, ReobservationReplacesContribution) {
  TrafficFlowForecaster forecaster;
  forecaster.Observe(MakeTrajectory(1, 0, 38.0, 24.0, 90.0, 12.0));
  // Updated forecast far away: old cells must be vacated.
  forecaster.Observe(MakeTrajectory(1, kMicrosPerMinute, 45.0, 10.0, 90.0, 12.0));
  for (int step = 1; step <= kSvrfOutputSteps; ++step) {
    int total = 0;
    for (const FlowCell& cell : forecaster.Flow(step)) total += cell.count;
    EXPECT_EQ(total, 1);
  }
  EXPECT_EQ(forecaster.FlowAt(DestinationPoint(LatLng{38.0, 24.0}, 90.0, 1800.0), 1),
            0);
}

TEST(TrafficFlowTest, InvalidStepYieldsEmpty) {
  TrafficFlowForecaster forecaster;
  forecaster.Observe(MakeTrajectory(1, 0, 38.0, 24.0, 90.0, 12.0));
  EXPECT_TRUE(forecaster.Flow(0).empty());
  EXPECT_TRUE(forecaster.Flow(kSvrfOutputSteps + 1).empty());
  EXPECT_EQ(forecaster.FlowAt(LatLng{38.0, 24.0}, 0), 0);
}

TEST(TrafficFlowTest, PruneRemovesStaleVessels) {
  TrafficFlowForecaster forecaster;
  forecaster.Observe(MakeTrajectory(1, 0, 38.0, 24.0, 90.0, 12.0));
  forecaster.Prune(60 * kMicrosPerMinute);
  EXPECT_EQ(forecaster.TrackedVessels(), 0u);
  EXPECT_TRUE(forecaster.Flow(1).empty());
}

TEST(DirectTrafficTest, MovingAverageOverWindows) {
  DirectTrafficForecaster forecaster;
  const LatLng spot{38.0, 24.0};
  // Window 1: 4 vessels. Window 2: 2 vessels.
  for (Mmsi m = 1; m <= 4; ++m) forecaster.Observe(At(m, 0, 38.0, 24.0));
  forecaster.Roll(5 * kMicrosPerMinute);
  for (Mmsi m = 1; m <= 2; ++m) {
    forecaster.Observe(At(m, 6 * kMicrosPerMinute, 38.0, 24.0));
  }
  forecaster.Roll(10 * kMicrosPerMinute);
  EXPECT_NEAR(forecaster.Forecast(spot, 1), 3.0, 1e-9);
}

TEST(DirectTrafficTest, DistinctVesselsCountedOncePerWindow) {
  DirectTrafficForecaster forecaster;
  for (int i = 0; i < 10; ++i) {
    forecaster.Observe(At(1, i * kMicrosPerSecond, 38.0, 24.0));
  }
  forecaster.Roll(5 * kMicrosPerMinute);
  EXPECT_NEAR(forecaster.Forecast(LatLng{38.0, 24.0}, 1), 1.0, 1e-9);
}

TEST(DirectTrafficTest, UnseenCellForecastsZero) {
  DirectTrafficForecaster forecaster;
  EXPECT_DOUBLE_EQ(forecaster.Forecast(LatLng{0.0, 0.0}, 1), 0.0);
}

// -------------------------------------------------------- Collision eval

TEST(CollisionEvalTest, LinearModelScoresWellOnSyntheticDataset) {
  ProximityDatasetConfig config;
  config.events_under_2min = 15;
  config.events_2_to_5min = 20;
  config.events_5_to_12min = 15;
  config.negatives = 20;
  const ProximityDataset dataset = GenerateProximityDataset(config);
  LinearKinematicModel model;
  const CollisionEvalResult result = EvaluateCollisionForecasting(
      model, dataset, ProximitySubset::kAll, 5 * kMicrosPerMinute);
  EXPECT_EQ(result.total_events, 50);
  EXPECT_EQ(result.tp + result.fn, 50);
  // Straight-line encounters: dead reckoning should catch most.
  EXPECT_GT(result.recall, 0.8) << "tp=" << result.tp << " fn=" << result.fn;
  EXPECT_GT(result.precision, 0.8) << "fp=" << result.fp;
  EXPECT_GT(result.accuracy, 0.7);
  EXPECT_LE(result.accuracy, 1.0);
}

TEST(CollisionEvalTest, SubsetsFilterEvents) {
  ProximityDatasetConfig config;
  config.events_under_2min = 10;
  config.events_2_to_5min = 10;
  config.events_5_to_12min = 10;
  config.negatives = 5;
  const ProximityDataset dataset = GenerateProximityDataset(config);
  LinearKinematicModel model;
  const auto all = EvaluateCollisionForecasting(
      model, dataset, ProximitySubset::kAll, 2 * kMicrosPerMinute);
  const auto sub_a = EvaluateCollisionForecasting(
      model, dataset, ProximitySubset::kUnder2, 2 * kMicrosPerMinute);
  const auto sub_b = EvaluateCollisionForecasting(
      model, dataset, ProximitySubset::kUnder5, 5 * kMicrosPerMinute);
  EXPECT_EQ(all.total_events, 30);
  EXPECT_EQ(sub_a.total_events, 10);
  EXPECT_EQ(sub_b.total_events, 20);
}

TEST(CollisionEvalTest, MetricsAreConsistent) {
  ProximityDatasetConfig config;
  config.events_under_2min = 5;
  config.events_2_to_5min = 5;
  config.events_5_to_12min = 5;
  config.negatives = 5;
  const ProximityDataset dataset = GenerateProximityDataset(config);
  LinearKinematicModel model;
  const auto r = EvaluateCollisionForecasting(
      model, dataset, ProximitySubset::kAll, 2 * kMicrosPerMinute);
  if (r.tp + r.fp > 0) {
    EXPECT_NEAR(r.precision,
                static_cast<double>(r.tp) / (r.tp + r.fp), 1e-12);
  }
  EXPECT_NEAR(r.recall, static_cast<double>(r.tp) / (r.tp + r.fn), 1e-12);
  EXPECT_NEAR(r.accuracy,
              static_cast<double>(r.tp) / (r.tp + r.fp + r.fn), 1e-12);
}

}  // namespace
}  // namespace marlin

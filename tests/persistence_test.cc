#include <gtest/gtest.h>

#include <cstdio>

#include "kvstore/kvstore.h"
#include "nn/model.h"
#include "util/file.h"
#include "vrf/svrf_model.h"

namespace marlin {
namespace {

// ------------------------------------------------------------- util/file

TEST(FileTest, WriteReadRoundTrip) {
  const std::string path = "/tmp/marlin_file_test.bin";
  const std::string payload = std::string("binary\0data\n", 12) + "tail";
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

TEST(FileTest, ReadMissingFileIsNotFound) {
  auto result = ReadFile("/tmp/definitely_not_here_marlin");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FileTest, AtomicWriteReplacesExisting) {
  const std::string path = "/tmp/marlin_file_test2.bin";
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  EXPECT_EQ(*ReadFile(path), "second");
  std::remove(path.c_str());
}

// --------------------------------------------------------- KvStore dump

TEST(KvStoreDumpTest, RoundTripStringsAndHashes) {
  SimulatedClock clock(1000);
  KvStore store(&clock);
  store.Set("plain", "value with spaces\nand newline");
  store.Set("ttl", "soon");
  store.Expire("ttl", 5000);
  store.HSet("hash", "f1", "v1");
  store.HSet("hash", "f|2", "v 2");

  const std::string dump = store.Dump();
  KvStore restored(&clock);
  ASSERT_TRUE(restored.Restore(dump).ok());
  EXPECT_EQ(*restored.Get("plain"), "value with spaces\nand newline");
  EXPECT_EQ(*restored.Get("ttl"), "soon");
  EXPECT_EQ(*restored.HGet("hash", "f1"), "v1");
  EXPECT_EQ(*restored.HGet("hash", "f|2"), "v 2");
  EXPECT_EQ(restored.Size(), 3u);
  // TTL deadline survives the round trip.
  clock.Advance(10000);
  EXPECT_FALSE(restored.Exists("ttl"));
  EXPECT_TRUE(restored.Exists("plain"));
}

TEST(KvStoreDumpTest, RestoreSkipsAlreadyExpired) {
  SimulatedClock clock(0);
  KvStore store(&clock);
  store.Set("gone", "x");
  store.Expire("gone", 100);
  store.Set("kept", "y");
  const std::string dump = store.Dump();
  clock.Advance(200);
  KvStore restored(&clock);
  ASSERT_TRUE(restored.Restore(dump).ok());
  EXPECT_FALSE(restored.Exists("gone"));
  EXPECT_TRUE(restored.Exists("kept"));
}

TEST(KvStoreDumpTest, RestoreClearsExistingKeys) {
  KvStore store;
  store.Set("old", "data");
  KvStore source;
  source.Set("new", "data");
  ASSERT_TRUE(store.Restore(source.Dump()).ok());
  EXPECT_FALSE(store.Exists("old"));
  EXPECT_TRUE(store.Exists("new"));
}

TEST(KvStoreDumpTest, RejectsCorruptBlobs) {
  KvStore store;
  EXPECT_FALSE(store.Restore("").ok());
  EXPECT_FALSE(store.Restore("NOTADUMP\n").ok());
  EXPECT_FALSE(store.Restore("MARLINKV1\nX 0 3 abc\n").ok());
  EXPECT_FALSE(store.Restore("MARLINKV1\nS 0 999 abc\n").ok());
}

TEST(KvStoreDumpTest, EmptyStoreRoundTrips) {
  KvStore store;
  KvStore restored;
  ASSERT_TRUE(restored.Restore(store.Dump()).ok());
  EXPECT_EQ(restored.Size(), 0u);
}

// ------------------------------------------------------ SvrfModel files

TEST(SvrfModelFileTest, SaveLoadPreservesForecasts) {
  SvrfModel::Config config;
  config.hidden_dim = 6;
  config.dense_dim = 6;
  SvrfModel model(config);
  const std::string path = "/tmp/marlin_svrf_test.model";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  SvrfModel loaded(config);
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  SvrfInput input;
  for (auto& d : input.displacements) d = {0.001, 0.002, 60.0};
  input.anchor = LatLng{38.0, 24.0};
  auto a = model.Forecast(input);
  auto b = loaded.Forecast(input);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i <= kSvrfOutputSteps; ++i) {
    EXPECT_DOUBLE_EQ(a->points[i].position.lat_deg,
                     b->points[i].position.lat_deg);
  }
  std::remove(path.c_str());
}

TEST(SvrfModelFileTest, LoadMissingFileFails) {
  SvrfModel model;
  EXPECT_FALSE(model.LoadFromFile("/tmp/no_such_model_here").ok());
}

// -------------------------------------------------- Trainer schedule

std::vector<SeqSample> TinyDataset(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<SeqSample> dataset(n);
  for (auto& sample : dataset) {
    sample.steps.resize(4);
    double sum = 0.0;
    for (auto& step : sample.steps) {
      const double x = rng.Uniform(-0.5, 0.5);
      step = {x};
      sum += x;
    }
    sample.target = {sum};
  }
  return dataset;
}

TEST(TrainerScheduleTest, EarlyStoppingHaltsBeforeEpochBudget) {
  SequenceRegressor::Config config;
  config.input_dim = 1;
  config.hidden_dim = 4;
  config.dense_dim = 4;
  config.output_dim = 1;
  SequenceRegressor model(config);
  const auto train = TinyDataset(200, 1);
  const auto validation = TinyDataset(50, 2);
  Trainer::Options options;
  options.epochs = 200;  // generous budget
  options.learning_rate = 5e-3;
  options.early_stopping_patience = 3;
  options.l1_lambda = 0.0;
  Trainer trainer(options);
  std::vector<double> losses;
  trainer.Fit(&model, train, validation, &losses);
  // Converges on this trivial task long before 200 epochs.
  EXPECT_LT(losses.size(), 200u);
  EXPECT_GE(losses.size(), 4u);
}

TEST(TrainerScheduleTest, LrDecayStillLearns) {
  SequenceRegressor::Config config;
  config.input_dim = 1;
  config.hidden_dim = 4;
  config.dense_dim = 4;
  config.output_dim = 1;
  SequenceRegressor model(config);
  const auto train = TinyDataset(200, 3);
  const auto test = TinyDataset(50, 4);
  const double before = Trainer::Mse(&model, test);
  Trainer::Options options;
  options.epochs = 40;
  options.learning_rate = 1e-2;
  options.lr_decay = 0.9;
  options.l1_lambda = 0.0;
  Trainer trainer(options);
  trainer.Fit(&model, train);
  EXPECT_LT(Trainer::Mse(&model, test), before * 0.3);
}

}  // namespace
}  // namespace marlin

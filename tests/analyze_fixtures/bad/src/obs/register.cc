namespace fixture {

struct Registry {
  int* GetCounter(const char* name, const char* help) { return nullptr; }
  int* GetGauge(const char* name, const char* help) { return nullptr; }
};

void RegisterMetrics(Registry& reg) {
  // PLANTED [metric-name]: missing marlin_ prefix and CamelCase.
  reg.GetCounter("BadFramesTotal", "frames rejected");
  reg.GetCounter("marlin_frames_total", "frames seen");
  // PLANTED [metric-name]: same name re-registered as a different kind.
  reg.GetGauge("marlin_frames_total", "frames seen (gauge)");
}

}  // namespace fixture

#ifndef FIXTURE_BAD_HEXGRID_GRID_H_
#define FIXTURE_BAD_HEXGRID_GRID_H_

// PLANTED [layering]: the other half of the geo <-> hexgrid cycle.
#include "geo/shape.h"

namespace fixture {

struct Grid {
  int resolution = 6;
};

}  // namespace fixture

#endif  // FIXTURE_BAD_HEXGRID_GRID_H_

#include <thread>
#include <vector>

namespace fixture {

struct Model {
  std::vector<double> weights;
};

void Train(Model* model) { model->weights.push_back(1.0); }

void SpawnTrainer() {
  // PLANTED [naked-new]: raw owning allocation outside a smart pointer.
  Model* scratch = new Model();
  // PLANTED [no-raw-thread]: unmanaged thread outside the blessed substrate
  // files; nothing joins it on shutdown.
  std::thread trainer(Train, scratch);
  trainer.detach();
}

}  // namespace fixture

#ifndef FIXTURE_BAD_NN_NET_H_
#define FIXTURE_BAD_NN_NET_H_

// PLANTED [layering]: nn (layer 2) reaching up into the pipeline layer.
#include "core/actors.h"
#include "util/status.h"

namespace fixture {

struct Net {
  int layers = 0;
};

}  // namespace fixture

#endif  // FIXTURE_BAD_NN_NET_H_

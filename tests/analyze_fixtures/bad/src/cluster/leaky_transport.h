#ifndef FIXTURE_BAD_CLUSTER_LEAKY_TRANSPORT_H_
#define FIXTURE_BAD_CLUSTER_LEAKY_TRANSPORT_H_

#include <cstdint>

namespace fixture {

using NodeId = uint32_t;
struct Frame {
  int type = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual bool Send(NodeId to, const Frame& frame) = 0;
};

class LeakyTransport : public Transport {
 public:
  // PLANTED [fault-point]: a wire send path with no MARLIN_FAULT_POINT, so
  // chaos soaks can never drop/delay/duplicate this edge.
  bool Send(NodeId to, const Frame& frame) override {
    last_to_ = to;
    last_type_ = frame.type;
    return true;
  }

 private:
  NodeId last_to_ = 0;
  int last_type_ = 0;
};

}  // namespace fixture

#endif  // FIXTURE_BAD_CLUSTER_LEAKY_TRANSPORT_H_

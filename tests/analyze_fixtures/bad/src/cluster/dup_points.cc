#include "cluster/leaky_transport.h"

#define MARLIN_FAULT_POINT(name) (void)(name)

namespace fixture {

// PLANTED [fault-point]: the same point name registered twice means both
// sites share one RNG stream and one kill-switch — they were meant to be
// independently steerable.
bool ForwardEnvelope() {
  MARLIN_FAULT_POINT("cluster.forward");
  return true;
}

bool ForwardGossip() {
  MARLIN_FAULT_POINT("cluster.forward");
  return true;
}

}  // namespace fixture

#ifndef FIXTURE_BAD_CORE_WORKER_H_
#define FIXTURE_BAD_CORE_WORKER_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

class Actor {
 public:
  virtual ~Actor() = default;
  virtual void Receive(int msg) = 0;
  virtual void OnStart() {}
  virtual void OnStop() {}
};

class StallActor : public Actor {
 public:
  // PLANTED [actor-blocking]: sleeping inside a message handler stalls the
  // scheduler thread for every other actor on it.
  void Receive(int msg) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(msg));
  }

  void OnStop() override;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool drained_ = false;
};

}  // namespace fixture

#endif  // FIXTURE_BAD_CORE_WORKER_H_

#include "core/worker.h"

namespace fixture {

// PLANTED [actor-blocking]: condition-variable wait in a lifecycle callback.
void StallActor::OnStop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return drained_; });
}

}  // namespace fixture

#ifndef FIXTURE_BAD_CORE_MESSAGES_H_
#define FIXTURE_BAD_CORE_MESSAGES_H_

#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Model {
  std::vector<double> weights;
};

// PLANTED [message-hygiene]: raw pointer member in a mailbox message.
struct ScoreRequest {
  const Model* model = nullptr;
  std::string track_id;
};

// PLANTED [message-hygiene]: move-only member makes the message non-copyable.
struct LoadedModel {
  std::unique_ptr<Model> model;
};

struct CleanTick {
  long sequence = 0;
};

}  // namespace fixture

#endif  // FIXTURE_BAD_CORE_MESSAGES_H_

namespace fixture {

// PLANTED [no-raw-socket]: direct socket(2) outside cluster/ and middleware/.
int OpenProbe() {
  int fd = ::socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  return fd;
}

}  // namespace fixture

#ifndef FIXTURE_BAD_STORAGE_WAL_H_
#define FIXTURE_BAD_STORAGE_WAL_H_

// PLANTED [layering]: storage (layer 1) reaching up into the cluster layer
// — the dependency the real tree inverts by giving storage its own byte
// codec instead of borrowing cluster::WireWriter.
#include "cluster/frame.h"
#include "util/status.h"

namespace fixture {

struct Wal {
  long end_offset = 0;
};

}  // namespace fixture

#endif  // FIXTURE_BAD_STORAGE_WAL_H_

#ifndef FIXTURE_BAD_GEO_SHAPE_H_
#define FIXTURE_BAD_GEO_SHAPE_H_

// PLANTED [layering]: half of a geo <-> hexgrid include cycle (same layer,
// still forbidden).
#include "hexgrid/grid.h"

namespace fixture {

struct Shape {
  double area = 0.0;
};

}  // namespace fixture

#endif  // FIXTURE_BAD_GEO_SHAPE_H_

#include <chrono>

namespace fixture {

int64_t StampMessage() {
  // PLANTED [raw-clock]: reading the wall clock directly instead of taking a
  // Clock* — this code can never run on the virtual timeline.
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture

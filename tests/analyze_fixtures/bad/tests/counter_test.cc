namespace fixture {

// PLANTED [no-plain-counter]: non-atomic static counter mutated from test
// callbacks that may run on pool threads.
static int g_hits = 0;

void OnFrame() { ++g_hits; }

int Hits() { return g_hits; }

}  // namespace fixture

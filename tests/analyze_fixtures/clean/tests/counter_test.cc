#include <atomic>

namespace fixture {

// Atomic counter: safe to bump from pool threads in test callbacks.
static std::atomic<int> g_hits{0};

// Constants are fine — only mutable plain integers are flagged.
static const int kLimit = 64;

void OnFrame() { ++g_hits; }

int Hits() { return g_hits.load() < kLimit ? g_hits.load() : kLimit; }

}  // namespace fixture

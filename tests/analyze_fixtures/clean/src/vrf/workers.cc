#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Model {
  std::vector<double> weights;
};

// Decoys for the lexer: rule trigger text inside comments and string
// literals must be invisible to the analyzer.
//   std::thread worker(Train);  <- comment, not code
//   Model* leak = new Model();  <- comment, not code
const char* kDocSnippet =
    "std::thread t; auto* p = new Model(); ::socket(2, 1, 0);";

std::unique_ptr<Model> MakeModel() {
  // Owning allocations go through make_unique.
  return std::make_unique<Model>();
}

}  // namespace fixture

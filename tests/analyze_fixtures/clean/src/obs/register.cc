namespace fixture {

struct Registry {
  int* GetCounter(const char* name, const char* help) { return nullptr; }
  int* GetGauge(const char* name, const char* help) { return nullptr; }
};

void RegisterMetrics(Registry& reg) {
  // Well-formed names: marlin_ prefix, lower snake_case, one kind per name.
  reg.GetCounter("marlin_frames_rejected_total", "frames rejected");
  reg.GetCounter("marlin_frames_total", "frames seen");
  reg.GetGauge("marlin_frames_inflight", "frames in flight");
}

}  // namespace fixture

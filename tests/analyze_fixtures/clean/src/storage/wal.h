#ifndef FIXTURE_CLEAN_STORAGE_WAL_H_
#define FIXTURE_CLEAN_STORAGE_WAL_H_

// Downward include: storage (layer 1) -> util (layer 0) is allowed.
#include "util/status.h"

namespace fixture {

struct Wal {
  long end_offset = 0;
};

}  // namespace fixture

#endif  // FIXTURE_CLEAN_STORAGE_WAL_H_

#ifndef FIXTURE_CLEAN_NN_NET_H_
#define FIXTURE_CLEAN_NN_NET_H_

// Downward include: nn (layer 2) -> geo (layer 1) is allowed.
#include "geo/shape.h"
#include "util/status.h"

namespace fixture {

struct Net {
  Shape input_region;
  int layers = 0;
};

}  // namespace fixture

#endif  // FIXTURE_CLEAN_NN_NET_H_

#ifndef FIXTURE_CLEAN_HEXGRID_GRID_H_
#define FIXTURE_CLEAN_HEXGRID_GRID_H_

// Same-layer include without a reverse edge: allowed (no cycle).
#include "geo/shape.h"

namespace fixture {

struct Grid {
  Shape cell;
  int resolution = 6;
};

}  // namespace fixture

#endif  // FIXTURE_CLEAN_HEXGRID_GRID_H_

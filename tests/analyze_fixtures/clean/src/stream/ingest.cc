// chk/chk.h is a cross-cutting hook header (compile-gated no-op seam): the
// layering rule must not treat this as a stream -> chk upward edge.
#include "chk/chk.h"
#include "geo/shape.h"

namespace fixture {

double IngestArea(const Shape& shape) { return shape.area; }

}  // namespace fixture

// The words system_clock and sleep_for in this comment must not trip the
// raw-clock rule: the lexer strips comments before token scans. Time comes
// in through the injected seam below.
#include "util/clock.h"

namespace fixture {

int64_t StampMessage(const Clock* clock) { return clock->Now(); }

}  // namespace fixture

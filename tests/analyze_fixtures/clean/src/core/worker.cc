#include "core/worker.h"

namespace fixture {

void TallyActor::OnStop() {
  // Flush is a plain store; shutdown blocking belongs to the runtime, not
  // actor callbacks.
  total_ = 0;
}

}  // namespace fixture

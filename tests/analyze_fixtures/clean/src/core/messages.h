#ifndef FIXTURE_CLEAN_CORE_MESSAGES_H_
#define FIXTURE_CLEAN_CORE_MESSAGES_H_

#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Model {
  std::vector<double> weights;
};

// Messages carry values (or shared_ptr for heavyweight immutable payloads).
struct ScoreRequest {
  std::shared_ptr<const Model> model;
  std::string track_id;
};

struct LoadedModel {
  std::shared_ptr<const Model> model;
};

struct CleanTick {
  long sequence = 0;
};

}  // namespace fixture

#endif  // FIXTURE_CLEAN_CORE_MESSAGES_H_

#ifndef FIXTURE_CLEAN_CORE_WORKER_H_
#define FIXTURE_CLEAN_CORE_WORKER_H_

namespace fixture {

class Actor {
 public:
  virtual ~Actor() = default;
  virtual void Receive(int msg) = 0;
  virtual void OnStart() {}
  virtual void OnStop() {}
};

class TallyActor : public Actor {
 public:
  // Non-blocking handler: does its work and returns to the scheduler.
  // The words sleep_for and cv.wait(lock) in this comment must not trip
  // the analyzer — rules run on tokens, not raw text.
  void Receive(int msg) override { total_ += msg; }

  void OnStop() override;

  long total() const { return total_; }

 private:
  long total_ = 0;
};

}  // namespace fixture

#endif  // FIXTURE_CLEAN_CORE_WORKER_H_

#ifndef FIXTURE_CLEAN_UTIL_STATUS_H_
#define FIXTURE_CLEAN_UTIL_STATUS_H_

namespace fixture {

struct Status {
  bool ok = true;
};

}  // namespace fixture

#endif  // FIXTURE_CLEAN_UTIL_STATUS_H_

namespace fixture {

struct Clock {
  long now = 0;
};

Clock& GlobalClock() {
  // Intentionally leaked process-lifetime singleton: destruction order with
  // other statics is undefined, so we never destroy it.
  static Clock* clock = new Clock();  // chk-lint: allow(naked-new)
  return *clock;
}

}  // namespace fixture

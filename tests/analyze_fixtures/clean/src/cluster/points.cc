#include "cluster/wire_transport.h"

namespace fixture {

// Distinct point names: each site gets its own RNG stream and kill switch.
bool ForwardEnvelope() {
  MARLIN_FAULT_POINT("fixture.cluster.forward_envelope");
  return true;
}

bool ForwardGossip() {
  MARLIN_FAULT_POINT("fixture.cluster.forward_gossip");
  return true;
}

}  // namespace fixture

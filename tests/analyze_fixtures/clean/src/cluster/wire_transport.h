#ifndef FIXTURE_CLEAN_CLUSTER_WIRE_TRANSPORT_H_
#define FIXTURE_CLEAN_CLUSTER_WIRE_TRANSPORT_H_

#include <cstdint>

#define MARLIN_FAULT_POINT(name) (void)(name)

namespace fixture {

using NodeId = uint32_t;
struct Frame {
  int type = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual bool Send(NodeId to, const Frame& frame) = 0;
};

class WireTransport : public Transport {
 public:
  // Every wire send path carries a uniquely named fault point.
  bool Send(NodeId to, const Frame& frame) override {
    MARLIN_FAULT_POINT("fixture.wire.send");
    last_to_ = to;
    last_type_ = frame.type;
    return true;
  }

 private:
  NodeId last_to_ = 0;
  int last_type_ = 0;
};

}  // namespace fixture

#endif  // FIXTURE_CLEAN_CLUSTER_WIRE_TRANSPORT_H_

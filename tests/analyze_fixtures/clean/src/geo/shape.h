#ifndef FIXTURE_CLEAN_GEO_SHAPE_H_
#define FIXTURE_CLEAN_GEO_SHAPE_H_

#include "util/status.h"

namespace fixture {

struct Shape {
  double area = 0.0;
};

}  // namespace fixture

#endif  // FIXTURE_CLEAN_GEO_SHAPE_H_

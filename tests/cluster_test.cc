// Tests for src/cluster: frame codec, consistent-hash ring, membership
// failure detection, and full two-/three-node protocol runs over the
// in-process transport (routing, remote refs, handoff with buffered replay)
// plus a TCP transport loopback exchange. Labelled `cluster` — run
// separately with `ctest -L cluster` (also under TSan and MARLIN_CHECKED in
// CI; the duplicate-delivery and epoch invariants only bite in checked
// builds).

#include <any>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "chk/chk.h"
#include "cluster/cluster_node.h"
#include "cluster/frame.h"
#include "cluster/hash_ring.h"
#include "cluster/membership.h"
#include "cluster/shard_region.h"
#include "cluster/tcp_transport.h"
#include "cluster/transport.h"
#include "obs/metrics.h"
#include "stream/broker.h"
#include "util/rng.h"

namespace marlin {
namespace cluster {
namespace {

// ---------------------------------------------------------------- frames

TEST(FrameCodecTest, EncodeDecodeRoundtrip) {
  Frame in;
  in.type = FrameType::kEnvelope;
  in.src = 7;
  in.seq = 0x0102030405060708ull;
  in.payload = std::string("payload-\x00-with-nul", 18);
  const std::string wire = EncodeFrame(in);

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame out;
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.src, in.src);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_FALSE(decoder.Next(&out));  // nothing left
  EXPECT_TRUE(decoder.error().ok());
}

TEST(FrameCodecTest, DecodesAcrossArbitrarySplits) {
  Frame a;
  a.type = FrameType::kHeartbeat;
  a.src = 1;
  a.seq = 42;
  Frame b;
  b.type = FrameType::kEnvelope;
  b.src = 2;
  b.seq = 43;
  b.payload = "hello";
  const std::string wire = EncodeFrame(a) + EncodeFrame(b);

  // Feed one byte at a time: the decoder must reassemble exactly two
  // frames regardless of TCP segmentation.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const char byte : wire) {
    decoder.Feed(&byte, 1);
    Frame out;
    while (decoder.Next(&out)) frames.push_back(out);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].seq, 42u);
  EXPECT_EQ(frames[1].payload, "hello");
  EXPECT_TRUE(decoder.error().ok());
}

TEST(FrameCodecTest, RejectsWrongVersion) {
  std::string wire = EncodeFrame(Frame{});
  wire[4] = 99;  // version byte follows the u32 length prefix
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame out;
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_FALSE(decoder.error().ok());
}

TEST(FrameCodecTest, RejectsOversizedLength) {
  // A hostile/desynced length prefix must fail fast, not allocate 4 GiB.
  std::string wire(4, '\0');
  wire[0] = '\xff';
  wire[1] = '\xff';
  wire[2] = '\xff';
  wire[3] = '\xff';
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame out;
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_FALSE(decoder.error().ok());
}

TEST(FrameCodecTest, WireReaderRejectsUnderflow) {
  WireWriter writer;
  writer.PutString16("abc");
  writer.PutU64(5);
  const std::string blob = writer.Take();

  WireReader reader(blob);
  std::string s;
  uint64_t v = 0;
  ASSERT_TRUE(reader.GetString16(&s));
  EXPECT_EQ(s, "abc");
  ASSERT_TRUE(reader.GetU64(&v));
  EXPECT_EQ(v, 5u);
  EXPECT_EQ(reader.remaining(), 0u);
  uint8_t extra = 0;
  EXPECT_FALSE(reader.GetU8(&extra));
}

TEST(FrameCodecTest, FuzzRoundTripsRandomFramesAcrossRandomChunks) {
  // Property test: any batch of well-formed frames survives encode →
  // arbitrary re-segmentation → decode, bit for bit. Seeded so a failure
  // reproduces exactly.
  Rng rng(0xF8A3E5u);
  for (int round = 0; round < 50; ++round) {
    std::vector<Frame> in;
    std::string wire;
    const int count = 1 + static_cast<int>(rng.UniformInt(8));
    for (int i = 0; i < count; ++i) {
      Frame frame;
      frame.type = static_cast<FrameType>(1 + rng.UniformInt(6));
      frame.src = static_cast<NodeId>(rng.NextUint64());
      frame.seq = rng.NextUint64();
      frame.payload.resize(rng.UniformInt(2'000));
      for (char& byte : frame.payload) {
        byte = static_cast<char>(rng.UniformInt(256));
      }
      in.push_back(frame);
      wire += EncodeFrame(frame);
    }
    FrameDecoder decoder;
    std::vector<Frame> out;
    size_t offset = 0;
    while (offset < wire.size()) {
      const size_t chunk = std::min(
          wire.size() - offset, 1 + rng.UniformInt(700));
      decoder.Feed(wire.data() + offset, chunk);
      offset += chunk;
      Frame frame;
      while (decoder.Next(&frame)) out.push_back(frame);
    }
    ASSERT_TRUE(decoder.error().ok()) << "round " << round;
    ASSERT_EQ(out.size(), in.size()) << "round " << round;
    for (size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(out[i].type, in[i].type);
      EXPECT_EQ(out[i].src, in[i].src);
      EXPECT_EQ(out[i].seq, in[i].seq);
      EXPECT_EQ(out[i].payload, in[i].payload);
    }
  }
}

TEST(FrameCodecTest, FuzzCorruptTruncatedInputNeverCrashesAndResetRecovers) {
  // Hostile-input corpus: truncations at every boundary, single-byte
  // corruption sweeps, oversized length prefixes, and pure noise. The
  // decoder must never crash or over-read; errors are sticky; and Reset()
  // always returns it to a state that decodes a clean frame.
  Frame valid;
  valid.type = FrameType::kEnvelope;
  valid.src = 3;
  valid.seq = 99;
  valid.payload = "fuzz-me";
  const std::string good = EncodeFrame(valid);

  auto expect_recovers = [&good](FrameDecoder* decoder) {
    decoder->Reset();
    decoder->Feed(good.data(), good.size());
    Frame out;
    ASSERT_TRUE(decoder->Next(&out));
    EXPECT_EQ(out.payload, "fuzz-me");
    EXPECT_TRUE(decoder->error().ok());
  };

  // Every possible truncation: never a frame, never an error — the decoder
  // just waits for the rest of the bytes.
  for (size_t len = 0; len < good.size(); ++len) {
    FrameDecoder decoder;
    decoder.Feed(good.data(), len);
    Frame out;
    EXPECT_FALSE(decoder.Next(&out)) << "truncated at " << len;
    EXPECT_TRUE(decoder.error().ok()) << "truncated at " << len;
    // The tail arriving later completes the frame.
    decoder.Feed(good.data() + len, good.size() - len);
    ASSERT_TRUE(decoder.Next(&out));
    EXPECT_EQ(out.seq, 99u);
  }

  // Flip every byte in turn. Corrupting the length prefix or header may or
  // may not produce a decodable-looking frame, but it must never crash and
  // any sticky error must be recoverable via Reset().
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string mutated = good;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5A);
    FrameDecoder decoder;
    decoder.Feed(mutated.data(), mutated.size());
    Frame out;
    while (decoder.Next(&out)) {
    }
    if (!decoder.error().ok()) {
      // Errors are sticky: more input cannot un-error the stream.
      decoder.Feed(good.data(), good.size());
      EXPECT_FALSE(decoder.Next(&out)) << "byte " << pos;
      EXPECT_FALSE(decoder.error().ok()) << "byte " << pos;
    }
    expect_recovers(&decoder);
  }

  // Random garbage, including prefixes that imply enormous lengths.
  Rng rng(0xDEC0DEu);
  for (int round = 0; round < 200; ++round) {
    std::string noise(rng.UniformInt(64), '\0');
    for (char& byte : noise) byte = static_cast<char>(rng.UniformInt(256));
    FrameDecoder decoder;
    decoder.Feed(noise.data(), noise.size());
    Frame out;
    while (decoder.Next(&out)) {
    }
    expect_recovers(&decoder);
  }
}

// ---------------------------------------------------------------- ring

TEST(HashRingTest, DeterministicAcrossInstances) {
  HashRing a(64, 16), b(64, 16);
  a.SetMembers({3, 1, 2}, 5);
  b.SetMembers({1, 2, 3}, 5);  // order must not matter
  for (int shard = 0; shard < 64; ++shard) {
    EXPECT_EQ(a.OwnerOfShard(shard), b.OwnerOfShard(shard));
  }
  EXPECT_EQ(a.epoch(), 5u);
}

TEST(HashRingTest, EveryShardOwnedAndReasonablyBalanced) {
  HashRing ring(64, 16);
  ring.SetMembers({1, 2, 3, 4}, 1);
  std::map<NodeId, int> owned;
  for (int shard = 0; shard < 64; ++shard) {
    const NodeId owner = ring.OwnerOfShard(shard);
    ASSERT_NE(owner, kNoNode);
    ++owned[owner];
  }
  ASSERT_EQ(owned.size(), 4u);  // every node owns something
  for (const auto& [node, count] : owned) {
    // Perfect balance is 16; virtual nodes should keep skew moderate.
    EXPECT_GE(count, 4) << "node " << node;
    EXPECT_LE(count, 40) << "node " << node;
  }
}

TEST(HashRingTest, MemberAdditionOnlyMovesShardsToTheNewNode) {
  HashRing before(64, 16), after(64, 16);
  before.SetMembers({1, 2}, 1);
  after.SetMembers({1, 2, 3}, 2);
  int moved = 0;
  for (int shard = 0; shard < 64; ++shard) {
    if (after.OwnerOfShard(shard) != before.OwnerOfShard(shard)) {
      // Consistent hashing: a new member only *takes* shards; shards never
      // shuffle between the surviving members.
      EXPECT_EQ(after.OwnerOfShard(shard), 3u) << "shard " << shard;
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 64);
}

TEST(HashRingTest, EmptyMembersLeaveShardsUnowned) {
  HashRing ring(8, 4);
  ring.SetMembers({}, 1);
  for (int shard = 0; shard < 8; ++shard) {
    EXPECT_EQ(ring.OwnerOfShard(shard), kNoNode);
  }
}

TEST(HashRingTest, KeyToShardAlignsWithBrokerPartitioner) {
  // The whole point of sharing FNV-1a: with num_shards == num_partitions,
  // an entity's shard IS its records' broker partition, so
  // ShardsOwnedBy(node) doubles as the node's consumer assignment.
  HashRing ring(64, 16);
  ring.SetMembers({1, 2}, 1);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "mmsi-" + std::to_string(244060000 + i);
    EXPECT_EQ(Broker::PartitionForKey(key, 64), ring.ShardForKey(key));
  }
}

TEST(HashRingTest, RebalanceMovesBoundedKeyFractionOnChurn) {
  // 10K keys against a 3-node ring, then add a node and separately remove
  // one. Consistent hashing promises (a) only keys involving the changed
  // node move, and (b) the moved fraction stays near the fair share — not
  // the wholesale reshuffle a modulo partitioner would cause.
  constexpr int kKeys = 10'000;
  constexpr int kShards = 256;
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back("mmsi-" + std::to_string(200'000'000 + 7 * i));
  }

  HashRing base(kShards, 16);
  base.SetMembers({1, 2, 3}, 1);
  HashRing grown(kShards, 16);
  grown.SetMembers({1, 2, 3, 4}, 2);
  HashRing shrunk(kShards, 16);
  shrunk.SetMembers({1, 2}, 2);

  int moved_on_add = 0, moved_on_remove = 0;
  for (const std::string& key : keys) {
    // The key→shard map is pure FNV-1a: identical across ring instances and
    // identical to the broker partitioner, so a rebalance never changes
    // which partition a key's records live in — only which node reads it.
    const int shard = base.ShardForKey(key);
    EXPECT_EQ(shard, grown.ShardForKey(key));
    EXPECT_EQ(shard, Broker::PartitionForKey(key, kShards));

    const NodeId before = base.OwnerOfShard(shard);
    const NodeId after_add = grown.OwnerOfShard(shard);
    if (before != after_add) {
      EXPECT_EQ(after_add, 4u) << key;  // new node only takes, never shuffles
      ++moved_on_add;
    }
    const NodeId after_remove = shrunk.OwnerOfShard(shard);
    if (before != after_remove) {
      EXPECT_EQ(before, 3u) << key;  // only the departed node's keys move
      ++moved_on_remove;
    }
  }
  // Fair share on add is 1/4 of the keys; on remove, node 3 held ~1/3.
  // Virtual-node placement is lumpy, so allow 2x the fair share but insist
  // the move is real and nowhere near a full reshuffle.
  EXPECT_GT(moved_on_add, 0);
  EXPECT_LT(moved_on_add, kKeys / 2);
  EXPECT_GT(moved_on_remove, 0);
  EXPECT_LT(moved_on_remove, 2 * kKeys / 3);
}

// ---------------------------------------------------------------- members

TEST(MembershipTest, HeartbeatPromotesJoiningToUp) {
  Membership membership(1, {1, 2, 3}, {});
  EXPECT_EQ(membership.StateOf(1), NodeState::kUp);  // self
  EXPECT_EQ(membership.StateOf(2), NodeState::kJoining);
  const auto events = membership.RecordHeartbeat(2, 1'000'000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 2u);
  EXPECT_EQ(events[0].from, NodeState::kJoining);
  EXPECT_EQ(events[0].to, NodeState::kUp);
  EXPECT_EQ(membership.UpNodes(), (std::vector<NodeId>{1, 2}));
}

TEST(MembershipTest, MissedBeatsMarkUnreachableAndBackUp) {
  MembershipOptions options;
  options.heartbeat_interval = 100;
  options.unreachable_after_missed = 4;
  Membership membership(1, {1, 2}, options);
  membership.RecordHeartbeat(2, 1'000);
  // Within the threshold: still up.
  EXPECT_TRUE(membership.Tick(1'000 + 4 * 100).empty());
  EXPECT_EQ(membership.StateOf(2), NodeState::kUp);
  // One interval past the threshold: unreachable.
  const auto down = membership.Tick(1'000 + 5 * 100);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].to, NodeState::kUnreachable);
  EXPECT_EQ(membership.UpNodes(), (std::vector<NodeId>{1}));
  // Fresh evidence resurrects the peer.
  const auto up = membership.RecordHeartbeat(2, 2'000);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].from, NodeState::kUnreachable);
  EXPECT_EQ(up[0].to, NodeState::kUp);
}

TEST(MembershipTest, SilentJoiningPeerNeverFails) {
  MembershipOptions options;
  options.heartbeat_interval = 100;
  Membership membership(1, {1, 2}, options);
  // Node 2 has not booted yet: hours of ticks must not declare it failed.
  EXPECT_TRUE(membership.Tick(3'600'000'000).empty());
  EXPECT_EQ(membership.StateOf(2), NodeState::kJoining);
}

TEST(MembershipTest, RemovedIsTerminal) {
  MembershipOptions options;
  options.heartbeat_interval = 100;
  options.unreachable_after_missed = 2;
  options.removed_after_missed = 4;
  Membership membership(1, {1, 2}, options);
  membership.RecordHeartbeat(2, 0);
  membership.Tick(300);  // unreachable
  const auto removed = membership.Tick(500);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].to, NodeState::kRemoved);
  // Late heartbeats from a removed node are ignored.
  EXPECT_TRUE(membership.RecordHeartbeat(2, 600).empty());
  EXPECT_EQ(membership.StateOf(2), NodeState::kRemoved);
}

TEST(MembershipTest, EpochsStrictlyMonotonic) {
  MembershipOptions options;
  options.heartbeat_interval = 100;
  options.unreachable_after_missed = 2;
  Membership membership(1, {1, 2, 3}, options);
  uint64_t last_epoch = membership.epoch();
  std::vector<MembershipEvent> all;
  auto absorb = [&](std::vector<MembershipEvent> events) {
    for (const auto& event : events) all.push_back(event);
  };
  absorb(membership.RecordHeartbeat(2, 100));
  absorb(membership.RecordHeartbeat(3, 100));
  absorb(membership.Tick(1'000));               // both unreachable
  absorb(membership.RecordHeartbeat(2, 1'100));  // 2 back up
  ASSERT_GE(all.size(), 5u);
  for (const auto& event : all) {
    EXPECT_GT(event.epoch, last_epoch);
    last_epoch = event.epoch;
  }
  EXPECT_EQ(membership.epoch(), last_epoch);
}

TEST(MembershipTest, StaleEpochHeartbeatIsRejected) {
  // A heartbeat carrying a sender epoch older than the newest one we have
  // seen is a stale in-flight frame (delayed or duplicated by the network)
  // and must not refresh the failure detector.
  MembershipOptions options;
  options.heartbeat_interval = 100;
  options.unreachable_after_missed = 4;
  Membership membership(1, {1, 2}, options);
  EXPECT_EQ(membership.RecordHeartbeat(2, 1'000, /*sender_epoch=*/7).size(),
            1u);
  EXPECT_EQ(membership.StateOf(2), NodeState::kUp);
  // Fresher timestamp but older epoch: rejected outright.
  EXPECT_TRUE(membership.RecordHeartbeat(2, 2'000, /*sender_epoch=*/3).empty());
  // Proof the stale beat did not count as liveness evidence: the detector
  // still times out from the epoch-7 beat at t=1000, not from t=2000.
  const auto down = membership.Tick(1'000 + 5 * 100);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].to, NodeState::kUnreachable);
}

TEST(MembershipTest, NewIncarnationAcceptedAfterUnreachable) {
  // A node that crashes and restarts begins a fresh incarnation at epoch 1.
  // While the old incarnation is considered alive, epoch 1 looks stale and
  // is rejected — but once the detector declares the peer unreachable, the
  // remembered epoch is forgotten so the restarted node can rejoin.
  MembershipOptions options;
  options.heartbeat_interval = 100;
  options.unreachable_after_missed = 4;
  Membership membership(1, {1, 2}, options);
  membership.RecordHeartbeat(2, 1'000, /*sender_epoch=*/9);
  EXPECT_EQ(membership.StateOf(2), NodeState::kUp);

  // Old incarnation still "alive": its restart's epoch-1 beat is stale.
  EXPECT_TRUE(membership.RecordHeartbeat(2, 1'050, /*sender_epoch=*/1).empty());

  // The crash is detected...
  const auto down = membership.Tick(1'000 + 5 * 100);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].to, NodeState::kUnreachable);

  // ...and the new incarnation's low epoch is now welcome again.
  const auto up = membership.RecordHeartbeat(2, 2'000, /*sender_epoch=*/1);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].from, NodeState::kUnreachable);
  EXPECT_EQ(up[0].to, NodeState::kUp);
  // And its epochs advance normally from there.
  EXPECT_TRUE(membership.RecordHeartbeat(2, 2'100, /*sender_epoch=*/2).empty());
  EXPECT_TRUE(membership.RecordHeartbeat(2, 2'150, /*sender_epoch=*/1).empty());
  EXPECT_EQ(membership.StateOf(2), NodeState::kUp);
}

// ---------------------------------------------------------------- protocol

/// Global record of entity deliveries across all virtual nodes, so the
/// tests can assert exactly-once end to end.
struct DeliveryLog {
  std::mutex mu;
  // payload -> list of (node, entity) deliveries observed.
  std::map<std::string, std::vector<std::pair<NodeId, std::string>>> seen;

  void Record(NodeId node, const std::string& entity,
              const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu);
    seen[payload].emplace_back(node, entity);
  }

  size_t DeliveryCount(const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = seen.find(payload);
    return it == seen.end() ? 0 : it->second.size();
  }

  std::vector<std::pair<NodeId, std::string>> Deliveries(
      const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu);
    return seen[payload];
  }

  size_t TotalDeliveries() {
    std::lock_guard<std::mutex> lock(mu);
    size_t total = 0;
    for (const auto& [payload, deliveries] : seen) {
      total += deliveries.size();
    }
    return total;
  }
};

/// Entity actor recording every ShardEnvelope it receives.
class RecorderActor : public Actor {
 public:
  RecorderActor(NodeId node, std::string entity, DeliveryLog* log)
      : node_(node), entity_(std::move(entity)), log_(log) {}

  Status Receive(const std::any& message, ActorContext& ctx) override {
    (void)ctx;
    if (const ShardEnvelope* env = std::any_cast<ShardEnvelope>(&message)) {
      EXPECT_EQ(env->entity, entity_);
      log_->Record(node_, entity_, env->payload);
      return Status::Ok();
    }
    return Status::InvalidArgument("unexpected message type");
  }

 private:
  const NodeId node_;
  const std::string entity_;
  DeliveryLog* log_;
};

/// One in-process cluster member: transport + node + "vessel" region wired
/// to the shared hub and delivery log. auto_tick is off — tests drive
/// protocol time explicitly for determinism.
struct TestNode {
  TestNode(NodeId id, std::vector<NodeId> roster, InProcessHub* hub,
           DeliveryLog* log, int num_shards = 64) {
    ClusterNodeConfig config;
    config.self = id;
    config.nodes = std::move(roster);
    config.num_shards = num_shards;
    config.auto_tick = false;
    config.metrics = &registry;
    config.actor.metrics = &registry;
    node = std::make_unique<ClusterNode>(
        config, std::make_shared<InProcessTransport>(hub));
    EXPECT_TRUE(node->Start().ok());
    ShardRegionOptions options;
    options.name = "vessel";
    options.factory = [id, log](const std::string& entity) {
      return std::make_unique<RecorderActor>(id, entity, log);
    };
    region = *node->CreateRegion(std::move(options));
  }

  obs::MetricsRegistry registry;
  std::unique_ptr<ClusterNode> node;
  ShardRegion* region = nullptr;
};

constexpr TimeMicros kT0 = 1'000'000;
constexpr TimeMicros kBeat = 200'000;  // MembershipOptions default interval

/// Ticks every node at `now` (heartbeats + detectors + handoff retries).
void TickAll(std::vector<TestNode*> nodes, TimeMicros now) {
  for (TestNode* n : nodes) n->node->Tick(now);
}

void Quiesce(std::vector<TestNode*> nodes) {
  for (TestNode* n : nodes) n->node->system().AwaitQuiescence();
}

/// Finds an entity owned by `want` in node `view`'s region.
std::string EntityOwnedBy(const TestNode& view, NodeId want) {
  for (int i = 0; i < 10'000; ++i) {
    const std::string entity = "v" + std::to_string(i);
    if (view.region->OwnerOfShard(view.region->ShardForEntity(entity)) ==
        want) {
      return entity;
    }
  }
  ADD_FAILURE() << "no entity owned by node " << want;
  return "v0";
}

TEST(ClusterTwoNodeTest, ConvergesAndRoutesRemoteEnvelopes) {
  chk::ScopedViolationRecorder violations;
  InProcessHub hub;
  DeliveryLog log;
  TestNode n1(1, {1, 2}, &hub, &log);
  TestNode n2(2, {1, 2}, &hub, &log);

  // One heartbeat round each: joining -> up everywhere.
  TickAll({&n1, &n2}, kT0);
  TickAll({&n1, &n2}, kT0 + kBeat);
  EXPECT_EQ(n1.node->membership().UpNodes(), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(n2.node->membership().UpNodes(), (std::vector<NodeId>{1, 2}));
  // Converged views: the shard space splits without overlap.
  EXPECT_EQ(n1.region->OwnedShardCount() + n2.region->OwnedShardCount(), 64u);
  for (int shard = 0; shard < 64; ++shard) {
    EXPECT_EQ(n1.region->OwnerOfShard(shard), n2.region->OwnerOfShard(shard));
  }
  EXPECT_EQ(n1.region->BufferedCount(), 0u);
  EXPECT_EQ(n2.region->BufferedCount(), 0u);

  // A remote envelope: node 1 tells an entity whose shard node 2 owns.
  const std::string remote_entity = EntityOwnedBy(n1, 2);
  EXPECT_TRUE(n1.region->Tell(remote_entity, "remote-payload"));
  Quiesce({&n1, &n2});
  ASSERT_EQ(log.DeliveryCount("remote-payload"), 1u);
  EXPECT_EQ(log.Deliveries("remote-payload")[0].first, 2u);

  // A local envelope stays local.
  const std::string local_entity = EntityOwnedBy(n1, 1);
  EXPECT_TRUE(n1.region->Tell(local_entity, "local-payload"));
  Quiesce({&n1, &n2});
  ASSERT_EQ(log.DeliveryCount("local-payload"), 1u);
  EXPECT_EQ(log.Deliveries("local-payload")[0].first, 1u);

  EXPECT_EQ(violations.count(), 0);
  n2.node->Shutdown();
  n1.node->Shutdown();
}

TEST(ClusterTwoNodeTest, ResolveReturnsRoutedRemoteRef) {
  InProcessHub hub;
  DeliveryLog log;
  TestNode n1(1, {1, 2}, &hub, &log);
  TestNode n2(2, {1, 2}, &hub, &log);
  TickAll({&n1, &n2}, kT0);
  TickAll({&n1, &n2}, kT0 + kBeat);

  const std::string entity = EntityOwnedBy(n1, 2);
  StatusOr<ActorRef> ref = n1.region->Resolve(entity);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(ref->is_remote());
  EXPECT_TRUE(ref->valid());
  EXPECT_EQ(ref->name(), "vessel/" + entity);

  // String payloads route through the region toward the owner.
  EXPECT_TRUE(n1.node->system().Tell(*ref, std::string("via-ref")));
  Quiesce({&n1, &n2});
  ASSERT_EQ(log.DeliveryCount("via-ref"), 1u);
  EXPECT_EQ(log.Deliveries("via-ref")[0].first, 2u);

  // Non-serialisable payloads are refused, not silently dropped remotely.
  EXPECT_FALSE(n1.node->system().Tell(*ref, 42));

  // Resolving a local entity yields an ordinary live ref.
  StatusOr<ActorRef> local = n1.region->Resolve(EntityOwnedBy(n1, 1));
  ASSERT_TRUE(local.ok());
  EXPECT_FALSE(local->is_remote());
  EXPECT_TRUE(local->valid());

  n2.node->Shutdown();
  n1.node->Shutdown();
}

TEST(ClusterThreeNodeTest, UnreachableNodeHandsOffWithBufferedReplay) {
  chk::ScopedViolationRecorder violations;
  InProcessHub hub;
  DeliveryLog log;
  TestNode n1(1, {1, 2, 3}, &hub, &log);
  TestNode n2(2, {1, 2, 3}, &hub, &log);
  TestNode n3(3, {1, 2, 3}, &hub, &log);

  TickAll({&n1, &n2, &n3}, kT0);
  TickAll({&n1, &n2, &n3}, kT0 + kBeat);
  ASSERT_EQ(n1.node->membership().UpNodes(), (std::vector<NodeId>{1, 2, 3}));
  ASSERT_EQ(n3.node->membership().UpNodes(), (std::vector<NodeId>{1, 2, 3}));
  ASSERT_EQ(n1.region->BufferedCount(), 0u);

  // Pick an entity that node 3 owns now and node 2 will own once node 3 is
  // unreachable (so its shard goes remote->remote from node 1's seat).
  HashRing survivors(64, 16);
  survivors.SetMembers({1, 2}, 99);
  std::string entity;
  for (int i = 0; i < 10'000 && entity.empty(); ++i) {
    const std::string candidate = "v" + std::to_string(i);
    const int shard = n1.region->ShardForEntity(candidate);
    if (n1.region->OwnerOfShard(shard) == 3 &&
        survivors.OwnerOfShard(shard) == 2) {
      entity = candidate;
    }
  }
  ASSERT_FALSE(entity.empty());

  EXPECT_TRUE(n1.region->Tell(entity, "before-failure"));
  Quiesce({&n1, &n2, &n3});
  ASSERT_EQ(log.DeliveryCount("before-failure"), 1u);
  EXPECT_EQ(log.Deliveries("before-failure")[0].first, 3u);

  // Node 3 dies: cut both of its links. Only node 1 notices at first —
  // node 2's detector lags, so node 1's handoff-begin goes unanswered and
  // envelopes for the moving shard park in node 1's buffer.
  hub.SetLinkUp(1, 3, false);
  hub.SetLinkUp(2, 3, false);
  const uint64_t epoch_before = n1.node->membership().epoch();
  for (int k = 1; k <= 6; ++k) {
    n1.node->Tick(kT0 + kBeat + k * kBeat);
  }
  EXPECT_EQ(n1.node->membership().StateOf(3), NodeState::kUnreachable);
  EXPECT_GT(n1.node->membership().epoch(), epoch_before);
  EXPECT_EQ(n1.region->OwnerOfShard(n1.region->ShardForEntity(entity)), 2u);

  EXPECT_TRUE(n1.region->Tell(entity, "during-handoff-1"));
  EXPECT_TRUE(n1.region->Tell(entity, "during-handoff-2"));
  // Node 2 still thinks node 3 owns the shard: no ack yet, so the
  // envelopes are buffered, not lost and not delivered.
  EXPECT_EQ(n1.region->BufferedCount(), 2u);
  EXPECT_EQ(log.DeliveryCount("during-handoff-1"), 0u);

  // Node 2 catches up, agrees it owns the shard; node 1's next tick
  // re-sends the pending handoff-begin, gets the ack, and replays.
  n2.node->Tick(kT0 + 7 * kBeat);
  ASSERT_EQ(n2.node->membership().StateOf(3), NodeState::kUnreachable);
  n1.node->Tick(kT0 + 8 * kBeat);
  Quiesce({&n1, &n2});
  EXPECT_EQ(n1.region->BufferedCount(), 0u);
  ASSERT_EQ(log.DeliveryCount("during-handoff-1"), 1u);
  ASSERT_EQ(log.DeliveryCount("during-handoff-2"), 1u);
  EXPECT_EQ(log.Deliveries("during-handoff-1")[0].first, 2u);
  EXPECT_EQ(log.Deliveries("during-handoff-2")[0].first, 2u);

  // Post-handoff traffic routes straight to the new owner; nothing is
  // ever delivered twice (the chk invariant would have fired).
  EXPECT_TRUE(n1.region->Tell(entity, "after-handoff"));
  Quiesce({&n1, &n2});
  ASSERT_EQ(log.DeliveryCount("after-handoff"), 1u);
  EXPECT_EQ(log.Deliveries("after-handoff")[0].first, 2u);
  EXPECT_EQ(violations.count(), 0);

  n3.node->Shutdown();
  n2.node->Shutdown();
  n1.node->Shutdown();
}

TEST(ClusterTwoNodeTest, PartitionHealStopsRelocatedEntities) {
  chk::ScopedViolationRecorder violations;
  InProcessHub hub;
  DeliveryLog log;
  TestNode n1(1, {1, 2}, &hub, &log);
  TestNode n2(2, {1, 2}, &hub, &log);
  TickAll({&n1, &n2}, kT0);
  TickAll({&n1, &n2}, kT0 + kBeat);

  const std::string entity = EntityOwnedBy(n1, 2);
  n1.region->Tell(entity, "seed");
  Quiesce({&n1, &n2});
  EXPECT_EQ(n2.region->LocalEntityCount(), 1u);

  // Full partition: both detectors fire, each survivor takes over the
  // whole shard space in its own view.
  hub.SetLinkUp(1, 2, false);
  for (int k = 1; k <= 6; ++k) {
    n1.node->Tick(kT0 + kBeat + k * kBeat);
    n2.node->Tick(kT0 + kBeat + k * kBeat);
  }
  EXPECT_EQ(n1.node->membership().StateOf(2), NodeState::kUnreachable);
  EXPECT_EQ(n2.node->membership().StateOf(1), NodeState::kUnreachable);
  EXPECT_EQ(n1.region->OwnedShardCount(), 64u);
  EXPECT_EQ(n2.region->OwnedShardCount(), 64u);

  // Node 1 spawns its own copy of the entity during the split-brain window.
  n1.region->Tell(entity, "during-partition");
  Quiesce({&n1});
  ASSERT_EQ(log.DeliveryCount("during-partition"), 1u);
  EXPECT_EQ(log.Deliveries("during-partition")[0].first, 1u);
  EXPECT_TRUE(n1.node->system().Find("vessel/" + entity).ok());

  // Heal: fresh heartbeats resurrect both peers, rings reconverge, and
  // each node stops the entity actors of the shards it gave back.
  hub.SetLinkUp(1, 2, true);
  TickAll({&n1, &n2}, kT0 + 8 * kBeat);
  TickAll({&n1, &n2}, kT0 + 9 * kBeat);
  Quiesce({&n1, &n2});
  EXPECT_EQ(n1.node->membership().StateOf(2), NodeState::kUp);
  EXPECT_EQ(n2.node->membership().StateOf(1), NodeState::kUp);
  EXPECT_EQ(n1.region->OwnedShardCount() + n2.region->OwnedShardCount(), 64u);
  EXPECT_EQ(n1.region->BufferedCount(), 0u);
  EXPECT_EQ(n2.region->BufferedCount(), 0u);
  // Node 1's split-brain copy was stopped when its shard moved back.
  EXPECT_FALSE(n1.node->system().Find("vessel/" + entity).ok());
  EXPECT_EQ(n1.region->LocalEntityCount(), 0u);

  // Traffic flows to the (single) owner again.
  n1.region->Tell(entity, "after-heal");
  Quiesce({&n1, &n2});
  ASSERT_EQ(log.DeliveryCount("after-heal"), 1u);
  EXPECT_EQ(log.Deliveries("after-heal")[0].first, 2u);
  EXPECT_EQ(violations.count(), 0);

  n2.node->Shutdown();
  n1.node->Shutdown();
}

TEST(ClusterStatusTest, StatusJsonReportsMembersAndRegions) {
  InProcessHub hub;
  DeliveryLog log;
  TestNode n1(1, {1, 2}, &hub, &log);
  TestNode n2(2, {1, 2}, &hub, &log);
  TickAll({&n1, &n2}, kT0);

  const std::string json = n1.node->StatusJson();
  EXPECT_NE(json.find("\"self\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"up\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"vessel\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"num_shards\":64"), std::string::npos) << json;

  n2.node->Shutdown();
  n1.node->Shutdown();
}

// The ISSUE acceptance demo: two in-process nodes, 10K entities spawned on
// demand through the ShardRegion front door, envelopes routed across the
// node boundary, zero duplicates (checked builds assert it; the log proves
// exactly-once here in any build).
TEST(ClusterAcceptanceTest, TenThousandEntitiesAcrossTwoNodes) {
  chk::ScopedViolationRecorder violations;
  InProcessHub hub;
  DeliveryLog log;
  TestNode n1(1, {1, 2}, &hub, &log);
  TestNode n2(2, {1, 2}, &hub, &log);
  TickAll({&n1, &n2}, kT0);
  TickAll({&n1, &n2}, kT0 + kBeat);

  constexpr int kEntities = 10'000;
  for (int i = 0; i < kEntities; ++i) {
    ASSERT_TRUE(n1.region->Tell("v" + std::to_string(i),
                                "p" + std::to_string(i)));
  }
  Quiesce({&n1, &n2});

  EXPECT_EQ(log.TotalDeliveries(), static_cast<size_t>(kEntities));
  for (int i = 0; i < kEntities; i += 997) {  // spot-check exactly-once
    EXPECT_EQ(log.DeliveryCount("p" + std::to_string(i)), 1u) << i;
  }
  // Every entity actor lives on exactly one node, split per the ring.
  EXPECT_EQ(n1.region->LocalEntityCount() + n2.region->LocalEntityCount(),
            static_cast<size_t>(kEntities));
  EXPECT_GT(n1.region->LocalEntityCount(), 0u);
  EXPECT_GT(n2.region->LocalEntityCount(), 0u);
  EXPECT_EQ(violations.count(), 0);

  n2.node->Shutdown();
  n1.node->Shutdown();
}

// ---------------------------------------------------------------- tcp

TEST(TcpTransportTest, LoopbackFrameExchange) {
  TcpTransportOptions options;
  auto t1 = std::make_shared<TcpTransport>(options);
  auto t2 = std::make_shared<TcpTransport>(options);
  ASSERT_TRUE(t1->Listen().ok());
  ASSERT_TRUE(t2->Listen().ok());

  t1->SetPeers({TcpPeer{2, "127.0.0.1", t2->port()}});
  t2->SetPeers({TcpPeer{1, "127.0.0.1", t1->port()}});

  std::mutex mu;
  std::vector<Frame> at1, at2;
  ASSERT_TRUE(t1->Start(1, [&](const Frame& f) {
                  std::lock_guard<std::mutex> lock(mu);
                  at1.push_back(f);
                }).ok());
  ASSERT_TRUE(t2->Start(2, [&](const Frame& f) {
                  std::lock_guard<std::mutex> lock(mu);
                  at2.push_back(f);
                }).ok());

  Frame ping;
  ping.type = FrameType::kHeartbeat;
  ping.src = 1;
  ping.seq = 7;
  ping.payload = "ping";
  EXPECT_TRUE(t1->Send(2, ping));
  Frame pong;
  pong.type = FrameType::kEnvelope;
  pong.src = 2;
  pong.seq = 8;
  pong.payload = std::string(100'000, 'x');  // forces multi-read frames
  EXPECT_TRUE(t2->Send(1, pong));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!at1.empty() && !at2.empty()) break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(at2.size(), 1u);
    EXPECT_EQ(at2[0].seq, 7u);
    EXPECT_EQ(at2[0].payload, "ping");
    ASSERT_EQ(at1.size(), 1u);
    EXPECT_EQ(at1[0].src, 2u);
    EXPECT_EQ(at1[0].payload.size(), 100'000u);
  }

  // Unknown peers and shut-down transports refuse sends.
  EXPECT_FALSE(t1->Send(9, ping));
  t1->Shutdown();
  EXPECT_FALSE(t1->Send(2, ping));
  t2->Shutdown();
}

TEST(TcpTransportTest, TwoNodeClusterOverTcp) {
  // The same protocol the in-process tests exercise, over real sockets
  // with the auto ticker: two nodes converge and route a remote envelope.
  auto t1 = std::make_shared<TcpTransport>();
  auto t2 = std::make_shared<TcpTransport>();
  ASSERT_TRUE(t1->Listen().ok());
  ASSERT_TRUE(t2->Listen().ok());
  t1->SetPeers({TcpPeer{2, "127.0.0.1", t2->port()}});
  t2->SetPeers({TcpPeer{1, "127.0.0.1", t1->port()}});

  DeliveryLog log;
  auto make_node = [&log](NodeId self, std::shared_ptr<Transport> transport,
                          obs::MetricsRegistry* registry) {
    ClusterNodeConfig config;
    config.self = self;
    config.nodes = {1, 2};
    config.auto_tick = true;
    config.membership.heartbeat_interval = 20'000;  // 20 ms: fast converge
    config.metrics = registry;
    config.actor.metrics = registry;
    auto node = std::make_unique<ClusterNode>(config, std::move(transport));
    EXPECT_TRUE(node->Start().ok());
    ShardRegionOptions options;
    options.name = "vessel";
    options.factory = [self, &log](const std::string& entity) {
      return std::make_unique<RecorderActor>(self, entity, &log);
    };
    EXPECT_TRUE(node->CreateRegion(std::move(options)).ok());
    return node;
  };
  obs::MetricsRegistry r1, r2;
  auto n1 = make_node(1, t1, &r1);
  auto n2 = make_node(2, t2, &r2);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (n1->membership().UpNodes().size() != 2 ||
         n2->membership().UpNodes().size() != 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "membership never converged";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  ShardRegion* region = n1->GetRegion("vessel");
  ASSERT_NE(region, nullptr);
  std::string entity;
  for (int i = 0; i < 10'000 && entity.empty(); ++i) {
    const std::string candidate = "v" + std::to_string(i);
    if (region->OwnerOfShard(region->ShardForEntity(candidate)) == 2) {
      entity = candidate;
    }
  }
  ASSERT_FALSE(entity.empty());
  EXPECT_TRUE(region->Tell(entity, "over-tcp"));
  while (log.DeliveryCount("over-tcp") == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "envelope never delivered";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(log.Deliveries("over-tcp")[0].first, 2u);

  n1->Shutdown();
  n2->Shutdown();
}

TEST(TcpTransportTest, SendTimeoutDropsAreCounted) {
  // Frames that sit in the outbound queue past send_timeout are dropped by
  // the sender loop and must be visible in the per-reason drop counter —
  // silent loss here is exactly what the chaos soak hunts for.
  obs::MetricsRegistry registry;
  TcpTransportOptions options;
  options.metrics = &registry;
  options.send_timeout = 1'000;          // 1 ms: queued frames age out fast
  options.reconnect_initial = 5'000;     // 5 ms dial backoff > send_timeout
  options.reconnect_max = 5'000;
  auto transport = std::make_shared<TcpTransport>(options);
  ASSERT_TRUE(transport->Listen().ok());
  // Nothing listens on port 1, so every dial fails fast and frames rot in
  // the queue while the sender parks in its reconnect backoff.
  transport->SetPeers({TcpPeer{2, "127.0.0.1", 1}});
  ASSERT_TRUE(transport->Start(1, [](const Frame&) {}).ok());

  Frame frame;
  frame.type = FrameType::kHeartbeat;
  frame.src = 1;
  for (int i = 0; i < 3; ++i) {
    frame.seq = static_cast<uint64_t>(i);
    EXPECT_TRUE(transport->Send(2, frame));
  }

  obs::Counter* timeout_drops = registry.GetCounter(
      "marlin_cluster_tcp_send_drops_total", "Outbound frames dropped by reason",
      {{"reason", "timeout"}});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  // Of the three frames, at most one can be consumed fresh by the first
  // dial attempt; the rest outlive send_timeout during the backoff park.
  while (timeout_drops->Value() < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timeout drops never surfaced in metrics";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  transport->Shutdown();
}

TEST(TcpTransportTest, ShutdownAccountsQueuedFramesAsDrops) {
  // Send accepted the frames; Shutdown kills the sender before they hit the
  // wire. That loss must be accounted under reason="shutdown" so operators
  // can tell a drain-less shutdown from a healthy one.
  obs::MetricsRegistry registry;
  TcpTransportOptions options;
  options.metrics = &registry;
  options.send_timeout = 60'000'000;        // effectively no timeout
  options.reconnect_initial = 60'000'000;   // park ~forever after 1st dial
  options.reconnect_max = 60'000'000;
  auto transport = std::make_shared<TcpTransport>(options);
  ASSERT_TRUE(transport->Listen().ok());
  transport->SetPeers({TcpPeer{2, "127.0.0.1", 1}});
  ASSERT_TRUE(transport->Start(1, [](const Frame&) {}).ok());

  Frame frame;
  frame.type = FrameType::kEnvelope;
  frame.src = 1;
  frame.payload = "never-sent";
  frame.seq = 0;
  EXPECT_TRUE(transport->Send(2, frame));

  // Wait for the sender to consume the first frame (failed dial → io drop)
  // and park in its hour-long backoff; everything sent now stays queued.
  obs::Counter* io_drops = registry.GetCounter(
      "marlin_cluster_tcp_send_drops_total", "Outbound frames dropped by reason",
      {{"reason", "io"}});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (io_drops->Value() < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "first dial never failed";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (int i = 1; i <= 4; ++i) {
    frame.seq = static_cast<uint64_t>(i);
    EXPECT_TRUE(transport->Send(2, frame));
  }
  transport->Shutdown();

  obs::Counter* shutdown_drops = registry.GetCounter(
      "marlin_cluster_tcp_send_drops_total", "Outbound frames dropped by reason",
      {{"reason", "shutdown"}});
  EXPECT_EQ(shutdown_drops->Value(), 4u);
  // Nothing was ever delivered, so every accepted frame is accounted as
  // exactly one drop across the reason labels.
  obs::Counter* timeout_drops = registry.GetCounter(
      "marlin_cluster_tcp_send_drops_total", "Outbound frames dropped by reason",
      {{"reason", "timeout"}});
  EXPECT_EQ(io_drops->Value() + shutdown_drops->Value() +
                timeout_drops->Value(),
            5u);
}

}  // namespace
}  // namespace cluster
}  // namespace marlin
